file(REMOVE_RECURSE
  "CMakeFiles/bench_el_al.dir/bench_el_al.cpp.o"
  "CMakeFiles/bench_el_al.dir/bench_el_al.cpp.o.d"
  "bench_el_al"
  "bench_el_al.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_el_al.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
