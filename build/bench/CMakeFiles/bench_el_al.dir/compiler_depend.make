# Empty compiler generated dependencies file for bench_el_al.
# This may be replaced when dependencies are built.
