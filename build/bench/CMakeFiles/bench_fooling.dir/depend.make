# Empty dependencies file for bench_fooling.
# This may be replaced when dependencies are built.
