# Empty dependencies file for bench_throughput_term.
# This may be replaced when dependencies are built.
