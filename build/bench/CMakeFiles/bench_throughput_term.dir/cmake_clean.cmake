file(REMOVE_RECURSE
  "CMakeFiles/bench_throughput_term.dir/bench_throughput_term.cpp.o"
  "CMakeFiles/bench_throughput_term.dir/bench_throughput_term.cpp.o.d"
  "bench_throughput_term"
  "bench_throughput_term.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_throughput_term.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
