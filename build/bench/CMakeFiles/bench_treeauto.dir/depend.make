# Empty dependencies file for bench_treeauto.
# This may be replaced when dependencies are built.
