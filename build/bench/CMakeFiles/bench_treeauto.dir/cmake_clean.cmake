file(REMOVE_RECURSE
  "CMakeFiles/bench_treeauto.dir/bench_treeauto.cpp.o"
  "CMakeFiles/bench_treeauto.dir/bench_treeauto.cpp.o.d"
  "bench_treeauto"
  "bench_treeauto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_treeauto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
