# Empty compiler generated dependencies file for bench_throughput_markup.
# This may be replaced when dependencies are built.
