file(REMOVE_RECURSE
  "CMakeFiles/bench_throughput_markup.dir/bench_throughput_markup.cpp.o"
  "CMakeFiles/bench_throughput_markup.dir/bench_throughput_markup.cpp.o.d"
  "bench_throughput_markup"
  "bench_throughput_markup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_throughput_markup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
