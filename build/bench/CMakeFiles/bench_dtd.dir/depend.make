# Empty dependencies file for bench_dtd.
# This may be replaced when dependencies are built.
