file(REMOVE_RECURSE
  "CMakeFiles/bench_dtd.dir/bench_dtd.cpp.o"
  "CMakeFiles/bench_dtd.dir/bench_dtd.cpp.o.d"
  "bench_dtd"
  "bench_dtd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dtd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
