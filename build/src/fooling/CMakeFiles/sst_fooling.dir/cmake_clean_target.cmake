file(REMOVE_RECURSE
  "libsst_fooling.a"
)
