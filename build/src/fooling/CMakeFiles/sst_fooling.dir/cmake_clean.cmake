file(REMOVE_RECURSE
  "CMakeFiles/sst_fooling.dir/fooling.cc.o"
  "CMakeFiles/sst_fooling.dir/fooling.cc.o.d"
  "libsst_fooling.a"
  "libsst_fooling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_fooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
