# Empty compiler generated dependencies file for sst_fooling.
# This may be replaced when dependencies are built.
