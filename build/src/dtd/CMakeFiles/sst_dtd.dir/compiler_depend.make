# Empty compiler generated dependencies file for sst_dtd.
# This may be replaced when dependencies are built.
