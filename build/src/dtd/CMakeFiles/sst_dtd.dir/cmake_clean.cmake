file(REMOVE_RECURSE
  "CMakeFiles/sst_dtd.dir/path_dtd.cc.o"
  "CMakeFiles/sst_dtd.dir/path_dtd.cc.o.d"
  "libsst_dtd.a"
  "libsst_dtd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_dtd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
