file(REMOVE_RECURSE
  "libsst_dtd.a"
)
