file(REMOVE_RECURSE
  "CMakeFiles/sst_patterns.dir/descendant_pattern.cc.o"
  "CMakeFiles/sst_patterns.dir/descendant_pattern.cc.o.d"
  "libsst_patterns.a"
  "libsst_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
