# Empty dependencies file for sst_patterns.
# This may be replaced when dependencies are built.
