file(REMOVE_RECURSE
  "libsst_patterns.a"
)
