
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/patterns/descendant_pattern.cc" "src/patterns/CMakeFiles/sst_patterns.dir/descendant_pattern.cc.o" "gcc" "src/patterns/CMakeFiles/sst_patterns.dir/descendant_pattern.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dra/CMakeFiles/sst_dra.dir/DependInfo.cmake"
  "/root/repo/build/src/trees/CMakeFiles/sst_trees.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/sst_base.dir/DependInfo.cmake"
  "/root/repo/build/src/automata/CMakeFiles/sst_automata.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
