file(REMOVE_RECURSE
  "libsst_trees.a"
)
