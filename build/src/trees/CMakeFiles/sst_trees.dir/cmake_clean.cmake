file(REMOVE_RECURSE
  "CMakeFiles/sst_trees.dir/encoding.cc.o"
  "CMakeFiles/sst_trees.dir/encoding.cc.o.d"
  "CMakeFiles/sst_trees.dir/generators.cc.o"
  "CMakeFiles/sst_trees.dir/generators.cc.o.d"
  "CMakeFiles/sst_trees.dir/ground_truth.cc.o"
  "CMakeFiles/sst_trees.dir/ground_truth.cc.o.d"
  "CMakeFiles/sst_trees.dir/tree.cc.o"
  "CMakeFiles/sst_trees.dir/tree.cc.o.d"
  "libsst_trees.a"
  "libsst_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
