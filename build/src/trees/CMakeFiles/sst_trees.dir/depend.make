# Empty dependencies file for sst_trees.
# This may be replaced when dependencies are built.
