file(REMOVE_RECURSE
  "CMakeFiles/sst_automata.dir/alphabet.cc.o"
  "CMakeFiles/sst_automata.dir/alphabet.cc.o.d"
  "CMakeFiles/sst_automata.dir/determinize.cc.o"
  "CMakeFiles/sst_automata.dir/determinize.cc.o.d"
  "CMakeFiles/sst_automata.dir/dfa.cc.o"
  "CMakeFiles/sst_automata.dir/dfa.cc.o.d"
  "CMakeFiles/sst_automata.dir/minimize.cc.o"
  "CMakeFiles/sst_automata.dir/minimize.cc.o.d"
  "CMakeFiles/sst_automata.dir/nfa.cc.o"
  "CMakeFiles/sst_automata.dir/nfa.cc.o.d"
  "CMakeFiles/sst_automata.dir/random_dfa.cc.o"
  "CMakeFiles/sst_automata.dir/random_dfa.cc.o.d"
  "CMakeFiles/sst_automata.dir/regex.cc.o"
  "CMakeFiles/sst_automata.dir/regex.cc.o.d"
  "CMakeFiles/sst_automata.dir/relations.cc.o"
  "CMakeFiles/sst_automata.dir/relations.cc.o.d"
  "CMakeFiles/sst_automata.dir/scc.cc.o"
  "CMakeFiles/sst_automata.dir/scc.cc.o.d"
  "libsst_automata.a"
  "libsst_automata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_automata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
