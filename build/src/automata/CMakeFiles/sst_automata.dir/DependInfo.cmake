
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/automata/alphabet.cc" "src/automata/CMakeFiles/sst_automata.dir/alphabet.cc.o" "gcc" "src/automata/CMakeFiles/sst_automata.dir/alphabet.cc.o.d"
  "/root/repo/src/automata/determinize.cc" "src/automata/CMakeFiles/sst_automata.dir/determinize.cc.o" "gcc" "src/automata/CMakeFiles/sst_automata.dir/determinize.cc.o.d"
  "/root/repo/src/automata/dfa.cc" "src/automata/CMakeFiles/sst_automata.dir/dfa.cc.o" "gcc" "src/automata/CMakeFiles/sst_automata.dir/dfa.cc.o.d"
  "/root/repo/src/automata/minimize.cc" "src/automata/CMakeFiles/sst_automata.dir/minimize.cc.o" "gcc" "src/automata/CMakeFiles/sst_automata.dir/minimize.cc.o.d"
  "/root/repo/src/automata/nfa.cc" "src/automata/CMakeFiles/sst_automata.dir/nfa.cc.o" "gcc" "src/automata/CMakeFiles/sst_automata.dir/nfa.cc.o.d"
  "/root/repo/src/automata/random_dfa.cc" "src/automata/CMakeFiles/sst_automata.dir/random_dfa.cc.o" "gcc" "src/automata/CMakeFiles/sst_automata.dir/random_dfa.cc.o.d"
  "/root/repo/src/automata/regex.cc" "src/automata/CMakeFiles/sst_automata.dir/regex.cc.o" "gcc" "src/automata/CMakeFiles/sst_automata.dir/regex.cc.o.d"
  "/root/repo/src/automata/relations.cc" "src/automata/CMakeFiles/sst_automata.dir/relations.cc.o" "gcc" "src/automata/CMakeFiles/sst_automata.dir/relations.cc.o.d"
  "/root/repo/src/automata/scc.cc" "src/automata/CMakeFiles/sst_automata.dir/scc.cc.o" "gcc" "src/automata/CMakeFiles/sst_automata.dir/scc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/sst_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
