# Empty compiler generated dependencies file for sst_automata.
# This may be replaced when dependencies are built.
