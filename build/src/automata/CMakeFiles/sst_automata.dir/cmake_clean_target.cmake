file(REMOVE_RECURSE
  "libsst_automata.a"
)
