# Empty compiler generated dependencies file for sst_base.
# This may be replaced when dependencies are built.
