file(REMOVE_RECURSE
  "CMakeFiles/sst_base.dir/rng.cc.o"
  "CMakeFiles/sst_base.dir/rng.cc.o.d"
  "libsst_base.a"
  "libsst_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
