file(REMOVE_RECURSE
  "libsst_base.a"
)
