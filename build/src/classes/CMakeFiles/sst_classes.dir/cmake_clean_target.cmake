file(REMOVE_RECURSE
  "libsst_classes.a"
)
