# Empty compiler generated dependencies file for sst_classes.
# This may be replaced when dependencies are built.
