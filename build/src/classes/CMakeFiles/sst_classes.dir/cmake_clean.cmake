file(REMOVE_RECURSE
  "CMakeFiles/sst_classes.dir/syntactic_classes.cc.o"
  "CMakeFiles/sst_classes.dir/syntactic_classes.cc.o.d"
  "libsst_classes.a"
  "libsst_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
