# Empty compiler generated dependencies file for sst_query.
# This may be replaced when dependencies are built.
