file(REMOVE_RECURSE
  "libsst_query.a"
)
