file(REMOVE_RECURSE
  "CMakeFiles/sst_query.dir/rpq.cc.o"
  "CMakeFiles/sst_query.dir/rpq.cc.o.d"
  "libsst_query.a"
  "libsst_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
