file(REMOVE_RECURSE
  "libsst_eval.a"
)
