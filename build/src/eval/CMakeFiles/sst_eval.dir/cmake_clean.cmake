file(REMOVE_RECURSE
  "CMakeFiles/sst_eval.dir/al_recognizer.cc.o"
  "CMakeFiles/sst_eval.dir/al_recognizer.cc.o.d"
  "CMakeFiles/sst_eval.dir/byte_runner.cc.o"
  "CMakeFiles/sst_eval.dir/byte_runner.cc.o.d"
  "CMakeFiles/sst_eval.dir/el_synopsis.cc.o"
  "CMakeFiles/sst_eval.dir/el_synopsis.cc.o.d"
  "CMakeFiles/sst_eval.dir/post_selection.cc.o"
  "CMakeFiles/sst_eval.dir/post_selection.cc.o.d"
  "CMakeFiles/sst_eval.dir/registerless_query.cc.o"
  "CMakeFiles/sst_eval.dir/registerless_query.cc.o.d"
  "CMakeFiles/sst_eval.dir/stackless_query.cc.o"
  "CMakeFiles/sst_eval.dir/stackless_query.cc.o.d"
  "libsst_eval.a"
  "libsst_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
