# Empty compiler generated dependencies file for sst_eval.
# This may be replaced when dependencies are built.
