
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/al_recognizer.cc" "src/eval/CMakeFiles/sst_eval.dir/al_recognizer.cc.o" "gcc" "src/eval/CMakeFiles/sst_eval.dir/al_recognizer.cc.o.d"
  "/root/repo/src/eval/byte_runner.cc" "src/eval/CMakeFiles/sst_eval.dir/byte_runner.cc.o" "gcc" "src/eval/CMakeFiles/sst_eval.dir/byte_runner.cc.o.d"
  "/root/repo/src/eval/el_synopsis.cc" "src/eval/CMakeFiles/sst_eval.dir/el_synopsis.cc.o" "gcc" "src/eval/CMakeFiles/sst_eval.dir/el_synopsis.cc.o.d"
  "/root/repo/src/eval/post_selection.cc" "src/eval/CMakeFiles/sst_eval.dir/post_selection.cc.o" "gcc" "src/eval/CMakeFiles/sst_eval.dir/post_selection.cc.o.d"
  "/root/repo/src/eval/registerless_query.cc" "src/eval/CMakeFiles/sst_eval.dir/registerless_query.cc.o" "gcc" "src/eval/CMakeFiles/sst_eval.dir/registerless_query.cc.o.d"
  "/root/repo/src/eval/stackless_query.cc" "src/eval/CMakeFiles/sst_eval.dir/stackless_query.cc.o" "gcc" "src/eval/CMakeFiles/sst_eval.dir/stackless_query.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dra/CMakeFiles/sst_dra.dir/DependInfo.cmake"
  "/root/repo/build/src/automata/CMakeFiles/sst_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/trees/CMakeFiles/sst_trees.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/sst_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
