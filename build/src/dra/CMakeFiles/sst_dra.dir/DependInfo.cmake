
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dra/dra.cc" "src/dra/CMakeFiles/sst_dra.dir/dra.cc.o" "gcc" "src/dra/CMakeFiles/sst_dra.dir/dra.cc.o.d"
  "/root/repo/src/dra/machine.cc" "src/dra/CMakeFiles/sst_dra.dir/machine.cc.o" "gcc" "src/dra/CMakeFiles/sst_dra.dir/machine.cc.o.d"
  "/root/repo/src/dra/offset_dra.cc" "src/dra/CMakeFiles/sst_dra.dir/offset_dra.cc.o" "gcc" "src/dra/CMakeFiles/sst_dra.dir/offset_dra.cc.o.d"
  "/root/repo/src/dra/paper_examples.cc" "src/dra/CMakeFiles/sst_dra.dir/paper_examples.cc.o" "gcc" "src/dra/CMakeFiles/sst_dra.dir/paper_examples.cc.o.d"
  "/root/repo/src/dra/streaming.cc" "src/dra/CMakeFiles/sst_dra.dir/streaming.cc.o" "gcc" "src/dra/CMakeFiles/sst_dra.dir/streaming.cc.o.d"
  "/root/repo/src/dra/tag_dfa.cc" "src/dra/CMakeFiles/sst_dra.dir/tag_dfa.cc.o" "gcc" "src/dra/CMakeFiles/sst_dra.dir/tag_dfa.cc.o.d"
  "/root/repo/src/dra/visibly_counter.cc" "src/dra/CMakeFiles/sst_dra.dir/visibly_counter.cc.o" "gcc" "src/dra/CMakeFiles/sst_dra.dir/visibly_counter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/automata/CMakeFiles/sst_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/trees/CMakeFiles/sst_trees.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/sst_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
