file(REMOVE_RECURSE
  "CMakeFiles/sst_dra.dir/dra.cc.o"
  "CMakeFiles/sst_dra.dir/dra.cc.o.d"
  "CMakeFiles/sst_dra.dir/machine.cc.o"
  "CMakeFiles/sst_dra.dir/machine.cc.o.d"
  "CMakeFiles/sst_dra.dir/offset_dra.cc.o"
  "CMakeFiles/sst_dra.dir/offset_dra.cc.o.d"
  "CMakeFiles/sst_dra.dir/paper_examples.cc.o"
  "CMakeFiles/sst_dra.dir/paper_examples.cc.o.d"
  "CMakeFiles/sst_dra.dir/streaming.cc.o"
  "CMakeFiles/sst_dra.dir/streaming.cc.o.d"
  "CMakeFiles/sst_dra.dir/tag_dfa.cc.o"
  "CMakeFiles/sst_dra.dir/tag_dfa.cc.o.d"
  "CMakeFiles/sst_dra.dir/visibly_counter.cc.o"
  "CMakeFiles/sst_dra.dir/visibly_counter.cc.o.d"
  "libsst_dra.a"
  "libsst_dra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_dra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
