file(REMOVE_RECURSE
  "libsst_dra.a"
)
