# Empty dependencies file for sst_dra.
# This may be replaced when dependencies are built.
