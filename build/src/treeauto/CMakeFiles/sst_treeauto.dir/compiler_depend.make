# Empty compiler generated dependencies file for sst_treeauto.
# This may be replaced when dependencies are built.
