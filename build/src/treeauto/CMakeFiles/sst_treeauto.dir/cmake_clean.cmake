file(REMOVE_RECURSE
  "CMakeFiles/sst_treeauto.dir/hedge_automaton.cc.o"
  "CMakeFiles/sst_treeauto.dir/hedge_automaton.cc.o.d"
  "CMakeFiles/sst_treeauto.dir/hedge_builders.cc.o"
  "CMakeFiles/sst_treeauto.dir/hedge_builders.cc.o.d"
  "CMakeFiles/sst_treeauto.dir/marked_trees.cc.o"
  "CMakeFiles/sst_treeauto.dir/marked_trees.cc.o.d"
  "CMakeFiles/sst_treeauto.dir/restricted_to_tree_automaton.cc.o"
  "CMakeFiles/sst_treeauto.dir/restricted_to_tree_automaton.cc.o.d"
  "CMakeFiles/sst_treeauto.dir/rpqness.cc.o"
  "CMakeFiles/sst_treeauto.dir/rpqness.cc.o.d"
  "libsst_treeauto.a"
  "libsst_treeauto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_treeauto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
