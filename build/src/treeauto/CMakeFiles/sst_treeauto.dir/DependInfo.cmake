
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/treeauto/hedge_automaton.cc" "src/treeauto/CMakeFiles/sst_treeauto.dir/hedge_automaton.cc.o" "gcc" "src/treeauto/CMakeFiles/sst_treeauto.dir/hedge_automaton.cc.o.d"
  "/root/repo/src/treeauto/hedge_builders.cc" "src/treeauto/CMakeFiles/sst_treeauto.dir/hedge_builders.cc.o" "gcc" "src/treeauto/CMakeFiles/sst_treeauto.dir/hedge_builders.cc.o.d"
  "/root/repo/src/treeauto/marked_trees.cc" "src/treeauto/CMakeFiles/sst_treeauto.dir/marked_trees.cc.o" "gcc" "src/treeauto/CMakeFiles/sst_treeauto.dir/marked_trees.cc.o.d"
  "/root/repo/src/treeauto/restricted_to_tree_automaton.cc" "src/treeauto/CMakeFiles/sst_treeauto.dir/restricted_to_tree_automaton.cc.o" "gcc" "src/treeauto/CMakeFiles/sst_treeauto.dir/restricted_to_tree_automaton.cc.o.d"
  "/root/repo/src/treeauto/rpqness.cc" "src/treeauto/CMakeFiles/sst_treeauto.dir/rpqness.cc.o" "gcc" "src/treeauto/CMakeFiles/sst_treeauto.dir/rpqness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dtd/CMakeFiles/sst_dtd.dir/DependInfo.cmake"
  "/root/repo/build/src/dra/CMakeFiles/sst_dra.dir/DependInfo.cmake"
  "/root/repo/build/src/trees/CMakeFiles/sst_trees.dir/DependInfo.cmake"
  "/root/repo/build/src/automata/CMakeFiles/sst_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/sst_base.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/sst_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/classes/CMakeFiles/sst_classes.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
