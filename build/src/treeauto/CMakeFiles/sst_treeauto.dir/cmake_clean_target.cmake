file(REMOVE_RECURSE
  "libsst_treeauto.a"
)
