file(REMOVE_RECURSE
  "CMakeFiles/sst_core.dir/stackless.cc.o"
  "CMakeFiles/sst_core.dir/stackless.cc.o.d"
  "libsst_core.a"
  "libsst_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
