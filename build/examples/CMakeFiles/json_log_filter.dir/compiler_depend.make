# Empty compiler generated dependencies file for json_log_filter.
# This may be replaced when dependencies are built.
