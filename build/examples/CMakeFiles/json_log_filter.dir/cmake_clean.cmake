file(REMOVE_RECURSE
  "CMakeFiles/json_log_filter.dir/json_log_filter.cpp.o"
  "CMakeFiles/json_log_filter.dir/json_log_filter.cpp.o.d"
  "json_log_filter"
  "json_log_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/json_log_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
