file(REMOVE_RECURSE
  "CMakeFiles/rpq_classifier.dir/rpq_classifier.cpp.o"
  "CMakeFiles/rpq_classifier.dir/rpq_classifier.cpp.o.d"
  "rpq_classifier"
  "rpq_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpq_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
