# Empty compiler generated dependencies file for rpq_classifier.
# This may be replaced when dependencies are built.
