file(REMOVE_RECURSE
  "CMakeFiles/dtd_validation.dir/dtd_validation.cpp.o"
  "CMakeFiles/dtd_validation.dir/dtd_validation.cpp.o.d"
  "dtd_validation"
  "dtd_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtd_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
