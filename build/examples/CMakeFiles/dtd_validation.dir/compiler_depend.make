# Empty compiler generated dependencies file for dtd_validation.
# This may be replaced when dependencies are built.
