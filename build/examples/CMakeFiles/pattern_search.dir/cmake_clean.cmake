file(REMOVE_RECURSE
  "CMakeFiles/pattern_search.dir/pattern_search.cpp.o"
  "CMakeFiles/pattern_search.dir/pattern_search.cpp.o.d"
  "pattern_search"
  "pattern_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
