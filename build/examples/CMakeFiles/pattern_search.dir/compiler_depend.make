# Empty compiler generated dependencies file for pattern_search.
# This may be replaced when dependencies are built.
