# Empty dependencies file for streaming_chunks.
# This may be replaced when dependencies are built.
