file(REMOVE_RECURSE
  "CMakeFiles/streaming_chunks.dir/streaming_chunks.cpp.o"
  "CMakeFiles/streaming_chunks.dir/streaming_chunks.cpp.o.d"
  "streaming_chunks"
  "streaming_chunks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_chunks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
