# Empty compiler generated dependencies file for impossibility_report.
# This may be replaced when dependencies are built.
