file(REMOVE_RECURSE
  "CMakeFiles/impossibility_report.dir/impossibility_report.cpp.o"
  "CMakeFiles/impossibility_report.dir/impossibility_report.cpp.o.d"
  "impossibility_report"
  "impossibility_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impossibility_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
