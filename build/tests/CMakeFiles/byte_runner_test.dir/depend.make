# Empty dependencies file for byte_runner_test.
# This may be replaced when dependencies are built.
