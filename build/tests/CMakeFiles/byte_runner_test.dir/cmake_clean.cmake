file(REMOVE_RECURSE
  "CMakeFiles/byte_runner_test.dir/byte_runner_test.cc.o"
  "CMakeFiles/byte_runner_test.dir/byte_runner_test.cc.o.d"
  "byte_runner_test"
  "byte_runner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/byte_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
