# Empty compiler generated dependencies file for patterns_param_test.
# This may be replaced when dependencies are built.
