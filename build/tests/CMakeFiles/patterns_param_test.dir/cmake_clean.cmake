file(REMOVE_RECURSE
  "CMakeFiles/patterns_param_test.dir/patterns_param_test.cc.o"
  "CMakeFiles/patterns_param_test.dir/patterns_param_test.cc.o.d"
  "patterns_param_test"
  "patterns_param_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patterns_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
