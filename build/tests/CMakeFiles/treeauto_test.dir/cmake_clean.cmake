file(REMOVE_RECURSE
  "CMakeFiles/treeauto_test.dir/treeauto_test.cc.o"
  "CMakeFiles/treeauto_test.dir/treeauto_test.cc.o.d"
  "treeauto_test"
  "treeauto_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treeauto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
