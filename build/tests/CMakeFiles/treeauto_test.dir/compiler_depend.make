# Empty compiler generated dependencies file for treeauto_test.
# This may be replaced when dependencies are built.
