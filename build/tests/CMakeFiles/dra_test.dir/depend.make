# Empty dependencies file for dra_test.
# This may be replaced when dependencies are built.
