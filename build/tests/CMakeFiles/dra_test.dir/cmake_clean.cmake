file(REMOVE_RECURSE
  "CMakeFiles/dra_test.dir/dra_test.cc.o"
  "CMakeFiles/dra_test.dir/dra_test.cc.o.d"
  "dra_test"
  "dra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
