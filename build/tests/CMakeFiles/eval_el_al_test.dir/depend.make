# Empty dependencies file for eval_el_al_test.
# This may be replaced when dependencies are built.
