file(REMOVE_RECURSE
  "CMakeFiles/eval_el_al_test.dir/eval_el_al_test.cc.o"
  "CMakeFiles/eval_el_al_test.dir/eval_el_al_test.cc.o.d"
  "eval_el_al_test"
  "eval_el_al_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_el_al_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
