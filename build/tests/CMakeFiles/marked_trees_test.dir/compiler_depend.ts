# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for marked_trees_test.
