file(REMOVE_RECURSE
  "CMakeFiles/marked_trees_test.dir/marked_trees_test.cc.o"
  "CMakeFiles/marked_trees_test.dir/marked_trees_test.cc.o.d"
  "marked_trees_test"
  "marked_trees_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marked_trees_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
