# Empty compiler generated dependencies file for marked_trees_test.
# This may be replaced when dependencies are built.
