# Empty compiler generated dependencies file for dtd_param_test.
# This may be replaced when dependencies are built.
