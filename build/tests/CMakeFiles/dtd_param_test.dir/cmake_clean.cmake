file(REMOVE_RECURSE
  "CMakeFiles/dtd_param_test.dir/dtd_param_test.cc.o"
  "CMakeFiles/dtd_param_test.dir/dtd_param_test.cc.o.d"
  "dtd_param_test"
  "dtd_param_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtd_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
