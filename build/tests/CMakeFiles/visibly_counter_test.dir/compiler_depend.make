# Empty compiler generated dependencies file for visibly_counter_test.
# This may be replaced when dependencies are built.
