file(REMOVE_RECURSE
  "CMakeFiles/visibly_counter_test.dir/visibly_counter_test.cc.o"
  "CMakeFiles/visibly_counter_test.dir/visibly_counter_test.cc.o.d"
  "visibly_counter_test"
  "visibly_counter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visibly_counter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
