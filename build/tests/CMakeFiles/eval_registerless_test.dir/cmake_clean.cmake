file(REMOVE_RECURSE
  "CMakeFiles/eval_registerless_test.dir/eval_registerless_test.cc.o"
  "CMakeFiles/eval_registerless_test.dir/eval_registerless_test.cc.o.d"
  "eval_registerless_test"
  "eval_registerless_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_registerless_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
