# Empty compiler generated dependencies file for eval_registerless_test.
# This may be replaced when dependencies are built.
