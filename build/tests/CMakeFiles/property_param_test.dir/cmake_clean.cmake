file(REMOVE_RECURSE
  "CMakeFiles/property_param_test.dir/property_param_test.cc.o"
  "CMakeFiles/property_param_test.dir/property_param_test.cc.o.d"
  "property_param_test"
  "property_param_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
