# Empty dependencies file for property_param_test.
# This may be replaced when dependencies are built.
