# Empty compiler generated dependencies file for fooling_test.
# This may be replaced when dependencies are built.
