file(REMOVE_RECURSE
  "CMakeFiles/fooling_test.dir/fooling_test.cc.o"
  "CMakeFiles/fooling_test.dir/fooling_test.cc.o.d"
  "fooling_test"
  "fooling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fooling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
