file(REMOVE_RECURSE
  "CMakeFiles/offset_dra_test.dir/offset_dra_test.cc.o"
  "CMakeFiles/offset_dra_test.dir/offset_dra_test.cc.o.d"
  "offset_dra_test"
  "offset_dra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offset_dra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
