# Empty dependencies file for offset_dra_test.
# This may be replaced when dependencies are built.
