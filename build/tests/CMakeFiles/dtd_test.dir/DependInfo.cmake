
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dtd_test.cc" "tests/CMakeFiles/dtd_test.dir/dtd_test.cc.o" "gcc" "tests/CMakeFiles/dtd_test.dir/dtd_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sst_core.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/sst_query.dir/DependInfo.cmake"
  "/root/repo/build/src/treeauto/CMakeFiles/sst_treeauto.dir/DependInfo.cmake"
  "/root/repo/build/src/fooling/CMakeFiles/sst_fooling.dir/DependInfo.cmake"
  "/root/repo/build/src/dtd/CMakeFiles/sst_dtd.dir/DependInfo.cmake"
  "/root/repo/build/src/patterns/CMakeFiles/sst_patterns.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/sst_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/dra/CMakeFiles/sst_dra.dir/DependInfo.cmake"
  "/root/repo/build/src/trees/CMakeFiles/sst_trees.dir/DependInfo.cmake"
  "/root/repo/build/src/classes/CMakeFiles/sst_classes.dir/DependInfo.cmake"
  "/root/repo/build/src/automata/CMakeFiles/sst_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/sst_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
