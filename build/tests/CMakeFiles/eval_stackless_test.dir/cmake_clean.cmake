file(REMOVE_RECURSE
  "CMakeFiles/eval_stackless_test.dir/eval_stackless_test.cc.o"
  "CMakeFiles/eval_stackless_test.dir/eval_stackless_test.cc.o.d"
  "eval_stackless_test"
  "eval_stackless_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_stackless_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
