# Empty compiler generated dependencies file for eval_stackless_test.
# This may be replaced when dependencies are built.
