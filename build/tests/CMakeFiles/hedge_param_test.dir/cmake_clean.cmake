file(REMOVE_RECURSE
  "CMakeFiles/hedge_param_test.dir/hedge_param_test.cc.o"
  "CMakeFiles/hedge_param_test.dir/hedge_param_test.cc.o.d"
  "hedge_param_test"
  "hedge_param_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hedge_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
