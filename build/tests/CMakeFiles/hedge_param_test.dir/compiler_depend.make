# Empty compiler generated dependencies file for hedge_param_test.
# This may be replaced when dependencies are built.
