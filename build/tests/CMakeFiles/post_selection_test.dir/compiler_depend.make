# Empty compiler generated dependencies file for post_selection_test.
# This may be replaced when dependencies are built.
