file(REMOVE_RECURSE
  "CMakeFiles/post_selection_test.dir/post_selection_test.cc.o"
  "CMakeFiles/post_selection_test.dir/post_selection_test.cc.o.d"
  "post_selection_test"
  "post_selection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/post_selection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
