// Ablations over the library's own design choices (DESIGN.md):
//   * Hopcroft vs Moore minimization (we ship Hopcroft; Moore is the
//     cross-check oracle);
//   * synchronized vs blind pair-reachability closures (the blind closure
//     has quadratic branching, explaining why term-encoding classification
//     costs more);
//   * interpreter vs materialized-table execution for the Lemma 3.8
//     evaluator;
//   * event-level vs byte-level execution of the same registerless
//     automaton.

#include <benchmark/benchmark.h>

#include <string>

#include "automata/alphabet.h"
#include "automata/minimize.h"
#include "automata/random_dfa.h"
#include "automata/relations.h"
#include "base/check.h"
#include "base/rng.h"
#include "bench_util.h"
#include "dra/dra.h"
#include "dra/tag_dfa.h"
#include "dra/byte_runner.h"
#include "eval/registerless_query.h"
#include "eval/stackless_query.h"
#include "trees/encoding.h"

namespace sst {
namespace {

void BM_MinimizeHopcroft(benchmark::State& state) {
  Rng rng(5 + state.range(0));
  Dfa dfa = RandomDfa(static_cast<int>(state.range(0)), 3, 0.4, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Minimize(dfa));
  }
}
BENCHMARK(BM_MinimizeHopcroft)->RangeMultiplier(4)->Range(16, 1024);

void BM_MinimizeMoore(benchmark::State& state) {
  Rng rng(5 + state.range(0));
  Dfa dfa = RandomDfa(static_cast<int>(state.range(0)), 3, 0.4, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinimizeMoore(dfa));
  }
}
BENCHMARK(BM_MinimizeMoore)->RangeMultiplier(4)->Range(16, 1024);

void BM_PairReachabilitySynchronized(benchmark::State& state) {
  Rng rng(7 + state.range(0));
  Dfa dfa = Minimize(RandomDfa(static_cast<int>(state.range(0)), 3, 0.4,
                               &rng));
  for (auto _ : state) {
    PairReachability reach(dfa, /*blind=*/false);
    benchmark::DoNotOptimize(reach.Meets(0, dfa.num_states - 1));
  }
  state.counters["minimal_states"] = dfa.num_states;
}
BENCHMARK(BM_PairReachabilitySynchronized)->RangeMultiplier(2)->Range(16, 128);

void BM_PairReachabilityBlind(benchmark::State& state) {
  Rng rng(7 + state.range(0));
  Dfa dfa = Minimize(RandomDfa(static_cast<int>(state.range(0)), 3, 0.4,
                               &rng));
  for (auto _ : state) {
    PairReachability reach(dfa, /*blind=*/true);
    benchmark::DoNotOptimize(reach.Meets(0, dfa.num_states - 1));
  }
  state.counters["minimal_states"] = dfa.num_states;
}
BENCHMARK(BM_PairReachabilityBlind)->RangeMultiplier(2)->Range(16, 128);

EventStream AblationDocument() {
  return Encode(bench::MakeDocument(bench::DocShape::kMixed, 1 << 16, 3, 3));
}

void BM_StacklessInterpreter(benchmark::State& state) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex(".*a.*b", alphabet);
  StacklessQueryEvaluator machine(dfa, false);
  EventStream events = AblationDocument();
  for (auto _ : state) {
    machine.Reset();
    int64_t selected = 0;
    for (const TagEvent& event : events) {
      if (event.open) {
        machine.OnOpen(event.symbol);
        selected += machine.InAcceptingState() ? 1 : 0;
      } else {
        machine.OnClose(event.symbol);
      }
    }
    benchmark::DoNotOptimize(selected);
  }
  state.SetBytesProcessed(state.iterations() * bench::MarkupBytes(events));
}
BENCHMARK(BM_StacklessInterpreter);

void BM_StacklessMaterializedTable(benchmark::State& state) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex(".*a.*b", alphabet);
  std::optional<Dra> dra = MaterializeStacklessQueryDra(dfa, false, 100000);
  SST_CHECK(dra.has_value());
  DraRunner machine(&*dra);
  EventStream events = AblationDocument();
  for (auto _ : state) {
    machine.Reset();
    int64_t selected = 0;
    for (const TagEvent& event : events) {
      if (event.open) {
        machine.OnOpen(event.symbol);
        selected += machine.InAcceptingState() ? 1 : 0;
      } else {
        machine.OnClose(event.symbol);
      }
    }
    benchmark::DoNotOptimize(selected);
  }
  state.SetBytesProcessed(state.iterations() * bench::MarkupBytes(events));
  state.counters["dra_states"] = dra->num_states;
}
BENCHMARK(BM_StacklessMaterializedTable);

void BM_RegisterlessEventLevel(benchmark::State& state) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  TagDfa evaluator = BuildRegisterlessQueryAutomaton(dfa, false);
  TagDfaMachine machine(&evaluator);
  EventStream events = AblationDocument();
  for (auto _ : state) {
    machine.Reset();
    int64_t selected = 0;
    for (const TagEvent& event : events) {
      if (event.open) {
        machine.OnOpen(event.symbol);
        selected += machine.InAcceptingState() ? 1 : 0;
      } else {
        machine.OnClose(event.symbol);
      }
    }
    benchmark::DoNotOptimize(selected);
  }
  state.SetBytesProcessed(state.iterations() * bench::MarkupBytes(events));
}
BENCHMARK(BM_RegisterlessEventLevel);

void BM_RegisterlessByteLevel(benchmark::State& state) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  ByteTagDfaRunner runner(BuildRegisterlessQueryAutomaton(dfa, false));
  std::string bytes = ToCompactMarkup(alphabet, AblationDocument());
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.CountSelections(bytes));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_RegisterlessByteLevel);

}  // namespace
}  // namespace sst

BENCHMARK_MAIN();
