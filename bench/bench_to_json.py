#!/usr/bin/env python3
"""Post-processes Google Benchmark JSON into the BENCH_*.json artifact.

Keeps only the fields that are comparable across machines and PRs (name,
label, throughput, iteration time, user counters), sorts entries by name,
and rounds values so re-running on the same machine produces small diffs.
Usage: bench_to_json.py <raw-google-benchmark.json> [> BENCH_foo.json]
"""

import json
import sys


def compact(raw):
    ctx = raw.get("context", {})
    out = {
        "context": {
            "date": ctx.get("date"),
            "host_name": ctx.get("host_name"),
            "num_cpus": ctx.get("num_cpus"),
            "mhz_per_cpu": ctx.get("mhz_per_cpu"),
            "library_build_type": ctx.get("library_build_type"),
            # Custom context from bench_streaming's main(): which stage-1
            # SIMD kernel the runtime dispatch picked, and the build type
            # of the benchmark binary itself (library_build_type above is
            # the benchmark *library*'s).
            "byte_scan_kernel": ctx.get("byte_scan_kernel"),
            "build_type": ctx.get("build_type"),
        },
        "benchmarks": [],
    }
    for bench in raw.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        entry = {
            "name": bench.get("name"),
            "label": bench.get("label"),
            "real_time_ns": round(bench.get("real_time", 0.0), 1),
            "cpu_time_ns": round(bench.get("cpu_time", 0.0), 1),
            "iterations": bench.get("iterations"),
        }
        if "bytes_per_second" in bench:
            entry["mib_per_second"] = round(
                bench["bytes_per_second"] / (1 << 20), 1)
        for key, value in bench.items():
            if key in ("threads", "matches", "connections", "streams",
                       "p50_ms", "p99_ms", "sheds",
                       "latency_to_certainty_bytes", "certainty_lead_bytes",
                       "match_p50_ms", "match_p99_ms"):
                entry[key] = value
            # Incremental-reevaluation counters (bench_incremental):
            # rounded, since tiny jitter in a 1000x speedup figure is
            # noise in the diff.
            elif key in ("speedup_vs_rescan", "bytes_rescanned",
                         "rescan_ms", "edit_us"):
                entry[key] = round(value, 1)
            elif key in ("spliced_fraction", "pooled_vs_vector"):
                entry[key] = round(value, 3)
        out["benchmarks"].append(entry)
    out["benchmarks"].sort(key=lambda entry: entry["name"] or "")
    return out


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__)
    with open(sys.argv[1]) as handle:
        raw = json.load(handle)
    json.dump(compact(raw), sys.stdout, indent=1)
    sys.stdout.write("\n")


if __name__ == "__main__":
    main()
