// Experiments E6-E9: the constructive lower-bound machinery.
//   * Fig 4 / Lemma 3.12: fooling pairs defeating finite-state EL
//     recognizers of non-E-flat languages.
//   * Fig 5 / Lemma 3.16: fooling pairs defeating depth-register EL
//     recognizers of non-HAR languages.
//   * Fig 1 / Example 2.9: the Kn configuration-counting pigeonhole.
// Every iteration re-verifies the certificate (ground truths differ,
// victim verdicts agree) via SST_CHECK.

#include <benchmark/benchmark.h>

#include <memory>

#include "automata/alphabet.h"
#include "automata/minimize.h"
#include "base/check.h"
#include "eval/adapters.h"
#include "eval/el_synopsis.h"
#include "eval/stackless_query.h"
#include "fooling/fooling.h"
#include "trees/encoding.h"
#include "trees/ground_truth.h"

namespace sst {
namespace {

void BM_Lemma312FoolingPair(benchmark::State& state) {
  // L = ab is not E-flat; the victim is the synopsis automaton built
  // anyway. Measures construction + verification of the certificate.
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("ab", alphabet);
  ElSynopsisRecognizer victim(dfa, /*blind=*/false);
  int tree_nodes = 0;
  for (auto _ : state) {
    std::optional<FoolingPair> pair =
        FoolExistsRecognizer(dfa, &victim, /*use_har_gadget=*/false, 16);
    SST_CHECK(pair.has_value());
    SST_CHECK(TreeInExists(dfa, pair->in_el));
    SST_CHECK(!TreeInExists(dfa, pair->out_el));
    benchmark::DoNotOptimize(pair);
    tree_nodes = pair->in_el.size();
  }
  state.counters["certificate_nodes"] = tree_nodes;
  state.SetLabel("L=ab vs synopsis FA: fooled");
}
BENCHMARK(BM_Lemma312FoolingPair);

void BM_Lemma316FoolingPair(benchmark::State& state) {
  // L = Γ*ab is not HAR; the victim is a genuine depth-register machine
  // (the Lemma 3.8 evaluator wrapped as an EL recognizer).
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex(".*ab", alphabet);
  ExistsAdapter victim(
      std::make_unique<StacklessQueryEvaluator>(dfa, /*blind=*/false));
  int tree_nodes = 0;
  int exponent = 0;
  for (auto _ : state) {
    std::optional<FoolingPair> pair =
        FoolExistsRecognizer(dfa, &victim, /*use_har_gadget=*/true, 8);
    SST_CHECK(pair.has_value());
    SST_CHECK(TreeInExists(dfa, pair->in_el));
    SST_CHECK(!TreeInExists(dfa, pair->out_el));
    benchmark::DoNotOptimize(pair);
    tree_nodes = pair->in_el.size();
    exponent = pair->exponent;
  }
  state.counters["certificate_nodes"] = tree_nodes;
  state.counters["exponent"] = exponent;
  state.SetLabel("L=G*ab vs DRA: fooled");
}
BENCHMARK(BM_Lemma316FoolingPair);

void BM_Lemma316GadgetSizeSweep(benchmark::State& state) {
  // Size of the Fig 5 certificate as the pumping exponent grows (the
  // paper's n! is replaced by the searched exponent; sizes stay cubic).
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex(".*ab", alphabet);
  std::optional<NonHarWitness> witness = ExtractNonHarWitness(dfa);
  SST_CHECK(witness.has_value());
  int exponent = static_cast<int>(state.range(0));
  int nodes = 0;
  for (auto _ : state) {
    FoolingPair pair = BuildLemma316Trees(*witness, exponent, dfa);
    benchmark::DoNotOptimize(pair);
    nodes = pair.in_el.size();
  }
  state.counters["certificate_nodes"] = nodes;
}
BENCHMARK(BM_Lemma316GadgetSizeSweep)->DenseRange(1, 8);

void BM_TheoremB2BlindFoolingPair(benchmark::State& state) {
  // Fig 2's language separates the encodings: HAR (markup-stackless) but
  // not blindly HAR. The blind Fig 5 gadget defeats the Theorem B.2
  // machine on term-encoded streams.
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex("(b|ab*a)*", alphabet);
  ExistsAdapter victim(
      std::make_unique<StacklessQueryEvaluator>(dfa, /*blind=*/true));
  int tree_nodes = 0;
  for (auto _ : state) {
    std::optional<FoolingPair> pair =
        FoolTermExistsRecognizer(dfa, &victim, /*use_har_gadget=*/true, 8);
    SST_CHECK(pair.has_value());
    SST_CHECK(TreeInExists(dfa, pair->in_el));
    SST_CHECK(!TreeInExists(dfa, pair->out_el));
    benchmark::DoNotOptimize(pair);
    tree_nodes = pair->in_el.size();
  }
  state.counters["certificate_nodes"] = tree_nodes;
  state.SetLabel("even-a's vs blind DRA on JSON encoding: fooled");
}
BENCHMARK(BM_TheoremB2BlindFoolingPair);

void BM_Example29ConfigurationCount(benchmark::State& state) {
  // The pigeonhole of Example 2.9: 2^(n-2) prefixes, polynomially many
  // DRA configurations.
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex(".*a.*b", alphabet);
  std::optional<Dra> dra = MaterializeStacklessQueryDra(dfa, false, 50000);
  SST_CHECK(dra.has_value());
  const int n = static_cast<int>(state.range(0));
  int configurations = 0;
  for (auto _ : state) {
    configurations = CountKnPrefixConfigurations(*dra, n);
    benchmark::DoNotOptimize(configurations);
  }
  SST_CHECK(configurations < (1 << (n - 2)));
  state.counters["prefixes"] = static_cast<double>(1 << (n - 2));
  state.counters["configurations"] = configurations;
}
BENCHMARK(BM_Example29ConfigurationCount)->DenseRange(8, 16, 2);

void BM_QueryCounterexampleSearch(benchmark::State& state) {
  // Random-search refutation: how quickly a wrong evaluator is caught.
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex(".*ab", alphabet);
  StacklessQueryEvaluator victim(dfa, /*blind=*/false);
  uint64_t seed = 1;
  for (auto _ : state) {
    std::optional<Tree> counterexample =
        FindQueryCounterexample(dfa, &victim, false, 5000, seed++);
    SST_CHECK(counterexample.has_value());
    benchmark::DoNotOptimize(counterexample);
  }
}
BENCHMARK(BM_QueryCounterexampleSearch);

}  // namespace
}  // namespace sst

BENCHMARK_MAIN();
