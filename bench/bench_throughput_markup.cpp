// Experiment E10 (markup encoding): streaming evaluation throughput of the
// three evaluator tiers on the queries of Example 2.12, across document
// shapes. The paper's motivating claim (Section 1): stack maintenance is
// the expensive part; the stackless tiers should sustain markedly higher
// throughput on deep documents while the ordering registerless >= stackless
// >> stack holds overall.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "automata/alphabet.h"
#include "automata/minimize.h"
#include "bench_util.h"
#include "dra/tag_dfa.h"
#include "base/rng.h"
#include "dra/byte_runner.h"
#include "eval/registerless_query.h"
#include "eval/stack_evaluator.h"
#include "eval/stackless_query.h"
#include "trees/encoding.h"

namespace sst {
namespace {

constexpr int kDocNodes = 1 << 17;  // 128k nodes = 256 KiB compact markup

EventStream Document(bench::DocShape shape) {
  return Encode(bench::MakeDocument(shape, kDocNodes, 3, 42));
}

// Counts selected nodes so the work cannot be optimized away.
template <typename Machine>
int64_t Drive(Machine& machine, const EventStream& events) {
  machine.Reset();
  int64_t selected = 0;
  for (const TagEvent& event : events) {
    if (event.open) {
      machine.OnOpen(event.symbol);
      selected += machine.InAcceptingState() ? 1 : 0;
    } else {
      machine.OnClose(event.symbol);
    }
  }
  return selected;
}

void BM_StackBaseline(benchmark::State& state) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  EventStream events =
      Document(static_cast<bench::DocShape>(state.range(0)));
  StackQueryEvaluator machine(&dfa);
  int64_t selected = 0;
  for (auto _ : state) {
    selected = Drive(machine, events);
    benchmark::DoNotOptimize(selected);
  }
  state.SetBytesProcessed(state.iterations() * bench::MarkupBytes(events));
  state.counters["selected"] = static_cast<double>(selected);
  state.counters["peak_stack"] =
      static_cast<double>(machine.max_stack_depth());
  state.SetLabel(bench::ShapeName(static_cast<bench::DocShape>(
      state.range(0))));
}
BENCHMARK(BM_StackBaseline)->DenseRange(0, 2);

void BM_Registerless(benchmark::State& state) {
  // a Γ* b is almost-reversible: Lemma 3.5's plain DFA applies.
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  TagDfa evaluator = BuildRegisterlessQueryAutomaton(dfa, /*blind=*/false);
  EventStream events =
      Document(static_cast<bench::DocShape>(state.range(0)));
  TagDfaMachine machine(&evaluator);
  int64_t selected = 0;
  for (auto _ : state) {
    selected = Drive(machine, events);
    benchmark::DoNotOptimize(selected);
  }
  state.SetBytesProcessed(state.iterations() * bench::MarkupBytes(events));
  state.counters["selected"] = static_cast<double>(selected);
  state.SetLabel(bench::ShapeName(static_cast<bench::DocShape>(
      state.range(0))));
}
BENCHMARK(BM_Registerless)->DenseRange(0, 2);

void BM_Stackless(benchmark::State& state) {
  // Γ*aΓ*b is HAR but not almost-reversible: Lemma 3.8's DRA applies.
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex(".*a.*b", alphabet);
  StacklessQueryEvaluator machine(dfa, /*blind=*/false);
  EventStream events =
      Document(static_cast<bench::DocShape>(state.range(0)));
  int64_t selected = 0;
  for (auto _ : state) {
    selected = Drive(machine, events);
    benchmark::DoNotOptimize(selected);
  }
  state.SetBytesProcessed(state.iterations() * bench::MarkupBytes(events));
  state.counters["selected"] = static_cast<double>(selected);
  state.counters["registers"] = machine.num_registers();
  state.SetLabel(bench::ShapeName(static_cast<bench::DocShape>(
      state.range(0))));
}
BENCHMARK(BM_Stackless)->DenseRange(0, 2);

void BM_StackBaselineSameQueryAsStackless(benchmark::State& state) {
  // Apples-to-apples for the stackless tier: the same Γ*aΓ*b query on the
  // stack baseline.
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex(".*a.*b", alphabet);
  EventStream events =
      Document(static_cast<bench::DocShape>(state.range(0)));
  StackQueryEvaluator machine(&dfa);
  int64_t selected = 0;
  for (auto _ : state) {
    selected = Drive(machine, events);
    benchmark::DoNotOptimize(selected);
  }
  state.SetBytesProcessed(state.iterations() * bench::MarkupBytes(events));
  state.counters["selected"] = static_cast<double>(selected);
  state.SetLabel(bench::ShapeName(static_cast<bench::DocShape>(
      state.range(0))));
}
BENCHMARK(BM_StackBaselineSameQueryAsStackless)->DenseRange(0, 2);

// --- Byte-level runners (Section 4.3 outlook) ---------------------------
//
// The registerless tier degenerates to one fused table lookup per input
// byte; the stack baseline must also maintain O(depth) memory. On very deep
// documents the stack exceeds cache and the gap widens.

constexpr int kByteDocNodes = 1 << 21;  // 4 MiB of compact markup

std::string ByteDocument(int shape) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Tree tree;
  if (shape == 3) {
    // Pathologically deep: a pure chain (depth = node count).
    Rng rng(9);
    Word labels;
    for (int i = 0; i < kByteDocNodes; ++i) {
      labels.push_back(static_cast<Symbol>(rng.NextBelow(3)));
    }
    tree = ChainTree(labels);
  } else {
    tree = bench::MakeDocument(static_cast<bench::DocShape>(shape),
                               kByteDocNodes, 3, 44);
  }
  return ToCompactMarkup(alphabet, Encode(tree));
}

const char* ByteShapeName(int shape) {
  return shape == 3 ? "chain" : bench::ShapeName(
                                    static_cast<bench::DocShape>(shape));
}

void BM_ByteRegisterless(benchmark::State& state) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  ByteTagDfaRunner runner(BuildRegisterlessQueryAutomaton(dfa, false));
  std::string bytes = ByteDocument(static_cast<int>(state.range(0)));
  int64_t selected = 0;
  for (auto _ : state) {
    selected = runner.CountSelections(bytes);
    benchmark::DoNotOptimize(selected);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
  state.counters["selected"] = static_cast<double>(selected);
  state.SetLabel(ByteShapeName(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_ByteRegisterless)->Arg(1)->Arg(2)->Arg(3);

void BM_ByteStackBaseline(benchmark::State& state) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  ByteStackRunner runner(dfa);
  std::string bytes = ByteDocument(static_cast<int>(state.range(0)));
  int64_t selected = 0;
  for (auto _ : state) {
    selected = runner.CountSelections(bytes);
    benchmark::DoNotOptimize(selected);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
  state.counters["selected"] = static_cast<double>(selected);
  state.counters["peak_stack"] = static_cast<double>(runner.max_stack_depth());
  state.SetLabel(ByteShapeName(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_ByteStackBaseline)->Arg(1)->Arg(2)->Arg(3);

}  // namespace
}  // namespace sst

BENCHMARK_MAIN();
