#!/usr/bin/env bash
# Runs the streaming benchmark suite and refreshes the BENCH_streaming.json
# perf-trajectory artifact at the repo root. Usage:
#
#   bench/run_benches.sh [--build-dir DIR] [--min-time SECONDS] [--filter RE]
#
# The artifact is Google Benchmark's JSON, post-processed by
# bench/bench_to_json.py into a stable, diff-friendly shape (sorted entries,
# rounded throughput) so PR-over-PR comparisons are meaningful.
set -euo pipefail

BUILD_DIR=build
MIN_TIME=0.05
FILTER=.
while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD_DIR=$2; shift 2 ;;
    --min-time)  MIN_TIME=$2;  shift 2 ;;
    --filter)    FILTER=$2;    shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

repo_root=$(cd "$(dirname "$0")/.." && pwd)
cd "$repo_root"
bin="$BUILD_DIR/bench/bench_streaming"
[[ -x $bin ]] || { echo "missing $bin — build the benches first" >&2; exit 1; }

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
# Google Benchmark >= 1.8 wants a unit suffix on --benchmark_min_time and
# older releases reject it; try the suffixed spelling first.
if ! "$bin" --benchmark_format=json --benchmark_min_time="${MIN_TIME}s" \
     --benchmark_filter="$FILTER" > "$raw" 2>/dev/null; then
  "$bin" --benchmark_format=json --benchmark_min_time="$MIN_TIME" \
     --benchmark_filter="$FILTER" > "$raw"
fi

python3 bench/bench_to_json.py "$raw" > BENCH_streaming.json
echo "wrote $repo_root/BENCH_streaming.json"
