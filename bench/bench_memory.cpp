// Experiment E11: auxiliary memory versus document depth. The stack
// baseline's working set grows linearly with the depth of the document; a
// depth-register automaton keeps a constant number of registers no matter
// how deep the stream nests (the paper's core systems argument).

#include <benchmark/benchmark.h>

#include <algorithm>

#include "automata/alphabet.h"
#include "automata/minimize.h"
#include "base/rng.h"
#include "eval/stack_evaluator.h"
#include "eval/stackless_query.h"
#include "trees/encoding.h"
#include "trees/generators.h"

namespace sst {
namespace {

EventStream DeepDocument(int depth) {
  // A chain of `depth` nodes plus a small random crown at the bottom.
  Rng rng(7);
  Word labels;
  labels.reserve(depth);
  for (int i = 0; i < depth; ++i) {
    labels.push_back(static_cast<Symbol>(rng.NextBelow(3)));
  }
  return Encode(ChainTree(labels));
}

void BM_StackMemory(benchmark::State& state) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex(".*a.*b", alphabet);
  EventStream events = DeepDocument(static_cast<int>(state.range(0)));
  StackQueryEvaluator machine(&dfa);
  for (auto _ : state) {
    machine.Reset();
    for (const TagEvent& event : events) {
      if (event.open) {
        machine.OnOpen(event.symbol);
      } else {
        machine.OnClose(event.symbol);
      }
    }
    benchmark::DoNotOptimize(machine.max_stack_depth());
  }
  // Auxiliary memory in machine words (stacked DFA states).
  state.counters["aux_memory_words"] =
      static_cast<double>(machine.max_stack_depth());
  state.counters["depth"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_StackMemory)->RangeMultiplier(10)->Range(10, 1000000);

void BM_StacklessMemory(benchmark::State& state) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex(".*a.*b", alphabet);
  EventStream events = DeepDocument(static_cast<int>(state.range(0)));
  StacklessQueryEvaluator machine(dfa, /*blind=*/false);
  size_t peak_registers = 0;
  for (auto _ : state) {
    machine.Reset();
    peak_registers = 0;
    for (const TagEvent& event : events) {
      if (event.open) {
        machine.OnOpen(event.symbol);
      } else {
        machine.OnClose(event.symbol);
      }
      peak_registers = std::max(peak_registers, machine.live_registers());
    }
    benchmark::DoNotOptimize(peak_registers);
  }
  state.counters["aux_memory_words"] = static_cast<double>(peak_registers);
  state.counters["depth"] = static_cast<double>(state.range(0));
  state.counters["register_budget"] =
      static_cast<double>(machine.num_registers());
}
BENCHMARK(BM_StacklessMemory)->RangeMultiplier(10)->Range(10, 1000000);

}  // namespace
}  // namespace sst

BENCHMARK_MAIN();
