// Experiment E12: boolean-query (EL/AL) recognition throughput — the
// Lemma 3.11 synopsis automaton and the Theorem 3.2(2) AL recognizer versus
// the stack-based adapter baseline.

#include <benchmark/benchmark.h>

#include <memory>

#include "automata/alphabet.h"
#include "automata/minimize.h"
#include "bench_util.h"
#include "base/check.h"
#include "dra/tag_dfa.h"
#include "eval/adapters.h"
#include "eval/al_recognizer.h"
#include "eval/el_synopsis.h"
#include "eval/stack_evaluator.h"
#include "trees/encoding.h"

namespace sst {
namespace {

constexpr int kDocNodes = 1 << 16;

// Co-finite language (E-flat): every word except ab — the recognizer
// accepts trees with some branch other than exactly 'ab'.
Dfa EFlatLanguage() {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  return Complement(CompileRegex("ab", alphabet));
}

// Finite language (A-flat): all branches must be ab or abc.
Dfa AFlatLanguage() {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  return CompileRegex("ab|abc", alphabet);
}

int64_t DriveAcceptor(StreamMachine* machine, const EventStream& events) {
  machine->Reset();
  for (const TagEvent& event : events) {
    if (event.open) {
      machine->OnOpen(event.symbol);
    } else {
      machine->OnClose(event.symbol);
    }
  }
  return machine->InAcceptingState() ? 1 : 0;
}

void BM_ExistsSynopsis(benchmark::State& state) {
  Dfa dfa = EFlatLanguage();
  ElSynopsisRecognizer machine(dfa, /*blind=*/false);
  EventStream events = Encode(bench::MakeDocument(
      static_cast<bench::DocShape>(state.range(0)), kDocNodes, 3, 11));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DriveAcceptor(&machine, events));
  }
  state.SetBytesProcessed(state.iterations() * bench::MarkupBytes(events));
  state.SetLabel(bench::ShapeName(static_cast<bench::DocShape>(
      state.range(0))));
}
BENCHMARK(BM_ExistsSynopsis)->DenseRange(0, 2);

void BM_ExistsMaterialized(benchmark::State& state) {
  // The same recognizer as an explicit table automaton (what the facade
  // compiles when the state space fits the budget).
  Dfa dfa = EFlatLanguage();
  std::optional<TagDfa> materialized =
      MaterializeElRecognizer(dfa, /*blind=*/false, 1 << 16);
  SST_CHECK(materialized.has_value());
  TagDfaMachine machine(&*materialized);
  EventStream events = Encode(bench::MakeDocument(
      static_cast<bench::DocShape>(state.range(0)), kDocNodes, 3, 11));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DriveAcceptor(&machine, events));
  }
  state.SetBytesProcessed(state.iterations() * bench::MarkupBytes(events));
  state.counters["automaton_states"] = materialized->num_states;
  state.SetLabel(bench::ShapeName(static_cast<bench::DocShape>(
      state.range(0))));
}
BENCHMARK(BM_ExistsMaterialized)->DenseRange(0, 2);

void BM_ForallMaterialized(benchmark::State& state) {
  Dfa dfa = AFlatLanguage();
  std::optional<TagDfa> materialized =
      MaterializeForallRecognizer(dfa, /*blind=*/false, 1 << 16);
  SST_CHECK(materialized.has_value());
  TagDfaMachine machine(&*materialized);
  EventStream events = Encode(bench::MakeDocument(
      static_cast<bench::DocShape>(state.range(0)), kDocNodes, 3, 13));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DriveAcceptor(&machine, events));
  }
  state.SetBytesProcessed(state.iterations() * bench::MarkupBytes(events));
  state.counters["automaton_states"] = materialized->num_states;
  state.SetLabel(bench::ShapeName(static_cast<bench::DocShape>(
      state.range(0))));
}
BENCHMARK(BM_ForallMaterialized)->DenseRange(0, 2);

void BM_ExistsStackAdapter(benchmark::State& state) {
  Dfa dfa = EFlatLanguage();
  ExistsAdapter machine(std::make_unique<StackQueryEvaluator>(&dfa));
  EventStream events = Encode(bench::MakeDocument(
      static_cast<bench::DocShape>(state.range(0)), kDocNodes, 3, 11));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DriveAcceptor(&machine, events));
  }
  state.SetBytesProcessed(state.iterations() * bench::MarkupBytes(events));
  state.SetLabel(bench::ShapeName(static_cast<bench::DocShape>(
      state.range(0))));
}
BENCHMARK(BM_ExistsStackAdapter)->DenseRange(0, 2);

void BM_ForallRecognizer(benchmark::State& state) {
  Dfa dfa = AFlatLanguage();
  std::unique_ptr<StreamMachine> machine =
      BuildForallRecognizer(dfa, /*blind=*/false);
  EventStream events = Encode(bench::MakeDocument(
      static_cast<bench::DocShape>(state.range(0)), kDocNodes, 3, 13));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DriveAcceptor(machine.get(), events));
  }
  state.SetBytesProcessed(state.iterations() * bench::MarkupBytes(events));
  state.SetLabel(bench::ShapeName(static_cast<bench::DocShape>(
      state.range(0))));
}
BENCHMARK(BM_ForallRecognizer)->DenseRange(0, 2);

void BM_ForallStackAdapter(benchmark::State& state) {
  Dfa dfa = AFlatLanguage();
  ForallAdapter machine(std::make_unique<StackQueryEvaluator>(&dfa));
  EventStream events = Encode(bench::MakeDocument(
      static_cast<bench::DocShape>(state.range(0)), kDocNodes, 3, 13));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DriveAcceptor(&machine, events));
  }
  state.SetBytesProcessed(state.iterations() * bench::MarkupBytes(events));
  state.SetLabel(bench::ShapeName(static_cast<bench::DocShape>(
      state.range(0))));
}
BENCHMARK(BM_ForallStackAdapter)->DenseRange(0, 2);

}  // namespace
}  // namespace sst

BENCHMARK_MAIN();
