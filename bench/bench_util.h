#ifndef SST_BENCH_BENCH_UTIL_H_
#define SST_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "base/rng.h"
#include "trees/encoding.h"
#include "trees/generators.h"
#include "trees/tree.h"

namespace sst::bench {

// Document shapes used across throughput experiments. Sizes are node
// counts; the markup encoding has 2 bytes per node in compact form.
enum class DocShape { kDeep, kBushy, kMixed };

inline const char* ShapeName(DocShape shape) {
  switch (shape) {
    case DocShape::kDeep:
      return "deep";
    case DocShape::kBushy:
      return "bushy";
    case DocShape::kMixed:
      return "mixed";
  }
  return "?";
}

inline Tree MakeDocument(DocShape shape, int nodes, int num_symbols,
                         uint64_t seed) {
  Rng rng(seed);
  switch (shape) {
    case DocShape::kDeep:
      return RandomTree(nodes, num_symbols, 0.95, &rng);
    case DocShape::kBushy:
      return RandomTree(nodes, num_symbols, 0.05, &rng);
    case DocShape::kMixed:
      return RandomTree(nodes, num_symbols, 0.5, &rng);
  }
  return RandomTree(nodes, num_symbols, 0.5, &rng);
}

// Bytes of the compact markup serialization (1 byte per tag).
inline int64_t MarkupBytes(const EventStream& events) {
  return static_cast<int64_t>(events.size());
}

// Bytes of the compact term serialization (2 bytes per opening tag `x{`,
// 1 per closing `}`).
inline int64_t TermBytes(const EventStream& events) {
  return static_cast<int64_t>(events.size() / 2 * 3);
}

}  // namespace sst::bench

#endif  // SST_BENCH_BENCH_UTIL_H_
