#!/usr/bin/env bash
# Closed-loop serving benchmark: boots examples/query_server, drives it
# with examples/load_client over loopback, drains the server with SIGTERM
# (so every bench run also exercises the graceful-drain path), and writes
# the BENCH_serving.json perf-trajectory artifact at the repo root.
#
#   bench/run_serving_bench.sh [--build-dir DIR] [--connections N]
#                              [--docs N] [--chunk-size BYTES] [--batch Q]
#
# The client exits non-zero on any count mismatch against its offline
# engine run, so a passing bench is also an end-to-end correctness check.
set -euo pipefail

BUILD_DIR=build
CONNECTIONS=1000
DOCS=3
CHUNK=8192
BATCH=4
while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir)   BUILD_DIR=$2;   shift 2 ;;
    --connections) CONNECTIONS=$2; shift 2 ;;
    --docs)        DOCS=$2;        shift 2 ;;
    --chunk-size)  CHUNK=$2;       shift 2 ;;
    --batch)       BATCH=$2;       shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

repo_root=$(cd "$(dirname "$0")/.." && pwd)
cd "$repo_root"
server="$BUILD_DIR/examples/query_server"
client="$BUILD_DIR/examples/load_client"
[[ -x $server && -x $client ]] ||
  { echo "missing $server / $client — build the examples first" >&2; exit 1; }

port_file=$(mktemp)
raw=$(mktemp)
server_log=$(mktemp)
cleanup() {
  [[ -n "${server_pid:-}" ]] && kill "$server_pid" 2>/dev/null || true
  rm -f "$port_file" "$raw" "$server_log"
}
trap cleanup EXIT

: > "$port_file"
"$server" --port 0 --port-file "$port_file" --workers 2 \
  --max-connections 4096 --max-streams 2048 > "$server_log" 2>&1 &
server_pid=$!

# The server writes its kernel-assigned port to the file once it listens.
for _ in $(seq 1 100); do
  [[ -s "$port_file" ]] && break
  kill -0 "$server_pid" 2>/dev/null ||
    { echo "server died during startup:" >&2; cat "$server_log" >&2; exit 1; }
  sleep 0.1
done
[[ -s "$port_file" ]] || { echo "server never published a port" >&2; exit 1; }
port=$(cat "$port_file")

"$client" --port "$port" --connections "$CONNECTIONS" --docs "$DOCS" \
  --chunk-size "$CHUNK" --batch "$BATCH" --timeout-s 300 --json-out "$raw"

# Graceful drain: SIGTERM, then wait for a clean exit (non-zero would mean
# the drain machinery wedged or force-close left the process hanging).
kill -TERM "$server_pid"
wait "$server_pid"
server_pid=

python3 bench/bench_to_json.py "$raw" > BENCH_serving.json
echo "wrote $repo_root/BENCH_serving.json"
