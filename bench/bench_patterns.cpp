// Experiment E13: descendant-pattern matching (Proposition 2.8) —
// streaming matcher throughput versus pattern size, against the in-memory
// dynamic-programming matcher (which needs the whole tree materialized).

#include <benchmark/benchmark.h>

#include "base/rng.h"
#include "bench_util.h"
#include "dra/machine.h"
#include "patterns/descendant_pattern.h"
#include "trees/encoding.h"
#include "trees/generators.h"

namespace sst {
namespace {

constexpr int kDocNodes = 1 << 15;

Tree MakePattern(int nodes, uint64_t seed) {
  Rng rng(seed);
  return RandomTree(nodes, 3, 0.5, &rng);
}

void BM_StreamingMatcher(benchmark::State& state) {
  Tree pattern = MakePattern(static_cast<int>(state.range(0)), 55);
  Tree document = bench::MakeDocument(bench::DocShape::kMixed, kDocNodes, 3,
                                      56);
  EventStream events = Encode(document);
  DescendantPatternMatcher matcher(pattern);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunAcceptor(&matcher, events));
  }
  state.SetBytesProcessed(state.iterations() * bench::MarkupBytes(events));
  state.counters["pattern_nodes"] = pattern.size();
  state.counters["registers"] = matcher.num_registers();
}
BENCHMARK(BM_StreamingMatcher)->DenseRange(1, 6);

void BM_InMemoryDpMatcher(benchmark::State& state) {
  Tree pattern = MakePattern(static_cast<int>(state.range(0)), 55);
  Tree document = bench::MakeDocument(bench::DocShape::kMixed, kDocNodes, 3,
                                      56);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ContainsPattern(document, pattern));
  }
  state.SetBytesProcessed(state.iterations() * 2 *
                          static_cast<int64_t>(document.size()));
  state.counters["pattern_nodes"] = pattern.size();
}
BENCHMARK(BM_InMemoryDpMatcher)->DenseRange(1, 6);

void BM_MatcherVerifiedAgainstOracle(benchmark::State& state) {
  // Correctness-in-the-loop variant on a fresh document per iteration.
  Tree pattern = MakePattern(3, 57);
  DescendantPatternMatcher matcher(pattern);
  Rng rng(58);
  int64_t agreements = 0;
  for (auto _ : state) {
    Tree document = RandomTree(512, 3, rng.NextDouble(), &rng);
    bool streamed = RunAcceptor(&matcher, Encode(document));
    bool oracle = ContainsPattern(document, pattern);
    if (streamed != oracle) state.SkipWithError("matcher disagreed");
    ++agreements;
  }
  state.counters["verified_documents"] = static_cast<double>(agreements);
}
BENCHMARK(BM_MatcherVerifiedAgainstOracle);

}  // namespace
}  // namespace sst

BENCHMARK_MAIN();
