#!/usr/bin/env bash
# Runs the incremental-reevaluation benchmark and refreshes the
# BENCH_incremental.json perf-trajectory artifact at the repo root. Usage:
#
#   bench/run_incremental_bench.sh [--build-dir DIR] [--min-time SECONDS]
#                                  [--filter RE]
#
# Same artifact contract as bench/run_benches.sh: Google Benchmark JSON
# post-processed by bench/bench_to_json.py into a stable, diff-friendly
# shape. CI floor-checks the result against
# bench/bench_incremental_baselines.json (the >= 10x edit-vs-rescan bar
# and the pooled-vs-vector stack ratio).
set -euo pipefail

BUILD_DIR=build
MIN_TIME=0.05
FILTER=.
while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD_DIR=$2; shift 2 ;;
    --min-time)  MIN_TIME=$2;  shift 2 ;;
    --filter)    FILTER=$2;    shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

repo_root=$(cd "$(dirname "$0")/.." && pwd)
cd "$repo_root"
bin="$BUILD_DIR/bench/bench_incremental"
[[ -x $bin ]] || { echo "missing $bin — build the benches first" >&2; exit 1; }

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
# Google Benchmark >= 1.8 wants a unit suffix on --benchmark_min_time and
# older releases reject it; try the suffixed spelling first.
if ! "$bin" --benchmark_format=json --benchmark_min_time="${MIN_TIME}s" \
     --benchmark_filter="$FILTER" > "$raw" 2>/dev/null; then
  "$bin" --benchmark_format=json --benchmark_min_time="$MIN_TIME" \
     --benchmark_filter="$FILTER" > "$raw"
fi

python3 bench/bench_to_json.py "$raw" > BENCH_incremental.json
echo "wrote $repo_root/BENCH_incremental.json"
