#!/usr/bin/env python3
"""Compares a BENCH_streaming.json artifact against committed baselines.

bench/bench_baselines.json pins the padded-corpus throughput (MiB/s) of
the fused-tier benchmarks — the rows the structural-index execution path
is responsible for. A run must reach at least (1 - tolerance) of each
committed figure; anything lower fails the check (and CI). Missing rows
fail too, so a silently-skipped benchmark cannot pass.

Usage:
  check_bench_baselines.py [--artifact BENCH_streaming.json]
                           [--baselines bench/bench_baselines.json]
                           [--tolerance 0.30]
"""

import argparse
import json
import sys


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--artifact", default="BENCH_streaming.json")
    parser.add_argument("--baselines", default="bench/bench_baselines.json")
    parser.add_argument("--tolerance", type=float, default=0.30)
    args = parser.parse_args()

    with open(args.artifact) as handle:
        artifact = json.load(handle)
    with open(args.baselines) as handle:
        baselines = json.load(handle)

    measured = {
        bench["name"]: bench.get("mib_per_second")
        for bench in artifact.get("benchmarks", [])
    }

    failures = []
    print(f"{'benchmark':55} {'baseline':>10} {'floor':>10} {'measured':>10}")
    for name, baseline in sorted(baselines["baselines_mib_per_second"].items()):
        floor = baseline * (1.0 - args.tolerance)
        got = measured.get(name)
        shown = "MISSING" if got is None else f"{got:.1f}"
        print(f"{name:55} {baseline:10.1f} {floor:10.1f} {shown:>10}")
        if got is None:
            failures.append(f"{name}: not present in {args.artifact}")
        elif got < floor:
            failures.append(
                f"{name}: {got:.1f} MiB/s < floor {floor:.1f} MiB/s "
                f"(baseline {baseline:.1f}, tolerance {args.tolerance:.0%})")

    if failures:
        print("\nFAIL: padded-corpus throughput regression", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        sys.exit(1)
    print("\nOK: all fused-tier padded-corpus benchmarks within tolerance")


if __name__ == "__main__":
    main()
