#!/usr/bin/env python3
"""Compares a BENCH_streaming.json artifact against committed baselines.

bench/bench_baselines.json pins the padded-corpus throughput (MiB/s) of
the fused-tier benchmarks — the rows the structural-index execution path
is responsible for. A run must reach at least (1 - tolerance) of each
committed figure; anything lower fails the check (and CI). Missing rows
fail too, so a silently-skipped benchmark cannot pass.

The baselines file may also carry "relative_floors": same-artifact
throughput ratios that must hold regardless of the machine. Each entry
pins one benchmark to a fraction of another from the SAME run — e.g. the
counting-sink scan must reach >= 95% of the sink-off scan, the
match-event pipeline's <=5% overhead budget.

A third optional section, "counter_floors", pins a user counter of a
named benchmark to an absolute minimum — machine-independent ratios the
benchmark computes itself, like bench_incremental's speedup_vs_rescan
(incremental edits must beat a full rescan by >= 10x). Any section may
be absent; a file may carry only counter_floors.

Usage:
  check_bench_baselines.py [--artifact BENCH_streaming.json]
                           [--baselines bench/bench_baselines.json]
                           [--tolerance 0.30]
"""

import argparse
import json
import sys


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--artifact", default="BENCH_streaming.json")
    parser.add_argument("--baselines", default="bench/bench_baselines.json")
    parser.add_argument("--tolerance", type=float, default=0.30)
    args = parser.parse_args()

    with open(args.artifact) as handle:
        artifact = json.load(handle)
    with open(args.baselines) as handle:
        baselines = json.load(handle)

    measured = {
        bench["name"]: bench.get("mib_per_second")
        for bench in artifact.get("benchmarks", [])
    }
    rows = {bench["name"]: bench for bench in artifact.get("benchmarks", [])}

    failures = []
    absolute = baselines.get("baselines_mib_per_second", {})
    if absolute:
        print(f"{'benchmark':55} {'baseline':>10} {'floor':>10} "
              f"{'measured':>10}")
    for name, baseline in sorted(absolute.items()):
        floor = baseline * (1.0 - args.tolerance)
        got = measured.get(name)
        shown = "MISSING" if got is None else f"{got:.1f}"
        print(f"{name:55} {baseline:10.1f} {floor:10.1f} {shown:>10}")
        if got is None:
            failures.append(f"{name}: not present in {args.artifact}")
        elif got < floor:
            failures.append(
                f"{name}: {got:.1f} MiB/s < floor {floor:.1f} MiB/s "
                f"(baseline {baseline:.1f}, tolerance {args.tolerance:.0%})")

    relative = baselines.get("relative_floors", {})
    if relative:
        print(f"\n{'benchmark':40} {'vs':28} {'min_ratio':>9} {'ratio':>8}")
    for name, spec in sorted(relative.items()):
        other = spec["of"]
        min_ratio = float(spec["min_ratio"])
        got = measured.get(name)
        ref = measured.get(other)
        if got is None or ref is None:
            missing = name if got is None else other
            print(f"{name:40} {other:28} {min_ratio:9.2f}  MISSING")
            failures.append(
                f"{name} vs {other}: {missing} not present in "
                f"{args.artifact}")
            continue
        ratio = got / ref if ref else 0.0
        print(f"{name:40} {other:28} {min_ratio:9.2f} {ratio:8.3f}")
        if ratio < min_ratio:
            failures.append(
                f"{name}: {got:.1f} MiB/s is {ratio:.1%} of {other} "
                f"({ref:.1f} MiB/s), below the {min_ratio:.0%} floor")

    counters = baselines.get("counter_floors", {})
    if counters:
        print(f"\n{'benchmark':45} {'counter':20} {'min':>10} "
              f"{'measured':>10}")
    for name, spec in sorted(counters.items()):
        counter = spec["counter"]
        floor = float(spec["min"])
        row = rows.get(name)
        got = None if row is None else row.get(counter)
        shown = "MISSING" if got is None else f"{got:.1f}"
        print(f"{name:45} {counter:20} {floor:10.1f} {shown:>10}")
        if got is None:
            failures.append(
                f"{name}.{counter}: not present in {args.artifact}")
        elif got < floor:
            failures.append(
                f"{name}.{counter}: {got:.1f} below the committed floor "
                f"{floor:.1f}")

    if failures:
        print("\nFAIL: padded-corpus throughput regression", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        sys.exit(1)
    print("\nOK: all fused-tier padded-corpus benchmarks within tolerance")


if __name__ == "__main__":
    main()
