// Propositions 2.3 and 2.13 as executable procedures: cost of translating
// restricted DRAs to tree automata, of tree-automata membership, and of
// the exact RPQ-ness decision via hedge-automata equivalence.

#include <benchmark/benchmark.h>

#include "automata/alphabet.h"
#include "automata/minimize.h"
#include "base/check.h"
#include "base/rng.h"
#include "dra/tag_dfa.h"
#include "eval/stackless_query.h"
#include "treeauto/hedge_automaton.h"
#include "treeauto/hedge_builders.h"
#include "treeauto/marked_trees.h"
#include "treeauto/restricted_to_tree_automaton.h"
#include "treeauto/rpqness.h"
#include "trees/generators.h"

namespace sst {
namespace {

Dra SeenADra() {
  TagDfa dfa = TagDfa::Create(2, 2);
  dfa.initial = 0;
  dfa.accepting = {false, true};
  dfa.SetNextOpen(0, 0, 1);
  dfa.SetNextOpen(0, 1, 0);
  for (Symbol s = 0; s < 2; ++s) {
    dfa.SetNextClose(0, s, 0);
    dfa.SetNextOpen(1, s, 1);
    dfa.SetNextClose(1, s, 1);
  }
  return DraFromTagDfa(dfa);
}

void BM_Prop23Translation(benchmark::State& state) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex(".*a.*b", alphabet);
  std::optional<Dra> dra = MaterializeStacklessQueryDra(dfa, false, 50000);
  SST_CHECK(dra.has_value());
  for (auto _ : state) {
    RestrictedDraTreeAutomaton nta(*dra);
    benchmark::DoNotOptimize(nta.NumCandidateStates());
  }
}
BENCHMARK(BM_Prop23Translation);

void BM_Prop23Membership(benchmark::State& state) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex(".*a.*b", alphabet);
  std::optional<Dra> dra = MaterializeStacklessQueryDra(dfa, false, 50000);
  SST_CHECK(dra.has_value());
  RestrictedDraTreeAutomaton nta(*dra);
  Rng rng(3);
  Tree tree = RandomTree(static_cast<int>(state.range(0)), 2, 0.5, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nta.Accepts(tree));
  }
  state.counters["tree_nodes"] = tree.size();
}
BENCHMARK(BM_Prop23Membership)->Range(16, 1024);

void BM_HedgeMembership(benchmark::State& state) {
  HedgeAutomaton automaton = SomeLabelHedgeAutomaton(2, 0);
  Rng rng(5);
  Tree tree = RandomTree(static_cast<int>(state.range(0)), 2, 0.5, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HedgeAccepts(automaton, tree));
  }
  state.counters["tree_nodes"] = tree.size();
}
BENCHMARK(BM_HedgeMembership)->Range(16, 4096);

void BM_HedgeDeterminizeAndEquivalence(benchmark::State& state) {
  HedgeAutomaton some_a = SomeLabelHedgeAutomaton(2, 0);
  HedgeAutomaton some_b = SomeLabelHedgeAutomaton(2, 1);
  for (auto _ : state) {
    std::optional<bool> equal = HedgeEquivalent(some_a, some_b, 512);
    SST_CHECK(equal.has_value() && !*equal);
  }
}
BENCHMARK(BM_HedgeDeterminizeAndEquivalence);

void BM_Prop213Exact(benchmark::State& state) {
  Dra dra = SeenADra();
  for (auto _ : state) {
    std::optional<bool> is_rpq = IsRpqExact(dra, 4000);
    SST_CHECK(is_rpq.has_value() && !*is_rpq);
  }
  state.SetLabel("'seen an a' query correctly refuted as non-RPQ");
}
BENCHMARK(BM_Prop213Exact);

void BM_Prop213Bounded(benchmark::State& state) {
  Dra dra = SeenADra();
  const int bound = static_cast<int>(state.range(0));
  for (auto _ : state) {
    RpqnessResult result = CheckRpqness(dra, bound);
    benchmark::DoNotOptimize(result);
  }
  state.counters["universe_max_nodes"] = bound;
}
BENCHMARK(BM_Prop213Bounded)->DenseRange(3, 7);

}  // namespace
}  // namespace sst

BENCHMARK_MAIN();
