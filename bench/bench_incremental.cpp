// Incremental re-evaluation benchmark (engine/incremental.h): the edit
// loop the subsystem exists for. A large compact-markup document is
// scanned once with checkpoints, then small edits are applied through
// IncrementalSession::ApplyEdit; the headline counter is
// speedup_vs_rescan — ApplyEdit's mean latency against a fresh full scan
// of the same document — which the committed floor in
// bench/bench_incremental_baselines.json pins at >= 10x on the ~100 MiB
// row. Every iteration SST_CHECKs the match count against an
// independently tracked expectation, so the timed loop is also a
// correctness loop.
//
// The pooled-vs-vector rows time the rewritten StackQueryEvaluator (the
// refcounted pooled chunked stack) against the retained std::vector
// baseline. BM_StackPooledScan / BM_StackVectorScan are unfloored
// trajectory rows on a deep pure-spine document (every byte a stack op —
// the pooled stack's worst case). The floored row is
// BM_StackPooledVsVector on the leafy whitespace-padded corpus the
// repo's acceptance convention uses: it runs both machines interleaved
// within one benchmark, alternating which goes first each iteration,
// and reports the median of per-pair time ratios as pooled_vs_vector
// (vector seconds / pooled seconds, 1.0 = parity) — immune to clock
// drift between separately timed rows. The committed floor holds the
// pooled stack within 5% of the vector's throughput (measured at or
// above parity since push/pop became chunk-index bumps).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "automata/alphabet.h"
#include "automata/minimize.h"
#include "base/check.h"
#include "base/rng.h"
#include "dra/streaming.h"
#include "engine/incremental.h"
#include "engine/query_plan.h"
#include "eval/stack_evaluator.h"
#include "query/rpq.h"
#include "testing/edit_workload.h"

namespace sst {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// --- Flat-document corpus for the /a/b edit loop ----------------------
//
// "a" + children + "A", every child a two-byte element: "cC" filler with
// a sparse "bB" every kMatchStride children. Matches of /a/b stay in the
// tens of thousands even at 100 MiB, so the suffix splice moves a small
// event list, not a multi-hundred-MB one — the deployment the paper's
// pre-selection model targets (sparse hits over a huge stream).
constexpr int64_t kMatchStride = 4096;

struct FlatDoc {
  std::string bytes;
  int64_t children = 0;
  int64_t matches = 0;

  int64_t ChildOffset(int64_t child) const { return 1 + 2 * child; }
  bool ChildIsB(int64_t child) const {
    return bytes[static_cast<size_t>(ChildOffset(child))] == 'b';
  }
};

FlatDoc MakeFlatDoc(int64_t mib) {
  FlatDoc doc;
  doc.children = (mib << 20) / 2;
  doc.bytes.reserve(static_cast<size_t>(2 * doc.children) + 2);
  doc.bytes.push_back('a');
  for (int64_t child = 0; child < doc.children; ++child) {
    if (child % kMatchStride == 0) {
      doc.bytes.append("bB");
      ++doc.matches;
    } else {
      doc.bytes.append("cC");
    }
  }
  doc.bytes.push_back('A');
  return doc;
}

struct FlatState {
  FlatDoc doc;
  std::shared_ptr<const QueryPlan> plan;
  std::unique_ptr<IncrementalSession> session;
  double rescan_seconds = 0;
  int64_t expected_matches = 0;
};

// One corpus + warm session per document size, shared across benchmark
// re-runs (Google Benchmark re-enters the function while estimating
// iteration counts; rebuilding 100 MiB each time would dominate).
FlatState* FlatStateFor(int64_t mib) {
  static std::vector<std::unique_ptr<FlatState>>* cache =
      new std::vector<std::unique_ptr<FlatState>>();
  for (auto& entry : *cache) {
    if (static_cast<int64_t>(entry->doc.bytes.size()) == (mib << 20) + 2) {
      return entry.get();
    }
  }
  auto st = std::make_unique<FlatState>();
  st->doc = MakeFlatDoc(mib);
  Alphabet alphabet = Alphabet::FromLetters("abc");
  st->plan = QueryPlan::Compile(Rpq::FromXPath("/a/b", alphabet), {});
  SST_CHECK(st->plan->kind() == EvaluatorKind::kStackless);

  // The full-rescan baseline the speedup counter is measured against:
  // the same session type doing its initial checkpointed scan.
  IncrementalOptions options;
  st->session = std::make_unique<IncrementalSession>(st->plan, options);
  const auto t0 = Clock::now();
  SST_CHECK(st->session->Scan(st->doc.bytes));
  st->rescan_seconds = Seconds(t0, Clock::now());
  st->expected_matches = st->doc.matches;
  SST_CHECK(st->session->matches() == st->expected_matches);
  cache->push_back(std::move(st));
  return cache->back().get();
}

// Small same-length edits over the flat corpus: flip one child between
// "cC" and "bB" (2 bytes in place, byte delta 0), which toggles one
// match of /a/b. Manual time covers ApplyEdit only.
void BM_IncrementalSmallEdits(benchmark::State& state) {
  FlatState* st = FlatStateFor(state.range(0));
  Rng rng(77);
  double edit_seconds = 0;
  int64_t edits = 0;
  int64_t bytes_rescanned = 0;
  int64_t spliced = 0;
  for (auto _ : state) {
    const int64_t child =
        static_cast<int64_t>(rng.NextBelow(
            static_cast<uint64_t>(st->doc.children)));
    const int64_t at = st->doc.ChildOffset(child);
    const bool was_b = st->doc.ChildIsB(child);
    const char* repl = was_b ? "cC" : "bB";
    st->doc.bytes[static_cast<size_t>(at)] = repl[0];
    st->doc.bytes[static_cast<size_t>(at) + 1] = repl[1];
    st->expected_matches += was_b ? -1 : 1;

    const auto t0 = Clock::now();
    const auto outcome =
        st->session->ApplyEdit(at, 2, std::string_view(repl, 2),
                               st->doc.bytes);
    const auto t1 = Clock::now();
    SST_CHECK(st->session->matches() == st->expected_matches);
    edit_seconds += Seconds(t0, t1);
    state.SetIterationTime(Seconds(t0, t1));
    ++edits;
    bytes_rescanned += outcome.bytes_rescanned;
    if (outcome.path == IncrementalSession::EditPath::kSplicedSuffix) {
      ++spliced;
    }
  }
  state.counters["speedup_vs_rescan"] =
      st->rescan_seconds / (edit_seconds / static_cast<double>(edits));
  state.counters["bytes_rescanned"] =
      benchmark::Counter(static_cast<double>(bytes_rescanned) /
                         static_cast<double>(edits));
  state.counters["spliced_fraction"] =
      static_cast<double>(spliced) / static_cast<double>(edits);
  state.counters["rescan_ms"] = st->rescan_seconds * 1e3;
  state.SetLabel(std::to_string(state.range(0)) + " MiB");
}
BENCHMARK(BM_IncrementalSmallEdits)->Arg(16)->Arg(100)->UseManualTime();

// --- Nested corpus + generated edits on the stack tier ----------------
//
// "//a/b" compiles to the pushdown baseline, so every checkpoint retains
// a pooled-stack head; edits come from the shared EditWorkload generator
// (variable length, so splices rebase suffix offsets). The document is a
// root of depth-8 "c" spines — deep enough that checkpoints are real
// stacks, small enough that the bench stays a smoke of the tier, not a
// second 100 MiB corpus.
void BM_IncrementalStackTierEdits(benchmark::State& state) {
  static Alphabet* alphabet = new Alphabet(Alphabet::FromLetters("abc"));
  static std::string* base_doc = [] {
    auto* doc = new std::string("a");
    constexpr int kSpines = 100000;  // 16 bytes each: ~1.6 MiB
    for (int i = 0; i < kSpines; ++i) {
      doc->append("ccccccc");
      doc->append("CCCCCCC");
      doc->append("bB");
    }
    doc->push_back('A');
    return doc;
  }();
  auto plan = QueryPlan::Compile(Rpq::FromXPath("//a/b", *alphabet), {});
  SST_CHECK(plan->kind() == EvaluatorKind::kStackBaseline);

  IncrementalSession session(plan, {});
  std::string doc = *base_doc;
  SST_CHECK(session.Scan(doc));
  EditWorkload workload(alphabet, StreamFormat::kCompactMarkup, 7);

  double edit_seconds = 0;
  int64_t edits = 0;
  int64_t spliced = 0;
  for (auto _ : state) {
    const DocEdit edit = workload.Next(doc);
    doc = EditWorkload::Apply(doc, edit);
    const auto t0 = Clock::now();
    const auto outcome =
        session.ApplyEdit(edit.offset, edit.old_len, edit.new_bytes, doc);
    const auto t1 = Clock::now();
    SST_CHECK(!session.failed());
    edit_seconds += Seconds(t0, t1);
    state.SetIterationTime(Seconds(t0, t1));
    ++edits;
    if (outcome.path == IncrementalSession::EditPath::kSplicedSuffix) {
      ++spliced;
    }
  }
  state.counters["spliced_fraction"] =
      static_cast<double>(spliced) / static_cast<double>(edits);
  state.counters["edit_us"] = edit_seconds * 1e6 / static_cast<double>(edits);
}
BENCHMARK(BM_IncrementalStackTierEdits)->UseManualTime();

// --- Pooled vs vector pushdown throughput -----------------------------
//
// Same DFA, same document, the only variable being the stack
// implementation. Two corpora:
//   * DeepDoc — pure structure, every byte an open or close at depth up
//     to ~1024: the worst case for the pooled stack, whose per-event cost
//     (freelist pop, three stores, refcount discipline) runs ~9% over the
//     vector's single store on this machine. Trajectory rows only.
//   * PaddedDoc — the same pretty-printed shape as bench_streaming's
//     padded-corpus acceptance rows (newline + two spaces per depth
//     level): the representative workload every committed throughput
//     floor in this repo is measured on. The <= 5% pooled-vs-vector
//     budget is floored here.
// The floored figure is the interleaved ratio (both machines timed
// alternately inside one benchmark), which cancels the slow machine
// drift that makes a ratio of two sequentially-run rows flaky on shared
// runners.
std::string DeepDoc() {
  // 1024-deep spines of 'c' with a 'b' leaf, repeated to ~2 MiB — small
  // enough that one scan is ~15 ms, so even CI's short --min-time runs
  // get real iteration counts behind the pooled-vs-vector ratio.
  std::string unit;
  unit.append(1024, 'c');
  unit.append("bB");
  unit.append(1024, 'C');
  std::string doc = "a";
  while (doc.size() < (2u << 20)) doc.append(unit);
  doc.push_back('A');
  return doc;
}

std::string PaddedDoc() {
  // Pretty-printed ~2 MiB: depth-8 'c' spines under the root, eight 'b'
  // leaf children at every level, one tag per line, two spaces of
  // indentation per level — the leafy, list-heavy shape of real
  // pretty-printed documents.
  std::string doc = "a";
  auto line = [&doc](int depth, char tag) {
    doc.push_back('\n');
    doc.append(static_cast<size_t>(depth) * 2, ' ');
    doc.push_back(tag);
  };
  while (doc.size() < (2u << 20)) {
    for (int d = 1; d <= 8; ++d) {
      line(d, 'c');
      for (int k = 0; k < 8; ++k) {
        line(d + 1, 'b');
        line(d + 1, 'B');
      }
    }
    for (int d = 8; d >= 1; --d) line(d, 'C');
  }
  doc.append("\nA");
  return doc;
}

template <typename Machine>
void RunStackScan(benchmark::State& state) {
  static Alphabet* alphabet = new Alphabet(Alphabet::FromLetters("abc"));
  static Dfa* dfa = new Dfa(CompileRegex(".*a.*b", *alphabet));
  static std::string* doc = new std::string(DeepDoc());
  Machine machine(dfa);
  StreamingSelector selector(&machine, StreamFormat::kCompactMarkup,
                             alphabet);
  int64_t matches = 0;
  for (auto _ : state) {
    selector.Reset();
    SST_CHECK(selector.Feed(*doc));
    SST_CHECK(selector.Finish());
    matches = selector.matches();
    benchmark::DoNotOptimize(matches);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc->size()));
  state.counters["matches"] = static_cast<double>(matches);
}

void BM_StackPooledScan(benchmark::State& state) {
  RunStackScan<StackQueryEvaluator>(state);
}
BENCHMARK(BM_StackPooledScan);

void BM_StackVectorScan(benchmark::State& state) {
  RunStackScan<VectorStackQueryEvaluator>(state);
}
BENCHMARK(BM_StackVectorScan);

// One iteration = one pooled scan + one vector scan, back to back; the
// pooled_vs_vector counter is vector time over pooled time (1.0 = parity,
// above 1.0 = pooled faster).
void BM_StackPooledVsVector(benchmark::State& state) {
  static Alphabet* alphabet = new Alphabet(Alphabet::FromLetters("abc"));
  static Dfa* dfa = new Dfa(CompileRegex(".*a.*b", *alphabet));
  static std::string* doc = new std::string(PaddedDoc());
  StackQueryEvaluator pooled(dfa);
  VectorStackQueryEvaluator vec(dfa);
  StreamingSelector pooled_sel(&pooled, StreamFormat::kCompactMarkup,
                               alphabet);
  StreamingSelector vec_sel(&vec, StreamFormat::kCompactMarkup, alphabet);
  bool pooled_first = true;
  std::vector<double> ratios;
  auto run_pooled = [&] {
    pooled_sel.Reset();
    const auto t0 = Clock::now();
    SST_CHECK(pooled_sel.Feed(*doc));
    SST_CHECK(pooled_sel.Finish());
    return Seconds(t0, Clock::now());
  };
  auto run_vec = [&] {
    vec_sel.Reset();
    const auto t0 = Clock::now();
    SST_CHECK(vec_sel.Feed(*doc));
    SST_CHECK(vec_sel.Finish());
    return Seconds(t0, Clock::now());
  };
  for (auto _ : state) {
    // Alternate which machine goes first so warm-cache advantage for the
    // second scan cancels out of the ratio.
    double pooled_s;
    double vec_s;
    if (pooled_first) {
      pooled_s = run_pooled();
      vec_s = run_vec();
    } else {
      vec_s = run_vec();
      pooled_s = run_pooled();
    }
    pooled_first = !pooled_first;
    SST_CHECK(pooled_sel.matches() == vec_sel.matches());
    ratios.push_back(vec_s / pooled_s);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 2 *
                          static_cast<int64_t>(doc->size()));
  // Median of the per-pair ratios: one preempted scan (shared-runner
  // noise burst) shifts a total-time ratio by several percent but leaves
  // the median untouched.
  std::nth_element(ratios.begin(), ratios.begin() + ratios.size() / 2,
                   ratios.end());
  state.counters["pooled_vs_vector"] = ratios[ratios.size() / 2];
}
BENCHMARK(BM_StackPooledVsVector);

}  // namespace
}  // namespace sst
