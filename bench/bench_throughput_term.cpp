// Experiment E10 (term encoding): the same throughput comparison under the
// JSON-style encoding, using the blind constructions of Theorems B.1/B.2.
// Closing events carry no label (symbol -1).

#include <benchmark/benchmark.h>

#include "automata/alphabet.h"
#include "automata/minimize.h"
#include "bench_util.h"
#include "dra/tag_dfa.h"
#include "eval/registerless_query.h"
#include "eval/stack_evaluator.h"
#include "eval/stackless_query.h"
#include "trees/encoding.h"

namespace sst {
namespace {

constexpr int kDocNodes = 1 << 17;

EventStream TermDocument(bench::DocShape shape) {
  EventStream events = Encode(bench::MakeDocument(shape, kDocNodes, 3, 42));
  for (TagEvent& event : events) {
    if (!event.open) event.symbol = -1;
  }
  return events;
}

template <typename Machine>
int64_t Drive(Machine& machine, const EventStream& events) {
  machine.Reset();
  int64_t selected = 0;
  for (const TagEvent& event : events) {
    if (event.open) {
      machine.OnOpen(event.symbol);
      selected += machine.InAcceptingState() ? 1 : 0;
    } else {
      machine.OnClose(event.symbol);
    }
  }
  return selected;
}

void BM_TermStackBaseline(benchmark::State& state) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  EventStream events =
      TermDocument(static_cast<bench::DocShape>(state.range(0)));
  StackQueryEvaluator machine(&dfa);
  int64_t selected = 0;
  for (auto _ : state) {
    selected = Drive(machine, events);
    benchmark::DoNotOptimize(selected);
  }
  state.SetBytesProcessed(state.iterations() * bench::TermBytes(events));
  state.counters["selected"] = static_cast<double>(selected);
  state.SetLabel(bench::ShapeName(static_cast<bench::DocShape>(
      state.range(0))));
}
BENCHMARK(BM_TermStackBaseline)->DenseRange(0, 2);

void BM_TermRegisterless(benchmark::State& state) {
  // a Γ* b is blindly almost-reversible (Section 4.2).
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  TagDfa evaluator = BuildRegisterlessQueryAutomaton(dfa, /*blind=*/true);
  EventStream events =
      TermDocument(static_cast<bench::DocShape>(state.range(0)));
  TagDfaMachine machine(&evaluator);
  int64_t selected = 0;
  for (auto _ : state) {
    selected = Drive(machine, events);
    benchmark::DoNotOptimize(selected);
  }
  state.SetBytesProcessed(state.iterations() * bench::TermBytes(events));
  state.counters["selected"] = static_cast<double>(selected);
  state.SetLabel(bench::ShapeName(static_cast<bench::DocShape>(
      state.range(0))));
}
BENCHMARK(BM_TermRegisterless)->DenseRange(0, 2);

void BM_TermStackless(benchmark::State& state) {
  // Γ*aΓ*b is blindly HAR (Section 4.2): Theorem B.2's DRA applies.
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex(".*a.*b", alphabet);
  StacklessQueryEvaluator machine(dfa, /*blind=*/true);
  EventStream events =
      TermDocument(static_cast<bench::DocShape>(state.range(0)));
  int64_t selected = 0;
  for (auto _ : state) {
    selected = Drive(machine, events);
    benchmark::DoNotOptimize(selected);
  }
  state.SetBytesProcessed(state.iterations() * bench::TermBytes(events));
  state.counters["selected"] = static_cast<double>(selected);
  state.SetLabel(bench::ShapeName(static_cast<bench::DocShape>(
      state.range(0))));
}
BENCHMARK(BM_TermStackless)->DenseRange(0, 2);

}  // namespace
}  // namespace sst

BENCHMARK_MAIN();
