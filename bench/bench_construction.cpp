// Experiment E12 (construction side): cost and size of the evaluator
// constructions as the minimal automaton grows — Lemma 3.5 (linear),
// Lemma 3.8 (revert tables + SCC analysis), Lemma 3.11 (synopsis state
// space, potentially large: its states are bounded by the SCC-DAG depth).

#include <benchmark/benchmark.h>

#include "automata/alphabet.h"
#include "automata/minimize.h"
#include "automata/random_dfa.h"
#include "base/rng.h"
#include "classes/syntactic_classes.h"
#include "eval/el_synopsis.h"
#include "eval/registerless_query.h"
#include "eval/stackless_query.h"

namespace sst {
namespace {

// Random minimal DFA of roughly the requested size.
Dfa SizedDfa(int target_states, uint64_t seed) {
  Rng rng(seed);
  Dfa best = Minimize(RandomDfa(target_states, 3, 0.4, &rng));
  for (int attempt = 0; attempt < 50; ++attempt) {
    if (best.num_states >= target_states * 3 / 4) break;
    Dfa candidate = Minimize(RandomDfa(target_states, 3, 0.4, &rng));
    if (candidate.num_states > best.num_states) best = candidate;
  }
  return best;
}

void BM_BuildRegisterless(benchmark::State& state) {
  Dfa dfa = SizedDfa(static_cast<int>(state.range(0)), 21);
  for (auto _ : state) {
    TagDfa evaluator = BuildRegisterlessQueryAutomaton(dfa, false);
    benchmark::DoNotOptimize(evaluator);
  }
  state.counters["minimal_states"] = dfa.num_states;
}
BENCHMARK(BM_BuildRegisterless)->RangeMultiplier(2)->Range(8, 128);

void BM_BuildStackless(benchmark::State& state) {
  Dfa dfa = SizedDfa(static_cast<int>(state.range(0)), 23);
  for (auto _ : state) {
    StacklessQueryEvaluator machine(dfa, false);
    benchmark::DoNotOptimize(machine.num_registers());
  }
  StacklessQueryEvaluator machine(dfa, false);
  state.counters["minimal_states"] = dfa.num_states;
  state.counters["registers"] = machine.num_registers();
}
BENCHMARK(BM_BuildStackless)->RangeMultiplier(2)->Range(8, 128);

void BM_MaterializeSynopsis(benchmark::State& state) {
  // E-flat languages from the co-finite family with growing cores.
  Rng rng(29 + state.range(0));
  Dfa finite = Minimize(
      RandomFiniteLanguageDfa(static_cast<int>(state.range(0)), 3, 0.5,
                              &rng));
  Dfa dfa = Complement(finite);  // co-finite => E-flat
  int synopsis_states = 0;
  for (auto _ : state) {
    std::optional<TagDfa> materialized =
        MaterializeElRecognizer(dfa, false, 2000000);
    benchmark::DoNotOptimize(materialized);
    synopsis_states = materialized.has_value() ? materialized->num_states : -1;
  }
  state.counters["minimal_states"] = dfa.num_states;
  state.counters["synopsis_states"] = synopsis_states;
}
BENCHMARK(BM_MaterializeSynopsis)->DenseRange(2, 10, 2);

void BM_MaterializeStacklessDra(benchmark::State& state) {
  // Explicit DRA tables for the paper's stackless-but-not-registerless
  // examples.
  Alphabet alphabet = Alphabet::FromLetters("abc");
  const char* patterns[] = {"ab", ".*a.*b", "abc", "a(b|c)a"};
  Dfa dfa = CompileRegex(patterns[state.range(0)], alphabet);
  int dra_states = 0;
  for (auto _ : state) {
    std::optional<Dra> dra = MaterializeStacklessQueryDra(dfa, false, 200000);
    benchmark::DoNotOptimize(dra);
    dra_states = dra.has_value() ? dra->num_states : -1;
  }
  state.counters["minimal_states"] = dfa.num_states;
  state.counters["dra_states"] = dra_states;
  state.SetLabel(patterns[state.range(0)]);
}
BENCHMARK(BM_MaterializeStacklessDra)->DenseRange(0, 3);

}  // namespace
}  // namespace sst

BENCHMARK_MAIN();
