// Experiments E5 and E14: Fig 6's determinization pitfall, and weak
// validation throughput for path DTDs (Section 4.1) — registerless weak
// validator versus the full stack validator.

#include <benchmark/benchmark.h>

#include <memory>

#include "base/check.h"
#include "base/rng.h"
#include "bench_util.h"
#include "classes/syntactic_classes.h"
#include "dra/machine.h"
#include "dtd/path_dtd.h"
#include "trees/encoding.h"
#include "trees/tree.h"

namespace sst {
namespace {

// The A-flat catalog schema from examples/dtd_validation.cpp:
// catalog -> (section+item)^+, section -> (section+item)^*,
// item -> (name+price)^*, name/price -> ()^*.
PathDtd CatalogDtd() {
  PathDtd dtd;
  dtd.num_symbols = 5;
  dtd.initial_symbol = 0;
  dtd.productions.resize(5);
  dtd.productions[0] = {{1, 2}, false};  // catalog
  dtd.productions[1] = {{1, 2}, true};   // section
  dtd.productions[2] = {{3, 4}, true};   // item
  dtd.productions[3] = {{}, true};       // name
  dtd.productions[4] = {{}, true};       // price
  return dtd;
}

// Fig 6's specialized DTD.
SpecializedPathDtd Fig6Dtd() {
  SpecializedPathDtd result;
  result.dtd.num_symbols = 4;
  result.dtd.initial_symbol = 0;
  result.dtd.productions.resize(4);
  result.dtd.productions[0] = {{0, 1, 2}, true};
  result.dtd.productions[1] = {{0, 1, 2}, true};
  result.dtd.productions[2] = {{3}, true};
  result.dtd.productions[3] = {{0, 1}, true};
  result.projection = {0, 1, 0, 2};
  result.num_projected_symbols = 3;
  return result;
}

// A large conforming document for the catalog DTD.
EventStream ConformingDocument(int sections) {
  Rng rng(3);
  Tree tree;
  int root = tree.AddRoot(0);
  std::vector<int> open_sections = {root};
  for (int i = 0; i < sections; ++i) {
    int parent = open_sections[rng.NextBelow(open_sections.size())];
    int section = tree.AddChild(parent, 1);
    if (open_sections.size() < 40) open_sections.push_back(section);
    int items = static_cast<int>(rng.NextBelow(4));
    for (int j = 0; j < items; ++j) {
      int item = tree.AddChild(section, 2);
      if (rng.NextBool(0.8)) tree.AddChild(item, 3);
      if (rng.NextBool(0.8)) tree.AddChild(item, 4);
    }
  }
  return Encode(tree);
}

void BM_Fig6DeterminizationPitfall(benchmark::State& state) {
  SpecializedPathDtd dtd = Fig6Dtd();
  for (auto _ : state) {
    Dfa minimal = PathLanguageMinimalDfa(dtd);
    bool a_flat = IsAFlat(minimal);
    benchmark::DoNotOptimize(a_flat);
    SST_CHECK(!a_flat);  // the paper's point: fails after determinization
  }
  state.SetLabel("A-flat fails after determinize+minimize (Fig 6)");
}
BENCHMARK(BM_Fig6DeterminizationPitfall);

void BM_RegisterlessWeakValidation(benchmark::State& state) {
  PathDtd dtd = CatalogDtd();
  SST_CHECK(IsRegisterlessWeaklyValidatable(dtd));
  std::unique_ptr<StreamMachine> validator =
      BuildRegisterlessDtdValidator(dtd);
  EventStream events = ConformingDocument(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunAcceptor(validator.get(), events));
  }
  state.SetBytesProcessed(state.iterations() * bench::MarkupBytes(events));
  state.counters["tags"] = static_cast<double>(events.size());
}
BENCHMARK(BM_RegisterlessWeakValidation)->Range(1 << 10, 1 << 16);

void BM_StackValidation(benchmark::State& state) {
  PathDtd dtd = CatalogDtd();
  StackDtdValidator validator(&dtd);
  EventStream events = ConformingDocument(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunAcceptor(&validator, events));
  }
  state.SetBytesProcessed(state.iterations() * bench::MarkupBytes(events));
  state.counters["tags"] = static_cast<double>(events.size());
}
BENCHMARK(BM_StackValidation)->Range(1 << 10, 1 << 16);

}  // namespace
}  // namespace sst

BENCHMARK_MAIN();
