// Old-vs-new scanner throughput for the StreamingSelector front-end. The
// "legacy" scanner below is a faithful copy of the seed implementation: one
// locale-dependent std::isspace call and (for compact markup) one hash-map
// Alphabet::Find lookup per input byte, a heap-backed std::string for
// partial tags, and virtual machine dispatch per event. The rebuilt scanner
// classifies bytes through precomputed 256-entry tables and, for
// registerless machines on compact markup, runs the fused ByteTagDfaRunner
// byte→state table. Chunk sizes sweep 64 B … 1 MB to show the per-chunk
// overhead amortizing away.

#include <benchmark/benchmark.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "automata/alphabet.h"
#include "automata/minimize.h"
#include "base/byte_scan.h"
#include "base/check.h"
#include "base/match_sink.h"
#include "base/thread_pool.h"
#include "bench_util.h"
#include "dra/byte_runner.h"
#include "dra/parallel_runner.h"
#include "dra/streaming.h"
#include "dra/tag_dfa.h"
#include "engine/multi_query.h"
#include "engine/plan_cache.h"
#include "engine/query_plan.h"
#include "engine/session.h"
#include "eval/registerless_query.h"
#include "query/rpq.h"
#include "trees/encoding.h"

namespace sst {
namespace {

// --- Seed scanner (pre-rebuild), kept verbatim as the baseline ----------

class LegacyStreamingSelector {
 public:
  using Format = StreamingSelector::Format;

  LegacyStreamingSelector(StreamMachine* machine, Format format,
                          Alphabet* alphabet)
      : machine_(machine), format_(format), alphabet_(alphabet) {
    Reset();
  }

  void Reset() {
    machine_->Reset();
    open_labels_.clear();
    pending_.clear();
    in_tag_ = false;
    nodes_ = 0;
    matches_ = 0;
    depth_ = 0;
    saw_root_ = false;
    failed_ = false;
  }

  bool Feed(std::string_view chunk) {
    if (failed_) return false;
    switch (format_) {
      case Format::kCompactMarkup:
        for (char c : chunk) {
          if (std::isspace(static_cast<unsigned char>(c))) continue;
          if (c >= 'a' && c <= 'z') {
            Symbol s = alphabet_->Find(std::string_view(&c, 1));
            if (s < 0) return Fail();
            if (!EmitOpen(s)) return false;
          } else if (c >= 'A' && c <= 'Z') {
            char lower = static_cast<char>(c - 'A' + 'a');
            Symbol s = alphabet_->Find(std::string_view(&lower, 1));
            if (s < 0) return Fail();
            if (!EmitClose(s)) return false;
          } else {
            return Fail();
          }
        }
        return true;
      case Format::kCompactTerm:
        for (char c : chunk) {
          if (std::isspace(static_cast<unsigned char>(c))) continue;
          if (!pending_.empty()) {
            if (c != '{') return Fail();
            Symbol s = alphabet_->Find(pending_);
            pending_.clear();
            if (s < 0) return Fail();
            if (!EmitOpen(s)) return false;
            continue;
          }
          if (c == '}') {
            if (!EmitClose(-1)) return false;
          } else if (std::isalnum(static_cast<unsigned char>(c)) ||
                     c == '_' || c == '-') {
            if (pending_.size() >= 256) return Fail();
            pending_.push_back(c);
          } else {
            return Fail();
          }
        }
        return true;
      case Format::kXmlLite:
        for (char c : chunk) {
          if (!in_tag_) {
            if (std::isspace(static_cast<unsigned char>(c))) continue;
            if (c != '<') return Fail();
            in_tag_ = true;
            pending_.clear();
            continue;
          }
          if (c != '>') {
            if (pending_.size() >= 256) return Fail();
            pending_.push_back(c);
            continue;
          }
          in_tag_ = false;
          if (pending_.empty()) return Fail();
          bool closing = pending_[0] == '/';
          std::string_view name(pending_);
          if (closing) name.remove_prefix(1);
          if (name.empty()) return Fail();
          Symbol s = alphabet_->Find(name);
          if (s < 0) return Fail();
          bool ok = closing ? EmitClose(s) : EmitOpen(s);
          pending_.clear();
          if (!ok) return false;
        }
        return true;
    }
    return Fail();
  }

  bool Finish() {
    if (failed_ || in_tag_ || !pending_.empty()) return false;
    return saw_root_ && depth_ == 0;
  }

  int64_t matches() const { return matches_; }

 private:
  bool Fail() {
    failed_ = true;
    return false;
  }

  bool EmitOpen(Symbol symbol) {
    if (depth_ == 0 && saw_root_) return Fail();
    saw_root_ = true;
    ++depth_;
    open_labels_.push_back(symbol);
    machine_->OnOpen(symbol);
    if (machine_->InAcceptingState()) ++matches_;
    ++nodes_;
    return true;
  }

  bool EmitClose(Symbol symbol) {
    if (open_labels_.empty()) return Fail();
    if (symbol >= 0 && open_labels_.back() != symbol) return Fail();
    open_labels_.pop_back();
    --depth_;
    machine_->OnClose(symbol);
    return true;
  }

  StreamMachine* machine_;
  Format format_;
  Alphabet* alphabet_;
  std::vector<Symbol> open_labels_;
  std::string pending_;
  bool in_tag_ = false;
  int64_t nodes_ = 0;
  int64_t matches_ = 0;
  int64_t depth_ = 0;
  bool saw_root_ = false;
  bool failed_ = false;
};

// ------------------------------------------------------------------------

using Format = StreamingSelector::Format;

constexpr int kDocNodes = 1 << 19;  // 1 MiB of compact markup

std::string DocumentBytes(Format format) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  EventStream events =
      Encode(bench::MakeDocument(bench::DocShape::kMixed, kDocNodes, 3, 42));
  switch (format) {
    case Format::kCompactMarkup:
      return ToCompactMarkup(alphabet, events);
    case Format::kXmlLite:
      return ToXmlLite(alphabet, events);
    case Format::kCompactTerm:
      return ToCompactTerm(alphabet, events);
  }
  return {};
}

const char* FormatName(Format format) {
  switch (format) {
    case Format::kCompactMarkup:
      return "markup";
    case Format::kXmlLite:
      return "xml";
    case Format::kCompactTerm:
      return "term";
  }
  return "?";
}

// Hides the TagDfa export, forcing the rebuilt scanner onto its generic
// (virtual-dispatch) path — isolates table-driven lexing from the fused
// byte-table gain.
class OpaqueMachine final : public StreamMachine {
 public:
  explicit OpaqueMachine(StreamMachine* inner) : inner_(inner) {}
  void Reset() override { inner_->Reset(); }
  void OnOpen(Symbol symbol) override { inner_->OnOpen(symbol); }
  void OnClose(Symbol symbol) override { inner_->OnClose(symbol); }
  bool InAcceptingState() const override {
    return inner_->InAcceptingState();
  }

 private:
  StreamMachine* inner_;
};

template <typename Selector>
int64_t DriveChunked(Selector& selector, const std::string& bytes,
                     size_t chunk_size) {
  selector.Reset();
  for (size_t i = 0; i < bytes.size(); i += chunk_size) {
    if (!selector.Feed(std::string_view(bytes).substr(i, chunk_size))) {
      return -1;
    }
  }
  return selector.Finish() ? selector.matches() : -1;
}

struct BenchSetup {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  TagDfa evaluator;
  TagDfaMachine machine;

  explicit BenchSetup(bool blind)
      : evaluator(BuildRegisterlessQueryAutomaton(
            CompileRegex("a.*b", Alphabet::FromLetters("abc")), blind)),
        machine(&evaluator) {}
};

void RunScanBench(benchmark::State& state, bool legacy, bool opaque) {
  Format format = static_cast<Format>(state.range(0));
  size_t chunk_size = static_cast<size_t>(state.range(1));
  BenchSetup setup(format == Format::kCompactTerm);
  std::string bytes = DocumentBytes(format);
  OpaqueMachine hidden(&setup.machine);
  StreamMachine* machine =
      opaque ? static_cast<StreamMachine*>(&hidden) : &setup.machine;
  int64_t matches = 0;
  if (legacy) {
    LegacyStreamingSelector selector(machine, format, &setup.alphabet);
    for (auto _ : state) {
      matches = DriveChunked(selector, bytes, chunk_size);
      benchmark::DoNotOptimize(matches);
    }
  } else {
    StreamingSelector selector(machine, format, &setup.alphabet);
    for (auto _ : state) {
      matches = DriveChunked(selector, bytes, chunk_size);
      benchmark::DoNotOptimize(matches);
    }
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
  state.counters["matches"] = static_cast<double>(matches);
  std::string label = FormatName(format);
  label += opaque ? "/generic" : "/fastest";
  label += "/chunk=" + std::to_string(chunk_size);
  state.SetLabel(label);
}

void BM_LegacyScanner(benchmark::State& state) {
  RunScanBench(state, /*legacy=*/true, /*opaque=*/false);
}

void BM_RebuiltScanner(benchmark::State& state) {
  RunScanBench(state, /*legacy=*/false, /*opaque=*/false);
}

// Table-driven lexing only (fused byte table disabled) — how much of the
// win is the lexer vs. the fused transition table.
void BM_RebuiltScannerGenericPath(benchmark::State& state) {
  RunScanBench(state, /*legacy=*/false, /*opaque=*/true);
}

// Robustness guards on: finite StreamLimits plus the skip-recovery
// policy, on a clean document. Measures the hot-path overhead of the
// hardened front-end (per-open depth check, per-event budget check,
// per-Feed byte-guard split) against BM_RebuiltScanner — the acceptance
// bar is <2%.
void BM_RebuiltScannerGuarded(benchmark::State& state) {
  Format format = static_cast<Format>(state.range(0));
  size_t chunk_size = static_cast<size_t>(state.range(1));
  BenchSetup setup(format == Format::kCompactTerm);
  std::string bytes = DocumentBytes(format);
  StreamLimits limits;
  limits.max_depth = 1 << 20;
  limits.max_document_bytes = int64_t{1} << 40;
  limits.max_events = int64_t{1} << 40;
  limits.max_recovered_errors = 64;
  StreamingSelector selector(&setup.machine, format, &setup.alphabet);
  selector.set_recovery_policy(RecoveryPolicy::kSkipMalformedSubtree);
  selector.set_limits(limits);
  int64_t matches = 0;
  for (auto _ : state) {
    matches = DriveChunked(selector, bytes, chunk_size);
    benchmark::DoNotOptimize(matches);
  }
  SST_CHECK(matches >= 0);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
  state.counters["matches"] = static_cast<double>(matches);
  std::string label = FormatName(format);
  label += "/guarded/chunk=" + std::to_string(chunk_size);
  state.SetLabel(label);
}

const std::vector<std::vector<int64_t>> kArgs = {
    {0, 1, 2},                              // format
    {64, 1024, 65536, 1 << 20},             // chunk size
};

BENCHMARK(BM_LegacyScanner)->ArgsProduct(kArgs);
BENCHMARK(BM_RebuiltScanner)->ArgsProduct(kArgs);
BENCHMARK(BM_RebuiltScannerGenericPath)
    ->ArgsProduct({{0}, {64, 1024, 65536, 1 << 20}});
BENCHMARK(BM_RebuiltScannerGuarded)->ArgsProduct(kArgs);

// --- Whitespace-padded XML: the SIMD/SWAR bulk-skip showcase ------------
// Pretty-printed XML is mostly indentation; the rebuilt scanner jumps
// whitespace runs 64 bytes at a time (base/byte_scan.h) and memchr-scans
// tag bodies, while the legacy scanner touches every byte.

std::string PaddedXmlBytes() {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  EventStream events = Encode(
      bench::MakeDocument(bench::DocShape::kMixed, 1 << 17, 3, 42));
  std::string out;
  int depth = 0;
  for (const TagEvent& event : events) {
    if (!event.open) --depth;
    out.append(1, '\n');
    out.append(static_cast<size_t>(depth) * 2, ' ');
    out += event.open ? "<" : "</";
    out += alphabet.LabelOf(event.symbol);
    out += ">";
    if (event.open) ++depth;
  }
  return out;
}

void RunPaddedXmlBench(benchmark::State& state, bool legacy) {
  BenchSetup setup(false);
  std::string bytes = PaddedXmlBytes();
  size_t chunk_size = 65536;
  int64_t matches = 0;
  if (legacy) {
    LegacyStreamingSelector selector(&setup.machine, Format::kXmlLite,
                                     &setup.alphabet);
    for (auto _ : state) {
      matches = DriveChunked(selector, bytes, chunk_size);
      benchmark::DoNotOptimize(matches);
    }
  } else {
    StreamingSelector selector(&setup.machine, Format::kXmlLite,
                               &setup.alphabet);
    for (auto _ : state) {
      matches = DriveChunked(selector, bytes, chunk_size);
      benchmark::DoNotOptimize(matches);
    }
  }
  SST_CHECK(matches >= 0);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
  state.counters["matches"] = static_cast<double>(matches);
  std::string label = "xmlpad/";
  label += legacy ? "legacy" : "rebuilt";
  label += "/kernel=";
  label += ByteScanKernelName();
  state.SetLabel(label);
}

void BM_LegacyScannerPaddedXml(benchmark::State& state) {
  RunPaddedXmlBench(state, /*legacy=*/true);
}

void BM_RebuiltScannerPaddedXml(benchmark::State& state) {
  RunPaddedXmlBench(state, /*legacy=*/false);
}

BENCHMARK(BM_LegacyScannerPaddedXml);
BENCHMARK(BM_RebuiltScannerPaddedXml);

// --- Parallel speculative DFA execution vs the sequential fused table ---
// Inputs are large balanced documents: copies of the 1 MiB random document
// nested under a single root, so 64 MB of compact markup stays one
// well-formed tree. The parallel runner splits into threads * 4 chunks,
// runs chunks 1.. speculatively from every state, and folds the per-chunk
// state maps; the result is checked against the sequential count each
// iteration.

const std::string& TiledMarkup(size_t target_bytes) {
  static std::map<size_t, std::string>* cache =
      new std::map<size_t, std::string>();
  auto it = cache->find(target_bytes);
  if (it != cache->end()) return it->second;
  const std::string base = DocumentBytes(Format::kCompactMarkup);
  std::string out = "a";
  out.reserve(target_bytes + base.size() + 2);
  while (out.size() + base.size() + 1 < target_bytes) out += base;
  out += "A";
  return (*cache)[target_bytes] = std::move(out);
}

void BM_SequentialFusedRunner(benchmark::State& state) {
  size_t mib = static_cast<size_t>(state.range(0));
  BenchSetup setup(false);
  ByteTagDfaRunner runner(setup.evaluator);
  const std::string& bytes = TiledMarkup(mib << 20);
  int64_t matches = 0;
  for (auto _ : state) {
    matches = runner.CountSelections(bytes);
    benchmark::DoNotOptimize(matches);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
  state.counters["matches"] = static_cast<double>(matches);
  state.SetLabel("seq/" + std::to_string(mib) + "MiB");
}

void BM_ParallelSpeculativeRunner(benchmark::State& state) {
  int threads = static_cast<int>(state.range(0));
  size_t mib = static_cast<size_t>(state.range(1));
  BenchSetup setup(false);
  ByteTagDfaRunner runner(setup.evaluator);
  ThreadPool pool(threads);
  ParallelTagDfaRunner parallel(&runner, &pool);
  const std::string& bytes = TiledMarkup(mib << 20);
  const int chunks = threads * 4;
  const int64_t expected = runner.CountSelections(bytes);
  const int expected_state = runner.FinalState(bytes);
  for (auto _ : state) {
    ParallelTagDfaRunner::Result result = parallel.Run(bytes, chunks);
    SST_CHECK(result.selections == expected);
    SST_CHECK(result.final_state == expected_state);
    benchmark::DoNotOptimize(result);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
  state.counters["threads"] = threads;
  state.counters["matches"] = static_cast<double>(expected);
  state.SetLabel("par/threads=" + std::to_string(threads) + "/" +
                 std::to_string(mib) + "MiB");
}

BENCHMARK(BM_SequentialFusedRunner)->Arg(16)->Arg(64);
BENCHMARK(BM_ParallelSpeculativeRunner)
    ->ArgsProduct({{1, 2, 4, 8}, {16, 64}})
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// --- Engine layer: compile-once/run-many amortization -------------------
// The cost ladder the engine is built around, one rung per benchmark:
// a cold QueryPlan::Compile (minimize + classify + build every table), a
// warm PlanCache hit (one shard lock + hash lookup), a fresh Session on a
// compiled plan (machine + scanner state, no tables), and a pooled
// re-acquire (free-list pop + Reset, zero allocations). Run side-by-side
// with BM_SharedPlanStreaming these give the break-even stream count where
// compiling stops mattering.

void BM_EngineColdCompile(benchmark::State& state) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Rpq rpq = Rpq::FromXPath("/a//b", alphabet);
  for (auto _ : state) {
    auto plan = QueryPlan::Compile(rpq, PlanOptions{});
    benchmark::DoNotOptimize(plan);
  }
  state.SetLabel("compile/cold");
}

void BM_EngineCacheHit(benchmark::State& state) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  PlanCache cache;
  cache.GetOrCompile(QuerySyntax::kXPath, "/a//b", alphabet, PlanOptions{});
  for (auto _ : state) {
    auto plan = cache.GetOrCompile(QuerySyntax::kXPath, "/a//b", alphabet,
                                   PlanOptions{});
    benchmark::DoNotOptimize(plan);
  }
  state.SetLabel("compile/cache-hit");
}

void BM_EngineFreshSession(benchmark::State& state) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  auto plan = QueryPlan::Compile(Rpq::FromXPath("/a//b", alphabet),
                                 PlanOptions{});
  for (auto _ : state) {
    Session session(plan);
    benchmark::DoNotOptimize(session.matches());
  }
  state.SetLabel("session/fresh");
}

void BM_EnginePooledSession(benchmark::State& state) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  auto plan = QueryPlan::Compile(Rpq::FromXPath("/a//b", alphabet),
                                 PlanOptions{});
  SessionPool pool(plan);
  pool.Release(pool.Acquire());  // warm the free list
  for (auto _ : state) {
    auto session = pool.Acquire();
    benchmark::DoNotOptimize(session->matches());
    pool.Release(std::move(session));
  }
  state.SetLabel("session/pooled");
}

BENCHMARK(BM_EngineColdCompile);
BENCHMARK(BM_EngineCacheHit);
BENCHMARK(BM_EngineFreshSession);
BENCHMARK(BM_EnginePooledSession);

// --- Multi-session shared-plan throughput -------------------------------
// T worker lanes stream disjoint replicas of the 1 MiB document through T
// pooled sessions over ONE plan — the serving configuration the engine
// layer exists for. Aggregate bytes/sec across lanes; real time, so lane
// counts beyond the core count show the (expected) flat line rather than
// fake scaling.

void BM_SharedPlanStreaming(benchmark::State& state) {
  int threads = static_cast<int>(state.range(0));
  Alphabet alphabet = Alphabet::FromLetters("abc");
  auto plan = QueryPlan::Compile(Rpq::FromXPath("/a//b", alphabet),
                                 PlanOptions{});
  SessionPool session_pool(plan, static_cast<size_t>(threads));
  ThreadPool pool(threads);
  const std::string& bytes = TiledMarkup(size_t{4} << 20);
  constexpr size_t kChunk = 65536;
  for (auto _ : state) {
    pool.Run(threads, [&](int) {
      auto session = session_pool.Acquire();
      session->Reset();
      bool ok = true;
      for (size_t i = 0; ok && i < bytes.size(); i += kChunk) {
        ok = session->Feed(std::string_view(bytes).substr(i, kChunk));
      }
      SST_CHECK(ok && session->Finish());
      benchmark::DoNotOptimize(session->matches());
      session_pool.Release(std::move(session));
    });
  }
  state.SetBytesProcessed(state.iterations() * threads *
                          static_cast<int64_t>(bytes.size()));
  state.counters["threads"] = threads;
  state.SetLabel("sharedplan/threads=" + std::to_string(threads));
}

BENCHMARK(BM_SharedPlanStreaming)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// --- Multi-query fused execution ----------------------------------------
// N queries answered over ONE document scan through the output-annotated
// product automaton (engine/multi_query.h), against the status quo of N
// independent pooled sessions each scanning the document. Both report
// bytes-processed = document size per iteration — the work is "answer all
// N queries over this document" — so the bytes/sec ratio IS the speedup.

const Alphabet& WideAlphabet() {
  static const Alphabet* alphabet =
      new Alphabet(Alphabet::FromLetters("abcdef"));
  return *alphabet;
}

// Deterministic registerless family over {a..f}: the 30 two-step vertical
// paths "/x//y" (x != y) first, then the 6 root tests "/x". Every one
// compiles to the registerless tier, so any prefix of the list fuses.
std::vector<BatchQuery> MultiQueryBatch(int n) {
  static const std::vector<std::string>* texts = [] {
    auto* list = new std::vector<std::string>();
    const char* letters = "abcdef";
    for (int x = 0; x < 6; ++x) {
      for (int y = 0; y < 6; ++y) {
        if (x == y) continue;
        list->push_back(std::string("/") + letters[x] + "//" + letters[y]);
      }
    }
    for (int x = 0; x < 6; ++x) {
      list->push_back(std::string("/") + letters[x]);
    }
    return list;
  }();
  SST_CHECK(n <= static_cast<int>(texts->size()));
  std::vector<BatchQuery> batch;
  for (int i = 0; i < n; ++i) {
    batch.push_back(BatchQuery{QuerySyntax::kXPath, (*texts)[i]});
  }
  return batch;
}

// The padded-XML acceptance corpus over the six-letter alphabet:
// pretty-printed xml-lite, two spaces of indentation per depth level.
const std::string& PaddedXmlWideBytes() {
  static const std::string* cached = [] {
    const Alphabet& alphabet = WideAlphabet();
    EventStream events = Encode(
        bench::MakeDocument(bench::DocShape::kMixed, 1 << 17, 6, 42));
    auto* out = new std::string();
    int depth = 0;
    for (const TagEvent& event : events) {
      if (!event.open) --depth;
      out->append(1, '\n');
      out->append(static_cast<size_t>(depth) * 2, ' ');
      *out += event.open ? "<" : "</";
      *out += alphabet.LabelOf(event.symbol);
      *out += ">";
      if (event.open) ++depth;
    }
    return out;
  }();
  return *cached;
}

// Compact-markup corpus over the same alphabet for the byte-table tier.
const std::string& WideMarkupBytes() {
  static const std::string* cached = [] {
    return new std::string(ToCompactMarkup(
        WideAlphabet(),
        Encode(bench::MakeDocument(bench::DocShape::kMixed, 1 << 20, 6, 7))));
  }();
  return *cached;
}

// Per-query reference counts from N independent streaming runs.
std::vector<int64_t> IndependentReference(const std::vector<BatchQuery>& batch,
                                          const PlanOptions& options,
                                          const std::string& bytes) {
  std::vector<int64_t> counts;
  for (const BatchQuery& query : batch) {
    auto plan = QueryPlan::Compile(
        Rpq::FromXPath(query.text, WideAlphabet()), options);
    Session session(plan);
    SST_CHECK(session.Feed(bytes) && session.Finish());
    counts.push_back(session.matches());
  }
  return counts;
}

bool DriveBatchChunked(BatchSession& session, const std::string& bytes,
                       size_t chunk_size) {
  session.Reset();
  for (size_t i = 0; i < bytes.size(); i += chunk_size) {
    if (!session.Feed(std::string_view(bytes).substr(i, chunk_size))) {
      return false;
    }
  }
  return session.Finish();
}

void BM_MultiQueryFused(benchmark::State& state) {
  int num_queries = static_cast<int>(state.range(0));
  std::vector<BatchQuery> batch = MultiQueryBatch(num_queries);
  MultiQueryOptions options;
  options.plan.format = StreamFormat::kXmlLite;
  auto plan = MultiQueryPlan::Compile(batch, WideAlphabet(), options);
  SST_CHECK(plan->tier() == MultiTier::kFusedProduct);
  BatchSession session(plan);
  const std::string& bytes = PaddedXmlWideBytes();
  std::vector<int64_t> expected =
      IndependentReference(batch, options.plan, bytes);
  constexpr size_t kChunk = 65536;
  for (auto _ : state) {
    SST_CHECK(DriveBatchChunked(session, bytes, kChunk));
    // Acceptance: per-query counts byte-identical to independent runs.
    SST_CHECK(session.query_matches() == expected);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
  state.counters["queries"] = num_queries;
  state.counters["product_states"] =
      static_cast<double>(plan->stats().eager_states);
  state.SetLabel("multiquery/fused/xmlpad/N=" + std::to_string(num_queries));
}

void BM_MultiQueryIndependent(benchmark::State& state) {
  int num_queries = static_cast<int>(state.range(0));
  std::vector<BatchQuery> batch = MultiQueryBatch(num_queries);
  PlanOptions options;
  options.format = StreamFormat::kXmlLite;
  // The status quo: one pooled session per query, N full scans.
  std::vector<std::unique_ptr<SessionPool>> pools;
  for (const BatchQuery& query : batch) {
    pools.push_back(std::make_unique<SessionPool>(QueryPlan::Compile(
        Rpq::FromXPath(query.text, WideAlphabet()), options)));
  }
  const std::string& bytes = PaddedXmlWideBytes();
  constexpr size_t kChunk = 65536;
  std::vector<int64_t> counts(static_cast<size_t>(num_queries), 0);
  for (auto _ : state) {
    for (size_t q = 0; q < pools.size(); ++q) {
      auto session = pools[q]->Acquire();
      bool ok = true;
      for (size_t i = 0; ok && i < bytes.size(); i += kChunk) {
        ok = session->Feed(std::string_view(bytes).substr(i, kChunk));
      }
      SST_CHECK(ok && session->Finish());
      counts[q] = session->matches();
      pools[q]->Release(std::move(session));
    }
    benchmark::DoNotOptimize(counts.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
  state.counters["queries"] = num_queries;
  state.SetLabel("multiquery/independent/xmlpad/N=" +
                 std::to_string(num_queries));
}

BENCHMARK(BM_MultiQueryFused)->Arg(2)->Arg(8)->Arg(32);
BENCHMARK(BM_MultiQueryIndependent)->Arg(2)->Arg(8)->Arg(32);

// Byte-table tier on compact markup: the eager product fused into one
// 256-entry table vs the lazy product stepped state-by-state vs N
// independent fused single-query tables. Same accounting as above.

void RunMultiQueryScanBench(benchmark::State& state, bool lazy) {
  int num_queries = static_cast<int>(state.range(0));
  std::vector<BatchQuery> batch = MultiQueryBatch(num_queries);
  MultiQueryOptions options;
  if (lazy) options.eager_state_cap = 1;  // force the lazy tier
  auto plan = MultiQueryPlan::Compile(batch, WideAlphabet(), options);
  SST_CHECK(plan->tier() == (lazy ? MultiTier::kLazyProduct
                                  : MultiTier::kFusedProduct));
  BatchSession session(plan);
  const std::string& bytes = WideMarkupBytes();
  std::vector<int64_t> counts;
  for (auto _ : state) {
    counts = session.CountSelections(bytes);
    benchmark::DoNotOptimize(counts.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
  state.counters["queries"] = num_queries;
  MultiQueryPlan::Stats stats = plan->stats();
  state.counters["product_states"] = static_cast<double>(
      lazy ? stats.lazy_states : stats.eager_states);
  std::string label = lazy ? "multiquery/lazy-scan/N="
                           : "multiquery/eager-scan/N=";
  state.SetLabel(label + std::to_string(num_queries));
}

void BM_MultiQueryEagerScan(benchmark::State& state) {
  RunMultiQueryScanBench(state, /*lazy=*/false);
}

void BM_MultiQueryLazyScan(benchmark::State& state) {
  RunMultiQueryScanBench(state, /*lazy=*/true);
}

void BM_MultiQueryIndependentScan(benchmark::State& state) {
  int num_queries = static_cast<int>(state.range(0));
  std::vector<BatchQuery> batch = MultiQueryBatch(num_queries);
  std::vector<std::shared_ptr<const QueryPlan>> plans;
  for (const BatchQuery& query : batch) {
    plans.push_back(QueryPlan::Compile(
        Rpq::FromXPath(query.text, WideAlphabet()), PlanOptions{}));
    SST_CHECK(plans.back()->fused() != nullptr);
  }
  const std::string& bytes = WideMarkupBytes();
  std::vector<int64_t> counts(plans.size(), 0);
  for (auto _ : state) {
    for (size_t q = 0; q < plans.size(); ++q) {
      counts[q] = plans[q]->fused()->CountSelections(bytes);
    }
    benchmark::DoNotOptimize(counts.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
  state.counters["queries"] = num_queries;
  state.SetLabel("multiquery/independent-scan/N=" +
                 std::to_string(num_queries));
}

BENCHMARK(BM_MultiQueryEagerScan)->Arg(2)->Arg(8)->Arg(32);
BENCHMARK(BM_MultiQueryLazyScan)->Arg(2)->Arg(8)->Arg(32);
BENCHMARK(BM_MultiQueryIndependentScan)->Arg(2)->Arg(8)->Arg(32);

// --- Stackless fused tier: Lemma 3.8 at byte-table speed ----------------
// Whitespace-padded compact markup over {a, b, c}: pretty-printed with a
// newline and two spaces of indentation per depth level, so the corpus is
// mostly padding both fused tiers bulk-skip with the SWAR/SIMD kernel
// before resolving each tag from a flat byte table. The registerless
// fused scan on the SAME corpus is the yardstick — the acceptance bar is
// stackless fused within 1.5x of it. The interpreter rows show what the
// materialize+fuse rung buys over per-event virtual dispatch with live
// register compares.

const std::string& PaddedMarkupBytes() {
  static const std::string* cached = [] {
    Alphabet alphabet = Alphabet::FromLetters("abc");
    EventStream events = Encode(
        bench::MakeDocument(bench::DocShape::kMixed, 1 << 17, 3, 42));
    auto* out = new std::string();
    int depth = 0;
    for (const TagEvent& event : events) {
      if (!event.open) --depth;
      out->append(1, '\n');
      out->append(static_cast<size_t>(depth) * 2, ' ');
      char letter = alphabet.LabelOf(event.symbol)[0];
      out->push_back(event.open ? letter
                                : static_cast<char>(letter - 'a' + 'A'));
      if (event.open) ++depth;
    }
    return out;
  }();
  return *cached;
}

std::shared_ptr<const QueryPlan> StacklessFusedPlan() {
  auto plan = QueryPlan::Compile(
      Rpq::FromXPath("/a/b", Alphabet::FromLetters("abc")), PlanOptions{});
  SST_CHECK(plan->kind() == EvaluatorKind::kStackless);
  SST_CHECK(plan->fused_dra() != nullptr);
  return plan;
}

// Registerless yardstick on the same corpus (whole-document fused scan).
void BM_RegisterlessFusedScanPadded(benchmark::State& state) {
  auto plan = QueryPlan::Compile(
      Rpq::FromXPath("/a//b", Alphabet::FromLetters("abc")), PlanOptions{});
  SST_CHECK(plan->fused() != nullptr);
  const std::string& bytes = PaddedMarkupBytes();
  int64_t matches = 0;
  for (auto _ : state) {
    matches = plan->fused()->CountSelections(bytes);
    benchmark::DoNotOptimize(matches);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
  state.counters["matches"] = static_cast<double>(matches);
  state.SetLabel("registerless/fused-scan/markup-pad");
}

// Stackless fused whole-document scan: depth + registers + 3^r code
// resolved inside the byte loop.
void BM_StacklessFusedScan(benchmark::State& state) {
  auto plan = StacklessFusedPlan();
  const std::string& bytes = PaddedMarkupBytes();
  int64_t matches = 0;
  for (auto _ : state) {
    matches = plan->fused_dra()->CountSelections(bytes);
    benchmark::DoNotOptimize(matches);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
  state.counters["matches"] = static_cast<double>(matches);
  state.counters["registers"] =
      static_cast<double>(plan->fused_dra()->num_registers());
  state.counters["dra_states"] =
      static_cast<double>(plan->fused_dra()->num_states());
  state.SetLabel("stackless/fused-scan/markup-pad");
}

// The same plan through the chunked front-end on the kFusedDraTable rung.
void BM_StacklessFusedStreaming(benchmark::State& state) {
  Session session(StacklessFusedPlan());
  SST_CHECK(session.selector().active_tier() ==
            StreamingSelector::Tier::kFusedDraTable);
  const std::string& bytes = PaddedMarkupBytes();
  int64_t matches = 0;
  for (auto _ : state) {
    matches = DriveChunked(session, bytes, 65536);
    benchmark::DoNotOptimize(matches);
  }
  SST_CHECK(matches >= 0);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
  state.counters["matches"] = static_cast<double>(matches);
  state.SetLabel("stackless/fused-streaming/markup-pad");
}

// Generic-tier baseline: the same materialized DRA stepped through the
// virtual machine interface (no fused table), chunked like above.
void BM_StacklessInterpreterStreaming(benchmark::State& state) {
  auto plan = StacklessFusedPlan();
  std::unique_ptr<StreamMachine> machine = plan->NewMachine();
  StreamingSelector selector(machine.get(), Format::kCompactMarkup,
                             &plan->alphabet(), &plan->scanner_tables(),
                             /*fused=*/nullptr, /*fused_dra=*/nullptr);
  SST_CHECK(selector.active_tier() ==
            StreamingSelector::Tier::kGenericMachine);
  const std::string& bytes = PaddedMarkupBytes();
  int64_t matches = 0;
  for (auto _ : state) {
    matches = DriveChunked(selector, bytes, 65536);
    benchmark::DoNotOptimize(matches);
  }
  SST_CHECK(matches >= 0);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
  state.counters["matches"] = static_cast<double>(matches);
  state.SetLabel("stackless/generic-streaming/markup-pad");
}

BENCHMARK(BM_RegisterlessFusedScanPadded);
BENCHMARK(BM_StacklessFusedScan);
BENCHMARK(BM_StacklessFusedStreaming);
BENCHMARK(BM_StacklessInterpreterStreaming);

// --- Padded-corpus variants of the runner benchmarks --------------------
// The dense TiledMarkup corpora above measure the worst case for the
// structural index (every byte structural, no gaps to skip); these tile
// the pretty-printed document instead, so roughly 80% of the bytes are
// indentation the stage-1 SIMD scan removes before the table walk.

const std::string& TiledPaddedMarkup(size_t target_bytes) {
  static std::map<size_t, std::string>* cache =
      new std::map<size_t, std::string>();
  auto it = cache->find(target_bytes);
  if (it != cache->end()) return it->second;
  const std::string& base = PaddedMarkupBytes();
  std::string out = "a";
  out.reserve(target_bytes + base.size() + 2);
  while (out.size() + base.size() + 1 < target_bytes) out += base;
  out += "A";
  return (*cache)[target_bytes] = std::move(out);
}

void BM_SequentialFusedRunnerPadded(benchmark::State& state) {
  size_t mib = static_cast<size_t>(state.range(0));
  BenchSetup setup(false);
  ByteTagDfaRunner runner(setup.evaluator);
  const std::string& bytes = TiledPaddedMarkup(mib << 20);
  int64_t matches = 0;
  for (auto _ : state) {
    matches = runner.CountSelections(bytes);
    benchmark::DoNotOptimize(matches);
  }
  SST_CHECK(matches == runner.CountSelectionsPerByte(bytes));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
  state.counters["matches"] = static_cast<double>(matches);
  state.SetLabel("seq-pad/" + std::to_string(mib) + "MiB/kernel=" +
                 ByteScanKernelName());
}

void BM_ParallelSpeculativeRunnerPadded(benchmark::State& state) {
  int threads = static_cast<int>(state.range(0));
  size_t mib = static_cast<size_t>(state.range(1));
  BenchSetup setup(false);
  ByteTagDfaRunner runner(setup.evaluator);
  ThreadPool pool(threads);
  ParallelTagDfaRunner parallel(&runner, &pool);
  const std::string& bytes = TiledPaddedMarkup(mib << 20);
  const int chunks = threads * 4;
  const int64_t expected = runner.CountSelections(bytes);
  const int expected_state = runner.FinalState(bytes);
  for (auto _ : state) {
    ParallelTagDfaRunner::Result result = parallel.Run(bytes, chunks);
    SST_CHECK(result.selections == expected);
    SST_CHECK(result.final_state == expected_state);
    benchmark::DoNotOptimize(result);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
  state.counters["threads"] = threads;
  state.counters["matches"] = static_cast<double>(expected);
  state.SetLabel("par-pad/threads=" + std::to_string(threads) + "/" +
                 std::to_string(mib) + "MiB");
}

BENCHMARK(BM_SequentialFusedRunnerPadded)->Arg(16)->Arg(64);
BENCHMARK(BM_ParallelSpeculativeRunnerPadded)
    ->ArgsProduct({{1, 2, 4, 8}, {16}})
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Mixed multi-query batch: registerless members on the eager sub-product,
// stackless members stepping their fused DRAs, all in ONE scan — vs the
// same batch answered by per-member fused scans.

std::vector<BatchQuery> MixedBatch() {
  std::vector<BatchQuery> batch;
  for (const char* text : {"/a//b", "/c//b", "/a/b", "/b/*//c"}) {
    batch.push_back(BatchQuery{QuerySyntax::kXPath, text});
  }
  return batch;
}

void BM_StacklessFusedMixedBatchScan(benchmark::State& state) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  auto plan = MultiQueryPlan::Compile(MixedBatch(), alphabet,
                                      MultiQueryOptions{});
  SST_CHECK(plan->tier() == MultiTier::kMixed);
  BatchSession session(plan);
  SST_CHECK(session.one_scan_eligible());
  const std::string& bytes = PaddedMarkupBytes();
  std::vector<int64_t> counts;
  for (auto _ : state) {
    counts = session.CountSelections(bytes);
    benchmark::DoNotOptimize(counts.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
  state.counters["queries"] = static_cast<double>(counts.size());
  state.counters["stackless_members"] =
      static_cast<double>(plan->stats().stackless_members);
  state.SetLabel("stackless/mixed-batch-scan/markup-pad");
}

void BM_StacklessFusedMixedBatchIndependent(benchmark::State& state) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  std::vector<std::shared_ptr<const QueryPlan>> plans;
  for (const BatchQuery& query : MixedBatch()) {
    plans.push_back(QueryPlan::Compile(
        Rpq::FromXPath(query.text, alphabet), PlanOptions{}));
    SST_CHECK(plans.back()->fused() != nullptr ||
              plans.back()->fused_dra() != nullptr);
  }
  const std::string& bytes = PaddedMarkupBytes();
  std::vector<int64_t> counts(plans.size(), 0);
  for (auto _ : state) {
    for (size_t q = 0; q < plans.size(); ++q) {
      counts[q] = plans[q]->fused() != nullptr
                      ? plans[q]->fused()->CountSelections(bytes)
                      : plans[q]->fused_dra()->CountSelections(bytes);
    }
    benchmark::DoNotOptimize(counts.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
  state.counters["queries"] = static_cast<double>(plans.size());
  state.SetLabel("stackless/mixed-batch-independent/markup-pad");
}

BENCHMARK(BM_StacklessFusedMixedBatchScan);
BENCHMARK(BM_StacklessFusedMixedBatchIndependent);

// --- Match-sink emission cost and latency-to-certainty ------------------
// The streaming MatchSink pipeline replaces count-at-Finish with per-match
// push events carrying byte spans. These benches measure its overhead on
// the hottest tier (the fused byte table over the padded markup corpus —
// the same pretty-printed document the committed throughput baselines
// pin) and report the earliest-answering metrics:
//   latency_to_certainty_bytes  mean (certainty_offset - start_offset):
//                               bytes between a node's opening token and
//                               the byte at which its verdict is provably
//                               certain — the opening-token width under
//                               pre-selection semantics.
//   certainty_lead_bytes        mean (end_offset - certainty_offset) over
//                               completed spans: how many bytes before the
//                               node's close tag the verdict was pushed,
//                               i.e. the win over a close-tag-based
//                               answering model.
// The counting-sink bench is the acceptance anchor: it must stay within
// 5% of the sink-off bench (enforced as a relative floor by
// check_bench_baselines.py).

void AddLatencyCounters(benchmark::State& state,
                        const CollectingSink& sink) {
  double latency_sum = 0.0;
  double lead_sum = 0.0;
  int64_t lead_n = 0;
  for (const MatchEvent& event : sink.matches()) {
    latency_sum +=
        static_cast<double>(event.certainty_offset - event.start_offset);
  }
  for (const MatchEvent& event : sink.spans()) {
    if (event.end_offset >= 0) {
      lead_sum +=
          static_cast<double>(event.end_offset - event.certainty_offset);
      ++lead_n;
    }
  }
  state.counters["latency_to_certainty_bytes"] =
      sink.matches().empty()
          ? 0.0
          : latency_sum / static_cast<double>(sink.matches().size());
  state.counters["certainty_lead_bytes"] =
      lead_n == 0 ? 0.0 : lead_sum / static_cast<double>(lead_n);
}

enum class SinkMode { kOff, kCounting, kCollecting };

void RunMatchSinkBench(benchmark::State& state, SinkMode mode) {
  size_t chunk_size = static_cast<size_t>(state.range(0));
  BenchSetup setup(false);
  const std::string& bytes = PaddedMarkupBytes();
  StreamingSelector selector(&setup.machine, Format::kCompactMarkup,
                             &setup.alphabet);
  SST_CHECK(selector.using_fused_fast_path());
  CountingSink counting;
  CollectingSink collecting;
  int64_t matches = 0;
  switch (mode) {
    case SinkMode::kOff:
      for (auto _ : state) {
        matches = DriveChunked(selector, bytes, chunk_size);
        benchmark::DoNotOptimize(matches);
      }
      break;
    case SinkMode::kCounting:
      selector.set_match_sink(&counting);
      for (auto _ : state) {
        counting.Reset();
        matches = DriveChunked(selector, bytes, chunk_size);
        benchmark::DoNotOptimize(matches);
      }
      SST_CHECK(counting.total() == matches);
      break;
    case SinkMode::kCollecting:
      selector.set_match_sink(&collecting);
      for (auto _ : state) {
        collecting.Reset();
        matches = DriveChunked(selector, bytes, chunk_size);
        benchmark::DoNotOptimize(matches);
      }
      SST_CHECK(static_cast<int64_t>(collecting.matches().size()) ==
                matches);
      break;
  }
  SST_CHECK(matches >= 0);
  SST_CHECK(selector.using_fused_fast_path());
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
  state.counters["matches"] = static_cast<double>(matches);
  if (mode == SinkMode::kCollecting) {
    AddLatencyCounters(state, collecting);
  } else {
    // One instrumented pass outside the timing loop supplies the latency
    // metrics; the same bytes yield the same log on every tier.
    CollectingSink probe;
    StreamingSelector probe_selector(&setup.machine, Format::kCompactMarkup,
                                     &setup.alphabet);
    probe_selector.set_match_sink(&probe);
    SST_CHECK(DriveChunked(probe_selector, bytes, chunk_size) == matches);
    AddLatencyCounters(state, probe);
  }
  std::string label = "markup-pad/fused/sink=";
  label += mode == SinkMode::kOff
               ? "off"
               : mode == SinkMode::kCounting ? "counting" : "collecting";
  label += "/chunk=" + std::to_string(chunk_size);
  state.SetLabel(label);
}

void BM_MatchSinkOff(benchmark::State& state) {
  RunMatchSinkBench(state, SinkMode::kOff);
}

void BM_MatchSinkCounting(benchmark::State& state) {
  RunMatchSinkBench(state, SinkMode::kCounting);
}

void BM_MatchSinkCollecting(benchmark::State& state) {
  RunMatchSinkBench(state, SinkMode::kCollecting);
}

BENCHMARK(BM_MatchSinkOff)->Arg(65536);
BENCHMARK(BM_MatchSinkCounting)->Arg(65536);
BENCHMARK(BM_MatchSinkCollecting)->Arg(65536);

}  // namespace
}  // namespace sst

// --- Custom main: benchmark context + the --corpus flag -----------------
// `--corpus <path>` (or --corpus=<path>) mmaps a real document and
// registers per-tier throughput benchmarks over its bytes: the stage-1
// structural scan alone, then each fused count-scan tier. All of these
// are pure table walks, well-defined on arbitrary byte content, so any
// file measures — the corpus does not have to be well-formed compact
// markup (bytes outside the tag alphabet self-loop).

namespace {

#if defined(__unix__) || defined(__APPLE__)
#define SST_BENCH_HAVE_MMAP 1
#endif

// Leaked on purpose: benchmarks registered over the mapping run until
// process exit.
std::string_view MapCorpus(const char* path) {
#if defined(SST_BENCH_HAVE_MMAP)
  int fd = ::open(path, O_RDONLY);
  if (fd < 0) {
    std::perror(path);
    std::exit(1);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    std::fprintf(stderr, "--corpus %s: empty or unreadable\n", path);
    std::exit(1);
  }
  void* mapped = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                        MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (mapped == MAP_FAILED) {
    std::perror("mmap");
    std::exit(1);
  }
  return {static_cast<const char*>(mapped), static_cast<size_t>(st.st_size)};
#else
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "--corpus %s: unreadable\n", path);
    std::exit(1);
  }
  auto* owned = new std::string(std::istreambuf_iterator<char>(in), {});
  return *owned;
#endif
}

void RegisterCorpusBenches(std::string_view corpus) {
  const char* data = corpus.data();
  const size_t len = corpus.size();
  const auto bytes_done = [len](benchmark::State& state) {
    state.SetBytesProcessed(state.iterations() *
                            static_cast<int64_t>(len));
  };

  benchmark::RegisterBenchmark(
      "BM_CorpusStage1Extract", [=](benchmark::State& state) {
        std::vector<uint32_t> positions(len);
        size_t structural = 0;
        for (auto _ : state) {
          structural = sst::ExtractStructural(data, len, positions.data());
          benchmark::DoNotOptimize(positions.data());
        }
        bytes_done(state);
        state.counters["structural_fraction"] =
            len == 0 ? 0.0
                     : static_cast<double>(structural) /
                           static_cast<double>(len);
        state.SetLabel(std::string("corpus/stage1-extract/kernel=") +
                       sst::ByteScanKernelName());
      });

  benchmark::RegisterBenchmark(
      "BM_CorpusRegisterlessFusedScan", [=](benchmark::State& state) {
        auto plan = sst::QueryPlan::Compile(
            sst::Rpq::FromXPath("/a//b", sst::Alphabet::FromLetters("abc")),
            sst::PlanOptions{});
        SST_CHECK(plan->fused() != nullptr);
        int64_t matches = 0;
        for (auto _ : state) {
          matches = plan->fused()->CountSelections({data, len});
          benchmark::DoNotOptimize(matches);
        }
        bytes_done(state);
        state.counters["matches"] = static_cast<double>(matches);
        state.SetLabel("corpus/registerless-fused-scan");
      });

  benchmark::RegisterBenchmark(
      "BM_CorpusStacklessFusedScan", [=](benchmark::State& state) {
        auto plan = sst::QueryPlan::Compile(
            sst::Rpq::FromXPath("/a/b", sst::Alphabet::FromLetters("abc")),
            sst::PlanOptions{});
        SST_CHECK(plan->fused_dra() != nullptr);
        int64_t matches = 0;
        for (auto _ : state) {
          matches = plan->fused_dra()->CountSelections({data, len});
          benchmark::DoNotOptimize(matches);
        }
        bytes_done(state);
        state.counters["matches"] = static_cast<double>(matches);
        state.SetLabel("corpus/stackless-fused-scan");
      });

  benchmark::RegisterBenchmark(
      "BM_CorpusMixedBatchScan", [=](benchmark::State& state) {
        sst::Alphabet alphabet = sst::Alphabet::FromLetters("abc");
        std::vector<sst::BatchQuery> batch;
        for (const char* text : {"/a//b", "/c//b", "/a/b", "/b/*//c"}) {
          batch.push_back(
              sst::BatchQuery{sst::QuerySyntax::kXPath, text});
        }
        auto plan = sst::MultiQueryPlan::Compile(batch, alphabet,
                                                 sst::MultiQueryOptions{});
        sst::BatchSession session(plan);
        SST_CHECK(session.one_scan_eligible());
        std::vector<int64_t> counts;
        for (auto _ : state) {
          counts = session.CountSelections({data, len});
          benchmark::DoNotOptimize(counts.data());
        }
        bytes_done(state);
        state.counters["queries"] = static_cast<double>(counts.size());
        state.SetLabel("corpus/mixed-batch-scan");
      });
}

}  // namespace

int main(int argc, char** argv) {
  // Extract --corpus before benchmark::Initialize sees (and rejects) it.
  const char* corpus_path = nullptr;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--corpus") == 0 && i + 1 < argc) {
      corpus_path = argv[++i];
    } else if (std::strncmp(argv[i], "--corpus=", 9) == 0) {
      corpus_path = argv[i] + 9;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext("byte_scan_kernel", sst::ByteScanKernelName());
#ifdef NDEBUG
  benchmark::AddCustomContext("build_type", "Release");
#else
  benchmark::AddCustomContext("build_type", "Debug");
#endif
  if (corpus_path != nullptr) {
    RegisterCorpusBenches(MapCorpus(corpus_path));
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
