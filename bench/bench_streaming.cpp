// Old-vs-new scanner throughput for the StreamingSelector front-end. The
// "legacy" scanner below is a faithful copy of the seed implementation: one
// locale-dependent std::isspace call and (for compact markup) one hash-map
// Alphabet::Find lookup per input byte, a heap-backed std::string for
// partial tags, and virtual machine dispatch per event. The rebuilt scanner
// classifies bytes through precomputed 256-entry tables and, for
// registerless machines on compact markup, runs the fused ByteTagDfaRunner
// byte→state table. Chunk sizes sweep 64 B … 1 MB to show the per-chunk
// overhead amortizing away.

#include <benchmark/benchmark.h>

#include <cctype>
#include <string>
#include <vector>

#include "automata/alphabet.h"
#include "automata/minimize.h"
#include "bench_util.h"
#include "dra/streaming.h"
#include "dra/tag_dfa.h"
#include "eval/registerless_query.h"
#include "trees/encoding.h"

namespace sst {
namespace {

// --- Seed scanner (pre-rebuild), kept verbatim as the baseline ----------

class LegacyStreamingSelector {
 public:
  using Format = StreamingSelector::Format;

  LegacyStreamingSelector(StreamMachine* machine, Format format,
                          Alphabet* alphabet)
      : machine_(machine), format_(format), alphabet_(alphabet) {
    Reset();
  }

  void Reset() {
    machine_->Reset();
    open_labels_.clear();
    pending_.clear();
    in_tag_ = false;
    nodes_ = 0;
    matches_ = 0;
    depth_ = 0;
    saw_root_ = false;
    failed_ = false;
  }

  bool Feed(std::string_view chunk) {
    if (failed_) return false;
    switch (format_) {
      case Format::kCompactMarkup:
        for (char c : chunk) {
          if (std::isspace(static_cast<unsigned char>(c))) continue;
          if (c >= 'a' && c <= 'z') {
            Symbol s = alphabet_->Find(std::string_view(&c, 1));
            if (s < 0) return Fail();
            if (!EmitOpen(s)) return false;
          } else if (c >= 'A' && c <= 'Z') {
            char lower = static_cast<char>(c - 'A' + 'a');
            Symbol s = alphabet_->Find(std::string_view(&lower, 1));
            if (s < 0) return Fail();
            if (!EmitClose(s)) return false;
          } else {
            return Fail();
          }
        }
        return true;
      case Format::kCompactTerm:
        for (char c : chunk) {
          if (std::isspace(static_cast<unsigned char>(c))) continue;
          if (!pending_.empty()) {
            if (c != '{') return Fail();
            Symbol s = alphabet_->Find(pending_);
            pending_.clear();
            if (s < 0) return Fail();
            if (!EmitOpen(s)) return false;
            continue;
          }
          if (c == '}') {
            if (!EmitClose(-1)) return false;
          } else if (std::isalnum(static_cast<unsigned char>(c)) ||
                     c == '_' || c == '-') {
            if (pending_.size() >= 256) return Fail();
            pending_.push_back(c);
          } else {
            return Fail();
          }
        }
        return true;
      case Format::kXmlLite:
        for (char c : chunk) {
          if (!in_tag_) {
            if (std::isspace(static_cast<unsigned char>(c))) continue;
            if (c != '<') return Fail();
            in_tag_ = true;
            pending_.clear();
            continue;
          }
          if (c != '>') {
            if (pending_.size() >= 256) return Fail();
            pending_.push_back(c);
            continue;
          }
          in_tag_ = false;
          if (pending_.empty()) return Fail();
          bool closing = pending_[0] == '/';
          std::string_view name(pending_);
          if (closing) name.remove_prefix(1);
          if (name.empty()) return Fail();
          Symbol s = alphabet_->Find(name);
          if (s < 0) return Fail();
          bool ok = closing ? EmitClose(s) : EmitOpen(s);
          pending_.clear();
          if (!ok) return false;
        }
        return true;
    }
    return Fail();
  }

  bool Finish() {
    if (failed_ || in_tag_ || !pending_.empty()) return false;
    return saw_root_ && depth_ == 0;
  }

  int64_t matches() const { return matches_; }

 private:
  bool Fail() {
    failed_ = true;
    return false;
  }

  bool EmitOpen(Symbol symbol) {
    if (depth_ == 0 && saw_root_) return Fail();
    saw_root_ = true;
    ++depth_;
    open_labels_.push_back(symbol);
    machine_->OnOpen(symbol);
    if (machine_->InAcceptingState()) ++matches_;
    ++nodes_;
    return true;
  }

  bool EmitClose(Symbol symbol) {
    if (open_labels_.empty()) return Fail();
    if (symbol >= 0 && open_labels_.back() != symbol) return Fail();
    open_labels_.pop_back();
    --depth_;
    machine_->OnClose(symbol);
    return true;
  }

  StreamMachine* machine_;
  Format format_;
  Alphabet* alphabet_;
  std::vector<Symbol> open_labels_;
  std::string pending_;
  bool in_tag_ = false;
  int64_t nodes_ = 0;
  int64_t matches_ = 0;
  int64_t depth_ = 0;
  bool saw_root_ = false;
  bool failed_ = false;
};

// ------------------------------------------------------------------------

using Format = StreamingSelector::Format;

constexpr int kDocNodes = 1 << 19;  // 1 MiB of compact markup

std::string DocumentBytes(Format format) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  EventStream events =
      Encode(bench::MakeDocument(bench::DocShape::kMixed, kDocNodes, 3, 42));
  switch (format) {
    case Format::kCompactMarkup:
      return ToCompactMarkup(alphabet, events);
    case Format::kXmlLite:
      return ToXmlLite(alphabet, events);
    case Format::kCompactTerm:
      return ToCompactTerm(alphabet, events);
  }
  return {};
}

const char* FormatName(Format format) {
  switch (format) {
    case Format::kCompactMarkup:
      return "markup";
    case Format::kXmlLite:
      return "xml";
    case Format::kCompactTerm:
      return "term";
  }
  return "?";
}

// Hides the TagDfa export, forcing the rebuilt scanner onto its generic
// (virtual-dispatch) path — isolates table-driven lexing from the fused
// byte-table gain.
class OpaqueMachine final : public StreamMachine {
 public:
  explicit OpaqueMachine(StreamMachine* inner) : inner_(inner) {}
  void Reset() override { inner_->Reset(); }
  void OnOpen(Symbol symbol) override { inner_->OnOpen(symbol); }
  void OnClose(Symbol symbol) override { inner_->OnClose(symbol); }
  bool InAcceptingState() const override {
    return inner_->InAcceptingState();
  }

 private:
  StreamMachine* inner_;
};

template <typename Selector>
int64_t DriveChunked(Selector& selector, const std::string& bytes,
                     size_t chunk_size) {
  selector.Reset();
  for (size_t i = 0; i < bytes.size(); i += chunk_size) {
    if (!selector.Feed(std::string_view(bytes).substr(i, chunk_size))) {
      return -1;
    }
  }
  return selector.Finish() ? selector.matches() : -1;
}

struct BenchSetup {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  TagDfa evaluator;
  TagDfaMachine machine;

  explicit BenchSetup(bool blind)
      : evaluator(BuildRegisterlessQueryAutomaton(
            CompileRegex("a.*b", Alphabet::FromLetters("abc")), blind)),
        machine(&evaluator) {}
};

void RunScanBench(benchmark::State& state, bool legacy, bool opaque) {
  Format format = static_cast<Format>(state.range(0));
  size_t chunk_size = static_cast<size_t>(state.range(1));
  BenchSetup setup(format == Format::kCompactTerm);
  std::string bytes = DocumentBytes(format);
  OpaqueMachine hidden(&setup.machine);
  StreamMachine* machine =
      opaque ? static_cast<StreamMachine*>(&hidden) : &setup.machine;
  int64_t matches = 0;
  if (legacy) {
    LegacyStreamingSelector selector(machine, format, &setup.alphabet);
    for (auto _ : state) {
      matches = DriveChunked(selector, bytes, chunk_size);
      benchmark::DoNotOptimize(matches);
    }
  } else {
    StreamingSelector selector(machine, format, &setup.alphabet);
    for (auto _ : state) {
      matches = DriveChunked(selector, bytes, chunk_size);
      benchmark::DoNotOptimize(matches);
    }
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
  state.counters["matches"] = static_cast<double>(matches);
  std::string label = FormatName(format);
  label += opaque ? "/generic" : "/fastest";
  label += "/chunk=" + std::to_string(chunk_size);
  state.SetLabel(label);
}

void BM_LegacyScanner(benchmark::State& state) {
  RunScanBench(state, /*legacy=*/true, /*opaque=*/false);
}

void BM_RebuiltScanner(benchmark::State& state) {
  RunScanBench(state, /*legacy=*/false, /*opaque=*/false);
}

// Table-driven lexing only (fused byte table disabled) — how much of the
// win is the lexer vs. the fused transition table.
void BM_RebuiltScannerGenericPath(benchmark::State& state) {
  RunScanBench(state, /*legacy=*/false, /*opaque=*/true);
}

const std::vector<std::vector<int64_t>> kArgs = {
    {0, 1, 2},                              // format
    {64, 1024, 65536, 1 << 20},             // chunk size
};

BENCHMARK(BM_LegacyScanner)->ArgsProduct(kArgs);
BENCHMARK(BM_RebuiltScanner)->ArgsProduct(kArgs);
BENCHMARK(BM_RebuiltScannerGenericPath)
    ->ArgsProduct({{0}, {64, 1024, 65536, 1 << 20}});

}  // namespace
}  // namespace sst

BENCHMARK_MAIN();
