// Experiments E1-E4 and E15: regenerate the classification verdicts of
// Example 2.12 (both encodings), Fig 2, Fig 3 and Fig 6, and measure how
// the decision procedures scale with the size of the minimal automaton.
//
// Paper-expected verdicts are asserted with SST_CHECK: if a run completes,
// the table was reproduced exactly.

#include <benchmark/benchmark.h>

#include "automata/alphabet.h"
#include "automata/minimize.h"
#include "automata/random_dfa.h"
#include "base/check.h"
#include "base/rng.h"
#include "classes/syntactic_classes.h"

namespace sst {
namespace {

struct PaperRow {
  const char* regex;
  bool registerless;
  bool stackless;
  bool term_registerless;
  bool term_stackless;
};

// Example 2.12 plus the Section 4.2 claims about the same queries.
constexpr PaperRow kExample212[] = {
    {"a.*b", true, true, true, true},
    {"ab", false, true, false, true},
    {".*a.*b", false, true, false, true},
    {".*ab", false, false, false, false},
};

void BM_Example212Table(benchmark::State& state) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  const PaperRow& row = kExample212[state.range(0)];
  Dfa dfa = CompileRegex(row.regex, alphabet);
  for (auto _ : state) {
    Classification c = Classify(dfa);
    benchmark::DoNotOptimize(c);
    SST_CHECK(c.QueryRegisterless() == row.registerless);
    SST_CHECK(c.QueryStackless() == row.stackless);
    SST_CHECK(c.TermQueryRegisterless() == row.term_registerless);
    SST_CHECK(c.TermQueryStackless() == row.term_stackless);
  }
  state.SetLabel(std::string(row.regex) + " -> paper verdicts reproduced");
}
BENCHMARK(BM_Example212Table)->DenseRange(0, 3);

void BM_Fig2EvenAs(benchmark::State& state) {
  // Fig 2: reversible, hence markup-registerless, but not blindly HAR.
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex("(b|ab*a)*", alphabet);
  for (auto _ : state) {
    Classification c = Classify(dfa);
    benchmark::DoNotOptimize(c);
    SST_CHECK(c.reversible && c.almost_reversible && c.har);
    SST_CHECK(!c.blind_har && !c.blind_almost_reversible);
  }
  state.SetLabel("reversible, registerless on XML, not stackless on JSON");
}
BENCHMARK(BM_Fig2EvenAs);

// E15: scaling of each decision procedure with the number of states.
void BM_ClassifyRandomDfa(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1234 + n);
  Dfa dfa = Minimize(RandomDfa(n, 3, 0.4, &rng));
  for (auto _ : state) {
    Classification c = Classify(dfa);
    benchmark::DoNotOptimize(c);
  }
  state.counters["minimal_states"] = dfa.num_states;
}
BENCHMARK(BM_ClassifyRandomDfa)->RangeMultiplier(2)->Range(8, 128);

void BM_IsHarOnly(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(99 + n);
  Dfa dfa = Minimize(RandomDfa(n, 3, 0.4, &rng));
  for (auto _ : state) {
    bool har = IsHar(dfa);
    benchmark::DoNotOptimize(har);
  }
  state.counters["minimal_states"] = dfa.num_states;
}
BENCHMARK(BM_IsHarOnly)->RangeMultiplier(2)->Range(8, 128);

void BM_IsEFlatOnly(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(7 + n);
  Dfa dfa = Minimize(RandomDfa(n, 3, 0.4, &rng));
  for (auto _ : state) {
    bool flat = IsEFlat(dfa);
    benchmark::DoNotOptimize(flat);
  }
  state.counters["minimal_states"] = dfa.num_states;
}
BENCHMARK(BM_IsEFlatOnly)->RangeMultiplier(2)->Range(8, 128);

void BM_MinimizeRegex(benchmark::State& state) {
  // Cost of the compilation front-end itself.
  Alphabet alphabet = Alphabet::FromLetters("abc");
  const PaperRow& row = kExample212[state.range(0)];
  for (auto _ : state) {
    Dfa dfa = CompileRegex(row.regex, alphabet);
    benchmark::DoNotOptimize(dfa);
  }
  state.SetLabel(row.regex);
}
BENCHMARK(BM_MinimizeRegex)->DenseRange(0, 3);

}  // namespace
}  // namespace sst

BENCHMARK_MAIN();
