// Weak validation of streamed documents against a path DTD (Section 4.1).
// The document source is trusted to be well-formed (Segoufin & Vianu's
// setting); the question is only whether its branches conform. When the
// path language is A-flat, a plain finite automaton suffices — no stack.
//
// The demo DTD models a simple catalog:
//   catalog -> (section + item)^+    section -> (section + item)^*
//   item    -> (name + price)^*      name, price -> ()^*
// The catalog and section symbols allow the same children (they differ only
// in whether a leaf is permitted), which makes the path language A-flat;
// and we validate a conforming and a violating document with both the
// registerless validator (Theorem 3.2(2)) and the stack baseline.

#include <cstdio>

#include "classes/syntactic_classes.h"
#include "dra/machine.h"
#include "dtd/path_dtd.h"
#include "trees/encoding.h"

int main() {
  sst::Alphabet alphabet;
  sst::Symbol catalog = alphabet.Intern("catalog");
  sst::Symbol section = alphabet.Intern("section");
  sst::Symbol item = alphabet.Intern("item");
  sst::Symbol name = alphabet.Intern("name");
  sst::Symbol price = alphabet.Intern("price");

  sst::PathDtd dtd;
  dtd.num_symbols = alphabet.size();
  dtd.initial_symbol = catalog;
  dtd.productions.resize(alphabet.size());
  dtd.productions[catalog] = {{section, item}, /*allows_leaf=*/false};
  dtd.productions[section] = {{section, item}, /*allows_leaf=*/true};
  dtd.productions[item] = {{name, price}, /*allows_leaf=*/true};
  dtd.productions[name] = {{}, true};
  dtd.productions[price] = {{}, true};

  bool registerless = sst::IsRegisterlessWeaklyValidatable(dtd);
  std::printf("path language A-flat (registerless weak validation): %s\n",
              registerless ? "yes" : "no");

  const char* good =
      "<catalog><section><item><name></name><price></price></item>"
      "<section><item><name></name></item></section></section></catalog>";
  const char* bad =
      "<catalog><section><item><price></price><section></section></item>"
      "</section></catalog>";  // section under item is not allowed

  for (const char* doc : {good, bad}) {
    sst::Alphabet parse_alphabet = alphabet;
    std::optional<sst::EventStream> events =
        sst::ParseXmlLite(&parse_alphabet, doc);
    if (!events.has_value()) {
      std::printf("malformed document\n");
      continue;
    }
    sst::StackDtdValidator stack_validator(&dtd);
    bool stack_verdict = sst::RunAcceptor(&stack_validator, *events);
    std::printf("\ndocument: %.40s...\n", doc);
    std::printf("  stack validator: %s (peak stack %zu frames)\n",
                stack_verdict ? "valid" : "INVALID",
                stack_validator.max_stack_depth());
    if (registerless) {
      std::unique_ptr<sst::StreamMachine> weak_validator =
          sst::BuildRegisterlessDtdValidator(dtd);
      bool weak_verdict = sst::RunAcceptor(weak_validator.get(), *events);
      std::printf("  registerless weak validator: %s (0 stack frames)\n",
                  weak_verdict ? "valid" : "INVALID");
    }
  }
  return 0;
}
