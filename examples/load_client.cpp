// Closed-loop load generator for the query service (examples/query_server):
// N concurrent connections driven by ONE poll loop, each registering a
// query batch and then streaming documents chunk-by-chunk, never starting
// a document before the previous one's verdict arrived (closed loop, so
// measured latency is the server's, not queueing in the client).
//
//   load_client --port 7007 --connections 200 --docs 20 --chunk-size 4096
//   load_client --port 7007 --fault-rate 0.3 --seed 9   # chaos mix
//   load_client --port 7007 --json-out raw.json         # bench artifact
//   load_client --port 7007 --matches                   # streamed spans
//
// Reports per-document latency (p50/p99), throughput in MiB/s, and the
// verdict mix (counts / stream errors / sheds). With --matches every
// connection opts into streamed MatchEvent spans (kMatches frames); the
// client verifies each clean document's record sequence against an
// offline CollectingSink run over the same bytes and reports p50/p99
// first-emission latency (document start to first kMatches frame). With
// --json-out it writes Google-Benchmark-shaped JSON for
// bench/bench_to_json.py. Exit status is non-zero when any verified count
// or match log mismatches the offline engine run over the same bytes.

#include <netinet/in.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "base/rng.h"
#include "engine/multi_query.h"
#include "server/protocol.h"
#include "testing/fault_injection.h"
#include "trees/encoding.h"
#include "trees/tree.h"

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

void RaiseFdLimit() {
  rlimit limit{};
  if (getrlimit(RLIMIT_NOFILE, &limit) != 0) return;
  if (limit.rlim_cur < limit.rlim_max) {
    limit.rlim_cur = limit.rlim_max;
    setrlimit(RLIMIT_NOFILE, &limit);
  }
}

struct Config {
  std::string host = "127.0.0.1";
  int port = 0;
  int connections = 8;
  int docs_per_connection = 20;
  size_t chunk_size = 4096;
  int batch = 4;  // queries per registration
  double fault_rate = 0.0;
  uint64_t seed = 7;
  double timeout_s = 120.0;
  const char* json_out = nullptr;
  bool matches = false;  // opt into streamed MatchEvent spans
};

// The serve_many query family over {a..f}.
std::vector<std::string> QueryTexts(int n) {
  std::vector<std::string> all;
  const char* letters = "abcdef";
  for (int x = 0; x < 6; ++x) {
    for (int y = 0; y < 6; ++y) {
      if (x != y) {
        all.push_back(std::string("/") + letters[x] + "//" + letters[y]);
      }
    }
  }
  std::vector<std::string> texts;
  for (int i = 0; i < n; ++i) {
    texts.push_back(all[static_cast<size_t>(i) % all.size()]);
  }
  return texts;
}

struct Workload {
  std::vector<std::string> documents;            // clean docs
  std::vector<std::vector<int64_t>> expected;    // offline engine counts
  // Offline match-record oracle per clean document (--matches): the same
  // BatchSession the server runs, drained through a MatchWireBuffer. The
  // match-event log is chunking-invariant, so the whole-document offline
  // feed predicts the server's incremental kMatches flushes exactly.
  std::vector<std::vector<sst::MatchWireRecord>> expected_records;
  std::vector<std::string> faulted;              // mutated variants
  std::string register_payload;
};

Workload BuildWorkload(const Config& config) {
  Workload workload;
  sst::Alphabet alphabet = sst::Alphabet::FromLetters("abcdef");
  std::vector<std::string> queries = QueryTexts(config.batch);

  sst::RegisterRequest request;
  request.alphabet = "abcdef";
  request.format = sst::StreamFormat::kCompactMarkup;
  request.queries = queries;
  request.matches = config.matches;
  workload.register_payload = sst::EncodeRegister(request);

  sst::Rng rng(config.seed);
  constexpr int kPoolSize = 16;
  for (int d = 0; d < kPoolSize; ++d) {
    sst::Tree tree;
    tree.AddRoot(static_cast<sst::Symbol>(rng.NextBelow(6)));
    int nodes = 2000 + static_cast<int>(rng.NextBelow(8000));
    for (int i = 1; i < nodes; ++i) {
      int parent = rng.NextBool(0.6) ? i - 1
                                     : static_cast<int>(rng.NextBelow(i));
      tree.AddChild(parent, static_cast<sst::Symbol>(rng.NextBelow(6)));
    }
    workload.documents.push_back(
        sst::ToCompactMarkup(alphabet, sst::Encode(tree)));
  }

  // Ground truth: the same engine path the server runs, offline.
  std::vector<sst::BatchQuery> batch;
  for (const std::string& text : queries) {
    batch.push_back(sst::BatchQuery{sst::QuerySyntax::kXPath, text});
  }
  auto plan = sst::MultiQueryPlan::Compile(batch, alphabet,
                                           sst::MultiQueryOptions{});
  sst::BatchSession session(plan);
  sst::MatchWireBuffer oracle;
  if (config.matches) session.set_match_sink(&oracle);
  for (const std::string& doc : workload.documents) {
    session.Reset();
    oracle.Reset();
    bool ok = session.Feed(doc) && session.Finish();
    if (!ok) {
      std::fprintf(stderr, "clean document failed offline?\n");
      std::exit(1);
    }
    workload.expected.push_back(session.query_matches());
    if (config.matches) workload.expected_records.push_back(oracle.Take());
  }

  if (config.fault_rate > 0.0) {
    sst::FaultInjector injector(config.seed * 7919 + 1);
    for (const std::string& doc : workload.documents) {
      std::string mutated = doc;
      injector.ApplyRandom(&mutated);
      workload.faulted.push_back(std::move(mutated));
    }
  }
  return workload;
}

enum class ConnState {
  kConnecting,
  kAwaitRegistered,
  kAwaitVerdict,
  kClosing,  // goodbye queued; flush, then close
  kClosed,
};

struct Conn {
  int fd = -1;
  ConnState state = ConnState::kConnecting;
  sst::FrameDecoder decoder{1 << 20};
  std::string out;
  size_t out_pos = 0;
  int docs_done = 0;
  int doc_index = 0;     // which pool document is in flight
  bool doc_faulted = false;
  Clock::time_point doc_start;
  bool failed = false;
  // --matches bookkeeping for the in-flight document.
  std::vector<sst::MatchWireRecord> records;
  bool saw_match_frame = false;
  double first_match_ms = 0.0;
};

struct Totals {
  std::vector<double> latencies_ms;
  std::vector<double> first_match_ms;  // doc start -> first kMatches frame
  long long bytes_sent = 0;
  long long ok = 0;
  long long stream_errors = 0;
  long long sheds = 0;
  long long mismatches = 0;
  long long match_records = 0;
  long long connection_failures = 0;
};

class Driver {
 public:
  Driver(const Config& config, const Workload& workload)
      : config_(config), workload_(workload), rng_(config.seed ^ 0x9e3779b9) {}

  bool Run() {
    conns_.resize(static_cast<size_t>(config_.connections));
    start_ = Clock::now();
    for (Conn& conn : conns_) {
      if (!OpenConnection(conn)) {
        conn.state = ConnState::kClosed;
        conn.failed = true;
        ++totals_.connection_failures;
      }
    }
    std::vector<pollfd> pollfds;
    std::vector<Conn*> owners;  // pollfds[i] belongs to owners[i]
    while (true) {
      pollfds.clear();
      owners.clear();
      for (Conn& conn : conns_) {
        if (conn.state == ConnState::kClosed) continue;
        short events = POLLIN;
        if (conn.state == ConnState::kConnecting ||
            conn.out_pos < conn.out.size()) {
          events |= POLLOUT;
        }
        pollfds.push_back(pollfd{conn.fd, events, 0});
        owners.push_back(&conn);
      }
      if (pollfds.empty()) break;
      if (MsSince(start_) > config_.timeout_s * 1000.0) {
        std::fprintf(stderr, "load_client: global timeout\n");
        return false;
      }
      int ready = poll(pollfds.data(), pollfds.size(), 1000);
      if (ready < 0 && errno != EINTR) {
        std::perror("poll");
        return false;
      }
      for (size_t i = 0; i < pollfds.size(); ++i) {
        Conn& conn = *owners[i];
        const pollfd& pfd = pollfds[i];
        if (conn.state == ConnState::kClosed) continue;  // closed this round
        if (pfd.revents == 0) continue;
        if (pfd.revents & (POLLERR | POLLNVAL)) {
          CloseConn(conn, /*failed=*/conn.state != ConnState::kClosing);
          continue;
        }
        if (pfd.revents & POLLOUT) {
          if (conn.state == ConnState::kConnecting) {
            OnConnected(conn);
          }
          if (conn.state != ConnState::kClosed) FlushOut(conn);
        }
        if (conn.state != ConnState::kClosed && (pfd.revents & POLLIN)) {
          OnReadable(conn);
        }
      }
    }
    return true;
  }

  Totals& totals() { return totals_; }

 private:
  bool OpenConnection(Conn& conn) {
    conn.fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (conn.fd < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(config_.port));
    if (inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
      return false;
    }
    int rc = connect(conn.fd, reinterpret_cast<sockaddr*>(&addr),
                     sizeof addr);
    if (rc != 0 && errno != EINPROGRESS) return false;
    return true;
  }

  void OnConnected(Conn& conn) {
    int err = 0;
    socklen_t len = sizeof err;
    if (getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      CloseConn(conn, /*failed=*/true);
      return;
    }
    sst::AppendFrame(sst::FrameType::kRegister, workload_.register_payload,
                     &conn.out);
    conn.state = ConnState::kAwaitRegistered;
  }

  void QueueNextDocument(Conn& conn) {
    if (conn.docs_done >= config_.docs_per_connection) {
      sst::AppendFrame(sst::FrameType::kGoodbye, "", &conn.out);
      conn.state = ConnState::kClosing;
      return;
    }
    conn.doc_index = static_cast<int>(rng_.NextBelow(
        workload_.documents.size()));
    conn.doc_faulted = config_.fault_rate > 0.0 &&
                       rng_.NextBool(config_.fault_rate);
    const std::string& doc =
        conn.doc_faulted
            ? workload_.faulted[static_cast<size_t>(conn.doc_index)]
            : workload_.documents[static_cast<size_t>(conn.doc_index)];
    conn.records.clear();
    conn.saw_match_frame = false;
    conn.first_match_ms = 0.0;
    conn.doc_start = Clock::now();
    for (size_t i = 0; i < doc.size(); i += config_.chunk_size) {
      sst::AppendFrame(sst::FrameType::kData,
                       std::string_view(doc).substr(i, config_.chunk_size),
                       &conn.out);
    }
    sst::AppendFrame(sst::FrameType::kFinish, "", &conn.out);
    totals_.bytes_sent += static_cast<long long>(doc.size());
    conn.state = ConnState::kAwaitVerdict;
  }

  void OnVerdict(Conn& conn, const sst::Frame& frame) {
    totals_.latencies_ms.push_back(MsSince(conn.doc_start));
    ++conn.docs_done;
    if (config_.matches) {
      totals_.match_records += static_cast<long long>(conn.records.size());
      if (conn.saw_match_frame) {
        totals_.first_match_ms.push_back(conn.first_match_ms);
      }
    }
    if (frame.type == sst::FrameType::kCounts) {
      ++totals_.ok;
      std::vector<int64_t> counts;
      if (!conn.doc_faulted &&
          (!sst::ParseCounts(frame.payload, &counts) ||
           counts !=
               workload_.expected[static_cast<size_t>(conn.doc_index)])) {
        ++totals_.mismatches;
      }
      // The streamed record sequence must replay the offline sink run
      // byte for byte — same events, same offsets, same order.
      if (config_.matches && !conn.doc_faulted &&
          conn.records !=
              workload_.expected_records[static_cast<size_t>(
                  conn.doc_index)]) {
        ++totals_.mismatches;
      }
    } else {
      ++totals_.stream_errors;
    }
    QueueNextDocument(conn);
  }

  void OnReadable(Conn& conn) {
    // Read everything available first, then decode: a shed-and-half-close
    // from the server delivers the verdict frame and EOF together, and the
    // verdict must be processed before the EOF is judged.
    bool eof = false;
    char buf[16 * 1024];
    while (true) {
      ssize_t n = read(conn.fd, buf, sizeof buf);
      if (n > 0) {
        conn.decoder.Append(std::string_view(buf, static_cast<size_t>(n)));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      eof = true;  // EOF or error: fine after goodbye/shed, else a failure
      break;
    }
    sst::Frame frame;
    while (conn.decoder.Next(&frame) == sst::FrameDecoder::Status::kFrame) {
      switch (frame.type) {
        case sst::FrameType::kRegistered:
          QueueNextDocument(conn);
          break;
        case sst::FrameType::kCounts:
        case sst::FrameType::kError:
          if (conn.state == ConnState::kAwaitVerdict) {
            OnVerdict(conn, frame);
          } else {
            CloseConn(conn, /*failed=*/true);  // bad_register et al.
            return;
          }
          break;
        case sst::FrameType::kMatches:
          if (conn.state == ConnState::kAwaitVerdict) {
            if (!conn.saw_match_frame) {
              conn.saw_match_frame = true;
              conn.first_match_ms = MsSince(conn.doc_start);
            }
            std::vector<sst::MatchWireRecord> parsed;  // ParseMatches clears
            if (!sst::ParseMatches(frame.payload, &parsed)) {
              CloseConn(conn, /*failed=*/true);
              return;
            }
            conn.records.insert(conn.records.end(), parsed.begin(),
                                parsed.end());
          }
          break;
        case sst::FrameType::kShed: {
          ++totals_.sheds;
          sst::ShedReason reason = sst::ShedReason::kDraining;
          sst::ParseShedReason(frame.payload, &reason);
          bool stream_level =
              reason == sst::ShedReason::kMaxStreams ||
              reason == sst::ShedReason::kPoolSaturated;
          if (stream_level && conn.state == ConnState::kAwaitVerdict) {
            // The document was rejected; the connection stays usable.
            totals_.latencies_ms.push_back(MsSince(conn.doc_start));
            ++conn.docs_done;
            QueueNextDocument(conn);
          } else {
            // Admission/drain/timeout verdict: the connection is done.
            // Drop anything still queued and close (the server lingers on
            // a half-close until it sees our FIN).
            CloseConn(conn, /*failed=*/false);
            return;
          }
          break;
        }
        default:
          break;  // kMetricsText etc.: ignore
      }
    }
    if (eof) CloseConn(conn, /*failed=*/conn.state != ConnState::kClosing);
  }

  void FlushOut(Conn& conn) {
    while (conn.out_pos < conn.out.size()) {
      ssize_t n = send(conn.fd, conn.out.data() + conn.out_pos,
                       conn.out.size() - conn.out_pos, MSG_NOSIGNAL);
      if (n > 0) {
        conn.out_pos += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n < 0 && errno == EINTR) continue;
      CloseConn(conn, /*failed=*/conn.state != ConnState::kClosing);
      return;
    }
    conn.out.clear();
    conn.out_pos = 0;
    if (conn.state == ConnState::kClosing) CloseConn(conn, /*failed=*/false);
  }

  void CloseConn(Conn& conn, bool failed) {
    if (conn.fd >= 0) close(conn.fd);
    conn.fd = -1;
    conn.state = ConnState::kClosed;
    if (failed) {
      conn.failed = true;
      ++totals_.connection_failures;
    }
  }

  Config config_;
  const Workload& workload_;
  sst::Rng rng_;
  std::vector<Conn> conns_;
  Totals totals_;
  Clock::time_point start_;
};

double Percentile(std::vector<double>& values, double p) {
  if (values.empty()) return 0.0;
  size_t index = static_cast<size_t>(p * (values.size() - 1));
  std::nth_element(values.begin(),
                   values.begin() + static_cast<long>(index), values.end());
  return values[index];
}

void WriteJson(const Config& config, const Totals& totals, double wall_s,
               double p50, double p99, double mib_per_s, double match_p50,
               double match_p99) {
  std::FILE* file = std::fopen(config.json_out, "w");
  if (file == nullptr) {
    std::perror("json-out");
    std::exit(1);
  }
  char host[256] = "unknown";
  gethostname(host, sizeof host - 1);
  std::time_t now = std::time(nullptr);
  char date[64];
  std::strftime(date, sizeof date, "%Y-%m-%dT%H:%M:%S%z",
                std::localtime(&now));
  long long docs = totals.ok + totals.stream_errors;
  double per_doc_ns = docs > 0 ? wall_s * 1e9 / static_cast<double>(docs)
                               : 0.0;
  std::fprintf(file,
               "{\n"
               " \"context\": {\"date\": \"%s\", \"host_name\": \"%s\","
               " \"num_cpus\": %ld, \"build_type\": \"release\"},\n"
               " \"benchmarks\": [\n"
               "  {\"name\": \"serving/loopback/conns:%d/batch:%d\","
               " \"run_type\": \"iteration\", \"iterations\": %lld,"
               " \"real_time\": %.1f, \"cpu_time\": %.1f,"
               " \"time_unit\": \"ns\","
               " \"bytes_per_second\": %.1f,"
               " \"items_per_second\": %.1f,"
               " \"connections\": %d, \"streams\": %lld,"
               " \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"sheds\": %lld,"
               " \"matches\": %lld,"
               " \"match_p50_ms\": %.3f, \"match_p99_ms\": %.3f}\n"
               " ]\n"
               "}\n",
               date, host, sysconf(_SC_NPROCESSORS_ONLN),
               config.connections, config.batch, docs, per_doc_ns,
               per_doc_ns, mib_per_s * 1024.0 * 1024.0,
               docs / wall_s, config.connections, docs, p50, p99,
               totals.sheds, totals.match_records, match_p50, match_p99);
  std::fclose(file);
}

}  // namespace

int main(int argc, char** argv) {
  RaiseFdLimit();
  std::signal(SIGPIPE, SIG_IGN);

  Config config;
  for (int i = 1; i < argc; i += 2) {
    const char* flag = argv[i];
    if (std::strcmp(flag, "--matches") == 0) {  // valueless
      config.matches = true;
      i -= 1;
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "flag %s needs a value\n", flag);
      return 2;
    }
    const char* value = argv[i + 1];
    if (std::strcmp(flag, "--host") == 0) {
      config.host = value;
    } else if (std::strcmp(flag, "--port") == 0) {
      config.port = std::atoi(value);
    } else if (std::strcmp(flag, "--connections") == 0) {
      config.connections = std::atoi(value);
    } else if (std::strcmp(flag, "--docs") == 0) {
      config.docs_per_connection = std::atoi(value);
    } else if (std::strcmp(flag, "--chunk-size") == 0) {
      config.chunk_size = static_cast<size_t>(std::atoll(value));
    } else if (std::strcmp(flag, "--batch") == 0) {
      config.batch = std::atoi(value);
    } else if (std::strcmp(flag, "--fault-rate") == 0) {
      config.fault_rate = std::atof(value);
    } else if (std::strcmp(flag, "--seed") == 0) {
      config.seed = static_cast<uint64_t>(std::atoll(value));
    } else if (std::strcmp(flag, "--timeout-s") == 0) {
      config.timeout_s = std::atof(value);
    } else if (std::strcmp(flag, "--json-out") == 0) {
      config.json_out = value;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag);
      return 2;
    }
  }
  if (config.port <= 0) {
    std::fprintf(stderr, "--port is required\n");
    return 2;
  }

  Workload workload = BuildWorkload(config);
  Driver driver(config, workload);
  auto start = Clock::now();
  bool completed = driver.Run();
  double wall_s = MsSince(start) / 1000.0;

  Totals& totals = driver.totals();
  double p50 = Percentile(totals.latencies_ms, 0.50);
  double p99 = Percentile(totals.latencies_ms, 0.99);
  double mib = static_cast<double>(totals.bytes_sent) / (1024.0 * 1024.0);
  double mib_per_s = wall_s > 0 ? mib / wall_s : 0.0;

  std::printf("connections=%d docs/conn=%d chunk=%zu batch=%d fault=%.2f\n",
              config.connections, config.docs_per_connection,
              config.chunk_size, config.batch, config.fault_rate);
  std::printf("verdicts: ok=%lld stream_errors=%lld sheds=%lld "
              "conn_failures=%lld mismatches=%lld\n",
              totals.ok, totals.stream_errors, totals.sheds,
              totals.connection_failures, totals.mismatches);
  std::printf("latency p50=%.3fms p99=%.3fms; %.1f MiB in %.2fs = %.1f "
              "MiB/s\n",
              p50, p99, mib, wall_s, mib_per_s);
  double match_p50 = 0.0;
  double match_p99 = 0.0;
  if (config.matches) {
    match_p50 = Percentile(totals.first_match_ms, 0.50);
    match_p99 = Percentile(totals.first_match_ms, 0.99);
    std::printf("matches: records=%lld first-emission p50=%.3fms "
                "p99=%.3fms\n",
                totals.match_records, match_p50, match_p99);
  }

  if (config.json_out != nullptr) {
    WriteJson(config, totals, wall_s, p50, p99, mib_per_s, match_p50,
              match_p99);
  }
  return (completed && totals.mismatches == 0) ? 0 : 1;
}
