// Streaming selection over a JSON-style (term-encoded) event log — the
// exploratory-big-data scenario from the paper's introduction: documents too
// large for a DOM, queried with a JSONPath, evaluated in O(1) memory when
// the characterization theorems permit.
//
// The synthetic log is a tree of request records:
//   log{ request{ meta{} spans{ span{ error{} } span{} } } ... }
// and the query $.log..span..error selects error markers nested anywhere
// under a span.

#include <cstdio>
#include <string>

#include "base/rng.h"
#include "core/stackless.h"
#include "trees/encoding.h"
#include "trees/tree.h"

namespace {

// Generates a synthetic log with `requests` request records.
sst::Tree GenerateLog(sst::Alphabet* alphabet, int requests, uint64_t seed) {
  sst::Rng rng(seed);
  sst::Symbol log = alphabet->Intern("log");
  sst::Symbol request = alphabet->Intern("request");
  sst::Symbol meta = alphabet->Intern("meta");
  sst::Symbol spans = alphabet->Intern("spans");
  sst::Symbol span = alphabet->Intern("span");
  sst::Symbol error = alphabet->Intern("error");

  sst::Tree tree;
  int root = tree.AddRoot(log);
  for (int i = 0; i < requests; ++i) {
    int req = tree.AddChild(root, request);
    tree.AddChild(req, meta);
    int span_list = tree.AddChild(req, spans);
    int num_spans = 1 + static_cast<int>(rng.NextBelow(4));
    for (int s = 0; s < num_spans; ++s) {
      int sp = tree.AddChild(span_list, span);
      // Nested child spans, occasionally carrying an error marker.
      if (rng.NextBool(0.3)) {
        int child = tree.AddChild(sp, span);
        if (rng.NextBool(0.5)) tree.AddChild(child, error);
      }
      if (rng.NextBool(0.15)) tree.AddChild(sp, error);
    }
  }
  return tree;
}

}  // namespace

int main(int argc, char** argv) {
  int requests = argc > 1 ? std::atoi(argv[1]) : 50;
  sst::Alphabet alphabet;
  sst::Tree log = GenerateLog(&alphabet, requests, /*seed=*/2026);
  sst::EventStream events = sst::Encode(log);

  sst::Rpq rpq = sst::Rpq::FromJsonPath("$.log..span..error", alphabet);
  sst::CompiledQuery compiled =
      sst::CompileQuery(rpq, sst::StreamEncoding::kTerm);
  std::printf("query $.log..span..error compiles to: %s\n",
              sst::EvaluatorKindName(compiled.kind));

  // Stream in term encoding: closing events carry no label, exactly like a
  // '}' in JSON.
  compiled.machine->Reset();
  int matches = 0;
  long long bytes = 0;
  for (const sst::TagEvent& event : events) {
    if (event.open) {
      bytes += static_cast<long long>(
                   alphabet.LabelOf(event.symbol).size()) + 1;  // name{
      compiled.machine->OnOpen(event.symbol);
      if (compiled.machine->InAcceptingState()) ++matches;
    } else {
      bytes += 1;  // }
      compiled.machine->OnClose(-1);
    }
  }
  std::printf("document: %d nodes, ~%lld bytes of term encoding\n",
              log.size(), bytes);
  std::printf("errors under spans: %d\n", matches);
  return 0;
}
