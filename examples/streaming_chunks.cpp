// Incremental streaming: the document arrives in arbitrary byte chunks
// (network reads) and matches are reported the moment their opening tag
// goes by — the deployment model pre-selection is designed for. The
// evaluator is registerless, so the per-chunk state is a single integer no
// matter how deep the document nests.

#include <cstdio>
#include <string>

#include "base/rng.h"
#include "core/stackless.h"
#include "dra/streaming.h"
#include "trees/encoding.h"
#include "trees/generators.h"

int main(int argc, char** argv) {
  int nodes = argc > 1 ? std::atoi(argv[1]) : 5000;
  sst::Alphabet alphabet = sst::Alphabet::FromLetters("abc");

  // Generate a document (rooted at <a> so /a//b can match) and serialize
  // it; pretend it arrives over a socket.
  sst::Rng rng(99);
  sst::Tree document;
  document.AddRoot(0);  // 'a'
  for (int i = 1; i < nodes; ++i) {
    int parent = rng.NextBool(0.6) ? i - 1
                                   : static_cast<int>(rng.NextBelow(i));
    document.AddChild(parent, static_cast<sst::Symbol>(rng.NextBelow(3)));
  }
  std::string bytes =
      sst::ToCompactMarkup(alphabet, sst::Encode(document));

  sst::Rpq rpq = sst::Rpq::FromXPath("/a//b", alphabet);
  sst::CompiledQuery compiled =
      sst::CompileQuery(rpq, sst::StreamEncoding::kMarkup);
  std::printf("query /a//b -> %s\n", sst::EvaluatorKindName(compiled.kind));

  sst::StreamingSelector selector(
      compiled.machine.get(), sst::StreamingSelector::Format::kCompactMarkup,
      &alphabet);
  std::printf("scanner path: %s\n", selector.using_fused_fast_path()
                                        ? "fused byte-table (registerless)"
                                        : "generic table-driven");
  int printed = 0;
  selector.set_match_callback([&](int64_t node_index, sst::Symbol symbol) {
    if (printed < 5) {
      std::printf("  match at node #%lld <%s>\n",
                  static_cast<long long>(node_index),
                  alphabet.LabelOf(symbol).c_str());
      ++printed;
    }
  });

  // Feed in awkwardly-sized chunks, as a socket would deliver them.
  size_t offset = 0;
  int chunks = 0;
  sst::Rng chunk_rng(7);
  while (offset < bytes.size()) {
    size_t len = 1 + chunk_rng.NextBelow(97);
    if (!selector.Feed(std::string_view(bytes).substr(offset, len))) {
      std::fprintf(stderr, "parse error: %s\n", selector.error().c_str());
      return 1;
    }
    offset += len;
    ++chunks;
  }
  if (!selector.Finish()) {
    std::fprintf(stderr, "incomplete document: %s\n",
                 selector.error().c_str());
    return 1;
  }
  std::printf("%lld nodes in %d chunks; %lld matches (first %d shown)\n",
              static_cast<long long>(selector.nodes()), chunks,
              static_cast<long long>(selector.matches()), printed);
  sst::StreamStats stats = selector.stats();
  std::printf("stats: %lld bytes, %lld events, max depth %lld\n",
              static_cast<long long>(stats.bytes_fed),
              static_cast<long long>(stats.events),
              static_cast<long long>(stats.max_depth));
  return 0;
}
