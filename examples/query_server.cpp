// The query service as a process: binds the resilient serving layer
// (src/server) to a TCP port and runs until SIGTERM/SIGINT, which trigger
// a graceful drain — stop accepting, finish in-flight documents up to the
// drain deadline, force-close stragglers with a typed verdict — before
// the process exits with a final metrics dump.
//
//   query_server --port 7007 --workers 2
//   query_server --port 0 --port-file /tmp/port   # kernel picks; file gets it
//
// Pair with examples/load_client for a closed-loop benchmark.

#include <sys/resource.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/server.h"

namespace {

// GitHub-runner default is 1024 fds; serving a thousand connections needs
// headroom for sockets + pipes. Best effort.
void RaiseFdLimit() {
  rlimit limit{};
  if (getrlimit(RLIMIT_NOFILE, &limit) != 0) return;
  if (limit.rlim_cur < limit.rlim_max) {
    limit.rlim_cur = limit.rlim_max;
    setrlimit(RLIMIT_NOFILE, &limit);
  }
}

int64_t ParseFlag(const char* value) { return std::atoll(value); }

}  // namespace

int main(int argc, char** argv) {
  RaiseFdLimit();

  sst::ServerOptions options;
  options.limits.max_connections = 4096;
  options.limits.max_streams = 2048;
  const char* port_file = nullptr;
  for (int i = 1; i + 1 < argc; i += 2) {
    const char* flag = argv[i];
    const char* value = argv[i + 1];
    if (std::strcmp(flag, "--port") == 0) {
      options.port = static_cast<uint16_t>(ParseFlag(value));
    } else if (std::strcmp(flag, "--port-file") == 0) {
      port_file = value;
    } else if (std::strcmp(flag, "--workers") == 0) {
      options.num_workers = static_cast<int>(ParseFlag(value));
    } else if (std::strcmp(flag, "--max-connections") == 0) {
      options.limits.max_connections = static_cast<int>(ParseFlag(value));
    } else if (std::strcmp(flag, "--max-streams") == 0) {
      options.limits.max_streams = static_cast<int>(ParseFlag(value));
    } else if (std::strcmp(flag, "--idle-timeout-ms") == 0) {
      options.limits.idle_timeout_ms = ParseFlag(value);
    } else if (std::strcmp(flag, "--write-timeout-ms") == 0) {
      options.limits.write_timeout_ms = ParseFlag(value);
    } else if (std::strcmp(flag, "--drain-deadline-ms") == 0) {
      options.limits.drain_deadline_ms = ParseFlag(value);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag);
      return 2;
    }
  }

  sst::QueryServer server(options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "start failed: %s\n", error.c_str());
    return 1;
  }
  server.InstallSignalDrain(SIGTERM);
  server.InstallSignalDrain(SIGINT);

  std::printf("query_server listening on %s:%u (%d workers)\n",
              options.host.c_str(), server.port(), options.num_workers);
  if (port_file != nullptr) {
    std::FILE* file = std::fopen(port_file, "w");
    if (file != nullptr) {
      std::fprintf(file, "%u\n", server.port());
      std::fclose(file);
    }
  }
  std::fflush(stdout);

  server.WaitUntilDrained();
  std::printf("drained; final metrics:\n%s",
              sst::RenderMetrics(server.stats()).c_str());
  return 0;
}
