// Reproduces (and generalizes) the table of Example 2.12: for each query,
// report whether it is registerless / stackless under the markup (XML) and
// term (JSON) encodings, per Theorems 3.1, 3.2, B.1 and B.2.
//
//   ./rpq_classifier                # the paper's four queries over {a,b,c}
//   ./rpq_classifier 'regex' ...    # your own regexes over {a,b,c}

#include <cstdio>
#include <string>
#include <vector>

#include "core/stackless.h"

int main(int argc, char** argv) {
  sst::Alphabet alphabet = sst::Alphabet::FromLetters("abc");
  struct Entry {
    std::string name;
    std::string regex;
  };
  std::vector<Entry> entries;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) entries.push_back({argv[i], argv[i]});
  } else {
    entries = {
        {"/a//b   ($.a..b)  = a G*b", "a.*b"},
        {"/a/b    ($.a.b)   = a b", "ab"},
        {"//a//b  ($..a..b) = G*a G*b", ".*a.*b"},
        {"//a/b   ($..a.b)  = G*a b", ".*ab"},
    };
  }

  std::printf("%-30s | %-12s %-12s | %-12s %-12s\n", "query",
              "XML reg-less", "XML stackless", "JSON reg-less",
              "JSON stackless");
  std::printf("%s\n", std::string(88, '-').c_str());
  for (const Entry& entry : entries) {
    sst::Rpq rpq = sst::Rpq::FromRegex(entry.regex, alphabet);
    sst::Classification c = sst::ClassifyQuery(rpq);
    auto mark = [](bool b) { return b ? "yes" : "no"; };
    std::printf("%-30s | %-12s %-13s | %-13s %-12s\n", entry.name.c_str(),
                mark(c.QueryRegisterless()), mark(c.QueryStackless()),
                mark(c.TermQueryRegisterless()),
                mark(c.TermQueryStackless()));
  }
  std::printf(
      "\n(registerless = plain DFA on the tag stream; stackless = one depth\n"
      " counter plus depth registers; otherwise a stack is unavoidable.)\n");
  return 0;
}
