// Compile-once/run-many serving: ONE query compiled into one immutable
// QueryPlan (through the PlanCache, as a server would), M documents
// streamed through pooled per-stream Sessions on T worker threads. The
// engine layer makes the steady state allocation-free: every table lives
// in the shared plan, and a pooled acquire is a free-list pop + Reset.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "base/rng.h"
#include "base/thread_pool.h"
#include "engine/plan_cache.h"
#include "engine/query_plan.h"
#include "engine/session.h"
#include "trees/encoding.h"
#include "trees/tree.h"

int main(int argc, char** argv) {
  int num_documents = argc > 1 ? std::atoi(argv[1]) : 200;
  int num_threads = argc > 2 ? std::atoi(argv[2]) : 4;
  sst::Alphabet alphabet = sst::Alphabet::FromLetters("abc");

  // The server's query cache. Both lookups below — one with extra
  // whitespace — canonicalize to the same key: one compilation, one plan.
  sst::PlanCache cache;
  auto plan = cache.GetOrCompile(sst::QuerySyntax::kXPath, "/a//b",
                                 alphabet, sst::PlanOptions{});
  auto same = cache.GetOrCompile(sst::QuerySyntax::kXPath, " /a //b ",
                                 alphabet, sst::PlanOptions{});
  std::printf("query /a//b -> %s plan (shared: %s)\n",
              sst::EvaluatorKindName(plan->kind()),
              plan.get() == same.get() ? "yes" : "no");

  // M synthetic documents, rooted at <a> so the query can match.
  std::vector<std::string> documents;
  documents.reserve(static_cast<size_t>(num_documents));
  sst::Rng rng(7);
  for (int d = 0; d < num_documents; ++d) {
    sst::Tree tree;
    tree.AddRoot(0);  // 'a'
    int nodes = 200 + static_cast<int>(rng.NextBelow(800));
    for (int i = 1; i < nodes; ++i) {
      int parent = rng.NextBool(0.6) ? i - 1
                                     : static_cast<int>(rng.NextBelow(i));
      tree.AddChild(parent, static_cast<sst::Symbol>(rng.NextBelow(3)));
    }
    documents.push_back(sst::ToCompactMarkup(alphabet, sst::Encode(tree)));
  }

  // T worker lanes share the plan through a session pool; each "request"
  // leases a session, streams its document in 4 KiB chunks, and returns
  // the session for the next request to reuse.
  sst::SessionPool pool(plan, static_cast<size_t>(num_threads));
  sst::ThreadPool workers(num_threads);
  std::vector<sst::StreamStats> totals(static_cast<size_t>(num_threads));
  std::vector<int> failures(static_cast<size_t>(num_threads), 0);
  workers.Run(num_documents, [&](int d) {
    // Run() never runs two tasks on one lane at once; index lanes by a
    // round-robin over the document id for the per-lane tallies.
    int lane = d % num_threads;
    sst::SessionLease session = sst::Lease(pool);
    bool ok = true;
    const std::string& bytes = documents[static_cast<size_t>(d)];
    for (size_t i = 0; ok && i < bytes.size(); i += 4096) {
      ok = session->Feed(std::string_view(bytes).substr(i, 4096));
    }
    if (!(ok && session->Finish())) {
      ++failures[static_cast<size_t>(lane)];
      return;
    }
    sst::StreamStats stats = session->stats();
    sst::StreamStats& total = totals[static_cast<size_t>(lane)];
    total.bytes_fed += stats.bytes_fed;
    total.chunks_fed += stats.chunks_fed;
    total.events += stats.events;
    total.matches += stats.matches;
    if (stats.max_depth > total.max_depth) total.max_depth = stats.max_depth;
  });

  sst::StreamStats aggregate;
  int failed = 0;
  for (int lane = 0; lane < num_threads; ++lane) {
    const sst::StreamStats& total = totals[static_cast<size_t>(lane)];
    aggregate.bytes_fed += total.bytes_fed;
    aggregate.chunks_fed += total.chunks_fed;
    aggregate.events += total.events;
    aggregate.matches += total.matches;
    if (total.max_depth > aggregate.max_depth) {
      aggregate.max_depth = total.max_depth;
    }
    failed += failures[static_cast<size_t>(lane)];
  }

  sst::SessionPool::Stats pool_stats = pool.stats();
  sst::PlanCache::Stats cache_stats = cache.stats();
  std::printf("served %d documents on %d threads (%d failed)\n",
              num_documents, num_threads, failed);
  std::printf("  bytes=%lld events=%lld matches=%lld max_depth=%lld\n",
              static_cast<long long>(aggregate.bytes_fed),
              static_cast<long long>(aggregate.events),
              static_cast<long long>(aggregate.matches),
              static_cast<long long>(aggregate.max_depth));
  std::printf("  sessions: created=%lld reused=%lld idle=%zu\n",
              static_cast<long long>(pool_stats.created),
              static_cast<long long>(pool_stats.reused), pool.idle());
  std::printf("  plan cache: hits=%lld misses=%lld coalesced=%lld size=%lld\n",
              static_cast<long long>(cache_stats.hits),
              static_cast<long long>(cache_stats.misses),
              static_cast<long long>(cache_stats.coalesced_misses),
              static_cast<long long>(cache_stats.size));
  return failed == 0 ? 0 : 1;
}
