// Compile-once/run-many serving: ONE query compiled into one immutable
// QueryPlan (through the PlanCache, as a server would), M documents
// streamed through pooled per-stream Sessions on T worker threads. The
// engine layer makes the steady state allocation-free: every table lives
// in the shared plan, and a pooled acquire is a free-list pop + Reset.
//
// With --batch N the example switches to multi-query serving: N queries
// fused into one MultiQueryPlan (deduplicated through the PlanCache key,
// product automaton with per-query selection bitmasks) and answered in a
// single scan per document, timed against N independent sessions.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "base/rng.h"
#include "base/thread_pool.h"
#include "engine/multi_query.h"
#include "engine/plan_cache.h"
#include "engine/query_plan.h"
#include "engine/session.h"
#include "trees/encoding.h"
#include "trees/tree.h"

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Registerless query family over {a..f}: two-step vertical paths, then
// root tests; batches beyond 36 cycle (exercising the dedup path).
std::vector<sst::BatchQuery> BatchQueries(int n) {
  std::vector<std::string> texts;
  const char* letters = "abcdef";
  for (int x = 0; x < 6; ++x) {
    for (int y = 0; y < 6; ++y) {
      if (x != y) {
        texts.push_back(std::string("/") + letters[x] + "//" + letters[y]);
      }
    }
  }
  for (int x = 0; x < 6; ++x) texts.push_back(std::string("/") + letters[x]);
  std::vector<sst::BatchQuery> batch;
  for (int i = 0; i < n; ++i) {
    batch.push_back(sst::BatchQuery{sst::QuerySyntax::kXPath,
                                    texts[static_cast<size_t>(i) %
                                          texts.size()]});
  }
  return batch;
}

int RunBatchMode(int batch_n, int num_documents) {
  sst::Alphabet alphabet = sst::Alphabet::FromLetters("abcdef");
  sst::PlanCache cache;
  auto plan = sst::MultiQueryPlan::Compile(BatchQueries(batch_n), alphabet,
                                           sst::MultiQueryOptions{}, &cache);
  sst::MultiQueryPlan::Stats plan_stats = plan->stats();
  std::printf("batch of %d queries -> %d unique slots, tier %s\n",
              plan_stats.num_queries, plan_stats.num_slots,
              sst::MultiTierName(plan_stats.tier));

  std::vector<std::string> documents;
  documents.reserve(static_cast<size_t>(num_documents));
  sst::Rng rng(7);
  size_t total_bytes = 0;
  for (int d = 0; d < num_documents; ++d) {
    sst::Tree tree;
    tree.AddRoot(static_cast<sst::Symbol>(rng.NextBelow(6)));
    int nodes = 2000 + static_cast<int>(rng.NextBelow(8000));
    for (int i = 1; i < nodes; ++i) {
      int parent = rng.NextBool(0.6) ? i - 1
                                     : static_cast<int>(rng.NextBelow(i));
      tree.AddChild(parent, static_cast<sst::Symbol>(rng.NextBelow(6)));
    }
    documents.push_back(sst::ToCompactMarkup(alphabet, sst::Encode(tree)));
    total_bytes += documents.back().size();
  }

  constexpr size_t kChunk = 4096;
  // Fused pass: every document scanned ONCE, all N queries answered.
  sst::BatchSession batch(plan);
  std::vector<std::vector<int64_t>> fused_counts;
  auto fused_start = std::chrono::steady_clock::now();
  for (const std::string& bytes : documents) {
    batch.Reset();
    bool ok = true;
    for (size_t i = 0; ok && i < bytes.size(); i += kChunk) {
      ok = batch.Feed(std::string_view(bytes).substr(i, kChunk));
    }
    if (!(ok && batch.Finish())) {
      std::printf("batch stream failed\n");
      return 1;
    }
    fused_counts.push_back(batch.query_matches());
  }
  double fused_seconds = SecondsSince(fused_start);

  // Independent pass: the status quo — one pooled session per query, N
  // scans per document.
  std::vector<sst::BatchQuery> queries = BatchQueries(batch_n);
  std::vector<std::unique_ptr<sst::SessionPool>> pools;
  for (const sst::BatchQuery& query : queries) {
    pools.push_back(std::make_unique<sst::SessionPool>(cache.GetOrCompile(
        query.syntax, query.text, alphabet, sst::PlanOptions{})));
  }
  int mismatches = 0;
  auto independent_start = std::chrono::steady_clock::now();
  for (size_t d = 0; d < documents.size(); ++d) {
    const std::string& bytes = documents[d];
    for (size_t q = 0; q < pools.size(); ++q) {
      auto session = pools[q]->Acquire();
      bool ok = true;
      for (size_t i = 0; ok && i < bytes.size(); i += kChunk) {
        ok = session->Feed(std::string_view(bytes).substr(i, kChunk));
      }
      if (!(ok && session->Finish()) ||
          session->matches() != fused_counts[d][q]) {
        ++mismatches;
      }
      pools[q]->Release(std::move(session));
    }
  }
  double independent_seconds = SecondsSince(independent_start);

  plan_stats = plan->stats();
  double mib = static_cast<double>(total_bytes) / (1024.0 * 1024.0);
  std::printf("served %d documents (%.1f MiB), %d queries each:\n",
              num_documents, mib, batch_n);
  std::printf("  fused       %.3fs  %.1f MiB/s  (1 scan/doc, %s, %d states)\n",
              fused_seconds, mib / fused_seconds,
              sst::MultiTierName(plan_stats.tier),
              plan_stats.tier == sst::MultiTier::kFusedProduct
                  ? plan_stats.eager_states
                  : plan_stats.lazy_states);
  std::printf("  independent %.3fs  %.1f MiB/s  (%d scans/doc)\n",
              independent_seconds, mib / independent_seconds, batch_n);
  std::printf("  speedup %.2fx, per-query counts %s\n",
              independent_seconds / fused_seconds,
              mismatches == 0 ? "identical" : "MISMATCHED");
  sst::PlanCache::Stats cache_stats = cache.stats();
  std::printf("  plan cache: misses=%lld hits=%lld (batch dedup never "
              "recompiles)\n",
              static_cast<long long>(cache_stats.misses),
              static_cast<long long>(cache_stats.hits));
  return mismatches == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  int batch_n = 0;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc) {
      batch_n = std::atoi(argv[++i]);
    } else {
      positional.push_back(argv[i]);
    }
  }
  int num_documents =
      positional.size() > 0 ? std::atoi(positional[0]) : 200;
  int num_threads = positional.size() > 1 ? std::atoi(positional[1]) : 4;
  if (batch_n > 0) return RunBatchMode(batch_n, num_documents);
  sst::Alphabet alphabet = sst::Alphabet::FromLetters("abc");

  // The server's query cache. Both lookups below — one with extra
  // whitespace — canonicalize to the same key: one compilation, one plan.
  sst::PlanCache cache;
  auto plan = cache.GetOrCompile(sst::QuerySyntax::kXPath, "/a//b",
                                 alphabet, sst::PlanOptions{});
  auto same = cache.GetOrCompile(sst::QuerySyntax::kXPath, " /a //b ",
                                 alphabet, sst::PlanOptions{});
  std::printf("query /a//b -> %s plan (shared: %s)\n",
              sst::EvaluatorKindName(plan->kind()),
              plan.get() == same.get() ? "yes" : "no");

  // M synthetic documents, rooted at <a> so the query can match.
  std::vector<std::string> documents;
  documents.reserve(static_cast<size_t>(num_documents));
  sst::Rng rng(7);
  for (int d = 0; d < num_documents; ++d) {
    sst::Tree tree;
    tree.AddRoot(0);  // 'a'
    int nodes = 200 + static_cast<int>(rng.NextBelow(800));
    for (int i = 1; i < nodes; ++i) {
      int parent = rng.NextBool(0.6) ? i - 1
                                     : static_cast<int>(rng.NextBelow(i));
      tree.AddChild(parent, static_cast<sst::Symbol>(rng.NextBelow(3)));
    }
    documents.push_back(sst::ToCompactMarkup(alphabet, sst::Encode(tree)));
  }

  // T worker lanes share the plan through a session pool; each "request"
  // leases a session, streams its document in 4 KiB chunks, and returns
  // the session for the next request to reuse.
  sst::SessionPool pool(plan, static_cast<size_t>(num_threads));
  sst::ThreadPool workers(num_threads);
  std::vector<sst::StreamStats> totals(static_cast<size_t>(num_threads));
  std::vector<int> failures(static_cast<size_t>(num_threads), 0);
  workers.Run(num_documents, [&](int d) {
    // Run() never runs two tasks on one lane at once; index lanes by a
    // round-robin over the document id for the per-lane tallies.
    int lane = d % num_threads;
    sst::SessionLease session = sst::Lease(pool);
    bool ok = true;
    const std::string& bytes = documents[static_cast<size_t>(d)];
    for (size_t i = 0; ok && i < bytes.size(); i += 4096) {
      ok = session->Feed(std::string_view(bytes).substr(i, 4096));
    }
    if (!(ok && session->Finish())) {
      ++failures[static_cast<size_t>(lane)];
      return;
    }
    sst::StreamStats stats = session->stats();
    sst::StreamStats& total = totals[static_cast<size_t>(lane)];
    total.bytes_fed += stats.bytes_fed;
    total.chunks_fed += stats.chunks_fed;
    total.events += stats.events;
    total.matches += stats.matches;
    if (stats.max_depth > total.max_depth) total.max_depth = stats.max_depth;
  });

  sst::StreamStats aggregate;
  int failed = 0;
  for (int lane = 0; lane < num_threads; ++lane) {
    const sst::StreamStats& total = totals[static_cast<size_t>(lane)];
    aggregate.bytes_fed += total.bytes_fed;
    aggregate.chunks_fed += total.chunks_fed;
    aggregate.events += total.events;
    aggregate.matches += total.matches;
    if (total.max_depth > aggregate.max_depth) {
      aggregate.max_depth = total.max_depth;
    }
    failed += failures[static_cast<size_t>(lane)];
  }

  sst::SessionPool::Stats pool_stats = pool.stats();
  sst::PlanCache::Stats cache_stats = cache.stats();
  std::printf("served %d documents on %d threads (%d failed)\n",
              num_documents, num_threads, failed);
  std::printf("  bytes=%lld events=%lld matches=%lld max_depth=%lld\n",
              static_cast<long long>(aggregate.bytes_fed),
              static_cast<long long>(aggregate.events),
              static_cast<long long>(aggregate.matches),
              static_cast<long long>(aggregate.max_depth));
  std::printf("  sessions: created=%lld reused=%lld idle=%zu\n",
              static_cast<long long>(pool_stats.created),
              static_cast<long long>(pool_stats.reused), pool.idle());
  std::printf("  plan cache: hits=%lld misses=%lld coalesced=%lld size=%lld\n",
              static_cast<long long>(cache_stats.hits),
              static_cast<long long>(cache_stats.misses),
              static_cast<long long>(cache_stats.coalesced_misses),
              static_cast<long long>(cache_stats.size));
  return failed == 0 ? 0 : 1;
}
