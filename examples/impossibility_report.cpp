// The refuter as a user tool: ask why a query cannot be evaluated without
// a stack and get an executable certificate — two concrete documents that
// differ on "some branch matches" yet drive the best-possible stackless
// machine into the same verdict (Lemmas 3.12 / 3.16 made tangible).
//
//   ./impossibility_report            # //a/b, the paper's hard query
//   ./impossibility_report '/a/b'     # any XPath over {a,b,c}

#include <cstdio>
#include <string>

#include "core/stackless.h"
#include "trees/encoding.h"

int main(int argc, char** argv) {
  std::string xpath = argc > 1 ? argv[1] : "//a/b";
  sst::Alphabet alphabet = sst::Alphabet::FromLetters("abc");
  sst::Rpq rpq = sst::Rpq::FromXPath(xpath, alphabet);
  sst::QueryLimitsReport report = sst::ExplainQueryLimits(rpq);

  std::printf("query: %s\n", xpath.c_str());
  std::printf("registerless: %s   stackless: %s\n",
              report.registerless ? "yes" : "no",
              report.stackless ? "yes" : "no");
  std::printf("%s\n", report.summary.c_str());

  if (report.certificate_in_el.has_value()) {
    sst::EventStream in_el = sst::Encode(*report.certificate_in_el);
    sst::EventStream out_el = sst::Encode(*report.certificate_out_el);
    std::printf("\ncertificate (%d and %d nodes):\n",
                report.certificate_in_el->size(),
                report.certificate_out_el->size());
    if (report.certificate_in_el->size() <= 60) {
      std::printf("  in EL:  %s\n",
                  sst::ToCompactMarkup(alphabet, in_el).c_str());
      std::printf("  out EL: %s\n",
                  sst::ToCompactMarkup(alphabet, out_el).c_str());
    } else {
      std::printf("  (too large to print; sizes above)\n");
    }
    std::printf(
        "the first tree has a matching branch, the second has none, and\n"
        "the best-effort machine cannot tell them apart.\n");
  }
  return 0;
}
