// Descendant-pattern search over a streamed corpus (Proposition 2.8): the
// matcher uses one depth register per pattern node and no stack, yet
// detects arbitrary label-plus-descendancy patterns.
//
// The pattern here is Fig 1a's shape: an article (b) containing a section
// (b) that has both a figure (a) and a citation (c) below it, plus another
// citation elsewhere in the article. We stream a generated corpus and count
// matching documents, cross-checking against the in-memory DP matcher.

#include <cstdio>

#include "base/rng.h"
#include "dra/machine.h"
#include "patterns/descendant_pattern.h"
#include "trees/encoding.h"
#include "trees/generators.h"

int main(int argc, char** argv) {
  int corpus_size = argc > 1 ? std::atoi(argv[1]) : 200;

  // Pattern of Fig 1a over symbols a=0 (figure), b=1 (article/section),
  // c=2 (citation).
  sst::Tree pattern;
  int root = pattern.AddRoot(1);
  int inner = pattern.AddChild(root, 1);
  pattern.AddChild(inner, 0);
  pattern.AddChild(inner, 2);
  pattern.AddChild(root, 2);

  sst::DescendantPatternMatcher matcher(pattern);
  std::printf("pattern: %d nodes -> %d depth registers, zero stack\n",
              pattern.size(), matcher.num_registers());

  sst::Rng rng(77);
  int streamed_matches = 0;
  int oracle_matches = 0;
  long long total_nodes = 0;
  for (int doc = 0; doc < corpus_size; ++doc) {
    int nodes = 20 + static_cast<int>(rng.NextBelow(80));
    sst::Tree tree = sst::RandomTree(nodes, 3, rng.NextDouble() * 0.8, &rng);
    total_nodes += nodes;
    bool streamed = sst::RunAcceptor(&matcher, sst::Encode(tree));
    bool oracle = sst::ContainsPattern(tree, pattern);
    streamed_matches += streamed ? 1 : 0;
    oracle_matches += oracle ? 1 : 0;
    if (streamed != oracle) {
      std::printf("DISAGREEMENT on document %d!\n", doc);
      return 1;
    }
  }
  std::printf("corpus: %d documents, %lld nodes\n", corpus_size, total_nodes);
  std::printf("matches (streamed): %d\n", streamed_matches);
  std::printf("matches (in-memory oracle): %d — all verdicts agree\n",
              oracle_matches);
  return 0;
}
