// Quickstart: classify an XPath query per the paper's characterization
// theorems, compile the strongest streaming evaluator, and run it over a
// streamed XML-lite document.
//
//   ./quickstart [xpath] [document]
//
// Defaults reproduce Example 2.12's first query /a//b over a small document.

#include <cstdio>
#include <string>

#include "core/stackless.h"
#include "trees/encoding.h"

int main(int argc, char** argv) {
  std::string xpath = argc > 1 ? argv[1] : "/a//b";
  std::string document =
      argc > 2 ? argv[2]
               : "<a><b></b><c><b></b><a><b></b></a></c><c></c></a>";

  // Parse the document once to learn its vocabulary; in a production
  // pipeline the alphabet comes from the schema.
  sst::Alphabet alphabet;
  std::optional<sst::EventStream> events =
      sst::ParseXmlLite(&alphabet, document);
  if (!events.has_value() || !sst::IsValidEncoding(*events)) {
    std::fprintf(stderr, "error: document is not well-formed XML-lite\n");
    return 1;
  }

  sst::Rpq rpq = sst::Rpq::FromXPath(xpath, alphabet);
  sst::Classification classification = sst::ClassifyQuery(rpq);
  std::printf("query: %s\n", xpath.c_str());
  std::printf("%s", classification.ToString().c_str());

  sst::CompiledQuery compiled =
      sst::CompileQuery(rpq, sst::StreamEncoding::kMarkup);
  std::printf("compiled evaluator: %s\n",
              sst::EvaluatorKindName(compiled.kind));

  // Stream the document through the evaluator and report pre-selected
  // nodes as they open (this is the whole point of pre-selection: the
  // subtree of a match can be forwarded downstream with no extra memory).
  compiled.machine->Reset();
  int node_index = 0;
  int matches = 0;
  for (const sst::TagEvent& event : *events) {
    if (event.open) {
      compiled.machine->OnOpen(event.symbol);
      if (compiled.machine->InAcceptingState()) {
        std::printf("match: node #%d <%s>\n", node_index,
                    alphabet.LabelOf(event.symbol).c_str());
        ++matches;
      }
      ++node_index;
    } else {
      compiled.machine->OnClose(event.symbol);
    }
  }
  std::printf("%d node(s) selected out of %d\n", matches, node_index);
  return 0;
}
