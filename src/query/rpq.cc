#include "query/rpq.h"

#include <cctype>
#include <vector>

#include "automata/minimize.h"
#include "base/check.h"

namespace sst {

namespace {

struct Step {
  bool descendant = false;  // // or .. axis
  std::string label;        // "*" for the wildcard
};

RegexPtr StepsToRegex(const std::vector<Step>& steps,
                      const Alphabet& alphabet) {
  RegexPtr regex = Regex::Epsilon();
  for (const Step& step : steps) {
    if (step.descendant) {
      regex = Regex::Concat(std::move(regex), Regex::Star(Regex::Any()));
    }
    RegexPtr label;
    if (step.label == "*") {
      label = Regex::Any();
    } else {
      Symbol symbol = alphabet.Find(step.label);
      SST_CHECK_MSG(symbol >= 0, "query label not in document alphabet");
      label = Regex::Sym(symbol);
    }
    regex = Regex::Concat(std::move(regex), std::move(label));
  }
  return regex;
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '*';
}

std::vector<Step> ParseXPathSteps(std::string_view expression) {
  std::vector<Step> steps;
  size_t i = 0;
  SST_CHECK_MSG(!expression.empty() && expression[0] == '/',
                "XPath expression must start with / or //");
  while (i < expression.size()) {
    SST_CHECK_MSG(expression[i] == '/', "expected / in XPath expression");
    Step step;
    ++i;
    if (i < expression.size() && expression[i] == '/') {
      step.descendant = true;
      ++i;
    }
    size_t start = i;
    while (i < expression.size() && IsNameChar(expression[i])) ++i;
    SST_CHECK_MSG(i > start, "empty step label in XPath expression");
    step.label = std::string(expression.substr(start, i - start));
    steps.push_back(std::move(step));
  }
  return steps;
}

std::vector<Step> ParseJsonPathSteps(std::string_view expression) {
  std::vector<Step> steps;
  SST_CHECK_MSG(!expression.empty() && expression[0] == '$',
                "JSONPath expression must start with $");
  size_t i = 1;
  while (i < expression.size()) {
    SST_CHECK_MSG(expression[i] == '.', "expected . in JSONPath expression");
    Step step;
    ++i;
    if (i < expression.size() && expression[i] == '.') {
      step.descendant = true;
      ++i;
    }
    size_t start = i;
    while (i < expression.size() && IsNameChar(expression[i])) ++i;
    SST_CHECK_MSG(i > start, "empty step name in JSONPath expression");
    step.label = std::string(expression.substr(start, i - start));
    steps.push_back(std::move(step));
  }
  SST_CHECK_MSG(!steps.empty(), "JSONPath expression selects nothing");
  return steps;
}

Rpq FromSteps(std::string_view source, const std::vector<Step>& steps,
              const Alphabet& alphabet) {
  Rpq rpq;
  rpq.source = std::string(source);
  rpq.alphabet = alphabet;
  rpq.regex = StepsToRegex(steps, alphabet);
  rpq.minimal_dfa = RegexToMinimalDfa(*rpq.regex, alphabet.size());
  return rpq;
}

}  // namespace

Rpq Rpq::FromRegex(std::string_view pattern, const Alphabet& alphabet) {
  Rpq rpq;
  rpq.source = std::string(pattern);
  rpq.alphabet = alphabet;
  rpq.regex = ParseRegex(pattern, alphabet);
  rpq.minimal_dfa = RegexToMinimalDfa(*rpq.regex, alphabet.size());
  return rpq;
}

Rpq Rpq::FromXPath(std::string_view expression, const Alphabet& alphabet) {
  return FromSteps(expression, ParseXPathSteps(expression), alphabet);
}

Rpq Rpq::FromJsonPath(std::string_view expression, const Alphabet& alphabet) {
  return FromSteps(expression, ParseJsonPathSteps(expression), alphabet);
}

}  // namespace sst
