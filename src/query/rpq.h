#ifndef SST_QUERY_RPQ_H_
#define SST_QUERY_RPQ_H_

#include <string>
#include <string_view>

#include "automata/alphabet.h"
#include "automata/dfa.h"
#include "automata/regex.h"

namespace sst {

// A regular path query (Section 2.3): the unary query Q_L selecting every
// node whose root-to-node label word lies in the regular language L. This
// is the user-facing query object; classification and evaluator compilation
// live in core/stackless.h.
struct Rpq {
  std::string source;   // original expression, for diagnostics
  Alphabet alphabet;    // document vocabulary (fixes the wildcard)
  RegexPtr regex;
  Dfa minimal_dfa;      // minimal complete DFA of L

  // L given as a regex over the alphabet (see automata/regex.h syntax).
  static Rpq FromRegex(std::string_view pattern, const Alphabet& alphabet);

  // Vertical XPath subset: steps `/label` (child axis) and `//label`
  // (descendant axis), with `*` as the label wildcard. Examples
  // (Example 2.12):  /a//b   /a/b   //a//b   //a/b .
  // The alphabet must contain every label that can occur in documents
  // (needed to expand `//` and `*`).
  static Rpq FromXPath(std::string_view expression, const Alphabet& alphabet);

  // JSONPath subset: `$` followed by steps `.name` / `..name`, with `*`
  // wildcards. Examples (Example 2.12): $.a..b  $.a.b  $..a..b  $..a.b .
  static Rpq FromJsonPath(std::string_view expression,
                          const Alphabet& alphabet);
};

}  // namespace sst

#endif  // SST_QUERY_RPQ_H_
