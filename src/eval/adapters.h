#ifndef SST_EVAL_ADAPTERS_H_
#define SST_EVAL_ADAPTERS_H_

#include <memory>
#include <utility>

#include "dra/machine.h"

namespace sst {

// Boolean-query adapters from the proof outlines of Theorems 3.1 and 3.2:
// any machine realizing QL yields machines recognizing EL and AL by watching
// what happens at leaves (a closing tag immediately after an opening tag).
// Both wrappers preserve registerlessness/stacklessness: they only add a
// constant amount of finite state around the inner machine.

// Accepts iff some leaf was pre-selected by the inner machine, i.e. some
// branch is labelled by a word of L (EL).
class ExistsAdapter final : public StreamMachine {
 public:
  explicit ExistsAdapter(std::unique_ptr<StreamMachine> inner)
      : inner_(std::move(inner)) {
    Reset();
  }

  void Reset() override {
    inner_->Reset();
    last_was_open_ = false;
    last_accepting_ = false;
    triggered_ = false;
  }

  void OnOpen(Symbol symbol) override {
    inner_->OnOpen(symbol);
    last_was_open_ = true;
    last_accepting_ = inner_->InAcceptingState();
  }

  void OnClose(Symbol symbol) override {
    if (last_was_open_ && last_accepting_) triggered_ = true;
    inner_->OnClose(symbol);
    last_was_open_ = false;
  }

  bool InAcceptingState() const override { return triggered_; }

 private:
  std::unique_ptr<StreamMachine> inner_;
  bool last_was_open_ = false;
  bool last_accepting_ = false;
  bool triggered_ = false;
};

// Accepts iff every leaf was pre-selected (AL); the dual construction of
// Theorem 3.2's outline (all-rejecting sink on a rejected leaf).
class ForallAdapter final : public StreamMachine {
 public:
  explicit ForallAdapter(std::unique_ptr<StreamMachine> inner)
      : inner_(std::move(inner)) {
    Reset();
  }

  void Reset() override {
    inner_->Reset();
    last_was_open_ = false;
    last_accepting_ = false;
    violated_ = false;
  }

  void OnOpen(Symbol symbol) override {
    inner_->OnOpen(symbol);
    last_was_open_ = true;
    last_accepting_ = inner_->InAcceptingState();
  }

  void OnClose(Symbol symbol) override {
    if (last_was_open_ && !last_accepting_) violated_ = true;
    inner_->OnClose(symbol);
    last_was_open_ = false;
  }

  bool InAcceptingState() const override { return !violated_; }

 private:
  std::unique_ptr<StreamMachine> inner_;
  bool last_was_open_ = false;
  bool last_accepting_ = false;
  bool violated_ = false;
};

}  // namespace sst

#endif  // SST_EVAL_ADAPTERS_H_
