#include "eval/byte_runner.h"

#include <algorithm>

#include "base/check.h"

namespace sst {

ByteTagDfaRunner::ByteTagDfaRunner(const TagDfa& dfa)
    : num_states_(dfa.num_states), initial_(dfa.initial) {
  SST_CHECK_MSG(dfa.num_symbols <= 26, "compact markup allows 26 symbols");
  table_.assign(static_cast<size_t>(num_states_) * 256, 0);
  accepting_.assign(num_states_, 0);
  for (int q = 0; q < num_states_; ++q) {
    accepting_[q] = dfa.accepting[q] ? 1 : 0;
    for (int byte = 0; byte < 256; ++byte) {
      // Unknown bytes self-loop (they cannot occur in valid input).
      table_[static_cast<size_t>(q) * 256 + byte] = q;
    }
    for (Symbol a = 0; a < dfa.num_symbols; ++a) {
      table_[static_cast<size_t>(q) * 256 + ('a' + a)] = dfa.NextOpen(q, a);
      table_[static_cast<size_t>(q) * 256 + ('A' + a)] = dfa.NextClose(q, a);
    }
  }
}

int64_t ByteTagDfaRunner::CountSelections(std::string_view bytes) const {
  int state = initial_;
  int64_t selected = 0;
  for (unsigned char byte : bytes) {
    state = Step(state, byte);
    // Pre-selection samples only after opening tags (lowercase bytes).
    selected += (byte >= 'a') & accepting_[state];
  }
  return selected;
}

bool ByteTagDfaRunner::Accepts(std::string_view bytes) const {
  int state = initial_;
  for (unsigned char byte : bytes) state = Step(state, byte);
  return accepting_[state] != 0;
}

ByteStackRunner::ByteStackRunner(const Dfa& dfa)
    : num_states_(dfa.num_states), initial_(dfa.initial) {
  SST_CHECK_MSG(dfa.num_symbols <= 26, "compact markup allows 26 symbols");
  open_table_.assign(static_cast<size_t>(num_states_) * 26, 0);
  accepting_.assign(num_states_, 0);
  for (int q = 0; q < num_states_; ++q) {
    accepting_[q] = dfa.accepting[q] ? 1 : 0;
    for (Symbol a = 0; a < dfa.num_symbols; ++a) {
      open_table_[static_cast<size_t>(q) * 26 + a] = dfa.Next(q, a);
    }
  }
}

int64_t ByteStackRunner::CountSelections(std::string_view bytes) {
  stack_.clear();
  int state = initial_;
  int64_t selected = 0;
  for (unsigned char byte : bytes) {
    if (byte >= 'a' && byte <= 'z') {
      stack_.push_back(state);
      state = open_table_[static_cast<size_t>(state) * 26 + (byte - 'a')];
      selected += accepting_[state];
    } else if (byte >= 'A' && byte <= 'Z' && !stack_.empty()) {
      state = stack_.back();
      stack_.pop_back();
    }
    max_stack_depth_ = std::max(max_stack_depth_, stack_.size());
  }
  return selected;
}

}  // namespace sst
