#include "eval/stackless_query.h"

#include <algorithm>
#include <map>
#include <utility>

#include "automata/relations.h"
#include "base/check.h"

namespace sst {

namespace {

// Builds the backtrack table shared by the interpreter and the
// materializer. Non-blind: revert[p * k + a]; blind: revert[p].
std::vector<int> BuildRevertTable(const Dfa& dfa, const SccInfo& scc,
                                  bool blind) {
  const int n = dfa.num_states;
  const int k = dfa.num_symbols;
  std::vector<int> revert(static_cast<size_t>(n) * (blind ? 1 : k), -1);
  for (int p = 0; p < n; ++p) {
    int component = scc.component_of[p];
    const std::vector<int>& members = scc.members[component];
    if (blind) {
      for (int candidate : members) {  // members are sorted ascending
        bool ok = false;
        for (Symbol a = 0; a < k && !ok; ++a) {
          int succ = dfa.Next(candidate, a);
          ok = scc.component_of[succ] == component &&
               AlmostEquivalentStates(dfa, succ, p);
        }
        if (ok) {
          revert[p] = candidate;
          break;
        }
      }
    } else {
      for (Symbol a = 0; a < k; ++a) {
        for (int candidate : members) {
          int succ = dfa.Next(candidate, a);
          if (scc.component_of[succ] == component &&
              AlmostEquivalentStates(dfa, succ, p)) {
            revert[static_cast<size_t>(p) * k + a] = candidate;
            break;
          }
        }
      }
    }
  }
  return revert;
}

}  // namespace

StacklessBlueprint StacklessBlueprint::Build(const Dfa& minimal_dfa,
                                             bool blind) {
  StacklessBlueprint blueprint;
  blueprint.dfa = minimal_dfa;
  blueprint.blind = blind;
  blueprint.scc = ComputeScc(blueprint.dfa);
  blueprint.revert = BuildRevertTable(blueprint.dfa, blueprint.scc, blind);
  blueprint.max_chain = std::max(0, LongestChainLength(blueprint.scc) - 1);
  return blueprint;
}

StacklessQueryEvaluator::StacklessQueryEvaluator(const Dfa& minimal_dfa,
                                                 bool blind)
    : owned_blueprint_(std::make_unique<StacklessBlueprint>(
          StacklessBlueprint::Build(minimal_dfa, blind))),
      blueprint_(owned_blueprint_.get()) {
  Reset();
}

StacklessQueryEvaluator::StacklessQueryEvaluator(
    const StacklessBlueprint* blueprint)
    : blueprint_(blueprint) {
  chain_scc_.reserve(blueprint_->max_chain);
  chain_witness_.reserve(blueprint_->max_chain);
  chain_depth_.reserve(blueprint_->max_chain);
  Reset();
}

void StacklessQueryEvaluator::Reset() {
  dead_ = false;
  witness_ = blueprint_->dfa.initial;
  current_scc_ = blueprint_->scc.component_of[witness_];
  depth_ = 0;
  chain_scc_.clear();
  chain_witness_.clear();
  chain_depth_.clear();
}

void StacklessQueryEvaluator::OnOpen(Symbol symbol) {
  ++depth_;
  if (dead_) return;
  int next = blueprint_->dfa.Next(witness_, symbol);
  int next_scc = blueprint_->scc.component_of[next];
  if (next_scc != current_scc_) {
    chain_scc_.push_back(current_scc_);
    chain_witness_.push_back(witness_);
    chain_depth_.push_back(depth_);
    current_scc_ = next_scc;
  }
  witness_ = next;
}

void StacklessQueryEvaluator::OnClose(Symbol symbol) {
  --depth_;
  if (dead_) return;
  if (!chain_depth_.empty() && depth_ < chain_depth_.back()) {
    // The previous state of the simulated run belongs to the remembered
    // SCC; revert to its witness and free the register.
    current_scc_ = chain_scc_.back();
    witness_ = chain_witness_.back();
    chain_scc_.pop_back();
    chain_witness_.pop_back();
    chain_depth_.pop_back();
    return;
  }
  int target = Revert(witness_, blueprint_->blind ? 0 : symbol);
  if (target < 0) {
    dead_ = true;
    return;
  }
  witness_ = target;
}

bool StacklessQueryEvaluator::InAcceptingState() const {
  return !dead_ && blueprint_->dfa.accepting[witness_];
}

bool StacklessQueryEvaluator::SaveConfig(std::vector<int64_t>* out) {
  out->clear();
  out->push_back(dead_ ? 1 : 0);
  out->push_back(witness_);
  out->push_back(current_scc_);
  out->push_back(depth_);
  out->push_back(static_cast<int64_t>(chain_scc_.size()));
  for (size_t i = 0; i < chain_scc_.size(); ++i) {
    out->push_back(chain_scc_[i]);
    out->push_back(chain_witness_[i]);
    out->push_back(chain_depth_[i]);
  }
  return true;
}

bool StacklessQueryEvaluator::RestoreConfig(
    const std::vector<int64_t>& config) {
  if (config.size() < 5) return false;
  const size_t chain = static_cast<size_t>(config[4]);
  if (config.size() != 5 + 3 * chain) return false;
  dead_ = config[0] != 0;
  witness_ = static_cast<int>(config[1]);
  current_scc_ = static_cast<int>(config[2]);
  depth_ = config[3];
  chain_scc_.resize(chain);
  chain_witness_.resize(chain);
  chain_depth_.resize(chain);
  for (size_t i = 0; i < chain; ++i) {
    chain_scc_[i] = static_cast<int>(config[5 + 3 * i]);
    chain_witness_[i] = static_cast<int>(config[5 + 3 * i + 1]);
    chain_depth_[i] = config[5 + 3 * i + 2];
  }
  return true;
}

bool StacklessQueryEvaluator::ConfigEqualsCurrent(
    const std::vector<int64_t>& config) const {
  if (config.size() != 5 + 3 * chain_scc_.size()) return false;
  if ((config[0] != 0) != dead_ || config[1] != witness_ ||
      config[2] != current_scc_ || config[3] != depth_ ||
      config[4] != static_cast<int64_t>(chain_scc_.size())) {
    return false;
  }
  for (size_t i = 0; i < chain_scc_.size(); ++i) {
    if (config[5 + 3 * i] != chain_scc_[i] ||
        config[5 + 3 * i + 1] != chain_witness_[i] ||
        config[5 + 3 * i + 2] != chain_depth_[i]) {
      return false;
    }
  }
  return true;
}

namespace {

// Control state of the materialized machine.
struct ControlState {
  bool dead = false;
  int witness = 0;
  int current_scc = 0;
  // Parallel chains, bottom..top.
  std::vector<int> chain_scc;
  std::vector<int> chain_witness;

  std::vector<int> Key() const {
    std::vector<int> key;
    key.push_back(dead ? 1 : 0);
    key.push_back(witness);
    key.push_back(current_scc);
    for (size_t i = 0; i < chain_scc.size(); ++i) {
      key.push_back(chain_scc[i]);
      key.push_back(chain_witness[i]);
    }
    return key;
  }
};

}  // namespace

std::optional<Dra> MaterializeStacklessQueryDra(const Dfa& minimal_dfa,
                                                bool blind, int max_states) {
  StacklessQueryEvaluator spec(minimal_dfa, blind);
  const Dfa& dfa = spec.dfa();
  const SccInfo& scc = spec.scc();
  const int num_registers = spec.num_registers();
  if (num_registers > Dra::kMaxRegisters) return std::nullopt;

  std::map<std::vector<int>, int> id;
  std::vector<ControlState> states;
  auto intern = [&](const ControlState& s) {
    auto [it, inserted] = id.emplace(s.Key(), static_cast<int>(states.size()));
    if (inserted) states.push_back(s);
    return it->second;
  };

  ControlState start;
  start.witness = dfa.initial;
  start.current_scc = scc.component_of[dfa.initial];
  ControlState dead_state;
  dead_state.dead = true;
  int start_id = intern(start);
  int dead_id = intern(dead_state);
  (void)dead_id;

  std::vector<Dra::Action> table;  // filled in state order
  const int num_symbols = dfa.num_symbols;
  int num_codes = 1;
  for (int i = 0; i < num_registers; ++i) num_codes *= 3;

  for (size_t index = 0; index < states.size(); ++index) {
    if (static_cast<int>(states.size()) > max_states) return std::nullopt;
    // Copy: `states` may grow (and reallocate) during interning below.
    const ControlState current = states[index];
    const int live = static_cast<int>(current.chain_scc.size());
    for (int close = 0; close < 2; ++close) {
      for (Symbol a = 0; a < num_symbols; ++a) {
        for (int code = 0; code < num_codes; ++code) {
          Dra::Action action;
          ControlState next = current;
          int new_live = live;
          if (current.dead) {
            // stay dead
          } else if (close == 0) {
            int succ = dfa.Next(current.witness, a);
            int succ_scc = scc.component_of[succ];
            if (succ_scc != current.current_scc) {
              next.chain_scc.push_back(current.current_scc);
              next.chain_witness.push_back(current.witness);
              next.current_scc = succ_scc;
              action.load_mask |= uint32_t{1} << live;
              new_live = live + 1;
            }
            next.witness = succ;
          } else {
            bool pop = live > 0 && Dra::CmpDigit(code, live - 1) ==
                                       Dra::kGreater;
            if (pop) {
              next.current_scc = next.chain_scc.back();
              next.witness = next.chain_witness.back();
              next.chain_scc.pop_back();
              next.chain_witness.pop_back();
              new_live = live - 1;
            } else {
              int target = spec.Revert(current.witness, blind ? 0 : a);
              if (target < 0) {
                next = ControlState{};
                next.dead = true;
              } else {
                next.witness = target;
              }
            }
          }
          // Restrictedness (Section 2.2): reload every register that reads
          // strictly greater than the current depth. In reachable
          // configurations chain depths increase bottom-to-top and the
          // machine pops as soon as the top exceeds the depth, so the only
          // register this can hit is a just-freed top (whose value is never
          // read again) or registers in unreachable comparison codes —
          // either way the simulation is unaffected.
          (void)new_live;
          for (int r = 0; r < num_registers; ++r) {
            if (Dra::CmpDigit(code, r) == Dra::kGreater) {
              action.load_mask |= uint32_t{1} << r;
            }
          }
          action.next = intern(next);
          table.push_back(action);
        }
      }
    }
  }

  Dra dra = Dra::Create(static_cast<int>(states.size()), num_symbols,
                        num_registers);
  dra.initial = start_id;
  dra.table = std::move(table);
  SST_CHECK(dra.table.size() == static_cast<size_t>(dra.num_states) * 2 *
                                    num_symbols * num_codes);
  for (size_t i = 0; i < states.size(); ++i) {
    dra.accepting[i] = !states[i].dead && dfa.accepting[states[i].witness];
  }
  return dra;
}

}  // namespace sst
