#include "eval/post_selection.h"

namespace sst {

std::vector<bool> RunPostQuery(StreamMachine* machine,
                               const EventStream& events) {
  machine->Reset();
  std::vector<bool> selected;
  for (const TagEvent& event : events) {
    if (event.open) {
      machine->OnOpen(event.symbol);
    } else {
      machine->OnClose(event.symbol);
      selected.push_back(machine->InAcceptingState());
    }
  }
  return selected;
}

std::vector<bool> RunPostQueryOnTree(StreamMachine* machine, const Tree& tree,
                                     bool term_encoded) {
  EventStream events = Encode(tree);
  if (term_encoded) {
    for (TagEvent& event : events) {
      if (!event.open) event.symbol = -1;
    }
  }
  std::vector<bool> in_stream_order = RunPostQuery(machine, events);
  // Closing tags appear in postorder; recover it to map back to node ids.
  std::vector<int> postorder;
  postorder.reserve(tree.size());
  std::vector<std::pair<int, int>> frames;  // (node, next child)
  if (!tree.empty()) {
    frames.emplace_back(tree.root(), tree.node(tree.root()).first_child);
    while (!frames.empty()) {
      auto& [node, child] = frames.back();
      if (child < 0) {
        postorder.push_back(node);
        frames.pop_back();
      } else {
        int current = child;
        child = tree.node(current).next_sibling;
        frames.emplace_back(current, tree.node(current).first_child);
      }
    }
  }
  std::vector<bool> by_id(tree.size());
  for (size_t i = 0; i < postorder.size(); ++i) {
    by_id[postorder[i]] = in_stream_order[i];
  }
  return by_id;
}

}  // namespace sst
