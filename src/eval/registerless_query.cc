#include "eval/registerless_query.h"

#include <vector>

#include "automata/relations.h"

namespace sst {

TagDfa BuildRegisterlessQueryAutomaton(const Dfa& minimal_dfa, bool blind) {
  const int n = minimal_dfa.num_states;
  const int k = minimal_dfa.num_symbols;
  const int bottom = n;
  TagDfa result = TagDfa::Create(n + 1, k);
  result.initial = minimal_dfa.initial;
  std::vector<bool> internal = InternalStates(minimal_dfa);

  for (int p = 0; p < n; ++p) {
    result.accepting[p] = minimal_dfa.accepting[p];
    for (Symbol a = 0; a < k; ++a) {
      result.SetNextOpen(p, a, minimal_dfa.Next(p, a));
    }
    if (blind) {
      // Minimal internal p' with p'·a almost equivalent to p for some a.
      int target = bottom;
      for (int candidate = 0; candidate < n && target == bottom;
           ++candidate) {
        if (!internal[candidate]) continue;
        for (Symbol a = 0; a < k; ++a) {
          if (AlmostEquivalentStates(minimal_dfa,
                                     minimal_dfa.Next(candidate, a), p)) {
            target = candidate;
            break;
          }
        }
      }
      for (Symbol a = 0; a < k; ++a) result.SetNextClose(p, a, target);
    } else {
      for (Symbol a = 0; a < k; ++a) {
        int target = bottom;
        for (int candidate = 0; candidate < n; ++candidate) {
          if (internal[candidate] &&
              AlmostEquivalentStates(minimal_dfa,
                                     minimal_dfa.Next(candidate, a), p)) {
            target = candidate;
            break;
          }
        }
        result.SetNextClose(p, a, target);
      }
    }
  }
  // ⊥ is an all-rejecting sink.
  for (Symbol a = 0; a < k; ++a) {
    result.SetNextOpen(bottom, a, bottom);
    result.SetNextClose(bottom, a, bottom);
  }
  return result;
}

}  // namespace sst
