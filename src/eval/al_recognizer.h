#ifndef SST_EVAL_AL_RECOGNIZER_H_
#define SST_EVAL_AL_RECOGNIZER_H_

#include <memory>
#include <utility>

#include "automata/dfa.h"
#include "dra/machine.h"
#include "dra/tag_dfa.h"

namespace sst {

// Negation wrapper: accepts iff the inner machine rejects. Together with
// the duality (AL)^c = E(L^c) this yields AL recognizers from EL ones
// (Theorem 3.2(2) and Lemma 3.10(1)).
class NotAdapter final : public StreamMachine {
 public:
  explicit NotAdapter(std::unique_ptr<StreamMachine> inner)
      : inner_(std::move(inner)) {}

  void Reset() override { inner_->Reset(); }
  void OnOpen(Symbol symbol) override { inner_->OnOpen(symbol); }
  void OnClose(Symbol symbol) override { inner_->OnClose(symbol); }
  bool InAcceptingState() const override {
    return !inner_->InAcceptingState();
  }

 private:
  std::unique_ptr<StreamMachine> inner_;
};

// Registerless recognizer of AL for an A-flat language L, given the minimal
// DFA of L: the complemented synopsis automaton of E(L^c). `blind` gives
// the term-encoding variant (requires blind A-flatness).
std::unique_ptr<StreamMachine> BuildForallRecognizer(const Dfa& minimal_dfa,
                                                     bool blind);

// The same recognizer as an explicit TagDfa (complement of the materialized
// E(L^c) automaton); nullopt if more than `max_states` states are needed.
std::optional<TagDfa> MaterializeForallRecognizer(const Dfa& minimal_dfa,
                                                  bool blind, int max_states);

}  // namespace sst

#endif  // SST_EVAL_AL_RECOGNIZER_H_
