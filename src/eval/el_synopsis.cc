#include "eval/el_synopsis.h"

#include <map>
#include <utility>

#include "automata/relations.h"
#include "base/check.h"

namespace sst {

std::vector<int> ElSynopsisRecognizer::State::Key() const {
  std::vector<int> key;
  key.push_back(static_cast<int>(mode));
  key.push_back(last_open ? 1 : 0);
  if (mode == Mode::kSynopsis) {
    for (size_t i = 0; i < triples.size(); ++i) {
      key.push_back(triples[i].r);
      key.push_back(triples[i].p);
      key.push_back(triples[i].q);
      if (i < letters.size()) key.push_back(letters[i]);
    }
  }
  return key;
}

ElSynopsisRecognizer::ElSynopsisRecognizer(const Dfa& minimal_dfa, bool blind)
    : dfa_(minimal_dfa),
      blind_(blind),
      scc_(ComputeScc(dfa_)),
      internal_(InternalStates(dfa_)),
      rejective_(RejectiveStates(dfa_)) {
  Reset();
}

ElSynopsisRecognizer::State ElSynopsisRecognizer::InitialState() const {
  State state;
  int r0 = dfa_.initial;
  if (!rejective_[r0]) {
    state.mode = State::Mode::kTop;
  } else {
    state.mode = State::Mode::kSynopsis;
    state.triples = {Triple{r0, r0, r0}};
  }
  return state;
}

void ElSynopsisRecognizer::Reset() {
  state_ = InitialState();
  hit_unexpected_case_ = false;
}

void ElSynopsisRecognizer::OnOpen(Symbol symbol) {
  state_ = StepOpen(state_, symbol);
}

void ElSynopsisRecognizer::OnClose(Symbol symbol) {
  state_ = StepClose(state_, symbol);
}

ElSynopsisRecognizer::State ElSynopsisRecognizer::Bot(bool unexpected) const {
  if (unexpected) hit_unexpected_case_ = true;
  State state;
  state.mode = State::Mode::kBot;
  return state;
}

std::vector<int> ElSynopsisRecognizer::SplitCandidates(int component, int p,
                                                       int q,
                                                       Symbol a) const {
  // P = { s in the component : s·a in {p, q} }; in blind mode the letter is
  // existentially quantified (cases A'/B' of Appendix B).
  std::vector<int> result;
  for (int candidate : scc_.members[component]) {
    bool hits = false;
    if (blind_) {
      for (Symbol b = 0; b < dfa_.num_symbols && !hits; ++b) {
        int succ = dfa_.Next(candidate, b);
        hits = succ == p || succ == q;
      }
    } else {
      int succ = dfa_.Next(candidate, a);
      hits = succ == p || succ == q;
    }
    if (hits) result.push_back(candidate);
  }
  return result;
}

bool ElSynopsisRecognizer::HasInternalPred(int target, Symbol a) const {
  for (int p = 0; p < dfa_.num_states; ++p) {
    if (!internal_[p]) continue;
    if (blind_) {
      for (Symbol b = 0; b < dfa_.num_symbols; ++b) {
        if (dfa_.Next(p, b) == target) return true;
      }
    } else if (dfa_.Next(p, a) == target) {
      return true;
    }
  }
  return false;
}

bool ElSynopsisRecognizer::HasSccPred(int target, Symbol a) const {
  int component = scc_.component_of[target];
  for (int q : scc_.members[component]) {
    if (blind_) {
      for (Symbol b = 0; b < dfa_.num_symbols; ++b) {
        if (dfa_.Next(q, b) == target) return true;
      }
    } else if (dfa_.Next(q, a) == target) {
      return true;
    }
  }
  return false;
}

ElSynopsisRecognizer::State ElSynopsisRecognizer::StepOpen(const State& state,
                                                           Symbol a) const {
  State next = state;
  next.last_open = true;
  if (state.mode != State::Mode::kSynopsis) return next;

  const Triple& last = state.triples.back();
  int s = dfa_.Next(last.p, a);
  if (!rejective_[s]) {
    next = State{};
    next.mode = State::Mode::kTop;
    next.last_open = true;
    return next;
  }
  if (scc_.SameComponent(s, last.q)) {
    next.triples.back() = Triple{last.r, s, s};
  } else {
    next.letters.push_back(a);
    next.triples.push_back(Triple{s, s, s});
  }
  return next;
}

ElSynopsisRecognizer::State ElSynopsisRecognizer::StepClose(
    const State& state, Symbol a) const {
  State next = state;
  next.last_open = false;
  if (state.mode != State::Mode::kSynopsis) return next;

  // B' enrichment: closing a leaf whose branch word is accepted => EL holds.
  {
    const Triple& last = state.triples.back();
    if (state.last_open && last.p == last.q && dfa_.accepting[last.p]) {
      next = State{};
      next.mode = State::Mode::kTop;
      return next;
    }
  }

  // Case analysis of Lemma 3.11 / Appendix A (primed variants when blind).
  // Case C forwards to a modified synopsis; the loop runs at most twice.
  for (int guard = 0; guard < 4; ++guard) {
    size_t l = next.letters.size();
    SST_CHECK(next.triples.size() == l + 1);
    Triple last = next.triples.back();

    if (!internal_[last.p]) {
      // Only possible for the initial synopsis (r0, r0, r0): the closing
      // tag would end the encoding or the stream is invalid.
      next.triples.clear();
      next.letters.clear();
      next.mode = State::Mode::kBot;
      return next;
    }

    const int x = scc_.component_of[last.q];
    const bool same_scc = scc_.component_of[last.p] == x;
    const bool back_shape =
        last.r == last.p || last.r == last.q;
    const bool label_matches =
        blind_ || (l > 0 && next.letters[l - 1] == a);

    if (same_scc) {
      const bool case_b = l > 0 && back_shape && label_matches &&
                          internal_[next.triples[l - 1].p];
      std::vector<int> split = SplitCandidates(x, last.p, last.q, a);
      if (!case_b) {
        // Case A: backtrack within the SCC.
        if (split.empty()) return Bot(false);
        if (split.size() > 2) return Bot(true);
        next.triples.back() = Triple{last.r, split.front(), split.back()};
        return next;
      }
      // Case B: may also backtrack through the split transition.
      if (split.empty()) {
        next.triples.pop_back();
        next.letters.pop_back();
        return next;
      }
      const Triple& prev = next.triples[l - 1];
      if (prev.p != prev.q || split.size() != 1) return Bot(true);
      next.triples.back() = Triple{last.r, prev.p, split.front()};
      return next;
    }

    // last.p outside the SCC of last.q: by the synopsis invariants this
    // requires l > 0 and last.p == p_{l-1} == q_{l-1}.
    if (l == 0) return Bot(true);
    const bool case_d = back_shape && label_matches;
    if (case_d) {
      // Case D: keep the synopsis unchanged.
      return next;
    }
    // Case C: at most one of the two backtrack directions exists.
    const bool has_p = HasInternalPred(last.p, a);
    const bool has_q = HasSccPred(last.q, a);
    if (has_p && has_q) return Bot(true);
    if (!has_p) {
      next.triples.back() = Triple{last.r, last.q, last.q};
      continue;  // re-dispatch (falls into Case A)
    }
    // has_p && !has_q: drop the last split transition and re-dispatch.
    next.triples.pop_back();
    next.letters.pop_back();
    continue;
  }
  return Bot(true);
}

std::optional<TagDfa> MaterializeElRecognizer(const Dfa& minimal_dfa,
                                              bool blind, int max_states) {
  ElSynopsisRecognizer spec(minimal_dfa, blind);
  std::map<std::vector<int>, int> id;
  std::vector<ElSynopsisRecognizer::State> states;
  auto intern = [&](const ElSynopsisRecognizer::State& s) {
    auto [it, inserted] = id.emplace(s.Key(), static_cast<int>(states.size()));
    if (inserted) states.push_back(s);
    return it->second;
  };
  int initial = intern(spec.InitialState());

  const int k = minimal_dfa.num_symbols;
  std::vector<int> open_table, close_table;
  std::vector<bool> accepting;
  for (size_t i = 0; i < states.size(); ++i) {
    if (static_cast<int>(states.size()) > max_states) return std::nullopt;
    const ElSynopsisRecognizer::State current = states[i];
    accepting.push_back(current.mode ==
                        ElSynopsisRecognizer::State::Mode::kTop);
    for (Symbol a = 0; a < k; ++a) {
      open_table.push_back(intern(spec.StepOpen(current, a)));
    }
    for (Symbol a = 0; a < k; ++a) {
      close_table.push_back(intern(spec.StepClose(current, a)));
    }
  }

  TagDfa result = TagDfa::Create(static_cast<int>(states.size()), k);
  result.initial = initial;
  result.next_open = std::move(open_table);
  result.next_close = std::move(close_table);
  for (size_t i = 0; i < accepting.size(); ++i) {
    result.accepting[i] = accepting[i];
  }
  return result;
}

}  // namespace sst
