#ifndef SST_EVAL_POST_SELECTION_H_
#define SST_EVAL_POST_SELECTION_H_

#include <vector>

#include "automata/dfa.h"
#include "dra/machine.h"
#include "trees/tree.h"

namespace sst {

// Post-selection (Section 2.3): a machine post-selects a node v if it is in
// an accepting state directly after reading v's *closing* tag. The paper
// focuses on pre-selection and leaves the stackless theory of
// post-selection to future work; this header provides the execution
// harness and the always-available pushdown realizations, so post-selecting
// machines can be developed and tested against the same oracles.

// Per closing tag in stream order (= the order subtrees complete), whether
// the machine was accepting right after it. Note this is *postorder*, not
// document order.
std::vector<bool> RunPostQuery(StreamMachine* machine,
                               const EventStream& events);

// Same, indexed by node id (comparable with SelectNodes-style oracles).
std::vector<bool> RunPostQueryOnTree(StreamMachine* machine, const Tree& tree,
                                     bool term_encoded = false);

// Pushdown machine post-selecting Q_L: accepting right after the closing
// tag of v iff the root-to-v word is in L. For RPQs pre- and post-selection
// pick the same nodes; post-selection trades the streaming advantage (the
// subtree has already passed) for the ability to inspect it — see
// SubtreeInspectingEvaluator below.
class PostSelectStackEvaluator final : public StreamMachine {
 public:
  explicit PostSelectStackEvaluator(const Dfa* dfa) : dfa_(dfa) { Reset(); }

  void Reset() override {
    stack_.clear();
    state_ = dfa_->initial;
    post_flag_ = false;
  }

  void OnOpen(Symbol symbol) override {
    stack_.push_back(state_);
    state_ = dfa_->Next(state_, symbol);
    post_flag_ = false;
  }

  void OnClose(Symbol /*symbol*/) override {
    // The state at the closed node is the current one; sample it, then
    // revert to the parent.
    post_flag_ = dfa_->accepting[state_];
    if (!stack_.empty()) {
      state_ = stack_.back();
      stack_.pop_back();
    }
  }

  bool InAcceptingState() const override { return post_flag_; }

 private:
  const Dfa* dfa_;
  std::vector<int> stack_;
  int state_ = 0;
  bool post_flag_ = false;
};

// The extra power of post-selection: a pushdown machine post-selecting
// nodes by a property of their *subtree* — here, nodes whose subtree
// contains at least `min_descendants` proper descendants. No pre-selecting
// machine can realize this (the subtree is unread at the opening tag).
class SubtreeSizeEvaluator final : public StreamMachine {
 public:
  explicit SubtreeSizeEvaluator(int min_descendants)
      : min_descendants_(min_descendants) {
    Reset();
  }

  void Reset() override {
    counts_.clear();
    post_flag_ = false;
  }

  void OnOpen(Symbol /*symbol*/) override {
    counts_.push_back(0);
    post_flag_ = false;
  }

  void OnClose(Symbol /*symbol*/) override {
    int closed = counts_.empty() ? 0 : counts_.back();
    if (!counts_.empty()) counts_.pop_back();
    post_flag_ = closed >= min_descendants_;
    if (!counts_.empty()) counts_.back() += closed + 1;
  }

  bool InAcceptingState() const override { return post_flag_; }

 private:
  int min_descendants_;
  std::vector<int> counts_;  // proper descendants seen so far, per level
  bool post_flag_ = false;
};

}  // namespace sst

#endif  // SST_EVAL_POST_SELECTION_H_
