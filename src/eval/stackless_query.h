#ifndef SST_EVAL_STACKLESS_QUERY_H_
#define SST_EVAL_STACKLESS_QUERY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "automata/dfa.h"
#include "automata/scc.h"
#include "dra/dra.h"
#include "dra/machine.h"

namespace sst {

// Lemma 3.8: the depth-register evaluator of QL for a HAR language L, given
// its minimal DFA A. The machine simulates A along the path from the root
// to the current node, maintaining
//   * for every SCC of A already left on the current path: the depth at
//     which the next SCC began (a register) and a witness state that meets
//     A's last state in that SCC;
//   * for the current SCC: a witness state p that meets the real state
//     (and equals it right after every opening tag).
// Registers are chain positions; the number of live registers is bounded by
// the longest chain in A's SCC DAG.
//
// `blind` selects the Theorem B.2 variant for the term encoding: the
// backtrack target on a closing tag is chosen so that p'·a is almost
// equivalent to p for *some* letter a, making the machine independent of
// closing labels.
//
// The construction realizes QL exactly when L is HAR (blind: blindly HAR);
// it is well-defined for any minimal DFA, which the fooling experiments
// exploit.

// The compile-time half of the Lemma 3.8 machine: the minimal DFA, its SCC
// decomposition, the backtrack table, and the register bound. Everything
// here is immutable once built, so one blueprint can back any number of
// concurrently running evaluators (the engine's QueryPlan owns exactly
// one); evaluators constructed from a bare DFA build a private copy.
struct StacklessBlueprint {
  Dfa dfa;  // owned copy of the minimal automaton
  bool blind = false;
  SccInfo scc;
  std::vector<int> revert;
  int max_chain = 0;  // register bound: longest SCC-DAG chain

  static StacklessBlueprint Build(const Dfa& minimal_dfa, bool blind);

  // Backtrack table: for p in SCC Y and label a, the minimal p' in Y with
  // p'·a in Y and p'·a almost equivalent to p (-1 if none). In blind mode
  // the table is indexed with a = 0 only.
  int Revert(int p, Symbol a) const {
    return revert[static_cast<size_t>(p) * (blind ? 1 : dfa.num_symbols) +
                  (blind ? 0 : a)];
  }
};

class StacklessQueryEvaluator final : public StreamMachine {
 public:
  // Builds (and privately owns) the blueprint for `minimal_dfa`.
  StacklessQueryEvaluator(const Dfa& minimal_dfa, bool blind);

  // Compile-once / run-many form: borrows a blueprint owned elsewhere
  // (it must outlive the evaluator). Construction cost is O(register
  // bound), independent of the automaton size.
  explicit StacklessQueryEvaluator(const StacklessBlueprint* blueprint);

  void Reset() override;
  void OnOpen(Symbol symbol) override;
  void OnClose(Symbol symbol) override;
  bool InAcceptingState() const override;

  // Checkpoint protocol: the Lemma 3.8 configuration — witness, current
  // SCC, depth, and the live register chain (bounded by max_chain) — as a
  // flat word vector.
  bool SaveConfig(std::vector<int64_t>* out) override;
  bool RestoreConfig(const std::vector<int64_t>& config) override;
  bool ConfigEqualsCurrent(const std::vector<int64_t>& config) const override;

  // True once the machine has entered the dead sink (only possible on
  // invalid encodings or when the HAR precondition fails).
  bool dead() const { return dead_; }

  // Number of registers the machine may use (longest SCC-DAG chain).
  int num_registers() const { return blueprint_->max_chain; }

  // Current number of live registers (benchmark counter).
  size_t live_registers() const { return chain_scc_.size(); }

  const Dfa& dfa() const { return blueprint_->dfa; }
  const SccInfo& scc() const { return blueprint_->scc; }
  // See StacklessBlueprint::Revert.
  int Revert(int p, Symbol a) const { return blueprint_->Revert(p, a); }
  bool blind() const { return blueprint_->blind; }
  const StacklessBlueprint& blueprint() const { return *blueprint_; }

 private:
  // Immutable compile artifact: `blueprint_` points at either the shared
  // blueprint passed in or the privately owned copy in `owned_blueprint_`.
  std::unique_ptr<const StacklessBlueprint> owned_blueprint_;
  const StacklessBlueprint* blueprint_;

  // Configuration.
  bool dead_ = false;
  int witness_ = 0;       // p
  int current_scc_ = 0;   // Y
  int64_t depth_ = 0;
  std::vector<int> chain_scc_;       // remembered SCC ids (bottom..top)
  std::vector<int> chain_witness_;   // remembered witness states
  std::vector<int64_t> chain_depth_; // register contents
};

// Materializes the Lemma 3.8 machine into an explicit DRA (Definition 2.1)
// with registers = chain positions, by BFS over reachable control states.
// Returns nullopt if more than `max_states` control states or more than
// Dra::kMaxRegisters registers would be needed. The result is *restricted*
// (Section 2.2): stale registers above the live chain are reloaded whenever
// they exceed the current depth, which the paper's definition requires and
// which never affects the simulation.
std::optional<Dra> MaterializeStacklessQueryDra(const Dfa& minimal_dfa,
                                                bool blind, int max_states);

}  // namespace sst

#endif  // SST_EVAL_STACKLESS_QUERY_H_
