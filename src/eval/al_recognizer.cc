#include "eval/al_recognizer.h"

#include "eval/el_synopsis.h"

namespace sst {

std::unique_ptr<StreamMachine> BuildForallRecognizer(const Dfa& minimal_dfa,
                                                     bool blind) {
  return std::make_unique<NotAdapter>(
      std::make_unique<ElSynopsisRecognizer>(Complement(minimal_dfa), blind));
}

std::optional<TagDfa> MaterializeForallRecognizer(const Dfa& minimal_dfa,
                                                  bool blind,
                                                  int max_states) {
  std::optional<TagDfa> el =
      MaterializeElRecognizer(Complement(minimal_dfa), blind, max_states);
  if (!el.has_value()) return std::nullopt;
  return TagDfaComplement(*el);
}

}  // namespace sst
