#ifndef SST_EVAL_REGISTERLESS_QUERY_H_
#define SST_EVAL_REGISTERLESS_QUERY_H_

#include "automata/dfa.h"
#include "dra/tag_dfa.h"

namespace sst {

// Lemma 3.5: the registerless evaluator of QL for an almost-reversible
// language L, given its minimal DFA. States are the states of A plus a
// rejecting sink ⊥ (index num_states). On an opening tag the automaton
// follows A; on a closing tag ā in state p it backtracks to the minimal
// *internal* state p' such that p'·a is almost equivalent to p (⊥ if none).
//
// Appendix B variant (`blind` = true, Theorem B.1): the backtrack target is
// the minimal internal p' such that p'·a is almost equivalent to p for
// *some* letter a; the resulting automaton ignores closing labels and is
// therefore runnable on the term encoding.
//
// The construction is defined for any minimal DFA; it realizes QL exactly
// when L is almost-reversible (resp. blindly almost-reversible) — callers
// wanting a guaranteed-correct evaluator should check IsAlmostReversible
// first (the core facade does). Building it for other languages is useful
// for the fooling experiments.
TagDfa BuildRegisterlessQueryAutomaton(const Dfa& minimal_dfa, bool blind);

}  // namespace sst

#endif  // SST_EVAL_REGISTERLESS_QUERY_H_
