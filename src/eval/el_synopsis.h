#ifndef SST_EVAL_EL_SYNOPSIS_H_
#define SST_EVAL_EL_SYNOPSIS_H_

#include <optional>
#include <vector>

#include "automata/dfa.h"
#include "automata/scc.h"
#include "dra/machine.h"
#include "dra/tag_dfa.h"

namespace sst {

// Lemma 3.11 (+ Appendix A): the finite automaton recognizing EL (the set
// of trees with some branch labelled by a word of L) for an E-flat language
// L, given its minimal DFA A.
//
// The automaton's states are *synopses*: alternating sequences
//     (r0,p0,q0) -a1-> (r1,p1,q1) -a2-> ... -al-> (rl,pl,ql)
// recording the split transitions that moved the simulated run of A from
// one SCC to the next, plus the sinks ⊤ (all-accepting) and ⊥
// (all-rejecting), enriched with a last-tag-was-opening bit. The length of
// a synopsis is bounded by the depth of A's SCC DAG, so the state space is
// finite; this class runs it directly, and MaterializeElRecognizer
// enumerates it into an explicit TagDfa.
//
// `blind` selects the Appendix B variant (Theorem B.1, cases A'-D'), whose
// closing transitions ignore the closing label and which therefore runs on
// the term encoding and recognizes EL iff L is blindly E-flat.
//
// The machine is well-defined for every minimal DFA; it recognizes EL
// exactly when L is (blindly) E-flat. When the precondition fails the run
// may reach situations the proof excludes; these are routed to ⊥ and
// flagged via hit_unexpected_case() (used by tests and fooling demos).
class ElSynopsisRecognizer final : public StreamMachine {
 public:
  // A triple (r, p, q) of the synopsis.
  struct Triple {
    int r = 0, p = 0, q = 0;
    friend bool operator==(const Triple&, const Triple&) = default;
  };

  struct State {
    enum class Mode { kTop, kBot, kSynopsis };
    Mode mode = Mode::kSynopsis;
    std::vector<Triple> triples;   // length l+1 in synopsis mode
    std::vector<Symbol> letters;   // length l
    bool last_open = false;

    std::vector<int> Key() const;
  };

  ElSynopsisRecognizer(const Dfa& minimal_dfa, bool blind);

  void Reset() override;
  void OnOpen(Symbol symbol) override;
  void OnClose(Symbol symbol) override;
  bool InAcceptingState() const override {
    return state_.mode == State::Mode::kTop;
  }

  bool hit_unexpected_case() const { return hit_unexpected_case_; }
  const State& state() const { return state_; }

  // Pure transition functions (also used by the materializer).
  State InitialState() const;
  State StepOpen(const State& state, Symbol a) const;
  State StepClose(const State& state, Symbol a) const;

 private:
  std::vector<int> SplitCandidates(int component, int p, int q,
                                   Symbol a) const;
  bool HasInternalPred(int target, Symbol a) const;
  bool HasSccPred(int target, Symbol a) const;
  State Bot(bool unexpected) const;

  Dfa dfa_;
  bool blind_;
  SccInfo scc_;
  std::vector<bool> internal_;
  std::vector<bool> rejective_;

  State state_;
  mutable bool hit_unexpected_case_ = false;
};

// Enumerates the synopsis automaton into an explicit registerless TagDfa
// (states = reachable State values). Returns nullopt if more than
// `max_states` states are reachable.
std::optional<TagDfa> MaterializeElRecognizer(const Dfa& minimal_dfa,
                                              bool blind, int max_states);

}  // namespace sst

#endif  // SST_EVAL_EL_SYNOPSIS_H_
