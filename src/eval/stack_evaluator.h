#ifndef SST_EVAL_STACK_EVALUATOR_H_
#define SST_EVAL_STACK_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "automata/dfa.h"
#include "base/check.h"
#include "base/pooled_stack.h"
#include "dra/machine.h"

namespace sst {

// The classical pushdown baseline: simulate the DFA of L along the current
// root-to-node path, pushing the state at every opening tag and popping at
// every closing tag. Realizes QL for *every* regular L, at the cost of
// Θ(depth) memory — exactly the cost the paper's stackless model avoids.
// Works unchanged for the term encoding (the closing label is ignored).
//
// Used throughout the test suite as the correctness oracle for the
// registerless and stackless constructions, and in benchmarks as the
// baseline. It is also the third rung of the robustness degradation
// ladder (DESIGN.md "Robustness & recovery"): because it keeps the DFA
// state per open level, it tolerates event streams the stackless tiers
// cannot even express recovery for — a close with nothing open is simply
// ignored (and counted in underflow_closes() for diagnosis) instead of
// corrupting the state.
//
// The per-level states live on a refcounted pooled persistent stack
// (base/pooled_stack.h) rather than a std::vector: chunked nodes come
// from a slab-backed free list (zero steady-state heap allocation —
// asserted by the operator-new counter test), and the checkpoint protocol
// snapshots the whole Θ(depth) configuration in O(1) by retaining the top
// chunk and recording the live index. Checkpoints of one document share
// every common stack suffix structurally, which is what makes
// depth-indexed checkpointing affordable on the one tier whose
// configuration is not O(1).
class StackQueryEvaluator final : public StreamMachine {
 public:
  explicit StackQueryEvaluator(const Dfa* dfa) : dfa_(dfa) {
    state_ = dfa_->initial;
  }

  void Reset() override {
    // A pooled Session returned to SessionPool must not pin stack nodes
    // across leases: drop the live chain AND every snapshot a checkpoint
    // still retains back into the free list (slabs are kept for reuse).
    stack_.Clear();
    for (Snapshot& snap : saved_) {
      stack_.Release(snap);
      snap = Snapshot{};
    }
    saved_.clear();
    free_slots_.clear();
    state_ = dfa_->initial;
    max_stack_depth_ = 0;
    underflow_closes_ = 0;
  }

  void OnOpen(Symbol symbol) override {
    stack_.Push(state_);
    if (stack_.size() > max_stack_depth_) max_stack_depth_ = stack_.size();
    state_ = dfa_->Next(state_, symbol);
  }

  void OnClose(Symbol /*symbol*/) override {
    if (stack_.empty()) {
      ++underflow_closes_;  // invalid stream; stay put
      return;
    }
    state_ = stack_.top();
    stack_.Pop();
  }

  bool InAcceptingState() const override { return dfa_->accepting[state_]; }

  // Checkpoint protocol: {state, snapshot slot, underflow count, chain
  // size}. The slot indexes a retained (chunk, index) snapshot in the node
  // pool — the O(1) capture of the Θ(depth) chain; the size rides in the
  // config so unequal depths reject in O(1). Peak depth does not
  // round-trip (it is a diagnostic of the run, not of the configuration);
  // RestoreConfig re-bases it at the restored depth, mirroring what the
  // incremental scanner does with its own segment peaks.
  bool SaveConfig(std::vector<int64_t>* out) override {
    Snapshot snap = stack_.TakeSnapshot();
    size_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
      saved_[slot] = snap;
    } else {
      slot = saved_.size();
      saved_.push_back(snap);
    }
    out->clear();
    out->push_back(state_);
    out->push_back(static_cast<int64_t>(slot));
    out->push_back(static_cast<int64_t>(underflow_closes_));
    out->push_back(static_cast<int64_t>(stack_.size()));
    return true;
  }

  bool RestoreConfig(const std::vector<int64_t>& config) override {
    if (config.size() != 4) return false;
    const size_t slot = static_cast<size_t>(config[1]);
    if (slot >= saved_.size()) return false;
    stack_.Restore(saved_[slot], static_cast<uint64_t>(config[3]));
    state_ = static_cast<int>(config[0]);
    underflow_closes_ = static_cast<size_t>(config[2]);
    max_stack_depth_ = stack_.size();
    return true;
  }

  bool ConfigEqualsCurrent(const std::vector<int64_t>& config) const override {
    if (config.size() != 4) return false;
    const size_t slot = static_cast<size_t>(config[1]);
    if (slot >= saved_.size()) return false;
    // The underflow counter is a diagnostic, not part of the future-
    // determining configuration; counts are spliced separately. Unequal
    // depths reject on the size word — O(1), no chain walk.
    return config[0] == state_ &&
           static_cast<uint64_t>(config[3]) == stack_.size() &&
           stack_.EqualsSnapshot(saved_[slot]);
  }

  void ReleaseConfig(const std::vector<int64_t>& config) override {
    if (config.size() != 4) return;
    const size_t slot = static_cast<size_t>(config[1]);
    if (slot >= saved_.size()) return;
    stack_.Release(saved_[slot]);
    saved_[slot] = Snapshot{};
    free_slots_.push_back(slot);
  }

  int64_t StackDepthPeak() const override {
    return static_cast<int64_t>(max_stack_depth_);
  }
  int64_t StackUnderflowCloses() const override {
    return static_cast<int64_t>(underflow_closes_);
  }

  // Peak auxiliary memory, in stacked states (benchmark counter).
  size_t max_stack_depth() const {
    return static_cast<size_t>(max_stack_depth_);
  }

  // Current nesting depth as seen by the evaluator.
  size_t depth() const { return static_cast<size_t>(stack_.size()); }

  // Close events ignored because nothing was open — nonzero means the
  // upstream scanner fed an unbalanced stream.
  size_t underflow_closes() const { return underflow_closes_; }

  // Pool observability for the steady-state allocation tests.
  size_t pool_slabs() const { return stack_.slabs(); }
  size_t live_checkpoints() const {
    return saved_.size() - free_slots_.size();
  }

 private:
  using Snapshot = PooledStack<int>::Snapshot;

  const Dfa* dfa_;
  PooledStack<int> stack_;
  int state_ = 0;
  uint64_t max_stack_depth_ = 0;
  size_t underflow_closes_ = 0;

  // Retained checkpoint snapshots, indexed by the slot stored in the
  // config words. Freed slots are recycled so steady-state save/release
  // cycles stop allocating once the registry has warmed up.
  std::vector<Snapshot> saved_;
  std::vector<size_t> free_slots_;
};

// The previous std::vector implementation, kept verbatim as the parity
// and throughput baseline for the pooled version (tests/pooled_stack_test,
// bench_incremental): same states, same peak accounting, same underflow
// tolerance, but per-open reallocation amortized by the vector and no
// O(1) snapshots.
class VectorStackQueryEvaluator final : public StreamMachine {
 public:
  explicit VectorStackQueryEvaluator(const Dfa* dfa) : dfa_(dfa) { Reset(); }

  void Reset() override {
    stack_.clear();
    state_ = dfa_->initial;
    max_stack_depth_ = 0;
    underflow_closes_ = 0;
  }

  void OnOpen(Symbol symbol) override {
    stack_.push_back(state_);
    if (stack_.size() > max_stack_depth_) max_stack_depth_ = stack_.size();
    state_ = dfa_->Next(state_, symbol);
  }

  void OnClose(Symbol /*symbol*/) override {
    if (stack_.empty()) {
      ++underflow_closes_;
      return;
    }
    state_ = stack_.back();
    stack_.pop_back();
  }

  bool InAcceptingState() const override { return dfa_->accepting[state_]; }

  int64_t StackDepthPeak() const override {
    return static_cast<int64_t>(max_stack_depth_);
  }
  int64_t StackUnderflowCloses() const override {
    return static_cast<int64_t>(underflow_closes_);
  }

  size_t max_stack_depth() const { return max_stack_depth_; }
  size_t depth() const { return stack_.size(); }
  size_t underflow_closes() const { return underflow_closes_; }
  int state() const { return state_; }

 private:
  const Dfa* dfa_;
  std::vector<int> stack_;
  int state_ = 0;
  size_t max_stack_depth_ = 0;
  size_t underflow_closes_ = 0;
};

}  // namespace sst

#endif  // SST_EVAL_STACK_EVALUATOR_H_
