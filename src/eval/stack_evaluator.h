#ifndef SST_EVAL_STACK_EVALUATOR_H_
#define SST_EVAL_STACK_EVALUATOR_H_

#include <vector>

#include "automata/dfa.h"
#include "dra/machine.h"

namespace sst {

// The classical pushdown baseline: simulate the DFA of L along the current
// root-to-node path, pushing the state at every opening tag and popping at
// every closing tag. Realizes QL for *every* regular L, at the cost of
// Θ(depth) memory — exactly the cost the paper's stackless model avoids.
// Works unchanged for the term encoding (the closing label is ignored).
//
// Used throughout the test suite as the correctness oracle for the
// registerless and stackless constructions, and in benchmarks as the
// baseline. It is also the third rung of the robustness degradation
// ladder (DESIGN.md "Robustness & recovery"): because it keeps the DFA
// state per open level, it tolerates event streams the stackless tiers
// cannot even express recovery for — a close with nothing open is simply
// ignored (and counted in underflow_closes() for diagnosis) instead of
// corrupting the state.
class StackQueryEvaluator final : public StreamMachine {
 public:
  explicit StackQueryEvaluator(const Dfa* dfa) : dfa_(dfa) { Reset(); }

  void Reset() override {
    stack_.clear();
    state_ = dfa_->initial;
    max_stack_depth_ = 0;
    underflow_closes_ = 0;
  }

  void OnOpen(Symbol symbol) override {
    stack_.push_back(state_);
    if (stack_.size() > max_stack_depth_) max_stack_depth_ = stack_.size();
    state_ = dfa_->Next(state_, symbol);
  }

  void OnClose(Symbol /*symbol*/) override {
    if (stack_.empty()) {
      ++underflow_closes_;  // invalid stream; stay put
      return;
    }
    state_ = stack_.back();
    stack_.pop_back();
  }

  bool InAcceptingState() const override { return dfa_->accepting[state_]; }

  // Peak auxiliary memory, in stacked states (benchmark counter).
  size_t max_stack_depth() const { return max_stack_depth_; }

  // Current nesting depth as seen by the evaluator.
  size_t depth() const { return stack_.size(); }

  // Close events ignored because nothing was open — nonzero means the
  // upstream scanner fed an unbalanced stream.
  size_t underflow_closes() const { return underflow_closes_; }

 private:
  const Dfa* dfa_;
  std::vector<int> stack_;
  int state_ = 0;
  size_t max_stack_depth_ = 0;
  size_t underflow_closes_ = 0;
};

}  // namespace sst

#endif  // SST_EVAL_STACK_EVALUATOR_H_
