#include "testing/edit_workload.h"

#include <algorithm>
#include <cctype>
#include <iterator>
#include <string>
#include <utility>

#include "base/check.h"
#include "trees/encoding.h"
#include "trees/generators.h"
#include "trees/tree.h"

namespace sst {

namespace {

constexpr int kMaxSnippetNodes = 8;
constexpr int kMaxWsRun = 8;

bool IsWs(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' ||
         c == '\f';
}

bool IsTermLabelByte(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

// Offset of the first non-whitespace byte — the root's opening token.
int64_t FirstTokenAt(std::string_view doc) {
  for (size_t i = 0; i < doc.size(); ++i) {
    if (!IsWs(doc[i])) return static_cast<int64_t>(i);
  }
  return -1;
}

int64_t SkipWs(std::string_view doc, int64_t i) {
  while (i < static_cast<int64_t>(doc.size()) &&
         IsWs(doc[static_cast<size_t>(i)])) {
    ++i;
  }
  return i;
}

}  // namespace

const char* EditKindName(EditKind kind) {
  switch (kind) {
    case EditKind::kInsertSubtree:
      return "insert_subtree";
    case EditKind::kDeleteLeaf:
      return "delete_leaf";
    case EditKind::kReplaceLeaf:
      return "replace_leaf";
    case EditKind::kRelabelLeaf:
      return "relabel_leaf";
    case EditKind::kInsertWhitespace:
      return "insert_ws";
    case EditKind::kDeleteWhitespace:
      return "delete_ws";
    case EditKind::kCorruptByte:
      return "corrupt_byte";
  }
  return "?";
}

EditWorkload::EditWorkload(const Alphabet* alphabet, StreamFormat format,
                           uint64_t seed)
    : alphabet_(alphabet), format_(format), rng_(seed) {
  SST_CHECK(alphabet_ != nullptr && alphabet_->size() > 0);
}

std::string EditWorkload::Apply(std::string_view doc, const DocEdit& edit) {
  SST_CHECK(edit.offset >= 0 && edit.old_len >= 0 &&
            edit.offset + edit.old_len <= static_cast<int64_t>(doc.size()));
  std::string out;
  out.reserve(doc.size() - edit.old_len + edit.new_bytes.size());
  out.append(doc.substr(0, static_cast<size_t>(edit.offset)));
  out.append(edit.new_bytes);
  out.append(doc.substr(static_cast<size_t>(edit.offset + edit.old_len)));
  return out;
}

DocEdit EditWorkload::Diff(std::string_view before, std::string_view after) {
  size_t prefix = 0;
  const size_t max_prefix = std::min(before.size(), after.size());
  while (prefix < max_prefix && before[prefix] == after[prefix]) ++prefix;
  size_t suffix = 0;
  const size_t max_suffix = max_prefix - prefix;
  while (suffix < max_suffix &&
         before[before.size() - 1 - suffix] ==
             after[after.size() - 1 - suffix]) {
    ++suffix;
  }
  DocEdit edit;
  edit.offset = static_cast<int64_t>(prefix);
  edit.old_len = static_cast<int64_t>(before.size() - prefix - suffix);
  edit.new_bytes = std::string(after.substr(prefix,
                                            after.size() - prefix - suffix));
  return edit;
}

EditWorkload::LeafSpan EditWorkload::FindLeaf(std::string_view doc,
                                              int64_t from) const {
  const int64_t n = static_cast<int64_t>(doc.size());
  const int64_t root = FirstTokenAt(doc);
  if (root < 0 || n == 0) return {};
  // Scan [from, n) then [0, from): every position is visited once.
  for (int64_t step = 0; step < n; ++step) {
    const int64_t i = (from + step) % n;
    if (i == root) continue;  // never the root element
    const char c = doc[static_cast<size_t>(i)];
    switch (format_) {
      case StreamFormat::kCompactMarkup: {
        if (c < 'a' || c > 'z') break;
        const int64_t j = SkipWs(doc, i + 1);
        if (j < n && doc[static_cast<size_t>(j)] == c - 'a' + 'A') {
          const std::string label(1, c);
          return {i, j + 1, alphabet_->Find(label)};
        }
        break;
      }
      case StreamFormat::kCompactTerm: {
        // A leaf is label '{' ws* '}'; anchor on the label's first byte
        // (the byte before it must not itself be a label byte).
        if (!IsTermLabelByte(c)) break;
        if (i > 0 && IsTermLabelByte(doc[static_cast<size_t>(i - 1)])) break;
        int64_t j = i;
        while (j < n && IsTermLabelByte(doc[static_cast<size_t>(j)])) ++j;
        if (j >= n || doc[static_cast<size_t>(j)] != '{') break;
        const int64_t k = SkipWs(doc, j + 1);
        if (k < n && doc[static_cast<size_t>(k)] == '}') {
          const std::string label(doc.substr(static_cast<size_t>(i),
                                             static_cast<size_t>(j - i)));
          return {i, k + 1, alphabet_->Find(label)};
        }
        break;
      }
      case StreamFormat::kXmlLite: {
        if (c != '<' || i + 1 >= n ||
            doc[static_cast<size_t>(i + 1)] == '/') {
          break;
        }
        int64_t j = i + 1;
        while (j < n && doc[static_cast<size_t>(j)] != '>' &&
               doc[static_cast<size_t>(j)] != '<') {
          ++j;
        }
        if (j >= n || doc[static_cast<size_t>(j)] != '>') break;
        const std::string label(doc.substr(static_cast<size_t>(i + 1),
                                           static_cast<size_t>(j - i - 1)));
        const int64_t k = SkipWs(doc, j + 1);
        const std::string close = "</" + label + ">";
        if (doc.substr(static_cast<size_t>(k)).rfind(close, 0) == 0) {
          return {i, k + static_cast<int64_t>(close.size()),
                  alphabet_->Find(label)};
        }
        break;
      }
    }
  }
  return {};
}

int64_t EditWorkload::FindInsertPoint(std::string_view doc,
                                      int64_t from) const {
  const int64_t n = static_cast<int64_t>(doc.size());
  if (n == 0) return -1;
  for (int64_t step = 0; step < n; ++step) {
    const int64_t i = (from + step) % n;
    const char c = doc[static_cast<size_t>(i)];
    switch (format_) {
      case StreamFormat::kCompactMarkup:
        if (c >= 'a' && c <= 'z') return i + 1;
        break;
      case StreamFormat::kCompactTerm:
        if (c == '{') return i + 1;
        break;
      case StreamFormat::kXmlLite: {
        if (c != '<' || i + 1 >= n ||
            doc[static_cast<size_t>(i + 1)] == '/') {
          break;
        }
        int64_t j = i + 1;
        while (j < n && doc[static_cast<size_t>(j)] != '>' &&
               doc[static_cast<size_t>(j)] != '<') {
          ++j;
        }
        if (j < n && doc[static_cast<size_t>(j)] == '>') return j + 1;
        break;
      }
    }
  }
  return -1;
}

std::string EditWorkload::RandomSnippet(int max_nodes) {
  const int nodes = static_cast<int>(rng_.NextInRange(1, max_nodes));
  const Tree tree =
      RandomTree(nodes, alphabet_->size(), rng_.NextDouble(), &rng_);
  const EventStream events = Encode(tree);
  switch (format_) {
    case StreamFormat::kCompactMarkup:
      return ToCompactMarkup(*alphabet_, events);
    case StreamFormat::kCompactTerm:
      return ToCompactTerm(*alphabet_, events);
    case StreamFormat::kXmlLite:
      return ToXmlLite(*alphabet_, events);
  }
  return {};
}

DocEdit EditWorkload::Next(std::string_view doc) {
  static constexpr EditKind kWellFormed[] = {
      EditKind::kInsertSubtree,     EditKind::kDeleteLeaf,
      EditKind::kReplaceLeaf,       EditKind::kRelabelLeaf,
      EditKind::kInsertWhitespace,  EditKind::kDeleteWhitespace,
  };
  return Make(kWellFormed[rng_.NextBelow(std::size(kWellFormed))], doc);
}

DocEdit EditWorkload::Make(EditKind kind, std::string_view doc) {
  const int64_t n = static_cast<int64_t>(doc.size());
  const int64_t from = n > 0 ? static_cast<int64_t>(rng_.NextBelow(
                                   static_cast<uint64_t>(n)))
                             : 0;
  DocEdit edit;

  switch (kind) {
    case EditKind::kInsertSubtree:
    case EditKind::kCorruptByte: {
      const int64_t at = FindInsertPoint(doc, from);
      if (at < 0) {  // tagless document: splice a fresh root in
        edit.offset = 0;
        edit.new_bytes = RandomSnippet(kMaxSnippetNodes);
        return edit;
      }
      edit.offset = at;
      edit.new_bytes = kind == EditKind::kCorruptByte
                           ? std::string("?")
                           : RandomSnippet(kMaxSnippetNodes);
      return edit;
    }

    case EditKind::kDeleteLeaf:
    case EditKind::kReplaceLeaf: {
      const LeafSpan leaf = FindLeaf(doc, from);
      if (leaf.begin < 0) break;  // no non-root leaf: fall through
      edit.offset = leaf.begin;
      edit.old_len = leaf.end - leaf.begin;
      if (kind == EditKind::kReplaceLeaf) {
        edit.new_bytes = RandomSnippet(kMaxSnippetNodes);
      }
      return edit;
    }

    case EditKind::kRelabelLeaf: {
      if (alphabet_->size() < 2) break;
      const LeafSpan leaf = FindLeaf(doc, from);
      if (leaf.begin < 0 || leaf.symbol < 0) break;
      Symbol other = static_cast<Symbol>(
          rng_.NextBelow(static_cast<uint64_t>(alphabet_->size())));
      if (other == leaf.symbol) {
        other = (other + 1) % alphabet_->size();
      }
      EventStream events = {TagEvent{true, other}, TagEvent{false, other}};
      edit.offset = leaf.begin;
      edit.old_len = leaf.end - leaf.begin;
      switch (format_) {
        case StreamFormat::kCompactMarkup:
          edit.new_bytes = ToCompactMarkup(*alphabet_, events);
          break;
        case StreamFormat::kCompactTerm:
          edit.new_bytes = ToCompactTerm(*alphabet_, events);
          break;
        case StreamFormat::kXmlLite:
          edit.new_bytes = ToXmlLite(*alphabet_, events);
          break;
      }
      return edit;
    }

    case EditKind::kDeleteWhitespace: {
      // Any whitespace byte is inter-token in all three formats (no
      // format puts whitespace inside a token), so deleting a run is
      // always structure-preserving.
      for (int64_t step = 0; step < n; ++step) {
        const int64_t i = (from + step) % n;
        if (!IsWs(doc[static_cast<size_t>(i)])) continue;
        int64_t j = i;
        while (j < n && IsWs(doc[static_cast<size_t>(j)])) ++j;
        edit.offset = i;
        edit.old_len = j - i;
        return edit;
      }
      break;  // no whitespace anywhere: fall through to insertion
    }

    case EditKind::kInsertWhitespace:
      break;  // handled by the shared fallback below
  }

  // Fallback (and the kInsertWhitespace body): grow a whitespace run at a
  // legal splice point. Always possible once the document has any tag.
  const int64_t at = FindInsertPoint(doc, from);
  if (at < 0) {
    edit.offset = 0;
    edit.new_bytes = RandomSnippet(kMaxSnippetNodes);
    return edit;
  }
  static constexpr char kWs[] = {' ', '\n', '\t'};
  edit.offset = at;
  const int64_t run = rng_.NextInRange(1, kMaxWsRun);
  for (int64_t i = 0; i < run; ++i) {
    edit.new_bytes.push_back(kWs[rng_.NextBelow(std::size(kWs))]);
  }
  return edit;
}

}  // namespace sst
