#ifndef SST_TESTING_FAULT_INJECTION_H_
#define SST_TESTING_FAULT_INJECTION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/rng.h"

namespace sst {

// Deterministic fault-injection harness for the streaming robustness
// suites: every mutator is a pure function of (document, seed), so a
// failing fuzz case is reproducible from the two numbers a test prints.
// The mutators model the faults an untrusted transport actually produces
// — truncation mid-document, bit corruption, replayed or lost windows,
// duplicated subtrees, lost closes, junk runs — rather than uniformly
// random bytes (which almost always die on the first byte and never
// exercise recovery deep in a document).

enum class FaultKind : uint8_t {
  kTruncate = 0,     // drop the document's tail
  kFlipByte,         // corrupt one byte
  kDuplicateSpan,    // replay a window (chunk duplication)
  kDropSpan,         // lose a window (chunk loss)
  kSpliceSubtree,    // insert a copy of a balanced subtree elsewhere
  kUnbalanceClose,   // corrupt or delete one closing token
  kInjectJunk,       // insert a run of junk bytes
};
inline constexpr int kNumFaultKinds = 7;

const char* FaultKindName(FaultKind kind);

// What a mutator did; tests use it to label failures and to aim the
// chunk-resplit differential at the damaged region.
struct FaultReport {
  FaultKind kind = FaultKind::kTruncate;
  size_t offset = 0;   // first byte affected in the mutated document
  size_t length = 0;   // bytes inserted / removed / rewritten
  bool changed = false;  // false when the document offered no target
};

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : rng_(seed) {}

  // Applies one fault of the given kind at an rng-chosen position.
  FaultReport Apply(FaultKind kind, std::string* doc);

  // Applies one fault of an rng-chosen kind.
  FaultReport ApplyRandom(std::string* doc);

  Rng& rng() { return rng_; }

 private:
  Rng rng_;
};

// Chunk-schedule helpers for differential (re-split) fuzzing.

// Cuts `bytes` at the given ascending positions (each in [0, size]);
// returns the resulting chunks, some possibly empty.
std::vector<std::string_view> SplitAt(std::string_view bytes,
                                      const std::vector<size_t>& cuts);

// Deterministic random split schedule: up to max_cuts cut points over
// [0, n], sorted (duplicates allowed — empty chunks are a legal and
// interesting schedule).
std::vector<size_t> RandomCuts(Rng& rng, size_t n, int max_cuts);

}  // namespace sst

#endif  // SST_TESTING_FAULT_INJECTION_H_
