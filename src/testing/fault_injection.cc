#include "testing/fault_injection.h"

#include <algorithm>

namespace sst {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kFlipByte:
      return "flip-byte";
    case FaultKind::kDuplicateSpan:
      return "duplicate-span";
    case FaultKind::kDropSpan:
      return "drop-span";
    case FaultKind::kSpliceSubtree:
      return "splice-subtree";
    case FaultKind::kUnbalanceClose:
      return "unbalance-close";
    case FaultKind::kInjectJunk:
      return "inject-junk";
  }
  return "unknown";
}

namespace {

// A short run of bytes that are junk in every supported serialization.
constexpr char kJunkAlphabet[] = "!#$%&*?@^~|";

// Picks a span [lo, lo+len) with len in [1, max_len] inside [0, n).
bool PickSpan(Rng& rng, size_t n, size_t max_len, size_t* lo, size_t* len) {
  if (n == 0) return false;
  *lo = static_cast<size_t>(rng.NextBelow(n));
  size_t cap = std::min(max_len, n - *lo);
  *len = 1 + static_cast<size_t>(rng.NextBelow(cap));
  return true;
}

// Compact-markup subtree starting at a lowercase letter: returns the
// length through the matching uppercase close, or 0 when unbalanced.
size_t SubtreeLength(std::string_view doc, size_t start) {
  int depth = 0;
  for (size_t i = start; i < doc.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(doc[i]);
    if (c >= 'a' && c <= 'z') {
      ++depth;
    } else if (c >= 'A' && c <= 'Z') {
      --depth;
      if (depth == 0) return i - start + 1;
      if (depth < 0) return 0;
    }
  }
  return 0;
}

FaultReport Unchanged(FaultKind kind) {
  FaultReport report;
  report.kind = kind;
  report.changed = false;
  return report;
}

}  // namespace

FaultReport FaultInjector::Apply(FaultKind kind, std::string* doc) {
  FaultReport report;
  report.kind = kind;
  report.changed = true;
  const size_t n = doc->size();
  switch (kind) {
    case FaultKind::kTruncate: {
      if (n == 0) return Unchanged(kind);
      size_t keep = static_cast<size_t>(rng_.NextBelow(n));
      report.offset = keep;
      report.length = n - keep;
      doc->resize(keep);
      return report;
    }
    case FaultKind::kFlipByte: {
      if (n == 0) return Unchanged(kind);
      size_t pos = static_cast<size_t>(rng_.NextBelow(n));
      // Flip a low bit; retry bits until the byte actually changes is not
      // needed — any xor with a nonzero mask changes it.
      unsigned char mask =
          static_cast<unsigned char>(1u << rng_.NextBelow(7));
      (*doc)[pos] = static_cast<char>((*doc)[pos] ^ mask);
      report.offset = pos;
      report.length = 1;
      return report;
    }
    case FaultKind::kDuplicateSpan: {
      size_t lo = 0, len = 0;
      if (!PickSpan(rng_, n, 32, &lo, &len)) return Unchanged(kind);
      std::string span = doc->substr(lo, len);
      doc->insert(lo + len, span);
      report.offset = lo + len;
      report.length = len;
      return report;
    }
    case FaultKind::kDropSpan: {
      size_t lo = 0, len = 0;
      if (!PickSpan(rng_, n, 32, &lo, &len)) return Unchanged(kind);
      doc->erase(lo, len);
      report.offset = lo;
      report.length = len;
      return report;
    }
    case FaultKind::kSpliceSubtree: {
      // Try a few rng-chosen starts for a balanced compact-markup subtree;
      // fall back to a plain span duplication when none is found (e.g.
      // XML-lite bytes), so the mutator never silently no-ops on valid
      // input.
      for (int attempt = 0; attempt < 8 && n > 0; ++attempt) {
        size_t start = static_cast<size_t>(rng_.NextBelow(n));
        unsigned char c = static_cast<unsigned char>((*doc)[start]);
        if (c < 'a' || c > 'z') continue;
        size_t len = SubtreeLength(*doc, start);
        if (len == 0 || len > 256) continue;
        std::string subtree = doc->substr(start, len);
        size_t at = static_cast<size_t>(rng_.NextBelow(n + 1));
        doc->insert(at, subtree);
        report.offset = at;
        report.length = len;
        return report;
      }
      return Apply(FaultKind::kDuplicateSpan, doc);
    }
    case FaultKind::kUnbalanceClose: {
      // Collect closing tokens ('A'..'Z' and '}'); corrupt or delete one.
      std::vector<size_t> closes;
      for (size_t i = 0; i < n; ++i) {
        unsigned char c = static_cast<unsigned char>((*doc)[i]);
        if ((c >= 'A' && c <= 'Z') || c == '}') closes.push_back(i);
      }
      if (closes.empty()) return Unchanged(kind);
      size_t pos = closes[rng_.NextBelow(closes.size())];
      report.offset = pos;
      report.length = 1;
      unsigned char c = static_cast<unsigned char>((*doc)[pos]);
      if (c != '}' && rng_.NextBool(0.5)) {
        // Rotate to a different closing letter: a guaranteed mismatch.
        (*doc)[pos] = static_cast<char>('A' + (c - 'A' + 1) % 26);
      } else {
        doc->erase(pos, 1);
      }
      return report;
    }
    case FaultKind::kInjectJunk: {
      size_t at = static_cast<size_t>(rng_.NextBelow(n + 1));
      size_t len = 1 + static_cast<size_t>(rng_.NextBelow(8));
      std::string junk;
      for (size_t i = 0; i < len; ++i) {
        junk += kJunkAlphabet[rng_.NextBelow(sizeof(kJunkAlphabet) - 1)];
      }
      doc->insert(at, junk);
      report.offset = at;
      report.length = len;
      return report;
    }
  }
  return Unchanged(kind);
}

FaultReport FaultInjector::ApplyRandom(std::string* doc) {
  FaultKind kind = static_cast<FaultKind>(rng_.NextBelow(kNumFaultKinds));
  return Apply(kind, doc);
}

std::vector<std::string_view> SplitAt(std::string_view bytes,
                                      const std::vector<size_t>& cuts) {
  std::vector<std::string_view> chunks;
  size_t prev = 0;
  for (size_t cut : cuts) {
    size_t at = std::min(cut, bytes.size());
    chunks.push_back(bytes.substr(prev, at - prev));
    prev = at;
  }
  chunks.push_back(bytes.substr(prev));
  return chunks;
}

std::vector<size_t> RandomCuts(Rng& rng, size_t n, int max_cuts) {
  std::vector<size_t> cuts;
  int count = max_cuts <= 0 ? 0 : static_cast<int>(rng.NextBelow(
                                      static_cast<uint64_t>(max_cuts) + 1));
  cuts.reserve(count);
  for (int i = 0; i < count; ++i) {
    cuts.push_back(static_cast<size_t>(rng.NextBelow(n + 1)));
  }
  std::sort(cuts.begin(), cuts.end());
  return cuts;
}

}  // namespace sst
