#ifndef SST_TESTING_EDIT_WORKLOAD_H_
#define SST_TESTING_EDIT_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "automata/alphabet.h"
#include "base/rng.h"
#include "dra/streaming.h"

namespace sst {

// One byte splice of a serialized document: `new_bytes` replaces the range
// [offset, offset + old_len). The uniform edit representation shared by
// the incremental-reevaluation property tests and the edit benchmark —
// exactly the shape IncrementalSession::ApplyEdit consumes.
struct DocEdit {
  int64_t offset = 0;
  int64_t old_len = 0;
  std::string new_bytes;
};

// The structural flavor of a generated edit.
enum class EditKind {
  kInsertSubtree,     // splice a freshly generated balanced subtree in
  kDeleteLeaf,        // remove one leaf element
  kReplaceLeaf,       // swap a leaf for a generated balanced subtree
  kRelabelLeaf,       // change a leaf's label in place
  kInsertWhitespace,  // grow an inter-tag whitespace run
  kDeleteWhitespace,  // shrink one
  kCorruptByte,       // inject a byte no token can start with (malformed)
};

const char* EditKindName(EditKind kind);

// Seeded generator of random small edits over a serialized document.
// Structural edits are balanced (insert/delete/replace whole subtrees,
// relabel leaves), so a well-formed document stays well-formed — except
// kCorruptByte, which deliberately manufactures a malformed region for
// the recovery-path properties. Edits are found by a bounded local scan
// around a random position, so generation cost is independent of document
// size (the 100 MB benchmark corpus relies on this).
//
// Determinism: the same (alphabet, format, seed) over the same document
// sequence yields the same edits on every platform (base/rng.h).
class EditWorkload {
 public:
  // `alphabet` must outlive the workload and contain the labels the
  // documents use; generated subtrees draw labels uniformly from it.
  EditWorkload(const Alphabet* alphabet, StreamFormat format, uint64_t seed);

  // A random edit of `doc`, drawn over the well-formed kinds.
  DocEdit Next(std::string_view doc);

  // An edit of the requested kind; falls back to a whitespace insertion
  // when the document offers no target (e.g. kDeleteLeaf on a leafless
  // root). kCorruptByte is only produced when asked for explicitly.
  DocEdit Make(EditKind kind, std::string_view doc);

  // Applies an edit, returning the post-edit document.
  static std::string Apply(std::string_view doc, const DocEdit& edit);

  // Canonical single-splice diff (longest common prefix + suffix) between
  // two versions — turns arbitrary before/after pairs into the ApplyEdit
  // shape.
  static DocEdit Diff(std::string_view before, std::string_view after);

 private:
  struct LeafSpan {
    int64_t begin = -1;  // first byte of the leaf's opening token
    int64_t end = -1;    // byte just past the leaf's closing token
    Symbol symbol = -1;
  };

  // First leaf element found scanning forward from `from` (wrapping to
  // the start once), never the root element itself. begin -1 when the
  // document has no non-root leaf.
  LeafSpan FindLeaf(std::string_view doc, int64_t from) const;

  // A byte position just past some opening token, scanning forward from
  // `from` (wrapping once); -1 when the document has no opening tag.
  // Splicing balanced content or whitespace there is always legal (the
  // enclosing element is open, so the document stays single-rooted).
  int64_t FindInsertPoint(std::string_view doc, int64_t from) const;

  // Serialization of a random tree of 1..max_nodes nodes in this format.
  std::string RandomSnippet(int max_nodes);

  const Alphabet* alphabet_;
  StreamFormat format_;
  Rng rng_;
};

}  // namespace sst

#endif  // SST_TESTING_EDIT_WORKLOAD_H_
