#include "server/connection.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <utility>

namespace sst {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

void Bump(std::atomic<int64_t>& counter, int64_t delta = 1) {
  counter.fetch_add(delta, kRelaxed);
}

}  // namespace

Connection::Connection(int fd, ConnectionHost* host)
    : fd_(fd), host_(host), decoder_(host->limits().max_frame_payload) {}

Connection::~Connection() {
  // Backstop: every orderly path released already.
  ReleaseStream();
  if (fd_ >= 0) close(fd_);
}

void Connection::Start() {
  last_read_ms_ = EventLoop::NowMs();
  host_->loop().Add(fd_, this, /*want_read=*/true, /*want_write=*/false);
  host_->loop().SetDeadline(fd_,
                            last_read_ms_ + host_->limits().idle_timeout_ms);
}

void Connection::BeginDrain() {
  if (drain_pending_ || closing_) return;
  if (phase_ == DocPhase::kIdle) {
    SendShedAndClose(ShedReason::kDraining);  // may destroy *this
    return;
  }
  drain_pending_ = true;  // close right after the in-flight document
}

void Connection::ForceCloseForDrain() {
  if (closing_) {
    // Every owed verdict was already queued (and, if lingering, flushed);
    // the peer just has not closed yet. Not a forced abort.
    CloseNow();
    return;
  }
  Bump(host_->counters().drain_forced_closes);
  if (stream_) {
    Bump(host_->counters().disconnects_mid_stream);
    ReleaseStream();
  }
  // Best effort: one direct write of the typed verdict; the socket is
  // closing either way and the queue may already be stalled.
  std::string frame;
  AppendFrame(FrameType::kShed, EncodeShed(ShedReason::kDrainDeadline),
              &frame);
  Bump(host_->counters().frames_out);
  ssize_t n = send(fd_, frame.data(), frame.size(), MSG_NOSIGNAL);
  if (n > 0) Bump(host_->counters().bytes_out, n);
  CloseNow();  // destroys *this
}

void Connection::OnReadable(int) {
  char buf[16 * 1024];
  size_t budget = 64 * 1024;  // fairness cap per wakeup (level-triggered)
  bool eof = false;
  while (budget > 0) {
    ssize_t n = read(fd_, buf, std::min(sizeof buf, budget));
    if (n > 0) {
      budget -= static_cast<size_t>(n);
      Bump(host_->counters().bytes_in, n);
      last_read_ms_ = EventLoop::NowMs();
      // A closing connection only reads to detect the peer's close; its
      // input is discarded, never decoded.
      if (!closing_) {
        decoder_.Append(std::string_view(buf, static_cast<size_t>(n)));
      }
      continue;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    eof = true;  // hard read error: treat as disconnect
    break;
  }

  if (closing_) {
    if (eof) CloseNow();  // linger over: the peer saw everything
    return;
  }

  if (!eof) {
    ProcessFrames();
    return;
  }

  // Peer finished writing. Drain whatever complete frames it pipelined,
  // deliver the replies, then close (the peer may have half-closed and
  // still be reading).
  if (!ProcessFrames()) return;
  read_closed_ = true;
  if (stream_) {
    Bump(host_->counters().disconnects_mid_stream);
    ReleaseStream();
    phase_ = DocPhase::kIdle;
  }
  closing_ = true;
  if (!FlushWrites()) return;
  UpdateInterest();
}

void Connection::OnWritable(int) {
  if (!FlushWrites()) return;
  if (paused_ && pending_out() <= host_->limits().resume_output_buffer) {
    paused_ = false;
    ProcessFrames();  // decode what buffered while paused; may re-pause
    return;
  }
  UpdateInterest();
}

void Connection::OnError(int) {
  if (stream_) {
    Bump(host_->counters().disconnects_mid_stream);
    ReleaseStream();
  }
  CloseNow();
}

void Connection::OnDeadline(int, int64_t now_ms) {
  const ServerLimits& limits = host_->limits();
  if (lingering_ && now_ms >= linger_deadline_ms_) {
    CloseNow();  // peer never closed; stop holding the fd for it
    return;
  }
  if (pending_out() > 0 && write_stall_since_ms_ != 0 &&
      now_ms >= write_stall_since_ms_ + limits.write_timeout_ms) {
    // The peer is not taking bytes; a typed frame would not be
    // deliverable either. Just close.
    Bump(host_->counters().write_timeouts);
    if (stream_) {
      Bump(host_->counters().disconnects_mid_stream);
      ReleaseStream();
    }
    CloseNow();
    return;
  }
  if (!closing_ && !read_closed_ && !paused_ &&
      now_ms >= last_read_ms_ + limits.idle_timeout_ms) {
    Bump(host_->counters().idle_timeouts);
    ReleaseStream();  // a slow-loris mid-document frees its session too
    SendShedAndClose(ShedReason::kIdleTimeout);  // may destroy *this
    return;
  }
  UpdateInterest();  // stale deadline (state advanced since it was armed)
}

bool Connection::ProcessFrames() {
  const ServerLimits& limits = host_->limits();
  while (!closing_) {
    if (pending_out() > limits.max_output_buffer) {
      if (!paused_) {
        paused_ = true;
        Bump(host_->counters().backpressure_pauses);
      }
      // Give the socket a chance to absorb the queue right now: if it
      // does, resume decoding immediately. Only a peer that genuinely
      // is not reading keeps the connection paused (and OnWritable
      // resumes it later) — pausing on a fully-flushed queue would
      // leave no event to ever wake the connection up.
      if (!FlushWrites()) return false;
      if (pending_out() <= limits.resume_output_buffer) {
        paused_ = false;
        continue;
      }
      break;
    }
    Frame frame;
    FrameDecoder::Status status = decoder_.Next(&frame);
    if (status == FrameDecoder::Status::kNeedMore) break;
    if (status == FrameDecoder::Status::kTooLarge) {
      Bump(host_->counters().protocol_errors);
      return SendErrorAndClose("frame_too_large",
                               "declared payload exceeds max_frame_payload");
    }
    if (status == FrameDecoder::Status::kBadType) {
      Bump(host_->counters().protocol_errors);
      return SendErrorAndClose("bad_frame", "unknown frame type byte");
    }
    if (!HandleFrame(std::move(frame))) return false;
  }
  if (!FlushWrites()) return false;
  UpdateInterest();
  return true;
}

bool Connection::HandleFrame(Frame frame) {
  Bump(host_->counters().frames_in);
  switch (frame.type) {
    case FrameType::kRegister:
      return HandleRegister(frame.payload);
    case FrameType::kData:
      return HandleData(frame.payload);
    case FrameType::kFinish:
      return HandleFinish();
    case FrameType::kMetrics:
      SendFrame(FrameType::kMetricsText, host_->MetricsText());
      return true;
    case FrameType::kGoodbye:
      if (stream_) {
        Bump(host_->counters().disconnects_mid_stream);
        ReleaseStream();
        phase_ = DocPhase::kIdle;
      }
      closing_ = true;  // ProcessFrames stops; FlushWrites closes
      return true;
    default:
      Bump(host_->counters().protocol_errors);
      return SendErrorAndClose(
          "unexpected_frame",
          std::string("client sent a server-side frame type: ") +
              FrameTypeName(frame.type));
  }
}

bool Connection::HandleRegister(std::string_view payload) {
  if (phase_ != DocPhase::kIdle) {
    Bump(host_->counters().protocol_errors);
    return SendErrorAndClose("unexpected_frame", "kRegister mid-document");
  }
  RegisterRequest request;
  std::string error;
  if (!ParseRegister(payload, &request, &error)) {
    Bump(host_->counters().protocol_errors);
    return SendErrorAndClose("bad_register", std::move(error));
  }
  StreamLimits merged =
      StreamLimits::Merged(host_->limits().stream, request.limits);
  if (const char* defect = merged.Validate()) {
    Bump(host_->counters().protocol_errors);
    return SendErrorAndClose("bad_limits", defect);
  }
  std::shared_ptr<BatchHandle> handle =
      host_->GetOrRegisterBatch(request, &error);
  if (handle == nullptr) {
    Bump(host_->counters().protocol_errors);
    return SendErrorAndClose("bad_register", std::move(error));
  }
  batch_ = std::move(handle);
  merged_limits_ = merged;
  matches_enabled_ = request.matches;
  SendFrame(FrameType::kRegistered, EncodeRegistered(batch_->info()));
  return true;
}

bool Connection::HandleData(std::string_view payload) {
  if (phase_ == DocPhase::kDiscarding) return true;
  if (batch_ == nullptr) {
    Bump(host_->counters().protocol_errors);
    return SendErrorAndClose("not_registered", "kData before kRegister");
  }
  if (phase_ == DocPhase::kIdle && !StartStream()) return true;  // shed
  if (stream_->Feed(payload)) {
    FlushMatches();  // incremental: events certain in this chunk go out now
  } else {
    FinishStreamWithError();
  }
  return true;
}

bool Connection::HandleFinish() {
  if (phase_ == DocPhase::kDiscarding) {
    phase_ = DocPhase::kIdle;
    return AfterDocument();
  }
  if (batch_ == nullptr) {
    Bump(host_->counters().protocol_errors);
    return SendErrorAndClose("not_registered", "kFinish before kRegister");
  }
  if (phase_ == DocPhase::kIdle) {
    // Zero-chunk document: run the same admission + verdict path, so the
    // client gets the exact StreamError an offline run would produce.
    if (!StartStream()) {
      phase_ = DocPhase::kIdle;
      return AfterDocument();
    }
  }
  if (stream_->Finish()) {
    // Synthetic EOF closes (kAutoClose recovery) resolve their spans in
    // Finish; flush them ahead of the verdict so every event of the
    // document precedes its kCounts.
    FlushMatches();
    SendFrame(FrameType::kCounts, EncodeCounts(stream_->counts()));
    Bump(host_->counters().streams_completed);
  } else {
    FlushMatches();  // pending spans arrive truncated, not dropped
    SendFrame(FrameType::kError,
              EncodeErrorInfo(
                  StreamErrorInfo(stream_->stream_error(), &batch_->alphabet())));
    Bump(host_->counters().streams_failed);
  }
  if (drain_pending_) Bump(host_->counters().drain_completed_streams);
  ReleaseStream();
  phase_ = DocPhase::kIdle;
  return AfterDocument();
}

bool Connection::AfterDocument() {
  if (drain_pending_) {
    SendFrame(FrameType::kShed, EncodeShed(ShedReason::kDraining));
    closing_ = true;
  }
  return true;
}

bool Connection::StartStream() {
  std::optional<ShedReason> shed =
      host_->AdmitStream(batch_->pool_stats().outstanding);
  if (shed.has_value()) {
    Bump(host_->counters().sheds_stream);
    SendFrame(FrameType::kShed, EncodeShed(*shed));
    phase_ = DocPhase::kDiscarding;  // connection survives; client may retry
    return false;
  }
  stream_ =
      batch_->Acquire(merged_limits_, host_->recovery_policy(), matches_enabled_);
  int64_t active =
      host_->admission_state().active_streams.fetch_add(1, kRelaxed) + 1;
  ServerCounters::RaisePeak(&host_->counters().streams_peak, active);
  Bump(host_->counters().streams_started);
  phase_ = DocPhase::kStreaming;
  return true;
}

void Connection::FinishStreamWithError() {
  FlushMatches();  // pending spans arrive truncated, not dropped
  SendFrame(FrameType::kError,
            EncodeErrorInfo(
                StreamErrorInfo(stream_->stream_error(), &batch_->alphabet())));
  Bump(host_->counters().streams_failed);
  ReleaseStream();
  phase_ = DocPhase::kDiscarding;
}

void Connection::FlushMatches() {
  if (!stream_ || !stream_->matches_enabled()) return;
  std::vector<MatchWireRecord> records = stream_->TakeMatches();
  ServerCounters::RaisePeak(&host_->counters().match_buffer_peak,
                            stream_->stats().pending_matches_peak);
  if (records.empty()) return;
  int64_t opens = 0;
  for (const MatchWireRecord& record : records) {
    if (!record.close) ++opens;
  }
  Bump(host_->counters().matches_emitted, opens);
  // Chunked so one pathological kData cannot mint a frame larger than a
  // client-side decoder cap.
  constexpr size_t kRecordsPerFrame = 4096;
  for (size_t i = 0; i < records.size(); i += kRecordsPerFrame) {
    size_t n = std::min(kRecordsPerFrame, records.size() - i);
    SendFrame(FrameType::kMatches,
              EncodeMatches({records.begin() + static_cast<ptrdiff_t>(i),
                             records.begin() + static_cast<ptrdiff_t>(i + n)}));
  }
}

void Connection::SendFrame(FrameType type, std::string_view payload) {
  AppendFrame(type, payload, &out_);
  Bump(host_->counters().frames_out);
}

bool Connection::SendErrorAndClose(const char* code, std::string message) {
  ErrorInfo info;
  info.code = code;
  info.message = std::move(message);
  SendFrame(FrameType::kError, EncodeErrorInfo(info));
  closing_ = true;
  if (!FlushWrites()) return false;
  UpdateInterest();
  return true;
}

void Connection::SendShedAndClose(ShedReason reason) {
  SendFrame(FrameType::kShed, EncodeShed(reason));
  closing_ = true;
  if (!FlushWrites()) return;
  UpdateInterest();
}

bool Connection::FlushWrites() {
  while (out_pos_ < out_.size()) {
    ssize_t n = send(fd_, out_.data() + out_pos_, out_.size() - out_pos_,
                     MSG_NOSIGNAL);
    if (n > 0) {
      out_pos_ += static_cast<size_t>(n);
      Bump(host_->counters().bytes_out, n);
      write_stall_since_ms_ = 0;  // progress resets the stall clock
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (write_stall_since_ms_ == 0) {
        write_stall_since_ms_ = EventLoop::NowMs();
      }
      return true;
    }
    // EPIPE / ECONNRESET: nothing is deliverable anymore.
    if (stream_) {
      Bump(host_->counters().disconnects_mid_stream);
      ReleaseStream();
    }
    CloseNow();
    return false;
  }
  out_.clear();
  out_pos_ = 0;
  write_stall_since_ms_ = 0;
  if (closing_) {
    // Everything owed is on the wire. Half-close and linger until the
    // peer closes: an immediate close() would turn into a RST if the
    // peer is still mid-write (pipelining into a drain), tearing the
    // final verdict out of its receive buffer.
    if (read_closed_) {
      CloseNow();
      return false;
    }
    if (!lingering_) {
      lingering_ = true;
      shutdown(fd_, SHUT_WR);
      linger_deadline_ms_ =
          EventLoop::NowMs() + host_->limits().write_timeout_ms;
    }
  }
  return true;
}

void Connection::UpdateInterest() {
  bool want_read = lingering_ || (!closing_ && !read_closed_ && !paused_);
  bool want_write = pending_out() > 0;
  host_->loop().SetWants(fd_, want_read, want_write);

  int64_t deadline = EventLoop::kNoDeadline;
  if (want_write && write_stall_since_ms_ != 0) {
    deadline = write_stall_since_ms_ + host_->limits().write_timeout_ms;
  }
  if (lingering_) {
    if (deadline == EventLoop::kNoDeadline || linger_deadline_ms_ < deadline) {
      deadline = linger_deadline_ms_;
    }
  } else if (want_read) {
    int64_t idle = last_read_ms_ + host_->limits().idle_timeout_ms;
    if (deadline == EventLoop::kNoDeadline || idle < deadline) deadline = idle;
  }
  host_->loop().SetDeadline(fd_, deadline);
}

void Connection::ReleaseStream() {
  if (!stream_) return;
  // Stack-tier observability rides the common release path so failed and
  // shed streams report their peaks too, not just clean completions.
  const StreamStats final_stats = stream_->stats();
  ServerCounters::RaisePeak(&host_->counters().stack_depth_peak,
                            final_stats.max_stack_depth);
  if (final_stats.underflow_closes > 0) {
    Bump(host_->counters().underflow_closes, final_stats.underflow_closes);
  }
  batch_->Release(std::move(stream_));
  host_->admission_state().active_streams.fetch_sub(1, kRelaxed);
}

void Connection::CloseNow() {
  ReleaseStream();
  host_->loop().Remove(fd_);
  Bump(host_->counters().connections_closed);
  host_->admission_state().active_connections.fetch_sub(1, kRelaxed);
  host_->DestroyConnection(fd_);  // deletes *this; nothing may follow
}

}  // namespace sst
