#ifndef SST_SERVER_SERVER_H_
#define SST_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "engine/multi_query.h"
#include "engine/plan_cache.h"
#include "engine/session.h"
#include "server/admission.h"
#include "server/event_loop.h"
#include "server/metrics.h"
#include "server/protocol.h"

namespace sst {

class Connection;
class QueryServer;

// One leased per-document evaluation stream over a registered batch:
// either a pooled Session (single-query registrations) or a pooled
// BatchSession (batches), behind one streaming surface. Single-threaded,
// like the sessions it wraps.
class BatchStream {
 public:
  bool Feed(std::string_view chunk);
  bool Finish();
  bool failed() const;
  const StreamError& stream_error() const;
  // Per-query selection counts in submission order.
  std::vector<int64_t> counts() const;

  // Match-event surface (matches=1 leases only; see BatchHandle::Acquire).
  // The wrapped session streams MatchEvents into an internal wire buffer;
  // the connection drains it after every fed chunk — so buffered growth
  // between flushes is bounded by one chunk's events — and once more
  // before the verdict frame (pending spans truncated by an error land
  // there).
  bool matches_enabled() const { return matches_enabled_; }
  std::vector<MatchWireRecord> TakeMatches() { return wire_.Take(); }

  // Per-document stream counters of the wrapped session, including
  // matches_emitted and pending_matches_peak for the metrics export.
  StreamStats stats() const;

 private:
  friend class BatchHandle;
  BatchStream() = default;

  std::unique_ptr<Session> single_;     // single-query registrations
  std::unique_ptr<BatchSession> batch_;  // multi-query registrations
  bool matches_enabled_ = false;
  MatchWireBuffer wire_;  // sink target while this lease is live
};

// One registered batch: the compiled plan plus its session pool, shared by
// every connection that registered the same canonical batch. Single-query
// registrations compile through the PlanCache into a QueryPlan+SessionPool;
// multi-query ones into a MultiQueryPlan+BatchSessionPool. Immutable after
// Create; Acquire/Release are thread-safe (the pools lock).
class BatchHandle {
 public:
  // Compiles the batch; null with a one-line reason in *error when the
  // request is rejected (unknown label, unsupported query, ...). Never
  // aborts on client-controlled input: query text is validated against
  // the parser's grammar before Rpq::FromXPath (which SST_CHECKs) runs.
  static std::shared_ptr<BatchHandle> Create(const RegisterRequest& request,
                                             const Alphabet& alphabet,
                                             const MultiQueryOptions& options,
                                             PlanCache* cache,
                                             std::string* error);

  const RegisteredInfo& info() const { return info_; }
  const Alphabet& alphabet() const { return alphabet_; }
  int num_queries() const { return info_.num_queries; }
  SessionPool::Stats pool_stats() const;

  // Leases a configured per-document stream. `limits` must pass
  // StreamLimits::Validate() (the connection merges and validates at
  // register time). With `matches` the leased session streams MatchEvents
  // into the BatchStream's wire buffer; Release always unhooks the sink
  // before the session returns to the pool (the buffer dies with the
  // lease).
  std::unique_ptr<BatchStream> Acquire(const StreamLimits& limits,
                                       RecoveryPolicy policy,
                                       bool matches = false);
  void Release(std::unique_ptr<BatchStream> stream);

 private:
  BatchHandle() = default;

  Alphabet alphabet_;
  RegisteredInfo info_;
  std::shared_ptr<const QueryPlan> plan_;        // single-query
  std::unique_ptr<SessionPool> single_pool_;     // single-query
  std::shared_ptr<const MultiQueryPlan> multi_;  // batch
  std::unique_ptr<BatchSessionPool> batch_pool_;  // batch
};

// Everything a Connection needs from its surroundings, so the connection
// state machine is testable against a stub and ignorant of Worker/server
// wiring. All methods are called on the host's loop thread.
class ConnectionHost {
 public:
  virtual ~ConnectionHost() = default;

  virtual EventLoop& loop() = 0;
  virtual const ServerLimits& limits() const = 0;
  virtual ServerCounters& counters() = 0;
  virtual AdmissionState& admission_state() = 0;
  virtual RecoveryPolicy recovery_policy() const = 0;

  // Document-start admission (see AdmissionController::AdmitStream).
  virtual std::optional<ShedReason> AdmitStream(int64_t batch_outstanding) = 0;

  // Resolves a kRegister payload to a (possibly shared) compiled batch;
  // null with a reason in *error on rejection.
  virtual std::shared_ptr<BatchHandle> GetOrRegisterBatch(
      const RegisterRequest& request, std::string* error) = 0;

  virtual std::string MetricsText() = 0;

  // Destroys the connection object. The connection calls this as its very
  // last act (CloseNow); `this` is gone when it returns.
  virtual void DestroyConnection(int fd) = 0;
};

// One worker event loop plus the connections pinned to it. Connections
// never migrate; everything per-connection is single-threaded on this
// worker's loop. Adopt() and BeginDrain() are the cross-thread entry
// points (posted tasks).
class Worker : public ConnectionHost {
 public:
  explicit Worker(QueryServer* server);
  ~Worker() override;

  void Start();
  void Join();

  // Hands a freshly accepted (non-blocking) socket to this worker.
  void Adopt(int fd);

  // Starts draining: idle connections are shed immediately, in-flight
  // documents run until `force_deadline_ms` (absolute, EventLoop::NowMs
  // base), then survivors are force-closed with kShed(drain_deadline).
  // The loop stops once the last connection is gone.
  void BeginDrain(int64_t force_deadline_ms);

  // Approximate connection count, for least-loaded adoption.
  size_t approx_connections() const {
    return load_.load(std::memory_order_relaxed);
  }

  // ConnectionHost:
  EventLoop& loop() override { return loop_; }
  const ServerLimits& limits() const override;
  ServerCounters& counters() override;
  AdmissionState& admission_state() override;
  RecoveryPolicy recovery_policy() const override;
  std::optional<ShedReason> AdmitStream(int64_t batch_outstanding) override;
  std::shared_ptr<BatchHandle> GetOrRegisterBatch(
      const RegisterRequest& request, std::string* error) override;
  std::string MetricsText() override;
  void DestroyConnection(int fd) override;

 private:
  void AdoptOnLoop(int fd);
  void ForceCloseAll();
  void StopIfDrained();

  QueryServer* server_;
  EventLoop loop_;
  std::thread thread_;

  // Loop-thread state.
  std::unordered_map<int, std::unique_ptr<Connection>> connections_;
  bool draining_ = false;

  std::atomic<size_t> load_{0};
};

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0: kernel-assigned; read back via port()
  int num_workers = 2;

  ServerLimits limits;
  PlanCache::Options cache;
  MultiQueryOptions multi;
  RecoveryPolicy recovery = RecoveryPolicy::kFailFast;
};

// The query service: one non-blocking acceptor loop feeding N worker
// loops, a shared PlanCache, and a registry of compiled batches. See
// DESIGN.md "Serving layer" for the protocol and the robustness
// machinery (admission, backpressure, deadlines, drain).
class QueryServer {
 public:
  explicit QueryServer(ServerOptions options = ServerOptions());
  ~QueryServer();  // Stop()s if still running

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  // Binds, listens and spawns the acceptor + worker threads. False with a
  // reason in *error (bad options, bind failure).
  bool Start(std::string* error = nullptr);

  uint16_t port() const { return port_; }

  // Graceful drain: stop accepting (admission sheds with kDraining),
  // finish in-flight documents up to limits.drain_deadline_ms, then
  // force-close stragglers with kShed(drain_deadline). Idempotent;
  // callable from any thread.
  void RequestDrain();

  // Joins the acceptor and every worker (returns once drained).
  void WaitUntilDrained();

  // RequestDrain with a zero deadline + WaitUntilDrained.
  void Stop();

  bool draining() const {
    return admission_state_.draining.load(std::memory_order_relaxed);
  }

  // Point-in-time snapshot: server counters + PlanCache stats + pooled
  // session occupancy aggregated across every registered batch.
  ServerStats stats() const;

  const ServerOptions& options() const { return options_; }
  ServerCounters& counters() { return counters_; }
  const AdmissionController& admission() const { return admission_; }
  AdmissionState& admission_state() { return admission_state_; }

  // Routes `signum` (typically SIGTERM) to RequestDrain through a
  // self-pipe, so the handler stays async-signal-safe. One server per
  // process. Call after Start().
  bool InstallSignalDrain(int signum);

  // Worker-facing surface.
  std::shared_ptr<BatchHandle> GetOrRegisterBatch(
      const RegisterRequest& request, std::string* error);
  std::string MetricsText();

 private:
  class Acceptor;

  void AcceptReady();
  void RequestDrainWithDeadline(int64_t deadline_ms);

  ServerOptions options_;
  AdmissionState admission_state_;
  AdmissionController admission_;
  ServerCounters counters_;
  PlanCache cache_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  int signal_pipe_[2] = {-1, -1};

  EventLoop acceptor_loop_;
  std::thread acceptor_thread_;
  std::unique_ptr<Acceptor> acceptor_;
  std::vector<std::unique_ptr<Worker>> workers_;

  std::atomic<bool> started_{false};
  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> joined_{false};

  mutable std::mutex batches_mu_;
  std::unordered_map<std::string, std::shared_ptr<BatchHandle>> batches_;
};

}  // namespace sst

#endif  // SST_SERVER_SERVER_H_
