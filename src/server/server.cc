#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <unordered_set>
#include <utility>

#include "base/check.h"
#include "server/connection.h"

namespace sst {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

// --- client-input validation -------------------------------------------

// Mirror of rpq.cc's IsNameChar; kept in sync by server_test's parity
// checks (every query this validator admits must compile without
// aborting).
bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '*';
}

// Rpq::FromXPath SST_CHECKs (aborts) on malformed expressions — fine for
// library misuse, fatal for a server fed by untrusted clients. This
// validator accepts exactly the expressions the parser accepts, as a
// gate in front of it: grammar `('/' '/'? label)+` with every non-'*'
// label present in the alphabet.
const char* ValidateXPathQuery(std::string_view expression,
                               const Alphabet& alphabet) {
  if (expression.empty() || expression[0] != '/') {
    return "XPath expression must start with / or //";
  }
  size_t i = 0;
  while (i < expression.size()) {
    if (expression[i] != '/') return "expected / between XPath steps";
    ++i;
    if (i < expression.size() && expression[i] == '/') ++i;
    size_t start = i;
    while (i < expression.size() && IsNameChar(expression[i])) ++i;
    if (i == start) return "empty step label in XPath expression";
    std::string_view label = expression.substr(start, i - start);
    if (label != "*" && alphabet.Find(label) < 0) {
      return "query label not in document alphabet";
    }
  }
  return nullptr;
}

const char* ValidateAlphabetLetters(std::string_view letters) {
  if (letters.empty()) return "alphabet must not be empty";
  for (char c : letters) {
    if (c < 'a' || c > 'z') {
      return "alphabet must be lowercase letters a-z";
    }
  }
  return nullptr;
}

// --- async-signal-safe drain routing -------------------------------------

// One server per process may install signal-driven drain; the handler
// only writes one byte to a pre-opened pipe.
std::atomic<int> g_drain_pipe_fd{-1};

void SignalDrainHandler(int) {
  int fd = g_drain_pipe_fd.load(kRelaxed);
  if (fd >= 0) {
    char byte = 'd';
    ssize_t ignored = write(fd, &byte, 1);
    (void)ignored;
  }
}

void SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  SST_CHECK(flags >= 0);
  SST_CHECK(fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

}  // namespace

// --- BatchStream ----------------------------------------------------------

bool BatchStream::Feed(std::string_view chunk) {
  return single_ ? single_->Feed(chunk) : batch_->Feed(chunk);
}

bool BatchStream::Finish() {
  return single_ ? single_->Finish() : batch_->Finish();
}

bool BatchStream::failed() const {
  return single_ ? single_->failed() : batch_->failed();
}

const StreamError& BatchStream::stream_error() const {
  return single_ ? single_->stream_error() : batch_->stream_error();
}

std::vector<int64_t> BatchStream::counts() const {
  if (single_) return {single_->matches()};
  return batch_->query_matches();
}

StreamStats BatchStream::stats() const {
  return single_ ? single_->stats() : batch_->stats();
}

// --- BatchHandle ----------------------------------------------------------

std::shared_ptr<BatchHandle> BatchHandle::Create(
    const RegisterRequest& request, const Alphabet& alphabet,
    const MultiQueryOptions& options, PlanCache* cache, std::string* error) {
  for (const std::string& query : request.queries) {
    if (const char* defect = ValidateXPathQuery(query, alphabet)) {
      *error = "query \"" + query + "\": " + defect;
      return nullptr;
    }
  }

  auto handle = std::shared_ptr<BatchHandle>(new BatchHandle());
  handle->alphabet_ = alphabet;
  if (request.queries.size() == 1) {
    handle->plan_ = cache->GetOrCompile(QuerySyntax::kXPath,
                                        request.queries[0], alphabet,
                                        options.plan);
    if (!handle->plan_->exact()) {
      *error = "query admits no exact streaming evaluator";
      return nullptr;
    }
    handle->single_pool_ = std::make_unique<SessionPool>(handle->plan_);
    handle->info_.num_queries = 1;
    handle->info_.num_slots = 1;
    handle->info_.tier = EvaluatorKindName(handle->plan_->kind());
  } else {
    std::vector<BatchQuery> batch;
    batch.reserve(request.queries.size());
    for (const std::string& query : request.queries) {
      batch.push_back(BatchQuery{QuerySyntax::kXPath, query});
    }
    handle->multi_ = MultiQueryPlan::Compile(batch, alphabet, options, cache);
    handle->batch_pool_ = std::make_unique<BatchSessionPool>(handle->multi_);
    MultiQueryPlan::Stats stats = handle->multi_->stats();
    handle->info_.num_queries = stats.num_queries;
    handle->info_.num_slots = stats.num_slots;
    handle->info_.tier = MultiTierName(stats.tier);
  }
  return handle;
}

SessionPool::Stats BatchHandle::pool_stats() const {
  return single_pool_ ? single_pool_->stats() : batch_pool_->stats();
}

std::unique_ptr<BatchStream> BatchHandle::Acquire(const StreamLimits& limits,
                                                  RecoveryPolicy policy,
                                                  bool matches) {
  auto stream = std::unique_ptr<BatchStream>(new BatchStream());
  stream->matches_enabled_ = matches;
  if (single_pool_) {
    stream->single_ = single_pool_->Acquire();
    stream->single_->selector().set_limits(limits);
    stream->single_->selector().set_recovery_policy(policy);
    stream->single_->set_match_sink(matches ? &stream->wire_ : nullptr);
  } else {
    stream->batch_ = batch_pool_->Acquire();
    stream->batch_->set_limits(limits);
    stream->batch_->set_recovery_policy(policy);
    stream->batch_->set_match_sink(matches ? &stream->wire_ : nullptr);
  }
  return stream;
}

void BatchHandle::Release(std::unique_ptr<BatchStream> stream) {
  if (!stream) return;
  if (stream->single_) {
    // Unhook the sink before pooling: the wire buffer dies with the lease,
    // and pooled sessions keep their sink wiring across Reset.
    stream->single_->set_match_sink(nullptr);
    single_pool_->Release(std::move(stream->single_));
  } else if (stream->batch_) {
    stream->batch_->set_match_sink(nullptr);
    batch_pool_->Release(std::move(stream->batch_));
  }
}

// --- Worker ----------------------------------------------------------------

Worker::Worker(QueryServer* server) : server_(server) {}

Worker::~Worker() = default;

void Worker::Start() {
  thread_ = std::thread([this] { loop_.Run(); });
}

void Worker::Join() {
  if (thread_.joinable()) thread_.join();
}

void Worker::Adopt(int fd) {
  loop_.Post([this, fd] { AdoptOnLoop(fd); });
}

void Worker::AdoptOnLoop(int fd) {
  auto connection = std::make_unique<Connection>(fd, this);
  Connection* raw = connection.get();
  connections_.emplace(fd, std::move(connection));
  load_.store(connections_.size(), kRelaxed);
  raw->Start();
  // Adoption can race a drain request (the acceptor had already handed
  // the socket over): such latecomers are shed immediately.
  if (draining_) raw->BeginDrain();  // may destroy the connection
}

void Worker::BeginDrain(int64_t force_deadline_ms) {
  loop_.Post([this, force_deadline_ms] {
    if (draining_) return;
    draining_ = true;
    // BeginDrain may destroy connections (erasing from the map), so walk
    // a snapshot of fds and re-validate each.
    std::vector<int> fds;
    fds.reserve(connections_.size());
    for (const auto& [fd, connection] : connections_) fds.push_back(fd);
    for (int fd : fds) {
      auto it = connections_.find(fd);
      if (it != connections_.end()) it->second->BeginDrain();
    }
    loop_.RunAt(force_deadline_ms, [this] { ForceCloseAll(); });
    StopIfDrained();
  });
}

void Worker::ForceCloseAll() {
  std::vector<int> fds;
  fds.reserve(connections_.size());
  for (const auto& [fd, connection] : connections_) fds.push_back(fd);
  for (int fd : fds) {
    auto it = connections_.find(fd);
    if (it != connections_.end()) it->second->ForceCloseForDrain();
  }
}

void Worker::StopIfDrained() {
  if (draining_ && connections_.empty()) loop_.RequestStop();
}

const ServerLimits& Worker::limits() const {
  return server_->options().limits;
}

ServerCounters& Worker::counters() { return server_->counters(); }

AdmissionState& Worker::admission_state() {
  return server_->admission_state();
}

RecoveryPolicy Worker::recovery_policy() const {
  return server_->options().recovery;
}

std::optional<ShedReason> Worker::AdmitStream(int64_t batch_outstanding) {
  return server_->admission().AdmitStream(batch_outstanding);
}

std::shared_ptr<BatchHandle> Worker::GetOrRegisterBatch(
    const RegisterRequest& request, std::string* error) {
  return server_->GetOrRegisterBatch(request, error);
}

std::string Worker::MetricsText() { return server_->MetricsText(); }

void Worker::DestroyConnection(int fd) {
  connections_.erase(fd);
  load_.store(connections_.size(), kRelaxed);
  StopIfDrained();
}

// --- QueryServer -------------------------------------------------------------

// Handler on the acceptor loop for the listen socket, the signal-drain
// pipe, and sockets lingering after a connection-level shed.
class QueryServer::Acceptor : public EventLoop::Handler {
 public:
  Acceptor(QueryServer* server, int listen_fd, int drain_fd)
      : server_(server), listen_fd_(listen_fd), drain_fd_(drain_fd) {}

  // Half-closes a just-shed socket and parks it on the loop until the
  // peer's FIN (or `linger_ms`). An immediate close() would RST a client
  // still mid-write and tear the typed kShed frame out of its receive
  // buffer before it could read the verdict.
  void LingerShed(int fd, EventLoop& loop, int64_t linger_ms) {
    shutdown(fd, SHUT_WR);
    shed_fds_.insert(fd);
    loop.Add(fd, this, /*want_read=*/true, /*want_write=*/false);
    loop.SetDeadline(fd, EventLoop::NowMs() + linger_ms);
  }

  void CloseAllShed(EventLoop& loop) {
    for (int fd : shed_fds_) {
      loop.Remove(fd);
      close(fd);
    }
    shed_fds_.clear();
  }

  void OnReadable(int fd) override {
    if (fd == listen_fd_) {
      server_->AcceptReady();
      return;
    }
    if (fd == drain_fd_) {
      char buf[16];
      while (read(drain_fd_, buf, sizeof buf) > 0) {
      }
      server_->RequestDrain();
      return;
    }
    // Lingering shed socket: discard whatever the peer was mid-writing;
    // EOF (its FIN) or an error retires it.
    char buf[4096];
    while (true) {
      ssize_t n = read(fd, buf, sizeof buf);
      if (n > 0) continue;
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      CloseShed(fd);
      return;
    }
  }
  void OnWritable(int) override {}
  void OnDeadline(int fd, int64_t) override { CloseShed(fd); }

 private:
  void CloseShed(int fd) {
    server_->acceptor_loop_.Remove(fd);
    close(fd);
    shed_fds_.erase(fd);
  }

  QueryServer* server_;
  int listen_fd_;
  int drain_fd_;
  std::unordered_set<int> shed_fds_;  // loop-thread only
};

QueryServer::QueryServer(ServerOptions options)
    : options_(std::move(options)),
      admission_(options_.limits, &admission_state_),
      cache_(options_.cache) {}

QueryServer::~QueryServer() {
  if (started_.load(kRelaxed)) Stop();
  if (signal_pipe_[0] >= 0) {
    // Disarm the handler's fd before it dangles.
    int write_end = signal_pipe_[1];
    g_drain_pipe_fd.compare_exchange_strong(write_end, -1, kRelaxed);
    close(signal_pipe_[0]);
    close(signal_pipe_[1]);
  }
  if (listen_fd_ >= 0) close(listen_fd_);
}

bool QueryServer::Start(std::string* error) {
  std::string local_error;
  if (error == nullptr) error = &local_error;
  if (started_.load(kRelaxed)) {
    *error = "server already started";
    return false;
  }
  if (const char* defect = options_.limits.Validate()) {
    *error = defect;
    return false;
  }
  if (options_.num_workers < 1) {
    *error = "num_workers must be positive";
    return false;
  }

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  SetNonBlocking(listen_fd_);
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    *error = "host is not an IPv4 address: " + options_.host;
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    *error = std::string("bind: ") + std::strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (listen(listen_fd_, 1024) != 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t addr_len = sizeof addr;
  SST_CHECK(getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                        &addr_len) == 0);
  port_ = ntohs(addr.sin_port);

  SST_CHECK(pipe(signal_pipe_) == 0);
  SetNonBlocking(signal_pipe_[0]);
  SetNonBlocking(signal_pipe_[1]);

  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>(this));
  }

  acceptor_ =
      std::make_unique<Acceptor>(this, listen_fd_, signal_pipe_[0]);
  acceptor_loop_.Add(listen_fd_, acceptor_.get(), /*want_read=*/true,
                     /*want_write=*/false);
  acceptor_loop_.Add(signal_pipe_[0], acceptor_.get(), /*want_read=*/true,
                     /*want_write=*/false);

  for (auto& worker : workers_) worker->Start();
  acceptor_thread_ = std::thread([this] { acceptor_loop_.Run(); });
  started_.store(true, kRelaxed);
  return true;
}

void QueryServer::AcceptReady() {
  while (true) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN, or transient (EMFILE/ECONNABORTED): retry on next poll
    }
    SetNonBlocking(fd);
    counters_.connections_accepted.fetch_add(1, kRelaxed);

    std::optional<ShedReason> shed = admission_.AdmitConnection();
    if (shed.has_value()) {
      // Reject before the connection costs any worker state: one
      // best-effort typed frame (fits in a fresh socket buffer), close.
      counters_.sheds_connection.fetch_add(1, kRelaxed);
      std::string frame;
      AppendFrame(FrameType::kShed, EncodeShed(*shed), &frame);
      counters_.frames_out.fetch_add(1, kRelaxed);
      ssize_t n = send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
      if (n > 0) counters_.bytes_out.fetch_add(n, kRelaxed);
      acceptor_->LingerShed(fd, acceptor_loop_,
                            options_.limits.write_timeout_ms);
      continue;
    }

    int64_t active =
        admission_state_.active_connections.fetch_add(1, kRelaxed) + 1;
    ServerCounters::RaisePeak(&counters_.connections_peak, active);

    // Least-loaded adoption.
    Worker* target = workers_[0].get();
    size_t best = target->approx_connections();
    for (auto& worker : workers_) {
      size_t load = worker->approx_connections();
      if (load < best) {
        best = load;
        target = worker.get();
      }
    }
    target->Adopt(fd);
  }
}

void QueryServer::RequestDrain() {
  RequestDrainWithDeadline(options_.limits.drain_deadline_ms);
}

void QueryServer::RequestDrainWithDeadline(int64_t deadline_ms) {
  if (!started_.load(kRelaxed)) return;
  if (drain_requested_.exchange(true)) return;
  // Run the whole drain kickoff on the acceptor thread: it serializes
  // against in-progress accepts, so every Adopt() post happens-before the
  // BeginDrain() post on the same worker (posted tasks are FIFO) and no
  // connection can slip past the drain.
  acceptor_loop_.Post([this, deadline_ms] {
    admission_state_.draining.store(true, kRelaxed);
    acceptor_->CloseAllShed(acceptor_loop_);
    acceptor_loop_.Remove(listen_fd_);
    close(listen_fd_);
    listen_fd_ = -1;
    int64_t force_deadline = EventLoop::NowMs() + deadline_ms;
    for (auto& worker : workers_) worker->BeginDrain(force_deadline);
    acceptor_loop_.RequestStop();
  });
}

void QueryServer::WaitUntilDrained() {
  if (joined_.exchange(true)) return;
  if (acceptor_thread_.joinable()) acceptor_thread_.join();
  for (auto& worker : workers_) worker->Join();
}

void QueryServer::Stop() {
  RequestDrainWithDeadline(0);
  WaitUntilDrained();
}

bool QueryServer::InstallSignalDrain(int signum) {
  if (signal_pipe_[1] < 0) return false;
  g_drain_pipe_fd.store(signal_pipe_[1], kRelaxed);
  struct sigaction action{};
  action.sa_handler = SignalDrainHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  return sigaction(signum, &action, nullptr) == 0;
}

ServerStats QueryServer::stats() const {
  ServerStats stats;
  stats.active_connections =
      admission_state_.active_connections.load(kRelaxed);
  stats.active_streams = admission_state_.active_streams.load(kRelaxed);
  stats.draining = admission_state_.draining.load(kRelaxed);
  SnapshotCounters(counters_, &stats);
  stats.cache = cache_.stats();
  std::lock_guard<std::mutex> lock(batches_mu_);
  stats.batches_registered = static_cast<int64_t>(batches_.size());
  for (const auto& [key, handle] : batches_) {
    SessionPool::Stats pool = handle->pool_stats();
    stats.pool.created += pool.created;
    stats.pool.reused += pool.reused;
    stats.pool.destroyed += pool.destroyed;
    stats.pool.outstanding += pool.outstanding;
    stats.pool.peak_outstanding += pool.peak_outstanding;
    stats.pool.idle += pool.idle;
  }
  return stats;
}

std::string QueryServer::MetricsText() { return RenderMetrics(stats()); }

std::shared_ptr<BatchHandle> QueryServer::GetOrRegisterBatch(
    const RegisterRequest& request, std::string* error) {
  if (request.queries.empty()) {
    *error = "register carries no queries";
    return nullptr;
  }
  if (static_cast<int>(request.queries.size()) >
      options_.limits.max_queries_per_batch) {
    *error = "batch exceeds max_queries_per_batch";
    return nullptr;
  }
  if (const char* defect = ValidateAlphabetLetters(request.alphabet)) {
    *error = defect;
    return nullptr;
  }

  Alphabet alphabet = Alphabet::FromLetters(request.alphabet);
  MultiQueryOptions options = options_.multi;
  options.plan.format = request.format;
  options.plan.encoding = request.format == StreamFormat::kCompactTerm
                              ? StreamEncoding::kTerm
                              : StreamEncoding::kMarkup;

  // Canonical batch key: registrations differing only in whitespace or
  // duplicate alphabet letters share one handle (and one pool).
  std::string key;
  key.push_back(static_cast<char>(request.format));
  key += request.alphabet;
  for (const std::string& query : request.queries) {
    key.push_back('\x1f');
    key += PlanCache::CanonicalKey(QuerySyntax::kXPath, query, alphabet,
                                   options.plan);
  }
  {
    std::lock_guard<std::mutex> lock(batches_mu_);
    auto it = batches_.find(key);
    if (it != batches_.end()) return it->second;
  }

  // Compile outside the registry lock (stats() and other registers stay
  // responsive); a concurrent duplicate register costs a redundant handle
  // but not a redundant plan (the PlanCache single-flights those).
  std::shared_ptr<BatchHandle> handle =
      BatchHandle::Create(request, alphabet, options, &cache_, error);
  if (handle == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(batches_mu_);
  auto [it, inserted] = batches_.emplace(key, std::move(handle));
  return it->second;
}

}  // namespace sst
