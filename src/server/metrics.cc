#include "server/metrics.h"

namespace sst {

void SnapshotCounters(const ServerCounters& counters, ServerStats* stats) {
  auto load = [](const std::atomic<int64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  stats->connections_accepted = load(counters.connections_accepted);
  stats->connections_closed = load(counters.connections_closed);
  stats->connections_peak = load(counters.connections_peak);
  stats->streams_started = load(counters.streams_started);
  stats->streams_completed = load(counters.streams_completed);
  stats->streams_failed = load(counters.streams_failed);
  stats->streams_peak = load(counters.streams_peak);
  stats->sheds_connection = load(counters.sheds_connection);
  stats->sheds_stream = load(counters.sheds_stream);
  stats->idle_timeouts = load(counters.idle_timeouts);
  stats->write_timeouts = load(counters.write_timeouts);
  stats->disconnects_mid_stream = load(counters.disconnects_mid_stream);
  stats->protocol_errors = load(counters.protocol_errors);
  stats->backpressure_pauses = load(counters.backpressure_pauses);
  stats->matches_emitted = load(counters.matches_emitted);
  stats->match_buffer_peak = load(counters.match_buffer_peak);
  stats->stack_depth_peak = load(counters.stack_depth_peak);
  stats->underflow_closes = load(counters.underflow_closes);
  stats->drain_completed_streams = load(counters.drain_completed_streams);
  stats->drain_forced_closes = load(counters.drain_forced_closes);
  stats->bytes_in = load(counters.bytes_in);
  stats->bytes_out = load(counters.bytes_out);
  stats->frames_in = load(counters.frames_in);
  stats->frames_out = load(counters.frames_out);
}

std::string RenderMetrics(const ServerStats& stats) {
  std::string out;
  out.reserve(1024);
  auto line = [&out](const char* name, int64_t value) {
    out += name;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  };
  line("server_active_connections", stats.active_connections);
  line("server_active_streams", stats.active_streams);
  line("server_draining", stats.draining ? 1 : 0);
  line("server_connections_accepted", stats.connections_accepted);
  line("server_connections_closed", stats.connections_closed);
  line("server_connections_peak", stats.connections_peak);
  line("server_streams_started", stats.streams_started);
  line("server_streams_completed", stats.streams_completed);
  line("server_streams_failed", stats.streams_failed);
  line("server_streams_peak", stats.streams_peak);
  line("server_sheds_connection", stats.sheds_connection);
  line("server_sheds_stream", stats.sheds_stream);
  line("server_idle_timeouts", stats.idle_timeouts);
  line("server_write_timeouts", stats.write_timeouts);
  line("server_disconnects_mid_stream", stats.disconnects_mid_stream);
  line("server_protocol_errors", stats.protocol_errors);
  line("server_backpressure_pauses", stats.backpressure_pauses);
  line("server_matches_emitted", stats.matches_emitted);
  line("server_match_buffer_peak", stats.match_buffer_peak);
  line("server_stack_depth_peak", stats.stack_depth_peak);
  line("server_underflow_closes", stats.underflow_closes);
  line("server_drain_completed_streams", stats.drain_completed_streams);
  line("server_drain_forced_closes", stats.drain_forced_closes);
  line("server_bytes_in", stats.bytes_in);
  line("server_bytes_out", stats.bytes_out);
  line("server_frames_in", stats.frames_in);
  line("server_frames_out", stats.frames_out);
  line("plan_cache_hits", stats.cache.hits);
  line("plan_cache_misses", stats.cache.misses);
  line("plan_cache_coalesced_misses", stats.cache.coalesced_misses);
  line("plan_cache_evictions", stats.cache.evictions);
  line("plan_cache_size", stats.cache.size);
  line("server_batches_registered", stats.batches_registered);
  line("session_pool_created", stats.pool.created);
  line("session_pool_reused", stats.pool.reused);
  line("session_pool_destroyed", stats.pool.destroyed);
  line("session_pool_outstanding", stats.pool.outstanding);
  line("session_pool_peak_outstanding", stats.pool.peak_outstanding);
  line("session_pool_idle", stats.pool.idle);
  return out;
}

}  // namespace sst
