#ifndef SST_SERVER_CONNECTION_H_
#define SST_SERVER_CONNECTION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "server/event_loop.h"
#include "server/protocol.h"
#include "server/server.h"

namespace sst {

// One client connection: the protocol state machine over a non-blocking
// socket, owned by exactly one worker loop (single-threaded).
//
// Document phases:
//   kIdle        between documents (register / metrics / data all legal)
//   kStreaming   a session is leased; kData feeds it, kFinish verdicts it
//   kDiscarding  a verdict (StreamError or kShed) already went out for the
//                current document; remaining kData is swallowed so the
//                client's pipeline stays aligned, kFinish re-idles.
//
// Robustness machinery:
//   - backpressure: while the output queue holds more than
//     limits.max_output_buffer bytes, the connection stops reading AND
//     stops decoding already-buffered frames; both resume from OnWritable
//     once the queue drains below resume_output_buffer. Output growth per
//     pause is bounded by one frame's replies, so server memory per
//     connection is bounded no matter how fast the client writes or how
//     slowly it reads.
//   - deadlines: one poll-driven deadline per connection — the nearer of
//     idle (gap between reads; slow-loris guard) and write-stall (queued
//     output the peer will not take). Idle sheds with kShed(idle_timeout);
//     a write stall just closes (the peer is not reading frames anyway).
//   - drain: BeginDrain sheds idle connections immediately and marks
//     in-flight ones to close (kShed(draining)) right after their current
//     document's verdict; ForceCloseForDrain is the deadline hammer.
//
// Lifetime: CloseNow() ends with host->DestroyConnection(fd), which
// deletes this object. Methods that may close return false when the
// connection is destroyed; callers must not touch it afterwards.
class Connection : public EventLoop::Handler {
 public:
  Connection(int fd, ConnectionHost* host);
  ~Connection() override;

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  // Registers with the host loop and arms the idle deadline.
  void Start();

  // Drain entry points (loop thread; see class comment). Both may destroy
  // *this.
  void BeginDrain();
  void ForceCloseForDrain();

  // EventLoop::Handler:
  void OnReadable(int fd) override;
  void OnWritable(int fd) override;
  void OnError(int fd) override;
  void OnDeadline(int fd, int64_t now_ms) override;

 private:
  enum class DocPhase { kIdle, kStreaming, kDiscarding };

  size_t pending_out() const { return out_.size() - out_pos_; }

  // Frame pump; false if *this was destroyed.
  bool ProcessFrames();
  bool HandleFrame(Frame frame);
  bool HandleRegister(std::string_view payload);
  bool HandleData(std::string_view payload);
  bool HandleFinish();

  // Admits + leases a stream for a new document; on shed, emits the typed
  // frame and flips to kDiscarding (returns false).
  bool StartStream();
  // Drains the stream's buffered MatchEvents into kMatches frames (chunked
  // so no single frame outgrows a client-side decoder cap). The frames
  // join the normal output queue, so the existing backpressure machinery
  // paces them: a slow reader pauses further kData decoding, not the
  // server.
  void FlushMatches();
  // Emits the structured StreamError verdict and flips to kDiscarding.
  void FinishStreamWithError();
  // End-of-document bookkeeping (drain-pending connections close here).
  bool AfterDocument();

  void SendFrame(FrameType type, std::string_view payload);
  // Protocol-level rejection: kError frame, then flush-and-close. False
  // if *this was destroyed.
  bool SendErrorAndClose(const char* code, std::string message);
  // Typed lifecycle verdict, then flush-and-close. May destroy *this.
  void SendShedAndClose(ShedReason reason);

  // Writes as much queued output as the socket takes; false if *this was
  // destroyed (write error, or close-after-flush completed).
  bool FlushWrites();
  // Recomputes poll interest + the armed deadline from current state.
  void UpdateInterest();
  // Returns the leased session to its pool (idempotent).
  void ReleaseStream();
  // Tears the connection down; destroys *this.
  void CloseNow();

  int fd_;
  ConnectionHost* host_;
  FrameDecoder decoder_;

  // Output queue: [out_pos_, out_.size()) is unsent.
  std::string out_;
  size_t out_pos_ = 0;

  DocPhase phase_ = DocPhase::kIdle;
  std::shared_ptr<BatchHandle> batch_;
  std::unique_ptr<BatchStream> stream_;
  StreamLimits merged_limits_;  // server defaults merged with the request
  bool matches_enabled_ = false;  // register-time kMatches opt-in

  bool paused_ = false;         // backpressure: reads + decoding stopped
  bool closing_ = false;        // flush remaining output, then close
  bool read_closed_ = false;    // peer EOF seen
  bool drain_pending_ = false;  // close right after the in-flight document
  // Output flushed and SHUT_WR sent; discarding reads until the peer
  // closes (or the linger deadline). Guarantees a final verdict frame is
  // not torn away by a RST when the peer is still mid-write.
  bool lingering_ = false;

  int64_t last_read_ms_ = 0;
  int64_t write_stall_since_ms_ = 0;  // 0: output is not stalled
  int64_t linger_deadline_ms_ = 0;
};

}  // namespace sst

#endif  // SST_SERVER_CONNECTION_H_
