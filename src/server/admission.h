#ifndef SST_SERVER_ADMISSION_H_
#define SST_SERVER_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <optional>

#include "dra/stream_error.h"
#include "server/protocol.h"

namespace sst {

// Operator-configured robustness envelope of the query service: admission
// high-watermarks, per-connection byte-rate deadlines, the backpressure
// bounds of the output queue, and the default per-stream StreamLimits
// every document runs under (per-request limits only tighten these via
// StreamLimits::Merged).
struct ServerLimits {
  // Admission high-watermarks. A connection beyond max_connections is
  // answered with a typed kShed(max_connections) frame and closed before
  // it costs any worker state; a document started beyond max_streams (or
  // beyond its batch pool's occupancy cap) is shed without touching a
  // session.
  int max_connections = 1024;
  int max_streams = 512;
  int max_streams_per_batch = 1 << 30;  // pool-occupancy shed threshold

  // Protocol guards.
  size_t max_frame_payload = 1 << 20;  // oversized frames rejected by header
  int max_queries_per_batch = 256;

  // Backpressure: once a connection's output queue holds more than
  // max_output_buffer bytes the server stops reading AND stops decoding
  // frames for it (input stays in the kernel buffer; TCP pushes back on
  // the client) until writes drain below resume_output_buffer.
  size_t max_output_buffer = 256 << 10;
  size_t resume_output_buffer = 64 << 10;

  // Byte-rate deadlines. idle_timeout_ms bounds the gap between reads
  // (slow-loris clients feeding a byte per poll hit this); write_timeout_ms
  // bounds how long a non-empty output queue may sit without the peer
  // accepting a byte (stalled readers).
  int64_t idle_timeout_ms = 30'000;
  int64_t write_timeout_ms = 10'000;

  // Graceful drain: in-flight documents get this long to finish after
  // RequestDrain() before being force-closed with kShed(drain_deadline).
  int64_t drain_deadline_ms = 5'000;

  // Default per-stream limits (defense against hostile documents even
  // when the client requests none). Must pass StreamLimits::Validate().
  StreamLimits stream;

  // nullptr when coherent; otherwise a static description of the defect.
  const char* Validate() const;
};

// The live occupancy the admission decisions read. Plain atomics:
// incremented by the acceptor and workers, read by everyone (metrics
// snapshots included) without locks.
struct AdmissionState {
  std::atomic<int64_t> active_connections{0};
  std::atomic<int64_t> active_streams{0};
  std::atomic<bool> draining{false};
};

// Stateless admission policy over (limits, live occupancy): each check
// returns std::nullopt to admit or the typed ShedReason to reject with.
class AdmissionController {
 public:
  AdmissionController(const ServerLimits& limits, AdmissionState* state)
      : limits_(limits), state_(state) {}

  // At accept time, before the connection reaches a worker.
  std::optional<ShedReason> AdmitConnection() const;

  // At document-start time. `batch_outstanding` is the stream's batch
  // pool occupancy (SessionPool::Stats::outstanding).
  std::optional<ShedReason> AdmitStream(int64_t batch_outstanding) const;

  const ServerLimits& limits() const { return limits_; }

 private:
  ServerLimits limits_;
  AdmissionState* state_;
};

}  // namespace sst

#endif  // SST_SERVER_ADMISSION_H_
