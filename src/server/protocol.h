#ifndef SST_SERVER_PROTOCOL_H_
#define SST_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/match_sink.h"
#include "dra/stream_error.h"
#include "dra/streaming.h"

namespace sst {

// Wire protocol of the query service: length-prefixed frames over a byte
// stream. Every frame is
//
//   [1 byte type][4 bytes payload length, little endian][payload]
//
// and payloads are plain text (newline-separated key=value lines or
// space-separated decimals), so a session is inspectable with a hex dump
// and the protocol layer stays allocation-light without a codegen step.
//
// A session:
//   client  -> kRegister    alphabet + options + N query lines
//   server  -> kRegistered  slots/tier verdicts   (or kError and close)
//   repeat:
//     client -> kData*       document bytes, any chunking
//     server -> kMatches*    (matches=1 registrations) streamed MatchEvents,
//               flushed incrementally after each kData under the normal
//               output-buffer backpressure; events arrive before the
//               document's verdict frame
//     client -> kFinish      end of document
//     server -> kCounts      per-query selection counts in submission order
//               (or kError   structured StreamError verdict; the stream
//                state resets and the connection stays usable)
//   client -> kMetrics      at any point between documents
//   server -> kMetricsText  plaintext counter snapshot
//   client -> kGoodbye      orderly close (server flushes and closes)
//
// Overload and lifecycle verdicts arrive as kShed frames with a typed
// reason (admission rejection, idle/write timeouts, drain), after which
// the server closes the connection.

enum class FrameType : uint8_t {
  // client -> server
  kRegister = 'Q',
  kData = 'D',
  kFinish = 'F',
  kMetrics = 'M',
  kGoodbye = 'G',
  // server -> client
  kRegistered = 'R',
  kCounts = 'C',
  kError = 'E',
  kShed = 'S',
  kMetricsText = 'T',
  kMatches = 'P',
};

bool IsKnownFrameType(uint8_t byte);
const char* FrameTypeName(FrameType type);

inline constexpr size_t kFrameHeaderBytes = 5;

struct Frame {
  FrameType type = FrameType::kData;
  std::string payload;
};

// Appends one encoded frame to `out`.
void AppendFrame(FrameType type, std::string_view payload, std::string* out);

// Incremental frame parser over a receive buffer. Append() bytes as they
// arrive, then drain Next() until kNeedMore. The decoder enforces the
// payload-size cap up front — an oversized length prefix is rejected from
// its header alone, before any payload accumulates, so a malicious
// 4 GiB declaration cannot make the server buffer anything.
class FrameDecoder {
 public:
  enum class Status {
    kFrame,     // *frame holds the next complete frame
    kNeedMore,  // buffer has no complete frame yet
    kTooLarge,  // declared payload exceeds max_payload (fatal)
    kBadType,   // unknown frame type byte (fatal)
  };

  explicit FrameDecoder(size_t max_payload) : max_payload_(max_payload) {}

  void Append(std::string_view bytes);
  Status Next(Frame* frame);

  // Bytes buffered and not yet returned as frames.
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  size_t max_payload_;
  std::string buf_;
  size_t pos_ = 0;  // parse cursor; buf_ compacts when fully drained
};

// Typed overload/lifecycle verdicts carried by kShed frames.
enum class ShedReason : uint8_t {
  kMaxConnections,  // admission: connection high-watermark tripped
  kMaxStreams,      // admission: concurrent-stream high-watermark tripped
  kPoolSaturated,   // admission: this batch's session pool is at capacity
  kDraining,        // server is draining; no new work accepted
  kDrainDeadline,   // drain deadline expired with the stream in flight
  kIdleTimeout,     // no bytes read for idle_timeout (slow-loris guard)
  kWriteTimeout,    // peer stopped reading and the write stalled
};

const char* ShedReasonName(ShedReason reason);
bool ParseShedReason(std::string_view payload, ShedReason* reason);
std::string EncodeShed(ShedReason reason);

// --- kRegister payload -----------------------------------------------------

struct RegisterRequest {
  std::string alphabet;  // tag letters, e.g. "abcdef"
  StreamFormat format = StreamFormat::kCompactMarkup;
  // Client-side stream limits; merged with the server's defaults via
  // StreamLimits::Merged (clients can only tighten). max_pending_matches
  // bounds the per-stream span buffer when `matches` is on.
  StreamLimits limits;
  std::vector<std::string> queries;  // XPath texts, one per batch member
  // Opt into streamed MatchEvents: the server interleaves kMatches frames
  // with the document's kData acknowledgment-free flow, each record at its
  // earliest certain byte. Counts-only clients leave this off and the
  // result path stays byte-identical to the pre-match-event protocol.
  bool matches = false;
};

std::string EncodeRegister(const RegisterRequest& request);
// False on malformed payloads, with a one-line reason in *error.
bool ParseRegister(std::string_view payload, RegisterRequest* request,
                   std::string* error);

// --- kRegistered payload ----------------------------------------------------

struct RegisteredInfo {
  int num_queries = 0;
  int num_slots = 0;      // unique queries after canonicalization
  std::string tier;       // MultiTierName / EvaluatorKindName verdict
};

std::string EncodeRegistered(const RegisteredInfo& info);
bool ParseRegistered(std::string_view payload, RegisteredInfo* info);

// --- kError payload ----------------------------------------------------------

// Structured error verdict: stream errors carry the StreamErrorCode name
// and coordinates; protocol-level rejections use stable lowercase codes
// ("frame_too_large", "bad_frame", "not_registered", "bad_register",
// "bad_limits", "unexpected_frame").
struct ErrorInfo {
  std::string code;
  int64_t offset = -1;
  int64_t depth = 0;
  std::string message;
};

std::string EncodeErrorInfo(const ErrorInfo& info);
bool ParseErrorInfo(std::string_view payload, ErrorInfo* info);

// The ErrorInfo for a streaming verdict; `alphabet` may be null.
ErrorInfo StreamErrorInfo(const StreamError& error, const Alphabet* alphabet);

// --- kCounts payload ---------------------------------------------------------

std::string EncodeCounts(const std::vector<int64_t>& counts);
bool ParseCounts(std::string_view payload, std::vector<int64_t>* counts);

// --- kMatches payload --------------------------------------------------------

// One sink callback on the wire, in arrival order:
//   m <query> <start> <certainty>            OnMatch (span end pending)
//   c <query> <start> <end> <certainty>      OnSpanClose (end -1: truncated)
// Offsets are document byte offsets, identical to what an offline
// CollectingSink over the same bytes reports — the wire adds framing, not
// semantics.
struct MatchWireRecord {
  bool close = false;  // false: OnMatch; true: OnSpanClose
  MatchEvent event;

  friend bool operator==(const MatchWireRecord&,
                         const MatchWireRecord&) = default;
};

std::string EncodeMatches(const std::vector<MatchWireRecord>& records);
bool ParseMatches(std::string_view payload,
                  std::vector<MatchWireRecord>* records);

// MatchSink that buffers the interleaved callback sequence as wire
// records, for incremental kMatches flushes: the serving layer installs
// one per leased stream and Take()s it after every fed chunk.
class MatchWireBuffer : public MatchSink {
 public:
  void OnMatch(const MatchEvent& event) override {
    records_.push_back({/*close=*/false, event});
  }
  void OnSpanClose(const MatchEvent& event) override {
    records_.push_back({/*close=*/true, event});
  }

  bool empty() const { return records_.empty(); }
  std::vector<MatchWireRecord> Take() {
    std::vector<MatchWireRecord> taken = std::move(records_);
    records_.clear();
    return taken;
  }
  void Reset() { records_.clear(); }

 private:
  std::vector<MatchWireRecord> records_;
};

}  // namespace sst

#endif  // SST_SERVER_PROTOCOL_H_
