#include "server/admission.h"

namespace sst {

const char* ServerLimits::Validate() const {
  if (max_connections < 1) return "max_connections must be positive";
  if (max_streams < 1) return "max_streams must be positive";
  if (max_streams_per_batch < 1) {
    return "max_streams_per_batch must be positive";
  }
  if (max_frame_payload < 1) return "max_frame_payload must be positive";
  if (max_queries_per_batch < 1) {
    return "max_queries_per_batch must be positive";
  }
  if (max_output_buffer < 1) return "max_output_buffer must be positive";
  if (resume_output_buffer > max_output_buffer) {
    return "resume_output_buffer must not exceed max_output_buffer "
           "(reads would never resume)";
  }
  if (idle_timeout_ms < 1) return "idle_timeout_ms must be positive";
  if (write_timeout_ms < 1) return "write_timeout_ms must be positive";
  if (drain_deadline_ms < 0) return "drain_deadline_ms must be non-negative";
  return stream.Validate();
}

std::optional<ShedReason> AdmissionController::AdmitConnection() const {
  if (state_->draining.load(std::memory_order_relaxed)) {
    return ShedReason::kDraining;
  }
  if (state_->active_connections.load(std::memory_order_relaxed) >=
      limits_.max_connections) {
    return ShedReason::kMaxConnections;
  }
  return std::nullopt;
}

std::optional<ShedReason> AdmissionController::AdmitStream(
    int64_t batch_outstanding) const {
  if (state_->draining.load(std::memory_order_relaxed)) {
    return ShedReason::kDraining;
  }
  if (state_->active_streams.load(std::memory_order_relaxed) >=
      limits_.max_streams) {
    return ShedReason::kMaxStreams;
  }
  if (batch_outstanding >= limits_.max_streams_per_batch) {
    return ShedReason::kPoolSaturated;
  }
  return std::nullopt;
}

}  // namespace sst
