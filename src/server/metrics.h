#ifndef SST_SERVER_METRICS_H_
#define SST_SERVER_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "engine/plan_cache.h"
#include "engine/session.h"

namespace sst {

// Monotonic serving counters, one instance per server, touched lock-free
// from the acceptor and every worker. Gauges (active connections/streams)
// live in AdmissionState; everything here only ever increments.
struct ServerCounters {
  std::atomic<int64_t> connections_accepted{0};
  std::atomic<int64_t> connections_closed{0};
  std::atomic<int64_t> connections_peak{0};

  std::atomic<int64_t> streams_started{0};
  std::atomic<int64_t> streams_completed{0};  // kCounts delivered
  std::atomic<int64_t> streams_failed{0};     // kError verdict delivered
  std::atomic<int64_t> streams_peak{0};

  // Typed rejections, by ShedReason family.
  std::atomic<int64_t> sheds_connection{0};  // at accept
  std::atomic<int64_t> sheds_stream{0};      // at document start
  std::atomic<int64_t> idle_timeouts{0};
  std::atomic<int64_t> write_timeouts{0};

  std::atomic<int64_t> disconnects_mid_stream{0};
  std::atomic<int64_t> protocol_errors{0};
  std::atomic<int64_t> backpressure_pauses{0};

  // Match-event pipeline (matches=1 registrations): MatchEvents shipped in
  // kMatches frames, and the high-watermark of any one stream's pending
  // span buffer (the max_pending_matches-bounded emission buffer).
  std::atomic<int64_t> matches_emitted{0};
  std::atomic<int64_t> match_buffer_peak{0};

  // Stack-tier observability (kStackBaseline registrations): the deepest
  // evaluation stack any one stream reached, and closes tolerated with an
  // empty stack (unbalanced machine-level streams). Both stay 0 while
  // every registered plan runs on a stackless tier — which makes the pair
  // the serving-layer witness of the paper's O(1)-configuration claim.
  std::atomic<int64_t> stack_depth_peak{0};
  std::atomic<int64_t> underflow_closes{0};

  std::atomic<int64_t> drain_completed_streams{0};  // finished during drain
  std::atomic<int64_t> drain_forced_closes{0};      // kShed(drain_deadline)

  std::atomic<int64_t> bytes_in{0};
  std::atomic<int64_t> bytes_out{0};
  std::atomic<int64_t> frames_in{0};
  std::atomic<int64_t> frames_out{0};

  // Raises `peak` to at least `value` (monotonic CAS).
  static void RaisePeak(std::atomic<int64_t>* peak, int64_t value) {
    int64_t seen = peak->load(std::memory_order_relaxed);
    while (seen < value &&
           !peak->compare_exchange_weak(seen, value,
                                        std::memory_order_relaxed)) {
    }
  }
};

// Point-in-time snapshot of everything the server exports: its own
// counters plus the engine-layer observability it aggregates (PlanCache
// hit/miss/coalesced, pooled-session occupancy across every registered
// batch). Served as plaintext over the wire (kMetrics -> kMetricsText)
// and returned by QueryServer::stats().
struct ServerStats {
  // Gauges.
  int64_t active_connections = 0;
  int64_t active_streams = 0;
  bool draining = false;

  // Counters (see ServerCounters).
  int64_t connections_accepted = 0;
  int64_t connections_closed = 0;
  int64_t connections_peak = 0;
  int64_t streams_started = 0;
  int64_t streams_completed = 0;
  int64_t streams_failed = 0;
  int64_t streams_peak = 0;
  int64_t sheds_connection = 0;
  int64_t sheds_stream = 0;
  int64_t idle_timeouts = 0;
  int64_t write_timeouts = 0;
  int64_t disconnects_mid_stream = 0;
  int64_t protocol_errors = 0;
  int64_t backpressure_pauses = 0;
  int64_t matches_emitted = 0;
  int64_t match_buffer_peak = 0;
  int64_t stack_depth_peak = 0;
  int64_t underflow_closes = 0;
  int64_t drain_completed_streams = 0;
  int64_t drain_forced_closes = 0;
  int64_t bytes_in = 0;
  int64_t bytes_out = 0;
  int64_t frames_in = 0;
  int64_t frames_out = 0;

  // Engine layer.
  PlanCache::Stats cache;
  int64_t batches_registered = 0;  // distinct batch pools
  SessionPool::Stats pool;         // summed across every batch pool
};

// Fills the counter section of a snapshot (gauges and engine stats are the
// server's to add).
void SnapshotCounters(const ServerCounters& counters, ServerStats* stats);

// Plaintext rendering, one `name value` line per counter — the payload of
// kMetricsText frames. Stable names; consumers scrape by line prefix.
std::string RenderMetrics(const ServerStats& stats);

}  // namespace sst

#endif  // SST_SERVER_METRICS_H_
