#include "server/event_loop.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <utility>

#include "base/check.h"

namespace sst {

namespace {

void SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  SST_CHECK(flags >= 0);
  SST_CHECK(fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

}  // namespace

EventLoop::EventLoop() {
  SST_CHECK(pipe(wake_pipe_) == 0);
  SetNonBlocking(wake_pipe_[0]);
  SetNonBlocking(wake_pipe_[1]);
}

EventLoop::~EventLoop() {
  close(wake_pipe_[0]);
  close(wake_pipe_[1]);
}

int64_t EventLoop::NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void EventLoop::Add(int fd, Handler* handler, bool want_read,
                    bool want_write) {
  SST_CHECK(handler != nullptr);
  auto [it, inserted] = entries_.emplace(fd, Entry{});
  SST_CHECK_MSG(inserted, "fd already registered with this loop");
  it->second.handler = handler;
  it->second.want_read = want_read;
  it->second.want_write = want_write;
}

void EventLoop::SetWants(int fd, bool want_read, bool want_write) {
  auto it = entries_.find(fd);
  SST_CHECK(it != entries_.end());
  it->second.want_read = want_read;
  it->second.want_write = want_write;
}

void EventLoop::SetDeadline(int fd, int64_t deadline_ms) {
  auto it = entries_.find(fd);
  SST_CHECK(it != entries_.end());
  it->second.deadline_ms = deadline_ms;
}

void EventLoop::Remove(int fd) { entries_.erase(fd); }

void EventLoop::RunAt(int64_t when_ms, std::function<void()> fn) {
  timers_.push_back(Timer{when_ms, std::move(fn)});
}

void EventLoop::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    posted_.push_back(std::move(task));
  }
  Wake();
}

void EventLoop::RequestStop() {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    stop_posted_ = true;
  }
  Wake();
}

void EventLoop::Wake() {
  char byte = 'w';
  // A full pipe already guarantees a pending wakeup; EAGAIN is fine.
  ssize_t ignored = write(wake_pipe_[1], &byte, 1);
  (void)ignored;
}

void EventLoop::DrainWakePipe() {
  char buf[64];
  while (read(wake_pipe_[0], buf, sizeof buf) > 0) {
  }
}

int64_t EventLoop::NextTimeoutMs(int64_t now_ms) const {
  int64_t next = -1;  // -1: poll blocks indefinitely
  for (const auto& [fd, entry] : entries_) {
    if (entry.deadline_ms == kNoDeadline) continue;
    int64_t wait = std::max<int64_t>(0, entry.deadline_ms - now_ms);
    if (next < 0 || wait < next) next = wait;
  }
  for (const Timer& timer : timers_) {
    int64_t wait = std::max<int64_t>(0, timer.when_ms - now_ms);
    if (next < 0 || wait < next) next = wait;
  }
  return next;
}

void EventLoop::Run() {
  stop_ = false;
  std::vector<pollfd> pollfds_;  // scratch, rebuilt per iteration
  while (true) {
    // Posted tasks first: adoption of new connections, drain commands.
    std::vector<std::function<void()>> tasks;
    {
      std::lock_guard<std::mutex> lock(post_mu_);
      tasks.swap(posted_);
      if (stop_posted_) {
        stop_posted_ = false;
        stop_ = true;
      }
    }
    for (auto& task : tasks) task();
    if (stop_) return;

    int64_t now = NowMs();
    pollfds_.clear();
    pollfds_.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    for (const auto& [fd, entry] : entries_) {
      short events = 0;
      if (entry.want_read) events |= POLLIN;
      if (entry.want_write) events |= POLLOUT;
      pollfds_.push_back(pollfd{fd, events, 0});
    }

    int64_t timeout = NextTimeoutMs(now);
    int ready = poll(pollfds_.data(), pollfds_.size(),
                     timeout > static_cast<int64_t>(INT32_MAX)
                         ? INT32_MAX
                         : static_cast<int>(timeout));
    if (ready < 0 && errno != EINTR) SST_CHECK_MSG(false, "poll failed");

    DrainWakePipe();

    // Dispatch readiness. Handlers may Remove() themselves (or others)
    // mid-dispatch, so re-validate each fd against the registry and
    // re-read its handler every time.
    for (size_t i = 1; i < pollfds_.size(); ++i) {
      const pollfd& pfd = pollfds_[i];
      if (pfd.revents == 0) continue;
      auto it = entries_.find(pfd.fd);
      if (it == entries_.end()) continue;
      if (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) {
        it->second.handler->OnError(pfd.fd);
        continue;
      }
      if (pfd.revents & POLLIN) {
        it->second.handler->OnReadable(pfd.fd);
        it = entries_.find(pfd.fd);
        if (it == entries_.end()) continue;
      }
      if (pfd.revents & POLLOUT) it->second.handler->OnWritable(pfd.fd);
    }

    // Expired fd deadlines. Collect first: OnDeadline typically closes
    // the connection and mutates the registry.
    now = NowMs();
    std::vector<int> expired;
    for (const auto& [fd, entry] : entries_) {
      if (entry.deadline_ms != kNoDeadline && entry.deadline_ms <= now) {
        expired.push_back(fd);
      }
    }
    for (int fd : expired) {
      auto it = entries_.find(fd);
      if (it == entries_.end()) continue;
      if (it->second.deadline_ms == kNoDeadline ||
          it->second.deadline_ms > now) {
        continue;  // re-armed during this dispatch round
      }
      it->second.deadline_ms = kNoDeadline;
      it->second.handler->OnDeadline(fd, now);
    }

    // One-shot timers.
    if (!timers_.empty()) {
      std::vector<Timer> due;
      for (size_t i = 0; i < timers_.size();) {
        if (timers_[i].when_ms <= now) {
          due.push_back(std::move(timers_[i]));
          timers_[i] = std::move(timers_.back());
          timers_.pop_back();
        } else {
          ++i;
        }
      }
      for (Timer& timer : due) timer.fn();
    }
  }
}

}  // namespace sst
