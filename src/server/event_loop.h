#ifndef SST_SERVER_EVENT_LOOP_H_
#define SST_SERVER_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace sst {

// A poll(2)-driven single-threaded reactor: the execution substrate of one
// server worker (and of the acceptor). Everything except Post() and
// RequestStop() must be called from the loop's own thread; cross-thread
// work arrives as posted tasks through a self-pipe wakeup.
//
// Readiness is level-triggered. Each registered fd carries a handler, its
// read/write interest (the connection layer toggles read interest for
// backpressure), and an optional absolute deadline in loop-monotonic
// milliseconds — the loop's poll timeout is the nearest armed deadline, so
// idle/write timeouts fire without any background timer thread. One-shot
// whole-loop timers (RunAt) serve the drain deadline.
//
// The pollfd array is rebuilt per iteration from the registry. At the
// serving layer's scale (thousands of connections, each waking rarely)
// the rebuild is noise next to the byte-scanning work the wakeups
// trigger; if profiles ever disagree, the registry is the one place an
// epoll backend would slot in.
class EventLoop {
 public:
  class Handler {
   public:
    virtual ~Handler() = default;
    virtual void OnReadable(int fd) = 0;
    virtual void OnWritable(int fd) = 0;
    // POLLERR / POLLHUP / POLLNVAL. Default: treat as readable so the
    // handler observes EOF/ECONNRESET through its normal read path.
    virtual void OnError(int fd) { OnReadable(fd); }
    // The fd's armed deadline expired (it is cleared before the call).
    virtual void OnDeadline(int fd, int64_t now_ms) = 0;
  };

  static constexpr int64_t kNoDeadline = 0;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Monotonic milliseconds; the time base of all deadlines.
  static int64_t NowMs();

  // --- Loop-thread interface ---------------------------------------------
  void Add(int fd, Handler* handler, bool want_read, bool want_write);
  void SetWants(int fd, bool want_read, bool want_write);
  // Absolute deadline (NowMs() base); kNoDeadline disarms.
  void SetDeadline(int fd, int64_t deadline_ms);
  void Remove(int fd);
  bool Contains(int fd) const { return entries_.count(fd) != 0; }
  size_t size() const { return entries_.size(); }

  // One-shot timer: run `fn` once now_ms >= when_ms.
  void RunAt(int64_t when_ms, std::function<void()> fn);

  // Runs until RequestStop(). Dispatch order per iteration: posted tasks,
  // fd readiness, expired deadlines and timers.
  void Run();

  // --- Any-thread interface ------------------------------------------------
  // Enqueues a task onto the loop thread and wakes it.
  void Post(std::function<void()> task);
  void RequestStop();

 private:
  struct Entry {
    Handler* handler = nullptr;
    bool want_read = false;
    bool want_write = false;
    int64_t deadline_ms = kNoDeadline;
  };
  struct Timer {
    int64_t when_ms = 0;
    std::function<void()> fn;
  };

  void Wake();
  void DrainWakePipe();
  int64_t NextTimeoutMs(int64_t now_ms) const;

  std::unordered_map<int, Entry> entries_;
  std::vector<Timer> timers_;

  int wake_pipe_[2] = {-1, -1};
  bool stop_ = false;

  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_;
  bool stop_posted_ = false;
};

}  // namespace sst

#endif  // SST_SERVER_EVENT_LOOP_H_
