#include "server/protocol.h"

#include <cstring>

namespace sst {

namespace {

// Little-endian uint32, independent of host byte order.
void PutU32(uint32_t value, std::string* out) {
  out->push_back(static_cast<char>(value & 0xff));
  out->push_back(static_cast<char>((value >> 8) & 0xff));
  out->push_back(static_cast<char>((value >> 16) & 0xff));
  out->push_back(static_cast<char>((value >> 24) & 0xff));
}

uint32_t GetU32(const char* p) {
  const unsigned char* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
}

// Iterates `key=value` lines; returns false on the first line without '='.
template <typename Fn>
bool ForEachLine(std::string_view payload, Fn&& fn) {
  size_t start = 0;
  while (start < payload.size()) {
    size_t end = payload.find('\n', start);
    if (end == std::string_view::npos) end = payload.size();
    std::string_view line = payload.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    size_t eq = line.find('=');
    if (eq == std::string_view::npos) return false;
    if (!fn(line.substr(0, eq), line.substr(eq + 1))) return false;
  }
  return true;
}

bool ParseInt64(std::string_view text, int64_t* value) {
  if (text.empty() || text.size() > 19) return false;
  int64_t parsed = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    parsed = parsed * 10 + (c - '0');
  }
  *value = parsed;
  return true;
}

void AppendKeyValue(std::string_view key, std::string_view value,
                    std::string* out) {
  out->append(key);
  out->push_back('=');
  out->append(value);
  out->push_back('\n');
}

void AppendKeyValue(std::string_view key, int64_t value, std::string* out) {
  AppendKeyValue(key, std::to_string(value), out);
}

const char* FormatName(StreamFormat format) {
  switch (format) {
    case StreamFormat::kCompactMarkup:
      return "markup";
    case StreamFormat::kXmlLite:
      return "xml";
    case StreamFormat::kCompactTerm:
      return "term";
  }
  return "markup";
}

bool ParseFormat(std::string_view name, StreamFormat* format) {
  if (name == "markup") {
    *format = StreamFormat::kCompactMarkup;
  } else if (name == "xml") {
    *format = StreamFormat::kXmlLite;
  } else if (name == "term") {
    *format = StreamFormat::kCompactTerm;
  } else {
    return false;
  }
  return true;
}

}  // namespace

bool IsKnownFrameType(uint8_t byte) {
  switch (static_cast<FrameType>(byte)) {
    case FrameType::kRegister:
    case FrameType::kData:
    case FrameType::kFinish:
    case FrameType::kMetrics:
    case FrameType::kGoodbye:
    case FrameType::kRegistered:
    case FrameType::kCounts:
    case FrameType::kError:
    case FrameType::kShed:
    case FrameType::kMetricsText:
    case FrameType::kMatches:
      return true;
  }
  return false;
}

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kRegister:
      return "kRegister";
    case FrameType::kData:
      return "kData";
    case FrameType::kFinish:
      return "kFinish";
    case FrameType::kMetrics:
      return "kMetrics";
    case FrameType::kGoodbye:
      return "kGoodbye";
    case FrameType::kRegistered:
      return "kRegistered";
    case FrameType::kCounts:
      return "kCounts";
    case FrameType::kError:
      return "kError";
    case FrameType::kShed:
      return "kShed";
    case FrameType::kMetricsText:
      return "kMetricsText";
    case FrameType::kMatches:
      return "kMatches";
  }
  return "unknown";
}

void AppendFrame(FrameType type, std::string_view payload, std::string* out) {
  out->push_back(static_cast<char>(type));
  PutU32(static_cast<uint32_t>(payload.size()), out);
  out->append(payload);
}

void FrameDecoder::Append(std::string_view bytes) {
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  buf_.append(bytes);
}

FrameDecoder::Status FrameDecoder::Next(Frame* frame) {
  if (buf_.size() - pos_ < kFrameHeaderBytes) return Status::kNeedMore;
  uint8_t type_byte = static_cast<uint8_t>(buf_[pos_]);
  if (!IsKnownFrameType(type_byte)) return Status::kBadType;
  uint32_t length = GetU32(buf_.data() + pos_ + 1);
  if (length > max_payload_) return Status::kTooLarge;
  if (buf_.size() - pos_ - kFrameHeaderBytes < length) return Status::kNeedMore;
  frame->type = static_cast<FrameType>(type_byte);
  frame->payload.assign(buf_, pos_ + kFrameHeaderBytes, length);
  pos_ += kFrameHeaderBytes + length;
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  return Status::kFrame;
}

const char* ShedReasonName(ShedReason reason) {
  switch (reason) {
    case ShedReason::kMaxConnections:
      return "max_connections";
    case ShedReason::kMaxStreams:
      return "max_streams";
    case ShedReason::kPoolSaturated:
      return "pool_saturated";
    case ShedReason::kDraining:
      return "draining";
    case ShedReason::kDrainDeadline:
      return "drain_deadline";
    case ShedReason::kIdleTimeout:
      return "idle_timeout";
    case ShedReason::kWriteTimeout:
      return "write_timeout";
  }
  return "unknown";
}

bool ParseShedReason(std::string_view payload, ShedReason* reason) {
  size_t eq = payload.find('=');
  std::string_view name =
      eq == std::string_view::npos ? payload : payload.substr(eq + 1);
  size_t nl = name.find('\n');
  if (nl != std::string_view::npos) name = name.substr(0, nl);
  for (ShedReason candidate :
       {ShedReason::kMaxConnections, ShedReason::kMaxStreams,
        ShedReason::kPoolSaturated, ShedReason::kDraining,
        ShedReason::kDrainDeadline, ShedReason::kIdleTimeout,
        ShedReason::kWriteTimeout}) {
    if (name == ShedReasonName(candidate)) {
      *reason = candidate;
      return true;
    }
  }
  return false;
}

std::string EncodeShed(ShedReason reason) {
  std::string payload;
  AppendKeyValue("reason", ShedReasonName(reason), &payload);
  return payload;
}

std::string EncodeRegister(const RegisterRequest& request) {
  std::string payload;
  AppendKeyValue("alphabet", request.alphabet, &payload);
  AppendKeyValue("format", FormatName(request.format), &payload);
  if (request.limits.max_depth != StreamLimits::kUnlimited) {
    AppendKeyValue("max_depth", request.limits.max_depth, &payload);
  }
  if (request.limits.max_document_bytes != StreamLimits::kUnlimited) {
    AppendKeyValue("max_document_bytes", request.limits.max_document_bytes,
                   &payload);
  }
  if (request.limits.max_events != StreamLimits::kUnlimited) {
    AppendKeyValue("max_events", request.limits.max_events, &payload);
  }
  if (request.limits.max_recovered_errors != StreamLimits::kUnlimited) {
    AppendKeyValue("max_recovered_errors",
                   request.limits.max_recovered_errors, &payload);
  }
  if (request.limits.max_pending_matches != StreamLimits::kUnlimited) {
    AppendKeyValue("max_pending_matches",
                   request.limits.max_pending_matches, &payload);
  }
  if (request.matches) {
    AppendKeyValue("matches", static_cast<int64_t>(1), &payload);
  }
  for (const std::string& query : request.queries) {
    AppendKeyValue("query", query, &payload);
  }
  return payload;
}

bool ParseRegister(std::string_view payload, RegisterRequest* request,
                   std::string* error) {
  *request = RegisterRequest{};
  bool ok = ForEachLine(payload, [&](std::string_view key,
                                     std::string_view value) {
    if (key == "alphabet") {
      request->alphabet.assign(value);
      return true;
    }
    if (key == "format") {
      if (!ParseFormat(value, &request->format)) {
        *error = "unknown format (expected markup|xml|term)";
        return false;
      }
      return true;
    }
    if (key == "query") {
      request->queries.emplace_back(value);
      return true;
    }
    if (key == "matches") {
      request->matches = value == "1";
      return true;
    }
    int64_t parsed = 0;
    if (key == "max_depth" || key == "max_document_bytes" ||
        key == "max_events" || key == "max_recovered_errors" ||
        key == "max_pending_matches") {
      if (!ParseInt64(value, &parsed)) {
        *error = std::string("non-numeric ") + std::string(key);
        return false;
      }
      if (key == "max_depth") request->limits.max_depth = parsed;
      if (key == "max_document_bytes") {
        request->limits.max_document_bytes = parsed;
      }
      if (key == "max_events") request->limits.max_events = parsed;
      if (key == "max_recovered_errors") {
        request->limits.max_recovered_errors = parsed;
      }
      if (key == "max_pending_matches") {
        request->limits.max_pending_matches = parsed;
      }
      return true;
    }
    *error = std::string("unknown register key: ") + std::string(key);
    return false;
  });
  if (!ok) {
    if (error->empty()) *error = "malformed register payload";
    return false;
  }
  if (request->alphabet.empty()) {
    *error = "register payload missing alphabet";
    return false;
  }
  if (request->queries.empty()) {
    *error = "register payload has no queries";
    return false;
  }
  return true;
}

std::string EncodeRegistered(const RegisteredInfo& info) {
  std::string payload;
  AppendKeyValue("queries", info.num_queries, &payload);
  AppendKeyValue("slots", info.num_slots, &payload);
  AppendKeyValue("tier", info.tier, &payload);
  return payload;
}

bool ParseRegistered(std::string_view payload, RegisteredInfo* info) {
  *info = RegisteredInfo{};
  return ForEachLine(payload,
                     [&](std::string_view key, std::string_view value) {
                       int64_t parsed = 0;
                       if (key == "queries" && ParseInt64(value, &parsed)) {
                         info->num_queries = static_cast<int>(parsed);
                       } else if (key == "slots" &&
                                  ParseInt64(value, &parsed)) {
                         info->num_slots = static_cast<int>(parsed);
                       } else if (key == "tier") {
                         info->tier.assign(value);
                       } else {
                         return false;
                       }
                       return true;
                     });
}

std::string EncodeErrorInfo(const ErrorInfo& info) {
  std::string payload;
  AppendKeyValue("code", info.code, &payload);
  AppendKeyValue("offset", info.offset, &payload);
  AppendKeyValue("depth", info.depth, &payload);
  AppendKeyValue("msg", info.message, &payload);
  return payload;
}

bool ParseErrorInfo(std::string_view payload, ErrorInfo* info) {
  *info = ErrorInfo{};
  return ForEachLine(
      payload, [&](std::string_view key, std::string_view value) {
        if (key == "code") {
          info->code.assign(value);
        } else if (key == "offset") {
          // Offsets may be -1 (no coordinate); handle the sign here since
          // ParseInt64 is unsigned-only.
          std::string_view digits = value;
          bool negative = !digits.empty() && digits[0] == '-';
          if (negative) digits.remove_prefix(1);
          int64_t parsed = 0;
          if (!ParseInt64(digits, &parsed)) return false;
          info->offset = negative ? -parsed : parsed;
        } else if (key == "depth") {
          int64_t parsed = 0;
          if (!ParseInt64(value, &parsed)) return false;
          info->depth = parsed;
        } else if (key == "msg") {
          info->message.assign(value);
        } else {
          return false;
        }
        return true;
      });
}

ErrorInfo StreamErrorInfo(const StreamError& error, const Alphabet* alphabet) {
  ErrorInfo info;
  info.code = StreamErrorCodeName(error.code);
  info.offset = error.offset;
  info.depth = error.depth;
  info.message = error.Render(alphabet);
  return info;
}

std::string EncodeCounts(const std::vector<int64_t>& counts) {
  std::string payload;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (i > 0) payload.push_back(' ');
    payload.append(std::to_string(counts[i]));
  }
  return payload;
}

bool ParseCounts(std::string_view payload, std::vector<int64_t>* counts) {
  counts->clear();
  size_t start = 0;
  while (start < payload.size()) {
    size_t end = payload.find(' ', start);
    if (end == std::string_view::npos) end = payload.size();
    int64_t value = 0;
    if (!ParseInt64(payload.substr(start, end - start), &value)) return false;
    counts->push_back(value);
    start = end + 1;
  }
  return true;
}

namespace {

// Signed decimal field; end_offset is -1 for truncated spans.
bool ParseSignedInt64(std::string_view text, int64_t* value) {
  bool negative = !text.empty() && text[0] == '-';
  if (negative) text.remove_prefix(1);
  int64_t parsed = 0;
  if (!ParseInt64(text, &parsed)) return false;
  *value = negative ? -parsed : parsed;
  return true;
}

// Splits `line` on single spaces into at most `max_fields` fields.
int SplitFields(std::string_view line, std::string_view* fields,
                int max_fields) {
  int count = 0;
  size_t start = 0;
  while (start <= line.size() && count < max_fields) {
    size_t end = line.find(' ', start);
    if (end == std::string_view::npos) end = line.size();
    fields[count++] = line.substr(start, end - start);
    if (end == line.size()) return count;
    start = end + 1;
  }
  return start <= line.size() ? -1 : count;  // -1: too many fields
}

}  // namespace

std::string EncodeMatches(const std::vector<MatchWireRecord>& records) {
  std::string payload;
  payload.reserve(records.size() * 16);
  for (const MatchWireRecord& record : records) {
    const MatchEvent& e = record.event;
    payload.push_back(record.close ? 'c' : 'm');
    payload.push_back(' ');
    payload.append(std::to_string(e.query_id));
    payload.push_back(' ');
    payload.append(std::to_string(e.start_offset));
    payload.push_back(' ');
    if (record.close) {
      payload.append(std::to_string(e.end_offset));
      payload.push_back(' ');
    }
    payload.append(std::to_string(e.certainty_offset));
    payload.push_back('\n');
  }
  return payload;
}

bool ParseMatches(std::string_view payload,
                  std::vector<MatchWireRecord>* records) {
  records->clear();
  size_t start = 0;
  while (start < payload.size()) {
    size_t end = payload.find('\n', start);
    if (end == std::string_view::npos) end = payload.size();
    std::string_view line = payload.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    std::string_view fields[5];
    int n = SplitFields(line, fields, 5);
    MatchWireRecord record;
    int64_t query = 0;
    if (fields[0] == "m" && n == 4) {
      record.close = false;
      if (!ParseInt64(fields[1], &query) ||
          !ParseSignedInt64(fields[2], &record.event.start_offset) ||
          !ParseSignedInt64(fields[3], &record.event.certainty_offset)) {
        return false;
      }
    } else if (fields[0] == "c" && n == 5) {
      record.close = true;
      if (!ParseInt64(fields[1], &query) ||
          !ParseSignedInt64(fields[2], &record.event.start_offset) ||
          !ParseSignedInt64(fields[3], &record.event.end_offset) ||
          !ParseSignedInt64(fields[4], &record.event.certainty_offset)) {
        return false;
      }
    } else {
      return false;
    }
    record.event.query_id = static_cast<int32_t>(query);
    records->push_back(record);
  }
  return true;
}

}  // namespace sst
