#include "base/thread_pool.h"

#include <algorithm>

namespace sst {

ThreadPool::ThreadPool(int num_threads) {
  int workers = std::max(0, num_threads - 1);
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int ThreadPool::HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with no work left
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

void ThreadPool::Run(int num_tasks, const std::function<void(int)>& task) {
  if (num_tasks <= 0) return;
  if (workers_.empty() || num_tasks == 1) {
    for (int i = 0; i < num_tasks; ++i) task(i);
    return;
  }
  // Per-batch completion state lives on this stack frame; every enqueued
  // job decrements `remaining` under the batch mutex before the frame can
  // unwind, and the final notify happens while that mutex is held, so the
  // condition variable outlives all signalers.
  struct Batch {
    std::mutex mu;
    std::condition_variable done;
    int remaining;
  } batch;
  batch.remaining = num_tasks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int i = 0; i < num_tasks; ++i) {
      queue_.emplace_back([&task, &batch, i] {
        task(i);
        std::lock_guard<std::mutex> lock(batch.mu);
        if (--batch.remaining == 0) batch.done.notify_all();
      });
    }
  }
  work_cv_.notify_all();
  // The caller is a lane too: drain jobs (possibly from an interleaved
  // batch — running those is harmless and keeps the queue moving).
  for (;;) {
    std::function<void()> job;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty()) break;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
  std::unique_lock<std::mutex> lock(batch.mu);
  batch.done.wait(lock, [&batch] { return batch.remaining == 0; });
}

}  // namespace sst
