#ifndef SST_BASE_CHECK_H_
#define SST_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Internal invariant checking. SST_CHECK is always on: the library's
// constructions rely on theorems whose preconditions we validate at
// construction time, and a silent invariant violation would produce wrong
// query answers rather than a crash.

#define SST_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "SST_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define SST_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "SST_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#endif  // SST_BASE_CHECK_H_
