#ifndef SST_BASE_RNG_H_
#define SST_BASE_RNG_H_

#include <cstdint>

namespace sst {

// Deterministic, seedable PRNG (xoshiro256** seeded via SplitMix64).
// Used by generators and property tests; determinism across platforms
// matters for reproducible experiments, so we do not use std::mt19937
// distributions (which are implementation-defined for e.g. uniform_int).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over the full 64-bit range.
  uint64_t NextU64();

  // Uniform over [0, bound); bound must be positive.
  uint64_t NextBelow(uint64_t bound);

  // Uniform over [lo, hi] inclusive; requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // True with probability p (clamped to [0, 1]).
  bool NextBool(double p = 0.5);

  // Uniform real in [0, 1).
  double NextDouble();

 private:
  uint64_t s_[4];
};

}  // namespace sst

#endif  // SST_BASE_RNG_H_
