#ifndef SST_BASE_POOLED_STACK_H_
#define SST_BASE_POOLED_STACK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "base/check.h"

namespace sst {

// A persistent pooled stack on refcounted chunked nodes — the tree-sitter
// stack idiom adapted to one linear stack with many live snapshots. Each
// node is a *chunk* holding up to kChunkCapacity values plus a pointer to
// the chunk below it, so
//   * Push/Pop away from a chunk boundary are index bumps into the top
//     chunk — the same cost profile as a std::vector — and the slab-backed
//     free list (which survives Clear()) is touched only every
//     kChunkCapacity levels, keeping steady-state streaming free of heap
//     traffic,
//   * a snapshot is O(1): retain the top chunk and record the live index —
//     the checkpoint machinery of incremental re-evaluation
//     (engine/incremental.h) keeps one retained snapshot per checkpoint
//     and shares every common chunk structurally,
//   * snapshots are never mutated: a push into a shared top chunk
//     copy-on-writes the live prefix (≤ kChunkCapacity-1 values, once per
//     checkpoint) into a fresh chunk and leaves the shared one to its
//     snapshots; pops only move the live index, which shared chunks
//     tolerate by construction,
//   * releasing a snapshot returns exactly the chunks no other snapshot
//     reaches, iteratively (a 10^6-deep chain must not recurse).
//
// Reference-counting discipline: `ref` counts incoming pointers to the
// chunk — the stack's head pointer, retained snapshots, and `prev` fields
// of other live chunks. A freshly pushed chain has every chunk at ref 1
// (its successor's prev, or the head pointer); divergence (copy-on-write,
// popping out of a shared chunk) adds the extra incoming edges explicitly.
//
// Not thread-safe; one PooledStack serves one evaluator.
template <typename T>
class PooledStack {
 public:
  // 28 values keep a chunk of word-sized T at two cache lines (8-byte
  // prev + 4-byte ref + 4-byte len + 112-byte payload = 128 bytes).
  static constexpr uint32_t kChunkCapacity = 28;

  struct Node {
    Node* prev = nullptr;
    uint32_t ref = 0;  // incoming pointers: head, snapshots, live prevs
    // Live value count, frozen when the chunk is covered by one above it
    // (the top chunk's count lives in the stack's top_len_ member, and a
    // snapshot records its own count — this field is not consulted for
    // either).
    uint32_t len = 0;
    T values[kChunkCapacity];
  };

  // O(1) view of one stack configuration: the top chunk plus how many of
  // its values are live. Taken with TakeSnapshot() (which retains the
  // chunk), restored with Restore(), dropped with Release().
  struct Snapshot {
    Node* head = nullptr;
    uint32_t top_len = 0;
  };

  // Free-list invariant: every chunk on the free list has ref == 1. Chunks
  // are only ever freed as sole owners (Pop's boundary path, ReleaseChain's
  // terminal case) and slab-fresh chunks are born with ref 1, so Push
  // never writes the refcount on the hot path.

  PooledStack() = default;
  PooledStack(const PooledStack&) = delete;
  PooledStack& operator=(const PooledStack&) = delete;
  // Slabs own every chunk, live or free; destruction needs no chain walk.
  ~PooledStack() = default;

  bool empty() const { return head_ == nullptr; }
  uint64_t size() const { return below_ + top_len_; }
  const T& top() const {
    SST_CHECK(head_ != nullptr);
    return head_->values[top_len_ - 1];
  }
  Node* head() const { return head_; }
  uint32_t top_len() const { return top_len_; }

  void Push(const T& value) {
    // Hot path: room in an exclusively owned top chunk — store + bump.
    // push_limit_ caches "kChunkCapacity if the top chunk is exclusively
    // ours, else 0", so the common case is one member compare with no
    // pointer chase through the chunk's refcount.
    if (top_len_ < push_limit_) {
      head_->values[top_len_++] = value;
      return;
    }
    PushSlow(value);
  }

  void Pop() {
    SST_CHECK(head_ != nullptr);
    // Hot path: the top chunk keeps at least one live value — index bump.
    // Shared chunks take this path too: pops never write values.
    if (top_len_ > 1) {
      --top_len_;
      return;
    }
    PopChunk();
  }

  // Releases the whole live chain into the free list; O(live chunks not
  // shared with snapshots). Slabs are kept, so the next document's pushes
  // allocate nothing.
  void Clear() {
    ReleaseChain(head_);
    head_ = nullptr;
    top_len_ = 0;
    below_ = 0;
    push_limit_ = 0;
  }

  // O(1) snapshot: retains the top chunk and records the live index. A
  // snapshot of the empty stack is {nullptr, 0} — valid and restorable.
  // The top chunk is shared from here on, so in-place pushes stop until
  // copy-on-write (or release of every snapshot) makes it exclusive again.
  Snapshot TakeSnapshot() {
    if (head_ != nullptr) {
      ++head_->ref;
      push_limit_ = 0;
    }
    return Snapshot{head_, top_len_};
  }

  // Re-roots the stack at `snap`, whose total chain length is `size` — the
  // caller recorded it when the snapshot was taken. The snapshot keeps its
  // own reference — it stays valid and can be restored again. Values the
  // snapshot can see were never overwritten (pushes into shared chunks
  // copy-on-write), so restoring is just repointing.
  void Restore(const Snapshot& snap, uint64_t size) {
    SST_CHECK(size == SnapshotSize(snap));
    if (snap.head != nullptr) ++snap.head->ref;
    ReleaseChain(head_);
    head_ = snap.head;
    top_len_ = snap.top_len;
    below_ = size - snap.top_len;
    push_limit_ = 0;  // the restored top chunk is shared with the snapshot
  }

  void Release(const Snapshot& snap) { ReleaseChain(snap.head); }

  // Drops one incoming edge on `node`, freeing into the pool and cascading
  // down the chain while chunks die. Iterative by construction.
  void ReleaseChain(Node* node) {
    while (node != nullptr) {
      if (node->ref > 1) {
        --node->ref;
        return;
      }
      Node* prev = node->prev;
      node->prev = free_;
      free_ = node;
      node = prev;
    }
  }

  // Total values reachable from the snapshot — O(chunks), i.e. O(depth /
  // kChunkCapacity). Owners that need the size in O(1) record it at
  // snapshot time (the evaluator's config words do).
  static uint64_t SnapshotSize(const Snapshot& snap) {
    uint64_t n = snap.top_len;
    for (const Node* node = snap.head; node != nullptr; node = node->prev) {
      if (node != snap.head) n += node->len;
    }
    return n;
  }

  // Value equality of the live stack against a snapshot, top-down.
  bool EqualsSnapshot(const Snapshot& snap) const {
    return ChainsEqual(head_, top_len_, snap.head, snap.top_len);
  }

  static bool SnapshotsEqual(const Snapshot& a, const Snapshot& b) {
    return ChainsEqual(a.head, a.top_len, b.head, b.top_len);
  }

  // Structural equality of two chains, top-down. Chains that share a tail
  // stop at the first common (chunk, index) position, so the cost is the
  // distance to the shared chunk, not the full depth — the convergence
  // test of incremental re-evaluation compares a freshly rescanned chain
  // against a pre-edit snapshot whose lower chunks are physically shared.
  // Callers that know both lengths (the evaluator's config carries one)
  // should reject unequal lengths first; this walk handles them correctly
  // but in O(shorter chain).
  static bool ChainsEqual(const Node* a, uint32_t alen, const Node* b,
                          uint32_t blen) {
    while (!(a == b && alen == blen)) {
      if (a == nullptr || b == nullptr) return false;
      if (!(a->values[alen - 1] == b->values[blen - 1])) return false;
      --alen;
      --blen;
      if (alen == 0) {
        a = a->prev;
        alen = (a != nullptr) ? a->len : 0;
      }
      if (blen == 0) {
        b = b->prev;
        blen = (b != nullptr) ? b->len : 0;
      }
    }
    return true;
  }

  // Allocation observability (tests assert steady-state reuse).
  size_t slabs() const { return slabs_.size(); }

 private:
  static constexpr size_t kSlabNodes = 1024;

  // The boundary paths stay out of line so the four-instruction hot
  // paths of Push/Pop inline cleanly into the evaluator's event handlers.

  // The top chunk emptied: descend to the one below (whose live count was
  // frozen in `len` when it was covered).
  __attribute__((noinline)) void PopChunk() {
    Node* dead = head_;
    head_ = dead->prev;
    if (head_ != nullptr) {
      top_len_ = head_->len;
      below_ -= head_->len;
    } else {
      top_len_ = 0;
    }
    if (dead->ref == 1) {
      // Sole incoming pointer was the head: the chunk dies here and its
      // prev edge hands the chunk below to the stack — no counter traffic.
      dead->prev = free_;
      free_ = dead;
    } else {
      // Snapshots still reach the chunk (and through it the tail); the
      // stack takes its own incoming edge on the new head.
      --dead->ref;
      if (head_ != nullptr) ++head_->ref;
    }
    push_limit_ =
        (head_ != nullptr && head_->ref == 1) ? kChunkCapacity : 0;
  }

  __attribute__((noinline)) void PushSlow(const T& value) {
    Node* head = head_;
    if (head != nullptr && top_len_ < kChunkCapacity) {
      if (head->ref == 1) {
        // The chunk regained exclusivity since push_limit_ was cached
        // (its snapshots were all released): push in place again.
        push_limit_ = kChunkCapacity;
        head->values[top_len_++] = value;
        return;
      }
      // Shared top chunk with room: copy-on-write the live prefix so the
      // snapshots that own it never see our writes. Runs once per
      // checkpoint, copying at most kChunkCapacity - 1 values.
      Node* fresh = Acquire();
      fresh->prev = head->prev;
      if (head->prev != nullptr) ++head->prev->ref;  // second chain in
      for (uint32_t i = 0; i < top_len_; ++i) {
        fresh->values[i] = head->values[i];
      }
      --head->ref;  // the head pointer moves off the shared chunk
      head_ = fresh;
      fresh->values[top_len_++] = value;
      push_limit_ = kChunkCapacity;
      return;
    }
    // Full top chunk (freeze its live count — for a shared full chunk this
    // rewrites the value it froze at, since shared chunks only ever lose
    // live values to pops and regrow through copy-on-write) or empty
    // stack: open a fresh chunk above.
    if (head != nullptr) {
      head->len = top_len_;
      below_ += top_len_;
    }
    Node* fresh = Acquire();  // arrives with ref == 1 (free-list invariant)
    fresh->prev = head;  // the head pointer's edge transfers to fresh
    fresh->values[0] = value;
    head_ = fresh;
    top_len_ = 1;
    push_limit_ = kChunkCapacity;
  }

  Node* Acquire() {
    if (free_ != nullptr) {
      Node* node = free_;
      free_ = node->prev;
      return node;
    }
    slabs_.push_back(std::make_unique<Node[]>(kSlabNodes));
    Node* slab = slabs_.back().get();
    for (size_t i = kSlabNodes - 1; i > 0; --i) {
      slab[i].ref = 1;  // free-list invariant
      slab[i].prev = free_;
      free_ = &slab[i];
    }
    slab[0].ref = 1;
    return &slab[0];
  }

  std::vector<std::unique_ptr<Node[]>> slabs_;
  Node* free_ = nullptr;
  Node* head_ = nullptr;
  uint32_t top_len_ = 0;  // live values in the head chunk (>= 1 when live)
  // In-place push bound for the head chunk: kChunkCapacity when the chunk
  // is exclusively the stack's, 0 when it is shared (or there is none) —
  // recomputed at every event that can change head ownership.
  uint32_t push_limit_ = 0;
  uint64_t below_ = 0;  // live values in the chunks beneath the head chunk
};

}  // namespace sst

#endif  // SST_BASE_POOLED_STACK_H_
