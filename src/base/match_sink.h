#ifndef SST_BASE_MATCH_SINK_H_
#define SST_BASE_MATCH_SINK_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace sst {

// One pre-selected node, reported as a byte span of the serialized input.
// The result model of earliest query answering: under pre-selection
// semantics (paper Section 2.3) a node's verdict is decided by the prefix
// ending at its opening tag, so the verdict is pushed the moment that
// prefix has been consumed — `certainty_offset`, the byte just past the
// opening token — while the node's *extent* (where its subtree ends) stays
// unknown until the matching close.
//
// Offsets are byte positions in the stream the scanner consumed:
//   start_offset      first byte of the node's opening token (the letter,
//                     the '<', or the term label byte)
//   end_offset        byte just past the node's closing token; -1 while
//                     the span is still pending, and -1 *permanently* when
//                     the stream failed or ended before the close arrived
//                     (a truncated span — reported, never dropped)
//   certainty_offset  byte just past the opening token: the provably
//                     earliest offset at which the match verdict is certain
//                     (no suffix can change it)
//
// query_id is the consumer-defined stream the event belongs to: 0 for
// single-query runs, the product-member index inside MultiTagDfaRunner,
// and the submission-order query index at the BatchSession/server surface.
struct MatchEvent {
  int32_t query_id = 0;
  int64_t start_offset = 0;
  int64_t end_offset = -1;
  int64_t certainty_offset = 0;

  friend bool operator==(const MatchEvent&, const MatchEvent&) = default;
};

// Consumer of streamed match events. Two callbacks, two moments:
//
//   OnMatch      fired at the earliest certain byte, in document order of
//                opening tags. event.end_offset is -1 (span still open).
//   OnSpanClose  fired when the span resolves: end_offset is set to the
//                byte past the closing token, or stays -1 if the document
//                failed / was truncated with the span open. Nested spans
//                close inner-first (close-tag order).
//
// Both sequences are chunking-invariant and execution-tier-invariant:
// feeding the same bytes under any split schedule, on the fused byte
// table, the fused DRA table, or the generic machine tier, produces the
// same events with the same offsets in the same order.
class MatchSink {
 public:
  virtual ~MatchSink() = default;

  virtual void OnMatch(const MatchEvent& event) = 0;
  virtual void OnSpanClose(const MatchEvent& event) = 0;

  // Sinks that only consume verdicts (OnMatch) return false so the
  // recorder skips span tracking altogether: no pending buffer, no
  // OnSpanClose callbacks, and the close path of the scan loop stays a
  // single never-taken branch. Sampled once, at set_sink time.
  virtual bool wants_spans() const { return true; }
};

// The parity anchor: counts OnMatch events per query and nothing else, so
// totals are byte-identical to the count-at-Finish model it replaces
// (StreamingSelector::matches(), BatchSession::query_matches()).
class CountingSink : public MatchSink {
 public:
  // `num_queries` sizes the per-query counters (query ids beyond it are
  // clamped into the last bucket only in the sense that they are ignored;
  // callers size it from the plan).
  explicit CountingSink(int num_queries = 1)
      : counts_(static_cast<size_t>(num_queries), 0) {}

  void OnMatch(const MatchEvent& event) override {
    if (event.query_id >= 0 &&
        static_cast<size_t>(event.query_id) < counts_.size()) {
      ++counts_[static_cast<size_t>(event.query_id)];
    }
    ++total_;
  }
  void OnSpanClose(const MatchEvent&) override {}
  bool wants_spans() const override { return false; }

  const std::vector<int64_t>& counts() const { return counts_; }
  int64_t total() const { return total_; }

  void Reset() {
    counts_.assign(counts_.size(), 0);
    total_ = 0;
  }

 private:
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

// Records both event sequences verbatim: matches() in emission (document)
// order with end_offset as known at emission time (-1), spans() in span
// resolution order with the final end_offset (or -1 for truncated spans).
// The differential tests compare whole logs across chunkings and tiers.
class CollectingSink : public MatchSink {
 public:
  void OnMatch(const MatchEvent& event) override {
    matches_.push_back(event);
  }
  void OnSpanClose(const MatchEvent& event) override {
    spans_.push_back(event);
  }

  const std::vector<MatchEvent>& matches() const { return matches_; }
  const std::vector<MatchEvent>& spans() const { return spans_; }

  void Reset() {
    matches_.clear();
    spans_.clear();
  }

 private:
  std::vector<MatchEvent> matches_;
  std::vector<MatchEvent> spans_;
};

// The bounded emission buffer between a runner and a MatchSink: holds the
// spans whose end offset is not yet known. Because pre-selection decides
// verdicts at opening tags, every pending span belongs to a node on the
// current root-to-cursor path — the buffer is a stack ordered by depth,
// at most (arity x depth) entries, and span completion is a pop.
//
// The buffer is bounded by `max_pending` (StreamLimits::
// max_pending_matches). On overflow the new event is still emitted at its
// certain offset but its span closes immediately as truncated
// (end_offset -1) instead of being buffered — deterministic, counted in
// overflowed(), and independent of chunking. FlushTruncated() reports
// every still-pending span the same way when the stream dies.
class MatchRecorder {
 public:
  static constexpr int64_t kUnlimited = std::numeric_limits<int64_t>::max();

  void set_sink(MatchSink* sink) {
    sink_ = sink;
    wants_spans_ = sink != nullptr && sink->wants_spans();
  }
  void set_max_pending(int64_t max_pending) { max_pending_ = max_pending; }

  bool active() const { return sink_ != nullptr; }

  // Non-null when the installed sink is verdict-only (wants_spans()
  // false): hot loops may then build the event themselves, call
  // OnMatch on the returned sink directly, and account it with
  // CountEmitted() — one virtual call, no span bookkeeping.
  MatchSink* verdict_only_sink() const {
    return wants_spans_ ? nullptr : sink_;
  }
  void CountEmitted() { ++emitted_; }

  // A node at nesting depth `depth` (1-based, sampled just after its open)
  // matched query `query_id`; fires OnMatch and buffers the pending span.
  void OnMatch(int32_t query_id, int64_t depth, int64_t start,
               int64_t certainty) {
    MatchEvent event;
    event.query_id = query_id;
    event.start_offset = start;
    event.end_offset = -1;
    event.certainty_offset = certainty;
    sink_->OnMatch(event);
    ++emitted_;
    if (!wants_spans_) return;  // verdict-only sink: nothing to buffer
    if (static_cast<int64_t>(pending_.size()) >= max_pending_) {
      ++overflowed_;
      sink_->OnSpanClose(event);  // end_offset stays -1: truncated
      return;
    }
    pending_.push_back(Pending{depth, event});
    if (static_cast<int64_t>(pending_.size()) > peak_pending_) {
      peak_pending_ = static_cast<int64_t>(pending_.size());
    }
  }

  // The node at depth `depth` is closing; `end` is the byte just past its
  // closing token. Completes every pending span of that node (one per
  // matching query; deeper spans already closed, shallower ones stay).
  void OnClose(int64_t depth, int64_t end) {
    while (!pending_.empty() && pending_.back().depth >= depth) {
      MatchEvent event = pending_.back().event;
      pending_.pop_back();
      event.end_offset = end;
      sink_->OnSpanClose(event);
    }
  }

  // Fatal error or end of input with spans still open: report every
  // pending span as truncated (end_offset -1), outermost last.
  void FlushTruncated() {
    while (!pending_.empty()) {
      MatchEvent event = pending_.back().event;
      pending_.pop_back();
      sink_->OnSpanClose(event);  // end_offset is already -1
    }
  }

  void Reset() {
    pending_.clear();
    emitted_ = 0;
    overflowed_ = 0;
    peak_pending_ = 0;
  }

  int64_t pending() const { return static_cast<int64_t>(pending_.size()); }
  int64_t peak_pending() const { return peak_pending_; }
  int64_t emitted() const { return emitted_; }
  int64_t overflowed() const { return overflowed_; }

 private:
  struct Pending {
    int64_t depth;
    MatchEvent event;
  };

  MatchSink* sink_ = nullptr;
  bool wants_spans_ = true;
  int64_t max_pending_ = kUnlimited;
  std::vector<Pending> pending_;
  int64_t emitted_ = 0;
  int64_t overflowed_ = 0;
  int64_t peak_pending_ = 0;
};

}  // namespace sst

#endif  // SST_BASE_MATCH_SINK_H_
