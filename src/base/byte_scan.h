#ifndef SST_BASE_BYTE_SCAN_H_
#define SST_BASE_BYTE_SCAN_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <utility>

namespace sst {

// Data-parallel byte classification for streaming scanners. The structural
// bytes of every supported serialization ('<', '>', '{', '}', tag letters)
// are exactly the non-whitespace bytes — between tags only ASCII whitespace
// is legal — so "find the next structural byte" reduces to "find the first
// byte outside {' ', '\t', '\n', '\v', '\f', '\r'}". ClassifyBlock answers
// that for up to 64 bytes at a time: a portable 64-bit SWAR kernel with
// SSE2/AVX2 specializations selected once at startup (runtime dispatch; the
// binary never requires AVX2). Single-byte searches ('>' inside an XML tag)
// go through libc memchr, which is already vectorized.

// Scalar whitespace predicate; the reference all kernels must agree with.
inline bool ByteIsAsciiWs(unsigned char b) {
  return b == ' ' || b == '\t' || b == '\n' || b == '\v' || b == '\f' ||
         b == '\r';
}

// Classifies up to 64 bytes: bit i of the result is set iff data[i] is
// structural (not ASCII whitespace). len is clamped to 64; bits at or past
// the clamped length are zero. Dispatches to the best kernel for the CPU.
uint64_t ClassifyBlock(const char* data, size_t len);

// Individual kernels, exposed so tests can cross-check every
// implementation on this machine (not just the dispatched one).
uint64_t ClassifyBlockScalar(const char* data, size_t len);
uint64_t ClassifyBlockSwar(const char* data, size_t len);
#if defined(__x86_64__) || defined(__i386__)
uint64_t ClassifyBlockSse2(const char* data, size_t len);
uint64_t ClassifyBlockAvx2(const char* data, size_t len);
// True when the running CPU can execute the corresponding kernel.
bool CpuHasSse2();
bool CpuHasAvx2();
#endif

// Name of the kernel ClassifyBlock dispatches to: "avx2", "sse2" or "swar".
const char* ByteScanKernelName();

// Offset of the first structural (non-whitespace) byte in [0, len), or len
// when the whole range is whitespace.
size_t FindStructural(const char* data, size_t len);

// Stage-1 structural index: compacts the ClassifyBlock bitmasks into a
// position buffer with a ctz walk. `out` must have room for len entries;
// the return value is how many were written (the number of structural
// bytes). Positions are uint32_t, so a single extracted range is capped at
// 4 GiB — chunked callers are always far below that.
size_t ExtractStructural(const char* data, size_t len, uint32_t* out);

// Streaming view of the same index for loops that need to break, switch
// modes mid-scan, or interleave with other state (validators, the chunked
// scanner): Next() yields structural offsets in increasing order and len
// when exhausted. One ClassifyBlock call per 64-byte block, one ctz pop
// per structural byte, no buffer.
class StructuralIterator {
 public:
  StructuralIterator(const char* data, size_t len)
      : data_(data), len_(len) {}

  size_t Next() {
    while (mask_ == 0) {
      if (base_ >= len_) return len_;
      size_t n = len_ - base_ < 64 ? len_ - base_ : 64;
      next_base_ = base_ + n;
      mask_ = ClassifyBlock(data_ + base_, n);
      if (mask_ == 0) base_ = next_base_;
    }
    size_t pos = base_ + static_cast<size_t>(std::countr_zero(mask_));
    mask_ &= mask_ - 1;
    if (mask_ == 0) base_ = next_base_;
    return pos;
  }

 private:
  const char* data_;
  size_t len_;
  size_t base_ = 0;
  size_t next_base_ = 0;
  uint64_t mask_ = 0;
};

// Calls fn(offset) for every structural byte of [data, data + len), in
// order. The workhorse of the indexed batch loops: fully-structural blocks
// (mask == all-ones, the dense-corpus steady state) take a plain 64-byte
// loop so the index costs one ClassifyBlock per block and nothing per
// byte; sparse blocks take the ctz walk and skip text/whitespace entirely.
template <typename Fn>
inline void ForEachStructural(const char* data, size_t len, Fn&& fn) {
  size_t i = 0;
  while (i < len) {
    size_t n = len - i < 64 ? len - i : 64;
    uint64_t mask = ClassifyBlock(data + i, n);
    if (mask == ~uint64_t{0}) {
      for (size_t k = 0; k < 64; ++k) fn(i + k);
    } else {
      for (; mask != 0; mask &= mask - 1) {
        fn(i + static_cast<size_t>(std::countr_zero(mask)));
      }
    }
    i += n;
  }
}

}  // namespace sst

#endif  // SST_BASE_BYTE_SCAN_H_
