#ifndef SST_BASE_BYTE_SCAN_H_
#define SST_BASE_BYTE_SCAN_H_

#include <cstddef>
#include <cstdint>

namespace sst {

// Data-parallel byte classification for streaming scanners. The structural
// bytes of every supported serialization ('<', '>', '{', '}', tag letters)
// are exactly the non-whitespace bytes — between tags only ASCII whitespace
// is legal — so "find the next structural byte" reduces to "find the first
// byte outside {' ', '\t', '\n', '\v', '\f', '\r'}". ClassifyBlock answers
// that for up to 64 bytes at a time: a portable 64-bit SWAR kernel with
// SSE2/AVX2 specializations selected once at startup (runtime dispatch; the
// binary never requires AVX2). Single-byte searches ('>' inside an XML tag)
// go through libc memchr, which is already vectorized.

// Scalar whitespace predicate; the reference all kernels must agree with.
inline bool ByteIsAsciiWs(unsigned char b) {
  return b == ' ' || b == '\t' || b == '\n' || b == '\v' || b == '\f' ||
         b == '\r';
}

// Classifies up to 64 bytes: bit i of the result is set iff data[i] is
// structural (not ASCII whitespace). len is clamped to 64; bits at or past
// the clamped length are zero. Dispatches to the best kernel for the CPU.
uint64_t ClassifyBlock(const char* data, size_t len);

// Individual kernels, exposed so tests can cross-check every
// implementation on this machine (not just the dispatched one).
uint64_t ClassifyBlockScalar(const char* data, size_t len);
uint64_t ClassifyBlockSwar(const char* data, size_t len);
#if defined(__x86_64__) || defined(__i386__)
uint64_t ClassifyBlockSse2(const char* data, size_t len);
uint64_t ClassifyBlockAvx2(const char* data, size_t len);
// True when the running CPU can execute the corresponding kernel.
bool CpuHasSse2();
bool CpuHasAvx2();
#endif

// Name of the kernel ClassifyBlock dispatches to: "avx2", "sse2" or "swar".
const char* ByteScanKernelName();

// Offset of the first structural (non-whitespace) byte in [0, len), or len
// when the whole range is whitespace.
size_t FindStructural(const char* data, size_t len);

}  // namespace sst

#endif  // SST_BASE_BYTE_SCAN_H_
