#ifndef SST_BASE_THREAD_POOL_H_
#define SST_BASE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sst {

// Minimal fork-join worker pool for data-parallel loops (speculative chunk
// evaluation, benchmark sweeps). Workers are spawned once and reused across
// Run calls; each Run is an independent batch, so concurrent Run calls from
// different threads interleave safely on the shared queue.
class ThreadPool {
 public:
  // `num_threads` is the concurrency level: the pool spawns num_threads - 1
  // workers and the thread calling Run participates as the last lane.
  // num_threads <= 1 runs everything inline on the caller.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  // Invokes task(0), ..., task(num_tasks - 1), spread across the workers
  // and the calling thread; blocks until every task has finished. Tasks
  // must not call Run on the same pool (no nested parallelism).
  void Run(int num_tasks, const std::function<void(int)>& task);

  // Hardware concurrency with a floor of 1 (hardware_concurrency may
  // report 0 on exotic platforms).
  static int HardwareThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace sst

#endif  // SST_BASE_THREAD_POOL_H_
