#include "base/byte_scan.h"

#include <bit>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace sst {

namespace {

constexpr uint64_t kLow = 0x0101010101010101ULL;
constexpr uint64_t kHigh = 0x8080808080808080ULL;
constexpr uint64_t kNoHigh = 0x7F7F7F7F7F7F7F7FULL;

// 0x80 in every byte of x that is zero, 0x00 elsewhere. Exact per byte:
// (b & 0x7F) + 0x7F sets bit 7 iff the low bits are nonzero, | x folds in
// the high bit, and neither addition nor OR crosses byte lanes.
inline uint64_t ZeroBytes(uint64_t x) {
  uint64_t t = (x & kNoHigh) + kNoHigh;
  return ~(t | x) & kHigh;
}

// 0x80 in every byte b with b >= n (unsigned), for 1 <= n <= 0x80. Bytes
// below 0x80 decide via the carry into bit 7 of (b + 0x80 - n); bytes with
// the high bit set are >= 0x80 >= n, folded in by | x.
inline uint64_t GeBytes(uint64_t x, unsigned n) {
  return (((x & kNoHigh) + (0x80 - n) * kLow) | x) & kHigh;
}

// Compacts the 0x80 lane markers of m into the low 8 bits (bit k = byte k).
// The products 8k + 7j of the multiplier's bit positions are pairwise
// distinct, so no addition carries corrupt the top byte.
inline uint64_t MoveMask8(uint64_t m) {
  return ((m & kHigh) * 0x0002040810204081ULL) >> 56;
}

// 0x80 in every byte that is ASCII whitespace: 0x20 or 0x09..0x0D.
inline uint64_t WsBytes(uint64_t x) {
  return ZeroBytes(x ^ 0x2020202020202020ULL) |
         (GeBytes(x, 0x09) & ~GeBytes(x, 0x0E));
}

}  // namespace

uint64_t ClassifyBlockScalar(const char* data, size_t len) {
  if (len > 64) len = 64;
  uint64_t out = 0;
  for (size_t i = 0; i < len; ++i) {
    if (!ByteIsAsciiWs(static_cast<unsigned char>(data[i]))) {
      out |= uint64_t{1} << i;
    }
  }
  return out;
}

uint64_t ClassifyBlockSwar(const char* data, size_t len) {
  if (len > 64) len = 64;
  uint64_t out = 0;
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    uint64_t v;
    std::memcpy(&v, data + i, 8);
    out |= MoveMask8(~WsBytes(v)) << i;
  }
  if (i < len) {
    // Zero padding is structural (NUL is not whitespace); mask it off.
    uint64_t v = 0;
    std::memcpy(&v, data + i, len - i);
    uint64_t bits = MoveMask8(~WsBytes(v)) & ((uint64_t{1} << (len - i)) - 1);
    out |= bits << i;
  }
  return out;
}

#if defined(__x86_64__) || defined(__i386__)

bool CpuHasSse2() { return __builtin_cpu_supports("sse2"); }
bool CpuHasAvx2() { return __builtin_cpu_supports("avx2"); }

namespace {

// 16 lanes: whitespace iff byte == ' ' or (byte - 9) <= 4 unsigned.
inline uint32_t StructuralMask16(__m128i v) {
  __m128i space = _mm_cmpeq_epi8(v, _mm_set1_epi8(' '));
  __m128i t = _mm_sub_epi8(v, _mm_set1_epi8(9));
  __m128i ctrl = _mm_cmpeq_epi8(_mm_min_epu8(t, _mm_set1_epi8(4)), t);
  uint32_t ws = static_cast<uint32_t>(
      _mm_movemask_epi8(_mm_or_si128(space, ctrl)));
  return ws ^ 0xFFFFu;
}

__attribute__((target("avx2"))) inline uint32_t StructuralMask32(__m256i v) {
  __m256i space = _mm256_cmpeq_epi8(v, _mm256_set1_epi8(' '));
  __m256i t = _mm256_sub_epi8(v, _mm256_set1_epi8(9));
  __m256i ctrl = _mm256_cmpeq_epi8(_mm256_min_epu8(t, _mm256_set1_epi8(4)), t);
  uint32_t ws = static_cast<uint32_t>(
      _mm256_movemask_epi8(_mm256_or_si256(space, ctrl)));
  return ~ws;
}

}  // namespace

uint64_t ClassifyBlockSse2(const char* data, size_t len) {
  if (len > 64) len = 64;
  uint64_t out = 0;
  size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    out |= uint64_t{StructuralMask16(v)} << i;
  }
  if (i < len) {
    alignas(16) char buf[16] = {};
    std::memcpy(buf, data + i, len - i);
    __m128i v = _mm_load_si128(reinterpret_cast<const __m128i*>(buf));
    uint64_t bits =
        StructuralMask16(v) & ((uint64_t{1} << (len - i)) - 1);
    out |= bits << i;
  }
  return out;
}

__attribute__((target("avx2"))) uint64_t ClassifyBlockAvx2(const char* data,
                                                           size_t len) {
  if (len > 64) len = 64;
  uint64_t out = 0;
  size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    out |= uint64_t{StructuralMask32(v)} << i;
  }
  if (i < len) {
    alignas(32) char buf[32] = {};
    std::memcpy(buf, data + i, len - i);
    __m256i v = _mm256_load_si256(reinterpret_cast<const __m256i*>(buf));
    uint64_t bits =
        StructuralMask32(v) & ((uint64_t{1} << (len - i)) - 1);
    out |= bits << i;
  }
  return out;
}

#endif  // x86

namespace {

struct ScanDispatch {
  uint64_t (*classify)(const char*, size_t);
  const char* name;
};

ScanDispatch Resolve() {
#if defined(__x86_64__) || defined(__i386__)
  if (CpuHasAvx2()) return {&ClassifyBlockAvx2, "avx2"};
  if (CpuHasSse2()) return {&ClassifyBlockSse2, "sse2"};
#endif
  return {&ClassifyBlockSwar, "swar"};
}

const ScanDispatch& Active() {
  static const ScanDispatch dispatch = Resolve();
  return dispatch;
}

}  // namespace

uint64_t ClassifyBlock(const char* data, size_t len) {
  return Active().classify(data, len);
}

const char* ByteScanKernelName() { return Active().name; }

size_t FindStructural(const char* data, size_t len) {
  const ScanDispatch& dispatch = Active();
  size_t i = 0;
  while (i < len) {
    size_t n = len - i < 64 ? len - i : 64;
    uint64_t mask = dispatch.classify(data + i, n);
    if (mask) return i + static_cast<size_t>(std::countr_zero(mask));
    i += n;
  }
  return len;
}

size_t ExtractStructural(const char* data, size_t len, uint32_t* out) {
  const ScanDispatch& dispatch = Active();
  size_t count = 0;
  size_t i = 0;
  while (i < len) {
    size_t n = len - i < 64 ? len - i : 64;
    uint64_t mask = dispatch.classify(data + i, n);
    uint32_t base = static_cast<uint32_t>(i);
    for (; mask != 0; mask &= mask - 1) {
      out[count++] = base + static_cast<uint32_t>(std::countr_zero(mask));
    }
    i += n;
  }
  return count;
}

}  // namespace sst
