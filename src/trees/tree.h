#ifndef SST_TREES_TREE_H_
#define SST_TREES_TREE_H_

#include <vector>

#include "automata/alphabet.h"

namespace sst {

// Ordered unranked tree with Symbol-labelled nodes, stored as an arena with
// first-child / next-sibling links. Node ids are dense and allocated in
// creation order; the root is always node 0 once added.
class Tree {
 public:
  struct Node {
    Symbol label = -1;
    int parent = -1;
    int first_child = -1;
    int last_child = -1;
    int next_sibling = -1;
  };

  Tree() = default;

  // Adds the root; must be called exactly once, before AddChild.
  int AddRoot(Symbol label);

  // Appends a new last child under `parent` and returns its id.
  int AddChild(int parent, Symbol label);

  bool empty() const { return nodes_.empty(); }
  int root() const { return 0; }
  int size() const { return static_cast<int>(nodes_.size()); }
  const Node& node(int id) const { return nodes_[id]; }
  Symbol label(int id) const { return nodes_[id].label; }
  bool IsLeaf(int id) const { return nodes_[id].first_child < 0; }

  // Depth of a node; the root has depth 1 (matching the paper's counter,
  // which is incremented by the root's opening tag).
  int Depth(int id) const;

  // Maximum node depth; 0 for the empty tree.
  int Height() const;

  // Ids of all leaves, in document order.
  std::vector<int> Leaves() const;

  // All node ids in document order (the order of opening tags in the
  // encoding). Node ids are creation order, which need not coincide.
  std::vector<int> DocumentOrderIds() const;

  // The sequence of labels on the path from the root to `id`, inclusive.
  Word PathWord(int id) const;

 private:
  std::vector<Node> nodes_;
};

}  // namespace sst

#endif  // SST_TREES_TREE_H_
