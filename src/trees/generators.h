#ifndef SST_TREES_GENERATORS_H_
#define SST_TREES_GENERATORS_H_

#include <vector>

#include "automata/alphabet.h"
#include "base/rng.h"
#include "trees/tree.h"

namespace sst {

// Synthetic document generators used by tests and benchmarks.

// A single-branch tree whose labels, from root to leaf, spell `word`
// (must be nonempty).
Tree ChainTree(const Word& word);

// Random tree with exactly `num_nodes` nodes. Each new node attaches to a
// node chosen among recent insertions; `depth_bias` in [0,1] skews the
// choice towards the most recently added node (1.0 gives a chain, 0.0 a
// uniformly random recursive tree / shallow bush). Labels are uniform over
// [0, num_symbols).
Tree RandomTree(int num_nodes, int num_symbols, double depth_bias, Rng* rng);

// Random tree with exact height: a chain of length `height` with extra
// random nodes hung below existing nodes (never exceeding the height).
Tree RandomTreeWithHeight(int num_nodes, int height, int num_symbols,
                          Rng* rng);

// The Kn 'schema' of Fig 1b / Example 2.9, over Γ = {a, b, c} with symbols
// passed explicitly: a main branch of n b-labelled nodes; internal b-node i
// (1-based, 2..n-1) gets an a-labelled left child iff a_child[i-1]; every
// b-node i gets a c-labelled right child iff c_child[i-1].
Tree KnSchemaTree(int n, const std::vector<bool>& a_child,
                  const std::vector<bool>& c_child, Symbol a, Symbol b,
                  Symbol c);

// All 2^(n-2) choice vectors for the a-children of Kn (helper for the
// Example 2.9 counting experiment).
std::vector<std::vector<bool>> AllKnAChoices(int n);

// Exhaustive enumeration of all labelled ordered trees with at most
// `max_nodes` nodes over `num_symbols` labels (used by the bounded
// Proposition 2.13 check). Counts grow as Catalan(n-1)·k^n — keep
// max_nodes small.
std::vector<Tree> EnumerateTrees(int max_nodes, int num_symbols);

}  // namespace sst

#endif  // SST_TREES_GENERATORS_H_
