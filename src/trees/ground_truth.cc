#include "trees/ground_truth.h"

namespace sst {

namespace {

// DFA state at every node: state after reading the root-to-node word.
// Nodes are created parents-first, so one forward pass suffices.
std::vector<int> StatesAtNodes(const Dfa& dfa, const Tree& tree) {
  std::vector<int> state(tree.size());
  for (int id = 0; id < tree.size(); ++id) {
    int parent = tree.node(id).parent;
    int from = parent < 0 ? dfa.initial : state[parent];
    state[id] = dfa.Next(from, tree.label(id));
  }
  return state;
}

}  // namespace

std::vector<bool> SelectNodes(const Dfa& dfa, const Tree& tree) {
  std::vector<int> state = StatesAtNodes(dfa, tree);
  std::vector<bool> selected(tree.size());
  for (int id = 0; id < tree.size(); ++id) {
    selected[id] = dfa.accepting[state[id]];
  }
  return selected;
}

bool TreeInExists(const Dfa& dfa, const Tree& tree) {
  std::vector<int> state = StatesAtNodes(dfa, tree);
  for (int id = 0; id < tree.size(); ++id) {
    if (tree.IsLeaf(id) && dfa.accepting[state[id]]) return true;
  }
  return false;
}

bool TreeInForall(const Dfa& dfa, const Tree& tree) {
  std::vector<int> state = StatesAtNodes(dfa, tree);
  for (int id = 0; id < tree.size(); ++id) {
    if (tree.IsLeaf(id) && !dfa.accepting[state[id]]) return false;
  }
  return true;
}

}  // namespace sst
