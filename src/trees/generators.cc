#include "trees/generators.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "base/check.h"

namespace sst {

Tree ChainTree(const Word& word) {
  SST_CHECK(!word.empty());
  Tree tree;
  int cur = tree.AddRoot(word[0]);
  for (size_t i = 1; i < word.size(); ++i) {
    cur = tree.AddChild(cur, word[i]);
  }
  return tree;
}

Tree RandomTree(int num_nodes, int num_symbols, double depth_bias, Rng* rng) {
  SST_CHECK(num_nodes >= 1);
  Tree tree;
  tree.AddRoot(static_cast<Symbol>(rng->NextBelow(num_symbols)));
  for (int i = 1; i < num_nodes; ++i) {
    int parent;
    if (rng->NextBool(depth_bias)) {
      parent = i - 1;  // extend the most recent node: grows depth
    } else {
      parent = static_cast<int>(rng->NextBelow(i));
    }
    tree.AddChild(parent, static_cast<Symbol>(rng->NextBelow(num_symbols)));
  }
  return tree;
}

Tree RandomTreeWithHeight(int num_nodes, int height, int num_symbols,
                          Rng* rng) {
  SST_CHECK(height >= 1 && num_nodes >= height);
  Tree tree;
  std::vector<int> depth_of;  // node id -> depth
  int cur = tree.AddRoot(static_cast<Symbol>(rng->NextBelow(num_symbols)));
  depth_of.push_back(1);
  for (int d = 2; d <= height; ++d) {
    cur = tree.AddChild(cur, static_cast<Symbol>(rng->NextBelow(num_symbols)));
    depth_of.push_back(d);
  }
  for (int i = height; i < num_nodes; ++i) {
    // Attach below any node that is not already at the maximum depth.
    int parent;
    do {
      parent = static_cast<int>(rng->NextBelow(tree.size()));
    } while (depth_of[parent] >= height);
    tree.AddChild(parent, static_cast<Symbol>(rng->NextBelow(num_symbols)));
    depth_of.push_back(depth_of[parent] + 1);
  }
  return tree;
}

Tree KnSchemaTree(int n, const std::vector<bool>& a_child,
                  const std::vector<bool>& c_child, Symbol a, Symbol b,
                  Symbol c) {
  SST_CHECK(n > 2);
  SST_CHECK(static_cast<int>(a_child.size()) == n);
  SST_CHECK(static_cast<int>(c_child.size()) == n);
  Tree tree;
  int cur = tree.AddRoot(b);
  // Children order per Fig 1b: optional a-child (left of the main branch),
  // then the main-branch continuation, then the optional c-child (right).
  for (int i = 1; i <= n; ++i) {
    int node = cur;
    // a-children exist on internal main-branch nodes only.
    if (i >= 2 && i <= n - 1 && a_child[i - 1]) {
      tree.AddChild(node, a);
    }
    if (i < n) {
      cur = tree.AddChild(node, b);
    }
    if (c_child[i - 1]) {
      tree.AddChild(node, c);
    }
  }
  return tree;
}

std::vector<Tree> EnumerateTrees(int max_nodes, int num_symbols) {
  // Enumerate tree shapes as preorder arity sequences (arity[i] = number of
  // children of the i-th node in preorder), then all labelings of each
  // shape.
  std::vector<Tree> result;
  std::vector<int> arity;

  auto emit_labelings = [&]() {
    const int n = static_cast<int>(arity.size());
    std::vector<Symbol> labels(n, 0);
    for (;;) {
      Tree tree;
      std::vector<std::pair<int, int>> stack;  // (node id, children left)
      for (int i = 0; i < n; ++i) {
        int id = stack.empty()
                     ? tree.AddRoot(labels[i])
                     : tree.AddChild(stack.back().first, labels[i]);
        if (!stack.empty() && --stack.back().second == 0) stack.pop_back();
        if (arity[i] > 0) stack.emplace_back(id, arity[i]);
      }
      result.push_back(std::move(tree));
      // Next labeling (odometer).
      int pos = n - 1;
      while (pos >= 0 && labels[pos] == num_symbols - 1) labels[pos--] = 0;
      if (pos < 0) break;
      ++labels[pos];
    }
  };

  // place(placed, total, pending): nodes placed so far, target size, and
  // open child slots; every node consumes one slot and contributes its own
  // arity in slots.
  std::function<void(int, int, int)> place = [&](int placed, int total,
                                                 int pending) {
    if (placed == total) {
      if (pending == 0) emit_labelings();
      return;
    }
    if (pending == 0) return;  // no slot left for the remaining nodes
    const int remaining = total - placed;
    for (int a = 0; a <= remaining - 1; ++a) {
      int next_pending = pending - 1 + a;
      if (next_pending > remaining - 1) continue;
      arity.push_back(a);
      place(placed + 1, total, next_pending);
      arity.pop_back();
    }
  };

  for (int n = 1; n <= max_nodes; ++n) {
    arity.clear();
    place(0, n, 1);
  }
  return result;
}

std::vector<std::vector<bool>> AllKnAChoices(int n) {
  SST_CHECK(n > 2 && n <= 22);
  std::vector<std::vector<bool>> result;
  int free_bits = n - 2;  // positions 2..n-1 (1-based)
  result.reserve(static_cast<size_t>(1) << free_bits);
  for (uint32_t mask = 0; mask < (uint32_t{1} << free_bits); ++mask) {
    std::vector<bool> choice(n, false);
    for (int bit = 0; bit < free_bits; ++bit) {
      choice[bit + 1] = (mask >> bit) & 1;  // 1-based position bit+2 -> index bit+1
    }
    result.push_back(std::move(choice));
  }
  return result;
}

}  // namespace sst
