#include "trees/tree.h"

#include <algorithm>

#include "base/check.h"

namespace sst {

int Tree::AddRoot(Symbol label) {
  SST_CHECK_MSG(nodes_.empty(), "root already present");
  nodes_.push_back(Node{label, -1, -1, -1, -1});
  return 0;
}

int Tree::AddChild(int parent, Symbol label) {
  SST_CHECK(parent >= 0 && parent < size());
  int id = size();
  nodes_.push_back(Node{label, parent, -1, -1, -1});
  Node& parent_node = nodes_[parent];
  if (parent_node.last_child < 0) {
    parent_node.first_child = id;
  } else {
    nodes_[parent_node.last_child].next_sibling = id;
  }
  parent_node.last_child = id;
  return id;
}

int Tree::Depth(int id) const {
  int depth = 0;
  for (int cur = id; cur >= 0; cur = nodes_[cur].parent) ++depth;
  return depth;
}

int Tree::Height() const {
  if (nodes_.empty()) return 0;
  // Nodes are created in topological order (parents before children), so a
  // single forward pass computes depths.
  std::vector<int> depth(nodes_.size());
  int best = 0;
  for (int id = 0; id < size(); ++id) {
    depth[id] = nodes_[id].parent < 0 ? 1 : depth[nodes_[id].parent] + 1;
    best = std::max(best, depth[id]);
  }
  return best;
}

std::vector<int> Tree::Leaves() const {
  std::vector<int> leaves;
  if (nodes_.empty()) return leaves;
  // Document order = DFS using the child/sibling links.
  std::vector<int> stack = {root()};
  while (!stack.empty()) {
    int id = stack.back();
    stack.pop_back();
    if (IsLeaf(id)) leaves.push_back(id);
    // Push children in reverse so the first child is processed first.
    std::vector<int> children;
    for (int c = nodes_[id].first_child; c >= 0; c = nodes_[c].next_sibling) {
      children.push_back(c);
    }
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return leaves;
}

std::vector<int> Tree::DocumentOrderIds() const {
  std::vector<int> order;
  if (nodes_.empty()) return order;
  order.reserve(nodes_.size());
  std::vector<int> stack = {root()};
  while (!stack.empty()) {
    int id = stack.back();
    stack.pop_back();
    order.push_back(id);
    std::vector<int> children;
    for (int c = nodes_[id].first_child; c >= 0; c = nodes_[c].next_sibling) {
      children.push_back(c);
    }
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return order;
}

Word Tree::PathWord(int id) const {
  Word reversed;
  for (int cur = id; cur >= 0; cur = nodes_[cur].parent) {
    reversed.push_back(nodes_[cur].label);
  }
  return Word(reversed.rbegin(), reversed.rend());
}

}  // namespace sst
