#include "trees/encoding.h"

#include <cctype>

#include "base/check.h"

namespace sst {

EventStream Encode(const Tree& tree) {
  EventStream events;
  if (tree.empty()) return events;
  events.reserve(2 * static_cast<size_t>(tree.size()));
  // Iterative DFS emitting open on the way down and close on the way up.
  struct Frame {
    int node;
    int next_child;
  };
  std::vector<Frame> stack;
  events.push_back({true, tree.label(tree.root())});
  stack.push_back({tree.root(), tree.node(tree.root()).first_child});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_child < 0) {
      events.push_back({false, tree.label(frame.node)});
      stack.pop_back();
    } else {
      int child = frame.next_child;
      frame.next_child = tree.node(child).next_sibling;
      events.push_back({true, tree.label(child)});
      stack.push_back({child, tree.node(child).first_child});
    }
  }
  return events;
}

std::optional<Tree> Decode(const EventStream& events) {
  if (events.empty()) return std::nullopt;
  Tree tree;
  std::vector<int> stack;
  for (size_t i = 0; i < events.size(); ++i) {
    const TagEvent& event = events[i];
    if (event.open) {
      if (stack.empty()) {
        if (!tree.empty()) return std::nullopt;  // second root
        stack.push_back(tree.AddRoot(event.symbol));
      } else {
        stack.push_back(tree.AddChild(stack.back(), event.symbol));
      }
    } else {
      if (stack.empty()) return std::nullopt;
      // Markup encodings carry the closing label; term encodings use -1.
      if (event.symbol >= 0 && event.symbol != tree.label(stack.back())) {
        return std::nullopt;
      }
      stack.pop_back();
      if (stack.empty() && i + 1 != events.size()) {
        return std::nullopt;  // content after the root closes
      }
    }
  }
  if (!stack.empty()) return std::nullopt;
  return tree;
}

bool IsValidEncoding(const EventStream& events) {
  return Decode(events).has_value();
}

namespace {

char OpenChar(const Alphabet& alphabet, Symbol s) {
  const std::string& label = alphabet.LabelOf(s);
  SST_CHECK_MSG(label.size() == 1 && std::islower(static_cast<unsigned char>(
                                         label[0])),
                "compact serialization needs single lowercase labels");
  return label[0];
}

}  // namespace

std::string ToCompactMarkup(const Alphabet& alphabet,
                            const EventStream& events) {
  std::string out;
  out.reserve(events.size());
  for (const TagEvent& event : events) {
    char c = OpenChar(alphabet, event.symbol);
    out += event.open ? c : static_cast<char>(std::toupper(c));
  }
  return out;
}

std::optional<EventStream> ParseCompactMarkup(const Alphabet& alphabet,
                                              std::string_view text) {
  EventStream events;
  events.reserve(text.size());
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    bool open = std::islower(static_cast<unsigned char>(c));
    char lower = static_cast<char>(std::tolower(c));
    Symbol s = alphabet.Find(std::string_view(&lower, 1));
    if (s < 0) return std::nullopt;
    events.push_back({open, s});
  }
  return events;
}

std::string ToCompactTerm(const Alphabet& alphabet,
                          const EventStream& events) {
  std::string out;
  for (const TagEvent& event : events) {
    if (event.open) {
      out += OpenChar(alphabet, event.symbol);
      out += '{';
    } else {
      out += '}';
    }
  }
  return out;
}

std::optional<EventStream> ParseCompactTerm(const Alphabet& alphabet,
                                            std::string_view text) {
  EventStream events;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '}') {
      events.push_back({false, -1});
      ++i;
      continue;
    }
    Symbol s = alphabet.Find(std::string_view(&c, 1));
    if (s < 0) return std::nullopt;
    if (i + 1 >= text.size() || text[i + 1] != '{') return std::nullopt;
    events.push_back({true, s});
    i += 2;
  }
  return events;
}

std::string ToXmlLite(const Alphabet& alphabet, const EventStream& events) {
  std::string out;
  for (const TagEvent& event : events) {
    out += event.open ? "<" : "</";
    out += alphabet.LabelOf(event.symbol);
    out += '>';
  }
  return out;
}

std::optional<EventStream> ParseXmlLite(Alphabet* alphabet,
                                        std::string_view text) {
  EventStream events;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c != '<') return std::nullopt;
    ++i;
    bool open = true;
    if (i < text.size() && text[i] == '/') {
      open = false;
      ++i;
    }
    size_t start = i;
    while (i < text.size() && text[i] != '>') ++i;
    if (i >= text.size() || i == start) return std::nullopt;
    Symbol s = alphabet->Intern(text.substr(start, i - start));
    ++i;  // consume '>'
    events.push_back({open, s});
  }
  return events;
}

}  // namespace sst
