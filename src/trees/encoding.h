#ifndef SST_TREES_ENCODING_H_
#define SST_TREES_ENCODING_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "automata/alphabet.h"
#include "trees/tree.h"

namespace sst {

// One tag of a streamed tree. The same event stream serves both encodings:
// under the markup encoding (Section 2) the closing tag carries its label;
// under the term encoding (Section 4.2) evaluators must ignore the label of
// close events (the universal closing tag).
struct TagEvent {
  bool open = false;
  Symbol symbol = -1;  // label of the node being opened/closed

  friend bool operator==(const TagEvent&, const TagEvent&) = default;
};

using EventStream = std::vector<TagEvent>;

// <T>: the markup/term event stream of the tree (document order).
EventStream Encode(const Tree& tree);

// Rebuilds a tree from a well-formed event stream; returns nullopt if the
// stream is not a valid encoding (mismatched or dangling tags, multiple
// roots, empty).
std::optional<Tree> Decode(const EventStream& events);

// True iff the stream is the valid encoding of some tree.
bool IsValidEncoding(const EventStream& events);

// --- Byte serializations ------------------------------------------------
//
// Compact markup: opening tags are the alphabet's single-character labels
// ('a'..'z'), closing tags their uppercase forms. Requires all labels to be
// single lowercase letters. This is the format used by the high-throughput
// byte runners and benchmarks.
std::string ToCompactMarkup(const Alphabet& alphabet,
                            const EventStream& events);
std::optional<EventStream> ParseCompactMarkup(const Alphabet& alphabet,
                                              std::string_view text);

// Compact term encoding (JSON-style, Section 4.2): `a{ ... }` with the
// universal closing tag '}'. Close events in the parsed stream carry -1.
std::string ToCompactTerm(const Alphabet& alphabet,
                          const EventStream& events);
std::optional<EventStream> ParseCompactTerm(const Alphabet& alphabet,
                                            std::string_view text);

// XML-lite: `<label>` ... `</label>`; labels may be multi-character.
// No attributes, text content, comments, or escaping — tags only, which is
// what the paper's model consumes (a SAX stream restricted to tag events).
std::string ToXmlLite(const Alphabet& alphabet, const EventStream& events);
std::optional<EventStream> ParseXmlLite(Alphabet* alphabet,
                                        std::string_view text);

}  // namespace sst

#endif  // SST_TREES_ENCODING_H_
