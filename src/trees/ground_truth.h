#ifndef SST_TREES_GROUND_TRUTH_H_
#define SST_TREES_GROUND_TRUTH_H_

#include <vector>

#include "automata/dfa.h"
#include "trees/tree.h"

namespace sst {

// In-memory (non-streaming) reference semantics, used as correctness
// oracles for every streaming evaluator in src/eval.

// QL(T): selected[v] == true iff the root-to-v label word is in L(dfa)
// (Section 2.3, path query semantics).
std::vector<bool> SelectNodes(const Dfa& dfa, const Tree& tree);

// T ∈ EL: some branch (root-to-leaf path) is labelled by a word in L.
bool TreeInExists(const Dfa& dfa, const Tree& tree);

// T ∈ AL: every branch is labelled by a word in L.
bool TreeInForall(const Dfa& dfa, const Tree& tree);

}  // namespace sst

#endif  // SST_TREES_GROUND_TRUTH_H_
