#include "patterns/descendant_pattern.h"

#include <functional>

#include "base/check.h"

namespace sst {

namespace {

std::vector<std::vector<int>> ChildrenLists(const Tree& tree) {
  std::vector<std::vector<int>> children(tree.size());
  for (int id = 0; id < tree.size(); ++id) {
    for (int c = tree.node(id).first_child; c >= 0;
         c = tree.node(c).next_sibling) {
      children[id].push_back(c);
    }
  }
  return children;
}

// Euler-tour intervals for O(1) proper-ancestor tests.
struct AncestryIndex {
  std::vector<int> tin, tout;

  explicit AncestryIndex(const Tree& tree)
      : tin(tree.size()), tout(tree.size()) {
    int clock = 0;
    std::vector<std::pair<int, bool>> stack = {{tree.root(), false}};
    while (!stack.empty()) {
      auto [id, done] = stack.back();
      stack.pop_back();
      if (done) {
        tout[id] = clock++;
        continue;
      }
      tin[id] = clock++;
      stack.emplace_back(id, true);
      std::vector<int> children;
      for (int c = tree.node(id).first_child; c >= 0;
           c = tree.node(c).next_sibling) {
        children.push_back(c);
      }
      for (auto it = children.rbegin(); it != children.rend(); ++it) {
        stack.emplace_back(*it, false);
      }
    }
  }

  bool ProperAncestor(int up, int down) const {
    return up != down && tin[up] < tin[down] && tout[down] < tout[up];
  }
};

}  // namespace

bool ContainsPattern(const Tree& tree, const Tree& pattern) {
  if (tree.empty() || pattern.empty()) return false;
  const int n = tree.size();
  const int m = pattern.size();
  std::vector<std::vector<int>> tree_children = ChildrenLists(tree);
  std::vector<std::vector<int>> pattern_children = ChildrenLists(pattern);
  // match[v][p]: pattern subtree p embeds with root at v.
  // desc[v][p]: pattern subtree p embeds somewhere within subtree(v).
  std::vector<std::vector<bool>> match(n, std::vector<bool>(m, false));
  std::vector<std::vector<bool>> desc(n, std::vector<bool>(m, false));
  // Node ids increase from parent to child, so a reverse scan is bottom-up.
  for (int v = n - 1; v >= 0; --v) {
    for (int p = m - 1; p >= 0; --p) {
      bool ok = tree.label(v) == pattern.label(p);
      for (int q : pattern_children[p]) {
        if (!ok) break;
        bool found = false;
        for (int c : tree_children[v]) {
          found = found || desc[c][q];
        }
        ok = found;
      }
      match[v][p] = ok;
      bool below = ok;
      for (int c : tree_children[v]) {
        below = below || desc[c][p];
      }
      desc[v][p] = below;
    }
  }
  return desc[tree.root()][pattern.root()];
}

bool StrictlyContainsPattern(const Tree& tree, const Tree& pattern) {
  if (tree.empty() || pattern.empty()) return false;
  AncestryIndex tree_index(tree);
  AncestryIndex pattern_index(pattern);
  std::vector<int> order = pattern.DocumentOrderIds();  // parents first
  std::vector<int> assignment(pattern.size(), -1);

  std::function<bool(size_t)> assign = [&](size_t i) {
    if (i == order.size()) return true;
    int p = order[i];
    int parent = pattern.node(p).parent;
    for (int t = 0; t < tree.size(); ++t) {
      if (tree.label(t) != pattern.label(p)) continue;
      if (parent >= 0 &&
          !tree_index.ProperAncestor(assignment[parent], t)) {
        continue;
      }
      // Reflection condition of strict containment against all previously
      // assigned pattern nodes.
      bool ok = true;
      for (size_t j = 0; j < i && ok; ++j) {
        int q = order[j];
        int s = assignment[q];
        if (tree_index.ProperAncestor(s, t) &&
            !pattern_index.ProperAncestor(q, p)) {
          ok = false;
        }
        if (tree_index.ProperAncestor(t, s) &&
            !pattern_index.ProperAncestor(p, q)) {
          ok = false;
        }
      }
      if (!ok) continue;
      assignment[p] = t;
      if (assign(i + 1)) return true;
      assignment[p] = -1;
    }
    return false;
  };
  return assign(0);
}

DescendantPatternMatcher::DescendantPatternMatcher(const Tree& pattern)
    : pattern_(pattern), pattern_children_(ChildrenLists(pattern)) {
  SST_CHECK(!pattern_.empty());
  Reset();
}

void DescendantPatternMatcher::Reset() {
  depth_ = 0;
  matched_ = false;
  phase_.assign(pattern_.size(), Phase::kIdle);
  stop_depth_.assign(pattern_.size(), 0);
  last_result_.assign(pattern_.size(), false);
  Launch(pattern_.root(), /*stop_depth=*/0);
}

void DescendantPatternMatcher::Launch(int node, int64_t stop_depth) {
  phase_[node] = Phase::kScanning;
  stop_depth_[node] = stop_depth;
}

void DescendantPatternMatcher::ProcessEvent(int node, bool open,
                                            Symbol symbol) {
  switch (phase_[node]) {
    case Phase::kIdle:
      return;
    case Phase::kScanning:
      if (open && symbol == pattern_.label(node)) {
        if (pattern_children_[node].empty()) {
          phase_[node] = Phase::kAccepted;
        } else {
          // Candidate found at the current depth: run the children matchers
          // over its subtree (they stop at its closing tag).
          for (int child : pattern_children_[node]) {
            Launch(child, depth_ - 1);
          }
          phase_[node] = Phase::kRunningChildren;
          // The children's input starts after this tag; nothing more to do.
          return;
        }
      }
      break;
    case Phase::kRunningChildren: {
      bool all_stopped = true;
      for (int child : pattern_children_[node]) {
        ProcessEvent(child, open, symbol);
        all_stopped = all_stopped && Stopped(child);
      }
      if (all_stopped) {
        bool all_accepted = true;
        for (int child : pattern_children_[node]) {
          all_accepted = all_accepted && last_result_[child];
        }
        // On failure resume scanning after the candidate's subtree; nested
        // candidates can be skipped by minimality (Examples 2.6/2.7).
        phase_[node] = all_accepted ? Phase::kAccepted : Phase::kScanning;
      }
      break;
    }
    case Phase::kAccepted:
      break;
  }
  if (depth_ == stop_depth_[node]) {
    last_result_[node] = phase_[node] == Phase::kAccepted;
    phase_[node] = Phase::kIdle;
  }
}

void DescendantPatternMatcher::OnOpen(Symbol symbol) {
  ++depth_;
  ProcessEvent(pattern_.root(), true, symbol);
  if (phase_[pattern_.root()] == Phase::kAccepted ||
      (Stopped(pattern_.root()) && last_result_[pattern_.root()])) {
    matched_ = true;
  }
}

void DescendantPatternMatcher::OnClose(Symbol /*symbol*/) {
  --depth_;
  ProcessEvent(pattern_.root(), false, -1);
  if (phase_[pattern_.root()] == Phase::kAccepted ||
      (Stopped(pattern_.root()) && last_result_[pattern_.root()])) {
    matched_ = true;
  }
}

}  // namespace sst
