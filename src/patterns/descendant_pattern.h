#ifndef SST_PATTERNS_DESCENDANT_PATTERN_H_
#define SST_PATTERNS_DESCENDANT_PATTERN_H_

#include <cstdint>
#include <vector>

#include "dra/machine.h"
#include "trees/tree.h"

namespace sst {

// A descendant pattern (Section 2.2) is a finite tree over Γ; a tree T
// contains it if pattern nodes can be mapped to tree nodes preserving labels
// and sending pattern children to proper descendants. Proposition 2.8: for
// every descendant pattern the set of trees containing it is stackless.

// Ground truth by bottom-up dynamic programming.
bool ContainsPattern(const Tree& tree, const Tree& pattern);

// Example 2.9's *strict* containment: additionally, whenever h(v) is a
// descendant of h(u), v must be a descendant of u. Backtracking search —
// intended for the small trees of tests and the Fig 1 experiments.
bool StrictlyContainsPattern(const Tree& tree, const Tree& pattern);

// The Proposition 2.8 streaming matcher. One depth register per pattern
// node; finite control per pattern node (idle / scanning / running children
// / accepted); no stack. Accepts (stickily) iff the streamed tree contains
// the pattern.
//
// The machine follows the proof's recursive structure: the matcher for a
// pattern node scans for a minimal matching opening tag, then launches the
// product of its children's matchers on the candidate's subtree; if they
// reject at the candidate's closing tag, it resumes scanning (minimality —
// Example 2.6's trick — makes skipping nested candidates sound).
class DescendantPatternMatcher final : public StreamMachine {
 public:
  explicit DescendantPatternMatcher(const Tree& pattern);

  void Reset() override;
  void OnOpen(Symbol symbol) override;
  void OnClose(Symbol symbol) override;
  bool InAcceptingState() const override { return matched_; }

  // Registers used = number of pattern nodes (Proposition 2.8's bound).
  int num_registers() const { return pattern_.size(); }

 private:
  enum class Phase : uint8_t { kIdle, kScanning, kRunningChildren, kAccepted };

  void ProcessEvent(int node, bool open, Symbol symbol);
  void Launch(int node, int64_t stop_depth);
  bool Stopped(int node) const { return phase_[node] == Phase::kIdle; }

  Tree pattern_;
  std::vector<std::vector<int>> pattern_children_;

  int64_t depth_ = 0;
  bool matched_ = false;
  std::vector<Phase> phase_;
  std::vector<int64_t> stop_depth_;   // the per-node depth register
  std::vector<bool> accepted_;        // sticky per-node result
  std::vector<bool> last_result_;     // result reported when stopping
};

}  // namespace sst

#endif  // SST_PATTERNS_DESCENDANT_PATTERN_H_
