#ifndef SST_FOOLING_FOOLING_H_
#define SST_FOOLING_FOOLING_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "automata/dfa.h"
#include "dra/dra.h"
#include "dra/machine.h"
#include "trees/tree.h"

namespace sst {

// Constructive refuters for the paper's inexpressibility results. Where the
// proofs pump with the universal exponent n! (astronomical for any real n),
// these builders take the exponent as a parameter and the Fool* drivers
// search for one that provably fools the *given* machine — the resulting
// pair of trees is an explicit certificate: their EL membership differs,
// yet the victim accepts both or rejects both.

// Lemma 3.12 data: i·s = p (s nonempty), p·u = q·u = q, q·x rejecting,
// exactly one of p·t, q·t accepting (t nonempty).
struct NonEFlatWitness {
  int p = -1, q = -1;
  Word s, u, x, t;
};

// Lemma 3.16 data: p, q, r in one SCC; i·s = r; r·v = p, r·w = q;
// p·u = q·u = r; p·t accepting xor q·t accepting; s, u, v, w nonempty and
// |u| >= |t|.
struct NonHarWitness {
  int p = -1, q = -1, r = -1;
  Word s, u, v, w, t;
};

// Extract witnesses from a minimal DFA; nullopt if the language is in the
// respective class (E-flat / HAR).
std::optional<NonEFlatWitness> ExtractNonEFlatWitness(const Dfa& minimal_dfa);
std::optional<NonHarWitness> ExtractNonHarWitness(const Dfa& minimal_dfa);

// A fooling certificate: exactly one of the trees belongs to EL.
struct FoolingPair {
  Tree in_el;      // the tree with a branch in L
  Tree out_el;     // the tree with no branch in L
  int exponent = 0;
};

// Fig 4: trees S and S' with pumping exponent N >= 1. S has branches
// s·u^N·x (twice) and s·t; S' inserts another u^N segment above the
// branching. Exactly one of them is in EL.
FoolingPair BuildLemma312Trees(const NonEFlatWitness& witness, int exponent,
                               const Dfa& minimal_dfa);

// Fig 5: trees R and R' with pumping exponent N >= 1 (standing in for n!).
// Every branch of R is labelled by a word in s(wu+vu)*wt ⊆ L^c; R' inserts
// a (uv)^N segment before the branching of the middle level, creating one
// branch in s(wu+vu)*vt ⊆ L.
FoolingPair BuildLemma316Trees(const NonHarWitness& witness, int exponent,
                               const Dfa& minimal_dfa);

// Searches exponents 1..max_exponent for a pair the victim cannot
// distinguish; verifies both the ground-truth difference and the victim's
// agreement before returning. `use_har_gadget` selects the Lemma 3.16
// gadget (for depth-register victims, requires L not HAR) over the Lemma
// 3.12 gadget (for finite-state victims, requires L not E-flat).
std::optional<FoolingPair> FoolExistsRecognizer(const Dfa& minimal_dfa,
                                                StreamMachine* victim,
                                                bool use_har_gadget,
                                                int max_exponent);

// --- Term-encoding (blind) variants: Theorem B.1 / Fig 7 ----------------

// Blind Lemma 3.12 data: i·s = p; p·u1 = q·u2 = q with |u1| = |u2| (a
// blind meet in q); q·x rejecting; exactly one of p·t, q·t accepting.
struct BlindNonEFlatWitness {
  int p = -1, q = -1;
  Word s, u1, u2, x, t;
};

std::optional<BlindNonEFlatWitness> ExtractBlindNonEFlatWitness(
    const Dfa& minimal_dfa);

// Fig 7: the S/S' pair for the term encoding. Which tree carries the
// L-branch depends on whether s·t ∈ L (the proof's two cases); the
// rightmost branch is adjusted so that the EL-free tree is provably free.
FoolingPair BuildBlindLemma312Trees(const BlindNonEFlatWitness& witness,
                                    int exponent, const Dfa& minimal_dfa);

// Blind Lemma 3.16 data (Theorem B.2): p, q, r in one SCC with a blind
// meet p·u1 = q·u2 = r (|u1| = |u2|); r·v = p, r·w = q; p·t accepting,
// q·t rejecting; all of s, u1, u2, v, w nonempty. The word blocks are
// w·u2 and v·u1 (taking q resp. p back to r), so s(w u2 + v u1)*·w·t ⊆ L^c
// and s(w u2 + v u1)*·v·t ⊆ L.
struct BlindNonHarWitness {
  int p = -1, q = -1, r = -1;
  Word s, u1, u2, v, w, t;
};

std::optional<BlindNonHarWitness> ExtractBlindNonHarWitness(
    const Dfa& minimal_dfa);

// The Fig 5 gadget adapted to the term encoding (Appendix B): the middle
// level's spine is extended by u2·(v·u1)^{N-1}·v before the branching,
// turning its wt-tail into a branch of s(wu2+vu1)*·vt.
FoolingPair BuildBlindLemma316Trees(const BlindNonHarWitness& witness,
                                    int exponent, const Dfa& minimal_dfa);

// Term-encoding fooling driver: the victim is fed label-less closing tags.
// `use_har_gadget` selects the blind Lemma 3.16 gadget (for depth-register
// victims, requires L not blindly HAR) over the blind Lemma 3.12 gadget
// (requires L not blindly E-flat).
std::optional<FoolingPair> FoolTermExistsRecognizer(const Dfa& minimal_dfa,
                                                    StreamMachine* victim,
                                                    bool use_har_gadget,
                                                    int max_exponent);

// Random search for a single tree on which a query machine's pre-selections
// disagree with the QL ground truth. Returns the first counterexample, or
// nullopt after `attempts` tries. `term_encoded` runs the victim on
// label-less closing tags.
std::optional<Tree> FindQueryCounterexample(const Dfa& minimal_dfa,
                                            StreamMachine* victim,
                                            bool term_encoded, int attempts,
                                            uint64_t seed);

// --- Example 2.9 / Fig 1: the Kn configuration-counting experiment -------

// Runs the explicit DRA over the prefix w_T of ⟨T⟩ (ending at the opening
// tag of the deepest b node) for every a-choice of the Kn schema, and
// returns the number of distinct configurations reached. A DRA with k
// states and l registers can reach at most k·(n+2)^l of them, while there
// are 2^(n-2) choices — the pigeonhole at the heart of Example 2.9.
// Symbols: a=0, b=1, c=2.
int CountKnPrefixConfigurations(const Dra& dra, int n);

// Finds two different a-choices whose w_T prefixes leave the DRA in the
// same configuration (guaranteed to exist once 2^(n-2) exceeds the
// configuration count). Returns the choice masks.
std::optional<std::pair<uint32_t, uint32_t>> FindKnPrefixCollision(
    const Dra& dra, int n);

}  // namespace sst

#endif  // SST_FOOLING_FOOLING_H_
