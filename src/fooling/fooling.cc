#include "fooling/fooling.h"

#include <initializer_list>
#include <map>

#include "automata/relations.h"
#include "automata/scc.h"
#include "base/check.h"
#include "base/rng.h"
#include "classes/syntactic_classes.h"
#include "trees/encoding.h"
#include "trees/generators.h"
#include "trees/ground_truth.h"

namespace sst {

namespace {

Word Concat(std::initializer_list<const Word*> parts) {
  Word result;
  for (const Word* part : parts) {
    result.insert(result.end(), part->begin(), part->end());
  }
  return result;
}

Word Repeat(const Word& word, int times) {
  Word result;
  result.reserve(word.size() * times);
  for (int i = 0; i < times; ++i) {
    result.insert(result.end(), word.begin(), word.end());
  }
  return result;
}

// Appends a chain labelled by `word` below `attach` and returns the id of
// the deepest new node (or `attach` itself if the word is empty).
int AppendChain(Tree* tree, int attach, const Word& word) {
  int current = attach;
  for (Symbol a : word) current = tree->AddChild(current, a);
  return current;
}

// Builds a tree that is a chain labelled `word` from the root; returns the
// bottom node via *bottom.
Tree ChainWithBottom(const Word& word, int* bottom) {
  SST_CHECK(!word.empty());
  Tree tree;
  int current = tree.AddRoot(word[0]);
  for (size_t i = 1; i < word.size(); ++i) {
    current = tree.AddChild(current, word[i]);
  }
  *bottom = current;
  return tree;
}

}  // namespace

std::optional<NonEFlatWitness> ExtractNonEFlatWitness(
    const Dfa& minimal_dfa) {
  ClassViolation violation;
  if (IsEFlat(minimal_dfa, &violation)) return std::nullopt;
  NonEFlatWitness witness;
  witness.p = violation.p;
  witness.q = violation.q;
  SST_CHECK(FindConnectingWord(minimal_dfa, minimal_dfa.initial, witness.p,
                               /*nonempty=*/true, &witness.s));
  PairReachability reach(minimal_dfa, /*blind=*/false);
  SST_CHECK(
      reach.FindMeetInWord(witness.p, witness.q, witness.q, &witness.u));
  SST_CHECK(!witness.u.empty());
  SST_CHECK(FindWordToAcceptance(minimal_dfa, witness.q, /*accepting=*/false,
                                 &witness.x));
  SST_CHECK(FindAlmostDistinguishingWord(minimal_dfa, witness.p, witness.q,
                                         &witness.t));
  return witness;
}

std::optional<NonHarWitness> ExtractNonHarWitness(const Dfa& minimal_dfa) {
  ClassViolation violation;
  if (IsHar(minimal_dfa, &violation)) return std::nullopt;
  NonHarWitness witness;
  witness.p = violation.p;
  witness.q = violation.q;
  SccInfo scc = ComputeScc(minimal_dfa);
  PairReachability reach(minimal_dfa, /*blind=*/false);
  witness.r = -1;
  for (int candidate : scc.members[violation.component]) {
    if (reach.MeetsIn(witness.p, witness.q, candidate)) {
      witness.r = candidate;
      break;
    }
  }
  SST_CHECK(witness.r >= 0);
  SST_CHECK(
      reach.FindMeetInWord(witness.p, witness.q, witness.r, &witness.u));
  SST_CHECK(FindAlmostDistinguishingWord(minimal_dfa, witness.p, witness.q,
                                         &witness.t));
  // Orient the pair as in the proof: p·t accepting, q·t rejecting.
  if (!minimal_dfa.accepting[minimal_dfa.Run(witness.p, witness.t)]) {
    std::swap(witness.p, witness.q);
  }
  // v: r -> p, w: r -> q, made nonempty with loops inside the SCC.
  SST_CHECK(FindConnectingWord(minimal_dfa, witness.r, witness.p,
                               /*nonempty=*/false, &witness.v));
  SST_CHECK(FindConnectingWord(minimal_dfa, witness.r, witness.q,
                               /*nonempty=*/false, &witness.w));
  if (witness.v.empty()) {
    Word loop;
    SST_CHECK(FindLoopingWord(minimal_dfa, witness.p, &loop));
    witness.v = loop;
  }
  if (witness.w.empty()) {
    Word loop;
    SST_CHECK(FindLoopingWord(minimal_dfa, witness.q, &loop));
    witness.w = loop;
  }
  SST_CHECK(FindConnectingWord(minimal_dfa, minimal_dfa.initial, witness.r,
                               /*nonempty=*/true, &witness.s));
  // Pad u with loops at r until |u| >= |t|.
  Word loop_r;
  SST_CHECK(FindLoopingWord(minimal_dfa, witness.r, &loop_r));
  while (witness.u.size() < witness.t.size()) {
    witness.u = Concat({&witness.u, &loop_r});
  }
  return witness;
}

FoolingPair BuildLemma312Trees(const NonEFlatWitness& witness, int exponent,
                               const Dfa& minimal_dfa) {
  SST_CHECK(exponent >= 1);
  const Word u_pumped = Repeat(witness.u, exponent);
  const Word side_branch = Concat({&u_pumped, &witness.x});

  auto build = [&](bool extra_segment) {
    Word trunk = extra_segment ? Concat({&witness.s, &u_pumped}) : witness.s;
    int bottom = 0;
    Tree tree = ChainWithBottom(trunk, &bottom);
    AppendChain(&tree, bottom, side_branch);
    AppendChain(&tree, bottom, witness.t);
    AppendChain(&tree, bottom, side_branch);
    return tree;
  };

  Tree s_tree = build(false);        // branches: s·u^N·x, s·t, s·u^N·x
  Tree s_prime_tree = build(true);   // branches: s·u^N·u^N·x, s·u^N·t, ...

  FoolingPair pair;
  pair.exponent = exponent;
  Word st = Concat({&witness.s, &witness.t});
  if (minimal_dfa.Accepts(st)) {
    pair.in_el = std::move(s_tree);
    pair.out_el = std::move(s_prime_tree);
  } else {
    pair.in_el = std::move(s_prime_tree);
    pair.out_el = std::move(s_tree);
  }
  return pair;
}

FoolingPair BuildLemma316Trees(const NonHarWitness& witness, int exponent,
                               const Dfa& minimal_dfa) {
  SST_CHECK(exponent >= 1);
  const int n = exponent;
  const Word vu = Concat({&witness.v, &witness.u});
  const Word uv = Concat({&witness.u, &witness.v});
  const Word vu_2n = Repeat(vu, 2 * n);
  // y = w·u·(vu)^{2N}; one level is the chain y^N · w.
  const Word y = Concat({&witness.w, &witness.u, &vu_2n});
  const Word y_n = Repeat(y, n);
  const Word level = Concat({&y_n, &witness.w});
  // The continuation (uv)^{2N}·u completes the level to y^{N+1}.
  const Word uv_2n = Repeat(uv, 2 * n);
  const Word cont = Concat({&uv_2n, &witness.u});
  const Word uv_n = Repeat(uv, n);
  const Word final_branch = Concat({&witness.w, &witness.t});

  // Build the spine top-down, then attach every level's t-leaf as a *right*
  // sibling of the continuation subtree: the t-leaves are visited on the
  // way back up, after the victim has had to backtrack out of the deep
  // continuation — exactly where depth registers run out (Fig 5 reads the
  // t t̄ blocks inside the ascending x̄/ȳ phases). In the modified tree the
  // (uv)^N segment is inserted into the spine of the middle level, just
  // before its branching, turning its wt-branch into a w·u(vu)^{N-1}·vt
  // branch (in L) while every other branch stays in s(wu+vu)*wt.
  auto build = [&](bool modified) {
    int bottom = 0;
    Tree tree = ChainWithBottom(witness.s, &bottom);
    std::vector<int> branching_nodes;
    for (int i = 1; i <= 2 * n + 1; ++i) {
      bottom = AppendChain(&tree, bottom, level);
      if (modified && i == n + 1) {
        bottom = AppendChain(&tree, bottom, uv_n);
      }
      branching_nodes.push_back(bottom);
      bottom = AppendChain(&tree, bottom, cont);
    }
    AppendChain(&tree, bottom, final_branch);
    // Right-sibling t-leaves, attached after the continuation subtrees.
    for (auto it = branching_nodes.rbegin(); it != branching_nodes.rend();
         ++it) {
      AppendChain(&tree, *it, witness.t);
    }
    return tree;
  };

  FoolingPair pair;
  pair.exponent = exponent;
  pair.out_el = build(false);  // all branches in s(wu+vu)*wt ⊆ L^c
  pair.in_el = build(true);    // one branch in s(wu+vu)*vt ⊆ L
  (void)minimal_dfa;
  return pair;
}

std::optional<BlindNonEFlatWitness> ExtractBlindNonEFlatWitness(
    const Dfa& minimal_dfa) {
  ClassViolation violation;
  if (IsBlindEFlat(minimal_dfa, &violation)) return std::nullopt;
  BlindNonEFlatWitness witness;
  witness.p = violation.p;
  witness.q = violation.q;
  SST_CHECK(FindConnectingWord(minimal_dfa, minimal_dfa.initial, witness.p,
                               /*nonempty=*/true, &witness.s));
  PairReachability reach(minimal_dfa, /*blind=*/true);
  SST_CHECK(reach.FindBlindMeetInWords(witness.p, witness.q, witness.q,
                                       &witness.u1, &witness.u2));
  SST_CHECK(!witness.u1.empty() && witness.u1.size() == witness.u2.size());
  SST_CHECK(FindWordToAcceptance(minimal_dfa, witness.q, /*accepting=*/false,
                                 &witness.x));
  SST_CHECK(FindAlmostDistinguishingWord(minimal_dfa, witness.p, witness.q,
                                         &witness.t));
  return witness;
}

FoolingPair BuildBlindLemma312Trees(const BlindNonEFlatWitness& witness,
                                    int exponent, const Dfa& minimal_dfa) {
  SST_CHECK(exponent >= 1);
  const int n = exponent;
  Word st = Concat({&witness.s, &witness.t});
  const bool st_in_language = minimal_dfa.Accepts(st);

  const Word u2_n = Repeat(witness.u2, n);
  const Word u2_n_minus_1 = Repeat(witness.u2, n - 1);
  const Word u2_n_plus_1 = Repeat(witness.u2, n + 1);

  // Left branch of both trees reads s·u1·u2^k·x ∈ L^c. The rightmost
  // branch starts with u1 when S' must be the EL member (its word is then
  // uncontrolled but irrelevant), and with u2 when S' must be EL-free
  // (making it s·u1·u2^{2N}·x ∈ L^c); cf. the two cases of Theorem B.1's
  // adaptation of Lemma 3.12.
  const Word right_head = st_in_language ? witness.u2 : witness.u1;

  // S: trunk s, children [u1·u2^N·x], [t], [right_head·u2^N·x].
  Word left_branch = Concat({&witness.u1, &u2_n, &witness.x});
  Word right_branch = Concat({&right_head, &u2_n, &witness.x});
  int bottom = 0;
  Tree s_tree = ChainWithBottom(witness.s, &bottom);
  AppendChain(&s_tree, bottom, left_branch);
  AppendChain(&s_tree, bottom, witness.t);
  AppendChain(&s_tree, bottom, right_branch);

  // S': trunk s·u1·u2^{N-1}, children [u2^{N+1}·x], [t],
  // [right_head·u2^N·x] — under the term encoding the ascent from the
  // first branch is indistinguishable from S's.
  Word trunk = Concat({&witness.s, &witness.u1, &u2_n_minus_1});
  Word deep_left = Concat({&u2_n_plus_1, &witness.x});
  Tree s_prime_tree = ChainWithBottom(trunk, &bottom);
  AppendChain(&s_prime_tree, bottom, deep_left);
  AppendChain(&s_prime_tree, bottom, witness.t);
  AppendChain(&s_prime_tree, bottom, right_branch);

  FoolingPair pair;
  pair.exponent = exponent;
  if (st_in_language) {
    pair.in_el = std::move(s_tree);        // the t-branch s·t ∈ L
    pair.out_el = std::move(s_prime_tree);
  } else {
    pair.in_el = std::move(s_prime_tree);  // s·u1·u2^{N-1}·t ∈ L
    pair.out_el = std::move(s_tree);
  }
  return pair;
}

std::optional<BlindNonHarWitness> ExtractBlindNonHarWitness(
    const Dfa& minimal_dfa) {
  ClassViolation violation;
  if (IsBlindHar(minimal_dfa, &violation)) return std::nullopt;
  BlindNonHarWitness witness;
  witness.p = violation.p;
  witness.q = violation.q;
  SccInfo scc = ComputeScc(minimal_dfa);
  PairReachability reach(minimal_dfa, /*blind=*/true);
  witness.r = -1;
  for (int candidate : scc.members[violation.component]) {
    if (reach.MeetsIn(witness.p, witness.q, candidate)) {
      witness.r = candidate;
      break;
    }
  }
  SST_CHECK(witness.r >= 0);
  SST_CHECK(FindAlmostDistinguishingWord(minimal_dfa, witness.p, witness.q,
                                         &witness.t));
  // Orient as in the proof: p·t accepting, q·t rejecting.
  if (!minimal_dfa.accepting[minimal_dfa.Run(witness.p, witness.t)]) {
    std::swap(witness.p, witness.q);
  }
  SST_CHECK(reach.FindBlindMeetInWords(witness.p, witness.q, witness.r,
                                       &witness.u1, &witness.u2));
  SST_CHECK(!witness.u1.empty() && witness.u1.size() == witness.u2.size());
  SST_CHECK(FindConnectingWord(minimal_dfa, witness.r, witness.p,
                               /*nonempty=*/false, &witness.v));
  SST_CHECK(FindConnectingWord(minimal_dfa, witness.r, witness.q,
                               /*nonempty=*/false, &witness.w));
  if (witness.v.empty()) {
    Word loop;
    SST_CHECK(FindLoopingWord(minimal_dfa, witness.p, &loop));
    witness.v = loop;
  }
  if (witness.w.empty()) {
    Word loop;
    SST_CHECK(FindLoopingWord(minimal_dfa, witness.q, &loop));
    witness.w = loop;
  }
  SST_CHECK(FindConnectingWord(minimal_dfa, minimal_dfa.initial, witness.r,
                               /*nonempty=*/true, &witness.s));
  return witness;
}

FoolingPair BuildBlindLemma316Trees(const BlindNonHarWitness& witness,
                                    int exponent, const Dfa& minimal_dfa) {
  SST_CHECK(exponent >= 1);
  const int n = exponent;
  const Word vu1 = Concat({&witness.v, &witness.u1});
  const Word vu1_2n = Repeat(vu1, 2 * n);
  // Block structure: y = w·u2·(v·u1)^{2N}; level spine = y^N · w.
  const Word y = Concat({&witness.w, &witness.u2, &vu1_2n});
  const Word y_n = Repeat(y, n);
  const Word level = Concat({&y_n, &witness.w});
  // Continuation after a plain w completes the level to y^{N+1}.
  const Word cont = Concat({&witness.u2, &vu1_2n});
  // The inserted spine segment of the modified level ends with v, so its
  // continuation resumes with u1 instead of u2.
  const Word vu1_n_minus_1 = Repeat(vu1, n - 1);
  const Word insert = Concat({&witness.u2, &vu1_n_minus_1, &witness.v});
  const Word cont_after_insert = Concat({&witness.u1, &vu1_2n});
  const Word final_branch = Concat({&witness.w, &witness.t});

  auto build = [&](bool modified) {
    int bottom = 0;
    Tree tree = ChainWithBottom(witness.s, &bottom);
    std::vector<int> branching_nodes;
    for (int i = 1; i <= 2 * n + 1; ++i) {
      bottom = AppendChain(&tree, bottom, level);
      bool insert_here = modified && i == n + 1;
      if (insert_here) bottom = AppendChain(&tree, bottom, insert);
      branching_nodes.push_back(bottom);
      bottom = AppendChain(&tree, bottom,
                           insert_here ? cont_after_insert : cont);
    }
    AppendChain(&tree, bottom, final_branch);
    for (auto it = branching_nodes.rbegin(); it != branching_nodes.rend();
         ++it) {
      AppendChain(&tree, *it, witness.t);
    }
    return tree;
  };

  FoolingPair pair;
  pair.exponent = exponent;
  pair.out_el = build(false);
  pair.in_el = build(true);
  (void)minimal_dfa;
  return pair;
}

std::optional<FoolingPair> FoolTermExistsRecognizer(const Dfa& minimal_dfa,
                                                    StreamMachine* victim,
                                                    bool use_har_gadget,
                                                    int max_exponent) {
  std::optional<BlindNonEFlatWitness> e_witness;
  std::optional<BlindNonHarWitness> har_witness;
  if (use_har_gadget) {
    har_witness = ExtractBlindNonHarWitness(minimal_dfa);
    if (!har_witness.has_value()) return std::nullopt;
  } else {
    e_witness = ExtractBlindNonEFlatWitness(minimal_dfa);
    if (!e_witness.has_value()) return std::nullopt;
  }
  auto term_events = [](const Tree& tree) {
    EventStream events = Encode(tree);
    for (TagEvent& event : events) {
      if (!event.open) event.symbol = -1;
    }
    return events;
  };
  for (int exponent = 1; exponent <= max_exponent; ++exponent) {
    FoolingPair pair =
        use_har_gadget
            ? BuildBlindLemma316Trees(*har_witness, exponent, minimal_dfa)
            : BuildBlindLemma312Trees(*e_witness, exponent, minimal_dfa);
    if (!TreeInExists(minimal_dfa, pair.in_el) ||
        TreeInExists(minimal_dfa, pair.out_el)) {
      continue;
    }
    bool verdict_in = RunAcceptor(victim, term_events(pair.in_el));
    bool verdict_out = RunAcceptor(victim, term_events(pair.out_el));
    if (verdict_in == verdict_out) return pair;
  }
  return std::nullopt;
}

std::optional<FoolingPair> FoolExistsRecognizer(const Dfa& minimal_dfa,
                                                StreamMachine* victim,
                                                bool use_har_gadget,
                                                int max_exponent) {
  std::optional<NonEFlatWitness> e_witness;
  std::optional<NonHarWitness> har_witness;
  if (use_har_gadget) {
    har_witness = ExtractNonHarWitness(minimal_dfa);
    if (!har_witness.has_value()) return std::nullopt;
  } else {
    e_witness = ExtractNonEFlatWitness(minimal_dfa);
    if (!e_witness.has_value()) return std::nullopt;
  }
  for (int exponent = 1; exponent <= max_exponent; ++exponent) {
    FoolingPair pair =
        use_har_gadget
            ? BuildLemma316Trees(*har_witness, exponent, minimal_dfa)
            : BuildLemma312Trees(*e_witness, exponent, minimal_dfa);
    // The construction guarantees the ground truths differ; verify anyway.
    if (!TreeInExists(minimal_dfa, pair.in_el) ||
        TreeInExists(minimal_dfa, pair.out_el)) {
      continue;
    }
    bool verdict_in = RunAcceptor(victim, Encode(pair.in_el));
    bool verdict_out = RunAcceptor(victim, Encode(pair.out_el));
    if (verdict_in == verdict_out) return pair;
  }
  return std::nullopt;
}

std::optional<Tree> FindQueryCounterexample(const Dfa& minimal_dfa,
                                            StreamMachine* victim,
                                            bool term_encoded, int attempts,
                                            uint64_t seed) {
  Rng rng(seed);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    int nodes = 1 + static_cast<int>(rng.NextBelow(40));
    Tree tree = RandomTree(nodes, minimal_dfa.num_symbols, rng.NextDouble(),
                           &rng);
    if (RunQueryOnTree(victim, tree, term_encoded) !=
        SelectNodes(minimal_dfa, tree)) {
      return tree;
    }
  }
  return std::nullopt;
}

namespace {

// Configuration of a DRA after the Kn prefix; registers are compared by
// value since the depth is the same for every choice.
using DraConfiguration = std::vector<int64_t>;

DraConfiguration RunKnPrefix(const Dra& dra, int n, uint32_t mask) {
  std::vector<bool> a_child(n, false);
  for (int bit = 0; bit < n - 2; ++bit) {
    a_child[bit + 1] = (mask >> bit) & 1;
  }
  std::vector<bool> c_child(n, false);
  Tree tree = KnSchemaTree(n, a_child, c_child, /*a=*/0, /*b=*/1, /*c=*/2);
  EventStream events = Encode(tree);
  DraRunner runner(&dra);
  runner.Reset();
  int64_t depth = 0;
  for (const TagEvent& event : events) {
    depth += event.open ? 1 : -1;
    if (event.open) {
      runner.OnOpen(event.symbol);
    } else {
      runner.OnClose(event.symbol);
    }
    if (event.open && event.symbol == 1 && depth == n) break;  // deepest b
  }
  DraConfiguration config;
  config.push_back(runner.state());
  for (int64_t value : runner.registers()) config.push_back(value);
  return config;
}

}  // namespace

int CountKnPrefixConfigurations(const Dra& dra, int n) {
  SST_CHECK(n > 2 && n <= 22);
  std::map<DraConfiguration, uint32_t> seen;
  for (uint32_t mask = 0; mask < (uint32_t{1} << (n - 2)); ++mask) {
    seen.emplace(RunKnPrefix(dra, n, mask), mask);
  }
  return static_cast<int>(seen.size());
}

std::optional<std::pair<uint32_t, uint32_t>> FindKnPrefixCollision(
    const Dra& dra, int n) {
  SST_CHECK(n > 2 && n <= 22);
  std::map<DraConfiguration, uint32_t> seen;
  for (uint32_t mask = 0; mask < (uint32_t{1} << (n - 2)); ++mask) {
    auto [it, inserted] = seen.emplace(RunKnPrefix(dra, n, mask), mask);
    if (!inserted) return std::make_pair(it->second, mask);
  }
  return std::nullopt;
}

}  // namespace sst
