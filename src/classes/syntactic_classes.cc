#include "classes/syntactic_classes.h"

#include <vector>

#include "automata/relations.h"
#include "automata/scc.h"

namespace sst {

namespace {

bool CheckAlmostReversible(const Dfa& dfa, bool blind,
                           ClassViolation* violation) {
  PairReachability reach(dfa, blind);
  std::vector<bool> internal = InternalStates(dfa);
  for (int p = 0; p < dfa.num_states; ++p) {
    if (!internal[p]) continue;
    for (int q = p + 1; q < dfa.num_states; ++q) {
      if (!internal[q]) continue;
      if (reach.Meets(p, q) && !AlmostEquivalentStates(dfa, p, q)) {
        if (violation != nullptr) *violation = {p, q, -1};
        return false;
      }
    }
  }
  return true;
}

bool CheckHar(const Dfa& dfa, bool blind, ClassViolation* violation) {
  PairReachability reach(dfa, blind);
  SccInfo scc = ComputeScc(dfa);
  for (int c = 0; c < scc.num_components; ++c) {
    const std::vector<int>& states = scc.members[c];
    for (size_t i = 0; i < states.size(); ++i) {
      for (size_t j = i + 1; j < states.size(); ++j) {
        int p = states[i];
        int q = states[j];
        if (AlmostEquivalentStates(dfa, p, q)) continue;
        if (reach.MeetsInAnyOf(p, q, states)) {
          if (violation != nullptr) *violation = {p, q, c};
          return false;
        }
      }
    }
  }
  return true;
}

bool CheckEFlat(const Dfa& dfa, bool blind, ClassViolation* violation) {
  PairReachability reach(dfa, blind);
  std::vector<bool> internal = InternalStates(dfa);
  std::vector<bool> rejective = RejectiveStates(dfa);
  for (int q = 0; q < dfa.num_states; ++q) {
    if (!rejective[q]) continue;
    for (int p = 0; p < dfa.num_states; ++p) {
      if (!internal[p] || p == q) continue;
      if (AlmostEquivalentStates(dfa, p, q)) continue;
      if (reach.MeetsIn(p, q, q)) {
        if (violation != nullptr) *violation = {p, q, -1};
        return false;
      }
    }
  }
  return true;
}

bool CheckAFlat(const Dfa& dfa, bool blind, ClassViolation* violation) {
  PairReachability reach(dfa, blind);
  std::vector<bool> internal = InternalStates(dfa);
  std::vector<bool> acceptive = AcceptiveStates(dfa);
  for (int q = 0; q < dfa.num_states; ++q) {
    if (!acceptive[q]) continue;
    for (int p = 0; p < dfa.num_states; ++p) {
      if (!internal[p] || p == q) continue;
      if (AlmostEquivalentStates(dfa, p, q)) continue;
      if (reach.MeetsIn(p, q, q)) {
        if (violation != nullptr) *violation = {p, q, -1};
        return false;
      }
    }
  }
  return true;
}

}  // namespace

bool IsAlmostReversible(const Dfa& dfa, ClassViolation* violation) {
  return CheckAlmostReversible(dfa, /*blind=*/false, violation);
}

bool IsHar(const Dfa& dfa, ClassViolation* violation) {
  return CheckHar(dfa, /*blind=*/false, violation);
}

bool IsEFlat(const Dfa& dfa, ClassViolation* violation) {
  return CheckEFlat(dfa, /*blind=*/false, violation);
}

bool IsAFlat(const Dfa& dfa, ClassViolation* violation) {
  return CheckAFlat(dfa, /*blind=*/false, violation);
}

bool IsBlindAlmostReversible(const Dfa& dfa, ClassViolation* violation) {
  return CheckAlmostReversible(dfa, /*blind=*/true, violation);
}

bool IsBlindHar(const Dfa& dfa, ClassViolation* violation) {
  return CheckHar(dfa, /*blind=*/true, violation);
}

bool IsBlindEFlat(const Dfa& dfa, ClassViolation* violation) {
  return CheckEFlat(dfa, /*blind=*/true, violation);
}

bool IsBlindAFlat(const Dfa& dfa, ClassViolation* violation) {
  return CheckAFlat(dfa, /*blind=*/true, violation);
}

bool IsRTrivial(const Dfa& dfa) {
  SccInfo scc = ComputeScc(dfa);
  for (int c = 0; c < scc.num_components; ++c) {
    if (scc.members[c].size() > 1) return false;
  }
  return true;
}

bool IsReversible(const Dfa& dfa) {
  std::vector<bool> seen(dfa.num_states);
  for (Symbol a = 0; a < dfa.num_symbols; ++a) {
    seen.assign(dfa.num_states, false);
    for (int q = 0; q < dfa.num_states; ++q) {
      int to = dfa.Next(q, a);
      if (seen[to]) return false;
      seen[to] = true;
    }
  }
  return true;
}

Classification Classify(const Dfa& minimal_dfa) {
  Classification c;
  c.almost_reversible = IsAlmostReversible(minimal_dfa);
  c.har = IsHar(minimal_dfa);
  c.e_flat = IsEFlat(minimal_dfa);
  c.a_flat = IsAFlat(minimal_dfa);
  c.blind_almost_reversible = IsBlindAlmostReversible(minimal_dfa);
  c.blind_har = IsBlindHar(minimal_dfa);
  c.blind_e_flat = IsBlindEFlat(minimal_dfa);
  c.blind_a_flat = IsBlindAFlat(minimal_dfa);
  c.r_trivial = IsRTrivial(minimal_dfa);
  c.reversible = IsReversible(minimal_dfa);
  return c;
}

std::string Classification::ToString() const {
  auto mark = [](bool b) { return b ? "yes" : "no"; };
  std::string out;
  out += "almost-reversible: ";
  out += mark(almost_reversible);
  out += "\nHAR:               ";
  out += mark(har);
  out += "\nE-flat:            ";
  out += mark(e_flat);
  out += "\nA-flat:            ";
  out += mark(a_flat);
  out += "\nblind AR:          ";
  out += mark(blind_almost_reversible);
  out += "\nblind HAR:         ";
  out += mark(blind_har);
  out += "\nblind E-flat:      ";
  out += mark(blind_e_flat);
  out += "\nblind A-flat:      ";
  out += mark(blind_a_flat);
  out += "\nR-trivial:         ";
  out += mark(r_trivial);
  out += "\nreversible:        ";
  out += mark(reversible);
  out += "\n";
  return out;
}

}  // namespace sst
