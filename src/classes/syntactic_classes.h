#ifndef SST_CLASSES_SYNTACTIC_CLASSES_H_
#define SST_CLASSES_SYNTACTIC_CLASSES_H_

#include <optional>
#include <string>

#include "automata/dfa.h"

namespace sst {

// The four syntactic classes of regular languages from Section 3 of the
// paper, plus their "blind" analogues from Section 4.2 / Appendix B. All
// predicates must be applied to the *minimal* complete DFA of the language
// (the definitions are stated on the minimal automaton; see Fig 6 for why
// this matters). Use Minimize() first.
//
//   almost-reversible (Def 3.4)  <=> QL registerless          (Thm 3.2(3))
//   HAR (Def 3.6)                <=> QL/EL/AL stackless       (Thm 3.1)
//   E-flat (Def 3.9)             <=> EL registerless          (Thm 3.2(1))
//   A-flat (Def 3.9)             <=> AL registerless          (Thm 3.2(2))
//   blind variants               <=> the same under the term encoding
//                                     (Thms B.1, B.2)

// A failed class test yields the offending pair of states; the fooling
// module turns these into concrete indistinguishable trees.
struct ClassViolation {
  int p = -1;  // internal state (E/A-flat) or first state of the pair
  int q = -1;  // rejective/acceptive state, or second state of the pair
  // For HAR violations: the shared SCC id; otherwise -1.
  int component = -1;
};

bool IsAlmostReversible(const Dfa& minimal_dfa,
                        ClassViolation* violation = nullptr);
bool IsHar(const Dfa& minimal_dfa, ClassViolation* violation = nullptr);
bool IsEFlat(const Dfa& minimal_dfa, ClassViolation* violation = nullptr);
bool IsAFlat(const Dfa& minimal_dfa, ClassViolation* violation = nullptr);

bool IsBlindAlmostReversible(const Dfa& minimal_dfa,
                             ClassViolation* violation = nullptr);
bool IsBlindHar(const Dfa& minimal_dfa, ClassViolation* violation = nullptr);
bool IsBlindEFlat(const Dfa& minimal_dfa,
                  ClassViolation* violation = nullptr);
bool IsBlindAFlat(const Dfa& minimal_dfa,
                  ClassViolation* violation = nullptr);

// True if every SCC of the DFA is a singleton without a self-loop on more
// than... precisely: no SCC contains two distinct states (self-loops are
// fine). R-trivial languages are a strict subclass of HAR (Section 3.2).
bool IsRTrivial(const Dfa& minimal_dfa);

// True if every letter induces an injective (= bijective) function on
// states; reversible languages are a strict subclass of almost-reversible.
bool IsReversible(const Dfa& dfa);

// Full classification of a language given by its minimal DFA.
struct Classification {
  bool almost_reversible = false;
  bool har = false;
  bool e_flat = false;
  bool a_flat = false;
  bool blind_almost_reversible = false;
  bool blind_har = false;
  bool blind_e_flat = false;
  bool blind_a_flat = false;
  bool r_trivial = false;
  bool reversible = false;

  // Markup encoding (Theorems 3.1 and 3.2).
  bool QueryRegisterless() const { return almost_reversible; }
  bool QueryStackless() const { return har; }
  bool ExistsRegisterless() const { return e_flat; }
  bool ForallRegisterless() const { return a_flat; }
  // Term encoding (Theorems B.1 and B.2).
  bool TermQueryRegisterless() const { return blind_almost_reversible; }
  bool TermQueryStackless() const { return blind_har; }
  bool TermExistsRegisterless() const { return blind_e_flat; }
  bool TermForallRegisterless() const { return blind_a_flat; }

  std::string ToString() const;
};

Classification Classify(const Dfa& minimal_dfa);

}  // namespace sst

#endif  // SST_CLASSES_SYNTACTIC_CLASSES_H_
