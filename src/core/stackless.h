#ifndef SST_CORE_STACKLESS_H_
#define SST_CORE_STACKLESS_H_

#include <memory>
#include <optional>
#include <string>

#include "automata/dfa.h"
#include "classes/syntactic_classes.h"
#include "dra/machine.h"
#include "engine/query_plan.h"
#include "query/rpq.h"
#include "trees/tree.h"

namespace sst {

// Public facade of the library: classify an RPQ per the paper's
// characterization theorems and compile the strongest streaming evaluator
// that provably realizes it.
//
// Since the engine layer landed, this facade is an adapter over
// engine/query_plan.h: CompileQuery compiles (or reuses) an immutable
// QueryPlan and wraps a per-stream machine over it. Serving loops that
// run one query over many streams should use the engine directly
// (QueryPlan / PlanCache / Session) to share one plan across streams; the
// facade keeps the one-shot ergonomics.
//
//   markup encoding (XML-style, labelled closing tags):
//     registerless  <=>  L almost-reversible        (Theorem 3.2(3))
//     stackless     <=>  L hierarchically almost-reversible (Theorem 3.1)
//   term encoding (JSON-style, universal closing tag):
//     registerless  <=>  L blindly almost-reversible (Theorem B.1)
//     stackless     <=>  L blindly HAR               (Theorem B.2)
//
// Boolean variants: EL ("some branch matches") is registerless iff L is
// E-flat; AL ("all branches match") iff L is A-flat (Theorem 3.2(1,2));
// both are stackless iff L is HAR (Theorem 3.1).

// StreamEncoding, EvaluatorKind, and EvaluatorKindName now live in
// engine/query_plan.h (included above); they are re-exported here
// unchanged for existing users of the facade.

// A compiled streaming evaluator: a per-stream machine over a shared
// immutable QueryPlan. Move-only. The plan is exposed so callers can open
// additional streams over the same compilation (see engine/session.h) —
// `machine` is one such stream's mutable state.
struct CompiledQuery {
  EvaluatorKind kind = EvaluatorKind::kStackBaseline;
  Classification classification;
  // The shared compile-once artifact behind `machine`. Set by CompileQuery
  // (unary QL); the Boolean compilers (CompileExists / CompileForall) build
  // recognizer machines outside the plan model and leave it null.
  // Declared before `machine` so the machine is destroyed first.
  std::shared_ptr<const QueryPlan> plan;
  std::unique_ptr<StreamMachine> machine;
  // The machine realizes the query exactly; false only when the stack
  // fallback was disabled and no stackless evaluator exists — in that case
  // `machine` is null.
  bool exact = false;
};

// Classification shortcut (equivalent to Classify(rpq.minimal_dfa)).
Classification ClassifyQuery(const Rpq& rpq);

// Compiles the strongest evaluator realizing the unary query Q_L under the
// given encoding. If neither characterization applies and
// `allow_stack_fallback` is set, returns the pushdown baseline; otherwise
// returns a CompiledQuery with machine == nullptr.
CompiledQuery CompileQuery(const Rpq& rpq, StreamEncoding encoding,
                           bool allow_stack_fallback = true);

// Boolean compilers: recognizers for EL = "some branch of T is in L" and
// AL = "every branch of T is in L".
CompiledQuery CompileExists(const Rpq& rpq, StreamEncoding encoding,
                            bool allow_stack_fallback = true);
CompiledQuery CompileForall(const Rpq& rpq, StreamEncoding encoding,
                            bool allow_stack_fallback = true);

// Convenience: run a compiled query over a materialized tree; returns the
// pre-selected node ids in document order.
std::vector<int> SelectWithMachine(const CompiledQuery& compiled,
                                   const Tree& tree,
                                   StreamEncoding encoding);

// Why a query cannot be evaluated stacklessly/registerlessly — with an
// executable certificate. When the classification rules a tier out, the
// report carries a pair of trees whose EL membership differs but which the
// best-effort machine of that tier cannot tell apart (the Fig 4 / Fig 5
// gadgets of Lemmas 3.12 / 3.16), re-verified before being returned.
// Certificates are produced for the markup encoding; the term encoding's
// verdicts are still reported.
struct QueryLimitsReport {
  Classification classification;
  bool registerless = false;  // under the markup encoding
  bool stackless = false;
  std::string summary;
  // Present when !stackless (Lemma 3.16 gadget) or when stackless but
  // !registerless and the language is not E-flat (Lemma 3.12 gadget).
  std::optional<Tree> certificate_in_el;
  std::optional<Tree> certificate_out_el;
};

QueryLimitsReport ExplainQueryLimits(const Rpq& rpq);

}  // namespace sst

#endif  // SST_CORE_STACKLESS_H_
