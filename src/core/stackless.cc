#include "core/stackless.h"

#include <utility>

#include "eval/adapters.h"
#include "eval/al_recognizer.h"
#include "eval/el_synopsis.h"
#include "eval/registerless_query.h"
#include "eval/stack_evaluator.h"
#include "eval/stackless_query.h"
#include "fooling/fooling.h"

namespace sst {

namespace {

// Materialization budget for explicit recognizer automata; beyond this the
// constructions run as interpreters.
constexpr int kMaterializeBudget = 1 << 16;

// StreamMachine wrappers that own the automata they run.
class OwningTagDfaMachine final : public StreamMachine {
 public:
  explicit OwningTagDfaMachine(TagDfa dfa)
      : dfa_(std::move(dfa)), inner_(&dfa_) {}

  void Reset() override { inner_.Reset(); }
  void OnOpen(Symbol symbol) override { inner_.OnOpen(symbol); }
  void OnClose(Symbol symbol) override { inner_.OnClose(symbol); }
  bool InAcceptingState() const override { return inner_.InAcceptingState(); }

  const TagDfa* ExportTagDfa() const override { return &dfa_; }
  int ExportedState() const override { return inner_.ExportedState(); }
  void SyncExportedState(int state) override {
    inner_.SyncExportedState(state);
  }

 private:
  TagDfa dfa_;
  TagDfaMachine inner_;
};

class OwningStackMachine final : public StreamMachine {
 public:
  explicit OwningStackMachine(Dfa dfa)
      : dfa_(std::move(dfa)), inner_(&dfa_) {}

  void Reset() override { inner_.Reset(); }
  void OnOpen(Symbol symbol) override { inner_.OnOpen(symbol); }
  void OnClose(Symbol symbol) override { inner_.OnClose(symbol); }
  bool InAcceptingState() const override { return inner_.InAcceptingState(); }

  // Checkpoint protocol and stack diagnostics pass through to the pooled
  // evaluator (see BorrowingStackMachine in engine/query_plan.cc).
  bool SaveConfig(std::vector<int64_t>* out) override {
    return inner_.SaveConfig(out);
  }
  bool RestoreConfig(const std::vector<int64_t>& config) override {
    return inner_.RestoreConfig(config);
  }
  bool ConfigEqualsCurrent(const std::vector<int64_t>& config) const override {
    return inner_.ConfigEqualsCurrent(config);
  }
  void ReleaseConfig(const std::vector<int64_t>& config) override {
    inner_.ReleaseConfig(config);
  }
  int64_t StackDepthPeak() const override { return inner_.StackDepthPeak(); }
  int64_t StackUnderflowCloses() const override {
    return inner_.StackUnderflowCloses();
  }

 private:
  Dfa dfa_;
  StackQueryEvaluator inner_;
};

std::unique_ptr<StreamMachine> MakeQueryMachine(const Dfa& minimal,
                                                EvaluatorKind kind,
                                                bool blind) {
  switch (kind) {
    case EvaluatorKind::kRegisterless:
      return std::make_unique<OwningTagDfaMachine>(
          BuildRegisterlessQueryAutomaton(minimal, blind));
    case EvaluatorKind::kStackless:
      return std::make_unique<StacklessQueryEvaluator>(minimal, blind);
    case EvaluatorKind::kStackBaseline:
      return std::make_unique<OwningStackMachine>(minimal);
  }
  return nullptr;
}

}  // namespace

Classification ClassifyQuery(const Rpq& rpq) {
  return Classify(rpq.minimal_dfa);
}

CompiledQuery CompileQuery(const Rpq& rpq, StreamEncoding encoding,
                           bool allow_stack_fallback) {
  // Facade-as-adapter: compile an engine QueryPlan (the shared immutable
  // artifact) and hand back one per-stream machine over it. The plan rides
  // along in the result so callers can open more streams over the same
  // compilation (engine/session.h).
  PlanOptions options;
  options.encoding = encoding;
  options.format = StreamFormat::kCompactMarkup;
  options.allow_stack_fallback = allow_stack_fallback;
  CompiledQuery result;
  result.plan = QueryPlan::Compile(rpq, options);
  result.classification = result.plan->classification();
  result.kind = result.plan->kind();
  if (!result.plan->exact()) {
    return result;  // exact = false, machine = nullptr
  }
  result.machine = result.plan->NewMachine();
  result.exact = true;
  return result;
}

CompiledQuery CompileExists(const Rpq& rpq, StreamEncoding encoding,
                            bool allow_stack_fallback) {
  const bool term = encoding == StreamEncoding::kTerm;
  CompiledQuery result;
  result.classification = ClassifyQuery(rpq);
  const Classification& c = result.classification;
  bool registerless = term ? c.blind_e_flat : c.e_flat;
  bool stackless = term ? c.blind_har : c.har;
  if (registerless) {
    result.kind = EvaluatorKind::kRegisterless;
    // Prefer the explicit table automaton (fast, branch-light); fall back
    // to the synopsis interpreter when the state space is too large.
    std::optional<TagDfa> materialized =
        MaterializeElRecognizer(rpq.minimal_dfa, term, kMaterializeBudget);
    if (materialized.has_value()) {
      result.machine =
          std::make_unique<OwningTagDfaMachine>(std::move(*materialized));
    } else {
      result.machine =
          std::make_unique<ElSynopsisRecognizer>(rpq.minimal_dfa, term);
    }
  } else if (stackless) {
    result.kind = EvaluatorKind::kStackless;
    result.machine = std::make_unique<ExistsAdapter>(
        MakeQueryMachine(rpq.minimal_dfa, EvaluatorKind::kStackless, term));
  } else if (allow_stack_fallback) {
    result.kind = EvaluatorKind::kStackBaseline;
    result.machine = std::make_unique<ExistsAdapter>(MakeQueryMachine(
        rpq.minimal_dfa, EvaluatorKind::kStackBaseline, term));
  } else {
    return result;
  }
  result.exact = true;
  return result;
}

CompiledQuery CompileForall(const Rpq& rpq, StreamEncoding encoding,
                            bool allow_stack_fallback) {
  const bool term = encoding == StreamEncoding::kTerm;
  CompiledQuery result;
  result.classification = ClassifyQuery(rpq);
  const Classification& c = result.classification;
  bool registerless = term ? c.blind_a_flat : c.a_flat;
  bool stackless = term ? c.blind_har : c.har;
  if (registerless) {
    result.kind = EvaluatorKind::kRegisterless;
    std::optional<TagDfa> materialized =
        MaterializeForallRecognizer(rpq.minimal_dfa, term,
                                    kMaterializeBudget);
    if (materialized.has_value()) {
      result.machine =
          std::make_unique<OwningTagDfaMachine>(std::move(*materialized));
    } else {
      result.machine = BuildForallRecognizer(rpq.minimal_dfa, term);
    }
  } else if (stackless) {
    result.kind = EvaluatorKind::kStackless;
    result.machine = std::make_unique<ForallAdapter>(
        MakeQueryMachine(rpq.minimal_dfa, EvaluatorKind::kStackless, term));
  } else if (allow_stack_fallback) {
    result.kind = EvaluatorKind::kStackBaseline;
    result.machine = std::make_unique<ForallAdapter>(MakeQueryMachine(
        rpq.minimal_dfa, EvaluatorKind::kStackBaseline, term));
  } else {
    return result;
  }
  result.exact = true;
  return result;
}

QueryLimitsReport ExplainQueryLimits(const Rpq& rpq) {
  QueryLimitsReport report;
  report.classification = ClassifyQuery(rpq);
  const Classification& c = report.classification;
  report.registerless = c.QueryRegisterless();
  report.stackless = c.QueryStackless();
  const Dfa& dfa = rpq.minimal_dfa;
  if (report.registerless) {
    report.summary =
        "The language is almost-reversible: a plain finite automaton "
        "evaluates the query over the markup encoding (Theorem 3.2).";
    return report;
  }
  if (!report.stackless) {
    report.summary =
        "The language is not hierarchically almost-reversible: no "
        "depth-register automaton realizes the query (Theorem 3.1). The "
        "attached trees differ on 'some branch matches' yet the Lemma 3.8 "
        "machine, run as a recognizer, returns the same verdict on both "
        "(Fig 5 / Lemma 3.16).";
    ExistsAdapter victim(
        std::make_unique<StacklessQueryEvaluator>(dfa, /*blind=*/false));
    if (std::optional<FoolingPair> pair = FoolExistsRecognizer(
            dfa, &victim, /*use_har_gadget=*/true, /*max_exponent=*/8);
        pair.has_value()) {
      report.certificate_in_el = std::move(pair->in_el);
      report.certificate_out_el = std::move(pair->out_el);
    }
    return report;
  }
  report.summary =
      "The language is HAR but not almost-reversible: a depth-register "
      "automaton evaluates the query, but no plain finite automaton does "
      "(Theorems 3.1 and 3.2).";
  if (!c.e_flat) {
    // Certificate against the finite-state tier (Lemma 3.12).
    TagDfa evaluator = BuildRegisterlessQueryAutomaton(dfa, /*blind=*/false);
    auto inner = std::make_unique<TagDfaMachine>(&evaluator);
    ExistsAdapter victim(std::move(inner));
    if (std::optional<FoolingPair> pair = FoolExistsRecognizer(
            dfa, &victim, /*use_har_gadget=*/false, /*max_exponent=*/16);
        pair.has_value()) {
      report.certificate_in_el = std::move(pair->in_el);
      report.certificate_out_el = std::move(pair->out_el);
    }
  }
  return report;
}

std::vector<int> SelectWithMachine(const CompiledQuery& compiled,
                                   const Tree& tree,
                                   StreamEncoding encoding) {
  std::vector<bool> selected =
      RunQueryOnTree(compiled.machine.get(), tree,
                     encoding == StreamEncoding::kTerm);
  std::vector<int> ids;
  for (int id = 0; id < tree.size(); ++id) {
    if (selected[id]) ids.push_back(id);
  }
  return ids;
}

}  // namespace sst
