#ifndef SST_TREEAUTO_MARKED_TREES_H_
#define SST_TREEAUTO_MARKED_TREES_H_

#include <optional>

#include "automata/dfa.h"
#include "dra/dra.h"
#include "treeauto/hedge_automaton.h"

namespace sst {

// Marked trees (Proposition 2.13): trees over Γ × {0,1}, encoded here by
// doubling the alphabet — the label of a marked a-node is a + |Γ|.
//
// MaterializeDraHedgeAutomaton turns a *restricted* DRA into an explicit
// hedge automaton via the auxiliary-labelling construction of Proposition
// 2.3. With `marked` unset the automaton recognizes exactly the DRA's tree
// language (over Γ); with `marked` set it recognizes M_Q — the marked
// trees of the query the DRA realizes (a node's mark must equal the DRA's
// pre-selection bit). Returns nullopt if more than `max_states` auxiliary
// states arise.
std::optional<HedgeAutomaton> MaterializeDraHedgeAutomaton(
    const Dra& restricted_dra, bool marked, int max_states);

// M_{Q_L} for a path query: marked trees over Γ × {0,1} where a node is
// marked iff its root-to-node word is in L (given by a complete DFA over
// Γ). Deterministic by construction.
HedgeAutomaton MarkedPathAutomaton(const Dfa& dfa);

// Proposition 2.13, exact: the query realized by the restricted DRA is an
// RPQ iff M_Q equals M_{L_Q} as tree languages, where L_Q is read off the
// DRA's chain behaviour. nullopt if the automata exceed the budget.
std::optional<bool> IsRpqExact(const Dra& restricted_dra, int max_states);

}  // namespace sst

#endif  // SST_TREEAUTO_MARKED_TREES_H_
