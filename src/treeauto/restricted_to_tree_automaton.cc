#include "treeauto/restricted_to_tree_automaton.h"

#include <algorithm>
#include <set>

#include "base/check.h"

namespace sst {

namespace {

// Builds a comparison code from the three register sets.
int CmpCode(int num_registers, uint32_t greater_set, uint32_t equal_set) {
  int code = 0;
  for (int r = num_registers - 1; r >= 0; --r) {
    int digit = (greater_set >> r) & 1   ? Dra::kGreater
                : (equal_set >> r) & 1   ? Dra::kEqual
                                         : Dra::kLess;
    code = code * 3 + digit;
  }
  return code;
}

}  // namespace

RestrictedDraTreeAutomaton::RestrictedDraTreeAutomaton(const Dra& dra)
    : dra_(dra) {
  SST_CHECK_MSG(IsRestricted(dra_),
                "Proposition 2.3 applies to restricted DRAs only");
}

Dra::Action RestrictedDraTreeAutomaton::OpenAction(int state,
                                                   Symbol label) const {
  // Opening a node at a fresh maximal depth: every register is strictly
  // below the new depth (X≤ = Ξ, X≥ = ∅).
  return dra_.At(state, /*is_close=*/false, label,
                 CmpCode(dra_.num_registers, 0, 0));
}

Dra::Action RestrictedDraTreeAutomaton::CloseAction(int state, Symbol label,
                                                    uint32_t child_loads,
                                                    uint32_t equal_set) const {
  // Closing a child: the registers loaded inside it are strictly greater
  // than the current depth; the accumulated X ∪ Z_1 ∪ … ∪ Z_{i-1} equal it;
  // everything else is strictly below.
  return dra_.At(state, /*is_close=*/true, label,
                 CmpCode(dra_.num_registers, child_loads,
                         equal_set & ~child_loads));
}

std::vector<RestrictedDraTreeAutomaton::AuxState>
RestrictedDraTreeAutomaton::PossibleStates(
    Symbol label,
    const std::vector<std::vector<AuxState>>& children) const {
  std::vector<AuxState> result;
  const uint32_t all_registers =
      dra_.num_registers == 32
          ? ~uint32_t{0}
          : (uint32_t{1} << dra_.num_registers) - 1;

  // Candidate (X, p) pairs: images of the open transition.
  std::set<std::pair<uint32_t, int>> entries;
  for (int s = 0; s < dra_.num_states; ++s) {
    Dra::Action action = OpenAction(s, label);
    entries.emplace(action.load_mask, action.next);
  }

  for (const auto& [load_open, state_open] : entries) {
    // Horizontal left-to-right scan over the children's guessed labels.
    std::set<HorizontalState> frontier = {
        HorizontalState{state_open, 0, load_open}};
    for (const std::vector<AuxState>& child : children) {
      std::set<HorizontalState> next;
      for (const HorizontalState& h : frontier) {
        for (const AuxState& sigma : child) {
          Dra::Action open = OpenAction(h.expected_entry, sigma.label);
          if (open.load_mask != sigma.load_open ||
              open.next != sigma.state_open) {
            continue;
          }
          uint32_t inside = sigma.load_open | sigma.loads_inside;
          Dra::Action close = CloseAction(sigma.state_pre_close, sigma.label,
                                          inside, h.equal_set);
          if (close.load_mask != sigma.load_close ||
              close.next != sigma.state_exit) {
            continue;
          }
          next.insert(HorizontalState{
              sigma.state_exit,
              h.accumulated_y | inside | sigma.load_close,
              h.equal_set | sigma.load_close});
        }
      }
      frontier = std::move(next);
      if (frontier.empty()) break;
    }

    for (const HorizontalState& h : frontier) {
      AuxState aux;
      aux.label = label;
      aux.load_open = load_open;
      aux.state_open = state_open;
      aux.loads_inside = h.accumulated_y;
      aux.state_pre_close =
          children.empty() ? state_open : h.expected_entry;
      // The exit transition's comparison outcome depends on the parent's
      // context only through which untouched registers equal the parent
      // depth; enumerate all possibilities.
      uint32_t inside = load_open | h.accumulated_y;
      uint32_t free_registers = all_registers & ~inside;
      // Enumerate subsets of free_registers as the equal-set.
      uint32_t subset = 0;
      for (;;) {
        Dra::Action close =
            CloseAction(aux.state_pre_close, label, inside, subset);
        AuxState candidate = aux;
        candidate.load_close = close.load_mask;
        candidate.state_exit = close.next;
        if (std::find(result.begin(), result.end(), candidate) ==
            result.end()) {
          result.push_back(candidate);
        }
        if (subset == free_registers) break;
        subset = (subset - free_registers) & free_registers;
      }
    }
  }
  return result;
}

bool RestrictedDraTreeAutomaton::Accepts(const Tree& tree) const {
  if (tree.empty()) return false;
  // Bottom-up possible-states: node ids increase parent -> child.
  std::vector<std::vector<AuxState>> possible(tree.size());
  for (int v = tree.size() - 1; v >= 0; --v) {
    std::vector<std::vector<AuxState>> children;
    for (int c = tree.node(v).first_child; c >= 0;
         c = tree.node(c).next_sibling) {
      children.push_back(possible[c]);
    }
    possible[v] = PossibleStates(tree.label(v), children);
  }
  // Root conditions.
  const uint32_t all_registers =
      dra_.num_registers == 32
          ? ~uint32_t{0}
          : (uint32_t{1} << dra_.num_registers) - 1;
  Dra::Action open = OpenAction(dra_.initial, tree.label(tree.root()));
  for (const AuxState& sigma : possible[tree.root()]) {
    if (sigma.load_open != open.load_mask || sigma.state_open != open.next) {
      continue;
    }
    uint32_t inside = sigma.load_open | sigma.loads_inside;
    Dra::Action close =
        CloseAction(sigma.state_pre_close, sigma.label, inside,
                    all_registers & ~inside);
    if (close.load_mask != sigma.load_close ||
        close.next != sigma.state_exit) {
      continue;
    }
    if (dra_.accepting[sigma.state_exit]) return true;
  }
  return false;
}

int RestrictedDraTreeAutomaton::NumCandidateStates() const {
  std::set<std::tuple<Symbol, uint32_t, int>> entries;
  for (Symbol a = 0; a < dra_.num_symbols; ++a) {
    for (int s = 0; s < dra_.num_states; ++s) {
      Dra::Action action = OpenAction(s, a);
      entries.emplace(a, action.load_mask, action.next);
    }
  }
  return static_cast<int>(entries.size());
}

}  // namespace sst
