#ifndef SST_TREEAUTO_RESTRICTED_TO_TREE_AUTOMATON_H_
#define SST_TREEAUTO_RESTRICTED_TO_TREE_AUTOMATON_H_

#include <vector>

#include "dra/dra.h"
#include "trees/tree.h"

namespace sst {

// Proposition 2.3: restricted depth-register automata recognize regular
// tree languages. This class is the proof's witness, made executable: a
// nondeterministic unranked tree automaton that guesses an auxiliary
// labelling of the input tree and checks it locally.
//
// Auxiliary labels follow the proof: a node v gets
//   ((X, p), Y, (Z, q), q_pre, a)
// meaning that reading v's opening tag loads the registers in X and enters
// state p; processing v's content loads exactly the registers in Y; reading
// v's closing tag (from state q_pre, which is p for leaves and the last
// child's exit state otherwise) loads Z and enters the exit state q. The
// horizontal consistency conditions are checked by a deterministic
// left-to-right scan whose state is (expected entry state, accumulated Y,
// accumulated X ∪ Z_1 ∪ … ∪ Z_{i-1}) — the comparison outcomes at a child's
// closing tag are fully determined by these sets precisely because the DRA
// is restricted.
//
// Membership runs the standard bottom-up possible-states computation and is
// validated against the DRA itself in tests (they must agree on every
// tree); regularity follows because the construction is a bona fide finite
// tree automaton.
class RestrictedDraTreeAutomaton {
 public:
  // Auxiliary label; register sets are bitmasks over the DRA's registers.
  struct AuxState {
    Symbol label = -1;
    uint32_t load_open = 0;   // X
    int state_open = 0;       // p
    uint32_t loads_inside = 0;  // Y
    uint32_t load_close = 0;  // Z
    int state_exit = 0;       // q
    int state_pre_close = 0;  // q_pre

    friend bool operator==(const AuxState&, const AuxState&) = default;
  };

  // The DRA must be restricted (checked).
  explicit RestrictedDraTreeAutomaton(const Dra& dra);

  // True iff the tree automaton accepts (equivalently, the DRA accepts the
  // markup encoding of the tree).
  bool Accepts(const Tree& tree) const;

  // Number of auxiliary states that are locally consistent with some open
  // transition (a size diagnostic for the construction).
  int NumCandidateStates() const;

 private:
  struct HorizontalState {
    int expected_entry;      // p'_i for the next child
    uint32_t accumulated_y;  // union of X_i ∪ Y_i ∪ Z_i so far
    uint32_t equal_set;      // X ∪ Z_1 ∪ … ∪ Z_{i-1}

    friend bool operator==(const HorizontalState&,
                           const HorizontalState&) = default;
    friend auto operator<=>(const HorizontalState&,
                            const HorizontalState&) = default;
  };

  // Applies the DRA's open transition with the all-registers-below
  // comparison (X≤ = Ξ, X≥ = ∅).
  Dra::Action OpenAction(int state, Symbol label) const;
  // Close transition of a child with loads `child_loads` (X_i ∪ Y_i) given
  // the accumulated equal-set.
  Dra::Action CloseAction(int state, Symbol label, uint32_t child_loads,
                          uint32_t equal_set) const;

  // All aux states possible for a node with the given label and children
  // possibilities.
  std::vector<AuxState> PossibleStates(
      Symbol label, const std::vector<std::vector<AuxState>>& children) const;

  const Dra dra_;
};

}  // namespace sst

#endif  // SST_TREEAUTO_RESTRICTED_TO_TREE_AUTOMATON_H_
