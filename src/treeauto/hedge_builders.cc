#include "treeauto/hedge_builders.h"

#include <vector>

#include "base/check.h"

namespace sst {

namespace {

// DFA over `alphabet_size` letters accepting words that use only letters
// from `allowed`, with ε accepted iff `allow_empty` (nonempty allowed words
// always accepted).
Dfa OnlyAllowedLetters(int alphabet_size, const std::vector<bool>& allowed,
                       bool allow_empty) {
  // States: 0 = start (ε), 1 = good nonempty, 2 = bad.
  Dfa dfa = Dfa::Create(3, alphabet_size);
  dfa.initial = 0;
  dfa.accepting = {allow_empty, true, false};
  for (int p = 0; p < alphabet_size; ++p) {
    dfa.SetNext(0, p, allowed[p] ? 1 : 2);
    dfa.SetNext(1, p, allowed[p] ? 1 : 2);
    dfa.SetNext(2, p, 2);
  }
  return dfa;
}

Dfa ComplementOf(const Dfa& dfa) { return Complement(dfa); }

}  // namespace

HedgeAutomaton PathDtdToHedgeAutomaton(const PathDtd& dtd) {
  SST_CHECK(dtd.IsValid());
  const int k = dtd.num_symbols;
  const int bad = k;  // sink state
  HedgeAutomaton automaton = HedgeAutomaton::Create(k + 1, k);
  automaton.accepting[dtd.initial_symbol] = true;
  for (Symbol a = 0; a < k; ++a) {
    std::vector<bool> allowed(k + 1, false);
    for (Symbol b : dtd.productions[a].allowed_children) allowed[b] = true;
    Dfa good = OnlyAllowedLetters(k + 1, allowed,
                                  dtd.productions[a].allows_leaf);
    automaton.Horizontal(a, a) = good;
    automaton.Horizontal(a, bad) = ComplementOf(good);
    // Other states are unassignable under label a (default empty DFA).
  }
  return automaton;
}

HedgeAutomaton SomeLabelHedgeAutomaton(int num_symbols, Symbol target) {
  SST_CHECK(target >= 0 && target < num_symbols);
  // States: 0 = subtree contains the target label, 1 = it does not.
  constexpr int kFound = 0, kClean = 1;
  HedgeAutomaton automaton = HedgeAutomaton::Create(2, num_symbols);
  automaton.accepting[kFound] = true;

  // Words over {found, clean}: any word (for target-labelled nodes), words
  // containing found, and words of clean only.
  Dfa any_word = Dfa::Create(1, 2);
  any_word.accepting = {true};
  any_word.SetNext(0, kFound, 0);
  any_word.SetNext(0, kClean, 0);

  Dfa contains_found = Dfa::Create(2, 2);
  contains_found.initial = 0;
  contains_found.accepting = {false, true};
  contains_found.SetNext(0, kFound, 1);
  contains_found.SetNext(0, kClean, 0);
  contains_found.SetNext(1, kFound, 1);
  contains_found.SetNext(1, kClean, 1);

  Dfa all_clean = Complement(contains_found);

  for (Symbol a = 0; a < num_symbols; ++a) {
    if (a == target) {
      automaton.Horizontal(a, kFound) = any_word;
      // kClean unassignable at target-labelled nodes (default empty).
    } else {
      automaton.Horizontal(a, kFound) = contains_found;
      automaton.Horizontal(a, kClean) = all_clean;
    }
  }
  return automaton;
}

}  // namespace sst
