#include "treeauto/marked_trees.h"

#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "base/check.h"
#include "treeauto/rpqness.h"

namespace sst {

namespace {

int CmpCode(int num_registers, uint32_t greater_set, uint32_t equal_set) {
  int code = 0;
  for (int r = num_registers - 1; r >= 0; --r) {
    int digit = (greater_set >> r) & 1 ? Dra::kGreater
                : (equal_set >> r) & 1 ? Dra::kEqual
                                       : Dra::kLess;
    code = code * 3 + digit;
  }
  return code;
}

// Auxiliary state of the Proposition 2.3 construction (see
// restricted_to_tree_automaton.h); the hedge-state identity of a node.
struct Aux {
  Symbol label;
  uint32_t x;  // loads at the opening tag
  int p;       // state after the opening tag
  uint32_t y;  // loads strictly inside
  uint32_t z;  // loads at the closing tag
  int q;       // exit state
  int q_pre;   // state just before the closing tag

  auto Tie() const { return std::tie(label, x, p, y, z, q, q_pre); }
  friend bool operator<(const Aux& lhs, const Aux& rhs) {
    return lhs.Tie() < rhs.Tie();
  }
};

struct Builder {
  const Dra& dra;
  int num_registers;
  uint32_t all_registers;

  Dra::Action Open(int state, Symbol label) const {
    return dra.At(state, false, label, CmpCode(num_registers, 0, 0));
  }
  Dra::Action Close(int state, Symbol label, uint32_t inside,
                    uint32_t equal) const {
    return dra.At(state, true, label,
                  CmpCode(num_registers, inside, equal & ~inside));
  }
};

// Horizontal scan state while reading a node's children (cf. Prop 2.3).
struct Scan {
  int expected_entry;
  uint32_t acc_y;
  uint32_t equal;
  bool seen_child;

  auto Tie() const { return std::tie(expected_entry, acc_y, equal,
                                     seen_child); }
  friend bool operator<(const Scan& lhs, const Scan& rhs) {
    return lhs.Tie() < rhs.Tie();
  }
};

}  // namespace

std::optional<HedgeAutomaton> MaterializeDraHedgeAutomaton(
    const Dra& restricted_dra, bool marked, int max_states) {
  SST_CHECK_MSG(IsRestricted(restricted_dra),
                "the Proposition 2.3 construction needs a restricted DRA");
  Builder builder{restricted_dra, restricted_dra.num_registers,
                  restricted_dra.num_registers == 32
                      ? ~uint32_t{0}
                      : (uint32_t{1} << restricted_dra.num_registers) - 1};
  const int num_symbols = restricted_dra.num_symbols;
  const int num_states = restricted_dra.num_states;

  // Enumerate the auxiliary states.
  std::set<Aux> aux_set;
  for (Symbol a = 0; a < num_symbols; ++a) {
    std::set<std::pair<uint32_t, int>> entries;
    for (int s = 0; s < num_states; ++s) {
      Dra::Action open = builder.Open(s, a);
      entries.emplace(open.load_mask, open.next);
    }
    for (const auto& [x, p] : entries) {
      for (uint32_t y = 0;; y = ((y - builder.all_registers) &
                                 builder.all_registers)) {
        uint32_t inside = x | y;
        for (int q_pre = 0; q_pre < num_states; ++q_pre) {
          uint32_t free_registers = builder.all_registers & ~inside;
          uint32_t equal = 0;
          for (;;) {
            Dra::Action close = builder.Close(q_pre, a, inside, equal);
            aux_set.insert(Aux{a, x, p, y, close.load_mask, close.next,
                               q_pre});
            if (equal == free_registers) break;
            equal = (equal - free_registers) & free_registers;
          }
        }
        if (y == builder.all_registers) break;
      }
    }
    if (static_cast<int>(aux_set.size()) > max_states) return std::nullopt;
  }
  std::vector<Aux> aux(aux_set.begin(), aux_set.end());
  const int h = static_cast<int>(aux.size());

  const int alphabet = marked ? 2 * num_symbols : num_symbols;
  HedgeAutomaton result = HedgeAutomaton::Create(h, alphabet);

  // Acceptance: root-consistent auxiliary states with accepting exit.
  for (int i = 0; i < h; ++i) {
    const Aux& sigma = aux[i];
    Dra::Action open = builder.Open(restricted_dra.initial, sigma.label);
    if (open.load_mask != sigma.x || open.next != sigma.p) continue;
    uint32_t inside = sigma.x | sigma.y;
    Dra::Action close = builder.Close(sigma.q_pre, sigma.label, inside,
                                      builder.all_registers & ~inside);
    if (close.load_mask != sigma.z || close.next != sigma.q) continue;
    // For M_Q (marked mode) every correctly-marked tree belongs to the
    // language; final-state acceptance only matters when the automaton
    // recognizes the DRA's tree language.
    result.accepting[i] = marked || restricted_dra.accepting[sigma.q];
  }

  // Horizontal DFA per auxiliary state (shared across the label slots it
  // is assignable at).
  for (int i = 0; i < h; ++i) {
    const Aux& sigma = aux[i];
    // BFS over scan states; state 0 = initial scan, plus a rejecting sink.
    std::map<Scan, int> scan_id;
    std::vector<Scan> scans;
    auto intern = [&](const Scan& scan) {
      auto [it, inserted] =
          scan_id.emplace(scan, static_cast<int>(scans.size()));
      if (inserted) scans.push_back(scan);
      return it->second;
    };
    intern(Scan{sigma.p, 0, sigma.x, false});
    std::vector<std::vector<int>> table;  // per scan: per letter target
    for (size_t t = 0; t < scans.size(); ++t) {
      const Scan scan = scans[t];
      std::vector<int> row(h, -1);
      for (int letter = 0; letter < h; ++letter) {
        const Aux& child = aux[letter];
        Dra::Action open = builder.Open(scan.expected_entry, child.label);
        if (open.load_mask != child.x || open.next != child.p) continue;
        uint32_t inside = child.x | child.y;
        Dra::Action close =
            builder.Close(child.q_pre, child.label, inside, scan.equal);
        if (close.load_mask != child.z || close.next != child.q) continue;
        row[letter] = intern(Scan{child.q, scan.acc_y | inside | child.z,
                                  scan.equal | child.z, true});
      }
      table.push_back(std::move(row));
    }
    const int sink = static_cast<int>(scans.size());
    Dfa horizontal = Dfa::Create(sink + 1, h);
    horizontal.initial = 0;
    for (int t = 0; t < sink; ++t) {
      const Scan& scan = scans[t];
      horizontal.accepting[t] =
          scan.acc_y == sigma.y &&
          (scan.seen_child ? scan.expected_entry == sigma.q_pre
                           : sigma.q_pre == sigma.p);
      for (int letter = 0; letter < h; ++letter) {
        horizontal.SetNext(t, letter,
                           table[t][letter] < 0 ? sink : table[t][letter]);
      }
    }
    for (int letter = 0; letter < h; ++letter) {
      horizontal.SetNext(sink, letter, sink);
    }

    // Install at the assignable label slot(s).
    if (marked) {
      int mark = restricted_dra.accepting[sigma.p] ? 1 : 0;
      result.Horizontal(sigma.label + mark * num_symbols, i) = horizontal;
    } else {
      result.Horizontal(sigma.label, i) = horizontal;
    }
  }
  return result;
}

HedgeAutomaton MarkedPathAutomaton(const Dfa& dfa) {
  const int num_symbols = dfa.num_symbols;
  const int n = dfa.num_states;
  // States: (symbol, dfa state) pairs — the DFA state *at* the node.
  const int h = num_symbols * n;
  auto pack = [&](Symbol a, int q) { return a * n + q; };
  HedgeAutomaton result = HedgeAutomaton::Create(h, 2 * num_symbols);
  for (Symbol a = 0; a < num_symbols; ++a) {
    result.accepting[pack(a, dfa.Next(dfa.initial, a))] = true;
  }
  for (Symbol a = 0; a < num_symbols; ++a) {
    for (int q = 0; q < n; ++q) {
      // Children letters (b, q_b) must satisfy q_b == δ(q, b).
      Dfa horizontal = Dfa::Create(2, h);
      horizontal.initial = 0;
      horizontal.accepting = {true, false};
      for (Symbol b = 0; b < num_symbols; ++b) {
        for (int qb = 0; qb < n; ++qb) {
          int ok = qb == dfa.Next(q, b) ? 0 : 1;
          horizontal.SetNext(0, pack(b, qb), ok);
          horizontal.SetNext(1, pack(b, qb), 1);
        }
      }
      int mark = dfa.accepting[q] ? 1 : 0;
      result.Horizontal(a + mark * num_symbols, pack(a, q)) = horizontal;
    }
  }
  return result;
}

std::optional<bool> IsRpqExact(const Dra& restricted_dra, int max_states) {
  std::optional<HedgeAutomaton> marked_query =
      MaterializeDraHedgeAutomaton(restricted_dra, /*marked=*/true,
                                   max_states);
  if (!marked_query.has_value()) return std::nullopt;
  Dfa chain = ExtractChainDfa(restricted_dra);
  HedgeAutomaton marked_path = MarkedPathAutomaton(chain);
  return HedgeEquivalent(*marked_query, marked_path, max_states);
}

}  // namespace sst
