#ifndef SST_TREEAUTO_RPQNESS_H_
#define SST_TREEAUTO_RPQNESS_H_

#include <optional>

#include "automata/dfa.h"
#include "dra/dra.h"
#include "trees/tree.h"

namespace sst {

// Proposition 2.13: it is decidable whether the query realized by a given
// restricted DRA is an RPQ. The proof reduces to tree-automata equivalence
// of M_Q (the marked trees of the query, via Proposition 2.3) and M_{L_Q}
// (the marked trees of the candidate path language).
//
// The candidate language L_Q is read off the DRA's behaviour on
// single-branch trees: while only opening tags are read, every register
// stays strictly below the current depth, so the DRA degenerates to a DFA
// over Γ (Proposition 2.11's argument). This function extracts that DFA.
Dfa ExtractChainDfa(const Dra& dra);

// The decision procedure, instantiated as an exhaustive check over all
// trees with at most `max_nodes` nodes (a complete equivalence test for the
// tree-automata pair restricted to that universe; the paper's unbounded
// procedure needs tree-automata equivalence, which is exact but EXPTIME).
// Returns false together with a counterexample tree if the query disagrees
// with Q_{L_Q} somewhere in the universe; true if it is an RPQ as far as
// the bound can tell.
struct RpqnessResult {
  bool is_rpq_up_to_bound = false;
  Dfa candidate_language;           // L_Q
  std::optional<Tree> counterexample;
};

RpqnessResult CheckRpqness(const Dra& dra, int max_nodes);

}  // namespace sst

#endif  // SST_TREEAUTO_RPQNESS_H_
