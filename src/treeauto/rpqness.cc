#include "treeauto/rpqness.h"

#include "automata/minimize.h"
#include "dra/machine.h"
#include "trees/encoding.h"
#include "trees/generators.h"
#include "trees/ground_truth.h"

namespace sst {

Dfa ExtractChainDfa(const Dra& dra) {
  // On a pure descent the comparison vector is constantly all-kLess.
  Dfa dfa = Dfa::Create(dra.num_states, dra.num_symbols);
  dfa.initial = dra.initial;
  for (int q = 0; q < dra.num_states; ++q) {
    dfa.accepting[q] = dra.accepting[q];
    for (Symbol a = 0; a < dra.num_symbols; ++a) {
      dfa.SetNext(q, a, dra.At(q, /*is_close=*/false, a, 0).next);
    }
  }
  return Minimize(dfa);
}

RpqnessResult CheckRpqness(const Dra& dra, int max_nodes) {
  RpqnessResult result;
  result.candidate_language = ExtractChainDfa(dra);
  DraRunner runner(&dra);
  for (Tree& tree : EnumerateTrees(max_nodes, dra.num_symbols)) {
    if (RunQueryOnTree(&runner, tree) !=
        SelectNodes(result.candidate_language, tree)) {
      result.is_rpq_up_to_bound = false;
      result.counterexample = std::move(tree);
      return result;
    }
  }
  result.is_rpq_up_to_bound = true;
  return result;
}

}  // namespace sst
