#ifndef SST_TREEAUTO_HEDGE_AUTOMATON_H_
#define SST_TREEAUTO_HEDGE_AUTOMATON_H_

#include <optional>
#include <vector>

#include "automata/dfa.h"
#include "trees/tree.h"

namespace sst {

// Unranked tree automata with regular horizontal languages (hedge
// automata): a node labelled a may be assigned state q iff the word of its
// children's states (left to right) belongs to the horizontal language
// H(a, q), given as a complete DFA over the state alphabet. A tree is
// accepted iff its root can be assigned an accepting state.
//
// This is the standard substrate behind Proposition 2.3 ("restricted DRAs
// recognize regular tree languages") and the tree-automata equivalence
// step of Proposition 2.13. Nondeterministic in general; Determinize turns
// small instances into bottom-up deterministic ones, enabling complement
// and exact equivalence.
struct HedgeAutomaton {
  int num_states = 0;
  int num_symbols = 0;
  std::vector<bool> accepting;  // accepting root states
  // horizontal[symbol * num_states + state]: DFA whose input alphabet is
  // the state set (num_symbols_of_dfa == num_states).
  std::vector<Dfa> horizontal;

  const Dfa& Horizontal(Symbol a, int q) const {
    return horizontal[static_cast<size_t>(a) * num_states + q];
  }
  Dfa& Horizontal(Symbol a, int q) {
    return horizontal[static_cast<size_t>(a) * num_states + q];
  }

  static HedgeAutomaton Create(int num_states, int num_symbols);
  bool IsValid() const;
};

// Nondeterministic membership by bottom-up possible-state sets.
bool HedgeAccepts(const HedgeAutomaton& automaton, const Tree& tree);

// Product constructions (languages intersect/union).
HedgeAutomaton HedgeIntersection(const HedgeAutomaton& a,
                                 const HedgeAutomaton& b);
HedgeAutomaton HedgeUnion(const HedgeAutomaton& a, const HedgeAutomaton& b);

// Emptiness by the inhabited-states fixpoint.
bool HedgeIsEmpty(const HedgeAutomaton& automaton);

// True iff the automaton is bottom-up deterministic *and complete*: for
// every label and every word of child states exactly one state is
// assignable. Complement is only sound for such automata.
bool HedgeIsDeterministic(const HedgeAutomaton& automaton);

// Subset construction; the result is deterministic and complete. Returns
// nullopt if it would exceed `max_states` subset states (the construction
// is exponential in general).
std::optional<HedgeAutomaton> HedgeDeterminize(const HedgeAutomaton& a,
                                               int max_states);

// Complement of a deterministic complete automaton (checked).
HedgeAutomaton HedgeComplement(const HedgeAutomaton& deterministic);

// Exact language equivalence via determinization and emptiness of the
// symmetric difference; nullopt if a determinization exceeds the budget.
std::optional<bool> HedgeEquivalent(const HedgeAutomaton& a,
                                    const HedgeAutomaton& b, int max_states);

}  // namespace sst

#endif  // SST_TREEAUTO_HEDGE_AUTOMATON_H_
