#include "treeauto/hedge_automaton.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <utility>

#include "base/check.h"

namespace sst {

HedgeAutomaton HedgeAutomaton::Create(int num_states, int num_symbols) {
  HedgeAutomaton result;
  result.num_states = num_states;
  result.num_symbols = num_symbols;
  result.accepting.assign(num_states, false);
  // Default horizontal language: empty (single rejecting sink state).
  Dfa empty = Dfa::Create(1, num_states);
  result.horizontal.assign(static_cast<size_t>(num_symbols) * num_states,
                           empty);
  return result;
}

bool HedgeAutomaton::IsValid() const {
  if (static_cast<int>(accepting.size()) != num_states) return false;
  if (static_cast<int>(horizontal.size()) !=
      num_states * static_cast<int>(num_symbols)) {
    return false;
  }
  for (const Dfa& dfa : horizontal) {
    if (dfa.num_symbols != num_states || !dfa.IsValid()) return false;
  }
  return true;
}

namespace {

// Possible assigned states per node, bottom-up.
std::vector<std::vector<bool>> PossibleStates(const HedgeAutomaton& automaton,
                                              const Tree& tree) {
  std::vector<std::vector<bool>> possible(
      tree.size(), std::vector<bool>(automaton.num_states, false));
  for (int v = tree.size() - 1; v >= 0; --v) {
    Symbol a = tree.label(v);
    for (int q = 0; q < automaton.num_states; ++q) {
      const Dfa& h = automaton.Horizontal(a, q);
      // Set-simulation of h over the children's possible-state sets.
      std::vector<bool> reach(h.num_states, false);
      reach[h.initial] = true;
      for (int c = tree.node(v).first_child; c >= 0;
           c = tree.node(c).next_sibling) {
        std::vector<bool> next(h.num_states, false);
        for (int r = 0; r < h.num_states; ++r) {
          if (!reach[r]) continue;
          for (int p = 0; p < automaton.num_states; ++p) {
            if (possible[c][p]) next[h.Next(r, p)] = true;
          }
        }
        reach = std::move(next);
      }
      bool ok = false;
      for (int r = 0; r < h.num_states; ++r) {
        ok = ok || (reach[r] && h.accepting[r]);
      }
      possible[v][q] = ok;
    }
  }
  return possible;
}

}  // namespace

bool HedgeAccepts(const HedgeAutomaton& automaton, const Tree& tree) {
  if (tree.empty()) return false;
  std::vector<std::vector<bool>> possible = PossibleStates(automaton, tree);
  for (int q = 0; q < automaton.num_states; ++q) {
    if (automaton.accepting[q] && possible[tree.root()][q]) return true;
  }
  return false;
}

namespace {

// Extends a horizontal DFA to a larger letter alphabet; foreign letters go
// to a fresh rejecting sink.
Dfa ExtendAlphabet(const Dfa& dfa, int new_alphabet, int letter_offset) {
  Dfa result = Dfa::Create(dfa.num_states + 1, new_alphabet);
  const int sink = dfa.num_states;
  result.initial = dfa.initial;
  for (int q = 0; q < dfa.num_states; ++q) {
    result.accepting[q] = dfa.accepting[q];
    for (int p = 0; p < new_alphabet; ++p) {
      int original = p - letter_offset;
      result.SetNext(q, p, original >= 0 && original < dfa.num_symbols
                               ? dfa.Next(q, original)
                               : sink);
    }
  }
  for (int p = 0; p < new_alphabet; ++p) result.SetNext(sink, p, sink);
  return result;
}

template <typename AcceptFn>
HedgeAutomaton HedgeProduct(const HedgeAutomaton& a, const HedgeAutomaton& b,
                            AcceptFn want) {
  SST_CHECK(a.num_symbols == b.num_symbols);
  const int n = a.num_states * b.num_states;
  HedgeAutomaton result = HedgeAutomaton::Create(n, a.num_symbols);
  auto pack = [&](int qa, int qb) { return qa * b.num_states + qb; };
  for (int qa = 0; qa < a.num_states; ++qa) {
    for (int qb = 0; qb < b.num_states; ++qb) {
      result.accepting[pack(qa, qb)] = want(a.accepting[qa], b.accepting[qb]);
    }
  }
  for (Symbol s = 0; s < a.num_symbols; ++s) {
    for (int qa = 0; qa < a.num_states; ++qa) {
      const Dfa& ha = a.Horizontal(s, qa);
      for (int qb = 0; qb < b.num_states; ++qb) {
        const Dfa& hb = b.Horizontal(s, qb);
        // Product DFA over the packed pair alphabet.
        Dfa h = Dfa::Create(ha.num_states * hb.num_states, n);
        auto hpack = [&](int x, int y) { return x * hb.num_states + y; };
        h.initial = hpack(ha.initial, hb.initial);
        for (int x = 0; x < ha.num_states; ++x) {
          for (int y = 0; y < hb.num_states; ++y) {
            h.accepting[hpack(x, y)] = ha.accepting[x] && hb.accepting[y];
            for (int pa = 0; pa < a.num_states; ++pa) {
              for (int pb = 0; pb < b.num_states; ++pb) {
                h.SetNext(hpack(x, y), pack(pa, pb),
                          hpack(ha.Next(x, pa), hb.Next(y, pb)));
              }
            }
          }
        }
        result.Horizontal(s, pack(qa, qb)) = std::move(h);
      }
    }
  }
  return result;
}

}  // namespace

HedgeAutomaton HedgeIntersection(const HedgeAutomaton& a,
                                 const HedgeAutomaton& b) {
  return HedgeProduct(a, b, [](bool x, bool y) { return x && y; });
}

HedgeAutomaton HedgeUnion(const HedgeAutomaton& a, const HedgeAutomaton& b) {
  // Disjoint union: a run stays within one component; horizontal languages
  // reject letters from the other component.
  SST_CHECK(a.num_symbols == b.num_symbols);
  const int n = a.num_states + b.num_states;
  HedgeAutomaton result = HedgeAutomaton::Create(n, a.num_symbols);
  for (int q = 0; q < a.num_states; ++q) {
    result.accepting[q] = a.accepting[q];
  }
  for (int q = 0; q < b.num_states; ++q) {
    result.accepting[a.num_states + q] = b.accepting[q];
  }
  for (Symbol s = 0; s < a.num_symbols; ++s) {
    for (int q = 0; q < a.num_states; ++q) {
      result.Horizontal(s, q) = ExtendAlphabet(a.Horizontal(s, q), n, 0);
    }
    for (int q = 0; q < b.num_states; ++q) {
      result.Horizontal(s, a.num_states + q) =
          ExtendAlphabet(b.Horizontal(s, q), n, a.num_states);
    }
  }
  return result;
}

bool HedgeIsEmpty(const HedgeAutomaton& automaton) {
  std::vector<bool> inhabited(automaton.num_states, false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (int q = 0; q < automaton.num_states; ++q) {
      if (inhabited[q]) continue;
      for (Symbol a = 0; a < automaton.num_symbols && !inhabited[q]; ++a) {
        const Dfa& h = automaton.Horizontal(a, q);
        // Does h accept some word over the inhabited letters?
        std::vector<bool> reach(h.num_states, false);
        std::deque<int> queue;
        reach[h.initial] = true;
        queue.push_back(h.initial);
        bool ok = h.accepting[h.initial];
        while (!queue.empty() && !ok) {
          int r = queue.front();
          queue.pop_front();
          for (int p = 0; p < automaton.num_states; ++p) {
            if (!inhabited[p]) continue;
            int to = h.Next(r, p);
            if (!reach[to]) {
              reach[to] = true;
              ok = ok || h.accepting[to];
              queue.push_back(to);
            }
          }
        }
        if (ok) {
          inhabited[q] = true;
          changed = true;
        }
      }
    }
  }
  for (int q = 0; q < automaton.num_states; ++q) {
    if (automaton.accepting[q] && inhabited[q]) return false;
  }
  return true;
}

namespace {

// Explores, per label, the synchronized product of all horizontal DFAs
// (one per state). Every reachable tuple corresponds to a children word;
// `visit(tuple)` receives the vector of per-state horizontal positions.
// Returns false if more than `max_tuples` tuples appear.
template <typename VisitFn>
bool ExploreHorizontalTuples(const HedgeAutomaton& automaton, Symbol a,
                             int max_tuples, VisitFn visit) {
  const int n = automaton.num_states;
  std::vector<int> start(n);
  for (int q = 0; q < n; ++q) start[q] = automaton.Horizontal(a, q).initial;
  std::map<std::vector<int>, int> seen;
  std::deque<std::vector<int>> queue;
  seen.emplace(start, 0);
  queue.push_back(start);
  visit(start);
  while (!queue.empty()) {
    std::vector<int> tuple = std::move(queue.front());
    queue.pop_front();
    for (int p = 0; p < n; ++p) {
      std::vector<int> next(n);
      for (int q = 0; q < n; ++q) {
        next[q] = automaton.Horizontal(a, q).Next(tuple[q], p);
      }
      if (seen.emplace(next, static_cast<int>(seen.size())).second) {
        if (static_cast<int>(seen.size()) > max_tuples) return false;
        visit(next);
        queue.push_back(next);
      }
    }
  }
  return true;
}

}  // namespace

bool HedgeIsDeterministic(const HedgeAutomaton& automaton) {
  for (Symbol a = 0; a < automaton.num_symbols; ++a) {
    bool deterministic = true;
    bool within_budget = ExploreHorizontalTuples(
        automaton, a, /*max_tuples=*/100000,
        [&](const std::vector<int>& tuple) {
          int assigned = 0;
          for (int q = 0; q < automaton.num_states; ++q) {
            const Dfa& h = automaton.Horizontal(a, q);
            assigned += h.accepting[tuple[q]] ? 1 : 0;
          }
          if (assigned != 1) deterministic = false;
        });
    if (!within_budget || !deterministic) return false;
  }
  return true;
}

std::optional<HedgeAutomaton> HedgeDeterminize(const HedgeAutomaton& a,
                                               int max_states) {
  const int n = a.num_states;
  // Subset states of the determinized automaton, discovered to fixpoint.
  std::map<std::vector<bool>, int> subset_id;
  std::vector<std::vector<bool>> subsets;
  auto intern = [&](const std::vector<bool>& subset) {
    auto [it, inserted] =
        subset_id.emplace(subset, static_cast<int>(subsets.size()));
    if (inserted) subsets.push_back(subset);
    return it->second;
  };

  // Horizontal runs over subset letters: per label, tuple of per-q
  // reachable horizontal-state sets.
  struct LabelMachine {
    std::map<std::vector<std::vector<bool>>, int> tuple_id;
    std::vector<std::vector<std::vector<bool>>> tuples;
    // transitions[tuple][subset letter] -> tuple (filled incrementally)
    std::vector<std::vector<int>> transitions;
    std::vector<int> assigned_subset;  // per tuple
  };
  std::vector<LabelMachine> machines(a.num_symbols);

  auto assigned_of = [&](Symbol s,
                         const std::vector<std::vector<bool>>& tuple) {
    std::vector<bool> subset(n, false);
    for (int q = 0; q < n; ++q) {
      const Dfa& h = a.Horizontal(s, q);
      for (int r = 0; r < h.num_states; ++r) {
        if (tuple[q][r] && h.accepting[r]) subset[q] = true;
      }
    }
    return subset;
  };

  // Initial tuples (empty children word).
  for (Symbol s = 0; s < a.num_symbols; ++s) {
    LabelMachine& machine = machines[s];
    std::vector<std::vector<bool>> start(n);
    for (int q = 0; q < n; ++q) {
      const Dfa& h = a.Horizontal(s, q);
      start[q].assign(h.num_states, false);
      start[q][h.initial] = true;
    }
    machine.tuple_id.emplace(start, 0);
    machine.tuples.push_back(start);
    machine.transitions.emplace_back();
    machine.assigned_subset.push_back(intern(assigned_of(s, start)));
  }

  // Fixpoint: extend every label machine over all known subset letters.
  const int tuple_budget = std::max(max_states * 8, 1 << 12);
  for (;;) {
    bool grew = false;
    if (static_cast<int>(subsets.size()) > max_states) return std::nullopt;
    for (Symbol s = 0; s < a.num_symbols; ++s) {
      LabelMachine& machine = machines[s];
      for (size_t t = 0; t < machine.tuples.size(); ++t) {
        machine.transitions[t].resize(subsets.size(), -1);
        // intern() below may grow `subsets`; letters added mid-pass are
        // filled in on the next fixpoint round (the resize above re-pads
        // with -1), so iterate only over the letters sized for here.
        const size_t num_letters = machine.transitions[t].size();
        for (size_t letter = 0; letter < num_letters; ++letter) {
          if (machine.transitions[t][letter] >= 0) continue;
          grew = true;
          // Advance every per-q set simulation by the subset letter.
          std::vector<std::vector<bool>> next(n);
          for (int q = 0; q < n; ++q) {
            const Dfa& h = a.Horizontal(s, q);
            next[q].assign(h.num_states, false);
            for (int r = 0; r < h.num_states; ++r) {
              if (!machine.tuples[t][q][r]) continue;
              for (int p = 0; p < n; ++p) {
                if (subsets[letter][p]) next[q][h.Next(r, p)] = true;
              }
            }
          }
          auto [it, inserted] = machine.tuple_id.emplace(
              next, static_cast<int>(machine.tuples.size()));
          if (inserted) {
            machine.tuples.push_back(next);
            machine.transitions.emplace_back();
            machine.assigned_subset.push_back(intern(assigned_of(s, next)));
            if (static_cast<int>(machine.tuples.size()) > tuple_budget) {
              return std::nullopt;
            }
          }
          machine.transitions[t][letter] = it->second;
        }
      }
    }
    if (!grew) break;
  }

  // Materialize.
  const int num_subsets = static_cast<int>(subsets.size());
  HedgeAutomaton result = HedgeAutomaton::Create(num_subsets, a.num_symbols);
  for (int t = 0; t < num_subsets; ++t) {
    bool acc = false;
    for (int q = 0; q < n; ++q) {
      acc = acc || (subsets[t][q] && a.accepting[q]);
    }
    result.accepting[t] = acc;
  }
  for (Symbol s = 0; s < a.num_symbols; ++s) {
    const LabelMachine& machine = machines[s];
    // One DFA per subset state; they share transitions and differ only in
    // the accepting set.
    Dfa base = Dfa::Create(static_cast<int>(machine.tuples.size()),
                           num_subsets);
    base.initial = 0;
    for (size_t t = 0; t < machine.tuples.size(); ++t) {
      for (int letter = 0; letter < num_subsets; ++letter) {
        base.SetNext(static_cast<int>(t), letter,
                     machine.transitions[t][letter]);
      }
    }
    for (int target = 0; target < num_subsets; ++target) {
      Dfa h = base;
      for (size_t t = 0; t < machine.tuples.size(); ++t) {
        h.accepting[t] = machine.assigned_subset[t] == target;
      }
      result.Horizontal(s, target) = std::move(h);
    }
  }
  return result;
}

HedgeAutomaton HedgeComplement(const HedgeAutomaton& deterministic) {
  SST_CHECK_MSG(HedgeIsDeterministic(deterministic),
                "complement requires a deterministic complete automaton");
  HedgeAutomaton result = deterministic;
  for (int q = 0; q < result.num_states; ++q) {
    result.accepting[q] = !result.accepting[q];
  }
  return result;
}

std::optional<bool> HedgeEquivalent(const HedgeAutomaton& a,
                                    const HedgeAutomaton& b,
                                    int max_states) {
  std::optional<HedgeAutomaton> da = HedgeDeterminize(a, max_states);
  std::optional<HedgeAutomaton> db = HedgeDeterminize(b, max_states);
  if (!da.has_value() || !db.has_value()) return std::nullopt;
  HedgeAutomaton not_a = HedgeComplement(*da);
  HedgeAutomaton not_b = HedgeComplement(*db);
  return HedgeIsEmpty(HedgeIntersection(*da, not_b)) &&
         HedgeIsEmpty(HedgeIntersection(not_a, *db));
}

}  // namespace sst
