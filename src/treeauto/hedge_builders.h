#ifndef SST_TREEAUTO_HEDGE_BUILDERS_H_
#define SST_TREEAUTO_HEDGE_BUILDERS_H_

#include "dtd/path_dtd.h"
#include "treeauto/hedge_automaton.h"

namespace sst {

// Bottom-up deterministic hedge automaton for a path DTD (Section 4.1):
// states are the symbols plus a 'bad' sink; a node gets its own label as
// state iff its children conform, and 'bad' otherwise. Acceptance = the
// initial symbol at the root. Deterministic and complete by construction.
HedgeAutomaton PathDtdToHedgeAutomaton(const PathDtd& dtd);

// Hedge automaton for "some node is labelled `target`" — the standard
// first example of a nondeterministic (here: deterministic) unranked tree
// automaton; used by tests as an independently-checkable language.
HedgeAutomaton SomeLabelHedgeAutomaton(int num_symbols, Symbol target);

}  // namespace sst

#endif  // SST_TREEAUTO_HEDGE_BUILDERS_H_
