#ifndef SST_DRA_DRA_H_
#define SST_DRA_DRA_H_

#include <cstdint>
#include <vector>

#include "automata/alphabet.h"
#include "dra/machine.h"
#include "dra/tag_dfa.h"

namespace sst {

// Explicit depth-register automaton (Definition 2.1).
//
// A configuration is (state, depth, register values). Reading a tag first
// updates the depth (+1 on opening, -1 on closing: the counter is
// input-driven), then compares every register against the new depth,
// producing per register one of {less, equal, greater}. The transition
// table maps (state, tag, comparison vector) to (set of registers to load
// with the current depth, next state). This is exactly the paper's
//   δ : Q × (Γ ∪ Γ̄) × 2^Ξ × 2^Ξ → 2^Ξ × Q
// since X≤ and X≥ always cover Ξ and overlap exactly on the 'equal'
// registers — a comparison vector in {<,=,>}^Ξ carries the same data.
struct Dra {
  enum Cmp : int { kLess = 0, kEqual = 1, kGreater = 2 };

  struct Action {
    uint32_t load_mask = 0;  // bit r set => load current depth into r
    int next = 0;
  };

  int num_states = 0;
  int num_symbols = 0;
  int num_registers = 0;  // at most kMaxRegisters
  int initial = 0;
  std::vector<bool> accepting;
  // Indexed by (((state * 2 + is_close) * num_symbols) + symbol) * 3^R + cmp.
  std::vector<Action> table;

  static constexpr int kMaxRegisters =
      DraConfig::kMaxRegisters;  // 3^10 table columns max

  static Dra Create(int num_states, int num_symbols, int num_registers);

  int NumCmpCodes() const;

  // Comparison-code arithmetic: code digit r (base 3) is the comparison of
  // register r against the current depth.
  static int CmpDigit(int cmp_code, int reg);
  static int WithCmpDigit(int cmp_code, int reg, int digit);

  size_t Index(int state, bool is_close, Symbol symbol, int cmp_code) const;
  const Action& At(int state, bool is_close, Symbol symbol,
                   int cmp_code) const {
    return table[Index(state, is_close, symbol, cmp_code)];
  }
  Action& At(int state, bool is_close, Symbol symbol, int cmp_code) {
    return table[Index(state, is_close, symbol, cmp_code)];
  }

  // Sets the same action for every comparison code matching the given
  // pattern (-1 digits are wildcards). Convenience for hand-built automata.
  void SetAction(int state, bool is_close, Symbol symbol,
                 const std::vector<int>& cmp_pattern, uint32_t load_mask,
                 int next);
};

// Section 2.2: a DRA is restricted iff every transition overwrites all
// registers whose value is strictly greater than the current depth
// (X≥ \ X≤ ⊆ Y). Restricted DRAs recognize only regular tree languages
// (Proposition 2.3).
bool IsRestricted(const Dra& dra);

// Lemma 2.4 closure operations for stackless languages.
Dra DraIntersection(const Dra& a, const Dra& b);
Dra DraUnion(const Dra& a, const Dra& b);
Dra DraComplement(const Dra& a);

// Embeds a registerless automaton as a DRA with Ξ = ∅.
Dra DraFromTagDfa(const TagDfa& dfa);

// Runs a DRA; maintains the full configuration.
class DraRunner final : public StreamMachine {
 public:
  explicit DraRunner(const Dra* dra);

  void Reset() override;
  void OnOpen(Symbol symbol) override { Step(symbol, /*is_close=*/false); }
  void OnClose(Symbol symbol) override { Step(symbol, /*is_close=*/true); }
  bool InAcceptingState() const override { return dra_->accepting[state_]; }

  int state() const { return state_; }
  int64_t depth() const { return depth_; }
  const std::vector<int64_t>& registers() const { return registers_; }

  // Stackless fused fast path (see dra/byte_dra_runner.h): the runner IS a
  // DRA wrapper, so byte scanners may run its transitions through a fused
  // byte table and sync the configuration back per chunk.
  const Dra* ExportDra() const override { return dra_; }
  DraConfig ExportedDraConfig() const override;
  void SyncExportedDraConfig(const DraConfig& config) override;

  // Checkpoint protocol: state, depth, register bank — the O(1)
  // configuration Definition 2.1 promises.
  bool SaveConfig(std::vector<int64_t>* out) override;
  bool RestoreConfig(const std::vector<int64_t>& config) override;
  bool ConfigEqualsCurrent(const std::vector<int64_t>& config) const override;

 private:
  void Step(Symbol symbol, bool is_close);

  const Dra* dra_;
  int state_;
  int64_t depth_;
  std::vector<int64_t> registers_;
};

}  // namespace sst

#endif  // SST_DRA_DRA_H_
