#ifndef SST_DRA_BYTE_RUNNER_H_
#define SST_DRA_BYTE_RUNNER_H_

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "automata/alphabet.h"
#include "automata/dfa.h"
#include "base/match_sink.h"
#include "dra/stream_error.h"
#include "dra/tag_dfa.h"

namespace sst {

// Byte-level evaluation over the compact markup serialization ('a'..'z'
// opening tags, 'A'..'Z' closing tags). These runners are the library's
// answer to the paper's Section 4.3 outlook: a registerless evaluator is a
// single fused 256-way transition table — one dependent load per input
// byte, no branches, no external memory — which is exactly the shape that
// SIMD/vectorization research targets, while the stack baseline must touch
// O(depth) memory.

// Fused byte-table runner for a TagDfa. The table maps (state, byte) to the
// next state; a parallel bitset marks states that pre-select on the byte
// just consumed (only meaningful after opening bytes). Besides the batch
// entry points, the runner exposes incremental stepping so streaming
// scanners (StreamingSelector) can drive it chunk by chunk.
//
// Storage is uint16_t when the machine has fewer than 65536 states (the
// overwhelmingly common case — halves the cache footprint of the hot
// table) and int32_t otherwise. Batch loops dispatch on the width once per
// call; the incremental Next() pays one well-predicted branch per event.
class ByteTagDfaRunner {
 public:
  // Positional convention: symbol s opens as byte 'a' + s and closes as
  // 'A' + s (requires at most 26 symbols).
  explicit ByteTagDfaRunner(const TagDfa& dfa);

  // Label-driven convention: each symbol of `dfa` opens as its single
  // lowercase-letter label in `alphabet` and closes as the uppercase form.
  // Every symbol in [0, dfa.num_symbols) must have such a label.
  ByteTagDfaRunner(const TagDfa& dfa, const Alphabet& alphabet);

  // Streams the bytes; returns the number of pre-selected nodes (accepting
  // states entered on opening bytes 'a'..'z'; all other bytes self-loop and
  // never count). Runs over the structural index when the text-run closure
  // allows (see below): the SIMD stage-1 scan classifies 64 bytes at a
  // time and the table walk touches only structural bytes, advancing each
  // whitespace gap in O(1) with the per-state closure.
  int64_t CountSelections(std::string_view bytes) const;

  // The per-byte reference loop (one table load per input byte, no
  // structural index). This is both the fallback for tables whose text-run
  // closure is not exact and the oracle the parity tests diff the indexed
  // paths against.
  int64_t CountSelectionsPerByte(std::string_view bytes) const;

  // CountSelections with byte-span position tracking: every pre-selected
  // node is pushed into `sink` as a MatchEvent (query_id 0) at its
  // earliest certain offset — just past the opening letter — and its span
  // completes at the matching closing letter (tracked with a depth
  // counter; the pending buffer is bounded by `max_pending`, overflow and
  // end-of-input spans report end_offset -1). Runs over the structural
  // index when the text-run closure is trivial and falls back to the
  // per-byte oracle loop otherwise; CollectMatchesPerByte is that oracle,
  // exposed for the differential tests. Both produce the same events at
  // the same offsets in the same order, and the same count as
  // CountSelections. Framing is not validated (CountSelections
  // semantics): unmatched closes at depth 0 are ignored.
  int64_t CollectMatches(std::string_view bytes, MatchSink* sink,
                         int64_t max_pending = MatchRecorder::kUnlimited)
      const;
  int64_t CollectMatchesPerByte(std::string_view bytes, MatchSink* sink,
                                int64_t max_pending =
                                    MatchRecorder::kUnlimited) const;

  // Final-state acceptance after the whole stream.
  bool Accepts(std::string_view bytes) const;

  // Well-formedness-validated whole-document run: same selection counting
  // as CountSelections, but the input framing is checked byte for byte
  // with StreamingSelector's fail-fast compact-markup semantics (unknown
  // letters, label mismatches, unbalanced closes, trailing content, junk
  // bytes, truncation, and the StreamLimits guards), reporting the same
  // first StreamError at the same byte offset. The validation keeps an
  // open-letter stack — a *validator* of the framing needs the expected
  // closing labels even though the DFA evaluation itself stays stackless.
  ValidatedRun RunValidated(std::string_view bytes,
                            const StreamLimits& limits = {}) const;

  // State reached from the initial state after the whole stream (the
  // sequential reference the parallel runner must reproduce).
  int FinalState(std::string_view bytes) const;
  int FinalStatePerByte(std::string_view bytes) const;

  // Text-run closure (computed from the table at construction, not
  // assumed): for each state q, the fixpoint state text_fixpoint(q) that a
  // run of non-structural (whitespace) bytes converges to, and the
  // per-byte selection coefficient text_coeff(q) such a run accrues. The
  // closure is *exact* when every state steps uniformly across the six
  // whitespace bytes and the step is idempotent — then a gap of g > 0 text
  // bytes is equivalent to: count += coeff(q) + (g-1)*coeff(fix(q));
  // q = fix(q). It is *trivial* when additionally fix(q) == q and the
  // coefficient is zero for every q — then gaps need no work at all. The
  // tables this runner builds are trivial by construction (non-letter
  // bytes self-loop and only 'a'..'z' samples acceptance); the flags keep
  // that a checked property rather than a silent assumption, and the
  // indexed fast paths gate on them with the per-byte loop as fallback.
  bool text_run_trivial() const { return text_run_trivial_; }
  bool text_run_exact() const { return text_run_exact_; }
  int text_fixpoint(int state) const { return text_fix_[state]; }
  int text_coeff(int state) const { return text_coeff_[state]; }

  // Incremental stepping for chunked scanners.
  int initial_state() const { return initial_; }
  int Next(int state, unsigned char byte) const { return Step(state, byte); }
  bool IsAccepting(int state) const { return accepting_[state] != 0; }

  // Symbol of an opening ('a'..'z') or closing ('A'..'Z') letter under this
  // runner's construction convention; -1 for any byte that is neither.
  Symbol byte_symbol(unsigned char byte) const { return byte_symbol_[byte]; }

  int num_states() const { return num_states_; }

  // Raw storage access for the speculative parallel runner and benchmarks:
  // exactly one of table16()/table32() is non-null, matching
  // uses_compact_table(). Rows are 256 entries wide.
  bool uses_compact_table() const { return !table16_.empty(); }
  const uint16_t* table16() const {
    return table16_.empty() ? nullptr : table16_.data();
  }
  const int32_t* table32() const {
    return table32_.empty() ? nullptr : table32_.data();
  }
  const uint8_t* accepting_bytes() const { return accepting_.data(); }

 private:
  void BuildTable(const TagDfa& dfa, const Symbol* byte_symbol);
  void ComputeTextClosure();

  int Step(int state, unsigned char byte) const {
    size_t index = static_cast<size_t>(state) * 256 + byte;
    return table16_.empty() ? table32_[index] : table16_[index];
  }

  template <typename T>
  void FillTable(std::vector<T>* table, const TagDfa& dfa,
                 const Symbol* byte_symbol);
  template <typename T>
  int64_t CountSelectionsImpl(const T* table, std::string_view bytes) const;
  template <typename T>
  int64_t CountSelectionsIndexed(const T* table, std::string_view bytes) const;
  template <typename T>
  int64_t CollectMatchesImpl(const T* table, std::string_view bytes,
                             MatchRecorder* recorder, bool indexed) const;
  template <typename T>
  int FinalStateImpl(const T* table, std::string_view bytes) const;

  int num_states_;
  int initial_;
  std::vector<uint16_t> table16_;  // num_states * 256 when < 65536 states
  std::vector<int32_t> table32_;   // num_states * 256 otherwise
  std::vector<uint8_t> accepting_;
  // Text-run closure, indexed by state (see the accessors above).
  std::vector<int32_t> text_fix_;
  std::vector<int32_t> text_coeff_;
  bool text_run_trivial_ = false;
  bool text_run_exact_ = false;
  // byte → symbol of the construction convention; -1 for bytes that are
  // not a known opening/closing letter. Only RunValidated consults it.
  std::array<Symbol, 256> byte_symbol_;
};

// Byte-level pushdown baseline: simulate the DFA of L with an explicit
// state stack (push on open, pop on close).
class ByteStackRunner {
 public:
  explicit ByteStackRunner(const Dfa& dfa);

  // Streams the bytes; returns the number of pre-selected nodes, or -1 when
  // the input is unbalanced (a closing tag with no matching opener — the
  // runner cannot recover the state it never pushed). Bytes outside
  // 'a'..'z' / 'A'..'Z' are ignored; excess *opening* tags are fine (a
  // prefix of a valid document is still countable).
  int64_t CountSelections(std::string_view bytes);

  size_t max_stack_depth() const { return max_stack_depth_; }

 private:
  int num_states_;
  int initial_;
  std::vector<int> open_table_;  // num_states * 26
  std::vector<uint8_t> accepting_;
  std::vector<int> stack_;
  size_t max_stack_depth_ = 0;
};

}  // namespace sst

#endif  // SST_DRA_BYTE_RUNNER_H_
