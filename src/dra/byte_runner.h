#ifndef SST_DRA_BYTE_RUNNER_H_
#define SST_DRA_BYTE_RUNNER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "automata/alphabet.h"
#include "automata/dfa.h"
#include "dra/tag_dfa.h"

namespace sst {

// Byte-level evaluation over the compact markup serialization ('a'..'z'
// opening tags, 'A'..'Z' closing tags). These runners are the library's
// answer to the paper's Section 4.3 outlook: a registerless evaluator is a
// single fused 256-way transition table — one dependent load per input
// byte, no branches, no external memory — which is exactly the shape that
// SIMD/vectorization research targets, while the stack baseline must touch
// O(depth) memory.

// Fused byte-table runner for a TagDfa. The table maps (state, byte) to the
// next state; a parallel bitset marks states that pre-select on the byte
// just consumed (only meaningful after opening bytes). Besides the batch
// entry points, the runner exposes incremental stepping so streaming
// scanners (StreamingSelector) can drive it chunk by chunk.
class ByteTagDfaRunner {
 public:
  // Positional convention: symbol s opens as byte 'a' + s and closes as
  // 'A' + s (requires at most 26 symbols).
  explicit ByteTagDfaRunner(const TagDfa& dfa);

  // Label-driven convention: each symbol of `dfa` opens as its single
  // lowercase-letter label in `alphabet` and closes as the uppercase form.
  // Every symbol in [0, dfa.num_symbols) must have such a label.
  ByteTagDfaRunner(const TagDfa& dfa, const Alphabet& alphabet);

  // Streams the bytes; returns the number of pre-selected nodes (accepting
  // states entered on opening bytes 'a'..'z'; all other bytes self-loop and
  // never count).
  int64_t CountSelections(std::string_view bytes) const;

  // Final-state acceptance after the whole stream.
  bool Accepts(std::string_view bytes) const;

  // Incremental stepping for chunked scanners.
  int initial_state() const { return initial_; }
  int Next(int state, unsigned char byte) const { return Step(state, byte); }
  bool IsAccepting(int state) const { return accepting_[state] != 0; }

  int num_states() const { return num_states_; }

 private:
  void BuildTable(const TagDfa& dfa, const Symbol* byte_symbol);

  int Step(int state, unsigned char byte) const {
    return table_[static_cast<size_t>(state) * 256 + byte];
  }

  int num_states_;
  int initial_;
  std::vector<int> table_;        // num_states * 256
  std::vector<uint8_t> accepting_;
};

// Byte-level pushdown baseline: simulate the DFA of L with an explicit
// state stack (push on open, pop on close).
class ByteStackRunner {
 public:
  explicit ByteStackRunner(const Dfa& dfa);

  // Streams the bytes; returns the number of pre-selected nodes, or -1 when
  // the input is unbalanced (a closing tag with no matching opener — the
  // runner cannot recover the state it never pushed). Bytes outside
  // 'a'..'z' / 'A'..'Z' are ignored; excess *opening* tags are fine (a
  // prefix of a valid document is still countable).
  int64_t CountSelections(std::string_view bytes);

  size_t max_stack_depth() const { return max_stack_depth_; }

 private:
  int num_states_;
  int initial_;
  std::vector<int> open_table_;  // num_states * 26
  std::vector<uint8_t> accepting_;
  std::vector<int> stack_;
  size_t max_stack_depth_ = 0;
};

}  // namespace sst

#endif  // SST_DRA_BYTE_RUNNER_H_
