#include "dra/tag_dfa.h"

#include <utility>
#include <vector>

#include "base/check.h"

namespace sst {

TagDfa TagDfa::Create(int num_states, int num_symbols) {
  TagDfa dfa;
  dfa.num_states = num_states;
  dfa.num_symbols = num_symbols;
  dfa.next_open.assign(static_cast<size_t>(num_states) * num_symbols, 0);
  dfa.next_close.assign(static_cast<size_t>(num_states) * num_symbols, 0);
  dfa.accepting.assign(num_states, false);
  return dfa;
}

bool TagDfa::ClosingSymbolInvariant() const {
  for (int q = 0; q < num_states; ++q) {
    for (Symbol a = 1; a < num_symbols; ++a) {
      if (NextClose(q, a) != NextClose(q, 0)) return false;
    }
  }
  return true;
}

namespace {

template <typename AcceptFn>
TagDfa TagProduct(const TagDfa& a, const TagDfa& b, AcceptFn want) {
  SST_CHECK(a.num_symbols == b.num_symbols);
  const int k = a.num_symbols;
  std::vector<int> id(static_cast<size_t>(a.num_states) * b.num_states, -1);
  std::vector<std::pair<int, int>> states;
  auto intern = [&](int p, int q) {
    int& slot = id[static_cast<size_t>(p) * b.num_states + q];
    if (slot < 0) {
      slot = static_cast<int>(states.size());
      states.emplace_back(p, q);
    }
    return slot;
  };
  TagDfa result;
  result.num_symbols = k;
  result.initial = intern(a.initial, b.initial);
  for (size_t i = 0; i < states.size(); ++i) {
    auto [p, q] = states[i];
    result.accepting.push_back(want(a.accepting[p], b.accepting[q]));
    for (Symbol s = 0; s < k; ++s) {
      result.next_open.push_back(intern(a.NextOpen(p, s), b.NextOpen(q, s)));
    }
    for (Symbol s = 0; s < k; ++s) {
      result.next_close.push_back(
          intern(a.NextClose(p, s), b.NextClose(q, s)));
    }
  }
  result.num_states = static_cast<int>(states.size());
  return result;
}

}  // namespace

TagDfa TagDfaIntersection(const TagDfa& a, const TagDfa& b) {
  return TagProduct(a, b, [](bool x, bool y) { return x && y; });
}

TagDfa TagDfaUnion(const TagDfa& a, const TagDfa& b) {
  return TagProduct(a, b, [](bool x, bool y) { return x || y; });
}

TagDfa TagDfaComplement(const TagDfa& a) {
  TagDfa result = a;
  for (int q = 0; q < result.num_states; ++q) {
    result.accepting[q] = !result.accepting[q];
  }
  return result;
}

}  // namespace sst
