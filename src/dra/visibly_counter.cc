#include "dra/visibly_counter.h"

#include "base/check.h"

namespace sst {

VisiblyCounterAutomaton VisiblyCounterAutomaton::Create(int num_states,
                                                        int num_symbols,
                                                        int threshold) {
  SST_CHECK(threshold >= 0);
  VisiblyCounterAutomaton vca;
  vca.num_states = num_states;
  vca.num_symbols = num_symbols;
  vca.threshold = threshold;
  vca.accepting.assign(num_states, false);
  vca.next.assign(static_cast<size_t>(num_states) * 2 * num_symbols *
                      (threshold + 1),
                  0);
  return vca;
}

OffsetDra VcaToOffsetDra(const VisiblyCounterAutomaton& vca) {
  const int m = vca.threshold;
  OffsetDra result;
  result.dra = Dra::Create(vca.num_states, vca.num_symbols, m);
  result.offset.clear();
  for (int j = 1; j <= m; ++j) result.offset.push_back(j);
  Dra& dra = result.dra;
  dra.initial = vca.initial;
  for (int q = 0; q < vca.num_states; ++q) {
    dra.accepting[q] = vca.accepting[q];
  }
  // Register j-1 (offset j, value pinned at 0) compares 0 + j against the
  // depth: digit kGreater  <=> depth < j. min(depth, m) is therefore the
  // number of registers reading kLess or kEqual... precisely: depth >= j
  // iff digit(j) != kGreater. Transitions never load, so the registers
  // stay at 0 forever.
  for (int q = 0; q < vca.num_states; ++q) {
    for (int close = 0; close < 2; ++close) {
      for (Symbol a = 0; a < vca.num_symbols; ++a) {
        for (int code = 0; code < dra.NumCmpCodes(); ++code) {
          int clamped = m;
          for (int j = 1; j <= m; ++j) {
            if (Dra::CmpDigit(code, j - 1) == Dra::kGreater) {
              clamped = j - 1;
              break;
            }
          }
          dra.At(q, close != 0, a, code) = Dra::Action{
              0, vca.Next(q, close != 0, a, clamped)};
        }
      }
    }
  }
  return result;
}

}  // namespace sst
