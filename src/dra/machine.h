#ifndef SST_DRA_MACHINE_H_
#define SST_DRA_MACHINE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "automata/alphabet.h"
#include "trees/encoding.h"
#include "trees/tree.h"

namespace sst {

struct TagDfa;
struct Dra;

// Full configuration of a depth-register automaton (Definition 2.1):
// control state, depth counter, register values. This is the unit the
// stackless fused fast path syncs between a DRA-backed StreamMachine and
// the byte-level ByteDraRunner around each chunk, mirroring the
// registerless ExportedState()/SyncExportedState(int) protocol below.
// The register array is fixed-size (registers past num_registers are
// ignored) so a config is copyable with no heap traffic per chunk.
struct DraConfig {
  static constexpr int kMaxRegisters = 10;  // = Dra::kMaxRegisters

  int state = 0;
  int64_t depth = 0;
  std::array<int64_t, kMaxRegisters> registers{};
};

// Common interface of all streaming evaluators: explicit DRAs, registerless
// automata, and the constructed evaluators of Section 3. A machine consumes
// tag events; after any event its acceptance bit can be sampled.
//
// Query semantics (Section 2.3): a node is *pre-selected* iff the machine is
// in an accepting state directly after its opening tag. Recognition
// semantics (Section 2.2): the machine accepts the tree iff it is in an
// accepting state after the full encoding.
//
// Machines for the term encoding must not depend on the `symbol` argument of
// OnClose (the term encoding has a universal closing tag); such machines
// accept -1 there.
class StreamMachine {
 public:
  virtual ~StreamMachine() = default;

  virtual void Reset() = 0;
  virtual void OnOpen(Symbol symbol) = 0;
  virtual void OnClose(Symbol symbol) = 0;
  virtual bool InAcceptingState() const = 0;

  // Match-event fan-out: appends the ids of the members whose verdict is
  // "selected" for the node just opened. Called by scanners only when the
  // machine (or its fused stand-in) reports acceptance, so single-query
  // machines keep the default — member 0 — which is deliberately
  // state-independent: the fused tiers sample acceptance from the byte
  // table without syncing the machine mid-chunk, and the default must stay
  // correct there. Multi-query machines (ProductTagMachine) override this
  // to enumerate the accepting members of the product mask; they never run
  // fused, so their machine state is in sync at every call.
  virtual void AppendSelectedMembers(std::vector<int32_t>* out) const {
    out->push_back(0);
  }

  // Registerless fast-path export (Section 4.3): machines that are (wrappers
  // of) a plain TagDfa may expose the automaton plus get/set access to their
  // current state. Byte-level scanners then run a fused byte→state
  // transition table with no virtual dispatch per event and sync the state
  // back after each chunk. Machines without such a representation keep the
  // defaults (no export; state calls ignored).
  virtual const TagDfa* ExportTagDfa() const { return nullptr; }
  virtual int ExportedState() const { return 0; }
  virtual void SyncExportedState(int /*state*/) {}

  // Stackless fast-path export: machines that are (wrappers of) an explicit
  // restricted DRA expose the automaton plus get/set access to their full
  // configuration (state, depth, registers). Byte-level scanners then
  // resolve the depth counter, the registers, and the 3^r comparison code
  // inside the fused scan loop (ByteDraRunner) and sync the configuration
  // back after each chunk. A machine exports at most one of
  // ExportTagDfa()/ExportDra().
  virtual const Dra* ExportDra() const { return nullptr; }
  virtual DraConfig ExportedDraConfig() const { return {}; }
  virtual void SyncExportedDraConfig(const DraConfig& /*config*/) {}

  // Checkpoint protocol (incremental re-evaluation, engine/incremental.h):
  // machines that can serialize their full configuration into a flat word
  // vector support suspend/resume at arbitrary event boundaries. The
  // stackless tiers write O(1)-to-O(registers) words — the paper's cheap-
  // snapshot asset; the stack tier stores a handle to a retained head in
  // its pooled persistent stack (eval/stack_evaluator.h), still O(1).
  //
  //   SaveConfig        appends nothing on failure; true and `out`
  //                     overwritten on success. May retain machine-owned
  //                     resources: every saved config must eventually be
  //                     passed to ReleaseConfig or dropped via Reset().
  //   RestoreConfig     adopts a previously saved (not yet released)
  //                     config; the config stays valid and may be restored
  //                     again (repeated edits resume from one checkpoint).
  //   ConfigEqualsCurrent  true iff the machine's live configuration is
  //                     semantically identical to the saved one — the
  //                     convergence test of incremental re-evaluation.
  //                     Diagnostic counters do not participate.
  //   ReleaseConfig     drops one saved config (frees pooled stack nodes
  //                     on the stack tier; no-op for flat configs).
  //
  // The default "unsupported" answers keep exotic machines (products,
  // test doubles) safely on the full-rescan path.
  virtual bool SaveConfig(std::vector<int64_t>* /*out*/) { return false; }
  virtual bool RestoreConfig(const std::vector<int64_t>& /*config*/) {
    return false;
  }
  virtual bool ConfigEqualsCurrent(
      const std::vector<int64_t>& /*config*/) const {
    return false;
  }
  virtual void ReleaseConfig(const std::vector<int64_t>& /*config*/) {}

  // Stack-tier diagnostics, surfaced through StreamStats (and from there
  // the server metrics frame). Zero on the stackless tiers by definition:
  // their whole point is having no stack to peak or underflow.
  virtual int64_t StackDepthPeak() const { return 0; }
  virtual int64_t StackUnderflowCloses() const { return 0; }
};

// Runs the machine over the given encoding and returns, per opening tag in
// stream order (= document order of nodes), whether the node was
// pre-selected. Use RunQueryOnTree to get the answers indexed by node id.
std::vector<bool> RunQuery(StreamMachine* machine, const EventStream& events);

// Streams <tree> through the machine and returns pre-selection per node id
// (directly comparable with SelectNodes ground truth). When `term_encoded`
// is set, closing events carry no label (symbol -1), as under the term
// encoding.
std::vector<bool> RunQueryOnTree(StreamMachine* machine, const Tree& tree,
                                 bool term_encoded = false);

// Runs the machine over the full stream; true iff it ends accepting.
bool RunAcceptor(StreamMachine* machine, const EventStream& events);

}  // namespace sst

#endif  // SST_DRA_MACHINE_H_
