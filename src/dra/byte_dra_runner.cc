#include "dra/byte_dra_runner.h"

#include "base/byte_scan.h"
#include "base/check.h"

namespace sst {

ByteDraRunner::ByteDraRunner(const Dra* dra, const Alphabet& alphabet)
    : dra_(dra),
      num_states_(dra->num_states),
      num_symbols_(dra->num_symbols),
      num_registers_(dra->num_registers),
      num_codes_(dra->NumCmpCodes()) {
  SST_CHECK_MSG(IsRestricted(*dra),
                "fused byte execution requires a restricted DRA");
  SST_CHECK(num_registers_ <= Dra::kMaxRegisters);
  for (int r = 0, p = 1; r < num_registers_; ++r, p *= 3) {
    pow3_[static_cast<size_t>(r)] = p;
  }
  byte_symbol_.fill(-1);
  for (Symbol a = 0; a < num_symbols_; ++a) {
    const std::string& label = alphabet.LabelOf(a);
    SST_CHECK_MSG(label.size() == 1 && label[0] >= 'a' && label[0] <= 'z',
                  "compact markup requires single lowercase-letter labels");
    byte_symbol_[static_cast<unsigned char>(label[0])] = a;
    byte_symbol_[static_cast<unsigned char>(label[0] - 'a' + 'A')] = a;
  }
  accepting_.assign(num_states_, 0);
  for (int q = 0; q < num_states_; ++q) {
    accepting_[q] = dra->accepting[q] ? 1 : 0;
  }
  if (num_states_ < 65536) {
    FillTables(&open_next16_, &close_next16_);
  } else {
    FillTables(&open_next32_, &close_next32_);
  }
}

template <typename T>
void ByteDraRunner::FillTables(std::vector<T>* open_next,
                               std::vector<T>* close_next) {
  const size_t open_rows =
      static_cast<size_t>(num_states_) * static_cast<size_t>(num_symbols_);
  open_next->assign(open_rows, 0);
  open_load_.assign(open_rows, 0);
  close_next->assign(open_rows * static_cast<size_t>(num_codes_), 0);
  close_load_.assign(open_rows * static_cast<size_t>(num_codes_), 0);
  for (int q = 0; q < num_states_; ++q) {
    for (Symbol a = 0; a < num_symbols_; ++a) {
      const size_t open_index =
          static_cast<size_t>(q) * num_symbols_ + a;
      // Restricted invariant: the comparison vector on opening tags is
      // all-kLess (code 0); the other 3^r - 1 rows of the explicit table
      // are unreachable and simply dropped.
      const Dra::Action& open = dra_->At(q, /*is_close=*/false, a, 0);
      (*open_next)[open_index] = static_cast<T>(open.next);
      open_load_[open_index] = static_cast<uint16_t>(open.load_mask);
      for (int code = 0; code < num_codes_; ++code) {
        const Dra::Action& close = dra_->At(q, /*is_close=*/true, a, code);
        const size_t close_index = open_index * num_codes_ + code;
        (*close_next)[close_index] = static_cast<T>(close.next);
        close_load_[close_index] = static_cast<uint16_t>(close.load_mask);
      }
    }
  }
}

DraConfig ByteDraRunner::InitialConfig() const {
  DraConfig config;
  config.state = dra_->initial;
  return config;
}

DraConfig ByteDraRunner::FinalConfig(std::string_view bytes) const {
  DraConfig config = InitialConfig();
  ForEachStructural(bytes.data(), bytes.size(),
                    [&](size_t i) {
                      Next(&config, static_cast<unsigned char>(bytes[i]));
                    });
  return config;
}

int64_t ByteDraRunner::CountSelectionsPerByte(std::string_view bytes) const {
  DraConfig config = InitialConfig();
  int64_t selected = 0;
  for (unsigned char byte : bytes) {
    if (byte >= 'a' && byte <= 'z') {
      Symbol s = byte_symbol_[byte];
      if (s >= 0) StepOpen(&config, s);
      // Pre-selection samples after every opening byte — including unknown
      // lowercase letters, which self-loop but still sample (parity with
      // ByteTagDfaRunner, whose self-loop rows make the same call).
      selected += static_cast<int64_t>(accepting_[config.state]);
    } else if (byte >= 'A' && byte <= 'Z') {
      Symbol s = byte_symbol_[byte];
      if (s >= 0) StepClose(&config, s);
    }
  }
  return selected;
}

int64_t ByteDraRunner::CountSelections(std::string_view bytes) const {
  DraConfig config = InitialConfig();
  int64_t selected = 0;
  // Structural-index walk: whitespace gaps leave the configuration and the
  // count untouched (text_run_trivial() by construction), so the automaton
  // only ever sees structural bytes.
  ForEachStructural(bytes.data(), bytes.size(), [&](size_t i) {
    unsigned char byte = static_cast<unsigned char>(bytes[i]);
    if (byte >= 'a' && byte <= 'z') {
      Symbol s = byte_symbol_[byte];
      if (s >= 0) StepOpen(&config, s);
      selected += static_cast<int64_t>(accepting_[config.state]);
    } else if (byte >= 'A' && byte <= 'Z') {
      Symbol s = byte_symbol_[byte];
      if (s >= 0) StepClose(&config, s);
    }
  });
  return selected;
}

namespace {

// Shared span-tracking step for the indexed and per-byte collect loops:
// framing depth counts every tag letter (known or not — the framing view,
// matching the recorder depths ByteTagDfaRunner::CollectMatches uses),
// while only known letters step the configuration.
struct DraCollectState {
  DraConfig config;
  int64_t depth = 0;
  int64_t selected = 0;
};

}  // namespace

int64_t ByteDraRunner::CollectMatches(std::string_view bytes, MatchSink* sink,
                                      int64_t max_pending) const {
  MatchRecorder recorder;
  recorder.set_sink(sink);
  recorder.set_max_pending(max_pending);
  DraCollectState st;
  st.config = InitialConfig();
  // Structural-index walk is sound unconditionally (text_run_trivial()):
  // whitespace touches neither the configuration, the framing depth, nor
  // any event offset.
  ForEachStructural(bytes.data(), bytes.size(), [&](size_t i) {
    unsigned char byte = static_cast<unsigned char>(bytes[i]);
    if (byte >= 'a' && byte <= 'z') {
      Symbol s = byte_symbol_[byte];
      if (s >= 0) StepOpen(&st.config, s);
      ++st.depth;
      if (accepting_[st.config.state]) {
        ++st.selected;
        recorder.OnMatch(0, st.depth, static_cast<int64_t>(i),
                         static_cast<int64_t>(i) + 1);
      }
    } else if (byte >= 'A' && byte <= 'Z') {
      Symbol s = byte_symbol_[byte];
      if (s >= 0) StepClose(&st.config, s);
      if (st.depth > 0) {
        recorder.OnClose(st.depth, static_cast<int64_t>(i) + 1);
        --st.depth;
      }
    }
  });
  recorder.FlushTruncated();
  return st.selected;
}

int64_t ByteDraRunner::CollectMatchesPerByte(std::string_view bytes,
                                             MatchSink* sink,
                                             int64_t max_pending) const {
  MatchRecorder recorder;
  recorder.set_sink(sink);
  recorder.set_max_pending(max_pending);
  DraCollectState st;
  st.config = InitialConfig();
  for (size_t i = 0; i < bytes.size(); ++i) {
    unsigned char byte = static_cast<unsigned char>(bytes[i]);
    if (byte >= 'a' && byte <= 'z') {
      Symbol s = byte_symbol_[byte];
      if (s >= 0) StepOpen(&st.config, s);
      ++st.depth;
      if (accepting_[st.config.state]) {
        ++st.selected;
        recorder.OnMatch(0, st.depth, static_cast<int64_t>(i),
                         static_cast<int64_t>(i) + 1);
      }
    } else if (byte >= 'A' && byte <= 'Z') {
      Symbol s = byte_symbol_[byte];
      if (s >= 0) StepClose(&st.config, s);
      if (st.depth > 0) {
        recorder.OnClose(st.depth, static_cast<int64_t>(i) + 1);
        --st.depth;
      }
    }
  }
  recorder.FlushTruncated();
  return st.selected;
}

bool ByteDraRunner::Accepts(std::string_view bytes) const {
  return accepting_[FinalConfig(bytes).state] != 0;
}

ValidatedRun ByteDraRunner::RunValidated(std::string_view bytes,
                                         const StreamLimits& limits) const {
  ValidatedRun run;
  DraConfig config = InitialConfig();
  run.final_state = config.state;
  std::vector<Symbol> open_letters;
  int64_t depth = 0;
  bool saw_root = false;
  // Byte guard first (as a prefix split, exactly like StreamingSelector):
  // the error fires at offset max_document_bytes iff the prefix is clean.
  bool over_byte_limit =
      static_cast<int64_t>(bytes.size()) > limits.max_document_bytes;
  size_t scan_end = over_byte_limit
                        ? static_cast<size_t>(limits.max_document_bytes)
                        : bytes.size();
  auto fail = [&](StreamErrorCode code, int64_t offset, Symbol expected,
                  Symbol got) {
    run.error.code = code;
    run.error.offset = offset;
    run.error.depth = depth;
    run.error.expected = expected;
    run.error.got = got;
  };
  // Same structural-index iteration as ByteTagDfaRunner::RunValidated:
  // validation treats whitespace as pure identity, so skipping it with the
  // index preserves every error code and byte offset.
  StructuralIterator structural(bytes.data(), scan_end);
  for (size_t i = structural.Next(); i < scan_end; i = structural.Next()) {
    unsigned char byte = static_cast<unsigned char>(bytes[i]);
    if (byte >= 'a' && byte <= 'z') {
      Symbol s = byte_symbol_[byte];
      if (s < 0) {
        fail(StreamErrorCode::kUnknownLabel, i, -1, -1);
        return run;
      }
      if (depth == 0 && saw_root) {
        fail(StreamErrorCode::kTrailingContent, i, -1, s);
        return run;
      }
      if (depth >= limits.max_depth) {
        fail(StreamErrorCode::kDepthLimitExceeded, i, -1, s);
        return run;
      }
      if (run.events >= limits.max_events) {
        fail(StreamErrorCode::kEventLimitExceeded, i, -1, -1);
        return run;
      }
      saw_root = true;
      ++depth;
      if (depth > run.max_depth) run.max_depth = depth;
      open_letters.push_back(s);
      StepOpen(&config, s);
      run.final_state = config.state;
      ++run.events;
      if (accepting_[config.state]) ++run.matches;
      ++run.nodes;
      continue;
    }
    if (byte >= 'A' && byte <= 'Z') {
      Symbol s = byte_symbol_[byte];
      if (s < 0) {
        fail(StreamErrorCode::kUnknownLabel, i, -1, -1);
        return run;
      }
      if (open_letters.empty()) {
        fail(StreamErrorCode::kUnbalancedClose, i, -1, s);
        return run;
      }
      if (open_letters.back() != s) {
        fail(StreamErrorCode::kLabelMismatch, i, open_letters.back(), s);
        return run;
      }
      if (run.events >= limits.max_events) {
        fail(StreamErrorCode::kEventLimitExceeded, i, -1, -1);
        return run;
      }
      open_letters.pop_back();
      --depth;
      StepClose(&config, s);
      run.final_state = config.state;
      ++run.events;
      continue;
    }
    fail(StreamErrorCode::kBadByte, i, -1, -1);
    return run;
  }
  if (over_byte_limit) {
    fail(StreamErrorCode::kByteLimitExceeded, limits.max_document_bytes, -1,
         -1);
    return run;
  }
  if (!saw_root || depth != 0) {
    fail(StreamErrorCode::kTruncatedDocument,
         static_cast<int64_t>(bytes.size()), -1, -1);
  }
  return run;
}

}  // namespace sst
