#include "dra/byte_runner.h"

#include <array>

#include "base/byte_scan.h"
#include "base/check.h"

namespace sst {

ByteTagDfaRunner::ByteTagDfaRunner(const TagDfa& dfa)
    : num_states_(dfa.num_states), initial_(dfa.initial) {
  SST_CHECK_MSG(dfa.num_symbols <= 26, "compact markup allows 26 symbols");
  std::array<Symbol, 256> byte_symbol;
  byte_symbol.fill(-1);
  for (Symbol a = 0; a < dfa.num_symbols; ++a) byte_symbol['a' + a] = a;
  BuildTable(dfa, byte_symbol.data());
}

ByteTagDfaRunner::ByteTagDfaRunner(const TagDfa& dfa, const Alphabet& alphabet)
    : num_states_(dfa.num_states), initial_(dfa.initial) {
  std::array<Symbol, 256> byte_symbol = alphabet.ByteSymbolTable();
  for (Symbol a = 0; a < dfa.num_symbols; ++a) {
    const std::string& label = alphabet.LabelOf(a);
    SST_CHECK_MSG(
        label.size() == 1 && label[0] >= 'a' && label[0] <= 'z',
        "compact markup requires single lowercase-letter labels");
  }
  // Keep only lowercase-letter entries: other single-byte labels (digits,
  // punctuation) have no uppercase closing form in compact markup.
  for (int byte = 0; byte < 256; ++byte) {
    if (byte < 'a' || byte > 'z') byte_symbol[byte] = -1;
  }
  BuildTable(dfa, byte_symbol.data());
}

template <typename T>
void ByteTagDfaRunner::FillTable(std::vector<T>* table, const TagDfa& dfa,
                                 const Symbol* byte_symbol) {
  table->assign(static_cast<size_t>(num_states_) * 256, 0);
  for (int q = 0; q < num_states_; ++q) {
    accepting_[q] = dfa.accepting[q] ? 1 : 0;
    T* row = table->data() + static_cast<size_t>(q) * 256;
    for (int byte = 0; byte < 256; ++byte) {
      // Unknown bytes self-loop (they cannot occur in valid input).
      row[byte] = static_cast<T>(q);
    }
    for (int byte = 'a'; byte <= 'z'; ++byte) {
      Symbol a = byte_symbol[byte];
      if (a < 0 || a >= dfa.num_symbols) continue;
      row[byte] = static_cast<T>(dfa.NextOpen(q, a));
      row[byte - 'a' + 'A'] = static_cast<T>(dfa.NextClose(q, a));
    }
  }
}

void ByteTagDfaRunner::BuildTable(const TagDfa& dfa,
                                  const Symbol* byte_symbol) {
  accepting_.assign(num_states_, 0);
  byte_symbol_.fill(-1);
  for (int byte = 'a'; byte <= 'z'; ++byte) {
    Symbol a = byte_symbol[byte];
    if (a < 0 || a >= dfa.num_symbols) continue;
    byte_symbol_[byte] = a;
    byte_symbol_[byte - 'a' + 'A'] = a;
  }
  if (num_states_ < 65536) {
    FillTable(&table16_, dfa, byte_symbol);
  } else {
    FillTable(&table32_, dfa, byte_symbol);
  }
  ComputeTextClosure();
}

void ByteTagDfaRunner::ComputeTextClosure() {
  static constexpr unsigned char kWsProbe[] = {' ', '\t', '\n',
                                               '\v', '\f', '\r'};
  text_fix_.assign(static_cast<size_t>(num_states_), 0);
  text_coeff_.assign(static_cast<size_t>(num_states_), 0);
  bool uniform = true;
  text_run_trivial_ = true;
  for (int q = 0; q < num_states_; ++q) {
    const int next = Step(q, kWsProbe[0]);
    // Per-byte selection coefficient of a text byte entered from q: the
    // sampling predicate counts only opening bytes 'a'..'z', which no
    // whitespace byte is, so this is derived as zero — derived, not
    // assumed, so a change to either the table fill or the sampling rule
    // trips the closure flags instead of silently corrupting gap math.
    const int coeff = static_cast<int>((kWsProbe[0] >= 'a') &
                                       (kWsProbe[0] <= 'z') &
                                       accepting_[static_cast<size_t>(next)]);
    for (unsigned char w : kWsProbe) {
      const int step = Step(q, w);
      const int c = static_cast<int>((w >= 'a') & (w <= 'z') &
                                     accepting_[static_cast<size_t>(step)]);
      if (step != next || c != coeff) uniform = false;
    }
    text_fix_[static_cast<size_t>(q)] = next;
    text_coeff_[static_cast<size_t>(q)] = coeff;
    if (next != q || coeff != 0) text_run_trivial_ = false;
  }
  bool idempotent = true;
  for (int q = 0; q < num_states_; ++q) {
    const int f = text_fix_[static_cast<size_t>(q)];
    if (text_fix_[static_cast<size_t>(f)] != f) idempotent = false;
  }
  text_run_exact_ = uniform && idempotent;
  if (!text_run_exact_) text_run_trivial_ = false;
}

template <typename T>
int64_t ByteTagDfaRunner::CountSelectionsImpl(const T* table,
                                              std::string_view bytes) const {
  int state = initial_;
  int64_t selected = 0;
  for (unsigned char byte : bytes) {
    state = table[static_cast<size_t>(state) * 256 + byte];
    // Pre-selection samples only after opening tags: exactly the lowercase
    // letters. Anything else ('{', '|', bytes >= 0x7B, ...) self-loops and
    // must not count even when the looped state is accepting.
    selected += static_cast<int64_t>((byte >= 'a') & (byte <= 'z') &
                                     accepting_[state]);
  }
  return selected;
}

int64_t ByteTagDfaRunner::CountSelectionsPerByte(
    std::string_view bytes) const {
  return uses_compact_table() ? CountSelectionsImpl(table16_.data(), bytes)
                              : CountSelectionsImpl(table32_.data(), bytes);
}

template <typename T>
int64_t ByteTagDfaRunner::CountSelectionsIndexed(const T* table,
                                                 std::string_view bytes) const {
  int state = initial_;
  int64_t selected = 0;
  if (text_run_trivial_) {
    // Whitespace gaps are full no-ops: the stage-1 index walks straight to
    // the structural bytes and the automaton never sees the rest.
    ForEachStructural(bytes.data(), bytes.size(), [&](size_t i) {
      unsigned char byte = static_cast<unsigned char>(bytes[i]);
      state = table[static_cast<size_t>(state) * 256 + byte];
      selected += static_cast<int64_t>((byte >= 'a') & (byte <= 'z') &
                                       accepting_[state]);
    });
    return selected;
  }
  // Exact but non-trivial closure: each gap of g text bytes collapses to
  // one fixpoint step and a multiplied coefficient.
  size_t prev = static_cast<size_t>(-1);
  ForEachStructural(bytes.data(), bytes.size(), [&](size_t i) {
    size_t gap = i - prev - 1;
    if (gap > 0) {
      selected += text_coeff_[state];
      state = text_fix_[state];
      selected += static_cast<int64_t>(gap - 1) * text_coeff_[state];
    }
    prev = i;
    unsigned char byte = static_cast<unsigned char>(bytes[i]);
    state = table[static_cast<size_t>(state) * 256 + byte];
    selected += static_cast<int64_t>((byte >= 'a') & (byte <= 'z') &
                                     accepting_[state]);
  });
  size_t tail = bytes.size() - prev - 1;
  if (tail > 0) {
    selected += text_coeff_[state];
    state = text_fix_[state];
    selected += static_cast<int64_t>(tail - 1) * text_coeff_[state];
  }
  return selected;
}

int64_t ByteTagDfaRunner::CountSelections(std::string_view bytes) const {
  if (!text_run_exact_) return CountSelectionsPerByte(bytes);
  return uses_compact_table() ? CountSelectionsIndexed(table16_.data(), bytes)
                              : CountSelectionsIndexed(table32_.data(), bytes);
}

template <typename T>
int64_t ByteTagDfaRunner::CollectMatchesImpl(const T* table,
                                             std::string_view bytes,
                                             MatchRecorder* recorder,
                                             bool indexed) const {
  int state = initial_;
  int64_t depth = 0;
  int64_t selected = 0;
  // Span bookkeeping rides the same fused walk as selection counting: a
  // depth counter frames opens/closes (no validation — CountSelections
  // semantics), matches arm a pending span at the opening letter and the
  // close at the same depth completes it.
  auto step = [&](size_t i) {
    unsigned char byte = static_cast<unsigned char>(bytes[i]);
    state = table[static_cast<size_t>(state) * 256 + byte];
    if (byte >= 'a' && byte <= 'z') {
      ++depth;
      if (accepting_[state]) {
        ++selected;
        recorder->OnMatch(0, depth, static_cast<int64_t>(i),
                          static_cast<int64_t>(i) + 1);
      }
    } else if (byte >= 'A' && byte <= 'Z') {
      if (depth > 0) {
        recorder->OnClose(depth, static_cast<int64_t>(i) + 1);
        --depth;
      }
    }
  };
  if (indexed) {
    // Sound only under a trivial text-run closure (the gate in
    // CollectMatches): whitespace gaps touch neither the state nor the
    // framing, so skipping them changes no event and no offset.
    ForEachStructural(bytes.data(), bytes.size(), step);
  } else {
    for (size_t i = 0; i < bytes.size(); ++i) step(i);
  }
  // Spans still open at end of input have no close in the bytes: report
  // them truncated (end_offset -1), never drop them.
  recorder->FlushTruncated();
  return selected;
}

int64_t ByteTagDfaRunner::CollectMatches(std::string_view bytes,
                                         MatchSink* sink,
                                         int64_t max_pending) const {
  MatchRecorder recorder;
  recorder.set_sink(sink);
  recorder.set_max_pending(max_pending);
  const bool indexed = text_run_trivial_;
  return uses_compact_table()
             ? CollectMatchesImpl(table16_.data(), bytes, &recorder, indexed)
             : CollectMatchesImpl(table32_.data(), bytes, &recorder, indexed);
}

int64_t ByteTagDfaRunner::CollectMatchesPerByte(std::string_view bytes,
                                                MatchSink* sink,
                                                int64_t max_pending) const {
  MatchRecorder recorder;
  recorder.set_sink(sink);
  recorder.set_max_pending(max_pending);
  return uses_compact_table()
             ? CollectMatchesImpl(table16_.data(), bytes, &recorder, false)
             : CollectMatchesImpl(table32_.data(), bytes, &recorder, false);
}

template <typename T>
int ByteTagDfaRunner::FinalStateImpl(const T* table,
                                     std::string_view bytes) const {
  int state = initial_;
  for (unsigned char byte : bytes) {
    state = table[static_cast<size_t>(state) * 256 + byte];
  }
  return state;
}

int ByteTagDfaRunner::FinalStatePerByte(std::string_view bytes) const {
  return uses_compact_table() ? FinalStateImpl(table16_.data(), bytes)
                              : FinalStateImpl(table32_.data(), bytes);
}

int ByteTagDfaRunner::FinalState(std::string_view bytes) const {
  if (!text_run_exact_) return FinalStatePerByte(bytes);
  int state = initial_;
  size_t prev = static_cast<size_t>(-1);
  if (text_run_trivial_) {
    // Gaps are identity on the state; only structural bytes step.
    if (uses_compact_table()) {
      const uint16_t* table = table16_.data();
      ForEachStructural(bytes.data(), bytes.size(), [&](size_t i) {
        state = table[static_cast<size_t>(state) * 256 +
                      static_cast<unsigned char>(bytes[i])];
      });
    } else {
      const int32_t* table = table32_.data();
      ForEachStructural(bytes.data(), bytes.size(), [&](size_t i) {
        state = table[static_cast<size_t>(state) * 256 +
                      static_cast<unsigned char>(bytes[i])];
      });
    }
    return state;
  }
  ForEachStructural(bytes.data(), bytes.size(), [&](size_t i) {
    if (i - prev - 1 > 0) state = text_fix_[state];
    prev = i;
    state = Step(state, static_cast<unsigned char>(bytes[i]));
  });
  if (bytes.size() - prev - 1 > 0) state = text_fix_[state];
  return state;
}

bool ByteTagDfaRunner::Accepts(std::string_view bytes) const {
  return accepting_[FinalState(bytes)] != 0;
}

ValidatedRun ByteTagDfaRunner::RunValidated(std::string_view bytes,
                                            const StreamLimits& limits) const {
  ValidatedRun run;
  run.final_state = initial_;
  std::vector<Symbol> open_letters;
  int64_t depth = 0;
  bool saw_root = false;
  // Byte guard first (as a prefix split, exactly like StreamingSelector):
  // the error fires at offset max_document_bytes iff the prefix is clean.
  bool over_byte_limit =
      static_cast<int64_t>(bytes.size()) > limits.max_document_bytes;
  size_t scan_end = over_byte_limit
                        ? static_cast<size_t>(limits.max_document_bytes)
                        : bytes.size();
  auto fail = [&](StreamErrorCode code, int64_t offset, Symbol expected,
                  Symbol got) {
    run.error.code = code;
    run.error.offset = offset;
    run.error.depth = depth;
    run.error.expected = expected;
    run.error.got = got;
  };
  // Validation treats whitespace as pure identity (no step, no error, no
  // count), so iterating the structural index is byte-identical to the
  // per-byte scan — including every error offset — with no closure gate.
  StructuralIterator structural(bytes.data(), scan_end);
  for (size_t i = structural.Next(); i < scan_end; i = structural.Next()) {
    unsigned char byte = static_cast<unsigned char>(bytes[i]);
    if (byte >= 'a' && byte <= 'z') {
      Symbol s = byte_symbol_[byte];
      if (s < 0) {
        fail(StreamErrorCode::kUnknownLabel, i, -1, -1);
        return run;
      }
      if (depth == 0 && saw_root) {
        fail(StreamErrorCode::kTrailingContent, i, -1, s);
        return run;
      }
      if (depth >= limits.max_depth) {
        fail(StreamErrorCode::kDepthLimitExceeded, i, -1, s);
        return run;
      }
      if (run.events >= limits.max_events) {
        fail(StreamErrorCode::kEventLimitExceeded, i, -1, -1);
        return run;
      }
      saw_root = true;
      ++depth;
      if (depth > run.max_depth) run.max_depth = depth;
      open_letters.push_back(s);
      run.final_state = Step(run.final_state, byte);
      ++run.events;
      if (accepting_[run.final_state]) ++run.matches;
      ++run.nodes;
      continue;
    }
    if (byte >= 'A' && byte <= 'Z') {
      Symbol s = byte_symbol_[byte];
      if (s < 0) {
        fail(StreamErrorCode::kUnknownLabel, i, -1, -1);
        return run;
      }
      if (open_letters.empty()) {
        fail(StreamErrorCode::kUnbalancedClose, i, -1, s);
        return run;
      }
      if (open_letters.back() != s) {
        fail(StreamErrorCode::kLabelMismatch, i, open_letters.back(), s);
        return run;
      }
      if (run.events >= limits.max_events) {
        fail(StreamErrorCode::kEventLimitExceeded, i, -1, -1);
        return run;
      }
      open_letters.pop_back();
      --depth;
      run.final_state = Step(run.final_state, byte);
      ++run.events;
      continue;
    }
    fail(StreamErrorCode::kBadByte, i, -1, -1);
    return run;
  }
  if (over_byte_limit) {
    fail(StreamErrorCode::kByteLimitExceeded, limits.max_document_bytes, -1,
         -1);
    return run;
  }
  if (!saw_root || depth != 0) {
    fail(StreamErrorCode::kTruncatedDocument,
         static_cast<int64_t>(bytes.size()), -1, -1);
  }
  return run;
}

ByteStackRunner::ByteStackRunner(const Dfa& dfa)
    : num_states_(dfa.num_states), initial_(dfa.initial) {
  SST_CHECK_MSG(dfa.num_symbols <= 26, "compact markup allows 26 symbols");
  open_table_.assign(static_cast<size_t>(num_states_) * 26, 0);
  accepting_.assign(num_states_, 0);
  for (int q = 0; q < num_states_; ++q) {
    accepting_[q] = dfa.accepting[q] ? 1 : 0;
    for (Symbol a = 0; a < dfa.num_symbols; ++a) {
      open_table_[static_cast<size_t>(q) * 26 + a] = dfa.Next(q, a);
    }
  }
}

int64_t ByteStackRunner::CountSelections(std::string_view bytes) {
  stack_.clear();
  int state = initial_;
  int64_t selected = 0;
  for (unsigned char byte : bytes) {
    if (byte >= 'a' && byte <= 'z') {
      stack_.push_back(state);
      if (stack_.size() > max_stack_depth_) max_stack_depth_ = stack_.size();
      state = open_table_[static_cast<size_t>(state) * 26 + (byte - 'a')];
      selected += accepting_[state];
    } else if (byte >= 'A' && byte <= 'Z') {
      if (stack_.empty()) return -1;  // unbalanced: close without open
      state = stack_.back();
      stack_.pop_back();
    }
  }
  return selected;
}

}  // namespace sst
