#include "dra/byte_runner.h"

#include <array>

#include "base/check.h"

namespace sst {

ByteTagDfaRunner::ByteTagDfaRunner(const TagDfa& dfa)
    : num_states_(dfa.num_states), initial_(dfa.initial) {
  SST_CHECK_MSG(dfa.num_symbols <= 26, "compact markup allows 26 symbols");
  std::array<Symbol, 256> byte_symbol;
  byte_symbol.fill(-1);
  for (Symbol a = 0; a < dfa.num_symbols; ++a) byte_symbol['a' + a] = a;
  BuildTable(dfa, byte_symbol.data());
}

ByteTagDfaRunner::ByteTagDfaRunner(const TagDfa& dfa, const Alphabet& alphabet)
    : num_states_(dfa.num_states), initial_(dfa.initial) {
  std::array<Symbol, 256> byte_symbol = alphabet.ByteSymbolTable();
  for (Symbol a = 0; a < dfa.num_symbols; ++a) {
    const std::string& label = alphabet.LabelOf(a);
    SST_CHECK_MSG(
        label.size() == 1 && label[0] >= 'a' && label[0] <= 'z',
        "compact markup requires single lowercase-letter labels");
  }
  // Keep only lowercase-letter entries: other single-byte labels (digits,
  // punctuation) have no uppercase closing form in compact markup.
  for (int byte = 0; byte < 256; ++byte) {
    if (byte < 'a' || byte > 'z') byte_symbol[byte] = -1;
  }
  BuildTable(dfa, byte_symbol.data());
}

template <typename T>
void ByteTagDfaRunner::FillTable(std::vector<T>* table, const TagDfa& dfa,
                                 const Symbol* byte_symbol) {
  table->assign(static_cast<size_t>(num_states_) * 256, 0);
  for (int q = 0; q < num_states_; ++q) {
    accepting_[q] = dfa.accepting[q] ? 1 : 0;
    T* row = table->data() + static_cast<size_t>(q) * 256;
    for (int byte = 0; byte < 256; ++byte) {
      // Unknown bytes self-loop (they cannot occur in valid input).
      row[byte] = static_cast<T>(q);
    }
    for (int byte = 'a'; byte <= 'z'; ++byte) {
      Symbol a = byte_symbol[byte];
      if (a < 0 || a >= dfa.num_symbols) continue;
      row[byte] = static_cast<T>(dfa.NextOpen(q, a));
      row[byte - 'a' + 'A'] = static_cast<T>(dfa.NextClose(q, a));
    }
  }
}

void ByteTagDfaRunner::BuildTable(const TagDfa& dfa,
                                  const Symbol* byte_symbol) {
  accepting_.assign(num_states_, 0);
  if (num_states_ < 65536) {
    FillTable(&table16_, dfa, byte_symbol);
  } else {
    FillTable(&table32_, dfa, byte_symbol);
  }
}

template <typename T>
int64_t ByteTagDfaRunner::CountSelectionsImpl(const T* table,
                                              std::string_view bytes) const {
  int state = initial_;
  int64_t selected = 0;
  for (unsigned char byte : bytes) {
    state = table[static_cast<size_t>(state) * 256 + byte];
    // Pre-selection samples only after opening tags: exactly the lowercase
    // letters. Anything else ('{', '|', bytes >= 0x7B, ...) self-loops and
    // must not count even when the looped state is accepting.
    selected += static_cast<int64_t>((byte >= 'a') & (byte <= 'z') &
                                     accepting_[state]);
  }
  return selected;
}

int64_t ByteTagDfaRunner::CountSelections(std::string_view bytes) const {
  return uses_compact_table() ? CountSelectionsImpl(table16_.data(), bytes)
                              : CountSelectionsImpl(table32_.data(), bytes);
}

template <typename T>
int ByteTagDfaRunner::FinalStateImpl(const T* table,
                                     std::string_view bytes) const {
  int state = initial_;
  for (unsigned char byte : bytes) {
    state = table[static_cast<size_t>(state) * 256 + byte];
  }
  return state;
}

int ByteTagDfaRunner::FinalState(std::string_view bytes) const {
  return uses_compact_table() ? FinalStateImpl(table16_.data(), bytes)
                              : FinalStateImpl(table32_.data(), bytes);
}

bool ByteTagDfaRunner::Accepts(std::string_view bytes) const {
  return accepting_[FinalState(bytes)] != 0;
}

ByteStackRunner::ByteStackRunner(const Dfa& dfa)
    : num_states_(dfa.num_states), initial_(dfa.initial) {
  SST_CHECK_MSG(dfa.num_symbols <= 26, "compact markup allows 26 symbols");
  open_table_.assign(static_cast<size_t>(num_states_) * 26, 0);
  accepting_.assign(num_states_, 0);
  for (int q = 0; q < num_states_; ++q) {
    accepting_[q] = dfa.accepting[q] ? 1 : 0;
    for (Symbol a = 0; a < dfa.num_symbols; ++a) {
      open_table_[static_cast<size_t>(q) * 26 + a] = dfa.Next(q, a);
    }
  }
}

int64_t ByteStackRunner::CountSelections(std::string_view bytes) {
  stack_.clear();
  int state = initial_;
  int64_t selected = 0;
  for (unsigned char byte : bytes) {
    if (byte >= 'a' && byte <= 'z') {
      stack_.push_back(state);
      if (stack_.size() > max_stack_depth_) max_stack_depth_ = stack_.size();
      state = open_table_[static_cast<size_t>(state) * 26 + (byte - 'a')];
      selected += accepting_[state];
    } else if (byte >= 'A' && byte <= 'Z') {
      if (stack_.empty()) return -1;  // unbalanced: close without open
      state = stack_.back();
      stack_.pop_back();
    }
  }
  return selected;
}

}  // namespace sst
