#ifndef SST_DRA_STREAM_ERROR_H_
#define SST_DRA_STREAM_ERROR_H_

#include <cstdint>
#include <limits>
#include <string>

#include "automata/alphabet.h"

namespace sst {

// Structured first-error taxonomy of the streaming front-end. Every
// scanner and runner that consumes tag-stream bytes reports malformed
// input through this one type, so sequential (fused and generic) and
// parallel execution can be compared for byte-identical failure behavior.
enum class StreamErrorCode : uint8_t {
  kNone = 0,
  kUnknownLabel,        // element name outside the query alphabet
  kLabelMismatch,       // closing tag does not match the open element
  kUnbalancedClose,     // closing tag with no open element
  kTagTooLong,          // tag name exceeds the fixed lexer buffer
  kDepthLimitExceeded,  // StreamLimits::max_depth
  kByteLimitExceeded,   // StreamLimits::max_document_bytes
  kEventLimitExceeded,  // StreamLimits::max_events
  kTruncatedDocument,   // EOF inside a tag / with open elements / empty
  kBadByte,             // byte that no token can start with here
  kTrailingContent,     // content after the root element closed
};

// Name of the code, e.g. "kLabelMismatch" (stable; used in messages/tests).
const char* StreamErrorCodeName(StreamErrorCode code);

// First-error record: what went wrong, where, and in which context. The
// byte offset is the error's defining coordinate — all differential
// properties (chunk re-splits, fused vs generic vs parallel) compare
// (code, offset) for identity.
struct StreamError {
  StreamErrorCode code = StreamErrorCode::kNone;
  int64_t offset = -1;   // byte offset of the first offending byte
  int64_t depth = 0;     // element nesting depth when the error fired
  Symbol expected = -1;  // kLabelMismatch: label of the open element
  Symbol got = -1;       // kLabelMismatch/kUnknownLabel: label seen (if any)

  bool ok() const { return code == StreamErrorCode::kNone; }

  // Human-readable rendering, e.g.
  //   "kLabelMismatch at byte 17 (depth 3): expected 'b', got 'c'".
  // `alphabet` may be null (symbols render as #N).
  std::string Render(const Alphabet* alphabet) const;

  friend bool operator==(const StreamError&, const StreamError&) = default;
};

// How the streaming front-end reacts to malformed input.
enum class RecoveryPolicy : uint8_t {
  // Record the first error and reject the rest of the stream (default;
  // the paper's well-formed setting).
  kFailFast,
  // Resynchronize: discard bytes from the error to the point where the
  // innermost open element closes, synthesize that element's close event,
  // and keep selecting. Matches fail-fast parsing of the sanitized
  // document (malformed region excised); see DESIGN.md "Robustness &
  // recovery" for why this truncation form is the strongest recovery the
  // streaming regime admits without O(depth) state checkpoints.
  kSkipMalformedSubtree,
  // Tolerate truncated documents: at Finish(), synthesize the missing
  // closing events for every still-open element (discarding a partial
  // tag in the lexer buffer) and report success. Mid-stream errors still
  // fail fast.
  kAutoClose,
};

const char* RecoveryPolicyName(RecoveryPolicy policy);

// Resource guards, enforced deterministically (error offsets independent
// of how the input is chunked) and off the bulk-skip hot loops: the depth
// and event guards ride the per-event paths, the byte guard is a per-Feed
// prefix split, and the recovery budget is only consulted when an error
// actually fires. Default-constructed limits are effectively unlimited.
struct StreamLimits {
  static constexpr int64_t kUnlimited =
      std::numeric_limits<int64_t>::max();

  int64_t max_depth = kUnlimited;           // peak element nesting
  int64_t max_document_bytes = kUnlimited;  // total bytes fed
  int64_t max_events = kUnlimited;          // tag events (opens + closes)
  int64_t max_recovered_errors = kUnlimited;  // recoveries before fatal
  // Emission-buffer bound of the match-event pipeline: the most spans a
  // stream may hold pending (verdict emitted, end offset unknown) at once.
  // Unlike the guards above this limit is not an error condition — on
  // overflow the newest span is reported immediately as truncated
  // (end_offset -1) instead of buffered; see base/match_sink.h.
  int64_t max_pending_matches = kUnlimited;

  bool unlimited() const {
    return max_depth == kUnlimited && max_document_bytes == kUnlimited &&
           max_events == kUnlimited && max_recovered_errors == kUnlimited &&
           max_pending_matches == kUnlimited;
  }

  // Returns nullptr when the limits admit at least one document, or a
  // static description of the first defect otherwise. Zero or negative
  // structural limits reject every stream at its first byte (the guard
  // looks enabled but nothing can ever pass it), max_events below 2
  // cannot admit even the one-node document (root open + close), and a
  // depth limit above the event limit can never fire before the event
  // guard does — all three are configuration bugs callers should see at
  // setup time, not as per-document kDepthLimitExceeded noise.
  // StreamingSelector::set_limits and the serving layer both reject
  // limits with Validate() != nullptr.
  const char* Validate() const;

  // Element-wise minimum: the stricter of the two bounds for every field.
  // The serving layer merges server defaults with per-request limits this
  // way, so a client can only ever tighten what the operator configured.
  static StreamLimits Merged(const StreamLimits& a, const StreamLimits& b);

  friend bool operator==(const StreamLimits&, const StreamLimits&) = default;
};

// Result of a validated (well-formedness-checked) whole-document run —
// the common report of ByteTagDfaRunner::RunValidated and
// ParallelTagDfaRunner::RunValidated, designed to be field-for-field
// comparable with a fail-fast StreamingSelector run over the same bytes:
// same first StreamError (code + offset + depth + labels) and the same
// partial counters up to that error.
struct ValidatedRun {
  StreamError error;      // code kNone when the document is well-formed
  int64_t nodes = 0;      // elements opened before the error
  int64_t events = 0;     // tag events before the error
  int64_t max_depth = 0;  // peak nesting before the error
  int64_t matches = 0;    // pre-selected nodes before the error
  int final_state = 0;    // DFA state at the error / end of input

  bool ok() const { return error.ok(); }

  friend bool operator==(const ValidatedRun&, const ValidatedRun&) = default;
};

}  // namespace sst

#endif  // SST_DRA_STREAM_ERROR_H_
