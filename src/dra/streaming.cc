#include "dra/streaming.h"

#include <cctype>

namespace sst {

StreamingSelector::StreamingSelector(StreamMachine* machine, Format format,
                                     Alphabet* alphabet)
    : machine_(machine), format_(format), alphabet_(alphabet) {
  Reset();
}

void StreamingSelector::Reset() {
  machine_->Reset();
  open_labels_.clear();
  pending_.clear();
  in_tag_ = false;
  nodes_ = 0;
  matches_ = 0;
  depth_ = 0;
  saw_root_ = false;
  failed_ = false;
  error_.clear();
}

bool StreamingSelector::Fail(const char* message) {
  failed_ = true;
  if (error_.empty()) error_ = message;
  return false;
}

bool StreamingSelector::EmitOpen(Symbol symbol) {
  if (depth_ == 0 && saw_root_) return Fail("content after the root closed");
  saw_root_ = true;
  ++depth_;
  open_labels_.push_back(symbol);
  machine_->OnOpen(symbol);
  if (machine_->InAcceptingState()) {
    ++matches_;
    if (match_callback_) match_callback_(nodes_, symbol);
  }
  ++nodes_;
  return true;
}

bool StreamingSelector::EmitClose(Symbol symbol) {
  if (open_labels_.empty()) return Fail("closing tag without open element");
  if (symbol >= 0 && open_labels_.back() != symbol) {
    return Fail("mismatched closing tag");
  }
  open_labels_.pop_back();
  --depth_;
  machine_->OnClose(symbol);
  return true;
}

bool StreamingSelector::Feed(std::string_view chunk) {
  if (failed_) return false;
  switch (format_) {
    case Format::kCompactMarkup:
      for (char c : chunk) {
        if (std::isspace(static_cast<unsigned char>(c))) continue;
        if (c >= 'a' && c <= 'z') {
          Symbol s = alphabet_->Find(std::string_view(&c, 1));
          if (s < 0) return Fail("unknown opening tag");
          if (!EmitOpen(s)) return false;
        } else if (c >= 'A' && c <= 'Z') {
          char lower = static_cast<char>(c - 'A' + 'a');
          Symbol s = alphabet_->Find(std::string_view(&lower, 1));
          if (s < 0) return Fail("unknown closing tag");
          if (!EmitClose(s)) return false;
        } else {
          return Fail("unexpected byte in compact markup");
        }
      }
      return true;

    case Format::kCompactTerm:
      for (char c : chunk) {
        if (std::isspace(static_cast<unsigned char>(c))) continue;
        if (!pending_.empty()) {
          if (c != '{') return Fail("expected '{' after label");
          Symbol s = alphabet_->Find(pending_);
          pending_.clear();
          if (s < 0) return Fail("unknown label in term encoding");
          if (!EmitOpen(s)) return false;
          continue;
        }
        if (c == '}') {
          if (!EmitClose(-1)) return false;
        } else if (std::isalnum(static_cast<unsigned char>(c)) ||
                   c == '_' || c == '-') {
          if (pending_.size() >= 256) return Fail("label too long");
          pending_.push_back(c);
        } else {
          return Fail("unexpected byte in term encoding");
        }
      }
      return true;

    case Format::kXmlLite:
      for (char c : chunk) {
        if (!in_tag_) {
          if (std::isspace(static_cast<unsigned char>(c))) continue;
          if (c != '<') return Fail("expected '<'");
          in_tag_ = true;
          pending_.clear();
          continue;
        }
        if (c != '>') {
          if (pending_.size() >= 256) return Fail("tag too long");
          pending_.push_back(c);
          continue;
        }
        in_tag_ = false;
        if (pending_.empty()) return Fail("empty tag");
        bool closing = pending_[0] == '/';
        std::string_view name(pending_);
        if (closing) name.remove_prefix(1);
        if (name.empty()) return Fail("empty tag name");
        Symbol s = alphabet_->Find(name);
        if (s < 0) return Fail("element name outside the query alphabet");
        bool ok = closing ? EmitClose(s) : EmitOpen(s);
        pending_.clear();
        if (!ok) return false;
      }
      return true;
  }
  return Fail("unknown format");
}

bool StreamingSelector::Finish() {
  if (failed_) return false;
  if (in_tag_ || !pending_.empty()) return Fail("truncated tag at end");
  if (!saw_root_) return Fail("empty document");
  if (depth_ != 0) return Fail("unclosed elements at end");
  return true;
}

}  // namespace sst
