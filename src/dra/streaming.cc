#include "dra/streaming.h"

#include <cstring>
#include <string>

#include "base/byte_scan.h"

namespace sst {

namespace {

// ASCII whitespace, independent of the process locale (std::isspace is
// locale-dependent and one hash-of-locale call per byte besides).
inline bool IsAsciiWs(unsigned char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' ||
         c == '\r';
}

inline bool IsAsciiAlnum(unsigned char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
         (c >= 'A' && c <= 'Z');
}

}  // namespace

StreamingSelector::StreamingSelector(StreamMachine* machine, Format format,
                                     Alphabet* alphabet)
    : machine_(machine), format_(format), alphabet_(alphabet) {
  BuildTables();
  open_labels_.reserve(kDepthReserve);
  if (format_ == Format::kCompactMarkup) {
    if (const TagDfa* dfa = machine_->ExportTagDfa()) {
      // The fused table is keyed by the raw byte, so every symbol the
      // stream can mention must be a single lowercase letter and covered
      // by the automaton.
      bool compact = alphabet_->size() <= dfa->num_symbols;
      for (Symbol s = 0; compact && s < alphabet_->size(); ++s) {
        const std::string& label = alphabet_->LabelOf(s);
        compact = label.size() == 1 && label[0] >= 'a' && label[0] <= 'z';
      }
      if (compact) {
        fused_ = std::make_unique<ByteTagDfaRunner>(*dfa, *alphabet_);
      }
    }
  }
  Reset();
}

void StreamingSelector::BuildTables() {
  std::array<Symbol, 256> interned = alphabet_->ByteSymbolTable();
  byte_class_.fill(kBad);
  byte_symbol_.fill(-1);
  for (int c = 0; c < 256; ++c) {
    unsigned char b = static_cast<unsigned char>(c);
    if (IsAsciiWs(b)) byte_class_[c] = kWs;
  }
  switch (format_) {
    case Format::kCompactMarkup:
      for (int c = 'a'; c <= 'z'; ++c) {
        byte_class_[c] = kOpen;
        byte_symbol_[c] = interned[c];
        byte_class_[c - 'a' + 'A'] = kClose;
        byte_symbol_[c - 'a' + 'A'] = interned[c];
      }
      break;
    case Format::kCompactTerm:
      for (int c = 0; c < 256; ++c) {
        unsigned char b = static_cast<unsigned char>(c);
        if (IsAsciiAlnum(b) || b == '_' || b == '-') {
          byte_class_[c] = kLabel;
          byte_symbol_[c] = interned[c];
        }
      }
      byte_class_[static_cast<unsigned char>('}')] = kCloseBrace;
      break;
    case Format::kXmlLite:
      // XML-lite lexing branches on '<' and '>' directly; names are looked
      // up per tag, with the single-byte table as a shortcut.
      byte_symbol_ = interned;
      break;
  }
}

void StreamingSelector::Reset() {
  machine_->Reset();
  open_labels_.clear();
  tag_len_ = 0;
  in_tag_ = false;
  tag_first_ = false;
  tag_closing_ = false;
  have_pending_ = false;
  pending_byte_ = 0;
  chunk_base_ = 0;
  bytes_fed_ = 0;
  chunks_fed_ = 0;
  events_ = 0;
  nodes_ = 0;
  matches_ = 0;
  depth_ = 0;
  max_depth_ = 0;
  error_offset_ = -1;
  saw_root_ = false;
  failed_ = false;
  error_.clear();
}

bool StreamingSelector::FailAt(int64_t offset, const char* message) {
  failed_ = true;
  if (error_offset_ < 0) {
    error_offset_ = offset;
    error_.assign(message);
    error_ += " at byte ";
    error_ += std::to_string(offset);
  }
  return false;
}

bool StreamingSelector::EmitOpen(Symbol symbol, int64_t offset) {
  if (depth_ == 0 && saw_root_) {
    return FailAt(offset, "content after the root closed");
  }
  saw_root_ = true;
  ++depth_;
  if (depth_ > max_depth_) max_depth_ = depth_;
  open_labels_.push_back(symbol);
  machine_->OnOpen(symbol);
  ++events_;
  if (machine_->InAcceptingState()) {
    ++matches_;
    if (match_callback_) match_callback_(nodes_, symbol);
  }
  ++nodes_;
  return true;
}

bool StreamingSelector::EmitClose(Symbol symbol, int64_t offset) {
  if (open_labels_.empty()) {
    return FailAt(offset, "closing tag without open element");
  }
  if (symbol >= 0 && open_labels_.back() != symbol) {
    return FailAt(offset, "mismatched closing tag");
  }
  open_labels_.pop_back();
  --depth_;
  machine_->OnClose(symbol);
  ++events_;
  return true;
}

template <typename Stepper>
bool StreamingSelector::FeedMarkup(std::string_view chunk, Stepper& stepper) {
  const uint8_t* cls = byte_class_.data();
  const Symbol* sym = byte_symbol_.data();
  for (size_t i = 0; i < chunk.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(chunk[i]);
    switch (cls[c]) {
      case kWs:
        // Bulk-skip the whitespace run (SIMD/SWAR; see base/byte_scan.h);
        // the loop increment then lands on the next structural byte.
        i += FindStructural(chunk.data() + i + 1, chunk.size() - i - 1);
        break;
      case kOpen: {
        Symbol s = sym[c];
        if (s < 0) return FailAt(chunk_base_ + i, "unknown opening tag");
        if (depth_ == 0 && saw_root_) {
          return FailAt(chunk_base_ + i, "content after the root closed");
        }
        saw_root_ = true;
        ++depth_;
        if (depth_ > max_depth_) max_depth_ = depth_;
        open_labels_.push_back(s);
        stepper.Open(s, c);
        ++events_;
        if (stepper.Accepting()) {
          ++matches_;
          if (match_callback_) match_callback_(nodes_, s);
        }
        ++nodes_;
        break;
      }
      case kClose: {
        Symbol s = sym[c];
        if (s < 0) return FailAt(chunk_base_ + i, "unknown closing tag");
        if (open_labels_.empty()) {
          return FailAt(chunk_base_ + i, "closing tag without open element");
        }
        if (open_labels_.back() != s) {
          return FailAt(chunk_base_ + i, "mismatched closing tag");
        }
        open_labels_.pop_back();
        --depth_;
        stepper.Close(s, c);
        ++events_;
        break;
      }
      default:
        return FailAt(chunk_base_ + i, "unexpected byte in compact markup");
    }
  }
  return true;
}

bool StreamingSelector::FeedTerm(std::string_view chunk) {
  const uint8_t* cls = byte_class_.data();
  const Symbol* sym = byte_symbol_.data();
  for (size_t i = 0; i < chunk.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(chunk[i]);
    if (cls[c] == kWs) {
      i += FindStructural(chunk.data() + i + 1, chunk.size() - i - 1);
      continue;
    }
    if (have_pending_) {
      if (c != '{') {
        return FailAt(chunk_base_ + i, "expected '{' after label");
      }
      have_pending_ = false;
      Symbol s = sym[pending_byte_];
      if (s < 0) {
        return FailAt(chunk_base_ + i, "unknown label in term encoding");
      }
      if (!EmitOpen(s, chunk_base_ + i)) return false;
      continue;
    }
    switch (cls[c]) {
      case kCloseBrace:
        if (!EmitClose(-1, chunk_base_ + i)) return false;
        break;
      case kLabel:
        pending_byte_ = c;
        have_pending_ = true;
        break;
      default:
        return FailAt(chunk_base_ + i, "unexpected byte in term encoding");
    }
  }
  return true;
}

bool StreamingSelector::FeedXml(std::string_view chunk) {
  const uint8_t* cls = byte_class_.data();
  const size_t n = chunk.size();
  size_t i = 0;
  while (i < n) {
    unsigned char c = static_cast<unsigned char>(chunk[i]);
    if (!in_tag_) {
      if (cls[c] == kWs) {
        // Between tags only whitespace is legal before the next '<';
        // bulk-skip the run (SIMD/SWAR, base/byte_scan.h).
        i += 1 + FindStructural(chunk.data() + i + 1, n - i - 1);
        continue;
      }
      if (c != '<') return FailAt(chunk_base_ + i, "expected '<'");
      in_tag_ = true;
      tag_first_ = true;
      tag_closing_ = false;
      tag_len_ = 0;
      ++i;
      continue;
    }
    if (tag_first_ && c == '/') {
      tag_closing_ = true;
      tag_first_ = false;
      ++i;
      continue;
    }
    // Inside a tag: find the closing '>' in one vectorized sweep (libc
    // memchr) and copy the whole name run instead of byte-at-a-time.
    const void* gt = std::memchr(chunk.data() + i, '>', n - i);
    size_t name_end =
        gt != nullptr
            ? static_cast<size_t>(static_cast<const char*>(gt) - chunk.data())
            : n;
    if (size_t name_len = name_end - i; name_len > 0) {
      tag_first_ = false;
      if (tag_len_ + name_len > kMaxTagBytes) {
        // Error offset = the first byte that no longer fits, matching the
        // byte-at-a-time scanner.
        return FailAt(chunk_base_ + i + (kMaxTagBytes - tag_len_),
                      "tag too long");
      }
      std::memcpy(tag_buf_ + tag_len_, chunk.data() + i, name_len);
      tag_len_ += static_cast<uint32_t>(name_len);
      i = name_end;
    }
    if (gt == nullptr) break;  // partial tag; the next chunk continues it
    in_tag_ = false;
    ++i;  // past the '>'
    if (tag_len_ == 0) {
      return FailAt(chunk_base_ + name_end,
                    tag_closing_ ? "empty tag name" : "empty tag");
    }
    Symbol s = tag_len_ == 1
                   ? byte_symbol_[static_cast<unsigned char>(tag_buf_[0])]
                   : alphabet_->Find(std::string_view(tag_buf_, tag_len_));
    if (s < 0) {
      return FailAt(chunk_base_ + name_end,
                    "element name outside the query alphabet");
    }
    bool ok = tag_closing_ ? EmitClose(s, chunk_base_ + name_end)
                           : EmitOpen(s, chunk_base_ + name_end);
    tag_len_ = 0;
    if (!ok) return false;
  }
  return true;
}

bool StreamingSelector::Feed(std::string_view chunk) {
  if (failed_) return false;
  chunk_base_ = bytes_fed_;
  bytes_fed_ += static_cast<int64_t>(chunk.size());
  ++chunks_fed_;
  switch (format_) {
    case Format::kCompactMarkup: {
      if (fused_) {
        FusedStepper stepper{fused_.get(), machine_->ExportedState()};
        bool ok = FeedMarkup(chunk, stepper);
        machine_->SyncExportedState(stepper.state);
        return ok;
      }
      VirtualStepper stepper{machine_};
      return FeedMarkup(chunk, stepper);
    }
    case Format::kCompactTerm:
      return FeedTerm(chunk);
    case Format::kXmlLite:
      return FeedXml(chunk);
  }
  return FailAt(chunk_base_, "unknown format");
}

bool StreamingSelector::Finish() {
  if (failed_) return false;
  if (in_tag_ || have_pending_) {
    return FailAt(bytes_fed_, "truncated tag at end");
  }
  if (!saw_root_) return FailAt(bytes_fed_, "empty document");
  if (depth_ != 0) return FailAt(bytes_fed_, "unclosed elements at end");
  return true;
}

}  // namespace sst
