#include "dra/streaming.h"

#include <cstring>
#include <string>

#include "base/byte_scan.h"
#include "base/check.h"

namespace sst {

namespace {

// ASCII whitespace, independent of the process locale (std::isspace is
// locale-dependent and one hash-of-locale call per byte besides).
inline bool IsAsciiWs(unsigned char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' ||
         c == '\r';
}

inline bool IsAsciiAlnum(unsigned char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
         (c >= 'A' && c <= 'Z');
}

#if defined(__GNUC__) || defined(__clang__)
#define SST_NOINLINE __attribute__((noinline))
#else
#define SST_NOINLINE
#endif

// Out-of-line recorder entry points for the fused scan loop. Keeping the
// emission bodies (event construction, virtual sink dispatch, pending-
// stack maintenance) out of the loop keeps its register allocation —
// stepper state plus the structural iterator — intact; inlining them
// costs ~10% whole-scan throughput on the padded corpus even though the
// guard branches are never taken without a sink.
SST_NOINLINE void RecordSingleMemberMatchSlow(MatchRecorder& recorder,
                                              int64_t depth, int64_t start) {
  recorder.OnMatch(0, depth, start, start + 1);
}

SST_NOINLINE void RecordSpanClose(MatchRecorder& recorder, int64_t depth,
                                  int64_t end) {
  recorder.OnClose(depth, end);
}

}  // namespace

ScannerTables ScannerTables::Build(StreamFormat format,
                                   const Alphabet& alphabet) {
  ScannerTables tables;
  std::array<Symbol, 256> interned = alphabet.ByteSymbolTable();
  tables.byte_class.fill(kBad);
  tables.byte_symbol.fill(-1);
  for (int c = 0; c < 256; ++c) {
    unsigned char b = static_cast<unsigned char>(c);
    if (IsAsciiWs(b)) tables.byte_class[c] = kWs;
  }
  switch (format) {
    case StreamFormat::kCompactMarkup:
      for (int c = 'a'; c <= 'z'; ++c) {
        tables.byte_class[c] = kOpen;
        tables.byte_symbol[c] = interned[c];
        tables.byte_class[c - 'a' + 'A'] = kClose;
        tables.byte_symbol[c - 'a' + 'A'] = interned[c];
      }
      break;
    case StreamFormat::kCompactTerm:
      for (int c = 0; c < 256; ++c) {
        unsigned char b = static_cast<unsigned char>(c);
        if (IsAsciiAlnum(b) || b == '_' || b == '-') {
          tables.byte_class[c] = kLabel;
          tables.byte_symbol[c] = interned[c];
        }
      }
      tables.byte_class[static_cast<unsigned char>('}')] = kCloseBrace;
      break;
    case StreamFormat::kXmlLite:
      // XML-lite lexing branches on '<' and '>' directly; names are looked
      // up per tag, with the single-byte table as a shortcut.
      tables.byte_symbol = interned;
      break;
  }
  return tables;
}

StreamingSelector::StreamingSelector(StreamMachine* machine, Format format,
                                     const Alphabet* alphabet)
    : machine_(machine), format_(format), alphabet_(alphabet) {
  owned_tables_ =
      std::make_unique<ScannerTables>(ScannerTables::Build(format, *alphabet));
  tables_ = owned_tables_.get();
  open_labels_.reserve(kDepthReserve);
  if (format_ == Format::kCompactMarkup) {
    if (const TagDfa* dfa = machine_->ExportTagDfa()) {
      // The fused table is keyed by the raw byte, so every symbol the
      // stream can mention must be a single lowercase letter and covered
      // by the automaton.
      bool compact = alphabet_->size() <= dfa->num_symbols;
      for (Symbol s = 0; compact && s < alphabet_->size(); ++s) {
        const std::string& label = alphabet_->LabelOf(s);
        compact = label.size() == 1 && label[0] >= 'a' && label[0] <= 'z';
      }
      if (compact) {
        owned_fused_ = std::make_unique<ByteTagDfaRunner>(*dfa, *alphabet_);
        fused_ = owned_fused_.get();
      }
    } else if (const Dra* dra = machine_->ExportDra()) {
      // Stackless fused tier: same label eligibility, plus restrictedness
      // (the fused table's open/close layout is only sound then) and a
      // table budget — the close table has 3^r columns per (state, symbol)
      // and an unrestricted register count could make it enormous.
      bool compact = alphabet_->size() == dra->num_symbols &&
                     IsRestricted(*dra) &&
                     static_cast<int64_t>(dra->num_states) *
                             dra->num_symbols * dra->NumCmpCodes() <=
                         kFusedDraEntryBudget;
      for (Symbol s = 0; compact && s < alphabet_->size(); ++s) {
        const std::string& label = alphabet_->LabelOf(s);
        compact = label.size() == 1 && label[0] >= 'a' && label[0] <= 'z';
      }
      if (compact) {
        owned_fused_dra_ = std::make_unique<ByteDraRunner>(dra, *alphabet_);
        fused_dra_ = owned_fused_dra_.get();
      }
    }
  }
  CheckTableAgreement();
  Reset();
}

StreamingSelector::StreamingSelector(StreamMachine* machine, Format format,
                                     const Alphabet* alphabet,
                                     const ScannerTables* tables,
                                     const ByteTagDfaRunner* fused,
                                     const ByteDraRunner* fused_dra)
    : machine_(machine),
      format_(format),
      alphabet_(alphabet),
      tables_(tables),
      fused_(fused),
      fused_dra_(fused_dra) {
  SST_CHECK(tables_ != nullptr);
  SST_CHECK(fused_ == nullptr || fused_dra_ == nullptr);
  if (fused_ != nullptr) {
    // The fused tier syncs the machine's exported state around each chunk,
    // so a shared fused table is only sound for a machine that actually
    // exports a TagDfa (of matching size) on the compact-markup format.
    SST_CHECK(format_ == Format::kCompactMarkup);
    const TagDfa* dfa = machine_->ExportTagDfa();
    SST_CHECK(dfa != nullptr && dfa->num_states == fused_->num_states());
  }
  if (fused_dra_ != nullptr) {
    // Likewise for the stackless tier: the full configuration is synced
    // around each chunk, so the machine must export a DRA the shared fused
    // table was built from.
    SST_CHECK(format_ == Format::kCompactMarkup);
    const Dra* dra = machine_->ExportDra();
    SST_CHECK(dra != nullptr && dra->num_states == fused_dra_->num_states());
  }
  open_labels_.reserve(kDepthReserve);
  CheckTableAgreement();
  Reset();
}

void StreamingSelector::CheckTableAgreement() const {
#ifndef NDEBUG
  // The structural index (ClassifyBlock / StructuralIterator) skips
  // exactly the bytes the scanner classifies kWs; the scan loops rely on
  // the two definitions agreeing byte for byte (a structural byte must
  // never be classified kWs, and vice versa).
  for (int c = 0; c < 256; ++c) {
    SST_CHECK((tables_->byte_class[c] == ScannerTables::kWs) ==
              ByteIsAsciiWs(static_cast<unsigned char>(c)));
  }
  // The scanner tables and the fused byte table are built independently
  // from the same Alphabet (satellite of the compile-once refactor:
  // previously each layer derived its own copy with no cross-check). They
  // must agree on every letter byte: same symbol, open/close polarity
  // matching the case convention.
  if (fused_ == nullptr && fused_dra_ == nullptr) return;
  for (int c = 'a'; c <= 'z'; ++c) {
    SST_CHECK(tables_->byte_class[c] == ScannerTables::kOpen);
    SST_CHECK(tables_->byte_class[c - 'a' + 'A'] == ScannerTables::kClose);
    if (fused_ != nullptr) {
      SST_CHECK(fused_->byte_symbol(static_cast<unsigned char>(c)) ==
                tables_->byte_symbol[c]);
      SST_CHECK(
          fused_->byte_symbol(static_cast<unsigned char>(c - 'a' + 'A')) ==
          tables_->byte_symbol[c - 'a' + 'A']);
    }
    if (fused_dra_ != nullptr) {
      SST_CHECK(fused_dra_->byte_symbol(static_cast<unsigned char>(c)) ==
                tables_->byte_symbol[c]);
      SST_CHECK(
          fused_dra_->byte_symbol(static_cast<unsigned char>(c - 'a' + 'A')) ==
          tables_->byte_symbol[c - 'a' + 'A']);
    }
  }
#endif
}

void StreamingSelector::set_limits(const StreamLimits& limits) {
  const char* defect = limits.Validate();
  SST_CHECK_MSG(defect == nullptr, defect);
  limits_ = limits;
  recorder_.set_max_pending(limits.max_pending_matches);
}

void StreamingSelector::RecordMatch(int64_t start, int64_t certainty) {
  member_scratch_.clear();
  machine_->AppendSelectedMembers(&member_scratch_);
  for (int32_t member : member_scratch_) {
    recorder_.OnMatch(member, depth_, start, certainty);
  }
}

void StreamingSelector::Reset() {
  machine_->Reset();
  open_labels_.clear();
  tag_len_ = 0;
  in_tag_ = false;
  tag_first_ = false;
  tag_closing_ = false;
  have_pending_ = false;
  pending_byte_ = 0;
  pending_offset_ = -1;
  tag_start_ = -1;
  in_skip_ = false;
  skip_depth_ = 0;
  demoted_ = false;
  chunk_base_ = 0;
  bytes_fed_ = 0;
  chunks_fed_ = 0;
  events_ = 0;
  nodes_ = 0;
  matches_ = 0;
  depth_ = 0;
  max_depth_ = 0;
  errors_recovered_ = 0;
  subtrees_skipped_ = 0;
  error_offset_ = -1;
  saw_root_ = false;
  failed_ = false;
  stream_error_ = StreamError{};
  error_.clear();
  recovered_errors_.clear();
  recorder_.Reset();  // keeps the sink and max_pending wiring
}

bool StreamingSelector::SaveCheckpoint(SelectorCheckpoint* out) {
  SST_CHECK(!failed_);
  // Pending spans belong to nodes whose close has not arrived; resuming
  // from a checkpoint would have to re-buffer them, which the recorder
  // cannot express. Verdict-only sinks (the incremental engine's own)
  // never buffer, so this rejects only span-collecting configurations.
  if (recorder_.pending() > 0) return false;
  if (!machine_->SaveConfig(&out->machine_config)) return false;
  out->open_labels = open_labels_;
  out->tag_buf.assign(tag_buf_, tag_len_);
  out->in_tag = in_tag_;
  out->tag_first = tag_first_;
  out->tag_closing = tag_closing_;
  out->have_pending = have_pending_;
  out->pending_byte = pending_byte_;
  out->pending_offset = pending_offset_;
  out->tag_start = tag_start_;
  out->in_skip = in_skip_;
  out->skip_depth = skip_depth_;
  out->demoted = demoted_;
  out->bytes_fed = bytes_fed_;
  out->chunks_fed = chunks_fed_;
  out->events = events_;
  out->nodes = nodes_;
  out->matches = matches_;
  out->depth = depth_;
  out->errors_recovered = errors_recovered_;
  out->subtrees_skipped = subtrees_skipped_;
  out->error_offset = error_offset_;
  out->saw_root = saw_root_;
  out->machine_underflows = machine_->StackUnderflowCloses();
  out->stream_error = stream_error_;
  out->recovered = recovered_errors_;
  return true;
}

bool StreamingSelector::RestoreCheckpoint(const SelectorCheckpoint& cp) {
  if (!machine_->RestoreConfig(cp.machine_config)) return false;
  open_labels_ = cp.open_labels;
  SST_CHECK(cp.tag_buf.size() <= kMaxTagBytes);
  std::memcpy(tag_buf_, cp.tag_buf.data(), cp.tag_buf.size());
  tag_len_ = static_cast<uint32_t>(cp.tag_buf.size());
  in_tag_ = cp.in_tag;
  tag_first_ = cp.tag_first;
  tag_closing_ = cp.tag_closing;
  have_pending_ = cp.have_pending;
  pending_byte_ = cp.pending_byte;
  pending_offset_ = cp.pending_offset;
  tag_start_ = cp.tag_start;
  in_skip_ = cp.in_skip;
  skip_depth_ = cp.skip_depth;
  demoted_ = cp.demoted;
  chunk_base_ = cp.bytes_fed;
  bytes_fed_ = cp.bytes_fed;
  chunks_fed_ = cp.chunks_fed;
  events_ = cp.events;
  nodes_ = cp.nodes;
  matches_ = cp.matches;
  depth_ = cp.depth;
  max_depth_ = cp.depth;  // segment-peak accounting: TakeSegmentPeakDepth
  errors_recovered_ = cp.errors_recovered;
  subtrees_skipped_ = cp.subtrees_skipped;
  error_offset_ = cp.error_offset;
  saw_root_ = cp.saw_root;
  failed_ = false;
  stream_error_ = cp.stream_error;
  error_ = stream_error_.ok() ? std::string() : stream_error_.Render(alphabet_);
  recovered_errors_ = cp.recovered;
  recorder_.Reset();  // keeps the sink and max_pending wiring
  return true;
}

void StreamingSelector::ReleaseCheckpoint(const SelectorCheckpoint& cp) {
  machine_->ReleaseConfig(cp.machine_config);
}

bool StreamingSelector::CheckpointConverged(const SelectorCheckpoint& cp,
                                            int64_t delta) const {
  if (failed_) return false;
  if (depth_ != cp.depth || saw_root_ != cp.saw_root) return false;
  if (in_skip_ != cp.in_skip || skip_depth_ != cp.skip_depth ||
      demoted_ != cp.demoted) {
    return false;
  }
  if (in_tag_ != cp.in_tag || tag_first_ != cp.tag_first ||
      tag_closing_ != cp.tag_closing || have_pending_ != cp.have_pending ||
      pending_byte_ != cp.pending_byte) {
    return false;
  }
  // Absolute lexer offsets participate only while live (a completed token
  // leaves them stale), and must agree modulo the edit's byte shift.
  if (have_pending_ && pending_offset_ != cp.pending_offset + delta) {
    return false;
  }
  if (in_tag_ && tag_start_ != cp.tag_start + delta) return false;
  if (tag_len_ != cp.tag_buf.size() ||
      std::memcmp(tag_buf_, cp.tag_buf.data(), tag_len_) != 0) {
    return false;
  }
  if (open_labels_ != cp.open_labels) return false;
  return machine_->ConfigEqualsCurrent(cp.machine_config);
}

int64_t StreamingSelector::TakeSegmentPeakDepth() {
  int64_t peak = max_depth_;
  max_depth_ = depth_;
  return peak;
}

StreamError StreamingSelector::MakeError(StreamErrorCode code, int64_t offset,
                                         Symbol expected, Symbol got) const {
  StreamError err;
  err.code = code;
  err.offset = offset;
  err.depth = depth_;
  err.expected = expected;
  err.got = got;
  return err;
}

bool StreamingSelector::FailAt(const StreamError& err) {
  failed_ = true;
  if (error_offset_ < 0) error_offset_ = err.offset;
  if (stream_error_.ok()) {
    stream_error_ = err;
    error_ = err.Render(alphabet_);
  }
  // bytes_fed reports the consumed prefix on failure: rewind past the
  // in-flight chunk tail so the counter is chunk-invariant.
  if (err.offset >= 0 && err.offset < bytes_fed_) bytes_fed_ = err.offset;
  // Spans whose close will never arrive are reported truncated, not
  // dropped: every sink sees the same events before and after the error.
  if (recorder_.active()) recorder_.FlushTruncated();
  return false;
}

bool StreamingSelector::Recover(const StreamError& err, ErrorToken token,
                                int64_t excise_from) {
  // Resource exhaustion is never recoverable (the guard exists to stop the
  // stream), and resynchronization needs an enclosing open element to
  // truncate — at depth 0 there is nothing to resync on.
  const bool hard_limit = err.code == StreamErrorCode::kByteLimitExceeded ||
                          err.code == StreamErrorCode::kEventLimitExceeded;
  if (policy_ != RecoveryPolicy::kSkipMalformedSubtree || depth_ <= 0 ||
      hard_limit || errors_recovered_ >= limits_.max_recovered_errors) {
    return FailAt(err);
  }
  if (error_offset_ < 0) error_offset_ = err.offset;
  if (stream_error_.ok()) {
    stream_error_ = err;
    error_ = err.Render(alphabet_);
  }
  ++errors_recovered_;
  ++subtrees_skipped_;
  recovered_errors_.push_back(RecoveredError{err, excise_from, -1});
  have_pending_ = false;  // a pending term label is part of the damage
  in_skip_ = true;
  skip_depth_ = 0;
  switch (token) {
    case ErrorToken::kJunk:
      break;
    case ErrorToken::kOpenLike:
      skip_depth_ = 1;
      break;
    case ErrorToken::kCloseLike:
      // The offending close token is itself the resynchronization point.
      return ResyncClose(err.offset + 1);
  }
  return true;
}

bool StreamingSelector::ResyncClose(int64_t consumed_end) {
  in_skip_ = false;
  skip_depth_ = 0;
  if (!recovered_errors_.empty() &&
      recovered_errors_.back().resume_offset < 0) {
    recovered_errors_.back().resume_offset = consumed_end;
    recovered_errors_.back().closed_label = open_labels_.back();
  }
  return EmitSynthClose(consumed_end - 1, consumed_end);
}

bool StreamingSelector::EmitSynthClose(int64_t offset, int64_t span_end) {
  if (events_ >= limits_.max_events) {
    return FailAt(MakeError(StreamErrorCode::kEventLimitExceeded, offset));
  }
  Symbol symbol = open_labels_.back();
  open_labels_.pop_back();
  if (recorder_.active()) recorder_.OnClose(depth_, span_end);
  --depth_;
  machine_->OnClose(format_ == Format::kCompactTerm ? -1 : symbol);
  ++events_;
  return true;
}

bool StreamingSelector::EmitOpen(Symbol symbol, int64_t offset,
                                 int64_t excise_from) {
  if (depth_ == 0 && saw_root_) {
    return Recover(
        MakeError(StreamErrorCode::kTrailingContent, offset, -1, symbol),
        ErrorToken::kOpenLike, excise_from);
  }
  if (depth_ >= limits_.max_depth) {
    return Recover(
        MakeError(StreamErrorCode::kDepthLimitExceeded, offset, -1, symbol),
        ErrorToken::kOpenLike, excise_from);
  }
  if (events_ >= limits_.max_events) {
    return Recover(MakeError(StreamErrorCode::kEventLimitExceeded, offset),
                   ErrorToken::kOpenLike, excise_from);
  }
  saw_root_ = true;
  ++depth_;
  if (depth_ > max_depth_) max_depth_ = depth_;
  open_labels_.push_back(symbol);
  machine_->OnOpen(symbol);
  ++events_;
  if (machine_->InAcceptingState()) {
    ++matches_;
    if (match_callback_) match_callback_(nodes_, symbol);
    // Span start = first byte of the opening token (excise_from: the '<',
    // the term label byte); certainty = just past the token — the earliest
    // offset at which pre-selection is decided.
    if (recorder_.active()) RecordMatch(excise_from, offset + 1);
  }
  ++nodes_;
  return true;
}

bool StreamingSelector::EmitClose(Symbol symbol, int64_t offset,
                                  int64_t excise_from) {
  if (open_labels_.empty()) {
    return Recover(
        MakeError(StreamErrorCode::kUnbalancedClose, offset, -1, symbol),
        ErrorToken::kCloseLike, excise_from);
  }
  if (symbol >= 0 && open_labels_.back() != symbol) {
    return Recover(MakeError(StreamErrorCode::kLabelMismatch, offset,
                             open_labels_.back(), symbol),
                   ErrorToken::kCloseLike, excise_from);
  }
  if (events_ >= limits_.max_events) {
    return Recover(MakeError(StreamErrorCode::kEventLimitExceeded, offset),
                   ErrorToken::kCloseLike, excise_from);
  }
  open_labels_.pop_back();
  if (recorder_.active()) recorder_.OnClose(depth_, offset + 1);
  --depth_;
  machine_->OnClose(symbol);
  ++events_;
  return true;
}

template <typename Stepper>
StreamingSelector::ScanResult StreamingSelector::FeedMarkup(
    std::string_view chunk, size_t start, Stepper& stepper) {
  const uint8_t* cls = tables_->byte_class.data();
  const Symbol* sym = tables_->byte_symbol.data();
  // Shared error exit. The fused tier cannot synthesize machine-level
  // events, so when the policy wants resynchronization it demotes (the
  // generic tier re-detects the same error at the same byte and owns the
  // recovery decision); otherwise Recover() decides between absorbing the
  // error and failing fatally.
  auto fail_or_recover = [&](const StreamError& err,
                             ErrorToken token) -> ScanStatus {
    if constexpr (!Stepper::kCanRecover) {
      if (policy_ == RecoveryPolicy::kSkipMalformedSubtree) {
        return ScanStatus::kDemote;
      }
    }
    return Recover(err, token, err.offset) ? ScanStatus::kOk
                                           : ScanStatus::kFatal;
  };
  // Structural-index scan: the stage-1 SIMD classification yields only
  // structural offsets, so the byte-class switch never sees whitespace
  // (CheckTableAgreement asserts the kWs class and the index classifier
  // agree byte for byte). Error returns report the structural byte's own
  // chunk index, so demotion resumes (FeedMarkup(chunk, resume_index, ...))
  // land on exactly the byte the per-byte scan would have stopped at.
  StructuralIterator structural(chunk.data() + start, chunk.size() - start);
  for (size_t i = start + structural.Next(); i < chunk.size();
       i = start + structural.Next()) {
    unsigned char c = static_cast<unsigned char>(chunk[i]);
    if constexpr (Stepper::kCanRecover) {
      if (in_skip_) {
        // Framing-only scan of the skipped region: O(1) state, no machine
        // events, until the close that ends the innermost open element.
        switch (cls[c]) {
          case ScannerTables::kOpen:
            ++skip_depth_;
            break;
          case ScannerTables::kClose:
            if (skip_depth_ > 0) {
              --skip_depth_;
            } else if (!ResyncClose(chunk_base_ + static_cast<int64_t>(i) +
                                    1)) {
              return {ScanStatus::kFatal, i};
            }
            break;
          default:
            break;  // junk inside a region that is already being excised
        }
        continue;
      }
    }
    switch (cls[c]) {
      case ScannerTables::kOpen: {
        Symbol s = sym[c];
        if (s < 0) {
          ScanStatus st = fail_or_recover(
              MakeError(StreamErrorCode::kUnknownLabel, chunk_base_ + i),
              ErrorToken::kOpenLike);
          if (st != ScanStatus::kOk) return {st, i};
          break;
        }
        if (depth_ == 0 && saw_root_) {
          ScanStatus st = fail_or_recover(
              MakeError(StreamErrorCode::kTrailingContent, chunk_base_ + i,
                        -1, s),
              ErrorToken::kOpenLike);
          if (st != ScanStatus::kOk) return {st, i};
          break;
        }
        if (depth_ >= limits_.max_depth) {
          ScanStatus st = fail_or_recover(
              MakeError(StreamErrorCode::kDepthLimitExceeded, chunk_base_ + i,
                        -1, s),
              ErrorToken::kOpenLike);
          if (st != ScanStatus::kOk) return {st, i};
          break;
        }
        if (events_ >= limits_.max_events) {
          ScanStatus st = fail_or_recover(
              MakeError(StreamErrorCode::kEventLimitExceeded, chunk_base_ + i),
              ErrorToken::kOpenLike);
          if (st != ScanStatus::kOk) return {st, i};
          break;
        }
        saw_root_ = true;
        ++depth_;
        if (depth_ > max_depth_) max_depth_ = depth_;
        open_labels_.push_back(s);
        stepper.Open(s, c);
        ++events_;
        if (stepper.Accepting()) {
          ++matches_;
          if (match_callback_) match_callback_(nodes_, s);
          // Compact-markup tokens are one byte: the span starts at the
          // letter and the verdict is certain at the very next byte. On
          // the fused tiers acceptance comes from the byte table, so the
          // recorder path costs one predictable branch when no sink is
          // installed; single-member steppers also skip the virtual
          // AppendSelectedMembers fan-out (always {0} there).
          if (recorder_.active()) {
            if constexpr (Stepper::kSingleMember) {
              const int64_t start = chunk_base_ + static_cast<int64_t>(i);
              if (MatchSink* vsink = recorder_.verdict_only_sink()) {
                MatchEvent event;
                event.start_offset = start;
                event.certainty_offset = start + 1;
                vsink->OnMatch(event);
                recorder_.CountEmitted();
              } else {
                RecordSingleMemberMatchSlow(recorder_, depth_, start);
              }
            } else {
              RecordMatch(chunk_base_ + static_cast<int64_t>(i),
                          chunk_base_ + static_cast<int64_t>(i) + 1);
            }
          }
        }
        ++nodes_;
        break;
      }
      case ScannerTables::kClose: {
        Symbol s = sym[c];
        if (s < 0) {
          ScanStatus st = fail_or_recover(
              MakeError(StreamErrorCode::kUnknownLabel, chunk_base_ + i),
              ErrorToken::kCloseLike);
          if (st != ScanStatus::kOk) return {st, i};
          break;
        }
        if (open_labels_.empty()) {
          ScanStatus st = fail_or_recover(
              MakeError(StreamErrorCode::kUnbalancedClose, chunk_base_ + i,
                        -1, s),
              ErrorToken::kCloseLike);
          if (st != ScanStatus::kOk) return {st, i};
          break;
        }
        if (open_labels_.back() != s) {
          ScanStatus st = fail_or_recover(
              MakeError(StreamErrorCode::kLabelMismatch, chunk_base_ + i,
                        open_labels_.back(), s),
              ErrorToken::kCloseLike);
          if (st != ScanStatus::kOk) return {st, i};
          break;
        }
        if (events_ >= limits_.max_events) {
          ScanStatus st = fail_or_recover(
              MakeError(StreamErrorCode::kEventLimitExceeded, chunk_base_ + i),
              ErrorToken::kCloseLike);
          if (st != ScanStatus::kOk) return {st, i};
          break;
        }
        open_labels_.pop_back();
        if (recorder_.active() && recorder_.pending() > 0) {
          RecordSpanClose(recorder_, depth_,
                          chunk_base_ + static_cast<int64_t>(i) + 1);
        }
        --depth_;
        stepper.Close(s, c);
        ++events_;
        break;
      }
      default: {
        ScanStatus st = fail_or_recover(
            MakeError(StreamErrorCode::kBadByte, chunk_base_ + i),
            ErrorToken::kJunk);
        if (st != ScanStatus::kOk) return {st, i};
        break;
      }
    }
  }
  return {ScanStatus::kOk, chunk.size()};
}

bool StreamingSelector::FeedTerm(std::string_view chunk) {
  const uint8_t* cls = tables_->byte_class.data();
  const Symbol* sym = tables_->byte_symbol.data();
  // Structural-index scan (term delimiters and labels are all structural
  // bytes); whitespace between tokens never reaches the token logic. The
  // pending-label reprocess trick keeps its semantics: instead of --i, the
  // loop simply does not advance the iterator for that round.
  StructuralIterator structural(chunk.data(), chunk.size());
  size_t i = structural.Next();
  while (i < chunk.size()) {
    unsigned char c = static_cast<unsigned char>(chunk[i]);
    if (in_skip_) {
      if (c == '{') {
        ++skip_depth_;
      } else if (cls[c] == ScannerTables::kCloseBrace) {
        if (skip_depth_ > 0) {
          --skip_depth_;
        } else if (!ResyncClose(chunk_base_ + static_cast<int64_t>(i) + 1)) {
          return false;
        }
      }
      i = structural.Next();
      continue;
    }
    if (have_pending_) {
      if (c != '{') {
        if (!Recover(MakeError(StreamErrorCode::kBadByte, chunk_base_ + i),
                     ErrorToken::kJunk, pending_offset_)) {
          return false;
        }
        // Reprocess this byte under skip framing ('}' must resync): keep
        // i where it is for the next round.
        continue;
      }
      have_pending_ = false;
      Symbol s = sym[pending_byte_];
      if (s < 0) {
        if (!Recover(
                MakeError(StreamErrorCode::kUnknownLabel, chunk_base_ + i),
                ErrorToken::kOpenLike, pending_offset_)) {
          return false;
        }
        i = structural.Next();
        continue;
      }
      if (!EmitOpen(s, chunk_base_ + i, pending_offset_)) return false;
      i = structural.Next();
      continue;
    }
    switch (cls[c]) {
      case ScannerTables::kCloseBrace:
        if (!EmitClose(-1, chunk_base_ + i, chunk_base_ + i)) return false;
        break;
      case ScannerTables::kLabel:
        pending_byte_ = c;
        pending_offset_ = chunk_base_ + static_cast<int64_t>(i);
        have_pending_ = true;
        break;
      default:
        // A stray '{' still opens a frame (its matching '}' will close
        // it); any other byte is plain junk.
        if (!Recover(MakeError(StreamErrorCode::kBadByte, chunk_base_ + i),
                     c == '{' ? ErrorToken::kOpenLike : ErrorToken::kJunk,
                     chunk_base_ + i)) {
          return false;
        }
        break;
    }
    i = structural.Next();
  }
  return true;
}

bool StreamingSelector::FeedXml(std::string_view chunk) {
  const uint8_t* cls = tables_->byte_class.data();
  const size_t n = chunk.size();
  size_t i = 0;
  while (i < n) {
    unsigned char c = static_cast<unsigned char>(chunk[i]);
    if (!in_tag_) {
      if (in_skip_) {
        // Inside the excised region only tag framing matters: jump to the
        // next '<' in one vectorized sweep.
        const void* lt = std::memchr(chunk.data() + i, '<', n - i);
        if (lt == nullptr) return true;
        i = static_cast<size_t>(static_cast<const char*>(lt) - chunk.data());
        in_tag_ = true;
        tag_first_ = true;
        tag_closing_ = false;
        tag_len_ = 0;
        tag_start_ = chunk_base_ + static_cast<int64_t>(i);
        ++i;
        continue;
      }
      if (cls[c] == ScannerTables::kWs) {
        // Between tags only whitespace is legal before the next '<';
        // bulk-skip the run (SIMD/SWAR, base/byte_scan.h).
        i += 1 + FindStructural(chunk.data() + i + 1, n - i - 1);
        continue;
      }
      if (c != '<') {
        if (!Recover(MakeError(StreamErrorCode::kBadByte, chunk_base_ + i),
                     ErrorToken::kJunk, chunk_base_ + i)) {
          return false;
        }
        ++i;
        continue;
      }
      in_tag_ = true;
      tag_first_ = true;
      tag_closing_ = false;
      tag_len_ = 0;
      tag_start_ = chunk_base_ + static_cast<int64_t>(i);
      ++i;
      continue;
    }
    if (tag_first_ && c == '/') {
      tag_closing_ = true;
      tag_first_ = false;
      ++i;
      continue;
    }
    // Inside a tag: find the closing '>' in one vectorized sweep (libc
    // memchr) and copy the whole name run instead of byte-at-a-time.
    const void* gt = std::memchr(chunk.data() + i, '>', n - i);
    size_t name_end =
        gt != nullptr
            ? static_cast<size_t>(static_cast<const char*>(gt) - chunk.data())
            : n;
    if (size_t name_len = name_end - i; name_len > 0) {
      tag_first_ = false;
      if (in_skip_) {
        // Only "name was nonempty" matters for skip framing; don't buffer.
        tag_len_ = 1;
        i = name_end;
      } else if (tag_len_ + name_len > kMaxTagBytes) {
        // Error offset = the first byte that no longer fits, matching the
        // byte-at-a-time scanner.
        if (!Recover(
                MakeError(StreamErrorCode::kTagTooLong,
                          chunk_base_ + i + (kMaxTagBytes - tag_len_)),
                ErrorToken::kJunk, tag_start_)) {
          return false;
        }
        // Recovered: the oversized tag is junk inside the skipped region;
        // keep consuming its body without buffering.
        tag_len_ = 1;
        i = name_end;
      } else {
        std::memcpy(tag_buf_ + tag_len_, chunk.data() + i, name_len);
        tag_len_ += static_cast<uint32_t>(name_len);
        i = name_end;
      }
    }
    if (gt == nullptr) break;  // partial tag; the next chunk continues it
    in_tag_ = false;
    ++i;  // past the '>'
    if (in_skip_) {
      const bool nonempty = tag_len_ != 0;
      tag_len_ = 0;
      if (!nonempty) continue;  // "<>" is junk even while skipping
      if (tag_closing_) {
        if (skip_depth_ > 0) {
          --skip_depth_;
        } else if (!ResyncClose(chunk_base_ +
                                static_cast<int64_t>(name_end) + 1)) {
          return false;
        }
      } else {
        ++skip_depth_;
      }
      continue;
    }
    if (tag_len_ == 0) {
      if (!Recover(MakeError(StreamErrorCode::kBadByte,
                             chunk_base_ + static_cast<int64_t>(name_end)),
                   ErrorToken::kJunk, tag_start_)) {
        return false;
      }
      continue;
    }
    Symbol s = tag_len_ == 1
                   ? tables_->byte_symbol[static_cast<unsigned char>(tag_buf_[0])]
                   : alphabet_->Find(std::string_view(tag_buf_, tag_len_));
    const bool closing = tag_closing_;
    tag_len_ = 0;
    if (s < 0) {
      if (!Recover(MakeError(StreamErrorCode::kUnknownLabel,
                             chunk_base_ + static_cast<int64_t>(name_end)),
                   closing ? ErrorToken::kCloseLike : ErrorToken::kOpenLike,
                   tag_start_)) {
        return false;
      }
      continue;
    }
    int64_t offset = chunk_base_ + static_cast<int64_t>(name_end);
    bool ok = closing ? EmitClose(s, offset, tag_start_)
                      : EmitOpen(s, offset, tag_start_);
    if (!ok) return false;
  }
  return true;
}

bool StreamingSelector::Feed(std::string_view chunk) {
  if (failed_) return false;
  // Byte guard: split the chunk at the document-byte limit so the error
  // fires at offset max_document_bytes under any split schedule — checked
  // once per Feed, never inside the scan loops.
  bool over_byte_limit = false;
  if (static_cast<int64_t>(chunk.size()) >
      limits_.max_document_bytes - bytes_fed_) {
    over_byte_limit = true;
    chunk = chunk.substr(
        0, static_cast<size_t>(limits_.max_document_bytes - bytes_fed_));
  }
  chunk_base_ = bytes_fed_;
  bytes_fed_ += static_cast<int64_t>(chunk.size());
  ++chunks_fed_;
  bool ok = true;
  switch (format_) {
    case Format::kCompactMarkup: {
      if (using_fused_fast_path()) {
        FusedStepper stepper{fused_, machine_->ExportedState()};
        ScanResult r = FeedMarkup(chunk, 0, stepper);
        machine_->SyncExportedState(stepper.state);
        if (r.status == ScanStatus::kDemote) {
          // Degradation ladder: recovery synthesizes machine-level close
          // events, which the fused byte table cannot express. Drop to the
          // generic tier for the rest of the document; it re-detects the
          // error at the same byte and owns the recovery decision.
          demoted_ = true;
          VirtualStepper generic{machine_};
          r = FeedMarkup(chunk, r.resume_index, generic);
        }
        ok = r.status == ScanStatus::kOk;
      } else if (using_fused_dra_path()) {
        DraFusedStepper stepper{fused_dra_, machine_->ExportedDraConfig()};
        ScanResult r = FeedMarkup(chunk, 0, stepper);
        machine_->SyncExportedDraConfig(stepper.config);
        if (r.status == ScanStatus::kDemote) {
          // Same degradation ladder as the registerless tier: the machine
          // holds the configuration reached just before the offending byte
          // (synced above), so the generic re-run continues seamlessly and
          // re-detects the error at the same offset.
          demoted_ = true;
          VirtualStepper generic{machine_};
          r = FeedMarkup(chunk, r.resume_index, generic);
        }
        ok = r.status == ScanStatus::kOk;
      } else {
        VirtualStepper stepper{machine_};
        ok = FeedMarkup(chunk, 0, stepper).status == ScanStatus::kOk;
      }
      break;
    }
    case Format::kCompactTerm:
      ok = FeedTerm(chunk);
      break;
    case Format::kXmlLite:
      ok = FeedXml(chunk);
      break;
  }
  if (!ok) return false;
  if (over_byte_limit) {
    return FailAt(MakeError(StreamErrorCode::kByteLimitExceeded,
                            limits_.max_document_bytes));
  }
  return true;
}

bool StreamingSelector::Finish() {
  if (failed_) return false;
  const bool incomplete =
      in_tag_ || have_pending_ || in_skip_ || depth_ != 0 || !saw_root_;
  if (!incomplete) return true;
  if (policy_ == RecoveryPolicy::kAutoClose && saw_root_ && depth_ > 0) {
    // Tolerated truncation: discard a partial tag in the lexer buffer and
    // synthesize the missing closes for every still-open element.
    StreamError err =
        MakeError(StreamErrorCode::kTruncatedDocument, bytes_fed_);
    if (error_offset_ < 0) error_offset_ = err.offset;
    if (stream_error_.ok()) {
      stream_error_ = err;
      error_ = err.Render(alphabet_);
    }
    ++errors_recovered_;
    recovered_errors_.push_back(RecoveredError{err, bytes_fed_, bytes_fed_});
    in_tag_ = false;
    tag_first_ = false;
    tag_closing_ = false;
    tag_len_ = 0;
    have_pending_ = false;
    while (depth_ > 0) {
      // Pending match spans complete at the EOF offset: the synthesized
      // close is where the sanitized document ends them.
      if (!EmitSynthClose(bytes_fed_, bytes_fed_)) return false;
    }
    return true;
  }
  return FailAt(MakeError(StreamErrorCode::kTruncatedDocument, bytes_fed_));
}

}  // namespace sst
