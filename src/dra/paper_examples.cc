#include "dra/paper_examples.h"

#include "base/check.h"

namespace sst {

Dra BuildSameDepthDra(int num_symbols, Symbol target) {
  SST_CHECK(target >= 0 && target < num_symbols);
  constexpr int kFresh = 0, kPinned = 1, kReject = 2;
  Dra dra = Dra::Create(3, num_symbols, 1);
  dra.initial = kFresh;
  dra.accepting = {true, true, false};
  for (Symbol s = 0; s < num_symbols; ++s) {
    if (s == target) {
      // First occurrence pins the depth; later occurrences must match it.
      dra.SetAction(kFresh, false, s, {-1}, /*load_mask=*/1, kPinned);
      dra.SetAction(kPinned, false, s, {Dra::kEqual}, 0, kPinned);
      dra.SetAction(kPinned, false, s, {Dra::kLess}, 0, kReject);
      dra.SetAction(kPinned, false, s, {Dra::kGreater}, 0, kReject);
    } else {
      dra.SetAction(kFresh, false, s, {-1}, 0, kFresh);
      dra.SetAction(kPinned, false, s, {-1}, 0, kPinned);
    }
    dra.SetAction(kFresh, true, s, {-1}, 0, kFresh);
    dra.SetAction(kPinned, true, s, {-1}, 0, kPinned);
    dra.SetAction(kReject, false, s, {-1}, 0, kReject);
    dra.SetAction(kReject, true, s, {-1}, 0, kReject);
  }
  return dra;
}

RootChildrenMachine::RootChildrenMachine(const Dfa& dfa) : dfa_(dfa) {
  Reset();
}

void RootChildrenMachine::Reset() {
  depth_ = 0;
  pinned_depth_ = -1;
  state_ = dfa_.initial;
  done_ = false;
  verdict_ = false;
}

void RootChildrenMachine::OnOpen(Symbol /*symbol*/) {
  ++depth_;
  if (pinned_depth_ < 0) pinned_depth_ = depth_;  // the root's depth (1)
}

void RootChildrenMachine::OnClose(Symbol symbol) {
  --depth_;
  if (done_ || pinned_depth_ < 0) return;
  if (depth_ == pinned_depth_) {
    // Closing tag of a child of the root: feed its label to L's DFA.
    state_ = dfa_.Next(state_, symbol);
  } else if (depth_ < pinned_depth_) {
    // The root itself closed; freeze the verdict.
    done_ = true;
    verdict_ = dfa_.accepting[state_];
  }
}

bool RootChildrenMachine::InAcceptingState() const {
  return done_ ? verdict_ : dfa_.accepting[state_];
}

}  // namespace sst
