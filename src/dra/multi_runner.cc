#include "dra/multi_runner.h"

#include <utility>

#include "base/byte_scan.h"
#include "base/check.h"

namespace sst {

const char* MultiTierName(MultiTier tier) {
  switch (tier) {
    case MultiTier::kFusedProduct:
      return "fused-product";
    case MultiTier::kLazyProduct:
      return "lazy-product";
    case MultiTier::kMixed:
      return "mixed";
    case MultiTier::kIndependent:
      return "independent";
  }
  return "unknown";
}

std::optional<TagDfaProduct> BuildTagDfaProduct(
    const std::vector<const TagDfa*>& components, int state_cap) {
  std::optional<PairedProductTable> table =
      BuildEagerPairedProduct(components, state_cap);
  if (!table.has_value()) return std::nullopt;

  TagDfaProduct product;
  product.arity = table->arity;
  product.narrow = table->arity <= 64;
  product.masks = std::move(table->masks);
  product.mask_words.reserve(product.masks.size());
  for (const SelectionMask& mask : product.masks) {
    product.mask_words.push_back(mask.word());
  }

  TagDfa& dfa = product.dfa;
  dfa = TagDfa::Create(table->num_states, table->num_symbols);
  dfa.initial = table->initial;
  for (int state = 0; state < table->num_states; ++state) {
    for (Symbol a = 0; a < table->num_symbols; ++a) {
      dfa.SetNextOpen(state, a, table->Next(state, a));
      dfa.SetNextClose(state, a, table->Next(state, table->num_symbols + a));
    }
    dfa.accepting[state] = product.masks[state].Any();
  }
  return product;
}

// --- LazyProductCursor ---------------------------------------------------

LazyProductCursor::LazyProductCursor(LazyTagDfaProduct* lazy)
    : lazy_(lazy), id_(lazy->initial()) {
  accepting_ = lazy_->AnyAccepting(id_);
}

void LazyProductCursor::Reset() {
  id_ = lazy_->initial();
  wide_ = false;
  accepting_ = lazy_->AnyAccepting(id_);
}

void LazyProductCursor::StepWide(int letter) {
  const std::vector<const TagDfa*>& components = lazy_->components();
  const int k = lazy_->num_symbols();
  bool any = false;
  for (size_t i = 0; i < components.size(); ++i) {
    tuple_[i] = letter < k
                    ? components[i]->NextOpen(tuple_[i], letter)
                    : components[i]->NextClose(tuple_[i], letter - k);
    any |= static_cast<bool>(components[i]->accepting[tuple_[i]]);
  }
  accepting_ = any;
}

void LazyProductCursor::Open(Symbol symbol) {
  if (!wide_) {
    int next = lazy_->NextOpen(id_, symbol);
    if (next != LazyTagDfaProduct::kOverflow) {
      id_ = next;
      accepting_ = lazy_->AnyAccepting(id_);
      return;
    }
    // State cap hit: demote this stream to component-wise stepping from
    // the tuple of the last materialized state (latched until Reset).
    tuple_.resize(static_cast<size_t>(lazy_->arity()));
    lazy_->CopyTuple(id_, tuple_.data());
    wide_ = true;
  }
  StepWide(symbol);
}

void LazyProductCursor::Close(Symbol symbol) {
  Symbol s = symbol < 0 ? 0 : symbol;
  if (!wide_) {
    int next = lazy_->NextClose(id_, s);
    if (next != LazyTagDfaProduct::kOverflow) {
      id_ = next;
      accepting_ = lazy_->AnyAccepting(id_);
      return;
    }
    tuple_.resize(static_cast<size_t>(lazy_->arity()));
    lazy_->CopyTuple(id_, tuple_.data());
    wide_ = true;
  }
  StepWide(lazy_->num_symbols() + s);
}

void LazyProductCursor::AccumulateMask(int64_t* counts) const {
  if (!wide_) {
    lazy_->MaskOf(id_).AccumulateInto(counts);
    return;
  }
  const std::vector<const TagDfa*>& components = lazy_->components();
  for (size_t i = 0; i < components.size(); ++i) {
    if (components[i]->accepting[tuple_[i]]) ++counts[i];
  }
}

void LazyProductCursor::AppendSelected(std::vector<int32_t>* out) const {
  if (!wide_) {
    lazy_->MaskOf(id_).AppendSetBits(out);
    return;
  }
  const std::vector<const TagDfa*>& components = lazy_->components();
  for (size_t i = 0; i < components.size(); ++i) {
    if (components[i]->accepting[tuple_[i]]) {
      out->push_back(static_cast<int32_t>(i));
    }
  }
}

// --- ProductTagMachine ---------------------------------------------------

ProductTagMachine::ProductTagMachine(const TagDfaProduct* eager,
                                     LazyTagDfaProduct* lazy,
                                     std::vector<const ByteDraRunner*> dras)
    : eager_(eager), dras_(std::move(dras)) {
  SST_CHECK_MSG(eager == nullptr || lazy == nullptr,
                "at most one of eager/lazy product");
  SST_CHECK_MSG(eager != nullptr || lazy != nullptr || !dras_.empty(),
                "a product or at least one DRA member required");
  SST_CHECK_MSG(lazy == nullptr || dras_.empty(),
                "mixed batches ride the eager product only");
  size_t base = 0;
  if (eager_ != nullptr) {
    eager_state_ = eager_->dfa.initial;
    base = static_cast<size_t>(eager_->arity);
  } else if (lazy != nullptr) {
    lazy_cursor_.emplace(lazy);
    base = static_cast<size_t>(lazy->arity());
  }
  dra_configs_.reserve(dras_.size());
  for (const ByteDraRunner* dra : dras_) {
    dra_configs_.push_back(dra->InitialConfig());
  }
  counts_.assign(base + dras_.size(), 0);
}

void ProductTagMachine::Reset() {
  if (eager_ != nullptr) {
    eager_state_ = eager_->dfa.initial;
  } else if (lazy_cursor_) {
    lazy_cursor_->Reset();
  }
  for (size_t j = 0; j < dras_.size(); ++j) {
    dra_configs_[j] = dras_[j]->InitialConfig();
  }
  counts_.assign(counts_.size(), 0);
}

void ProductTagMachine::OnOpen(Symbol symbol) {
  if (eager_ != nullptr) {
    eager_state_ = eager_->dfa.NextOpen(eager_state_, symbol);
    // Pre-selection samples directly after opening tags: accumulate the
    // new state's mask into the per-query counts.
    if (eager_->dfa.accepting[eager_state_]) {
      eager_->masks[static_cast<size_t>(eager_state_)].AccumulateInto(
          counts_.data());
    }
  } else if (lazy_cursor_) {
    lazy_cursor_->Open(symbol);
    if (lazy_cursor_->Accepting()) {
      lazy_cursor_->AccumulateMask(counts_.data());
    }
  }
  if (dras_.empty()) return;
  const size_t base = counts_.size() - dras_.size();
  for (size_t j = 0; j < dras_.size(); ++j) {
    dras_[j]->StepOpen(&dra_configs_[j], symbol);
    counts_[base + j] += static_cast<int64_t>(
        dras_[j]->IsAccepting(dra_configs_[j].state));
  }
}

void ProductTagMachine::OnClose(Symbol symbol) {
  const Symbol s = symbol < 0 ? 0 : symbol;
  if (eager_ != nullptr) {
    eager_state_ = eager_->dfa.NextClose(eager_state_, s);
  } else if (lazy_cursor_) {
    lazy_cursor_->Close(symbol);
  }
  for (size_t j = 0; j < dras_.size(); ++j) {
    dras_[j]->StepClose(&dra_configs_[j], s);
  }
}

bool ProductTagMachine::InAcceptingState() const {
  if (eager_ != nullptr && eager_->dfa.accepting[eager_state_]) return true;
  if (lazy_cursor_ && lazy_cursor_->Accepting()) return true;
  for (size_t j = 0; j < dras_.size(); ++j) {
    if (dras_[j]->IsAccepting(dra_configs_[j].state)) return true;
  }
  return false;
}

void ProductTagMachine::AppendSelectedMembers(
    std::vector<int32_t>* out) const {
  if (eager_ != nullptr) {
    if (eager_->dfa.accepting[eager_state_]) {
      eager_->masks[static_cast<size_t>(eager_state_)].AppendSetBits(out);
    }
  } else if (lazy_cursor_) {
    if (lazy_cursor_->Accepting()) lazy_cursor_->AppendSelected(out);
  }
  if (dras_.empty()) return;
  const int32_t base = static_cast<int32_t>(counts_.size() - dras_.size());
  for (size_t j = 0; j < dras_.size(); ++j) {
    if (dras_[j]->IsAccepting(dra_configs_[j].state)) {
      out->push_back(base + static_cast<int32_t>(j));
    }
  }
}

// --- MultiTagDfaRunner ---------------------------------------------------

MultiTagDfaRunner::MultiTagDfaRunner(StreamFormat format,
                                     const Alphabet* alphabet,
                                     const ScannerTables* tables,
                                     const TagDfaProduct* eager,
                                     const ByteTagDfaRunner* eager_fused,
                                     LazyTagDfaProduct* lazy,
                                     std::vector<const ByteDraRunner*> mixed_dras)
    : eager_(eager),
      eager_fused_(eager_fused),
      lazy_(lazy),
      mixed_dras_(std::move(mixed_dras)),
      machine_(eager, lazy, mixed_dras_),
      owned_tables_(tables == nullptr
                        ? std::make_unique<ScannerTables>(
                              ScannerTables::Build(format, *alphabet))
                        : nullptr),
      selector_(&machine_, format, alphabet,
                tables != nullptr ? tables : owned_tables_.get(),
                /*fused=*/nullptr) {
  SST_CHECK(eager_fused_ == nullptr || eager_ != nullptr);
  // The one-scan markup APIs need every label to be a single lowercase
  // letter (same eligibility rule as the fused single-query byte table).
  byte_symbol_.fill(-1);
  byte_api_ok_ = true;
  for (Symbol s = 0; s < alphabet->size(); ++s) {
    const std::string& label = alphabet->LabelOf(s);
    if (label.size() != 1 || label[0] < 'a' || label[0] > 'z') {
      byte_api_ok_ = false;
      break;
    }
  }
  if (byte_api_ok_) {
    for (Symbol s = 0; s < alphabet->size(); ++s) {
      unsigned char open = static_cast<unsigned char>(alphabet->LabelOf(s)[0]);
      byte_symbol_[open] = s;
      byte_symbol_[open - 'a' + 'A'] = s;
    }
  }
}

template <typename T>
void MultiTagDfaRunner::CountSelectionsFused(
    const T* table, std::string_view bytes,
    std::vector<int64_t>* counts) const {
  const uint64_t* mask_words = eager_->mask_words.data();
  int64_t* out = counts->data();
  int state = eager_fused_->initial_state();
  auto accumulate = [&](unsigned char byte) {
    state = table[static_cast<size_t>(state) * 256 + byte];
    if (byte >= 'a' && byte <= 'z') {
      uint64_t mask = mask_words[state];
      for (; mask != 0; mask &= mask - 1) {
#if defined(__GNUC__) || defined(__clang__)
        ++out[__builtin_ctzll(mask)];
#else
        uint64_t low = mask & (~mask + 1);
        int bit = 0;
        while ((low >> bit) != 1) ++bit;
        ++out[bit];
#endif
      }
    }
  };
  if (eager_fused_->text_run_trivial()) {
    // Structural-index walk: the product table's whitespace rows self-loop
    // and never count (trivial text-run closure, checked at construction),
    // so the stage-1 scan drops every text byte before the table walk.
    ForEachStructural(bytes.data(), bytes.size(), [&](size_t i) {
      accumulate(static_cast<unsigned char>(bytes[i]));
    });
    return;
  }
  // Per-byte fallback for a non-trivial closure (also the reference the
  // parity tests run against): whitespace runs are still jumped with the
  // SWAR/SIMD kernel, but every structural byte costs a table load.
  for (size_t i = 0; i < bytes.size(); ++i) {
    unsigned char byte = static_cast<unsigned char>(bytes[i]);
    if (ByteIsAsciiWs(byte)) {
      i += FindStructural(bytes.data() + i + 1, bytes.size() - i - 1);
      continue;
    }
    accumulate(byte);
  }
}

void MultiTagDfaRunner::CountSelectionsLazy(
    std::string_view bytes, std::vector<int64_t>* counts) const {
  LazyProductCursor cursor(lazy_);
  int64_t* out = counts->data();
  // The cursor steps only on tag letters — whitespace is identity on both
  // the cursor and the counts — so the structural index is sound here
  // unconditionally (including across a mid-scan wide-mode demotion: the
  // latched cursor state rides along untouched through every gap).
  ForEachStructural(bytes.data(), bytes.size(), [&](size_t i) {
    unsigned char byte = static_cast<unsigned char>(bytes[i]);
    if (byte >= 'a' && byte <= 'z') {
      Symbol s = byte_symbol_[byte];
      // Unknown lowercase letters self-loop (ByteTagDfaRunner parity):
      // the state is unchanged but the byte still samples acceptance.
      if (s >= 0) cursor.Open(s);
      if (cursor.Accepting()) cursor.AccumulateMask(out);
    } else if (byte >= 'A' && byte <= 'Z') {
      Symbol s = byte_symbol_[byte];
      if (s >= 0) cursor.Close(s);
    }
    // All other structural bytes self-loop and never count.
  });
}

void MultiTagDfaRunner::CountSelectionsMixed(
    std::string_view bytes, std::vector<int64_t>* counts) const {
  int64_t* out = counts->data();
  const size_t base =
      eager_ != nullptr ? static_cast<size_t>(eager_->arity) : 0;
  int state = eager_ != nullptr ? eager_->dfa.initial : 0;
  std::vector<DraConfig> configs;
  configs.reserve(mixed_dras_.size());
  for (const ByteDraRunner* dra : mixed_dras_) {
    configs.push_back(dra->InitialConfig());
  }
  // Mixed tier: the sub-product and every DRA side-car step only on tag
  // letters, so the structural index is sound unconditionally (whitespace
  // is identity on all the interleaved machines at once).
  ForEachStructural(bytes.data(), bytes.size(), [&](size_t i) {
    unsigned char byte = static_cast<unsigned char>(bytes[i]);
    if (byte >= 'a' && byte <= 'z') {
      Symbol s = byte_symbol_[byte];
      if (s >= 0) {
        if (eager_ != nullptr) state = eager_->dfa.NextOpen(state, s);
        for (size_t j = 0; j < mixed_dras_.size(); ++j) {
          mixed_dras_[j]->StepOpen(&configs[j], s);
        }
      }
      // Unknown lowercase letters self-loop but still sample acceptance
      // (ByteTagDfaRunner parity).
      if (eager_ != nullptr && eager_->dfa.accepting[state]) {
        eager_->masks[static_cast<size_t>(state)].AccumulateInto(out);
      }
      for (size_t j = 0; j < mixed_dras_.size(); ++j) {
        out[base + j] += static_cast<int64_t>(
            mixed_dras_[j]->IsAccepting(configs[j].state));
      }
    } else if (byte >= 'A' && byte <= 'Z') {
      Symbol s = byte_symbol_[byte];
      if (s >= 0) {
        if (eager_ != nullptr) state = eager_->dfa.NextClose(state, s);
        for (size_t j = 0; j < mixed_dras_.size(); ++j) {
          mixed_dras_[j]->StepClose(&configs[j], s);
        }
      }
    }
    // All other structural bytes self-loop and never count.
  });
}

std::vector<int64_t> MultiTagDfaRunner::CountSelections(
    std::string_view bytes) const {
  SST_CHECK_MSG(byte_api_ok_,
                "one-scan byte APIs require single-letter labels");
  std::vector<int64_t> counts(static_cast<size_t>(num_queries()), 0);
  if (!mixed_dras_.empty()) {
    CountSelectionsMixed(bytes, &counts);
    return counts;
  }
  if (eager_fused_ != nullptr && eager_->narrow) {
    if (eager_fused_->uses_compact_table()) {
      CountSelectionsFused(eager_fused_->table16(), bytes, &counts);
    } else {
      CountSelectionsFused(eager_fused_->table32(), bytes, &counts);
    }
    return counts;
  }
  if (eager_ != nullptr) {
    // Eager product without a byte table (or a >64-query batch): walk the
    // product TagDfa directly over the structural index (the walk steps on
    // tag letters only, so whitespace is identity).
    int state = eager_->dfa.initial;
    ForEachStructural(bytes.data(), bytes.size(), [&](size_t i) {
      unsigned char byte = static_cast<unsigned char>(bytes[i]);
      if (byte >= 'a' && byte <= 'z') {
        Symbol s = byte_symbol_[byte];
        if (s >= 0) state = eager_->dfa.NextOpen(state, s);
        if (eager_->dfa.accepting[state]) {
          eager_->masks[static_cast<size_t>(state)].AccumulateInto(
              counts.data());
        }
      } else if (byte >= 'A' && byte <= 'Z') {
        Symbol s = byte_symbol_[byte];
        if (s >= 0) state = eager_->dfa.NextClose(state, s);
      }
    });
    return counts;
  }
  CountSelectionsLazy(bytes, &counts);
  return counts;
}

MultiValidatedRun MultiTagDfaRunner::RunValidated(
    std::string_view bytes, const StreamLimits& limits) const {
  SST_CHECK_MSG(byte_api_ok_,
                "one-scan byte APIs require single-letter labels");
  MultiValidatedRun run;
  run.matches.assign(static_cast<size_t>(num_queries()), 0);

  // Stepper state for whichever tier is strongest; validation is tier-
  // independent, so the control flow below mirrors
  // ByteTagDfaRunner::RunValidated line for line (same errors at the same
  // offsets).
  int eager_state = eager_ != nullptr ? eager_->dfa.initial : 0;
  std::optional<LazyProductCursor> cursor;
  if (eager_ == nullptr && lazy_ != nullptr) cursor.emplace(lazy_);
  const size_t dra_base =
      eager_ != nullptr ? static_cast<size_t>(eager_->arity)
      : lazy_ != nullptr ? static_cast<size_t>(lazy_->arity())
                         : 0;
  std::vector<DraConfig> dra_configs;
  dra_configs.reserve(mixed_dras_.size());
  for (const ByteDraRunner* dra : mixed_dras_) {
    dra_configs.push_back(dra->InitialConfig());
  }

  std::vector<Symbol> open_letters;
  int64_t depth = 0;
  bool saw_root = false;
  bool over_byte_limit =
      static_cast<int64_t>(bytes.size()) > limits.max_document_bytes;
  size_t scan_end = over_byte_limit
                        ? static_cast<size_t>(limits.max_document_bytes)
                        : bytes.size();
  auto fail = [&](StreamErrorCode code, int64_t offset, Symbol expected,
                  Symbol got) {
    run.error.code = code;
    run.error.offset = offset;
    run.error.depth = depth;
    run.error.expected = expected;
    run.error.got = got;
  };
  // Structural-index iteration (see ByteTagDfaRunner::RunValidated):
  // validation is whitespace-identity, so the indexed walk reports the
  // same first error at the same byte offset as the per-byte scan.
  StructuralIterator structural(bytes.data(), scan_end);
  for (size_t i = structural.Next(); i < scan_end; i = structural.Next()) {
    unsigned char byte = static_cast<unsigned char>(bytes[i]);
    if (byte >= 'a' && byte <= 'z') {
      Symbol s = byte_symbol_[byte];
      if (s < 0) {
        fail(StreamErrorCode::kUnknownLabel, static_cast<int64_t>(i), -1, -1);
        return run;
      }
      if (depth == 0 && saw_root) {
        fail(StreamErrorCode::kTrailingContent, static_cast<int64_t>(i), -1,
             s);
        return run;
      }
      if (depth >= limits.max_depth) {
        fail(StreamErrorCode::kDepthLimitExceeded, static_cast<int64_t>(i),
             -1, s);
        return run;
      }
      if (run.events >= limits.max_events) {
        fail(StreamErrorCode::kEventLimitExceeded, static_cast<int64_t>(i),
             -1, -1);
        return run;
      }
      saw_root = true;
      ++depth;
      if (depth > run.max_depth) run.max_depth = depth;
      open_letters.push_back(s);
      if (eager_ != nullptr) {
        eager_state = eager_->dfa.NextOpen(eager_state, s);
        if (eager_->dfa.accepting[eager_state]) {
          eager_->masks[static_cast<size_t>(eager_state)].AccumulateInto(
              run.matches.data());
        }
      } else if (cursor) {
        cursor->Open(s);
        if (cursor->Accepting()) cursor->AccumulateMask(run.matches.data());
      }
      for (size_t j = 0; j < mixed_dras_.size(); ++j) {
        mixed_dras_[j]->StepOpen(&dra_configs[j], s);
        run.matches[dra_base + j] += static_cast<int64_t>(
            mixed_dras_[j]->IsAccepting(dra_configs[j].state));
      }
      ++run.events;
      ++run.nodes;
      continue;
    }
    if (byte >= 'A' && byte <= 'Z') {
      Symbol s = byte_symbol_[byte];
      if (s < 0) {
        fail(StreamErrorCode::kUnknownLabel, static_cast<int64_t>(i), -1, -1);
        return run;
      }
      if (open_letters.empty()) {
        fail(StreamErrorCode::kUnbalancedClose, static_cast<int64_t>(i), -1,
             s);
        return run;
      }
      if (open_letters.back() != s) {
        fail(StreamErrorCode::kLabelMismatch, static_cast<int64_t>(i),
             open_letters.back(), s);
        return run;
      }
      if (run.events >= limits.max_events) {
        fail(StreamErrorCode::kEventLimitExceeded, static_cast<int64_t>(i),
             -1, -1);
        return run;
      }
      open_letters.pop_back();
      --depth;
      if (eager_ != nullptr) {
        eager_state = eager_->dfa.NextClose(eager_state, s);
      } else if (cursor) {
        cursor->Close(s);
      }
      for (size_t j = 0; j < mixed_dras_.size(); ++j) {
        mixed_dras_[j]->StepClose(&dra_configs[j], s);
      }
      ++run.events;
      continue;
    }
    fail(StreamErrorCode::kBadByte, static_cast<int64_t>(i), -1, -1);
    return run;
  }
  if (over_byte_limit) {
    fail(StreamErrorCode::kByteLimitExceeded, limits.max_document_bytes, -1,
         -1);
    return run;
  }
  if (!saw_root || depth != 0) {
    fail(StreamErrorCode::kTruncatedDocument,
         static_cast<int64_t>(bytes.size()), -1, -1);
  }
  return run;
}

}  // namespace sst
