#ifndef SST_DRA_MULTI_RUNNER_H_
#define SST_DRA_MULTI_RUNNER_H_

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "automata/alphabet.h"
#include "automata/product.h"
#include "automata/selection_mask.h"
#include "dra/byte_dra_runner.h"
#include "dra/byte_runner.h"
#include "dra/machine.h"
#include "dra/stream_error.h"
#include "dra/streaming.h"
#include "dra/tag_dfa.h"

namespace sst {

// Multi-query fused execution: N registerless query automata answered in
// ONE pass over the document. Closure under product (Lemma 2.4) fuses the
// batch into an output-annotated product automaton whose states carry an
// N-bit SelectionMask — the mask of the state reached after a node's
// opening tag answers "which queries select this node?" — so the dominant
// per-query cost (scanning the stream) becomes a per-document cost.
//
// The execution ladder mirrors the single-query degradation ladder:
//   kFusedProduct   eagerly materialized product, fusable into a single
//                   256-entry byte→state table (small batches);
//   kLazyProduct    on-the-fly product shared across sessions — only
//                   states the inputs actually reach materialize;
//   kMixed          registerless + stackless batch in ONE scan: the
//                   registerless members ride an eager product while each
//                   stackless member steps its fused restricted DRA
//                   (ByteDraRunner) alongside;
//   kIndependent    per-query stepping (N automaton steps per event):
//                   the landing spot when the lazy product hits its state
//                   cap mid-stream, and the engine's tier for batches
//                   containing queries outside every fused form.
enum class MultiTier { kFusedProduct, kLazyProduct, kMixed, kIndependent };

const char* MultiTierName(MultiTier tier);

// Eagerly built product of TagDfas: the product TagDfa (accepting =
// "some query selects") plus the per-state selection masks, with the
// masks' fast-path words flattened for byte-scan loops when the batch
// fits in 64 bits.
struct TagDfaProduct {
  TagDfa dfa;
  std::vector<SelectionMask> masks;   // per product state
  std::vector<uint64_t> mask_words;   // masks[s].word(); complete iff narrow
  int arity = 0;
  bool narrow = false;  // arity <= 64: mask_words fully describe the masks
};

// BFS materialization bounded by `state_cap`; nullopt when the reachable
// product is larger (callers fall back to the lazy product).
std::optional<TagDfaProduct> BuildTagDfaProduct(
    const std::vector<const TagDfa*>& components, int state_cap);

// The shared lazily materialized product (automata/product.h) over
// TagDfas. Thread-safe: any number of streams may step it concurrently.
using LazyTagDfaProduct = LazyPairedProduct<TagDfa>;

// One stream's position in a shared lazy product: a dense product-state id
// while materialization stays within the cap, or — after kOverflow — the
// raw component tuple, stepped one component at a time ("wide mode", the
// kIndependent rung). Wide mode is latched until Reset.
class LazyProductCursor {
 public:
  explicit LazyProductCursor(LazyTagDfaProduct* lazy);

  void Reset();
  void Open(Symbol symbol);
  void Close(Symbol symbol);
  bool Accepting() const { return accepting_; }
  bool wide() const { return wide_; }

  // counts[i] += 1 for every query whose automaton accepts right now.
  void AccumulateMask(int64_t* counts) const;

  // Appends the index of every query whose automaton accepts right now.
  void AppendSelected(std::vector<int32_t>* out) const;

 private:
  void StepWide(int letter);

  LazyTagDfaProduct* lazy_;
  int id_;
  bool wide_ = false;
  bool accepting_ = false;
  std::vector<int32_t> tuple_;  // wide mode only
};

// StreamMachine over the fused product: drives either the eager product
// table or a cursor on the shared lazy product, and accumulates per-query
// selection counts on every opening tag (the multi-query analogue of the
// selector's single matches_ counter). InAcceptingState() is the batch
// "any query selects" disjunction, so the aggregate matches statistic of a
// StreamingSelector running this machine counts nodes selected by at
// least one query.
class ProductTagMachine final : public StreamMachine {
 public:
  // At most one of `eager` / `lazy` may be non-null; `dras` adds stackless
  // members (mixed batches) stepped alongside the product — fused
  // restricted DRAs whose full configurations live in this machine. At
  // least one of the three sources must be present, and `dras` composes
  // with `eager` only (the mixed tier has no lazy rung). counts() reports
  // members in order: product mask bits first, then the DRA members. All
  // pointers must outlive the machine.
  ProductTagMachine(const TagDfaProduct* eager, LazyTagDfaProduct* lazy,
                    std::vector<const ByteDraRunner*> dras = {});

  void Reset() override;
  void OnOpen(Symbol symbol) override;
  void OnClose(Symbol symbol) override;
  bool InAcceptingState() const override;

  // Match-event fan-out (base/match_sink.h): member ids are the product
  // mask bits first, then the DRA members — the same member order as
  // counts(). This machine always runs the generic scanner tier (never
  // fused), so its state is in sync whenever the selector samples it.
  void AppendSelectedMembers(std::vector<int32_t>* out) const override;

  int arity() const { return static_cast<int>(counts_.size()); }
  const std::vector<int64_t>& counts() const { return counts_; }
  bool wide() const { return lazy_cursor_ && lazy_cursor_->wide(); }

 private:
  const TagDfaProduct* eager_;
  int eager_state_ = 0;
  std::optional<LazyProductCursor> lazy_cursor_;
  // Mixed batches: stackless members and their configurations, parallel
  // arrays in member order (after the product bits).
  std::vector<const ByteDraRunner*> dras_;
  std::vector<DraConfig> dra_configs_;
  std::vector<int64_t> counts_;
};

// Whole-document validated multi-query run: the batch analogue of
// ValidatedRun, field-for-field comparable with N independent fail-fast
// runs over the same bytes — same first StreamError (code + offset +
// depth + labels), same per-query selection counts up to that error.
struct MultiValidatedRun {
  StreamError error;
  int64_t nodes = 0;
  int64_t events = 0;
  int64_t max_depth = 0;
  std::vector<int64_t> matches;  // per component, in batch order

  bool ok() const { return error.ok(); }
};

// Multi-query front-end over one shared product: a chunk-capable
// StreamingSelector (any format, full StreamError / recovery-policy
// parity with single-query sessions) around a ProductTagMachine, plus
// one-scan byte-table entry points for compact markup that reuse the
// fused ByteTagDfaRunner machinery (uint16/uint32 compaction, SWAR/SIMD
// whitespace bulk-skip) to emit every query's selection count in a single
// table walk.
//
// The runner holds only per-stream state; the product artifacts are
// shared, immutable (eager) or internally synchronized (lazy), so K
// concurrent streams hold K runners and ONE product.
class MultiTagDfaRunner {
 public:
  // At most one of `eager` / `lazy` may be non-null; `eager_fused` is
  // the optional fused byte table of the eager product (built by the
  // engine when the alphabet is markup-eligible) and `tables` may be null
  // to build private scanner tables. `mixed_dras` adds stackless members
  // (mixed tier): fused restricted DRAs stepped alongside the product,
  // reported after the product bits in member order — composes with
  // `eager` (or stands alone for an all-stackless batch), never with
  // `lazy`. All pointers are borrowed and must outlive the runner.
  MultiTagDfaRunner(StreamFormat format, const Alphabet* alphabet,
                    const ScannerTables* tables, const TagDfaProduct* eager,
                    const ByteTagDfaRunner* eager_fused,
                    LazyTagDfaProduct* lazy,
                    std::vector<const ByteDraRunner*> mixed_dras = {});

  int num_queries() const { return machine_.arity(); }

  // The strongest tier this runner was built with; active_tier() reports
  // the rung actually executing (kIndependent once a lazy stream demoted
  // to wide mode).
  MultiTier tier() const {
    if (!mixed_dras_.empty()) return MultiTier::kMixed;
    return eager_ != nullptr ? MultiTier::kFusedProduct
                             : MultiTier::kLazyProduct;
  }
  MultiTier active_tier() const {
    return machine_.wide() ? MultiTier::kIndependent : tier();
  }

  // --- Chunked streaming (any format) -----------------------------------
  bool Feed(std::string_view chunk) { return selector_.Feed(chunk); }
  bool Finish() { return selector_.Finish(); }
  void Reset() { selector_.Reset(); }

  // Per-query selection counts, in batch order.
  const std::vector<int64_t>& query_matches() const {
    return machine_.counts();
  }
  StreamStats stats() const { return selector_.stats(); }
  bool failed() const { return selector_.failed(); }
  const StreamError& stream_error() const {
    return selector_.stream_error();
  }
  // Policy / limits / observability surface of the underlying scanner.
  StreamingSelector& selector() { return selector_; }
  const StreamingSelector& selector() const { return selector_; }

  // --- One-scan byte entry points (compact markup) ----------------------
  // Whether the one-scan APIs below may be called (markup-eligible
  // alphabet: every label a single lowercase letter).
  bool one_scan_eligible() const { return byte_api_ok_; }

  // ByteTagDfaRunner::CountSelections semantics, per query: one table
  // walk over the bytes, whitespace runs bulk-skipped. Requires a
  // markup-eligible alphabet (single lowercase-letter labels).
  std::vector<int64_t> CountSelections(std::string_view bytes) const;

  // Well-formedness-validated whole-document run with StreamingSelector's
  // fail-fast compact-markup semantics: same first StreamError at the
  // same byte offset as N independent validated runs.
  MultiValidatedRun RunValidated(std::string_view bytes,
                                 const StreamLimits& limits = {}) const;

 private:
  template <typename T>
  void CountSelectionsFused(const T* table, std::string_view bytes,
                            std::vector<int64_t>* counts) const;
  void CountSelectionsLazy(std::string_view bytes,
                           std::vector<int64_t>* counts) const;
  void CountSelectionsMixed(std::string_view bytes,
                            std::vector<int64_t>* counts) const;

  const TagDfaProduct* eager_;
  const ByteTagDfaRunner* eager_fused_;
  LazyTagDfaProduct* lazy_;
  std::vector<const ByteDraRunner*> mixed_dras_;

  ProductTagMachine machine_;
  std::unique_ptr<ScannerTables> owned_tables_;
  StreamingSelector selector_;

  // byte → symbol for the one-scan markup APIs; -1 when the alphabet is
  // not markup-eligible (byte_api_ok_ false) or the byte is no tag letter.
  std::array<Symbol, 256> byte_symbol_;
  bool byte_api_ok_ = false;
};

}  // namespace sst

#endif  // SST_DRA_MULTI_RUNNER_H_
