#include "dra/stream_error.h"

#include <string>

namespace sst {

const char* StreamErrorCodeName(StreamErrorCode code) {
  switch (code) {
    case StreamErrorCode::kNone:
      return "kNone";
    case StreamErrorCode::kUnknownLabel:
      return "kUnknownLabel";
    case StreamErrorCode::kLabelMismatch:
      return "kLabelMismatch";
    case StreamErrorCode::kUnbalancedClose:
      return "kUnbalancedClose";
    case StreamErrorCode::kTagTooLong:
      return "kTagTooLong";
    case StreamErrorCode::kDepthLimitExceeded:
      return "kDepthLimitExceeded";
    case StreamErrorCode::kByteLimitExceeded:
      return "kByteLimitExceeded";
    case StreamErrorCode::kEventLimitExceeded:
      return "kEventLimitExceeded";
    case StreamErrorCode::kTruncatedDocument:
      return "kTruncatedDocument";
    case StreamErrorCode::kBadByte:
      return "kBadByte";
    case StreamErrorCode::kTrailingContent:
      return "kTrailingContent";
  }
  return "kNone";
}

const char* RecoveryPolicyName(RecoveryPolicy policy) {
  switch (policy) {
    case RecoveryPolicy::kFailFast:
      return "kFailFast";
    case RecoveryPolicy::kSkipMalformedSubtree:
      return "kSkipMalformedSubtree";
    case RecoveryPolicy::kAutoClose:
      return "kAutoClose";
  }
  return "kFailFast";
}

namespace {

void AppendSymbol(std::string* out, Symbol symbol, const Alphabet* alphabet) {
  if (symbol < 0) {
    *out += "<none>";
  } else if (alphabet != nullptr &&
             symbol < static_cast<Symbol>(alphabet->size())) {
    *out += '\'';
    *out += alphabet->LabelOf(symbol);
    *out += '\'';
  } else {
    *out += '#';
    *out += std::to_string(symbol);
  }
}

}  // namespace

std::string StreamError::Render(const Alphabet* alphabet) const {
  if (ok()) return std::string();
  std::string out = StreamErrorCodeName(code);
  out += " at byte ";
  out += std::to_string(offset);
  out += " (depth ";
  out += std::to_string(depth);
  out += ')';
  if (expected >= 0 || got >= 0) {
    out += ": expected ";
    AppendSymbol(&out, expected, alphabet);
    out += ", got ";
    AppendSymbol(&out, got, alphabet);
  }
  return out;
}

}  // namespace sst
