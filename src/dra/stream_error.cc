#include "dra/stream_error.h"

#include <algorithm>
#include <string>

namespace sst {

const char* StreamLimits::Validate() const {
  if (max_depth <= 0) {
    return "max_depth must be positive (a depth limit of 0 rejects every "
           "document at its root open)";
  }
  if (max_document_bytes <= 0) {
    return "max_document_bytes must be positive (a byte limit of 0 rejects "
           "every document before its first byte)";
  }
  if (max_events <= 0) {
    return "max_events must be positive (an event limit of 0 rejects every "
           "document at its first tag)";
  }
  if (max_events < 2) {
    return "max_events must be at least 2 (the one-node document already "
           "produces a root open and a root close)";
  }
  if (max_recovered_errors < 0) {
    return "max_recovered_errors must be non-negative (0 makes the first "
           "recovery attempt fatal; negative values are meaningless)";
  }
  if (max_pending_matches <= 0) {
    return "max_pending_matches must be positive (a bound of 0 truncates "
           "every match span at emission, making span output useless)";
  }
  if (max_depth != kUnlimited && max_depth > max_events) {
    return "contradictory limits: max_depth exceeds max_events, so the "
           "depth guard can never fire (reaching depth d costs at least d "
           "open events)";
  }
  return nullptr;
}

StreamLimits StreamLimits::Merged(const StreamLimits& a,
                                  const StreamLimits& b) {
  StreamLimits merged;
  merged.max_depth = std::min(a.max_depth, b.max_depth);
  merged.max_document_bytes =
      std::min(a.max_document_bytes, b.max_document_bytes);
  merged.max_events = std::min(a.max_events, b.max_events);
  merged.max_recovered_errors =
      std::min(a.max_recovered_errors, b.max_recovered_errors);
  merged.max_pending_matches =
      std::min(a.max_pending_matches, b.max_pending_matches);
  // Reaching depth d costs at least d open events, so a depth guard above
  // the event guard can never fire; capping it keeps Merged closed under
  // Validate (merging two valid limits always yields valid limits), which
  // matters because one input often bounds only depth and the other only
  // events.
  merged.max_depth = std::min(merged.max_depth, merged.max_events);
  return merged;
}

const char* StreamErrorCodeName(StreamErrorCode code) {
  switch (code) {
    case StreamErrorCode::kNone:
      return "kNone";
    case StreamErrorCode::kUnknownLabel:
      return "kUnknownLabel";
    case StreamErrorCode::kLabelMismatch:
      return "kLabelMismatch";
    case StreamErrorCode::kUnbalancedClose:
      return "kUnbalancedClose";
    case StreamErrorCode::kTagTooLong:
      return "kTagTooLong";
    case StreamErrorCode::kDepthLimitExceeded:
      return "kDepthLimitExceeded";
    case StreamErrorCode::kByteLimitExceeded:
      return "kByteLimitExceeded";
    case StreamErrorCode::kEventLimitExceeded:
      return "kEventLimitExceeded";
    case StreamErrorCode::kTruncatedDocument:
      return "kTruncatedDocument";
    case StreamErrorCode::kBadByte:
      return "kBadByte";
    case StreamErrorCode::kTrailingContent:
      return "kTrailingContent";
  }
  return "kNone";
}

const char* RecoveryPolicyName(RecoveryPolicy policy) {
  switch (policy) {
    case RecoveryPolicy::kFailFast:
      return "kFailFast";
    case RecoveryPolicy::kSkipMalformedSubtree:
      return "kSkipMalformedSubtree";
    case RecoveryPolicy::kAutoClose:
      return "kAutoClose";
  }
  return "kFailFast";
}

namespace {

void AppendSymbol(std::string* out, Symbol symbol, const Alphabet* alphabet) {
  if (symbol < 0) {
    *out += "<none>";
  } else if (alphabet != nullptr &&
             symbol < static_cast<Symbol>(alphabet->size())) {
    *out += '\'';
    *out += alphabet->LabelOf(symbol);
    *out += '\'';
  } else {
    *out += '#';
    *out += std::to_string(symbol);
  }
}

}  // namespace

std::string StreamError::Render(const Alphabet* alphabet) const {
  if (ok()) return std::string();
  std::string out = StreamErrorCodeName(code);
  out += " at byte ";
  out += std::to_string(offset);
  out += " (depth ";
  out += std::to_string(depth);
  out += ')';
  if (expected >= 0 || got >= 0) {
    out += ": expected ";
    AppendSymbol(&out, expected, alphabet);
    out += ", got ";
    AppendSymbol(&out, got, alphabet);
  }
  return out;
}

}  // namespace sst
