#ifndef SST_DRA_VISIBLY_COUNTER_H_
#define SST_DRA_VISIBLY_COUNTER_H_

#include <optional>
#include <vector>

#include "dra/machine.h"
#include "dra/offset_dra.h"

namespace sst {

// Deterministic visibly counter automata with threshold m (m-VCAs), the
// registerless relatives the paper cites in Section 2.1 ("such automata
// (without registers) are also called visibly counter automata [1]"): the
// counter is the current depth, and transitions may depend on min(depth, m)
// after the input-driven update.
//
// VCAs embed into the depth-register framework: a register that is never
// loaded stays at 0, so comparing it with offset j against the depth tests
// depth ≥/=/≤ j — m such phantom registers recover the whole threshold.
// ToOffsetDra performs that embedding; combined with CompileOffsetDra this
// yields a plain Definition-2.1 DRA for any m-VCA, connecting the two
// models constructively.
struct VisiblyCounterAutomaton {
  int num_states = 0;
  int num_symbols = 0;
  int threshold = 0;  // m
  int initial = 0;
  std::vector<bool> accepting;
  // Indexed by (((state * 2 + is_close) * num_symbols) + symbol) *
  // (threshold + 1) + min(depth, threshold).
  std::vector<int> next;

  static VisiblyCounterAutomaton Create(int num_states, int num_symbols,
                                        int threshold);

  size_t Index(int state, bool is_close, Symbol symbol,
               int clamped_depth) const {
    return ((static_cast<size_t>(state) * 2 + (is_close ? 1 : 0)) *
                num_symbols +
            symbol) *
               (threshold + 1) +
           clamped_depth;
  }
  int Next(int state, bool is_close, Symbol symbol, int clamped_depth) const {
    return next[Index(state, is_close, symbol, clamped_depth)];
  }
  void SetNext(int state, bool is_close, Symbol symbol, int clamped_depth,
               int to) {
    next[Index(state, is_close, symbol, clamped_depth)] = to;
  }
};

// Direct interpreter.
class VcaRunner final : public StreamMachine {
 public:
  explicit VcaRunner(const VisiblyCounterAutomaton* vca) : vca_(vca) {
    Reset();
  }

  void Reset() override {
    state_ = vca_->initial;
    depth_ = 0;
  }
  void OnOpen(Symbol symbol) override { Step(symbol, false); }
  void OnClose(Symbol symbol) override { Step(symbol, true); }
  bool InAcceptingState() const override {
    return vca_->accepting[state_];
  }

 private:
  void Step(Symbol symbol, bool is_close) {
    depth_ += is_close ? -1 : 1;
    int clamped = depth_ < 0 ? 0
                  : depth_ > vca_->threshold
                      ? vca_->threshold
                      : static_cast<int>(depth_);
    state_ = vca_->Next(state_, is_close, symbol, clamped);
  }

  const VisiblyCounterAutomaton* vca_;
  int state_ = 0;
  int64_t depth_ = 0;
};

// The embedding: m phantom registers with offsets 1..m (never loaded);
// min(depth, m) is read off their comparison digits.
OffsetDra VcaToOffsetDra(const VisiblyCounterAutomaton& vca);

}  // namespace sst

#endif  // SST_DRA_VISIBLY_COUNTER_H_
