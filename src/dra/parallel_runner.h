#ifndef SST_DRA_PARALLEL_RUNNER_H_
#define SST_DRA_PARALLEL_RUNNER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "base/thread_pool.h"
#include "dra/byte_runner.h"

namespace sst {

// Data-parallel speculative execution of a fused ByteTagDfaRunner table.
//
// A registerless machine carries no stack and no registers: its whole
// configuration is one of finitely many states, so a chunk of the stream
// induces (a) a total function Q -> Q (where does the chunk take each
// state) and (b) a selection count per start state. These per-chunk
// effects compose associatively — f_{uv} = f_v . f_u and
// c_{uv}(q) = c_u(q) + c_v(f_u(q)) — which makes evaluation a monoid fold:
// split the input into K chunks, run every chunk *speculatively from all
// states* in parallel, then compose the effects left-to-right to recover
// the exact sequential trajectory and match count. (This is precisely what
// breaks for DRAs and stack machines: their chunk effect depends on an
// unbounded register valuation / stack content at entry, so it cannot be
// tabulated; see DESIGN.md "Parallel evaluation".)
//
// The speculative overhead starts at |Q| table lookups per byte, but
// trajectories merge: once two start states reach the same state they stay
// together forever, so merged states are retired to a (parent, count
// delta) record and only distinct survivors are stepped. On real automata
// the survivor set typically collapses to 1-2 states within a few hundred
// bytes, making the per-chunk cost approach the sequential cost.
class ParallelTagDfaRunner {
 public:
  struct Result {
    int final_state = 0;      // state after the whole stream, from initial
    int64_t selections = 0;   // == sequential CountSelections
    int chunks = 0;           // chunks actually used
  };

  // `runner` must outlive this object. `pool` may be null: chunks then run
  // back-to-back on the calling thread (still through the speculative
  // path, which is what the correctness tests exercise).
  // `dedup_interval` is the number of bytes between merge sweeps of the
  // speculative state set; smaller values converge sooner at the price of
  // more sweeps (tests use tiny values to force merges on short inputs).
  ParallelTagDfaRunner(const ByteTagDfaRunner* runner, ThreadPool* pool,
                       int dedup_interval = 256);

  // Splits `bytes` into `num_chunks` near-equal chunks (clamped to
  // [1, bytes.size()]); chunk 0 starts from the known initial state and
  // runs at sequential cost, later chunks run speculatively from all
  // states. Returns the exact sequential result.
  Result Run(std::string_view bytes, int num_chunks) const;

  int64_t CountSelections(std::string_view bytes, int num_chunks) const {
    return Run(bytes, num_chunks).selections;
  }
  bool Accepts(std::string_view bytes, int num_chunks) const {
    return runner_->IsAccepting(Run(bytes, num_chunks).final_state);
  }

  // Well-formedness-validated parallel run. Returns exactly the report of
  // the sequential ByteTagDfaRunner::RunValidated(bytes, limits) — same
  // first StreamError (code + byte offset + depth + labels) and the same
  // partial counters — for every chunk count and thread schedule.
  //
  // How: each chunk is audited *speculatively* alongside the state-effect
  // pass, producing a context-free summary (first locally-decidable error,
  // the unmatched close labels — which occur exactly at the chunk's
  // running depth minima — the labels left open, the depth excursion, and
  // an open-at-depth-zero ladder). The left-to-right fold threads the real
  // entry context (depth, expected labels, event count) through these
  // summaries in O(boundary depth) per chunk; only a chunk flagged as
  // containing the first error is re-scanned sequentially to pin the
  // error byte. The *validator* therefore carries stack-like framing
  // state at fold time, while the DFA evaluation itself stays stackless —
  // see DESIGN.md "Robustness & recovery".
  ValidatedRun RunValidated(std::string_view bytes, int num_chunks,
                            const StreamLimits& limits = {}) const;

 private:
  // Effect of one chunk: entry i holds the exit state / selection count
  // when the chunk is entered in state i.
  struct ChunkEffect {
    std::vector<int> final_state;
    std::vector<int64_t> count;
  };

  void RunChunkFromAll(std::string_view chunk, ChunkEffect* out) const;
  void RunChunkFrom(std::string_view chunk, int start, int* final_state,
                    int64_t* count) const;

  const ByteTagDfaRunner* runner_;
  ThreadPool* pool_;
  int dedup_interval_;
};

}  // namespace sst

#endif  // SST_DRA_PARALLEL_RUNNER_H_
