#ifndef SST_DRA_PAPER_EXAMPLES_H_
#define SST_DRA_PAPER_EXAMPLES_H_

#include <memory>

#include "automata/dfa.h"
#include "dra/dra.h"
#include "dra/machine.h"

namespace sst {

// Reusable builders for the worked examples of Section 2 — both as
// documentation of the model and as ready-made machines for tests and
// demos.

// Example 2.2: trees over a 2-letter alphabet in which all nodes labelled
// `target` sit at the same depth. One register; the language is stackless
// but NOT regular, so the automaton is necessarily unrestricted.
Dra BuildSameDepthDra(int num_symbols, Symbol target);

// Example 2.5: H_L — the set of trees in which the labels of the root's
// children, read left to right, form a word in L. One register pins the
// root's depth; the machine simulates L's DFA over the closing tags at
// that depth. Stackless for every regular L (and restricted).
class RootChildrenMachine final : public StreamMachine {
 public:
  explicit RootChildrenMachine(const Dfa& dfa);

  void Reset() override;
  void OnOpen(Symbol symbol) override;
  void OnClose(Symbol symbol) override;
  bool InAcceptingState() const override;

 private:
  Dfa dfa_;
  int64_t depth_ = 0;
  int64_t pinned_depth_ = -1;  // the single register
  int state_ = 0;
  bool done_ = false;  // root closed; verdict frozen
  bool verdict_ = false;
};

// Example 2.6: trees over {a, b, c} where some a-labelled node has a
// b-labelled descendant. One register; restarts at minimal a-nodes.
class SomeADescendantBMachine final : public StreamMachine {
 public:
  SomeADescendantBMachine(Symbol a, Symbol b) : a_(a), b_(b) { Reset(); }

  void Reset() override {
    depth_ = 0;
    pinned_depth_ = -1;
    matched_ = false;
  }

  void OnOpen(Symbol symbol) override {
    ++depth_;
    if (matched_) return;
    if (pinned_depth_ < 0) {
      if (symbol == a_) pinned_depth_ = depth_;  // minimal a-node found
    } else if (symbol == b_) {
      matched_ = true;  // b strictly below the pinned a
    }
  }

  void OnClose(Symbol /*symbol*/) override {
    --depth_;
    if (matched_) return;
    // Example 2.6's loop: once the depth drops below the pinned value the
    // a-subtree has closed without a match; rearm for the next minimal a.
    if (pinned_depth_ >= 0 && depth_ < pinned_depth_) pinned_depth_ = -1;
  }

  bool InAcceptingState() const override { return matched_; }

 private:
  Symbol a_, b_;
  int64_t depth_ = 0;
  int64_t pinned_depth_ = -1;
  bool matched_ = false;
};

// Example 2.7: trees where some *minimal* a-labelled node (no a-labelled
// ancestor) has a b-labelled child. One register pins the depth of the
// current minimal a-node; a b opening exactly one level below it is a
// match. The paper's point: dropping minimality makes the query
// unrealizable by any DRA (Theorem 3.1 / Fig 3d), because nested a's would
// each need their own register.
class MinimalAWithBChildMachine final : public StreamMachine {
 public:
  MinimalAWithBChildMachine(Symbol a, Symbol b) : a_(a), b_(b) { Reset(); }

  void Reset() override {
    depth_ = 0;
    pinned_depth_ = -1;
    matched_ = false;
  }

  void OnOpen(Symbol symbol) override {
    ++depth_;
    if (matched_) return;
    if (pinned_depth_ < 0) {
      if (symbol == a_) pinned_depth_ = depth_;
    } else if (symbol == b_ && depth_ == pinned_depth_ + 1) {
      matched_ = true;  // b-child of the pinned minimal a
    }
  }

  void OnClose(Symbol /*symbol*/) override {
    --depth_;
    if (matched_) return;
    if (pinned_depth_ >= 0 && depth_ < pinned_depth_) pinned_depth_ = -1;
  }

  bool InAcceptingState() const override { return matched_; }

 private:
  Symbol a_, b_;
  int64_t depth_ = 0;
  int64_t pinned_depth_ = -1;
  bool matched_ = false;
};

}  // namespace sst

#endif  // SST_DRA_PAPER_EXAMPLES_H_
