#ifndef SST_DRA_STREAMING_H_
#define SST_DRA_STREAMING_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "automata/alphabet.h"
#include "dra/machine.h"

namespace sst {

// Incremental push-parser driving a StreamMachine: feed arbitrary byte
// chunks (network reads, mmap windows); tag events are decoded on the fly
// and matches are reported as the stream goes by — the intended deployment
// of pre-selection (Section 2.3): once a node is pre-selected, its whole
// subtree can be forwarded downstream with no buffering.
//
// Formats:
//   kCompactMarkup  'a'..'z' opening tags, 'A'..'Z' closing tags;
//   kXmlLite        <name> ... </name>, tags only;
//   kCompactTerm    name{ ... } (JSON-style; drives OnClose with -1).
// Whitespace between tags is ignored. The parser validates well-formedness
// (tag balance and, for markup formats, label matching) since the paper's
// weak setting assumes it: a violation is reported as an error rather than
// silently producing nonsense.
class StreamingSelector {
 public:
  enum class Format { kCompactMarkup, kXmlLite, kCompactTerm };

  // Called right after a node is pre-selected: (node index in document
  // order, label symbol).
  using MatchCallback = std::function<void(int64_t, Symbol)>;

  // `machine` and `alphabet` must outlive the selector. Labels must be
  // present in the alphabet (the machine's automaton is indexed by it);
  // unknown element names fail the feed.
  StreamingSelector(StreamMachine* machine, Format format,
                    Alphabet* alphabet);

  void set_match_callback(MatchCallback callback) {
    match_callback_ = std::move(callback);
  }

  // Feeds a chunk; false on malformed input (error() explains).
  bool Feed(std::string_view chunk);

  // Declares end of input; false if the document is incomplete.
  bool Finish();

  void Reset();

  int64_t nodes() const { return nodes_; }
  int64_t matches() const { return matches_; }
  int64_t depth() const { return depth_; }
  bool document_complete() const { return saw_root_ && depth_ == 0; }
  bool machine_accepting() const { return machine_->InAcceptingState(); }
  const std::string& error() const { return error_; }

 private:
  bool Fail(const char* message);
  bool EmitOpen(Symbol symbol);
  bool EmitClose(Symbol symbol);

  StreamMachine* machine_;
  Format format_;
  Alphabet* alphabet_;
  MatchCallback match_callback_;

  // Well-formedness: the expected closing labels (only the labels, not
  // full automaton states — the library never keeps evaluation state per
  // level, but a *validator* of the input framing needs the open labels;
  // for the weak/trusted setting this check can be disabled).
  std::vector<Symbol> open_labels_;

  // Incremental lexer state (partial tag across chunk boundaries).
  std::string pending_;
  bool in_tag_ = false;  // kXmlLite: between '<' and '>'

  int64_t nodes_ = 0;
  int64_t matches_ = 0;
  int64_t depth_ = 0;
  bool saw_root_ = false;
  bool failed_ = false;
  std::string error_;
};

}  // namespace sst

#endif  // SST_DRA_STREAMING_H_
