#ifndef SST_DRA_STREAMING_H_
#define SST_DRA_STREAMING_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "automata/alphabet.h"
#include "dra/byte_runner.h"
#include "dra/machine.h"

namespace sst {

// Byte-level observability of one streaming run; see
// StreamingSelector::stats(). All counters reset with Reset().
struct StreamStats {
  int64_t bytes_fed = 0;      // bytes handed to Feed, whitespace included
  int64_t chunks_fed = 0;     // Feed calls processed (throughput input that
                              // needs no wall clock: bytes_fed / chunks_fed
                              // is the average chunk the transport delivers)
  int64_t events = 0;         // tag events decoded (opens + closes)
  int64_t max_depth = 0;      // peak element nesting depth
  int64_t matches = 0;        // pre-selected nodes
  int64_t error_offset = -1;  // byte offset of the first error, -1 if none
};

// Incremental push-parser driving a StreamMachine: feed arbitrary byte
// chunks (network reads, mmap windows); tag events are decoded on the fly
// and matches are reported as the stream goes by — the intended deployment
// of pre-selection (Section 2.3): once a node is pre-selected, its whole
// subtree can be forwarded downstream with no buffering.
//
// Formats:
//   kCompactMarkup  'a'..'z' opening tags, 'A'..'Z' closing tags;
//   kXmlLite        <name> ... </name>, tags only;
//   kCompactTerm    name{ ... } (JSON-style; drives OnClose with -1).
// Whitespace between tags is ignored (ASCII whitespace only — behavior is
// locale-independent). The parser validates well-formedness (tag balance
// and, for markup formats, label matching) since the paper's weak setting
// assumes it: a violation is reported as an error rather than silently
// producing nonsense.
//
// The hot loop is table-driven: a 256-entry byte classification and a
// byte→Symbol table are precomputed from the Alphabet at construction, so
// the steady state performs no isspace/hash-lookup calls and no heap
// allocation; whitespace runs and XML tag bodies are skipped in bulk with
// the SIMD/SWAR kernels of base/byte_scan.h rather than byte by byte
// (partial tags live in a fixed buffer; the well-formedness
// label stack keeps its capacity across Reset and only grows past
// kDepthReserve on pathologically deep documents). When the machine exports
// a plain TagDfa (registerless tier) and the format is compact markup, the
// scanner runs a fused ByteTagDfaRunner byte→state table with no virtual
// dispatch per event (Section 4.3).
class StreamingSelector {
 public:
  enum class Format { kCompactMarkup, kXmlLite, kCompactTerm };

  // Longest supported tag label, in bytes (an XML-lite closing tag's '/'
  // does not count towards this).
  static constexpr size_t kMaxTagBytes = 256;

  // Depth up to which the label stack never reallocates in steady state.
  static constexpr size_t kDepthReserve = 1024;

  // Called right after a node is pre-selected: (node index in document
  // order, label symbol).
  using MatchCallback = std::function<void(int64_t, Symbol)>;

  // `machine` and `alphabet` must outlive the selector. Labels must be
  // present in the alphabet (the machine's automaton is indexed by it);
  // unknown element names fail the feed.
  StreamingSelector(StreamMachine* machine, Format format,
                    Alphabet* alphabet);

  void set_match_callback(MatchCallback callback) {
    match_callback_ = std::move(callback);
  }

  // Feeds a chunk; false on malformed input (error() explains, with the
  // byte offset of the first offending byte).
  bool Feed(std::string_view chunk);

  // Declares end of input; false if the document is incomplete.
  bool Finish();

  void Reset();

  int64_t nodes() const { return nodes_; }
  int64_t matches() const { return matches_; }
  int64_t depth() const { return depth_; }
  bool document_complete() const { return saw_root_ && depth_ == 0; }
  bool machine_accepting() const { return machine_->InAcceptingState(); }
  const std::string& error() const { return error_; }

  // Byte-level counters of the run so far.
  StreamStats stats() const {
    return {bytes_fed_, chunks_fed_, events_, max_depth_, matches_,
            error_offset_};
  }

  // True when the fused byte→state fast path is active (registerless
  // machine + compact markup + single-letter labels).
  bool using_fused_fast_path() const { return fused_ != nullptr; }

 private:
  // Byte classes; one table per selector, specialized to its format.
  enum ByteClass : uint8_t {
    kBad = 0,
    kWs,          // ASCII whitespace
    kOpen,        // markup: 'a'..'z'
    kClose,       // markup: 'A'..'Z'
    kLabel,       // term: label byte (ASCII alnum, '_', '-')
    kCloseBrace,  // term: '}'
  };

  // Steppers let the markup scanner run either through the virtual
  // StreamMachine interface or the fused byte table with identical
  // validation code.
  struct VirtualStepper {
    StreamMachine* machine;
    void Open(Symbol s, unsigned char) { machine->OnOpen(s); }
    void Close(Symbol s, unsigned char) { machine->OnClose(s); }
    bool Accepting() const { return machine->InAcceptingState(); }
  };
  struct FusedStepper {
    const ByteTagDfaRunner* runner;
    int state;
    void Open(Symbol, unsigned char byte) { state = runner->Next(state, byte); }
    void Close(Symbol, unsigned char byte) {
      state = runner->Next(state, byte);
    }
    bool Accepting() const { return runner->IsAccepting(state); }
  };

  void BuildTables();
  bool FailAt(int64_t offset, const char* message);
  template <typename Stepper>
  bool FeedMarkup(std::string_view chunk, Stepper& stepper);
  bool FeedTerm(std::string_view chunk);
  bool FeedXml(std::string_view chunk);
  bool EmitOpen(Symbol symbol, int64_t offset);
  bool EmitClose(Symbol symbol, int64_t offset);

  StreamMachine* machine_;
  Format format_;
  Alphabet* alphabet_;
  MatchCallback match_callback_;

  // Precomputed per-byte tables (built once at construction).
  std::array<uint8_t, 256> byte_class_;
  std::array<Symbol, 256> byte_symbol_;

  // Compact-markup fused fast path; null when the machine is not
  // registerless (or labels are not single lowercase letters).
  std::unique_ptr<ByteTagDfaRunner> fused_;

  // Well-formedness: the expected closing labels (only the labels, not
  // full automaton states — the library never keeps evaluation state per
  // level, but a *validator* of the input framing needs the open labels).
  std::vector<Symbol> open_labels_;

  // Incremental lexer state (partial tag across chunk boundaries) — fixed
  // capacity, no allocation.
  char tag_buf_[kMaxTagBytes];
  uint32_t tag_len_ = 0;
  bool in_tag_ = false;       // kXmlLite: between '<' and '>'
  bool tag_first_ = false;    // kXmlLite: next byte is the first after '<'
  bool tag_closing_ = false;  // kXmlLite: tag started with '/'
  bool have_pending_ = false;  // kCompactTerm: label byte awaiting '{'
  unsigned char pending_byte_ = 0;

  int64_t chunk_base_ = 0;  // bytes fed before the current chunk
  int64_t bytes_fed_ = 0;
  int64_t chunks_fed_ = 0;
  int64_t events_ = 0;
  int64_t nodes_ = 0;
  int64_t matches_ = 0;
  int64_t depth_ = 0;
  int64_t max_depth_ = 0;
  int64_t error_offset_ = -1;
  bool saw_root_ = false;
  bool failed_ = false;
  std::string error_;
};

}  // namespace sst

#endif  // SST_DRA_STREAMING_H_
