#ifndef SST_DRA_STREAMING_H_
#define SST_DRA_STREAMING_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "automata/alphabet.h"
#include "base/match_sink.h"
#include "dra/byte_dra_runner.h"
#include "dra/byte_runner.h"
#include "dra/machine.h"
#include "dra/stream_error.h"

namespace sst {

// Byte serialization consumed by the streaming front-end. (Also aliased as
// StreamingSelector::Format for the pre-engine spelling.)
enum class StreamFormat {
  kCompactMarkup,  // 'a'..'z' opening tags, 'A'..'Z' closing tags
  kXmlLite,        // <name> ... </name>, tags only
  kCompactTerm,    // name{ ... } (JSON-style; universal close)
};

// Precomputed per-byte classification of one (format, alphabet) pair: the
// compile-time half of the scanner. Immutable once built, so one instance
// can be shared read-only by any number of concurrently running
// StreamingSelectors (the engine's QueryPlan owns exactly one); selectors
// constructed standalone build a private copy.
struct ScannerTables {
  // Byte classes; meanings depend on the format the table was built for.
  enum ByteClass : uint8_t {
    kBad = 0,
    kWs,          // ASCII whitespace
    kOpen,        // markup: 'a'..'z'
    kClose,       // markup: 'A'..'Z'
    kLabel,       // term: label byte (ASCII alnum, '_', '-')
    kCloseBrace,  // term: '}'
  };

  std::array<uint8_t, 256> byte_class;
  std::array<Symbol, 256> byte_symbol;

  static ScannerTables Build(StreamFormat format, const Alphabet& alphabet);
};

// Byte-level observability of one streaming run; see
// StreamingSelector::stats(). All counters reset with Reset().
//
// Every counter except chunks_fed is chunking-invariant: feeding the same
// bytes under any split schedule yields the same values, including
// error_offset and the recovery counters. (chunks_fed measures the split
// schedule itself, so it is the one counter that cannot be.) On a fatal
// error, bytes_fed reports the consumed prefix — exactly error_offset
// bytes — not whatever chunk tail happened to be in flight.
struct StreamStats {
  int64_t bytes_fed = 0;      // bytes consumed (whitespace included)
  int64_t chunks_fed = 0;     // Feed calls processed (throughput input that
                              // needs no wall clock: bytes_fed / chunks_fed
                              // is the average chunk the transport delivers)
  int64_t events = 0;         // tag events decoded (opens + closes)
  int64_t max_depth = 0;      // peak element nesting depth
  int64_t matches = 0;        // pre-selected nodes
  int64_t errors_recovered = 0;  // errors absorbed by the recovery policy
  int64_t subtrees_skipped = 0;  // kSkipMalformedSubtree resync regions
  int64_t error_offset = -1;  // byte offset of the first error, -1 if none
  int64_t matches_emitted = 0;  // MatchSink OnMatch events (0 with no sink)
  int64_t pending_matches_peak = 0;  // emission-buffer high-water
  int64_t max_stack_depth = 0;   // stack-tier peak stacked states (0 on the
                                 // stackless tiers, whose configs hold none)
  int64_t underflow_closes = 0;  // stack-tier closes ignored with nothing
                                 // open (unbalanced machine-level stream)
};

struct SelectorCheckpoint;

// Incremental push-parser driving a StreamMachine: feed arbitrary byte
// chunks (network reads, mmap windows); tag events are decoded on the fly
// and matches are reported as the stream goes by — the intended deployment
// of pre-selection (Section 2.3): once a node is pre-selected, its whole
// subtree can be forwarded downstream with no buffering.
//
// Formats:
//   kCompactMarkup  'a'..'z' opening tags, 'A'..'Z' closing tags;
//   kXmlLite        <name> ... </name>, tags only;
//   kCompactTerm    name{ ... } (JSON-style; drives OnClose with -1).
// Whitespace between tags is ignored (ASCII whitespace only — behavior is
// locale-independent). The parser validates well-formedness (tag balance
// and, for markup formats, label matching) since the paper's weak setting
// assumes it: a violation is reported as a structured StreamError rather
// than silently producing nonsense.
//
// Robustness layer (see DESIGN.md "Robustness & recovery"):
//   * every malformed-input condition produces a StreamError (code + byte
//     offset + depth + expected/got labels), identical under any chunk
//     split of the same bytes;
//   * a RecoveryPolicy selects fail-fast (default), skip-malformed-subtree
//     resynchronization, or auto-close-at-EOF;
//   * StreamLimits guard depth / document size / event count / recovery
//     budget deterministically, with the checks kept off the bulk-skip
//     loops (per-open, per-event, and per-Feed prefix splits);
//   * once an error is fatal, Feed and Finish are no-ops returning false
//     and the first StreamError is preserved verbatim.
//
// The hot loop is table-driven: a 256-entry byte classification and a
// byte→Symbol table are precomputed from the Alphabet at construction, so
// the steady state performs no isspace/hash-lookup calls and no heap
// allocation; whitespace runs and XML tag bodies are skipped in bulk with
// the SIMD/SWAR kernels of base/byte_scan.h rather than byte by byte
// (partial tags live in a fixed buffer; the well-formedness
// label stack keeps its capacity across Reset and only grows past
// kDepthReserve on pathologically deep documents). When the machine exports
// a plain TagDfa (registerless tier) and the format is compact markup, the
// scanner runs a fused ByteTagDfaRunner byte→state table with no virtual
// dispatch per event (Section 4.3); when it instead exports a restricted
// DRA (stackless tier, Lemma 3.8), the scanner runs a fused ByteDraRunner
// that resolves depth, registers, and the comparison code inline — one rung
// below the registerless table on the ladder, still byte-table speed.
// Recovery demotes either fused tier to the generic machine tier for the
// rest of the document (the degradation ladder); Reset() re-arms it.
class StreamingSelector {
 public:
  using Format = StreamFormat;

  // Which rung of the degradation ladder is executing events. The stack
  // tier (StackQueryEvaluator) — below all of these — is chosen by the
  // caller as the machine itself; the selector can only report the rungs
  // it switches between internally: the registerless fused byte table, the
  // stackless fused DRA table, and the generic virtual machine.
  enum class Tier { kFusedByteTable, kFusedDraTable, kGenericMachine };

  // One recovered error: the structured error plus the excised byte range.
  // excise_from is the first damaged byte (the start of the offending
  // token, which for multi-byte tokens — an XML tag, a term label — begins
  // before error.offset); resume_offset is the byte just past the
  // resynchronization token (-1 while the skip is still open at EOF);
  // closed_label is the label of the element whose close was synthesized
  // at resync (-1 for the kAutoClose EOF record, which closes every
  // remaining level). The sanitized document equivalent to the recovered
  // run is
  //   bytes[0, excise_from) + <close of closed_label> + bytes[resume_offset,)
  // which the property tests rebuild and re-parse fail-fast.
  struct RecoveredError {
    StreamError error;
    int64_t excise_from = -1;
    int64_t resume_offset = -1;
    Symbol closed_label = -1;
  };

  // Longest supported tag label, in bytes (an XML-lite closing tag's '/'
  // does not count towards this).
  static constexpr size_t kMaxTagBytes = 256;

  // Depth up to which the label stack never reallocates in steady state.
  static constexpr size_t kDepthReserve = 1024;

  // Upper bound on stackless fused close-table entries (states × symbols ×
  // 3^registers, ~4 bytes each) a selector will build privately; larger
  // DRAs stay on the generic tier. Plan-level builds apply their own
  // budget before materializing (see engine/query_plan.cc).
  static constexpr int64_t kFusedDraEntryBudget = int64_t{1} << 22;

  // Called right after a node is pre-selected: (node index in document
  // order, label symbol).
  using MatchCallback = std::function<void(int64_t, Symbol)>;

  // `machine` and `alphabet` must outlive the selector. Labels must be
  // present in the alphabet (the machine's automaton is indexed by it);
  // unknown element names fail the feed. Builds private scanner tables
  // (and, when eligible, a private fused byte table) at construction.
  StreamingSelector(StreamMachine* machine, Format format,
                    const Alphabet* alphabet);

  // Compile-once / run-many form: borrows immutable tables owned by a
  // shared plan instead of building them. `tables` must have been built
  // for exactly this (format, alphabet); `fused` may be null (generic tier
  // only) and otherwise must be the fused byte table of the TagDfa the
  // machine exports (the scanner syncs the exported state around fused
  // chunks); `fused_dra` is the stackless analogue — the fused table of
  // the restricted DRA the machine exports (configuration synced around
  // fused chunks) — and is mutually exclusive with `fused`. No table
  // construction — and no allocation proportional to the automaton —
  // happens on this path; see engine/session.h.
  StreamingSelector(StreamMachine* machine, Format format,
                    const Alphabet* alphabet, const ScannerTables* tables,
                    const ByteTagDfaRunner* fused,
                    const ByteDraRunner* fused_dra = nullptr);

  void set_match_callback(MatchCallback callback) {
    match_callback_ = std::move(callback);
  }

  // Streams match events (byte spans, emitted at the earliest certain
  // offset) into `sink`; see base/match_sink.h for the event model and
  // ordering guarantees. The sink must outlive the selector or be cleared
  // with nullptr; it survives Reset() like the policy and limits, so a
  // pooled session keeps its sink wiring across documents. For multi-query
  // machines, event query_ids are the machine's member indices
  // (StreamMachine::AppendSelectedMembers); single-query machines emit
  // query_id 0. The emission buffer is bounded by
  // StreamLimits::max_pending_matches.
  void set_match_sink(MatchSink* sink) { recorder_.set_sink(sink); }

  // Emission-buffer observability: pending/peak span counts, OnMatch
  // totals, and overflow truncations of the current run.
  const MatchRecorder& match_recorder() const { return recorder_; }

  // Both must be set before the first Feed of a document (they are not
  // consulted retroactively). Limits must pass StreamLimits::Validate() —
  // zero or contradictory guards are a configuration bug, rejected loudly
  // here instead of silently failing every document downstream.
  void set_recovery_policy(RecoveryPolicy policy) { policy_ = policy; }
  void set_limits(const StreamLimits& limits);
  RecoveryPolicy recovery_policy() const { return policy_; }
  const StreamLimits& limits() const { return limits_; }

  // Feeds a chunk; false on fatal malformed input (stream_error() has the
  // structured error, error() a rendered message). Recovered errors keep
  // Feed returning true. After a fatal error every further Feed is a no-op
  // returning false; the original error is preserved.
  bool Feed(std::string_view chunk);

  // Declares end of input; false if the document is incomplete (under
  // kAutoClose, missing closes are synthesized instead and Finish
  // succeeds).
  bool Finish();

  void Reset();

  int64_t nodes() const { return nodes_; }
  int64_t matches() const { return matches_; }
  int64_t depth() const { return depth_; }
  bool document_complete() const { return saw_root_ && depth_ == 0; }
  bool machine_accepting() const { return machine_->InAcceptingState(); }

  // True once a fatal (unrecovered) error has been recorded.
  bool failed() const { return failed_; }

  // The first error observed — fatal or recovered; code kNone if the
  // stream has been clean so far. Chunking-invariant.
  const StreamError& stream_error() const { return stream_error_; }

  // Rendered first error ("" while clean). Kept for log-friendliness;
  // structured consumers should use stream_error().
  const std::string& error() const { return error_; }

  // Errors absorbed by the recovery policy, in stream order.
  const std::vector<RecoveredError>& recovered_errors() const {
    return recovered_errors_;
  }

  // Byte-level counters of the run so far.
  StreamStats stats() const {
    return {bytes_fed_,
            chunks_fed_,
            events_,
            max_depth_,
            matches_,
            errors_recovered_,
            subtrees_skipped_,
            error_offset_,
            recorder_.emitted(),
            recorder_.peak_pending(),
            machine_->StackDepthPeak(),
            machine_->StackUnderflowCloses()};
  }

  // --- Checkpoint protocol (incremental re-evaluation) ------------------
  // A SelectorCheckpoint is the selector's complete resumable state at a
  // Feed boundary: machine configuration (via StreamMachine::SaveConfig),
  // validator labels, lexer, recovery state, and the exact prefix values
  // of every counter. engine/incremental.h records these on a byte grid
  // and resumes/rescans/splices around edits; see DESIGN.md "Incremental
  // re-evaluation".

  // Captures the current state into `out` (overwritten). False — and no
  // resources retained — when the machine does not support the config
  // protocol or when pending match spans exist (checkpointing requires a
  // verdict-only or absent sink). Must not be called after a fatal error.
  // Saved checkpoints pin machine resources (stack-tier nodes) until
  // ReleaseCheckpoint or machine Reset.
  bool SaveCheckpoint(SelectorCheckpoint* out);

  // Adopts a saved (not yet released) checkpoint, clearing any fatal
  // state recorded since; the checkpoint stays valid for further
  // restores. The running max-depth is re-based at the restored depth
  // (see TakeSegmentPeakDepth). False if the machine rejects the config.
  bool RestoreCheckpoint(const SelectorCheckpoint& cp);

  // Drops one saved checkpoint (frees stack-tier nodes; flat-config tiers
  // need no release, but calling this unconditionally is always correct).
  void ReleaseCheckpoint(const SelectorCheckpoint& cp);

  // Convergence test: true iff the live state at the current position is
  // byte-for-byte the state `cp` recorded, modulo a uniform shift of
  // `delta` bytes in every stored absolute offset (the edit's net size
  // change). Counters and error history do not participate — they are
  // prefix aggregates, spliced separately; what must agree is everything
  // that determines the *future* of the run: depth, validator labels,
  // lexer, recovery mode, tier demotion, and the machine configuration.
  bool CheckpointConverged(const SelectorCheckpoint& cp, int64_t delta) const;

  // Returns the peak depth since the last call (or Reset/Restore) and
  // re-bases the running peak at the current depth. Lets a checkpointing
  // caller keep exact per-segment peaks — and thus splice an exact global
  // max_depth — at zero cost to the scan loops. Plain callers that never
  // call this see the usual whole-run peak in stats().
  int64_t TakeSegmentPeakDepth();

  // True when the fused byte→state fast path is active (registerless
  // machine + compact markup + single-letter labels, not demoted).
  bool using_fused_fast_path() const {
    return fused_ != nullptr && !demoted_;
  }
  // True when the fused byte→configuration fast path is active (restricted
  // DRA machine + compact markup + single-letter labels, not demoted).
  bool using_fused_dra_path() const {
    return fused_dra_ != nullptr && !demoted_;
  }
  Tier active_tier() const {
    if (using_fused_fast_path()) return Tier::kFusedByteTable;
    if (using_fused_dra_path()) return Tier::kFusedDraTable;
    return Tier::kGenericMachine;
  }

 private:
  // How the offending token participates in skip-mode framing when the
  // error is recovered: an open-like token starts a nested skipped
  // element, a close-like token is itself the resynchronization point,
  // and junk is simply discarded.
  enum class ErrorToken : uint8_t { kJunk, kOpenLike, kCloseLike };

  // Per-chunk scan result; kDemote asks Feed to re-run the remainder of
  // the chunk on the generic tier (which owns all recovery logic).
  enum class ScanStatus : uint8_t { kOk, kFatal, kDemote };
  struct ScanResult {
    ScanStatus status = ScanStatus::kOk;
    size_t resume_index = 0;  // kDemote: first unconsumed chunk index
  };

  // Steppers let the markup scanner run either through the virtual
  // StreamMachine interface or the fused byte table with identical
  // validation code. Only the virtual stepper can recover (kCanRecover);
  // the fused instantiation demotes instead.
  // kSingleMember marks steppers whose acceptance always fans out to
  // member 0 alone: the fused tiers only ever run single-query machines
  // (ProductTagMachine never exports a fused table), so their match
  // emission skips the virtual AppendSelectedMembers enumeration.
  struct VirtualStepper {
    static constexpr bool kCanRecover = true;
    static constexpr bool kSingleMember = false;
    StreamMachine* machine;
    void Open(Symbol s, unsigned char) { machine->OnOpen(s); }
    void Close(Symbol s, unsigned char) { machine->OnClose(s); }
    bool Accepting() const { return machine->InAcceptingState(); }
  };
  struct FusedStepper {
    static constexpr bool kCanRecover = false;
    static constexpr bool kSingleMember = true;
    const ByteTagDfaRunner* runner;
    int state;
    void Open(Symbol, unsigned char byte) { state = runner->Next(state, byte); }
    void Close(Symbol, unsigned char byte) {
      state = runner->Next(state, byte);
    }
    bool Accepting() const { return runner->IsAccepting(state); }
  };
  // Stackless fused tier: the whole DRA configuration (state, depth,
  // registers) lives in the stepper for the duration of a chunk; the
  // runner resolves the 3^r comparison code and the register loads inline.
  struct DraFusedStepper {
    static constexpr bool kCanRecover = false;
    static constexpr bool kSingleMember = true;
    const ByteDraRunner* runner;
    DraConfig config;
    void Open(Symbol s, unsigned char) { runner->StepOpen(&config, s); }
    void Close(Symbol s, unsigned char) { runner->StepClose(&config, s); }
    bool Accepting() const { return runner->IsAccepting(config.state); }
  };

  // Verifies (debug builds only) that the shared/owned scanner tables and
  // the fused byte table, built independently from the same Alphabet,
  // agree byte for byte on the letters they classify.
  void CheckTableAgreement() const;

  // Records the first error and marks the stream fatally failed.
  bool FailAt(const StreamError& err);
  StreamError MakeError(StreamErrorCode code, int64_t offset,
                        Symbol expected = -1, Symbol got = -1) const;

  // Recovery decision point: under kSkipMalformedSubtree (and within the
  // recovery budget) records the error, enters skip mode, and returns
  // true; otherwise records it fatally and returns false. `excise_from`
  // is the first damaged byte (see RecoveredError). Machine events
  // synthesized here go through the virtual interface — callers on the
  // fused tier must demote before calling.
  bool Recover(const StreamError& err, ErrorToken token, int64_t excise_from);

  // Synthesizes the close of the innermost open element (symbol -1 under
  // the term encoding) and leaves skip mode. `consumed_end` is the offset
  // just past the resync token. False on a fatal guard violation.
  bool ResyncClose(int64_t consumed_end);

  template <typename Stepper>
  ScanResult FeedMarkup(std::string_view chunk, size_t start,
                        Stepper& stepper);
  bool FeedTerm(std::string_view chunk);
  bool FeedXml(std::string_view chunk);
  bool EmitOpen(Symbol symbol, int64_t offset, int64_t excise_from);
  bool EmitClose(Symbol symbol, int64_t offset, int64_t excise_from);
  // `span_end` is the end offset pending match spans complete with —
  // just past the resync token (kSkipMalformedSubtree) or the EOF offset
  // (kAutoClose); distinct from `offset`, the event-guard coordinate.
  bool EmitSynthClose(int64_t offset, int64_t span_end);

  // Fans the just-opened node's match out per accepting machine member
  // (query_id 0 for single-query machines) into the recorder. Only called
  // when acceptance was sampled true and a sink is installed.
  void RecordMatch(int64_t start, int64_t certainty);

  StreamMachine* machine_;
  Format format_;
  const Alphabet* alphabet_;
  MatchCallback match_callback_;
  RecoveryPolicy policy_ = RecoveryPolicy::kFailFast;
  StreamLimits limits_;

  // Match-event pipeline: the bounded emission buffer between the scan
  // loops and the installed MatchSink (inactive when no sink is set), plus
  // a reusable scratch vector for the per-member fan-out.
  MatchRecorder recorder_;
  std::vector<int32_t> member_scratch_;

  // Per-byte tables: either borrowed from a shared plan (owned_tables_
  // null) or privately built at construction. tables_ is never null.
  std::unique_ptr<ScannerTables> owned_tables_;
  const ScannerTables* tables_;

  // Compact-markup fused fast path; null when the machine is not
  // registerless (or labels are not single lowercase letters). Borrowed
  // from a shared plan or privately owned, like the scanner tables.
  std::unique_ptr<ByteTagDfaRunner> owned_fused_;
  const ByteTagDfaRunner* fused_ = nullptr;

  // Stackless fused fast path; null when the machine exports no restricted
  // DRA (or the table would exceed the build budget). Mutually exclusive
  // with fused_; same ownership scheme.
  std::unique_ptr<ByteDraRunner> owned_fused_dra_;
  const ByteDraRunner* fused_dra_ = nullptr;

  // Well-formedness: the expected closing labels (only the labels, not
  // full automaton states — the library never keeps evaluation state per
  // level, but a *validator* of the input framing needs the open labels).
  std::vector<Symbol> open_labels_;

  // Incremental lexer state (partial tag across chunk boundaries) — fixed
  // capacity, no allocation.
  char tag_buf_[kMaxTagBytes];
  uint32_t tag_len_ = 0;
  bool in_tag_ = false;       // kXmlLite: between '<' and '>'
  bool tag_first_ = false;    // kXmlLite: next byte is the first after '<'
  bool tag_closing_ = false;  // kXmlLite: tag started with '/'
  bool have_pending_ = false;  // kCompactTerm: label byte awaiting '{'
  unsigned char pending_byte_ = 0;
  int64_t pending_offset_ = -1;  // kCompactTerm: offset of pending_byte_
  int64_t tag_start_ = -1;       // kXmlLite: offset of the current tag's '<'

  // Recovery state (kSkipMalformedSubtree): while in_skip_, input is
  // framing-scanned only; skip_depth_ counts elements opened inside the
  // skipped region. Resync happens at the close that would return the
  // region to the innermost open element's end. demoted_ latches the
  // fused→generic tier drop until Reset.
  bool in_skip_ = false;
  int64_t skip_depth_ = 0;
  bool demoted_ = false;

  int64_t chunk_base_ = 0;  // bytes fed before the current chunk
  int64_t bytes_fed_ = 0;
  int64_t chunks_fed_ = 0;
  int64_t events_ = 0;
  int64_t nodes_ = 0;
  int64_t matches_ = 0;
  int64_t depth_ = 0;
  int64_t max_depth_ = 0;
  int64_t errors_recovered_ = 0;
  int64_t subtrees_skipped_ = 0;
  int64_t error_offset_ = -1;
  bool saw_root_ = false;
  bool failed_ = false;
  StreamError stream_error_;
  std::string error_;
  std::vector<RecoveredError> recovered_errors_;
};

// Complete resumable state of a StreamingSelector at a Feed boundary; see
// StreamingSelector::SaveCheckpoint. Offsets stored here are absolute
// document positions — reusing a checkpoint recorded after an edit point
// means shifting them by the edit's net byte delta (the engine layer's
// rebase step). A checkpoint never stores recorder state: checkpointing
// is only offered with verdict-only sinks, whose emission buffer is
// always empty.
struct SelectorCheckpoint {
  // Machine configuration (StreamMachine::SaveConfig words; the stack tier
  // stores a retained pool-slot handle — release via ReleaseCheckpoint).
  std::vector<int64_t> machine_config;

  // Well-formedness validator: the open-element labels, bottom to top.
  std::vector<Symbol> open_labels;

  // Lexer (partial multi-byte token across the boundary).
  std::string tag_buf;
  bool in_tag = false;
  bool tag_first = false;
  bool tag_closing = false;
  bool have_pending = false;
  unsigned char pending_byte = 0;
  int64_t pending_offset = -1;
  int64_t tag_start = -1;

  // Recovery state.
  bool in_skip = false;
  int64_t skip_depth = 0;
  bool demoted = false;

  // Exact prefix counters (StreamStats minus the recorder-owned fields).
  int64_t bytes_fed = 0;
  int64_t chunks_fed = 0;
  int64_t events = 0;
  int64_t nodes = 0;
  int64_t matches = 0;
  int64_t depth = 0;
  int64_t errors_recovered = 0;
  int64_t subtrees_skipped = 0;
  int64_t error_offset = -1;
  bool saw_root = false;
  int64_t machine_underflows = 0;  // stack-tier underflow count at capture

  // Error history of the prefix: the first error plus every recovered one.
  StreamError stream_error;
  std::vector<StreamingSelector::RecoveredError> recovered;
};

}  // namespace sst

#endif  // SST_DRA_STREAMING_H_
