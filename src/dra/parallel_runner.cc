#include "dra/parallel_runner.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "base/byte_scan.h"
#include "base/check.h"

namespace sst {

namespace {

// Speculative chunk evaluation from every state. Survivor start states are
// stepped over the structural index (stage-1 SIMD scan extracts the
// positions once; all survivor walks replay the shared position buffer —
// the extraction cost is amortized across every trajectory); every
// `dedup_interval` bytes, start states whose trajectories have met are
// merged: the retiree records its parent and the count difference at merge
// time (their futures are identical from here on, so the final count of
// the retiree is its delta plus the parent's final count, following the
// chain across later merges). Skipping text bytes is sound for EVERY start
// state at once exactly when the table's text-run closure is trivial
// (whitespace self-loops and never counts) — the caller gates on
// ByteTagDfaRunner::text_run_trivial(); with use_index false the position
// buffer degenerates to every byte offset, which is the per-byte fallback
// (and parity reference) with unchanged iteration order.
template <typename T>
void RunFromAllStates(const T* table, const uint8_t* accepting,
                      int num_states, int dedup_interval, bool use_index,
                      std::string_view chunk, std::vector<int>* final_state,
                      std::vector<int64_t>* final_count) {
  std::vector<uint32_t> positions(chunk.size());
  size_t npos = chunk.size();
  if (use_index) {
    npos = ExtractStructural(chunk.data(), chunk.size(), positions.data());
  } else {
    std::iota(positions.begin(), positions.end(), 0u);
  }
  std::vector<int> cur(num_states);      // current state, per survivor
  std::vector<int64_t> cnt(num_states, 0);
  std::vector<int> reps(num_states);     // surviving start states
  std::iota(reps.begin(), reps.end(), 0);
  std::iota(cur.begin(), cur.end(), 0);
  std::vector<int> parent(num_states, -1);
  std::vector<int64_t> delta(num_states, 0);
  std::vector<int> owner(num_states, -1);  // dedup scratch, keyed by state
  std::vector<int> survivors;

  // Dedup intervals stay measured in document bytes (not structural
  // bytes), so merge points land where the per-byte variant would put
  // them; the fold result is interval-invariant either way.
  const size_t interval =
      dedup_interval <= 0 ? chunk.size() : static_cast<size_t>(dedup_interval);
  size_t pos = 0;
  size_t pi = 0;  // cursor into the shared position buffer
  while (pos < chunk.size()) {
    if (reps.size() == 1) {
      // Fully converged: one trajectory left, run it at sequential cost.
      int s = reps[0];
      int q = cur[s];
      int64_t c = cnt[s];
      for (; pi < npos; ++pi) {
        unsigned char byte = static_cast<unsigned char>(chunk[positions[pi]]);
        q = table[static_cast<size_t>(q) * 256 + byte];
        c += static_cast<int64_t>((byte >= 'a') & (byte <= 'z') &
                                  accepting[q]);
      }
      cur[s] = q;
      cnt[s] = c;
      pos = chunk.size();
      break;
    }
    size_t end = std::min(pos + interval, chunk.size());
    if (reps.size() == 2) {
      // The common steady state: two trajectories that never meet (e.g.
      // matched-context vs not). Keep both in registers.
      int s0 = reps[0], s1 = reps[1];
      int q0 = cur[s0], q1 = cur[s1];
      int64_t c0 = cnt[s0], c1 = cnt[s1];
      for (; pi < npos && positions[pi] < end; ++pi) {
        unsigned char byte = static_cast<unsigned char>(chunk[positions[pi]]);
        int64_t open = (byte >= 'a') & (byte <= 'z');
        q0 = table[static_cast<size_t>(q0) * 256 + byte];
        q1 = table[static_cast<size_t>(q1) * 256 + byte];
        c0 += open & accepting[q0];
        c1 += open & accepting[q1];
      }
      cur[s0] = q0;
      cur[s1] = q1;
      cnt[s0] = c0;
      cnt[s1] = c1;
    } else {
      for (; pi < npos && positions[pi] < end; ++pi) {
        unsigned char byte = static_cast<unsigned char>(chunk[positions[pi]]);
        int64_t open = (byte >= 'a') & (byte <= 'z');
        for (int s : reps) {
          int q = table[static_cast<size_t>(cur[s]) * 256 + byte];
          cur[s] = q;
          cnt[s] += open & accepting[q];
        }
      }
    }
    pos = end;
    // Merge survivors that reached the same state.
    survivors.clear();
    for (int s : reps) {
      int q = cur[s];
      if (owner[q] < 0) {
        owner[q] = s;
        survivors.push_back(s);
      } else {
        parent[s] = owner[q];
        delta[s] = cnt[s] - cnt[owner[q]];
      }
    }
    for (int s : survivors) owner[cur[s]] = -1;
    reps.swap(survivors);
  }

  final_state->resize(num_states);
  final_count->resize(num_states);
  for (int s = 0; s < num_states; ++s) {
    int64_t extra = 0;
    int r = s;
    while (parent[r] >= 0) {
      extra += delta[r];
      r = parent[r];
    }
    (*final_state)[s] = cur[r];
    (*final_count)[s] = cnt[r] + extra;
  }
}

// Context-free per-chunk validation summary for RunValidated. Computed
// speculatively (no knowledge of entry depth, entry labels, or entry
// event count); the fold threads the real context through it.
struct ChunkAudit {
  // Absolute offset of the first error decidable without context (junk
  // byte, unknown letter, or a close mismatching an open *within* the
  // chunk); -1 if none. Scanning stops there.
  int64_t local_error = -1;
  // Closing labels that pop below the chunk-local stack, in order. These
  // occur exactly at the chunk's running net-depth minima; the fold checks
  // them against the enclosing open labels.
  std::vector<Symbol> unmatched_closes;
  // Opening labels still open at chunk end, bottom to top.
  std::vector<Symbol> unmatched_opens;
  // opens_at_net[d] = how many opens (clamped to 2) fired while the net
  // depth relative to chunk entry was exactly -d. The fold reads entry d =
  // entry_depth to detect content after the root closed: the root chunk
  // legitimately opens once at net 0, so the clamp distinguishes "first
  // root" from "reopen".
  std::vector<uint8_t> opens_at_net;
  int64_t max_net = 0;    // peak net depth relative to entry
  int64_t net = 0;        // net depth delta over the chunk
  int64_t letters = 0;    // tag events in the chunk
  int64_t opens = 0;      // opening tags in the chunk
};

ChunkAudit AuditChunk(const ByteTagDfaRunner& runner, std::string_view chunk,
                      int64_t lo) {
  ChunkAudit audit;
  std::vector<Symbol> local;
  // Whitespace contributes nothing to the audit (no depth motion, no
  // letters, no errors), so the structural index drives the scan.
  StructuralIterator structural(chunk.data(), chunk.size());
  for (size_t i = structural.Next(); i < chunk.size();
       i = structural.Next()) {
    unsigned char byte = static_cast<unsigned char>(chunk[i]);
    if (byte >= 'a' && byte <= 'z') {
      Symbol s = runner.byte_symbol(byte);
      if (s < 0) {
        audit.local_error = lo + static_cast<int64_t>(i);
        break;
      }
      if (audit.net <= 0) {
        size_t level = static_cast<size_t>(-audit.net);
        if (level >= audit.opens_at_net.size()) {
          audit.opens_at_net.resize(level + 1, 0);
        }
        if (audit.opens_at_net[level] < 2) ++audit.opens_at_net[level];
      }
      local.push_back(s);
      ++audit.net;
      if (audit.net > audit.max_net) audit.max_net = audit.net;
      ++audit.letters;
      ++audit.opens;
      continue;
    }
    if (byte >= 'A' && byte <= 'Z') {
      Symbol s = runner.byte_symbol(byte);
      if (s < 0) {
        audit.local_error = lo + static_cast<int64_t>(i);
        break;
      }
      if (local.empty()) {
        audit.unmatched_closes.push_back(s);
      } else if (local.back() != s) {
        audit.local_error = lo + static_cast<int64_t>(i);
        break;
      } else {
        local.pop_back();
      }
      --audit.net;
      ++audit.letters;
      continue;
    }
    audit.local_error = lo + static_cast<int64_t>(i);
    break;
  }
  audit.unmatched_opens = std::move(local);
  return audit;
}

// Fold-side context of the validated run: everything the sequential
// validator would know at a chunk boundary.
struct ValidateContext {
  int state = 0;
  int64_t depth = 0;
  std::vector<Symbol> open_letters;
  bool saw_root = false;
  int64_t events = 0;
  int64_t nodes = 0;
  int64_t matches = 0;
  int64_t max_depth = 0;
};

// Sequential validation of one chunk from full context — run only on the
// chunk flagged as containing the first error (and authoritative for it).
// Mirrors ByteTagDfaRunner::RunValidated's per-byte check order exactly.
// Returns false with *err set when the chunk errors.
bool ValidateChunkSequential(const ByteTagDfaRunner& runner,
                             std::string_view chunk, int64_t lo,
                             const StreamLimits& limits, ValidateContext* ctx,
                             StreamError* err) {
  auto fail = [&](StreamErrorCode code, int64_t offset, Symbol expected,
                  Symbol got) {
    err->code = code;
    err->offset = offset;
    err->depth = ctx->depth;
    err->expected = expected;
    err->got = got;
    return false;
  };
  // Structural-index iteration, same argument as the sequential
  // validators: whitespace is identity for validation, so the first error
  // and every partial counter are byte-identical to the per-byte scan.
  StructuralIterator structural(chunk.data(), chunk.size());
  for (size_t i = structural.Next(); i < chunk.size();
       i = structural.Next()) {
    unsigned char byte = static_cast<unsigned char>(chunk[i]);
    int64_t offset = lo + static_cast<int64_t>(i);
    if (byte >= 'a' && byte <= 'z') {
      Symbol s = runner.byte_symbol(byte);
      if (s < 0) return fail(StreamErrorCode::kUnknownLabel, offset, -1, -1);
      if (ctx->depth == 0 && ctx->saw_root) {
        return fail(StreamErrorCode::kTrailingContent, offset, -1, s);
      }
      if (ctx->depth >= limits.max_depth) {
        return fail(StreamErrorCode::kDepthLimitExceeded, offset, -1, s);
      }
      if (ctx->events >= limits.max_events) {
        return fail(StreamErrorCode::kEventLimitExceeded, offset, -1, -1);
      }
      ctx->saw_root = true;
      ++ctx->depth;
      if (ctx->depth > ctx->max_depth) ctx->max_depth = ctx->depth;
      ctx->open_letters.push_back(s);
      ctx->state = runner.Next(ctx->state, byte);
      ++ctx->events;
      if (runner.IsAccepting(ctx->state)) ++ctx->matches;
      ++ctx->nodes;
      continue;
    }
    if (byte >= 'A' && byte <= 'Z') {
      Symbol s = runner.byte_symbol(byte);
      if (s < 0) return fail(StreamErrorCode::kUnknownLabel, offset, -1, -1);
      if (ctx->open_letters.empty()) {
        return fail(StreamErrorCode::kUnbalancedClose, offset, -1, s);
      }
      if (ctx->open_letters.back() != s) {
        return fail(StreamErrorCode::kLabelMismatch, offset,
                    ctx->open_letters.back(), s);
      }
      if (ctx->events >= limits.max_events) {
        return fail(StreamErrorCode::kEventLimitExceeded, offset, -1, -1);
      }
      ctx->open_letters.pop_back();
      --ctx->depth;
      ctx->state = runner.Next(ctx->state, byte);
      ++ctx->events;
      continue;
    }
    return fail(StreamErrorCode::kBadByte, offset, -1, -1);
  }
  return true;
}

// True when, given the entry context, the chunk's audit cannot rule out
// that the run's first error is inside this chunk. Complete (no false
// negatives); a flagged chunk is re-validated sequentially, so spurious
// flags cost time, never correctness.
bool AuditSuspicious(const ChunkAudit& audit, const ValidateContext& ctx,
                     const StreamLimits& limits) {
  if (audit.local_error >= 0) return true;
  // Closes below the chunk entry: underflow or label mismatch against the
  // enclosing opens.
  if (static_cast<int64_t>(audit.unmatched_closes.size()) > ctx.depth) {
    return true;
  }
  for (size_t j = 0; j < audit.unmatched_closes.size(); ++j) {
    Symbol expected =
        ctx.open_letters[ctx.open_letters.size() - 1 - j];
    if (expected != audit.unmatched_closes[j]) return true;
  }
  // An open while the global depth sits at 0 is content after the root —
  // except the very first open of the document.
  size_t level = static_cast<size_t>(ctx.depth);
  uint8_t reopens = level < audit.opens_at_net.size()
                        ? audit.opens_at_net[level]
                        : 0;
  if (ctx.depth > 0 || ctx.saw_root) {
    if (reopens >= 1) return true;
  } else if (reopens >= 2) {
    return true;
  }
  if (ctx.depth + audit.max_net > limits.max_depth) return true;
  if (ctx.events + audit.letters > limits.max_events) return true;
  return false;
}

template <typename T>
void RunFromState(const T* table, const uint8_t* accepting, bool use_index,
                  std::string_view chunk, int start, int* final_state,
                  int64_t* count) {
  int q = start;
  int64_t c = 0;
  if (use_index) {
    // Trivial text-run closure: whitespace gaps move neither state nor
    // count, so only structural bytes reach the table walk.
    ForEachStructural(chunk.data(), chunk.size(), [&](size_t i) {
      unsigned char byte = static_cast<unsigned char>(chunk[i]);
      q = table[static_cast<size_t>(q) * 256 + byte];
      c += static_cast<int64_t>((byte >= 'a') & (byte <= 'z') & accepting[q]);
    });
  } else {
    for (unsigned char byte : chunk) {
      q = table[static_cast<size_t>(q) * 256 + byte];
      c += static_cast<int64_t>((byte >= 'a') & (byte <= 'z') & accepting[q]);
    }
  }
  *final_state = q;
  *count = c;
}

}  // namespace

ParallelTagDfaRunner::ParallelTagDfaRunner(const ByteTagDfaRunner* runner,
                                           ThreadPool* pool,
                                           int dedup_interval)
    : runner_(runner), pool_(pool), dedup_interval_(dedup_interval) {
  SST_CHECK(runner != nullptr);
}

void ParallelTagDfaRunner::RunChunkFromAll(std::string_view chunk,
                                           ChunkEffect* out) const {
  const bool use_index = runner_->text_run_trivial();
  if (runner_->uses_compact_table()) {
    RunFromAllStates(runner_->table16(), runner_->accepting_bytes(),
                     runner_->num_states(), dedup_interval_, use_index, chunk,
                     &out->final_state, &out->count);
  } else {
    RunFromAllStates(runner_->table32(), runner_->accepting_bytes(),
                     runner_->num_states(), dedup_interval_, use_index, chunk,
                     &out->final_state, &out->count);
  }
}

void ParallelTagDfaRunner::RunChunkFrom(std::string_view chunk, int start,
                                        int* final_state,
                                        int64_t* count) const {
  const bool use_index = runner_->text_run_trivial();
  if (runner_->uses_compact_table()) {
    RunFromState(runner_->table16(), runner_->accepting_bytes(), use_index,
                 chunk, start, final_state, count);
  } else {
    RunFromState(runner_->table32(), runner_->accepting_bytes(), use_index,
                 chunk, start, final_state, count);
  }
}

ParallelTagDfaRunner::Result ParallelTagDfaRunner::Run(std::string_view bytes,
                                                       int num_chunks) const {
  Result result;
  result.final_state = runner_->initial_state();
  if (bytes.empty()) {
    result.chunks = 0;
    return result;
  }
  size_t n = bytes.size();
  size_t chunks = std::clamp<size_t>(num_chunks, 1, n);
  result.chunks = static_cast<int>(chunks);
  if (chunks == 1) {
    RunChunkFrom(bytes, result.final_state, &result.final_state,
                 &result.selections);
    return result;
  }

  // Chunk 0 starts from the known initial state (sequential cost); chunks
  // 1..K-1 are speculative.
  int chunk0_state = 0;
  int64_t chunk0_count = 0;
  std::vector<ChunkEffect> effects(chunks - 1);
  auto boundary = [n, chunks](size_t k) { return k * n / chunks; };
  auto work = [&](int k) {
    size_t lo = boundary(k);
    size_t hi = boundary(k + 1);
    std::string_view chunk = bytes.substr(lo, hi - lo);
    if (k == 0) {
      RunChunkFrom(chunk, runner_->initial_state(), &chunk0_state,
                   &chunk0_count);
    } else {
      RunChunkFromAll(chunk, &effects[k - 1]);
    }
  };
  if (pool_ != nullptr) {
    pool_->Run(static_cast<int>(chunks), work);
  } else {
    for (size_t k = 0; k < chunks; ++k) work(static_cast<int>(k));
  }

  // Left-to-right fold of the chunk effects along the realized trajectory.
  int state = chunk0_state;
  int64_t total = chunk0_count;
  for (const ChunkEffect& effect : effects) {
    total += effect.count[state];
    state = effect.final_state[state];
  }
  result.final_state = state;
  result.selections = total;
  return result;
}

ValidatedRun ParallelTagDfaRunner::RunValidated(
    std::string_view bytes, int num_chunks, const StreamLimits& limits) const {
  ValidatedRun run;
  ValidateContext ctx;
  ctx.state = runner_->initial_state();
  // Byte guard as a prefix split, exactly like the sequential validator:
  // the error fires at offset max_document_bytes iff the prefix is clean.
  const bool over_byte_limit =
      static_cast<int64_t>(bytes.size()) > limits.max_document_bytes;
  std::string_view scan =
      over_byte_limit
          ? bytes.substr(0, static_cast<size_t>(limits.max_document_bytes))
          : bytes;
  const size_t n = scan.size();
  const size_t chunks = n == 0 ? 0 : std::clamp<size_t>(num_chunks, 1, n);
  auto boundary = [n, chunks](size_t k) { return k * n / chunks; };

  // Per-chunk state effects and audits, both context-free, in parallel.
  // Chunk 0's entry state is known, so its effect is a plain run.
  int chunk0_state = ctx.state;
  int64_t chunk0_count = 0;
  std::vector<ChunkEffect> effects(chunks > 0 ? chunks - 1 : 0);
  std::vector<ChunkAudit> audits(chunks);
  auto work = [&](int k) {
    size_t lo = boundary(k);
    size_t hi = boundary(k + 1);
    std::string_view chunk = scan.substr(lo, hi - lo);
    audits[k] = AuditChunk(*runner_, chunk, static_cast<int64_t>(lo));
    if (k == 0) {
      RunChunkFrom(chunk, runner_->initial_state(), &chunk0_state,
                   &chunk0_count);
    } else {
      RunChunkFromAll(chunk, &effects[k - 1]);
    }
  };
  if (chunks > 1 && pool_ != nullptr) {
    pool_->Run(static_cast<int>(chunks), work);
  } else {
    for (size_t k = 0; k < chunks; ++k) work(static_cast<int>(k));
  }

  // Left-to-right fold: thread the real entry context through the audits;
  // the first chunk the audit cannot clear is re-validated sequentially
  // (authoritative for the error byte and the partial counters).
  for (size_t k = 0; k < chunks; ++k) {
    const ChunkAudit& audit = audits[k];
    size_t lo = boundary(k);
    size_t hi = boundary(k + 1);
    if (AuditSuspicious(audit, ctx, limits)) {
      std::string_view chunk = scan.substr(lo, hi - lo);
      if (!ValidateChunkSequential(*runner_, chunk, static_cast<int64_t>(lo),
                                   limits, &ctx, &run.error)) {
        run.nodes = ctx.nodes;
        run.events = ctx.events;
        run.max_depth = ctx.max_depth;
        run.matches = ctx.matches;
        run.final_state = ctx.state;
        return run;
      }
      continue;  // spurious flag: the chunk was clean after all
    }
    // Clean chunk: apply its effect to the context wholesale.
    if (ctx.depth + audit.max_net > ctx.max_depth) {
      ctx.max_depth = ctx.depth + audit.max_net;
    }
    for (size_t j = 0; j < audit.unmatched_closes.size(); ++j) {
      ctx.open_letters.pop_back();
    }
    ctx.open_letters.insert(ctx.open_letters.end(),
                            audit.unmatched_opens.begin(),
                            audit.unmatched_opens.end());
    ctx.depth += audit.net;
    ctx.events += audit.letters;
    ctx.nodes += audit.opens;
    if (audit.opens > 0) ctx.saw_root = true;
    if (k == 0) {
      ctx.matches += chunk0_count;
      ctx.state = chunk0_state;
    } else {
      const ChunkEffect& effect = effects[k - 1];
      ctx.matches += effect.count[ctx.state];
      ctx.state = effect.final_state[ctx.state];
    }
  }

  run.nodes = ctx.nodes;
  run.events = ctx.events;
  run.max_depth = ctx.max_depth;
  run.matches = ctx.matches;
  run.final_state = ctx.state;
  if (over_byte_limit) {
    run.error.code = StreamErrorCode::kByteLimitExceeded;
    run.error.offset = limits.max_document_bytes;
    run.error.depth = ctx.depth;
  } else if (!ctx.saw_root || ctx.depth != 0) {
    run.error.code = StreamErrorCode::kTruncatedDocument;
    run.error.offset = static_cast<int64_t>(bytes.size());
    run.error.depth = ctx.depth;
  }
  return run;
}

}  // namespace sst
