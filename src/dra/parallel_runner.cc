#include "dra/parallel_runner.h"

#include <algorithm>
#include <numeric>

#include "base/check.h"

namespace sst {

namespace {

// Speculative chunk evaluation from every state. Survivor start states are
// stepped byte by byte; every `dedup_interval` bytes, start states whose
// trajectories have met are merged: the retiree records its parent and the
// count difference at merge time (their futures are identical from here
// on, so the final count of the retiree is its delta plus the parent's
// final count, following the chain across later merges).
template <typename T>
void RunFromAllStates(const T* table, const uint8_t* accepting,
                      int num_states, int dedup_interval,
                      std::string_view chunk, std::vector<int>* final_state,
                      std::vector<int64_t>* final_count) {
  std::vector<int> cur(num_states);      // current state, per survivor
  std::vector<int64_t> cnt(num_states, 0);
  std::vector<int> reps(num_states);     // surviving start states
  std::iota(reps.begin(), reps.end(), 0);
  std::iota(cur.begin(), cur.end(), 0);
  std::vector<int> parent(num_states, -1);
  std::vector<int64_t> delta(num_states, 0);
  std::vector<int> owner(num_states, -1);  // dedup scratch, keyed by state
  std::vector<int> survivors;

  const size_t interval =
      dedup_interval <= 0 ? chunk.size() : static_cast<size_t>(dedup_interval);
  size_t pos = 0;
  while (pos < chunk.size()) {
    if (reps.size() == 1) {
      // Fully converged: one trajectory left, run it at sequential cost.
      int s = reps[0];
      int q = cur[s];
      int64_t c = cnt[s];
      for (size_t i = pos; i < chunk.size(); ++i) {
        unsigned char byte = static_cast<unsigned char>(chunk[i]);
        q = table[static_cast<size_t>(q) * 256 + byte];
        c += static_cast<int64_t>((byte >= 'a') & (byte <= 'z') &
                                  accepting[q]);
      }
      cur[s] = q;
      cnt[s] = c;
      pos = chunk.size();
      break;
    }
    size_t end = std::min(pos + interval, chunk.size());
    if (reps.size() == 2) {
      // The common steady state: two trajectories that never meet (e.g.
      // matched-context vs not). Keep both in registers.
      int s0 = reps[0], s1 = reps[1];
      int q0 = cur[s0], q1 = cur[s1];
      int64_t c0 = cnt[s0], c1 = cnt[s1];
      for (size_t i = pos; i < end; ++i) {
        unsigned char byte = static_cast<unsigned char>(chunk[i]);
        int64_t open = (byte >= 'a') & (byte <= 'z');
        q0 = table[static_cast<size_t>(q0) * 256 + byte];
        q1 = table[static_cast<size_t>(q1) * 256 + byte];
        c0 += open & accepting[q0];
        c1 += open & accepting[q1];
      }
      cur[s0] = q0;
      cur[s1] = q1;
      cnt[s0] = c0;
      cnt[s1] = c1;
    } else {
      for (size_t i = pos; i < end; ++i) {
        unsigned char byte = static_cast<unsigned char>(chunk[i]);
        int64_t open = (byte >= 'a') & (byte <= 'z');
        for (int s : reps) {
          int q = table[static_cast<size_t>(cur[s]) * 256 + byte];
          cur[s] = q;
          cnt[s] += open & accepting[q];
        }
      }
    }
    pos = end;
    // Merge survivors that reached the same state.
    survivors.clear();
    for (int s : reps) {
      int q = cur[s];
      if (owner[q] < 0) {
        owner[q] = s;
        survivors.push_back(s);
      } else {
        parent[s] = owner[q];
        delta[s] = cnt[s] - cnt[owner[q]];
      }
    }
    for (int s : survivors) owner[cur[s]] = -1;
    reps.swap(survivors);
  }

  final_state->resize(num_states);
  final_count->resize(num_states);
  for (int s = 0; s < num_states; ++s) {
    int64_t extra = 0;
    int r = s;
    while (parent[r] >= 0) {
      extra += delta[r];
      r = parent[r];
    }
    (*final_state)[s] = cur[r];
    (*final_count)[s] = cnt[r] + extra;
  }
}

template <typename T>
void RunFromState(const T* table, const uint8_t* accepting,
                  std::string_view chunk, int start, int* final_state,
                  int64_t* count) {
  int q = start;
  int64_t c = 0;
  for (unsigned char byte : chunk) {
    q = table[static_cast<size_t>(q) * 256 + byte];
    c += static_cast<int64_t>((byte >= 'a') & (byte <= 'z') & accepting[q]);
  }
  *final_state = q;
  *count = c;
}

}  // namespace

ParallelTagDfaRunner::ParallelTagDfaRunner(const ByteTagDfaRunner* runner,
                                           ThreadPool* pool,
                                           int dedup_interval)
    : runner_(runner), pool_(pool), dedup_interval_(dedup_interval) {
  SST_CHECK(runner != nullptr);
}

void ParallelTagDfaRunner::RunChunkFromAll(std::string_view chunk,
                                           ChunkEffect* out) const {
  if (runner_->uses_compact_table()) {
    RunFromAllStates(runner_->table16(), runner_->accepting_bytes(),
                     runner_->num_states(), dedup_interval_, chunk,
                     &out->final_state, &out->count);
  } else {
    RunFromAllStates(runner_->table32(), runner_->accepting_bytes(),
                     runner_->num_states(), dedup_interval_, chunk,
                     &out->final_state, &out->count);
  }
}

void ParallelTagDfaRunner::RunChunkFrom(std::string_view chunk, int start,
                                        int* final_state,
                                        int64_t* count) const {
  if (runner_->uses_compact_table()) {
    RunFromState(runner_->table16(), runner_->accepting_bytes(), chunk, start,
                 final_state, count);
  } else {
    RunFromState(runner_->table32(), runner_->accepting_bytes(), chunk, start,
                 final_state, count);
  }
}

ParallelTagDfaRunner::Result ParallelTagDfaRunner::Run(std::string_view bytes,
                                                       int num_chunks) const {
  Result result;
  result.final_state = runner_->initial_state();
  if (bytes.empty()) {
    result.chunks = 0;
    return result;
  }
  size_t n = bytes.size();
  size_t chunks = std::clamp<size_t>(num_chunks, 1, n);
  result.chunks = static_cast<int>(chunks);
  if (chunks == 1) {
    RunChunkFrom(bytes, result.final_state, &result.final_state,
                 &result.selections);
    return result;
  }

  // Chunk 0 starts from the known initial state (sequential cost); chunks
  // 1..K-1 are speculative.
  int chunk0_state = 0;
  int64_t chunk0_count = 0;
  std::vector<ChunkEffect> effects(chunks - 1);
  auto boundary = [n, chunks](size_t k) { return k * n / chunks; };
  auto work = [&](int k) {
    size_t lo = boundary(k);
    size_t hi = boundary(k + 1);
    std::string_view chunk = bytes.substr(lo, hi - lo);
    if (k == 0) {
      RunChunkFrom(chunk, runner_->initial_state(), &chunk0_state,
                   &chunk0_count);
    } else {
      RunChunkFromAll(chunk, &effects[k - 1]);
    }
  };
  if (pool_ != nullptr) {
    pool_->Run(static_cast<int>(chunks), work);
  } else {
    for (size_t k = 0; k < chunks; ++k) work(static_cast<int>(k));
  }

  // Left-to-right fold of the chunk effects along the realized trajectory.
  int state = chunk0_state;
  int64_t total = chunk0_count;
  for (const ChunkEffect& effect : effects) {
    total += effect.count[state];
    state = effect.final_state[state];
  }
  result.final_state = state;
  result.selections = total;
  return result;
}

}  // namespace sst
