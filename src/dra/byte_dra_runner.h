#ifndef SST_DRA_BYTE_DRA_RUNNER_H_
#define SST_DRA_BYTE_DRA_RUNNER_H_

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "automata/alphabet.h"
#include "base/match_sink.h"
#include "dra/dra.h"
#include "dra/machine.h"
#include "dra/stream_error.h"

namespace sst {

// Byte-level fused execution of a *restricted* DRA over the compact markup
// serialization ('a'..'z' opening tags, 'A'..'Z' closing tags): the
// stackless analogue of ByteTagDfaRunner, closing the gap between the
// paper's Lemma 3.8 evaluators and the Section 4.3 byte-table regime. The
// depth counter, the <= Dra::kMaxRegisters depth registers, and the 3^r
// comparison code are all resolved inside the scan loop — no virtual
// dispatch, no per-event heap traffic.
//
// Restrictedness (Section 2.2) is what makes the fusion cheap. In a
// restricted DRA every transition reloads each register reading strictly
// greater than the new depth, so by induction every reachable
// configuration satisfies "all registers <= depth" — on ANY byte
// sequence, not just well-formed ones. Hence:
//   * opening tags raise the depth above every register: the comparison
//     code is identically 0 (all kLess). The open half of the table is
//     stored with the code dimension collapsed away — the "comparison
//     outcome precomputed per byte class".
//   * closing tags lower the depth by one, so each register digit is
//     computed branch-free as (reg >= depth) + (reg > depth) after the
//     decrement (kGreater can only mean reg == depth + 1).
//
// The (state, open/close, symbol, code) -> action table is flattened to
// the same compact storage ByteTagDfaRunner uses: uint16_t next-state
// entries when the DRA has fewer than 65536 states (int32_t otherwise),
// plus a parallel uint16_t load-mask array (<= kMaxRegisters bits) applied
// with a ctz walk. Rows are laid out open-major:
//   open:  [state * num_symbols + symbol]                      (code == 0)
//   close: [(state * num_symbols + symbol) * 3^r + code]
class ByteDraRunner {
 public:
  // Label-driven convention, matching ByteTagDfaRunner: each symbol of
  // `dra` opens as its single lowercase-letter label in `alphabet` and
  // closes as the uppercase form. Requires IsRestricted(*dra); `dra` is
  // borrowed and must outlive the runner.
  ByteDraRunner(const Dra* dra, const Alphabet& alphabet);

  // Streams the bytes; returns the number of pre-selected nodes (acceptance
  // sampled after every opening byte 'a'..'z'). Bytes that are no known tag
  // letter self-loop and leave the configuration untouched; unknown
  // *lowercase* letters still sample acceptance — ByteTagDfaRunner parity.
  // Runs over the SIMD structural index: whitespace gaps are skipped in
  // bulk (sound unconditionally here — see text_run_trivial()).
  int64_t CountSelections(std::string_view bytes) const;

  // Per-byte reference loop (no structural index): the oracle the parity
  // tests diff the indexed path against.
  int64_t CountSelectionsPerByte(std::string_view bytes) const;

  // CountSelections with byte-span position tracking: every pre-selected
  // node becomes a MatchEvent (query_id 0) in `sink`, emitted just past
  // its opening letter (the earliest certain offset) and completed at the
  // matching close; see ByteTagDfaRunner::CollectMatches for the exact
  // semantics (framing depth counter, truncated spans, `max_pending`
  // bound). Indexed walk is sound unconditionally here
  // (text_run_trivial()); CollectMatchesPerByte is the per-byte oracle.
  int64_t CollectMatches(std::string_view bytes, MatchSink* sink,
                         int64_t max_pending = MatchRecorder::kUnlimited)
      const;
  int64_t CollectMatchesPerByte(std::string_view bytes, MatchSink* sink,
                                int64_t max_pending =
                                    MatchRecorder::kUnlimited) const;

  // Text-run closure of this runner, trivially: a whitespace byte is
  // neither an opening nor a closing letter, so Next() leaves the
  // configuration untouched (identity fixpoint) and the sampling predicate
  // ('a'..'z' only) never counts it (zero coefficient). Unlike
  // ByteTagDfaRunner there is no 256-wide row that could disagree — text
  // bytes never index the table at all — so the closure is exact and
  // trivial by construction for every DRA.
  bool text_run_trivial() const { return true; }

  // Final-configuration acceptance after the whole stream.
  bool Accepts(std::string_view bytes) const;

  // Well-formedness-validated whole-document run with StreamingSelector's
  // fail-fast compact-markup semantics: same first StreamError at the
  // same byte offset, same partial counters (see ByteTagDfaRunner).
  ValidatedRun RunValidated(std::string_view bytes,
                            const StreamLimits& limits = {}) const;

  // Configuration reached from the initial configuration.
  DraConfig FinalConfig(std::string_view bytes) const;

  // Incremental stepping for chunked scanners. The config is the caller's
  // per-stream state; the runner itself stays immutable and shareable.
  DraConfig InitialConfig() const;
  void Next(DraConfig* config, unsigned char byte) const {
    if (byte >= 'a' && byte <= 'z') {
      Symbol s = byte_symbol_[byte];
      if (s >= 0) StepOpen(config, s);
    } else if (byte >= 'A' && byte <= 'Z') {
      Symbol s = byte_symbol_[byte];
      if (s >= 0) StepClose(config, s);
    }
  }
  bool IsAccepting(int state) const { return accepting_[state] != 0; }

  // Symbol-level stepping for event-driven callers (the streaming
  // scanner's stepper, the mixed multi-query tier). The symbol must be in
  // [0, num_symbols).
  void StepOpen(DraConfig* config, Symbol symbol) const {
    ++config->depth;
    // Restricted invariant: every register <= old depth < new depth, so
    // the comparison code is 0 and the open row needs no code dimension.
    size_t index =
        static_cast<size_t>(config->state) * num_symbols_ + symbol;
    ApplyLoads(config, open_load_[index]);
    config->state = open_next16_.empty()
                        ? open_next32_[index]
                        : open_next16_[index];
  }
  void StepClose(DraConfig* config, Symbol symbol) const {
    const int64_t depth = --config->depth;
    int code = 0;
    for (int r = 0; r < num_registers_; ++r) {
      const int64_t reg = config->registers[static_cast<size_t>(r)];
      // Branch-free digit: kLess=0, kEqual=1, kGreater=2. Restrictedness
      // bounds every register by depth + 1, so the two comparisons cover
      // all reachable cases.
      code += (static_cast<int>(reg >= depth) + static_cast<int>(reg > depth)) *
              pow3_[static_cast<size_t>(r)];
    }
    size_t index =
        (static_cast<size_t>(config->state) * num_symbols_ + symbol) *
            num_codes_ +
        code;
    ApplyLoads(config, close_load_[index]);
    config->state = close_next16_.empty()
                        ? close_next32_[index]
                        : close_next16_[index];
  }

  // Symbol of an opening ('a'..'z') or closing ('A'..'Z') letter under the
  // label convention; -1 for any byte that is neither.
  Symbol byte_symbol(unsigned char byte) const { return byte_symbol_[byte]; }

  int num_states() const { return num_states_; }
  int num_registers() const { return num_registers_; }
  bool uses_compact_table() const { return !open_next16_.empty(); }
  const Dra* dra() const { return dra_; }

 private:
  template <typename T>
  void FillTables(std::vector<T>* open_next, std::vector<T>* close_next);

  void ApplyLoads(DraConfig* config, uint16_t load_mask) const {
    for (uint32_t mask = load_mask; mask != 0; mask &= mask - 1) {
#if defined(__GNUC__) || defined(__clang__)
      config->registers[static_cast<size_t>(__builtin_ctz(mask))] =
          config->depth;
#else
      uint32_t low = mask & (~mask + 1);
      int bit = 0;
      while ((low >> bit) != 1) ++bit;
      config->registers[static_cast<size_t>(bit)] = config->depth;
#endif
    }
  }

  const Dra* dra_;
  int num_states_;
  int num_symbols_;
  int num_registers_;
  int num_codes_;  // 3^num_registers_
  std::array<int, Dra::kMaxRegisters> pow3_{};

  // Open rows: num_states * num_symbols (code dimension collapsed to 0).
  // Close rows: num_states * num_symbols * num_codes. Exactly one of the
  // 16/32-bit pairs is populated, matching uses_compact_table().
  std::vector<uint16_t> open_next16_;
  std::vector<int32_t> open_next32_;
  std::vector<uint16_t> open_load_;
  std::vector<uint16_t> close_next16_;
  std::vector<int32_t> close_next32_;
  std::vector<uint16_t> close_load_;
  std::vector<uint8_t> accepting_;
  std::array<Symbol, 256> byte_symbol_;
};

}  // namespace sst

#endif  // SST_DRA_BYTE_DRA_RUNNER_H_
