#include "dra/dra.h"

#include <algorithm>
#include <utility>

#include "base/check.h"

namespace sst {

namespace {

int Pow3(int n) {
  int r = 1;
  for (int i = 0; i < n; ++i) r *= 3;
  return r;
}

}  // namespace

Dra Dra::Create(int num_states, int num_symbols, int num_registers) {
  SST_CHECK(num_registers >= 0 && num_registers <= kMaxRegisters);
  Dra dra;
  dra.num_states = num_states;
  dra.num_symbols = num_symbols;
  dra.num_registers = num_registers;
  dra.accepting.assign(num_states, false);
  dra.table.assign(static_cast<size_t>(num_states) * 2 * num_symbols *
                       Pow3(num_registers),
                   Action{});
  return dra;
}

int Dra::NumCmpCodes() const { return Pow3(num_registers); }

int Dra::CmpDigit(int cmp_code, int reg) {
  for (int i = 0; i < reg; ++i) cmp_code /= 3;
  return cmp_code % 3;
}

int Dra::WithCmpDigit(int cmp_code, int reg, int digit) {
  int place = 1;
  for (int i = 0; i < reg; ++i) place *= 3;
  int old = (cmp_code / place) % 3;
  return cmp_code + (digit - old) * place;
}

size_t Dra::Index(int state, bool is_close, Symbol symbol,
                  int cmp_code) const {
  return ((static_cast<size_t>(state) * 2 + (is_close ? 1 : 0)) *
              num_symbols +
          symbol) *
             NumCmpCodes() +
         cmp_code;
}

void Dra::SetAction(int state, bool is_close, Symbol symbol,
                    const std::vector<int>& cmp_pattern, uint32_t load_mask,
                    int next) {
  SST_CHECK(static_cast<int>(cmp_pattern.size()) == num_registers);
  for (int code = 0; code < NumCmpCodes(); ++code) {
    bool matches = true;
    for (int r = 0; r < num_registers && matches; ++r) {
      if (cmp_pattern[r] >= 0 && CmpDigit(code, r) != cmp_pattern[r]) {
        matches = false;
      }
    }
    if (matches) At(state, is_close, symbol, code) = Action{load_mask, next};
  }
}

bool IsRestricted(const Dra& dra) {
  for (int q = 0; q < dra.num_states; ++q) {
    for (int close = 0; close < 2; ++close) {
      for (Symbol a = 0; a < dra.num_symbols; ++a) {
        for (int code = 0; code < dra.NumCmpCodes(); ++code) {
          const Dra::Action& action = dra.At(q, close != 0, a, code);
          for (int r = 0; r < dra.num_registers; ++r) {
            if (Dra::CmpDigit(code, r) == Dra::kGreater &&
                (action.load_mask & (uint32_t{1} << r)) == 0) {
              return false;
            }
          }
        }
      }
    }
  }
  return true;
}

namespace {

template <typename AcceptFn>
Dra ProductDra(const Dra& a, const Dra& b, AcceptFn want) {
  SST_CHECK(a.num_symbols == b.num_symbols);
  const int ra = a.num_registers;
  const int rb = b.num_registers;
  SST_CHECK(ra + rb <= Dra::kMaxRegisters);
  Dra result = Dra::Create(a.num_states * b.num_states, a.num_symbols,
                           ra + rb);
  auto pack = [&](int p, int q) { return p * b.num_states + q; };
  result.initial = pack(a.initial, b.initial);
  const int codes_a = a.NumCmpCodes();
  const int codes_b = b.NumCmpCodes();
  for (int p = 0; p < a.num_states; ++p) {
    for (int q = 0; q < b.num_states; ++q) {
      int pq = pack(p, q);
      result.accepting[pq] = want(a.accepting[p], b.accepting[q]);
      for (int close = 0; close < 2; ++close) {
        for (Symbol s = 0; s < a.num_symbols; ++s) {
          for (int ca = 0; ca < codes_a; ++ca) {
            for (int cb = 0; cb < codes_b; ++cb) {
              // Combined code: a's registers are the low digits.
              int code = ca + cb * codes_a;
              const Dra::Action& act_a = a.At(p, close != 0, s, ca);
              const Dra::Action& act_b = b.At(q, close != 0, s, cb);
              uint32_t mask = act_a.load_mask |
                              (act_b.load_mask << ra);
              result.At(pq, close != 0, s, code) =
                  Dra::Action{mask, pack(act_a.next, act_b.next)};
            }
          }
        }
      }
    }
  }
  return result;
}

}  // namespace

Dra DraIntersection(const Dra& a, const Dra& b) {
  return ProductDra(a, b, [](bool x, bool y) { return x && y; });
}

Dra DraUnion(const Dra& a, const Dra& b) {
  return ProductDra(a, b, [](bool x, bool y) { return x || y; });
}

Dra DraComplement(const Dra& a) {
  Dra result = a;
  for (int q = 0; q < result.num_states; ++q) {
    result.accepting[q] = !result.accepting[q];
  }
  return result;
}

Dra DraFromTagDfa(const TagDfa& dfa) {
  Dra dra = Dra::Create(dfa.num_states, dfa.num_symbols, 0);
  dra.initial = dfa.initial;
  for (int q = 0; q < dfa.num_states; ++q) {
    dra.accepting[q] = dfa.accepting[q];
    for (Symbol a = 0; a < dfa.num_symbols; ++a) {
      dra.At(q, false, a, 0) = Dra::Action{0, dfa.NextOpen(q, a)};
      dra.At(q, true, a, 0) = Dra::Action{0, dfa.NextClose(q, a)};
    }
  }
  return dra;
}

DraRunner::DraRunner(const Dra* dra) : dra_(dra) { Reset(); }

void DraRunner::Reset() {
  state_ = dra_->initial;
  depth_ = 0;
  registers_.assign(dra_->num_registers, 0);
}

DraConfig DraRunner::ExportedDraConfig() const {
  DraConfig config;
  config.state = state_;
  config.depth = depth_;
  for (int r = 0; r < dra_->num_registers; ++r) {
    config.registers[static_cast<size_t>(r)] = registers_[r];
  }
  return config;
}

void DraRunner::SyncExportedDraConfig(const DraConfig& config) {
  state_ = config.state;
  depth_ = config.depth;
  for (int r = 0; r < dra_->num_registers; ++r) {
    registers_[r] = config.registers[static_cast<size_t>(r)];
  }
}

bool DraRunner::SaveConfig(std::vector<int64_t>* out) {
  out->clear();
  out->push_back(state_);
  out->push_back(depth_);
  out->insert(out->end(), registers_.begin(), registers_.end());
  return true;
}

bool DraRunner::RestoreConfig(const std::vector<int64_t>& config) {
  if (config.size() != 2 + registers_.size()) return false;
  state_ = static_cast<int>(config[0]);
  depth_ = config[1];
  std::copy(config.begin() + 2, config.end(), registers_.begin());
  return true;
}

bool DraRunner::ConfigEqualsCurrent(const std::vector<int64_t>& config) const {
  if (config.size() != 2 + registers_.size()) return false;
  if (config[0] != state_ || config[1] != depth_) return false;
  return std::equal(config.begin() + 2, config.end(), registers_.begin());
}

void DraRunner::Step(Symbol symbol, bool is_close) {
  depth_ += is_close ? -1 : 1;
  int code = 0;
  int place = 1;
  for (int r = 0; r < dra_->num_registers; ++r) {
    int digit = registers_[r] < depth_   ? Dra::kLess
                : registers_[r] == depth_ ? Dra::kEqual
                                          : Dra::kGreater;
    code += digit * place;
    place *= 3;
  }
  const Dra::Action& action = dra_->At(state_, is_close, symbol, code);
  for (int r = 0; r < dra_->num_registers; ++r) {
    if (action.load_mask & (uint32_t{1} << r)) registers_[r] = depth_;
  }
  state_ = action.next;
}

}  // namespace sst
