#include "dra/machine.h"

namespace sst {

std::vector<bool> RunQuery(StreamMachine* machine,
                           const EventStream& events) {
  machine->Reset();
  std::vector<bool> selected;
  for (const TagEvent& event : events) {
    if (event.open) {
      machine->OnOpen(event.symbol);
      selected.push_back(machine->InAcceptingState());
    } else {
      machine->OnClose(event.symbol);
    }
  }
  return selected;
}

std::vector<bool> RunQueryOnTree(StreamMachine* machine, const Tree& tree,
                                 bool term_encoded) {
  EventStream events = Encode(tree);
  if (term_encoded) {
    for (TagEvent& event : events) {
      if (!event.open) event.symbol = -1;
    }
  }
  std::vector<bool> in_stream_order = RunQuery(machine, events);
  std::vector<int> order = tree.DocumentOrderIds();
  std::vector<bool> by_id(tree.size());
  for (size_t i = 0; i < order.size(); ++i) {
    by_id[order[i]] = in_stream_order[i];
  }
  return by_id;
}

bool RunAcceptor(StreamMachine* machine, const EventStream& events) {
  machine->Reset();
  for (const TagEvent& event : events) {
    if (event.open) {
      machine->OnOpen(event.symbol);
    } else {
      machine->OnClose(event.symbol);
    }
  }
  return machine->InAcceptingState();
}

}  // namespace sst
