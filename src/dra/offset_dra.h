#ifndef SST_DRA_OFFSET_DRA_H_
#define SST_DRA_OFFSET_DRA_H_

#include <optional>
#include <vector>

#include "dra/dra.h"
#include "dra/machine.h"

namespace sst {

// The Section 2.1 extension: "one could allow testing if the current depth
// differs from the content of a given register by a specified constant;
// this kind of test can be simulated in our model at the cost of using
// additional registers."
//
// An OffsetDra is a DRA whose register ξ with offset c is compared as
// sign(η(ξ) + c − d) instead of sign(η(ξ) − d): the comparison digit kEqual
// fires when the current depth sits exactly c levels *below* the stored
// depth's shifted threshold — e.g. offset 1 detects children of the pinned
// node (Example 2.7's machine is the canonical use).
//
// CompileOffsetDra realizes the paper's claim constructively: it produces a
// plain DRA over Σ(c_r + 1) registers. The shadow register (r, j) is
// loaded, while climbing, at the first moment the depth reaches η(r) + j
// (detected by one bit of finite control remembering whether the previous
// depth equalled the previous shadow); a not-yet-loaded shadow implies the
// depth has stayed below its threshold, so its digit is kGreater.
struct OffsetDra {
  Dra dra;                  // table; cmp digits are offset comparisons
  std::vector<int> offset;  // per register, >= 0 (0 = plain comparison)
};

// Reference semantics: runs the table with offsets applied directly.
class OffsetDraRunner final : public StreamMachine {
 public:
  explicit OffsetDraRunner(const OffsetDra* machine);

  void Reset() override;
  void OnOpen(Symbol symbol) override { Step(symbol, false); }
  void OnClose(Symbol symbol) override { Step(symbol, true); }
  bool InAcceptingState() const override {
    return machine_->dra.accepting[state_];
  }

 private:
  void Step(Symbol symbol, bool is_close);

  const OffsetDra* machine_;
  int state_;
  int64_t depth_;
  std::vector<int64_t> registers_;
};

// The simulation: an equivalent plain DRA (Definition 2.1). Returns
// nullopt if the control-state product exceeds `max_states` or the shadow
// registers exceed Dra::kMaxRegisters.
std::optional<Dra> CompileOffsetDra(const OffsetDra& machine, int max_states);

}  // namespace sst

#endif  // SST_DRA_OFFSET_DRA_H_
