#ifndef SST_DRA_TAG_DFA_H_
#define SST_DRA_TAG_DFA_H_

#include <memory>

#include "automata/alphabet.h"
#include "dra/machine.h"

namespace sst {

// A complete deterministic finite automaton over the tag alphabet Γ ∪ Γ̄
// (opening and closing tags). This is the registerless end of the paper's
// model spectrum: a depth-register automaton with Ξ = ∅ is a notational
// variant of a TagDfa (Section 2.1).
struct TagDfa {
  int num_states = 0;
  int num_symbols = 0;  // |Γ|; the tag alphabet has 2 * num_symbols letters
  int initial = 0;
  std::vector<int> next_open;   // num_states * num_symbols
  std::vector<int> next_close;  // num_states * num_symbols
  std::vector<bool> accepting;

  static TagDfa Create(int num_states, int num_symbols);

  int NextOpen(int q, Symbol a) const {
    return next_open[static_cast<size_t>(q) * num_symbols + a];
  }
  int NextClose(int q, Symbol a) const {
    return next_close[static_cast<size_t>(q) * num_symbols + a];
  }
  void SetNextOpen(int q, Symbol a, int to) {
    next_open[static_cast<size_t>(q) * num_symbols + a] = to;
  }
  void SetNextClose(int q, Symbol a, int to) {
    next_close[static_cast<size_t>(q) * num_symbols + a] = to;
  }

  // True if OnClose ignores the symbol, i.e. all close rows are constant
  // per state; required of machines run on the term encoding.
  bool ClosingSymbolInvariant() const;
};

// Lemma 2.4 (registerless closure): product and complement.
TagDfa TagDfaIntersection(const TagDfa& a, const TagDfa& b);
TagDfa TagDfaUnion(const TagDfa& a, const TagDfa& b);
TagDfa TagDfaComplement(const TagDfa& a);

// StreamMachine adapter running a TagDfa.
class TagDfaMachine final : public StreamMachine {
 public:
  explicit TagDfaMachine(const TagDfa* dfa) : dfa_(dfa), state_(dfa->initial) {}

  void Reset() override { state_ = dfa_->initial; }
  void OnOpen(Symbol symbol) override {
    state_ = dfa_->NextOpen(state_, symbol);
  }
  void OnClose(Symbol symbol) override {
    // Term-encoded streams pass -1; fall back to symbol 0, which is only
    // sound for automata satisfying ClosingSymbolInvariant().
    state_ = dfa_->NextClose(state_, symbol < 0 ? 0 : symbol);
  }
  bool InAcceptingState() const override { return dfa_->accepting[state_]; }

  const TagDfa* ExportTagDfa() const override { return dfa_; }
  int ExportedState() const override { return state_; }
  void SyncExportedState(int state) override { state_ = state; }

  // Checkpoint protocol: the registerless configuration is one word.
  bool SaveConfig(std::vector<int64_t>* out) override {
    out->assign(1, state_);
    return true;
  }
  bool RestoreConfig(const std::vector<int64_t>& config) override {
    if (config.size() != 1) return false;
    state_ = static_cast<int>(config[0]);
    return true;
  }
  bool ConfigEqualsCurrent(const std::vector<int64_t>& config) const override {
    return config.size() == 1 && config[0] == state_;
  }

  int state() const { return state_; }

 private:
  const TagDfa* dfa_;
  int state_;
};

}  // namespace sst

#endif  // SST_DRA_TAG_DFA_H_
