#include "dra/offset_dra.h"

#include <map>
#include <utility>

#include "base/check.h"

namespace sst {

OffsetDraRunner::OffsetDraRunner(const OffsetDra* machine)
    : machine_(machine) {
  SST_CHECK(static_cast<int>(machine_->offset.size()) ==
            machine_->dra.num_registers);
  Reset();
}

void OffsetDraRunner::Reset() {
  state_ = machine_->dra.initial;
  depth_ = 0;
  registers_.assign(machine_->dra.num_registers, 0);
}

void OffsetDraRunner::Step(Symbol symbol, bool is_close) {
  depth_ += is_close ? -1 : 1;
  int code = 0;
  int place = 1;
  for (int r = 0; r < machine_->dra.num_registers; ++r) {
    int64_t threshold = registers_[r] + machine_->offset[r];
    int digit = threshold < depth_   ? Dra::kLess
                : threshold == depth_ ? Dra::kEqual
                                      : Dra::kGreater;
    code += digit * place;
    place *= 3;
  }
  const Dra::Action& action =
      machine_->dra.At(state_, is_close, symbol, code);
  for (int r = 0; r < machine_->dra.num_registers; ++r) {
    if (action.load_mask & (uint32_t{1} << r)) registers_[r] = depth_;
  }
  state_ = action.next;
}

namespace {

// Compiled control: base state plus per-register chaining bookkeeping.
struct Control {
  int state;
  std::vector<int> loaded;     // highest shadow index loaded, per register
  std::vector<bool> was_equal;  // previous depth equalled shadow `loaded`

  auto Key() const {
    std::vector<int> key;
    key.push_back(state);
    for (size_t i = 0; i < loaded.size(); ++i) {
      key.push_back(loaded[i] * 2 + (was_equal[i] ? 1 : 0));
    }
    return key;
  }
};

}  // namespace

std::optional<Dra> CompileOffsetDra(const OffsetDra& machine,
                                    int max_states) {
  const Dra& base = machine.dra;
  const int original_registers = base.num_registers;
  SST_CHECK(static_cast<int>(machine.offset.size()) == original_registers);

  // Flat register layout: shadows of register r occupy
  // [flat_base[r], flat_base[r] + offset[r]]; shadow 0 is the base load.
  std::vector<int> flat_base(original_registers);
  int total = 0;
  for (int r = 0; r < original_registers; ++r) {
    SST_CHECK(machine.offset[r] >= 0);
    flat_base[r] = total;
    total += machine.offset[r] + 1;
  }
  if (total > Dra::kMaxRegisters) return std::nullopt;

  std::map<std::vector<int>, int> id;
  std::vector<Control> controls;
  auto intern = [&](const Control& control) {
    auto [it, inserted] =
        id.emplace(control.Key(), static_cast<int>(controls.size()));
    if (inserted) controls.push_back(control);
    return it->second;
  };

  Control start;
  start.state = base.initial;
  start.loaded.assign(original_registers, 0);
  // All registers hold 0 and the depth is 0: the previous depth equals
  // every base shadow.
  start.was_equal.assign(original_registers, true);
  intern(start);

  int num_codes = 1;
  for (int i = 0; i < total; ++i) num_codes *= 3;
  std::vector<Dra::Action> table;
  const int num_symbols = base.num_symbols;

  for (size_t index = 0; index < controls.size(); ++index) {
    if (static_cast<int>(controls.size()) > max_states) return std::nullopt;
    const Control current = controls[index];
    for (int close = 0; close < 2; ++close) {
      for (Symbol a = 0; a < num_symbols; ++a) {
        for (int code = 0; code < num_codes; ++code) {
          // Chaining happens logically *at* this event: an opening tag one
          // level above the top shadow extends the chain to the new depth,
          // and the comparison digits must already reflect it.
          std::vector<bool> chained(original_registers, false);
          int derived = 0;
          int place = 1;
          for (int r = 0; r < original_registers; ++r) {
            chained[r] = close == 0 && current.was_equal[r] &&
                         current.loaded[r] < machine.offset[r];
            int effective = current.loaded[r] + (chained[r] ? 1 : 0);
            int digit;
            if (chained[r]) {
              // The new depth is exactly η + effective.
              digit = effective == machine.offset[r] ? Dra::kEqual
                                                     : Dra::kGreater;
            } else if (effective == machine.offset[r]) {
              digit = Dra::CmpDigit(code,
                                    flat_base[r] + machine.offset[r]);
            } else {
              // Top shadow unloaded: the depth has stayed strictly below
              // the threshold since the base load.
              digit = Dra::kGreater;
            }
            derived += digit * place;
            place *= 3;
          }
          const Dra::Action& action =
              base.At(current.state, close != 0, a, derived);

          Control next = current;
          next.state = action.next;
          uint32_t load_mask = 0;
          for (int r = 0; r < original_registers; ++r) {
            if (action.load_mask & (uint32_t{1} << r)) {
              // Base load: restart the shadow chain at this depth.
              load_mask |= uint32_t{1} << flat_base[r];
              next.loaded[r] = 0;
              next.was_equal[r] = true;  // the shadow equals the new depth
              continue;
            }
            if (chained[r]) {
              next.loaded[r] = current.loaded[r] + 1;
              load_mask |= uint32_t{1} << (flat_base[r] + next.loaded[r]);
              next.was_equal[r] = true;
              continue;
            }
            next.was_equal[r] =
                Dra::CmpDigit(code, flat_base[r] + current.loaded[r]) ==
                Dra::kEqual;
          }
          table.push_back(Dra::Action{load_mask, intern(next)});
        }
      }
    }
  }

  Dra result = Dra::Create(static_cast<int>(controls.size()), num_symbols,
                           total);
  result.initial = 0;
  result.table = std::move(table);
  SST_CHECK(result.table.size() == static_cast<size_t>(result.num_states) *
                                       2 * num_symbols * num_codes);
  for (size_t i = 0; i < controls.size(); ++i) {
    result.accepting[i] = base.accepting[controls[i].state];
  }
  return result;
}

}  // namespace sst
