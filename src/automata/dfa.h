#ifndef SST_AUTOMATA_DFA_H_
#define SST_AUTOMATA_DFA_H_

#include <string>
#include <vector>

#include "automata/alphabet.h"

namespace sst {

// Complete deterministic finite automaton over symbols [0, num_symbols).
// All constructions in the library assume completeness (the paper's
// definitions are stated for complete deterministic automata); builders in
// this module always produce complete DFAs.
struct Dfa {
  int num_states = 0;
  int num_symbols = 0;
  int initial = 0;
  std::vector<int> next_table;  // num_states * num_symbols entries
  std::vector<bool> accepting;

  // Builds a DFA with every transition pointing at state 0.
  static Dfa Create(int num_states, int num_symbols);

  int Next(int state, Symbol a) const {
    return next_table[static_cast<size_t>(state) * num_symbols + a];
  }
  void SetNext(int state, Symbol a, int to) {
    next_table[static_cast<size_t>(state) * num_symbols + a] = to;
  }

  // State reached from `state` by `word` (paper notation: state · word).
  int Run(int state, const Word& word) const;

  bool Accepts(const Word& word) const {
    return accepting[Run(initial, word)];
  }

  // True if every transition targets a valid state.
  bool IsValid() const;

  // Human-readable dump for debugging and golden tests.
  std::string ToString(const Alphabet& alphabet) const;
};

// Language-level operations. Both operands must share num_symbols.
Dfa Complement(const Dfa& dfa);
Dfa Intersection(const Dfa& a, const Dfa& b);
Dfa UnionDfa(const Dfa& a, const Dfa& b);

// Restricts to states reachable from the initial state (preserves language).
Dfa Trim(const Dfa& dfa);

// True if the two DFAs accept the same language (product reachability).
bool EquivalentDfa(const Dfa& a, const Dfa& b);

// Finds a word accepted by exactly one of the two DFAs, or returns false if
// the languages coincide.
bool FindDistinguishingWord(const Dfa& a, const Dfa& b, Word* witness);

// Shortest word w such that from·w == to, via BFS; false if unreachable.
// If `nonempty` is set the word is required to have length >= 1.
bool FindConnectingWord(const Dfa& dfa, int from, int to, bool nonempty,
                        Word* word);

}  // namespace sst

#endif  // SST_AUTOMATA_DFA_H_
