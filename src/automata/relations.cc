#include "automata/relations.h"

#include <deque>
#include <utility>

#include "base/check.h"

namespace sst {

std::vector<bool> InternalStates(const Dfa& dfa) {
  std::vector<bool> internal(dfa.num_states, false);
  std::deque<int> queue;
  for (Symbol a = 0; a < dfa.num_symbols; ++a) {
    int succ = dfa.Next(dfa.initial, a);
    if (!internal[succ]) {
      internal[succ] = true;
      queue.push_back(succ);
    }
  }
  while (!queue.empty()) {
    int q = queue.front();
    queue.pop_front();
    for (Symbol a = 0; a < dfa.num_symbols; ++a) {
      int succ = dfa.Next(q, a);
      if (!internal[succ]) {
        internal[succ] = true;
        queue.push_back(succ);
      }
    }
  }
  return internal;
}

namespace {

std::vector<bool> CanReach(const Dfa& dfa, bool accepting_targets) {
  // Backward BFS from targets over inverse edges.
  std::vector<std::vector<int>> inverse(dfa.num_states);
  for (int q = 0; q < dfa.num_states; ++q) {
    for (Symbol a = 0; a < dfa.num_symbols; ++a) {
      inverse[dfa.Next(q, a)].push_back(q);
    }
  }
  std::vector<bool> can(dfa.num_states, false);
  std::deque<int> queue;
  for (int q = 0; q < dfa.num_states; ++q) {
    if (dfa.accepting[q] == accepting_targets) {
      can[q] = true;
      queue.push_back(q);
    }
  }
  while (!queue.empty()) {
    int q = queue.front();
    queue.pop_front();
    for (int p : inverse[q]) {
      if (!can[p]) {
        can[p] = true;
        queue.push_back(p);
      }
    }
  }
  return can;
}

}  // namespace

std::vector<bool> AcceptiveStates(const Dfa& dfa) {
  return CanReach(dfa, /*accepting_targets=*/true);
}

std::vector<bool> RejectiveStates(const Dfa& dfa) {
  return CanReach(dfa, /*accepting_targets=*/false);
}

bool AlmostEquivalentStates(const Dfa& minimal_dfa, int p, int q) {
  if (p == q) return true;
  for (Symbol a = 0; a < minimal_dfa.num_symbols; ++a) {
    if (minimal_dfa.Next(p, a) != minimal_dfa.Next(q, a)) return false;
  }
  return true;
}

PairReachability::PairReachability(const Dfa& dfa, bool blind)
    : dfa_(dfa), blind_(blind), n_(dfa.num_states) {
  const int k = dfa.num_symbols;
  inverse_.assign(static_cast<size_t>(n_) * k, {});
  for (int q = 0; q < n_; ++q) {
    for (Symbol a = 0; a < k; ++a) {
      inverse_[static_cast<size_t>(dfa.Next(q, a)) * k + a].push_back(q);
    }
  }
  if (blind_) {
    inverse_any_.assign(n_, {});
    std::vector<bool> seen(n_);
    for (int q = 0; q < n_; ++q) {
      seen.assign(n_, false);
      for (Symbol a = 0; a < k; ++a) {
        for (int p : inverse_[static_cast<size_t>(q) * k + a]) {
          if (!seen[p]) {
            seen[p] = true;
            inverse_any_[q].push_back(p);
          }
        }
      }
    }
  }
  std::vector<size_t> diagonal;
  diagonal.reserve(n_);
  for (int r = 0; r < n_; ++r) diagonal.push_back(PairKey(r, r));
  meets_ = BackwardFrom(diagonal);
}

std::vector<uint8_t> PairReachability::BackwardFrom(
    const std::vector<size_t>& seeds) const {
  const int k = dfa_.num_symbols;
  std::vector<uint8_t> reach(static_cast<size_t>(n_) * n_, 0);
  std::deque<size_t> queue;
  for (size_t s : seeds) {
    if (!reach[s]) {
      reach[s] = 1;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    size_t key = queue.front();
    queue.pop_front();
    int r = static_cast<int>(key / n_);
    int s = static_cast<int>(key % n_);
    if (blind_) {
      for (int p : inverse_any_[r]) {
        for (int q : inverse_any_[s]) {
          size_t pk = PairKey(p, q);
          if (!reach[pk]) {
            reach[pk] = 1;
            queue.push_back(pk);
          }
        }
      }
    } else {
      for (Symbol a = 0; a < k; ++a) {
        for (int p : inverse_[static_cast<size_t>(r) * k + a]) {
          for (int q : inverse_[static_cast<size_t>(s) * k + a]) {
            size_t pk = PairKey(p, q);
            if (!reach[pk]) {
              reach[pk] = 1;
              queue.push_back(pk);
            }
          }
        }
      }
    }
  }
  return reach;
}

bool PairReachability::Meets(int p, int q) const {
  return meets_[PairKey(p, q)] != 0;
}

const std::vector<uint8_t>& PairReachability::MeetsInSet(int target) const {
  auto it = meets_in_cache_.find(target);
  if (it == meets_in_cache_.end()) {
    it = meets_in_cache_
             .emplace(target, BackwardFrom({PairKey(target, target)}))
             .first;
  }
  return it->second;
}

bool PairReachability::MeetsIn(int p, int q, int target) const {
  return MeetsInSet(target)[PairKey(p, q)] != 0;
}

bool PairReachability::MeetsInAnyOf(int p, int q,
                                    const std::vector<int>& targets) const {
  for (int t : targets) {
    if (MeetsIn(p, q, t)) return true;
  }
  return false;
}

bool PairReachability::FindMeetInWord(int p, int q, int target,
                                      Word* u) const {
  SST_CHECK(!blind_);
  // Forward BFS from (p, q) to (target, target) with parent tracking.
  struct Entry {
    size_t parent;
    Symbol via;
    bool visited = false;
  };
  std::vector<Entry> info(static_cast<size_t>(n_) * n_);
  size_t start = PairKey(p, q);
  size_t goal = PairKey(target, target);
  info[start].visited = true;
  info[start].via = -1;
  std::deque<size_t> queue = {start};
  while (!queue.empty()) {
    size_t key = queue.front();
    queue.pop_front();
    if (key == goal) {
      Word rev;
      for (size_t cur = key; info[cur].via >= 0; cur = info[cur].parent) {
        rev.push_back(info[cur].via);
      }
      u->assign(rev.rbegin(), rev.rend());
      return true;
    }
    int x = static_cast<int>(key / n_);
    int y = static_cast<int>(key % n_);
    for (Symbol a = 0; a < dfa_.num_symbols; ++a) {
      size_t nk = PairKey(dfa_.Next(x, a), dfa_.Next(y, a));
      if (!info[nk].visited) {
        info[nk].visited = true;
        info[nk].parent = key;
        info[nk].via = a;
        queue.push_back(nk);
      }
    }
  }
  return false;
}

bool PairReachability::FindBlindMeetInWords(int p, int q, int target,
                                            Word* u1, Word* u2) const {
  SST_CHECK(blind_);
  struct Entry {
    size_t parent;
    Symbol via1, via2;
    bool visited = false;
  };
  std::vector<Entry> info(static_cast<size_t>(n_) * n_);
  size_t start = PairKey(p, q);
  size_t goal = PairKey(target, target);
  info[start].visited = true;
  info[start].via1 = -1;
  std::deque<size_t> queue = {start};
  while (!queue.empty()) {
    size_t key = queue.front();
    queue.pop_front();
    if (key == goal) {
      Word rev1, rev2;
      for (size_t cur = key; info[cur].via1 >= 0; cur = info[cur].parent) {
        rev1.push_back(info[cur].via1);
        rev2.push_back(info[cur].via2);
      }
      u1->assign(rev1.rbegin(), rev1.rend());
      u2->assign(rev2.rbegin(), rev2.rend());
      return true;
    }
    int x = static_cast<int>(key / n_);
    int y = static_cast<int>(key % n_);
    for (Symbol a = 0; a < dfa_.num_symbols; ++a) {
      for (Symbol b = 0; b < dfa_.num_symbols; ++b) {
        size_t nk = PairKey(dfa_.Next(x, a), dfa_.Next(y, b));
        if (!info[nk].visited) {
          info[nk].visited = true;
          info[nk].parent = key;
          info[nk].via1 = a;
          info[nk].via2 = b;
          queue.push_back(nk);
        }
      }
    }
  }
  return false;
}

bool FindLoopingWord(const Dfa& dfa, int state, Word* w) {
  return FindConnectingWord(dfa, state, state, /*nonempty=*/true, w);
}

bool FindAlmostDistinguishingWord(const Dfa& dfa, int p, int q, Word* w) {
  // Nonempty distinguishing word: try each first letter, then find any
  // distinguishing word (possibly empty) for the successor pair via pair BFS.
  struct Entry {
    size_t parent;
    Symbol via;
    bool visited = false;
  };
  const int n = dfa.num_states;
  auto pair_key = [&](int x, int y) { return static_cast<size_t>(x) * n + y; };
  std::vector<Entry> info(static_cast<size_t>(n) * n);
  std::deque<size_t> queue;
  for (Symbol a = 0; a < dfa.num_symbols; ++a) {
    size_t key = pair_key(dfa.Next(p, a), dfa.Next(q, a));
    if (!info[key].visited) {
      info[key].visited = true;
      info[key].parent = 0;
      info[key].via = a;
      // Mark seeds by via >= 0 and a sentinel parent equal to the key itself.
      info[key].parent = key;
      queue.push_back(key);
    }
  }
  while (!queue.empty()) {
    size_t key = queue.front();
    queue.pop_front();
    int x = static_cast<int>(key / n);
    int y = static_cast<int>(key % n);
    if (dfa.accepting[x] != dfa.accepting[y]) {
      Word rev;
      size_t cur = key;
      for (;;) {
        rev.push_back(info[cur].via);
        if (info[cur].parent == cur) break;
        cur = info[cur].parent;
      }
      w->assign(rev.rbegin(), rev.rend());
      return true;
    }
    for (Symbol a = 0; a < dfa.num_symbols; ++a) {
      size_t nk = pair_key(dfa.Next(x, a), dfa.Next(y, a));
      if (!info[nk].visited) {
        info[nk].visited = true;
        info[nk].parent = key;
        info[nk].via = a;
        queue.push_back(nk);
      }
    }
  }
  return false;
}

bool FindWordToAcceptance(const Dfa& dfa, int state, bool accepting,
                          Word* w) {
  struct Entry {
    int parent = -1;
    Symbol via = -1;
  };
  std::vector<Entry> info(dfa.num_states);
  std::vector<bool> seen(dfa.num_states, false);
  seen[state] = true;
  std::deque<int> queue = {state};
  while (!queue.empty()) {
    int q = queue.front();
    queue.pop_front();
    if (dfa.accepting[q] == accepting) {
      Word rev;
      for (int cur = q; info[cur].via >= 0; cur = info[cur].parent) {
        rev.push_back(info[cur].via);
      }
      w->assign(rev.rbegin(), rev.rend());
      return true;
    }
    for (Symbol a = 0; a < dfa.num_symbols; ++a) {
      int succ = dfa.Next(q, a);
      if (!seen[succ]) {
        seen[succ] = true;
        info[succ] = {q, a};
        queue.push_back(succ);
      }
    }
  }
  return false;
}

}  // namespace sst
