#ifndef SST_AUTOMATA_SCC_H_
#define SST_AUTOMATA_SCC_H_

#include <vector>

#include "automata/dfa.h"

namespace sst {

// Strongly connected components of a DFA's transition graph, plus the
// condensation DAG. Components are numbered in reverse topological order of
// discovery and then renumbered so that component ids are topologically
// sorted: every edge of the condensation goes from a smaller id to a larger
// id. This makes "chains in the SCC DAG" (Lemma 3.8) easy to validate.
struct SccInfo {
  int num_components = 0;
  std::vector<int> component_of;           // state -> component id
  std::vector<std::vector<int>> members;   // component id -> states
  // True if the component has more than one state or a self-loop.
  std::vector<bool> nontrivial;
  // Condensation edges (deduplicated, excluding self-edges).
  std::vector<std::vector<int>> dag_edges;

  bool SameComponent(int p, int q) const {
    return component_of[p] == component_of[q];
  }
};

SccInfo ComputeScc(const Dfa& dfa);

// Length of the longest path in the condensation DAG, counted in nodes.
// This bounds the number of registers used by the Lemma 3.8 construction.
int LongestChainLength(const SccInfo& scc);

}  // namespace sst

#endif  // SST_AUTOMATA_SCC_H_
