#ifndef SST_AUTOMATA_RANDOM_DFA_H_
#define SST_AUTOMATA_RANDOM_DFA_H_

#include "automata/dfa.h"
#include "base/rng.h"

namespace sst {

// Generators for random automata, used by property tests and decision
// procedure benchmarks. All results are complete DFAs (not necessarily
// minimal unless stated).

// Uniformly random transitions; each state accepting with probability
// `accept_probability`.
Dfa RandomDfa(int num_states, int num_symbols, double accept_probability,
              Rng* rng);

// Every letter acts as a permutation of the states, so the automaton is
// reversible (Section 3.1, Fig 2); after minimization such languages are
// almost-reversible whenever the minimal automaton stays reversible.
Dfa RandomPermutationDfa(int num_states, int num_symbols,
                         double accept_probability, Rng* rng);

// Transitions only go from a state to a state with an equal or larger index
// (plus self-loops), so every SCC is a singleton: the language is R-trivial
// and therefore HAR by construction (Section 3.2).
Dfa RandomRTrivialDfa(int num_states, int num_symbols,
                      double accept_probability, Rng* rng);

// The language of all words of length <= max_len that a random predicate
// accepts; finite languages are A-flat (Section 3.3).
Dfa RandomFiniteLanguageDfa(int max_len, int num_symbols,
                            double accept_probability, Rng* rng);

}  // namespace sst

#endif  // SST_AUTOMATA_RANDOM_DFA_H_
