#include "automata/scc.h"

#include <algorithm>
#include <set>
#include <utility>

#include "base/check.h"

namespace sst {

namespace {

// Iterative Tarjan to avoid recursion-depth limits on long chain automata.
struct TarjanState {
  std::vector<int> index, lowlink, on_stack;
  std::vector<int> stack;
  int next_index = 0;
  std::vector<int> component_of;
  int num_components = 0;
};

void Tarjan(const Dfa& dfa, TarjanState* ts) {
  const int n = dfa.num_states;
  const int k = dfa.num_symbols;
  ts->index.assign(n, -1);
  ts->lowlink.assign(n, 0);
  ts->on_stack.assign(n, 0);
  ts->component_of.assign(n, -1);

  struct Frame {
    int state;
    Symbol next_symbol;
  };
  std::vector<Frame> frames;
  for (int root = 0; root < n; ++root) {
    if (ts->index[root] >= 0) continue;
    frames.push_back({root, 0});
    ts->index[root] = ts->lowlink[root] = ts->next_index++;
    ts->stack.push_back(root);
    ts->on_stack[root] = 1;
    while (!frames.empty()) {
      Frame& frame = frames.back();
      int v = frame.state;
      if (frame.next_symbol < k) {
        int w = dfa.Next(v, frame.next_symbol++);
        if (ts->index[w] < 0) {
          ts->index[w] = ts->lowlink[w] = ts->next_index++;
          ts->stack.push_back(w);
          ts->on_stack[w] = 1;
          frames.push_back({w, 0});
        } else if (ts->on_stack[w]) {
          ts->lowlink[v] = std::min(ts->lowlink[v], ts->index[w]);
        }
      } else {
        if (ts->lowlink[v] == ts->index[v]) {
          int c = ts->num_components++;
          for (;;) {
            int w = ts->stack.back();
            ts->stack.pop_back();
            ts->on_stack[w] = 0;
            ts->component_of[w] = c;
            if (w == v) break;
          }
        }
        frames.pop_back();
        if (!frames.empty()) {
          int parent = frames.back().state;
          ts->lowlink[parent] =
              std::min(ts->lowlink[parent], ts->lowlink[v]);
        }
      }
    }
  }
}

}  // namespace

SccInfo ComputeScc(const Dfa& dfa) {
  TarjanState ts;
  Tarjan(dfa, &ts);

  // Tarjan emits components in reverse topological order; flip the ids so
  // edges go from smaller to larger component id.
  SccInfo info;
  info.num_components = ts.num_components;
  info.component_of.resize(dfa.num_states);
  for (int q = 0; q < dfa.num_states; ++q) {
    info.component_of[q] = ts.num_components - 1 - ts.component_of[q];
  }
  info.members.assign(info.num_components, {});
  for (int q = 0; q < dfa.num_states; ++q) {
    info.members[info.component_of[q]].push_back(q);
  }
  info.nontrivial.assign(info.num_components, false);
  std::vector<std::set<int>> edges(info.num_components);
  for (int q = 0; q < dfa.num_states; ++q) {
    int cq = info.component_of[q];
    for (Symbol a = 0; a < dfa.num_symbols; ++a) {
      int to = dfa.Next(q, a);
      int ct = info.component_of[to];
      if (ct == cq) {
        info.nontrivial[cq] = true;  // self-loop or larger cycle
      } else {
        SST_CHECK_MSG(cq < ct, "condensation ids not topological");
        edges[cq].insert(ct);
      }
    }
  }
  for (int c = 0; c < info.num_components; ++c) {
    if (info.members[c].size() > 1) info.nontrivial[c] = true;
    info.dag_edges.emplace_back(edges[c].begin(), edges[c].end());
  }
  return info;
}

int LongestChainLength(const SccInfo& scc) {
  // Component ids are topologically sorted, so a single backward pass works.
  std::vector<int> best(scc.num_components, 1);
  for (int c = scc.num_components - 1; c >= 0; --c) {
    for (int to : scc.dag_edges[c]) {
      best[c] = std::max(best[c], 1 + best[to]);
    }
  }
  int result = 0;
  for (int c = 0; c < scc.num_components; ++c) {
    result = std::max(result, best[c]);
  }
  return result;
}

}  // namespace sst
