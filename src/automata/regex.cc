#include "automata/regex.h"

#include <cctype>

#include "base/check.h"

namespace sst {

namespace {

RegexPtr Make(Regex::Kind kind) {
  auto r = std::make_shared<Regex>();
  r->kind = kind;
  return r;
}

}  // namespace

RegexPtr Regex::EmptySet() { return Make(Kind::kEmptySet); }
RegexPtr Regex::Epsilon() { return Make(Kind::kEpsilon); }

RegexPtr Regex::Sym(Symbol s) {
  auto r = Make(Kind::kSymbol);
  r->symbol = s;
  return r;
}

RegexPtr Regex::Any() { return Make(Kind::kAny); }

RegexPtr Regex::Concat(RegexPtr a, RegexPtr b) {
  if (a->kind == Kind::kEmptySet || b->kind == Kind::kEmptySet) {
    return EmptySet();
  }
  if (a->kind == Kind::kEpsilon) return b;
  if (b->kind == Kind::kEpsilon) return a;
  auto r = Make(Kind::kConcat);
  r->children = {std::move(a), std::move(b)};
  return r;
}

RegexPtr Regex::Union(RegexPtr a, RegexPtr b) {
  if (a->kind == Kind::kEmptySet) return b;
  if (b->kind == Kind::kEmptySet) return a;
  auto r = Make(Kind::kUnion);
  r->children = {std::move(a), std::move(b)};
  return r;
}

RegexPtr Regex::Star(RegexPtr a) {
  if (a->kind == Kind::kEmptySet || a->kind == Kind::kEpsilon) {
    return Epsilon();
  }
  if (a->kind == Kind::kStar) return a;
  auto r = Make(Kind::kStar);
  r->children = {std::move(a)};
  return r;
}

namespace {

// Recursive-descent parser.
//   union  := concat (('|' | '+') concat)*      -- binary '+' is union
//   concat := postfix+
//   postfix := atom ('*' | '+' | '?')*          -- postfix '+' is iteration
//   atom   := letter | '.' | '(' union ')' | '~' (epsilon) | '#' (empty set)
// A '+' is treated as postfix iteration if it directly follows an atom
// already consumed and is itself followed by something that cannot start an
// atom... To keep the grammar unambiguous we instead adopt the usual regex
// convention: '+' after an atom is postfix iteration; '|' is union. The
// paper's union '+' is therefore written '|' in patterns, but classification
// helpers also accept '+' as union when it appears where an atom is expected.
class Parser {
 public:
  Parser(std::string_view text, const Alphabet& alphabet, std::string* error)
      : text_(text), alphabet_(alphabet), error_(error) {}

  RegexPtr Parse() {
    RegexPtr r = ParseUnion();
    if (!r) return nullptr;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Fail("unexpected trailing input");
    }
    return r;
  }

 private:
  RegexPtr Fail(const char* msg) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = std::string(msg) + " at offset " + std::to_string(pos_);
    }
    return nullptr;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtAtomStart() {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    return std::isalnum(static_cast<unsigned char>(c)) || c == '(' ||
           c == '.' || c == '~' || c == '#';
  }

  RegexPtr ParseUnion() {
    RegexPtr left = ParseConcat();
    if (!left) return nullptr;
    for (;;) {
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '|') {
        ++pos_;
        RegexPtr right = ParseConcat();
        if (!right) return nullptr;
        left = Regex::Union(std::move(left), std::move(right));
      } else {
        return left;
      }
    }
  }

  RegexPtr ParseConcat() {
    RegexPtr left = ParsePostfix();
    if (!left) return nullptr;
    while (AtAtomStart()) {
      RegexPtr right = ParsePostfix();
      if (!right) return nullptr;
      left = Regex::Concat(std::move(left), std::move(right));
    }
    return left;
  }

  RegexPtr ParsePostfix() {
    RegexPtr atom = ParseAtom();
    if (!atom) return nullptr;
    for (;;) {
      SkipSpace();
      if (pos_ >= text_.size()) return atom;
      char c = text_[pos_];
      if (c == '*') {
        ++pos_;
        atom = Regex::Star(std::move(atom));
      } else if (c == '+') {
        ++pos_;
        atom = Regex::Concat(atom, Regex::Star(atom));
      } else if (c == '?') {
        ++pos_;
        atom = Regex::Union(std::move(atom), Regex::Epsilon());
      } else {
        return atom;
      }
    }
  }

  RegexPtr ParseAtom() {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("expected atom");
    char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      RegexPtr inner = ParseUnion();
      if (!inner) return nullptr;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ')') {
        return Fail("expected ')'");
      }
      ++pos_;
      return inner;
    }
    if (c == '.') {
      ++pos_;
      return Regex::Any();
    }
    if (c == '~') {
      ++pos_;
      return Regex::Epsilon();
    }
    if (c == '#') {
      ++pos_;
      return Regex::EmptySet();
    }
    if (std::isalnum(static_cast<unsigned char>(c))) {
      ++pos_;
      Symbol s = alphabet_.Find(std::string_view(&c, 1));
      if (s < 0) return Fail("letter not in alphabet");
      return Regex::Sym(s);
    }
    return Fail("unexpected character");
  }

  std::string_view text_;
  const Alphabet& alphabet_;
  std::string* error_;
  size_t pos_ = 0;
};

void ToStringRec(const Regex& regex, const Alphabet& alphabet, int parent_prec,
                 std::string* out) {
  // Precedence: union 0, concat 1, star 2, atom 3.
  switch (regex.kind) {
    case Regex::Kind::kEmptySet:
      *out += '#';
      return;
    case Regex::Kind::kEpsilon:
      *out += '~';
      return;
    case Regex::Kind::kSymbol:
      *out += alphabet.LabelOf(regex.symbol);
      return;
    case Regex::Kind::kAny:
      *out += '.';
      return;
    case Regex::Kind::kConcat: {
      bool paren = parent_prec > 1;
      if (paren) *out += '(';
      ToStringRec(*regex.children[0], alphabet, 1, out);
      ToStringRec(*regex.children[1], alphabet, 2, out);
      if (paren) *out += ')';
      return;
    }
    case Regex::Kind::kUnion: {
      bool paren = parent_prec > 0;
      if (paren) *out += '(';
      ToStringRec(*regex.children[0], alphabet, 0, out);
      *out += '|';
      ToStringRec(*regex.children[1], alphabet, 0, out);
      if (paren) *out += ')';
      return;
    }
    case Regex::Kind::kStar:
      ToStringRec(*regex.children[0], alphabet, 3, out);
      *out += '*';
      return;
  }
}

}  // namespace

RegexPtr TryParseRegex(std::string_view pattern, const Alphabet& alphabet,
                       std::string* error) {
  Parser parser(pattern, alphabet, error);
  return parser.Parse();
}

RegexPtr ParseRegex(std::string_view pattern, const Alphabet& alphabet) {
  std::string error;
  RegexPtr r = TryParseRegex(pattern, alphabet, &error);
  SST_CHECK_MSG(r != nullptr, error.c_str());
  return r;
}

std::string RegexToString(const Regex& regex, const Alphabet& alphabet) {
  std::string out;
  ToStringRec(regex, alphabet, 0, &out);
  return out;
}

}  // namespace sst
