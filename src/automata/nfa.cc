#include "automata/nfa.h"

#include <algorithm>

#include "base/check.h"

namespace sst {

int Nfa::AddState() {
  edges.emplace_back();
  accepting.push_back(false);
  return num_states++;
}

void Nfa::AddEdge(int from, Symbol symbol, int to) {
  SST_CHECK(from >= 0 && from < num_states && to >= 0 && to < num_states);
  edges[from].emplace_back(symbol, to);
}

namespace {

void EpsilonClose(const Nfa& nfa, std::vector<int>* states) {
  std::vector<bool> in_set(nfa.num_states, false);
  for (int q : *states) in_set[q] = true;
  for (size_t i = 0; i < states->size(); ++i) {
    for (const auto& [symbol, to] : nfa.edges[(*states)[i]]) {
      if (symbol == Nfa::kEpsilon && !in_set[to]) {
        in_set[to] = true;
        states->push_back(to);
      }
    }
  }
  std::sort(states->begin(), states->end());
}

}  // namespace

bool Nfa::Accepts(const Word& word) const {
  std::vector<int> current = {initial};
  EpsilonClose(*this, &current);
  for (Symbol a : word) {
    std::vector<bool> seen(num_states, false);
    std::vector<int> next;
    for (int q : current) {
      for (const auto& [symbol, to] : edges[q]) {
        if (symbol == a && !seen[to]) {
          seen[to] = true;
          next.push_back(to);
        }
      }
    }
    EpsilonClose(*this, &next);
    current = std::move(next);
  }
  for (int q : current) {
    if (accepting[q]) return true;
  }
  return false;
}

namespace {

// Builds the fragment for `regex` into `nfa`, returning (entry, exit).
std::pair<int, int> Build(const Regex& regex, Nfa* nfa) {
  int entry = nfa->AddState();
  int exit = nfa->AddState();
  switch (regex.kind) {
    case Regex::Kind::kEmptySet:
      break;  // no path from entry to exit
    case Regex::Kind::kEpsilon:
      nfa->AddEdge(entry, Nfa::kEpsilon, exit);
      break;
    case Regex::Kind::kSymbol:
      nfa->AddEdge(entry, regex.symbol, exit);
      break;
    case Regex::Kind::kAny:
      for (Symbol a = 0; a < nfa->num_symbols; ++a) {
        nfa->AddEdge(entry, a, exit);
      }
      break;
    case Regex::Kind::kConcat: {
      auto [e1, x1] = Build(*regex.children[0], nfa);
      auto [e2, x2] = Build(*regex.children[1], nfa);
      nfa->AddEdge(entry, Nfa::kEpsilon, e1);
      nfa->AddEdge(x1, Nfa::kEpsilon, e2);
      nfa->AddEdge(x2, Nfa::kEpsilon, exit);
      break;
    }
    case Regex::Kind::kUnion: {
      auto [e1, x1] = Build(*regex.children[0], nfa);
      auto [e2, x2] = Build(*regex.children[1], nfa);
      nfa->AddEdge(entry, Nfa::kEpsilon, e1);
      nfa->AddEdge(entry, Nfa::kEpsilon, e2);
      nfa->AddEdge(x1, Nfa::kEpsilon, exit);
      nfa->AddEdge(x2, Nfa::kEpsilon, exit);
      break;
    }
    case Regex::Kind::kStar: {
      auto [e1, x1] = Build(*regex.children[0], nfa);
      nfa->AddEdge(entry, Nfa::kEpsilon, exit);
      nfa->AddEdge(entry, Nfa::kEpsilon, e1);
      nfa->AddEdge(x1, Nfa::kEpsilon, e1);
      nfa->AddEdge(x1, Nfa::kEpsilon, exit);
      break;
    }
  }
  return {entry, exit};
}

}  // namespace

Nfa RegexToNfa(const Regex& regex, int num_symbols) {
  Nfa nfa;
  nfa.num_symbols = num_symbols;
  auto [entry, exit] = Build(regex, &nfa);
  nfa.initial = entry;
  nfa.accepting[exit] = true;
  return nfa;
}

}  // namespace sst
