#ifndef SST_AUTOMATA_PRODUCT_H_
#define SST_AUTOMATA_PRODUCT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "automata/selection_mask.h"
#include "base/check.h"

namespace sst {

// Output-annotated N-ary product of deterministic automata over a paired
// tag alphabet (one opening and one closing letter per symbol — the shape
// of the paper's TagDfa). Closure of registerless queries under product
// (Lemma 2.4) means a batch of N query automata fuses into ONE automaton
// whose states carry an N-bit SelectionMask: bit i of the mask of the
// state reached after a node's opening tag answers "does query i select
// this node?", so all N queries are answered in a single pass.
//
// The component type A must expose the TagDfa field/method surface:
// num_states, num_symbols, initial, NextOpen(q, a), NextClose(q, a) and
// accepting[q]. Everything here is generic over that concept so the
// construction lives with the rest of the automata algebra; dra
// instantiates it for TagDfa.
//
// Two constructions, matching how products behave in practice:
//   * BuildEagerPairedProduct — bounded BFS materialization of every
//     reachable product state up front. Cheap for small batches; the
//     resulting table can be fused into a single 256-entry byte table.
//     Returns nullopt when the reachable product exceeds the state cap.
//   * LazyPairedProduct — on-the-fly materialization: a product state is
//     interned the first time some input actually reaches it, so the
//     product never blows up beyond what the documents exercise. Safe for
//     concurrent readers (see below).

// Flat transition table of an eagerly built product. Letters are indexed
// open-first: letter a in [0, num_symbols) is the opening tag of symbol a,
// letter num_symbols + a its closing tag.
struct PairedProductTable {
  int arity = 0;        // number of component automata (mask width)
  int num_states = 0;   // reachable product states
  int num_symbols = 0;  // |Γ| shared by all components
  int initial = 0;
  std::vector<int32_t> next;        // num_states * 2 * num_symbols
  std::vector<SelectionMask> masks;  // per state: accepting components
  std::vector<int32_t> tuples;      // num_states * arity component states

  int Next(int state, int letter) const {
    return next[static_cast<size_t>(state) * 2 * num_symbols + letter];
  }
};

namespace product_internal {

struct TupleHash {
  size_t operator()(const std::vector<int32_t>& tuple) const {
    size_t hash = 14695981039346656037ull;
    for (int32_t value : tuple) {
      hash ^= static_cast<uint32_t>(value);
      hash *= 1099511628211ull;
    }
    return hash;
  }
};

template <typename A>
SelectionMask MaskOfTuple(const std::vector<const A*>& components,
                          const int32_t* tuple) {
  SelectionMask mask(static_cast<int>(components.size()));
  for (size_t i = 0; i < components.size(); ++i) {
    if (components[i]->accepting[tuple[i]]) mask.Set(static_cast<int>(i));
  }
  return mask;
}

}  // namespace product_internal

// BFS over the reachable product; nullopt once more than `state_cap`
// states materialize (the caller then falls back to the lazy product or to
// per-query execution). All components must share num_symbols.
template <typename A>
std::optional<PairedProductTable> BuildEagerPairedProduct(
    const std::vector<const A*>& components, int state_cap) {
  SST_CHECK(!components.empty());
  const int arity = static_cast<int>(components.size());
  const int num_symbols = components[0]->num_symbols;
  for (const A* component : components) {
    SST_CHECK_MSG(component->num_symbols == num_symbols,
                  "product components must share one tag alphabet");
  }
  const int width = 2 * num_symbols;

  PairedProductTable table;
  table.arity = arity;
  table.num_symbols = num_symbols;
  table.initial = 0;

  std::unordered_map<std::vector<int32_t>, int, product_internal::TupleHash>
      index;
  std::vector<int32_t> tuple(static_cast<size_t>(arity));
  for (int i = 0; i < arity; ++i) tuple[i] = components[i]->initial;
  index.emplace(tuple, 0);
  table.tuples.insert(table.tuples.end(), tuple.begin(), tuple.end());
  table.masks.push_back(
      product_internal::MaskOfTuple(components, tuple.data()));
  table.num_states = 1;

  for (int state = 0; state < table.num_states; ++state) {
    table.next.resize(static_cast<size_t>(state + 1) * width);
    for (int letter = 0; letter < width; ++letter) {
      const int32_t* from =
          table.tuples.data() + static_cast<size_t>(state) * arity;
      for (int i = 0; i < arity; ++i) {
        tuple[i] = letter < num_symbols
                       ? components[i]->NextOpen(from[i], letter)
                       : components[i]->NextClose(from[i],
                                                  letter - num_symbols);
      }
      auto [it, inserted] = index.emplace(tuple, table.num_states);
      if (inserted) {
        if (table.num_states >= state_cap) return std::nullopt;
        table.tuples.insert(table.tuples.end(), tuple.begin(), tuple.end());
        table.masks.push_back(
            product_internal::MaskOfTuple(components, tuple.data()));
        ++table.num_states;
      }
      table.next[static_cast<size_t>(state) * width + letter] = it->second;
    }
  }
  return table;
}

// Lazily materialized product, shared by any number of concurrently
// streaming sessions. States and transitions appear on first use:
//
//   * the read path is lock-free — one acquire load of an atomic
//     transition entry per event; a non-negative entry is the already
//     materialized target;
//   * the insert path (entry still kUnexplored) takes a mutex, steps every
//     component, interns the target tuple, and publishes the entry with a
//     release store, so readers that observe the id also observe the new
//     state's mask, tuple and (kUnexplored-initialized) row;
//   * per-state storage lives in fixed-size blocks whose pointer array is
//     sized once at construction — nothing a reader dereferences is ever
//     reallocated.
//
// The state cap bounds materialization: once reached, transitions into
// never-seen tuples return kOverflow and the caller demotes that stream to
// stepping the component tuple directly (the product stays valid for every
// state already materialized — other streams are unaffected).
template <typename A>
class LazyPairedProduct {
 public:
  static constexpr int kOverflow = -1;

  LazyPairedProduct(std::vector<const A*> components, int state_cap)
      : components_(std::move(components)),
        num_symbols_(components_[0]->num_symbols),
        width_(2 * num_symbols_),
        cap_(state_cap < 1 ? 1 : state_cap),
        scratch_(components_.size()) {
    SST_CHECK(!components_.empty());
    for (const A* component : components_) {
      SST_CHECK_MSG(component->num_symbols == num_symbols_,
                    "product components must share one tag alphabet");
    }
    const size_t blocks =
        (static_cast<size_t>(cap_) + kBlockStates - 1) / kBlockStates;
    rows_.resize(blocks);
    tuples_.resize(blocks);
    masks_.resize(blocks);
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < components_.size(); ++i) {
      scratch_[i] = components_[i]->initial;
    }
    int initial = InternLocked();
    SST_CHECK(initial == 0);
  }

  int arity() const { return static_cast<int>(components_.size()); }
  int num_symbols() const { return num_symbols_; }
  int initial() const { return 0; }
  int state_cap() const { return cap_; }
  const std::vector<const A*>& components() const { return components_; }

  // Materialized states so far (a live statistic; monotone).
  int num_states() const {
    return num_states_.load(std::memory_order_acquire);
  }
  bool overflowed() const {
    return overflowed_.load(std::memory_order_relaxed);
  }

  // Product successor of materialized state `id`, materializing the target
  // on first use; kOverflow when the target is new but the cap is reached.
  int NextOpen(int id, int symbol) { return Next(id, symbol); }
  int NextClose(int id, int symbol) {
    // Term-encoded streams pass -1; mirror TagDfaMachine's symbol-0
    // fallback (sound for ClosingSymbolInvariant components).
    return Next(id, num_symbols_ + (symbol < 0 ? 0 : symbol));
  }

  // Mask/tuple of a materialized state. Safe to call concurrently with
  // growth for any id obtained from Next* or num_states().
  const SelectionMask& MaskOf(int id) const {
    return masks_[static_cast<size_t>(id) / kBlockStates]
                 [static_cast<size_t>(id) % kBlockStates];
  }
  bool AnyAccepting(int id) const { return MaskOf(id).Any(); }
  void CopyTuple(int id, int32_t* out) const {
    const int32_t* tuple = TupleOf(id);
    for (int i = 0; i < arity(); ++i) out[i] = tuple[i];
  }

 private:
  static constexpr size_t kBlockStates = 256;
  static constexpr int32_t kUnexplored = -2;

  std::atomic<int32_t>* RowOf(int id) const {
    return rows_[static_cast<size_t>(id) / kBlockStates].get() +
           (static_cast<size_t>(id) % kBlockStates) * width_;
  }
  const int32_t* TupleOf(int id) const {
    return tuples_[static_cast<size_t>(id) / kBlockStates].get() +
           (static_cast<size_t>(id) % kBlockStates) * components_.size();
  }

  int Next(int id, int letter) {
    std::atomic<int32_t>* row = RowOf(id);
    int32_t target = row[letter].load(std::memory_order_acquire);
    if (target != kUnexplored) return target;
    std::lock_guard<std::mutex> lock(mu_);
    target = row[letter].load(std::memory_order_relaxed);
    if (target != kUnexplored) return target;
    const int32_t* tuple = TupleOf(id);
    for (size_t i = 0; i < components_.size(); ++i) {
      scratch_[i] = letter < num_symbols_
                        ? components_[i]->NextOpen(tuple[i], letter)
                        : components_[i]->NextClose(tuple[i],
                                                    letter - num_symbols_);
    }
    target = InternLocked();
    row[letter].store(target, std::memory_order_release);
    return target;
  }

  // Interns scratch_; mu_ must be held. Returns the dense id or kOverflow.
  int InternLocked() {
    auto it = index_.find(scratch_);
    if (it != index_.end()) return it->second;
    int id = num_states_.load(std::memory_order_relaxed);
    if (id >= cap_) {
      overflowed_.store(true, std::memory_order_relaxed);
      return kOverflow;
    }
    const size_t block = static_cast<size_t>(id) / kBlockStates;
    const size_t slot = static_cast<size_t>(id) % kBlockStates;
    if (rows_[block] == nullptr) {
      rows_[block] =
          std::make_unique<std::atomic<int32_t>[]>(kBlockStates * width_);
      for (size_t i = 0; i < kBlockStates * width_; ++i) {
        rows_[block][i].store(kUnexplored, std::memory_order_relaxed);
      }
      tuples_[block] =
          std::make_unique<int32_t[]>(kBlockStates * components_.size());
      masks_[block] = std::make_unique<SelectionMask[]>(kBlockStates);
    }
    int32_t* tuple = tuples_[block].get() + slot * components_.size();
    for (size_t i = 0; i < components_.size(); ++i) tuple[i] = scratch_[i];
    masks_[block][slot] =
        product_internal::MaskOfTuple(components_, tuple);
    index_.emplace(scratch_, id);
    // Publish after the state's storage is fully written: a reader that
    // acquires an entry naming `id` (or num_states() >= id) sees it all.
    num_states_.store(id + 1, std::memory_order_release);
    return id;
  }

  const std::vector<const A*> components_;
  const int num_symbols_;
  const int width_;
  const int cap_;

  // Block pointer arrays are sized once in the constructor and entries are
  // written (under mu_) before any state in them is published.
  std::vector<std::unique_ptr<std::atomic<int32_t>[]>> rows_;
  std::vector<std::unique_ptr<int32_t[]>> tuples_;
  std::vector<std::unique_ptr<SelectionMask[]>> masks_;

  std::atomic<int> num_states_{0};
  std::atomic<bool> overflowed_{false};

  std::mutex mu_;  // guards index_, scratch_ and all growth
  std::vector<int32_t> scratch_;
  std::unordered_map<std::vector<int32_t>, int, product_internal::TupleHash>
      index_;
};

}  // namespace sst

#endif  // SST_AUTOMATA_PRODUCT_H_
