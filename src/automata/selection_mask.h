#ifndef SST_AUTOMATA_SELECTION_MASK_H_
#define SST_AUTOMATA_SELECTION_MASK_H_

#include <cstdint>
#include <vector>

namespace sst {

// N-bit selection bitmask annotating a product-automaton state: bit i is
// set iff component automaton i is in an accepting state. Batches of up to
// 64 queries — the overwhelmingly common case — live in a single inline
// uint64_t with no heap storage (word() exposes it so hot loops can strip
// the abstraction entirely); larger batches spill the bits past 63 into a
// dynamically sized tail. All operations branch once on which layout is
// active.
class SelectionMask {
 public:
  SelectionMask() = default;

  // A mask of `num_bits` zero bits. Allocates only when num_bits > 64.
  explicit SelectionMask(int num_bits)
      : extra_(num_bits > 64 ? (static_cast<size_t>(num_bits) + 63) / 64 - 1
                             : 0) {}

  void Set(int bit) {
    if (bit < 64) {
      bits_ |= uint64_t{1} << bit;
    } else {
      extra_[static_cast<size_t>(bit) / 64 - 1] |=
          uint64_t{1} << (static_cast<size_t>(bit) % 64);
    }
  }

  bool Test(int bit) const {
    if (bit < 64) return (bits_ >> bit) & 1;
    size_t slot = static_cast<size_t>(bit) / 64 - 1;
    if (slot >= extra_.size()) return false;
    return (extra_[slot] >> (static_cast<size_t>(bit) % 64)) & 1;
  }

  bool Any() const {
    if (bits_ != 0) return true;
    for (uint64_t word : extra_) {
      if (word != 0) return true;
    }
    return false;
  }

  int Count() const {
    int count = Popcount(bits_);
    for (uint64_t word : extra_) count += Popcount(word);
    return count;
  }

  // The fast-path word (bits 0..63). Masks of at most 64 bits are fully
  // described by it, which lets byte-scan loops precompute a flat
  // vector<uint64_t> and never touch the tail.
  uint64_t word() const { return bits_; }
  bool narrow() const { return extra_.empty(); }

  // counts[i] += 1 for every set bit i — the per-node accumulation step of
  // multi-query selection counting.
  void AccumulateInto(int64_t* counts) const {
    AccumulateWord(bits_, 0, counts);
    for (size_t slot = 0; slot < extra_.size(); ++slot) {
      AccumulateWord(extra_[slot], (static_cast<int>(slot) + 1) * 64, counts);
    }
  }

  // Appends every set bit index, ascending — the per-node fan-out step of
  // multi-query match-event emission (one MatchEvent per selecting query).
  void AppendSetBits(std::vector<int32_t>* out) const {
    AppendWord(bits_, 0, out);
    for (size_t slot = 0; slot < extra_.size(); ++slot) {
      AppendWord(extra_[slot], (static_cast<int>(slot) + 1) * 64, out);
    }
  }

  friend bool operator==(const SelectionMask&, const SelectionMask&) = default;

 private:
  static int Popcount(uint64_t word) {
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_popcountll(word);
#else
    int count = 0;
    for (; word != 0; word &= word - 1) ++count;
    return count;
#endif
  }

  static int CountTrailingZeros(uint64_t word) {
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_ctzll(word);
#else
    int bit = 0;
    while (((word >> bit) & 1) == 0) ++bit;
    return bit;
#endif
  }

  static void AccumulateWord(uint64_t word, int base, int64_t* counts) {
    for (; word != 0; word &= word - 1) {
      ++counts[base + CountTrailingZeros(word)];
    }
  }

  static void AppendWord(uint64_t word, int base, std::vector<int32_t>* out) {
    for (; word != 0; word &= word - 1) {
      out->push_back(static_cast<int32_t>(base + CountTrailingZeros(word)));
    }
  }

  uint64_t bits_ = 0;           // bits 0..63 (the only storage when N <= 64)
  std::vector<uint64_t> extra_;  // bits 64.. for wide batches; usually empty
};

}  // namespace sst

#endif  // SST_AUTOMATA_SELECTION_MASK_H_
