#include "automata/dfa.h"

#include <deque>
#include <utility>

#include "base/check.h"

namespace sst {

Dfa Dfa::Create(int num_states, int num_symbols) {
  Dfa dfa;
  dfa.num_states = num_states;
  dfa.num_symbols = num_symbols;
  dfa.next_table.assign(static_cast<size_t>(num_states) * num_symbols, 0);
  dfa.accepting.assign(num_states, false);
  return dfa;
}

int Dfa::Run(int state, const Word& word) const {
  for (Symbol a : word) state = Next(state, a);
  return state;
}

bool Dfa::IsValid() const {
  if (initial < 0 || initial >= num_states) return false;
  for (int to : next_table) {
    if (to < 0 || to >= num_states) return false;
  }
  return true;
}

std::string Dfa::ToString(const Alphabet& alphabet) const {
  std::string out = "initial=" + std::to_string(initial) + "\n";
  for (int q = 0; q < num_states; ++q) {
    out += std::to_string(q);
    out += accepting[q] ? " [acc]" : "      ";
    for (Symbol a = 0; a < num_symbols; ++a) {
      out += "  " + alphabet.LabelOf(a) + "->" + std::to_string(Next(q, a));
    }
    out += "\n";
  }
  return out;
}

Dfa Complement(const Dfa& dfa) {
  Dfa result = dfa;
  for (int q = 0; q < result.num_states; ++q) {
    result.accepting[q] = !result.accepting[q];
  }
  return result;
}

namespace {

// Reachable product construction; `want(a_acc, b_acc)` decides acceptance.
template <typename AcceptFn>
Dfa Product(const Dfa& a, const Dfa& b, AcceptFn want) {
  SST_CHECK(a.num_symbols == b.num_symbols);
  const int k = a.num_symbols;
  std::vector<int> id(static_cast<size_t>(a.num_states) * b.num_states, -1);
  auto key = [&](int p, int q) {
    return static_cast<size_t>(p) * b.num_states + q;
  };
  std::vector<std::pair<int, int>> states;
  auto intern = [&](int p, int q) {
    int& slot = id[key(p, q)];
    if (slot < 0) {
      slot = static_cast<int>(states.size());
      states.emplace_back(p, q);
    }
    return slot;
  };
  Dfa result;
  result.num_symbols = k;
  result.initial = intern(a.initial, b.initial);
  for (size_t i = 0; i < states.size(); ++i) {
    auto [p, q] = states[i];
    result.accepting.push_back(want(a.accepting[p], b.accepting[q]));
    for (Symbol s = 0; s < k; ++s) {
      result.next_table.push_back(intern(a.Next(p, s), b.Next(q, s)));
    }
  }
  result.num_states = static_cast<int>(states.size());
  return result;
}

}  // namespace

Dfa Intersection(const Dfa& a, const Dfa& b) {
  return Product(a, b, [](bool x, bool y) { return x && y; });
}

Dfa UnionDfa(const Dfa& a, const Dfa& b) {
  return Product(a, b, [](bool x, bool y) { return x || y; });
}

Dfa Trim(const Dfa& dfa) {
  std::vector<int> remap(dfa.num_states, -1);
  std::vector<int> order;
  remap[dfa.initial] = 0;
  order.push_back(dfa.initial);
  for (size_t i = 0; i < order.size(); ++i) {
    for (Symbol a = 0; a < dfa.num_symbols; ++a) {
      int to = dfa.Next(order[i], a);
      if (remap[to] < 0) {
        remap[to] = static_cast<int>(order.size());
        order.push_back(to);
      }
    }
  }
  Dfa result = Dfa::Create(static_cast<int>(order.size()), dfa.num_symbols);
  result.initial = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    int q = order[i];
    result.accepting[i] = dfa.accepting[q];
    for (Symbol a = 0; a < dfa.num_symbols; ++a) {
      result.SetNext(static_cast<int>(i), a, remap[dfa.Next(q, a)]);
    }
  }
  return result;
}

bool FindDistinguishingWord(const Dfa& a, const Dfa& b, Word* witness) {
  SST_CHECK(a.num_symbols == b.num_symbols);
  const int k = a.num_symbols;
  // BFS over reachable pairs, remembering parent edges for witness recovery.
  struct Entry {
    int parent = -1;
    Symbol via = -1;
  };
  std::vector<Entry> info;
  std::vector<int> id(static_cast<size_t>(a.num_states) * b.num_states, -1);
  std::vector<std::pair<int, int>> states;
  auto intern = [&](int p, int q, int parent, Symbol via) {
    size_t key = static_cast<size_t>(p) * b.num_states + q;
    if (id[key] < 0) {
      id[key] = static_cast<int>(states.size());
      states.emplace_back(p, q);
      info.push_back({parent, via});
    }
    return id[key];
  };
  intern(a.initial, b.initial, -1, -1);
  for (size_t i = 0; i < states.size(); ++i) {
    auto [p, q] = states[i];
    if (a.accepting[p] != b.accepting[q]) {
      if (witness != nullptr) {
        Word rev;
        for (int cur = static_cast<int>(i); info[cur].parent >= 0;
             cur = info[cur].parent) {
          rev.push_back(info[cur].via);
        }
        witness->assign(rev.rbegin(), rev.rend());
      }
      return true;
    }
    for (Symbol s = 0; s < k; ++s) {
      intern(a.Next(p, s), b.Next(q, s), static_cast<int>(i), s);
    }
  }
  return false;
}

bool EquivalentDfa(const Dfa& a, const Dfa& b) {
  return !FindDistinguishingWord(a, b, nullptr);
}

bool FindConnectingWord(const Dfa& dfa, int from, int to, bool nonempty,
                        Word* word) {
  if (from == to && !nonempty) {
    word->clear();
    return true;
  }
  struct Entry {
    int parent = -1;
    Symbol via = -1;
  };
  std::vector<Entry> info(dfa.num_states);
  std::vector<bool> seen(dfa.num_states, false);
  std::deque<int> queue;
  // Seed with one-step successors so the found path is nonempty when the
  // source equals the target.
  for (Symbol a = 0; a < dfa.num_symbols; ++a) {
    int succ = dfa.Next(from, a);
    if (!seen[succ]) {
      seen[succ] = true;
      info[succ] = {-1, a};
      queue.push_back(succ);
    }
  }
  while (!queue.empty()) {
    int q = queue.front();
    queue.pop_front();
    if (q == to) {
      Word rev;
      int cur = q;
      for (;;) {
        rev.push_back(info[cur].via);
        if (info[cur].parent < 0) break;
        cur = info[cur].parent;
      }
      word->assign(rev.rbegin(), rev.rend());
      return true;
    }
    for (Symbol a = 0; a < dfa.num_symbols; ++a) {
      int succ = dfa.Next(q, a);
      if (!seen[succ]) {
        seen[succ] = true;
        info[succ] = {q, a};
        queue.push_back(succ);
      }
    }
  }
  return false;
}

}  // namespace sst
