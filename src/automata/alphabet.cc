#include "automata/alphabet.h"

#include "base/check.h"

namespace sst {

Alphabet Alphabet::FromLetters(std::string_view letters) {
  Alphabet result;
  for (char c : letters) result.Intern(std::string_view(&c, 1));
  return result;
}

Symbol Alphabet::Intern(std::string_view label) {
  auto it = index_.find(std::string(label));
  if (it != index_.end()) return it->second;
  Symbol s = static_cast<Symbol>(labels_.size());
  labels_.emplace_back(label);
  index_.emplace(labels_.back(), s);
  return s;
}

Symbol Alphabet::Find(std::string_view label) const {
  auto it = index_.find(std::string(label));
  return it == index_.end() ? -1 : it->second;
}

std::array<Symbol, 256> Alphabet::ByteSymbolTable() const {
  std::array<Symbol, 256> table;
  table.fill(-1);
  for (Symbol s = 0; s < size(); ++s) {
    const std::string& label = labels_[s];
    if (label.size() == 1) {
      table[static_cast<unsigned char>(label[0])] = s;
    }
  }
  return table;
}

Word WordFromString(const Alphabet& alphabet, std::string_view text) {
  Word word;
  word.reserve(text.size());
  for (char c : text) {
    Symbol s = alphabet.Find(std::string_view(&c, 1));
    SST_CHECK_MSG(s >= 0, "unknown letter in word");
    word.push_back(s);
  }
  return word;
}

std::string WordToString(const Alphabet& alphabet, const Word& word) {
  std::string out;
  for (Symbol s : word) {
    const std::string& label = alphabet.LabelOf(s);
    if (label.size() == 1) {
      out += label;
    } else {
      out += '<';
      out += label;
      out += '>';
    }
  }
  return out;
}

}  // namespace sst
