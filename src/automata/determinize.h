#ifndef SST_AUTOMATA_DETERMINIZE_H_
#define SST_AUTOMATA_DETERMINIZE_H_

#include "automata/dfa.h"
#include "automata/nfa.h"

namespace sst {

// Subset construction; the result is complete (the empty subset acts as the
// rejecting sink) and contains only reachable states.
Dfa Determinize(const Nfa& nfa);

}  // namespace sst

#endif  // SST_AUTOMATA_DETERMINIZE_H_
