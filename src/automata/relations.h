#ifndef SST_AUTOMATA_RELATIONS_H_
#define SST_AUTOMATA_RELATIONS_H_

#include <unordered_map>
#include <vector>

#include "automata/dfa.h"

namespace sst {

// State predicates and binary relations from Section 3 of the paper. All of
// them are defined on (and meant to be used with) a minimal complete DFA,
// but the graph computations are valid for any complete DFA.

// A state is internal if it is reachable from the initial state via a
// nonempty word (every state except possibly the initial one, which is
// internal iff it lies on a cycle or has an incoming edge from a reachable
// state).
std::vector<bool> InternalStates(const Dfa& dfa);

// Acceptive: some word leads to an accepting state (Def 3.9).
std::vector<bool> AcceptiveStates(const Dfa& dfa);

// Rejective: some word leads to a rejecting state (Def 3.9).
std::vector<bool> RejectiveStates(const Dfa& dfa);

// Almost equivalence (Section 3.1): p and q agree on all *nonempty* words.
// In a minimal DFA this is exactly "identical transition rows" (Lemma 3.3 +
// minimality), which is what this helper tests. At most two distinct states
// of a minimal DFA can be almost equivalent (they must differ on epsilon).
bool AlmostEquivalentStates(const Dfa& minimal_dfa, int p, int q);

// Reachability in the pair graph of a DFA. In synchronized mode both
// components advance on the same letter (the paper's "meet", Def 3.4); in
// blind mode they advance on independent letters but in lockstep (the
// "blindly meet" of Appendix B / Section 4.2).
class PairReachability {
 public:
  PairReachability(const Dfa& dfa, bool blind);

  // True iff some word(s) take p and q to a common state
  // (exists u: p·u = q·u = r for some r; blind: u1, u2 with |u1| = |u2|).
  bool Meets(int p, int q) const;

  // True iff p and q meet in the specific state `target` (Def 3.4 wording
  // "p meets with q in r"). Computed lazily per target and cached.
  bool MeetsIn(int p, int q, int target) const;

  // True iff p and q meet in some state of the given component (states
  // listed in `component_states`); used for the HAR test (Def 3.6).
  bool MeetsInAnyOf(int p, int q, const std::vector<int>& targets) const;

  // Witness extraction (synchronized mode): shortest u with p·u = q·u =
  // target. Returns false if they do not meet in target.
  bool FindMeetInWord(int p, int q, int target, Word* u) const;

  // Witness extraction (blind mode): u1, u2 of equal length with
  // p·u1 = q·u2 = target.
  bool FindBlindMeetInWords(int p, int q, int target, Word* u1,
                            Word* u2) const;

 private:
  size_t PairKey(int p, int q) const {
    return static_cast<size_t>(p) * n_ + q;
  }
  // Backward closure from the given seed pairs; returns a bitmap over pairs.
  std::vector<uint8_t> BackwardFrom(const std::vector<size_t>& seeds) const;
  const std::vector<uint8_t>& MeetsInSet(int target) const;

  const Dfa& dfa_;
  bool blind_;
  int n_;
  // inverse_[q * k + a] = predecessors of q via a.
  std::vector<std::vector<int>> inverse_;
  // inverse_any_[q] = predecessors of q via any symbol (blind mode).
  std::vector<std::vector<int>> inverse_any_;
  std::vector<uint8_t> meets_;  // closure from all diagonal pairs
  mutable std::unordered_map<int, std::vector<uint8_t>> meets_in_cache_;
};

// Finds a nonempty word w with from·w == from (a loop); false if none.
bool FindLoopingWord(const Dfa& dfa, int state, Word* w);

// Finds a shortest *nonempty* word w such that exactly one of p·w, q·w is
// accepting; false if p and q are almost equivalent.
bool FindAlmostDistinguishingWord(const Dfa& dfa, int p, int q, Word* w);

// Finds a word leading from `state` to an accepting (if `accepting` is
// true) or rejecting state; false if impossible.
bool FindWordToAcceptance(const Dfa& dfa, int state, bool accepting, Word* w);

}  // namespace sst

#endif  // SST_AUTOMATA_RELATIONS_H_
