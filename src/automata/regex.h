#ifndef SST_AUTOMATA_REGEX_H_
#define SST_AUTOMATA_REGEX_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "automata/alphabet.h"

namespace sst {

// Regular expression AST over an Alphabet. The paper writes union as `+`;
// the parser accepts both `+` (when binary) and `|`, plus postfix `*`, `+`,
// `?`, parentheses, the wildcard `.` (any symbol of the alphabet), and
// single-letter symbols. Whitespace is ignored. Examples from the paper:
//   "a.*b"  =  a Γ* b        "ab"      =  a b
//   ".*a.*b" = Γ* a Γ* b     ".*ab"    =  Γ* a b
struct Regex {
  enum class Kind { kEmptySet, kEpsilon, kSymbol, kAny, kConcat, kUnion,
                    kStar };

  Kind kind;
  Symbol symbol = -1;                          // kSymbol
  std::vector<std::shared_ptr<Regex>> children;  // kConcat / kUnion / kStar

  static std::shared_ptr<Regex> EmptySet();
  static std::shared_ptr<Regex> Epsilon();
  static std::shared_ptr<Regex> Sym(Symbol s);
  static std::shared_ptr<Regex> Any();
  static std::shared_ptr<Regex> Concat(std::shared_ptr<Regex> a,
                                       std::shared_ptr<Regex> b);
  static std::shared_ptr<Regex> Union(std::shared_ptr<Regex> a,
                                      std::shared_ptr<Regex> b);
  static std::shared_ptr<Regex> Star(std::shared_ptr<Regex> a);
};

using RegexPtr = std::shared_ptr<Regex>;

// Parses `pattern` over `alphabet`. Letters must name symbols already in the
// alphabet (so that `.` has a well-defined expansion). Aborts on syntax
// errors via SST_CHECK; use TryParseRegex for recoverable parsing.
RegexPtr ParseRegex(std::string_view pattern, const Alphabet& alphabet);

// Returns nullptr and fills *error on failure.
RegexPtr TryParseRegex(std::string_view pattern, const Alphabet& alphabet,
                       std::string* error);

// Renders the AST back to parseable syntax (single-letter labels assumed).
std::string RegexToString(const Regex& regex, const Alphabet& alphabet);

}  // namespace sst

#endif  // SST_AUTOMATA_REGEX_H_
