#include "automata/random_dfa.h"

#include <numeric>
#include <vector>

namespace sst {

Dfa RandomDfa(int num_states, int num_symbols, double accept_probability,
              Rng* rng) {
  Dfa dfa = Dfa::Create(num_states, num_symbols);
  for (int q = 0; q < num_states; ++q) {
    dfa.accepting[q] = rng->NextBool(accept_probability);
    for (Symbol a = 0; a < num_symbols; ++a) {
      dfa.SetNext(q, a, static_cast<int>(rng->NextBelow(num_states)));
    }
  }
  return dfa;
}

Dfa RandomPermutationDfa(int num_states, int num_symbols,
                         double accept_probability, Rng* rng) {
  Dfa dfa = Dfa::Create(num_states, num_symbols);
  std::vector<int> perm(num_states);
  for (Symbol a = 0; a < num_symbols; ++a) {
    std::iota(perm.begin(), perm.end(), 0);
    for (int i = num_states - 1; i > 0; --i) {
      int j = static_cast<int>(rng->NextBelow(i + 1));
      std::swap(perm[i], perm[j]);
    }
    for (int q = 0; q < num_states; ++q) dfa.SetNext(q, a, perm[q]);
  }
  for (int q = 0; q < num_states; ++q) {
    dfa.accepting[q] = rng->NextBool(accept_probability);
  }
  return dfa;
}

Dfa RandomRTrivialDfa(int num_states, int num_symbols,
                      double accept_probability, Rng* rng) {
  Dfa dfa = Dfa::Create(num_states, num_symbols);
  for (int q = 0; q < num_states; ++q) {
    dfa.accepting[q] = rng->NextBool(accept_probability);
    for (Symbol a = 0; a < num_symbols; ++a) {
      // Target index >= q keeps all SCCs trivial.
      int to = q + static_cast<int>(rng->NextBelow(num_states - q));
      dfa.SetNext(q, a, to);
    }
  }
  return dfa;
}

Dfa RandomFiniteLanguageDfa(int max_len, int num_symbols,
                            double accept_probability, Rng* rng) {
  // Chain of levels 0..max_len plus a rejecting sink; acceptance decided per
  // level with the given probability (level 0 = empty word).
  int sink = max_len + 1;
  Dfa dfa = Dfa::Create(max_len + 2, num_symbols);
  for (int level = 0; level <= max_len; ++level) {
    dfa.accepting[level] = rng->NextBool(accept_probability);
    for (Symbol a = 0; a < num_symbols; ++a) {
      dfa.SetNext(level, a, level < max_len ? level + 1 : sink);
    }
  }
  for (Symbol a = 0; a < num_symbols; ++a) dfa.SetNext(sink, a, sink);
  return dfa;
}

}  // namespace sst
