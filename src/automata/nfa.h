#ifndef SST_AUTOMATA_NFA_H_
#define SST_AUTOMATA_NFA_H_

#include <utility>
#include <vector>

#include "automata/alphabet.h"
#include "automata/regex.h"

namespace sst {

// Nondeterministic finite automaton with epsilon transitions (symbol -1).
struct Nfa {
  static constexpr Symbol kEpsilon = -1;

  int num_states = 0;
  int num_symbols = 0;
  int initial = 0;
  // edges[q] = list of (symbol-or-epsilon, target).
  std::vector<std::vector<std::pair<Symbol, int>>> edges;
  std::vector<bool> accepting;

  int AddState();
  void AddEdge(int from, Symbol symbol, int to);
  bool Accepts(const Word& word) const;
};

// Thompson construction. `num_symbols` fixes the expansion of the wildcard.
Nfa RegexToNfa(const Regex& regex, int num_symbols);

}  // namespace sst

#endif  // SST_AUTOMATA_NFA_H_
