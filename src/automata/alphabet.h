#ifndef SST_AUTOMATA_ALPHABET_H_
#define SST_AUTOMATA_ALPHABET_H_

#include <array>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace sst {

// Symbols are dense non-negative integers in [0, size()). The Alphabet maps
// human-readable labels (XML element names, JSON keys, single letters) to
// symbols and back. Automata only carry the alphabet size; labels are needed
// at parse/print boundaries.
using Symbol = int;

class Alphabet {
 public:
  Alphabet() = default;

  // Convenience: one symbol per character of `letters`, in order.
  // E.g. Alphabet::FromLetters("abc") gives a=0, b=1, c=2.
  static Alphabet FromLetters(std::string_view letters);

  // Returns the symbol for `label`, interning it if new.
  Symbol Intern(std::string_view label);

  // Returns the symbol for `label`, or -1 if unknown.
  Symbol Find(std::string_view label) const;

  // Byte→symbol export for table-driven byte scanners: entry b is the
  // symbol whose label is exactly the one-byte string {b}, or -1 if no
  // such label is interned. Hot loops precompute this once instead of
  // calling Find per input byte.
  std::array<Symbol, 256> ByteSymbolTable() const;

  const std::string& LabelOf(Symbol s) const { return labels_[s]; }
  int size() const { return static_cast<int>(labels_.size()); }

 private:
  std::vector<std::string> labels_;
  std::unordered_map<std::string, Symbol> index_;
};

// A word over an alphabet.
using Word = std::vector<Symbol>;

// Converts a string of single-character labels to a word; every character
// must already be present in the alphabet.
Word WordFromString(const Alphabet& alphabet, std::string_view text);

// Inverse of WordFromString for single-character labels (multi-character
// labels are wrapped in angle brackets).
std::string WordToString(const Alphabet& alphabet, const Word& word);

}  // namespace sst

#endif  // SST_AUTOMATA_ALPHABET_H_
