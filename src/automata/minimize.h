#ifndef SST_AUTOMATA_MINIMIZE_H_
#define SST_AUTOMATA_MINIMIZE_H_

#include "automata/dfa.h"
#include "automata/regex.h"

namespace sst {

// Hopcroft minimization. Input must be a valid complete DFA; the result is
// the minimal complete DFA for the language, containing only reachable
// states. Every syntactic-class definition in the paper (Definitions 3.4,
// 3.6, 3.9) is stated on the minimal automaton, so this is the canonical
// entry point for building automata to classify.
Dfa Minimize(const Dfa& dfa);

// Moore's O(n^2) partition refinement — an independent implementation used
// to cross-check Hopcroft in tests and as the ablation baseline in
// benchmarks. Produces the same canonical result as Minimize.
Dfa MinimizeMoore(const Dfa& dfa);

// Convenience pipeline: regex -> NFA -> DFA -> minimal DFA.
Dfa RegexToMinimalDfa(const Regex& regex, int num_symbols);

// Parse + compile in one step.
Dfa CompileRegex(std::string_view pattern, const Alphabet& alphabet);

}  // namespace sst

#endif  // SST_AUTOMATA_MINIMIZE_H_
