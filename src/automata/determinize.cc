#include "automata/determinize.h"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

namespace sst {

namespace {

std::vector<int> EpsilonClosure(const Nfa& nfa, std::vector<int> states) {
  std::vector<bool> in_set(nfa.num_states, false);
  for (int q : states) in_set[q] = true;
  for (size_t i = 0; i < states.size(); ++i) {
    for (const auto& [symbol, to] : nfa.edges[states[i]]) {
      if (symbol == Nfa::kEpsilon && !in_set[to]) {
        in_set[to] = true;
        states.push_back(to);
      }
    }
  }
  std::sort(states.begin(), states.end());
  return states;
}

}  // namespace

Dfa Determinize(const Nfa& nfa) {
  const int k = nfa.num_symbols;
  std::map<std::vector<int>, int> id;
  std::vector<std::vector<int>> subsets;
  auto intern = [&](std::vector<int> subset) {
    auto [it, inserted] = id.emplace(subset, static_cast<int>(subsets.size()));
    if (inserted) subsets.push_back(std::move(subset));
    return it->second;
  };

  Dfa dfa;
  dfa.num_symbols = k;
  dfa.initial = intern(EpsilonClosure(nfa, {nfa.initial}));
  for (size_t i = 0; i < subsets.size(); ++i) {
    bool acc = false;
    for (int q : subsets[i]) acc = acc || nfa.accepting[q];
    dfa.accepting.push_back(acc);
    for (Symbol a = 0; a < k; ++a) {
      std::vector<int> targets;
      std::vector<bool> seen(nfa.num_states, false);
      for (int q : subsets[i]) {
        for (const auto& [symbol, to] : nfa.edges[q]) {
          if (symbol == a && !seen[to]) {
            seen[to] = true;
            targets.push_back(to);
          }
        }
      }
      dfa.next_table.push_back(intern(EpsilonClosure(nfa, std::move(targets))));
    }
  }
  dfa.num_states = static_cast<int>(subsets.size());
  return dfa;
}

}  // namespace sst
