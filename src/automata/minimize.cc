#include "automata/minimize.h"

#include <algorithm>
#include <deque>
#include <map>
#include <numeric>
#include <set>
#include <utility>
#include <vector>

#include "automata/determinize.h"
#include "automata/nfa.h"
#include "base/check.h"

namespace sst {

namespace {

// Hopcroft's partition-refinement algorithm on the trimmed DFA.
std::vector<int> HopcroftClasses(const Dfa& dfa) {
  const int n = dfa.num_states;
  const int k = dfa.num_symbols;

  // Inverse transitions: for each (state, symbol), the list of predecessors.
  std::vector<std::vector<int>> inverse(static_cast<size_t>(n) * k);
  for (int q = 0; q < n; ++q) {
    for (Symbol a = 0; a < k; ++a) {
      inverse[static_cast<size_t>(dfa.Next(q, a)) * k + a].push_back(q);
    }
  }

  // Partition as: class id per state + member lists.
  std::vector<int> class_of(n, 0);
  std::vector<std::vector<int>> members;
  {
    std::vector<int> acc, rej;
    for (int q = 0; q < n; ++q) {
      (dfa.accepting[q] ? acc : rej).push_back(q);
    }
    if (acc.empty() || rej.empty()) {
      return class_of;  // single class
    }
    members.push_back(std::move(acc));
    members.push_back(std::move(rej));
    for (int q : members[1]) class_of[q] = 1;
  }

  // Worklist of (class, symbol) splitters.
  std::deque<std::pair<int, Symbol>> worklist;
  std::set<std::pair<int, Symbol>> in_worklist;
  auto push = [&](int c, Symbol a) {
    if (in_worklist.insert({c, a}).second) worklist.emplace_back(c, a);
  };
  {
    int smaller = members[0].size() <= members[1].size() ? 0 : 1;
    for (Symbol a = 0; a < k; ++a) {
      push(smaller, a);
      push(1 - smaller, a);  // pushing both is correct and simple
    }
  }

  std::vector<int> touched_count;   // per class: how many members are hit
  std::vector<int> touched_classes;
  std::vector<bool> hit(n, false);

  while (!worklist.empty()) {
    auto [splitter, a] = worklist.front();
    worklist.pop_front();
    in_worklist.erase({splitter, a});

    // X = predecessors by `a` of the splitter class.
    std::vector<int> x;
    for (int q : members[splitter]) {
      for (int p : inverse[static_cast<size_t>(q) * k + a]) x.push_back(p);
    }
    if (x.empty()) continue;

    touched_count.assign(members.size(), 0);
    touched_classes.clear();
    for (int p : x) {
      if (!hit[p]) {
        hit[p] = true;
        int c = class_of[p];
        if (touched_count[c]++ == 0) touched_classes.push_back(c);
      }
    }

    for (int c : touched_classes) {
      int hits = touched_count[c];
      if (hits == static_cast<int>(members[c].size())) continue;  // no split
      // Split class c into hit and non-hit parts.
      std::vector<int> hit_part, rest;
      hit_part.reserve(hits);
      for (int q : members[c]) {
        (hit[q] ? hit_part : rest).push_back(q);
      }
      int new_class = static_cast<int>(members.size());
      // Keep the larger part in place; the smaller becomes the new class.
      if (hit_part.size() <= rest.size()) {
        members[c] = std::move(rest);
        members.push_back(std::move(hit_part));
      } else {
        members[c] = std::move(hit_part);
        members.push_back(std::move(rest));
      }
      for (int q : members[new_class]) class_of[q] = new_class;
      for (Symbol s = 0; s < k; ++s) {
        if (in_worklist.count({c, s})) {
          push(new_class, s);
        } else {
          // Push the smaller of the two parts.
          int smaller = members[new_class].size() <= members[c].size()
                            ? new_class
                            : c;
          push(smaller, s);
        }
      }
    }
    for (int p : x) hit[p] = false;
  }
  return class_of;
}

// Moore refinement: split classes by (acceptance, successor-class vector)
// until stable.
std::vector<int> MooreClasses(const Dfa& dfa) {
  const int n = dfa.num_states;
  const int k = dfa.num_symbols;
  std::vector<int> class_of(n, 0);
  int count = 1;
  {
    bool any_accepting = false, any_rejecting = false;
    for (int q = 0; q < n; ++q) {
      (dfa.accepting[q] ? any_accepting : any_rejecting) = true;
    }
    if (any_accepting && any_rejecting) {
      count = 2;
      for (int q = 0; q < n; ++q) class_of[q] = dfa.accepting[q] ? 1 : 0;
    }
  }
  for (;;) {
    std::map<std::vector<int>, int> signature_id;
    std::vector<int> next(n);
    for (int q = 0; q < n; ++q) {
      std::vector<int> signature;
      signature.reserve(k + 1);
      signature.push_back(class_of[q]);
      for (Symbol a = 0; a < k; ++a) {
        signature.push_back(class_of[dfa.Next(q, a)]);
      }
      auto [it, inserted] = signature_id.emplace(
          std::move(signature), static_cast<int>(signature_id.size()));
      next[q] = it->second;
    }
    int new_count = static_cast<int>(signature_id.size());
    // The new partition refines the old one; equal size means stability.
    if (new_count == count) return class_of;
    class_of = std::move(next);
    count = new_count;
  }
}

// Renumbers classes canonically (BFS order from the initial class) and
// materializes the quotient automaton.
Dfa QuotientByClasses(const Dfa& dfa, const std::vector<int>& class_of) {
  int num_classes = *std::max_element(class_of.begin(), class_of.end()) + 1;
  std::vector<int> order(num_classes, -1);
  std::vector<int> bfs;
  order[class_of[dfa.initial]] = 0;
  bfs.push_back(dfa.initial);
  std::vector<bool> class_seen(num_classes, false);
  class_seen[class_of[dfa.initial]] = true;
  for (size_t i = 0; i < bfs.size(); ++i) {
    int q = bfs[i];
    for (Symbol a = 0; a < dfa.num_symbols; ++a) {
      int to = dfa.Next(q, a);
      int c = class_of[to];
      if (!class_seen[c]) {
        class_seen[c] = true;
        order[c] = static_cast<int>(bfs.size());
        bfs.push_back(to);
      }
    }
  }
  Dfa result = Dfa::Create(static_cast<int>(bfs.size()), dfa.num_symbols);
  result.initial = 0;
  for (size_t i = 0; i < bfs.size(); ++i) {
    int rep = bfs[i];
    result.accepting[i] = dfa.accepting[rep];
    for (Symbol a = 0; a < dfa.num_symbols; ++a) {
      result.SetNext(static_cast<int>(i), a, order[class_of[dfa.Next(rep, a)]]);
    }
  }
  return result;
}

}  // namespace

Dfa MinimizeMoore(const Dfa& input) {
  SST_CHECK(input.IsValid());
  Dfa dfa = Trim(input);
  return QuotientByClasses(dfa, MooreClasses(dfa));
}

Dfa Minimize(const Dfa& input) {
  SST_CHECK(input.IsValid());
  Dfa dfa = Trim(input);
  return QuotientByClasses(dfa, HopcroftClasses(dfa));
}

Dfa RegexToMinimalDfa(const Regex& regex, int num_symbols) {
  return Minimize(Determinize(RegexToNfa(regex, num_symbols)));
}

Dfa CompileRegex(std::string_view pattern, const Alphabet& alphabet) {
  RegexPtr regex = ParseRegex(pattern, alphabet);
  return RegexToMinimalDfa(*regex, alphabet.size());
}

}  // namespace sst
