#include "engine/session.h"

#include "base/check.h"

namespace sst {

Session::Session(std::shared_ptr<const QueryPlan> plan)
    : plan_(std::move(plan)),
      machine_(plan_->NewMachine()),
      selector_(machine_.get(), plan_->options().format, &plan_->alphabet(),
                &plan_->scanner_tables(), plan_->fused(),
                plan_->fused_dra()) {
  SST_CHECK_MSG(machine_ != nullptr,
                "Session requires an exact plan (plan->exact())");
}

SessionPool::SessionPool(std::shared_ptr<const QueryPlan> plan,
                         size_t max_idle)
    : plan_(std::move(plan)), max_idle_(max_idle) {}

std::unique_ptr<Session> SessionPool::Acquire() {
  std::unique_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!idle_.empty()) {
      session = std::move(idle_.back());
      idle_.pop_back();
      ++stats_.reused;
    } else {
      ++stats_.created;
    }
    ++stats_.outstanding;
    if (stats_.outstanding > stats_.peak_outstanding) {
      stats_.peak_outstanding = stats_.outstanding;
    }
  }
  if (session == nullptr) return std::make_unique<Session>(plan_);
  session->Reset();
  return session;
}

void SessionPool::Release(std::unique_ptr<Session> session) {
  if (session == nullptr) return;
  SST_CHECK(session->plan_ptr() == plan_);
  std::lock_guard<std::mutex> lock(mu_);
  --stats_.outstanding;
  if (idle_.size() < max_idle_) {
    idle_.push_back(std::move(session));
  } else {
    ++stats_.destroyed;
  }
}

SessionPool::Stats SessionPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats snapshot = stats_;
  snapshot.idle = static_cast<int64_t>(idle_.size());
  return snapshot;
}

size_t SessionPool::idle() const {
  std::lock_guard<std::mutex> lock(mu_);
  return idle_.size();
}

}  // namespace sst
