#ifndef SST_ENGINE_SESSION_H_
#define SST_ENGINE_SESSION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <utility>
#include <vector>

#include "dra/stream_error.h"
#include "dra/streaming.h"
#include "engine/query_plan.h"

namespace sst {

// The run-many half of query evaluation: cheap per-stream mutable state —
// one machine instance (a state, or a state plus O(registers) chain), the
// scanner's lexer/validator state, and the StreamStats counters — borrowing
// a const QueryPlan. K concurrent streams over the same query hold K
// Sessions and ONE plan: no per-session table copies, no recompilation.
//
// A Session is single-threaded (one stream); concurrency comes from many
// sessions sharing the plan. Construction on a compiled plan performs no
// table building (cost independent of automaton and alphabet size), and
// Reset() restores the freshly-constructed state without touching the heap,
// which makes sessions poolable (SessionPool below).
class Session {
 public:
  // `plan` must be exact() — a plan with no machine cannot stream.
  explicit Session(std::shared_ptr<const QueryPlan> plan);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const QueryPlan& plan() const { return *plan_; }
  const std::shared_ptr<const QueryPlan>& plan_ptr() const { return plan_; }

  // The underlying scanner, for policy/limits/callback configuration and
  // the full observability surface (stats, recovered errors, tiers).
  StreamingSelector& selector() { return selector_; }
  const StreamingSelector& selector() const { return selector_; }

  // Streaming interface (see StreamingSelector for semantics).
  bool Feed(std::string_view chunk) { return selector_.Feed(chunk); }
  bool Finish() { return selector_.Finish(); }
  void Reset() { selector_.Reset(); }

  // Streams every pre-selected node into `sink` as a MatchEvent
  // (query_id 0) at its earliest certain byte; survives Reset() like
  // limits, so a pooled session keeps its sink wiring across documents.
  // See StreamingSelector::set_match_sink.
  void set_match_sink(MatchSink* sink) { selector_.set_match_sink(sink); }

  int64_t matches() const { return selector_.matches(); }
  StreamStats stats() const { return selector_.stats(); }
  bool failed() const { return selector_.failed(); }
  const StreamError& stream_error() const { return selector_.stream_error(); }

 private:
  std::shared_ptr<const QueryPlan> plan_;
  std::unique_ptr<StreamMachine> machine_;
  StreamingSelector selector_;
};

// A bounded free-list of idle Sessions over one shared plan. Acquire()
// reuses an idle session (a Reset, zero heap allocations) or creates a
// fresh one; Release() returns it. Thread-safe; typical use is one pool
// per served query with worker threads acquiring per request.
class SessionPool {
 public:
  // Occupancy-observable pool counters: serving layers drive admission
  // control and load shedding off `outstanding` (leases currently live)
  // and `peak_outstanding` (the high-watermark since construction), and
  // export the whole snapshot through their metrics endpoint.
  struct Stats {
    int64_t created = 0;    // sessions constructed from scratch
    int64_t reused = 0;     // acquisitions served from the free list
    int64_t destroyed = 0;  // releases dropped because the free list was full
    int64_t outstanding = 0;       // acquired and not yet released
    int64_t peak_outstanding = 0;  // occupancy high-watermark
    int64_t idle = 0;              // free-list size at snapshot time

    friend bool operator==(const Stats&, const Stats&) = default;
  };

  // `max_idle` bounds the free list; releases beyond it destroy the
  // session instead (bounding memory under bursty load).
  explicit SessionPool(std::shared_ptr<const QueryPlan> plan,
                       size_t max_idle = 64);

  std::unique_ptr<Session> Acquire();
  void Release(std::unique_ptr<Session> session);

  const std::shared_ptr<const QueryPlan>& plan() const { return plan_; }
  Stats stats() const;
  size_t idle() const;

 private:
  std::shared_ptr<const QueryPlan> plan_;
  size_t max_idle_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Session>> idle_;
  Stats stats_;
};

// RAII lease: a Session that returns itself to its pool on destruction.
class SessionLease {
 public:
  SessionLease(SessionPool* pool, std::unique_ptr<Session> session)
      : pool_(pool), session_(std::move(session)) {}
  ~SessionLease() {
    if (session_) pool_->Release(std::move(session_));
  }

  SessionLease(SessionLease&&) = default;
  SessionLease& operator=(SessionLease&&) = default;

  Session* operator->() { return session_.get(); }
  Session& operator*() { return *session_; }

 private:
  SessionPool* pool_;
  std::unique_ptr<Session> session_;
};

inline SessionLease Lease(SessionPool& pool) {
  return SessionLease(&pool, pool.Acquire());
}

}  // namespace sst

#endif  // SST_ENGINE_SESSION_H_
