#ifndef SST_ENGINE_CHECKPOINT_H_
#define SST_ENGINE_CHECKPOINT_H_

#include <cstdint>
#include <vector>

#include "dra/streaming.h"

namespace sst {

// One recorded resume point of an incremental scan: the selector's full
// resumable state at a document offset, plus the aggregates the splice
// step needs — how many match events the prefix emitted and the exact
// peak depth of the segment this checkpoint closes.
struct Checkpoint {
  int64_t offset = 0;       // document byte position (== state.bytes_fed)
  int64_t match_index = 0;  // match events emitted strictly before offset
  // Peak nesting depth over (previous checkpoint's offset, offset]; the
  // stream's global max_depth is the max over all segment peaks plus the
  // tail — which is why an edit can splice an *exact* peak without
  // rescanning the suffix.
  int64_t segment_peak_depth = 0;
  SelectorCheckpoint state;
};

// The checkpoint stream of one scanned document: checkpoints at strictly
// increasing offsets (the first always at offset 0 — the origin), with the
// binary searches ApplyEdit needs (resume point at or before the edit,
// first convergence candidate at or after it) and the peak-depth algebra
// of the splice step. Owns no machine resources directly — releasing a
// checkpoint goes through the selector so the machine can free what the
// saved config retains (stack-tier pooled nodes).
class CheckpointStream {
 public:
  bool empty() const { return cps_.empty(); }
  size_t size() const { return cps_.size(); }
  const Checkpoint& at(size_t i) const { return cps_[i]; }
  Checkpoint& mutable_at(size_t i) { return cps_[i]; }

  // Appends; `cp.offset` must exceed the last recorded offset.
  void Append(Checkpoint cp);

  // Index of the last checkpoint with offset <= `offset`, or -1 when the
  // stream is empty (never with an origin checkpoint recorded).
  int64_t FindResume(int64_t offset) const;

  // Index of the first checkpoint with offset >= `offset`; size() if none.
  size_t FirstAtOrAfter(int64_t offset) const;

  // Max segment peak over checkpoints [0, upto] — the exact peak depth of
  // the document prefix ending at checkpoint `upto`.
  int64_t PrefixPeak(size_t upto) const;

  // Max segment peak over checkpoints [from, size()) and `tail_peak` (the
  // peak after the last checkpoint) — the exact peak depth of the suffix
  // starting at checkpoint from-1's offset.
  int64_t SuffixPeak(size_t from, int64_t tail_peak) const;

  // Releases checkpoints [from, to) through the selector. Does not erase
  // them (callers rebuilding the stream splice survivors themselves).
  void ReleaseRange(StreamingSelector* selector, size_t from, size_t to);

  // Releases everything and empties the stream.
  void Clear(StreamingSelector* selector);

  // Replaces the underlying storage (the splice step rebuilds the stream
  // as prefix + rescan checkpoints + rebased suffix).
  void ReplaceAll(std::vector<Checkpoint> cps);

 private:
  std::vector<Checkpoint> cps_;
};

}  // namespace sst

#endif  // SST_ENGINE_CHECKPOINT_H_
