#include "engine/incremental.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "base/check.h"

namespace sst {

namespace {

// Shifts every absolute byte position a suffix record carries by the
// edit's net size change. Sentinel -1 positions stay sentinels.
StreamError RebaseError(StreamError err, int64_t delta) {
  if (err.offset >= 0) err.offset += delta;
  return err;
}

StreamingSelector::RecoveredError RebaseRecovered(
    StreamingSelector::RecoveredError rec, int64_t delta) {
  rec.error = RebaseError(rec.error, delta);
  if (rec.excise_from >= 0) rec.excise_from += delta;
  if (rec.resume_offset >= 0) rec.resume_offset += delta;
  return rec;
}

}  // namespace

IncrementalSession::IncrementalSession(std::shared_ptr<const QueryPlan> plan,
                                       IncrementalOptions options)
    : plan_(std::move(plan)),
      machine_(plan_->NewMachine()),
      selector_(machine_.get(), plan_->options().format, &plan_->alphabet(),
                &plan_->scanner_tables(), plan_->fused(), plan_->fused_dra()),
      options_(options) {
  SST_CHECK_MSG(machine_ != nullptr,
                "IncrementalSession requires an exact plan");
  SST_CHECK(options_.checkpoint_interval >= 1);
  stack_tier_ = plan_->kind() == EvaluatorKind::kStackBaseline;
  selector_.set_recovery_policy(options_.policy);
  selector_.set_limits(options_.limits);
  sink_.set_log(&scratch_events_);
  selector_.set_match_sink(&sink_);
}

bool IncrementalSession::MakeCheckpointAt(int64_t offset,
                                          int64_t base_match_index,
                                          Checkpoint* out) {
  SelectorCheckpoint state;
  if (!selector_.SaveCheckpoint(&state)) return false;
  out->offset = offset;
  out->match_index =
      base_match_index + static_cast<int64_t>(scratch_events_.size());
  out->segment_peak_depth = selector_.TakeSegmentPeakDepth();
  out->state = std::move(state);
  return true;
}

IncrementalSession::Results IncrementalSession::CaptureLiveResults(
    std::vector<MatchEvent> events) {
  Results r;
  r.events = std::move(events);
  r.tail_peak = supported_ ? selector_.TakeSegmentPeakDepth() : 0;
  StreamStats st = selector_.stats();
  if (supported_) {
    // The selector's running peaks were re-based at every checkpoint
    // (TakeSegmentPeakDepth) and at every restore, so the whole-run peak
    // is the max over recorded segment peaks plus the live tail. Stack
    // size tracks element depth exactly on selector-driven streams, so
    // the stack tier's peak composes the same way.
    st.max_depth = std::max(cps_.SuffixPeak(0, r.tail_peak), st.max_depth);
    st.max_depth = std::max(st.max_depth, r.tail_peak);
    if (stack_tier_) st.max_stack_depth = st.max_depth;
    // After a restore the recorder's emission counter covers only the
    // rescan; single-query verdict-only emission is one event per match.
    st.matches_emitted = st.matches;
    st.pending_matches_peak = 0;
  }
  r.stats = st;
  r.failed = selector_.failed();
  r.complete = selector_.document_complete();
  r.accepting = selector_.machine_accepting();
  r.error = selector_.stream_error();
  r.recovered = selector_.recovered_errors();
  return r;
}

void IncrementalSession::DoFullScan(std::string_view document) {
  // Release retained machine resources before Reset wipes the machine's
  // slot table (the reverse order would release stale handles).
  cps_.Clear(&selector_);
  scratch_events_.clear();
  selector_.Reset();

  SelectorCheckpoint origin;
  supported_ = selector_.SaveCheckpoint(&origin);
  if (supported_) {
    Checkpoint cp;
    cp.offset = 0;
    cp.match_index = 0;
    cp.segment_peak_depth = 0;
    cp.state = std::move(origin);
    cps_.Append(std::move(cp));
  }

  const int64_t n = static_cast<int64_t>(document.size());
  int64_t pos = 0;
  while (pos < n && !selector_.failed()) {
    const int64_t target = std::min(n, NextGrid(pos));
    if (!selector_.Feed(document.substr(static_cast<size_t>(pos),
                                        static_cast<size_t>(target - pos)))) {
      break;
    }
    pos = target;
    if (supported_ && pos < n) {
      Checkpoint cp;
      if (MakeCheckpointAt(pos, 0, &cp)) cps_.Append(std::move(cp));
    }
  }
  if (!selector_.failed()) selector_.Finish();

  results_ = CaptureLiveResults(std::move(scratch_events_));
  scratch_events_.clear();
  doc_size_ = n;
  scanned_ = true;
}

bool IncrementalSession::Scan(std::string_view document) {
  DoFullScan(document);
  return !results_.failed;
}

IncrementalSession::EditOutcome IncrementalSession::ApplyEdit(
    int64_t offset, int64_t old_len, std::string_view new_bytes,
    std::string_view document) {
  SST_CHECK_MSG(scanned_, "ApplyEdit requires a prior Scan");
  SST_CHECK(offset >= 0 && old_len >= 0 && offset + old_len <= doc_size_);
  const int64_t delta = static_cast<int64_t>(new_bytes.size()) - old_len;
  SST_CHECK_MSG(static_cast<int64_t>(document.size()) == doc_size_ + delta,
                "post-edit document size does not match the edit");
  SST_CHECK_MSG(
      document.substr(static_cast<size_t>(offset), new_bytes.size()) ==
          new_bytes,
      "post-edit document does not contain new_bytes at the edit offset");

  EditOutcome out;
  const int64_t ri = cps_.FindResume(offset);
  if (!supported_ || ri < 0 ||
      !selector_.RestoreCheckpoint(cps_.at(static_cast<size_t>(ri)).state)) {
    out.path = EditPath::kFullRescan;
    out.checkpoints_dropped = static_cast<int64_t>(cps_.size());
    DoFullScan(document);
    out.bytes_rescanned = results_.stats.bytes_fed;
    return out;
  }

  const int64_t n_new = static_cast<int64_t>(document.size());
  const int64_t resume_off = cps_.at(static_cast<size_t>(ri)).offset;
  const int64_t resume_match = cps_.at(static_cast<size_t>(ri)).match_index;
  SST_CHECK(resume_match <= static_cast<int64_t>(results_.events.size()));
  scratch_events_.clear();
  out.resumed_from = resume_off;

  // Convergence candidates: recorded checkpoints strictly past both the
  // edited region and the resume point. A candidate can only match at
  // exactly its shifted offset, so failed candidates are skipped for good
  // (they land in the dropped range when a later one converges).
  const bool splice_ok = options_.limits.unlimited();
  size_t cand = std::max(cps_.FirstAtOrAfter(offset + old_len),
                         static_cast<size_t>(ri) + 1);
  const int64_t grid = options_.checkpoint_interval;
  std::vector<Checkpoint> rescan_cps;
  bool converged = false;
  int64_t scan_pos = resume_off;

  while (true) {
    if (splice_ok && !selector_.failed() && cand < cps_.size() &&
        cps_.at(cand).offset + delta == scan_pos) {
      // A failed old run whose first error predates this candidate lost
      // the fatal error's record (only the first error is stored), so the
      // spliced first-error could not be composed — skip the candidate.
      const bool error_composable =
          !results_.failed || cps_.at(cand).state.stream_error.ok();
      if (error_composable &&
          selector_.CheckpointConverged(cps_.at(cand).state, delta)) {
        converged = true;
        break;
      }
      ++cand;
    }
    if (scan_pos >= n_new || selector_.failed()) break;
    if (scan_pos > resume_off && scan_pos % grid == 0) {
      Checkpoint cp;
      if (MakeCheckpointAt(scan_pos, resume_match, &cp)) {
        rescan_cps.push_back(std::move(cp));
      }
    }
    int64_t target = std::min(n_new, NextGrid(scan_pos));
    if (splice_ok && cand < cps_.size()) {
      target = std::min(target, cps_.at(cand).offset + delta);
    }
    if (!selector_.Feed(document.substr(static_cast<size_t>(scan_pos),
                                        static_cast<size_t>(target -
                                                            scan_pos)))) {
      break;
    }
    scan_pos = target;
  }

  if (!converged) {
    // No configuration match: the rescan simply runs to EOF. Counters are
    // exact without splicing — the restore seeded them with exact prefix
    // values — which is also why finite limits are safe on this path.
    if (!selector_.failed()) selector_.Finish();
    out.path = EditPath::kScannedToEnd;
    out.checkpoints_dropped =
        static_cast<int64_t>(cps_.size()) - (ri + 1);
    cps_.ReleaseRange(&selector_, static_cast<size_t>(ri) + 1, cps_.size());
    std::vector<Checkpoint> ncps;
    ncps.reserve(static_cast<size_t>(ri) + 1 + rescan_cps.size());
    for (size_t k = 0; k <= static_cast<size_t>(ri); ++k) {
      ncps.push_back(cps_.at(k));
    }
    for (Checkpoint& rc : rescan_cps) ncps.push_back(std::move(rc));
    cps_.ReplaceAll(std::move(ncps));

    std::vector<MatchEvent> ev;
    ev.reserve(static_cast<size_t>(resume_match) + scratch_events_.size());
    ev.insert(ev.end(), results_.events.begin(),
              results_.events.begin() + resume_match);
    ev.insert(ev.end(), scratch_events_.begin(), scratch_events_.end());
    results_ = CaptureLiveResults(std::move(ev));
    scratch_events_.clear();
    out.bytes_rescanned = results_.stats.bytes_fed - resume_off;
    doc_size_ = n_new;
    return out;
  }

  // --- Converged: splice the suffix ------------------------------------
  const size_t j = cand;
  const size_t old_cp_count = cps_.size();
  const StreamStats live = selector_.stats();
  const int64_t live_conv_peak = selector_.TakeSegmentPeakDepth();
  const std::vector<StreamingSelector::RecoveredError> live_rec =
      selector_.recovered_errors();
  const StreamError live_err = selector_.stream_error();
  const Checkpoint& cj = cps_.at(j);
  const int64_t conv_match =
      resume_match + static_cast<int64_t>(scratch_events_.size());
  SST_CHECK(cj.match_index <= static_cast<int64_t>(results_.events.size()));

  // Suffix deltas: live value at convergence minus cj's recorded value.
  // Adding a delta turns any old prefix aggregate at or past cj into its
  // exact post-edit value.
  const int64_t d_match = conv_match - cj.match_index;
  const int64_t d_events = live.events - cj.state.events;
  const int64_t d_nodes = selector_.nodes() - cj.state.nodes;
  const int64_t d_matches = live.matches - cj.state.matches;
  const int64_t d_rec = live.errors_recovered - cj.state.errors_recovered;
  const int64_t d_skip = live.subtrees_skipped - cj.state.subtrees_skipped;
  const int64_t d_under =
      live.underflow_closes - cj.state.machine_underflows;
  const size_t cj_rec = cj.state.recovered.size();

  Results r;
  r.events.reserve(static_cast<size_t>(conv_match) + results_.events.size() -
                   static_cast<size_t>(cj.match_index));
  r.events.insert(r.events.end(), results_.events.begin(),
                  results_.events.begin() + resume_match);
  r.events.insert(r.events.end(), scratch_events_.begin(),
                  scratch_events_.end());
  for (size_t k = static_cast<size_t>(cj.match_index);
       k < results_.events.size(); ++k) {
    MatchEvent e = results_.events[k];
    e.start_offset += delta;
    e.certainty_offset += delta;  // end_offset stays -1 (verdict-only log)
    r.events.push_back(e);
  }

  r.recovered = live_rec;
  for (size_t k = cj_rec; k < results_.recovered.size(); ++k) {
    r.recovered.push_back(RebaseRecovered(results_.recovered[k], delta));
  }
  // Convergence inside a skip region: the open skip's RecoveredError gets
  // its resume_offset/closed_label filled in-place when the skip resolves
  // — in the suffix, which a spliced edit never re-runs. The old run's
  // final record of the same entry (old index cj_rec - 1; an open skip at
  // cj implies cj recorded it) carries the resolution, in old coordinates.
  if (cj.state.in_skip && !live_rec.empty() &&
      r.recovered[live_rec.size() - 1].resume_offset < 0 &&
      cj_rec >= 1 && results_.recovered.size() >= cj_rec &&
      results_.recovered[cj_rec - 1].resume_offset >= 0) {
    StreamingSelector::RecoveredError& open =
        r.recovered[live_rec.size() - 1];
    open.resume_offset = results_.recovered[cj_rec - 1].resume_offset + delta;
    open.closed_label = results_.recovered[cj_rec - 1].closed_label;
  }

  // First error of the edited document: anything live saw comes first
  // (the live region precedes the suffix); otherwise the first old error
  // past cj — the old run's first error when cj was still clean (any
  // earlier one would have been at or before cj), else the first suffix
  // recovered entry. A fatal-after-recoveries suffix was excluded at
  // candidate selection.
  StreamError first;
  if (!live_err.ok()) {
    first = live_err;
  } else if (cj.state.stream_error.ok()) {
    if (!results_.error.ok()) first = RebaseError(results_.error, delta);
  } else if (r.recovered.size() > live_rec.size()) {
    first = r.recovered[live_rec.size()].error;
  }
  r.error = first;

  int64_t peak = cps_.PrefixPeak(static_cast<size_t>(ri));
  for (const Checkpoint& rc : rescan_cps) {
    peak = std::max(peak, rc.segment_peak_depth);
  }
  peak = std::max(peak, live_conv_peak);
  peak = std::max(peak, cps_.SuffixPeak(j + 1, results_.tail_peak));

  StreamStats st;
  st.bytes_fed = results_.stats.bytes_fed + delta;
  st.chunks_fed = live.chunks_fed;
  st.events = results_.stats.events + d_events;
  st.max_depth = peak;
  st.matches = results_.stats.matches + d_matches;
  st.errors_recovered = results_.stats.errors_recovered + d_rec;
  st.subtrees_skipped = results_.stats.subtrees_skipped + d_skip;
  st.error_offset = first.ok() ? -1 : first.offset;
  st.matches_emitted = st.matches;
  st.pending_matches_peak = 0;
  st.max_stack_depth = stack_tier_ ? peak : 0;
  st.underflow_closes = results_.stats.underflow_closes + d_under;
  r.stats = st;

  // The suffix never re-ran, so its terminal verdicts carry over: equal
  // configurations at cj plus identical suffix bytes give the same run.
  r.failed = results_.failed;
  r.complete = results_.complete;
  r.accepting = results_.accepting;
  r.tail_peak = results_.tail_peak;

  // Rebuild the checkpoint stream: untouched prefix, rescan checkpoints,
  // then the surviving suffix rebased into post-edit coordinates. Machine
  // configs are reused as-is (they hold no byte offsets — the stack tier's
  // is a retained slot handle, the flat tiers' are state/depth/registers).
  std::vector<Checkpoint> ncps;
  ncps.reserve(static_cast<size_t>(ri) + 1 + rescan_cps.size() +
               (cps_.size() - j));
  for (size_t k = 0; k <= static_cast<size_t>(ri); ++k) {
    ncps.push_back(cps_.at(k));
  }
  for (Checkpoint& rc : rescan_cps) ncps.push_back(std::move(rc));
  for (size_t k = j; k < cps_.size(); ++k) {
    Checkpoint cp = cps_.at(k);
    cp.offset += delta;
    cp.match_index += d_match;
    if (k == j) cp.segment_peak_depth = live_conv_peak;
    SelectorCheckpoint& s = cp.state;
    s.bytes_fed += delta;
    s.events += d_events;
    s.nodes += d_nodes;
    s.matches += d_matches;
    s.errors_recovered += d_rec;
    s.subtrees_skipped += d_skip;
    s.machine_underflows += d_under;
    // Lexer offsets are only meaningful while the partial token is live.
    if (s.have_pending && s.pending_offset >= 0) s.pending_offset += delta;
    if (s.in_tag && s.tag_start >= 0) s.tag_start += delta;
    // Error history seen from this checkpoint: everything live recorded,
    // then this checkpoint's old entries past cj, rebased.
    std::vector<StreamingSelector::RecoveredError> nr(live_rec.begin(),
                                                      live_rec.end());
    for (size_t m = cj_rec; m < s.recovered.size(); ++m) {
      nr.push_back(RebaseRecovered(s.recovered[m], delta));
    }
    // Mid-skip convergence: graft the open skip's resolution from this
    // checkpoint's own as-of-then record (see the r.recovered splice
    // above) — a checkpoint past the resync point has it filled in, one
    // before it correctly leaves the entry open.
    if (cj.state.in_skip && !live_rec.empty() &&
        nr[live_rec.size() - 1].resume_offset < 0 && cj_rec >= 1 &&
        s.recovered.size() >= cj_rec &&
        s.recovered[cj_rec - 1].resume_offset >= 0) {
      nr[live_rec.size() - 1].resume_offset =
          s.recovered[cj_rec - 1].resume_offset + delta;
      nr[live_rec.size() - 1].closed_label =
          s.recovered[cj_rec - 1].closed_label;
    }
    if (!live_err.ok()) {
      s.stream_error = live_err;
    } else if (nr.size() > live_rec.size()) {
      s.stream_error = nr[live_rec.size()].error;
    } else {
      s.stream_error = StreamError{};
    }
    s.error_offset = s.stream_error.ok() ? -1 : s.stream_error.offset;
    s.recovered = std::move(nr);
    ncps.push_back(std::move(cp));
  }
  cps_.ReleaseRange(&selector_, static_cast<size_t>(ri) + 1, j);
  cps_.ReplaceAll(std::move(ncps));

  out.path = EditPath::kSplicedSuffix;
  out.converged_at = scan_pos;
  out.bytes_rescanned = scan_pos - resume_off;
  out.checkpoints_reused = static_cast<int64_t>(old_cp_count - j);
  out.checkpoints_dropped = static_cast<int64_t>(j) - ri - 1;
  results_ = std::move(r);
  scratch_events_.clear();
  doc_size_ = n_new;
  return out;
}

}  // namespace sst
