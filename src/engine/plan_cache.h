#ifndef SST_ENGINE_PLAN_CACHE_H_
#define SST_ENGINE_PLAN_CACHE_H_

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "engine/query_plan.h"

namespace sst {

// Which front-end parses the query text (part of the cache key: the same
// characters mean different things under different syntaxes).
enum class QuerySyntax : uint8_t {
  kRegex,     // Rpq::FromRegex
  kXPath,     // Rpq::FromXPath
  kJsonPath,  // Rpq::FromJsonPath
};

const char* QuerySyntaxName(QuerySyntax syntax);

// Bounded, thread-safe, sharded LRU of compiled QueryPlans.
//
// Serving N concurrent streams of the same query must cost ONE compilation
// (minimization, classification, table construction are orders of
// magnitude above per-stream work); the cache provides that:
//
//   * keys canonicalize the query text (ASCII whitespace stripped — every
//     supported syntax is whitespace-insensitive) and fingerprint the
//     alphabet and PlanOptions, so textually different but equivalent
//     requests share one plan;
//   * lookups touch only one shard (hash-partitioned), keeping lock
//     contention bounded under many-core load;
//   * concurrent misses for the same key coalesce (single-flight): the
//     first requester compiles, the rest block on the same shared future
//     and the compilation runs exactly once;
//   * capacity is enforced per shard with LRU eviction, and hit / miss /
//     coalesced-miss / eviction counters expose the cache's behavior to
//     serving dashboards.
//
// Returned plans are shared_ptr<const>: eviction only drops the cache's
// reference, so sessions streaming over an evicted plan are unaffected.
class PlanCache {
 public:
  struct Options {
    size_t capacity = 64;  // total cached plans, across all shards
    int num_shards = 8;
  };

  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;            // lookups that triggered a compilation
    int64_t coalesced_misses = 0;  // misses served by another's in-flight
                                   // compilation (single-flight)
    int64_t evictions = 0;
    int64_t size = 0;  // plans currently cached
  };

  PlanCache();  // default Options
  explicit PlanCache(const Options& options);

  // Returns the cached plan for (syntax, query, alphabet, options),
  // compiling it exactly once on first use. Blocks only when another
  // thread is already compiling the same key.
  std::shared_ptr<const QueryPlan> GetOrCompile(QuerySyntax syntax,
                                                std::string_view query,
                                                const Alphabet& alphabet,
                                                const PlanOptions& options);

  // The canonical cache key (exposed for tests and for precomputing keys
  // in hot serving paths).
  static std::string CanonicalKey(QuerySyntax syntax, std::string_view query,
                                  const Alphabet& alphabet,
                                  const PlanOptions& options);

  // Query text with ASCII whitespace removed (sound for all supported
  // syntaxes; labels cannot contain whitespace).
  static std::string CanonicalizeQueryText(std::string_view query);

  Stats stats() const;
  void Clear();

  // Test-only: invoked by the compiling thread after it has published its
  // in-flight entry and released the shard lock, right before compiling.
  // Lets tests hold the compilation open while concurrent requesters
  // arrive and coalesce. Not for production use.
  void set_compile_hook_for_test(std::function<void()> hook) {
    compile_hook_ = std::move(hook);
  }

 private:
  using PlanFuture = std::shared_future<std::shared_ptr<const QueryPlan>>;

  struct Entry {
    PlanFuture future;
    bool ready = false;
    // Position in the shard's LRU list; valid only when ready.
    std::list<std::string>::iterator lru_pos;
  };

  struct Shard {
    std::mutex mu;
    std::unordered_map<std::string, Entry> entries;
    std::list<std::string> lru;  // most recent at front; ready entries only
    Stats stats;
  };

  Shard& ShardFor(const std::string& key);

  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::function<void()> compile_hook_;
};

}  // namespace sst

#endif  // SST_ENGINE_PLAN_CACHE_H_
