#include "engine/checkpoint.h"

#include <algorithm>
#include <utility>

#include "base/check.h"

namespace sst {

void CheckpointStream::Append(Checkpoint cp) {
  SST_CHECK(cps_.empty() || cp.offset > cps_.back().offset);
  cps_.push_back(std::move(cp));
}

int64_t CheckpointStream::FindResume(int64_t offset) const {
  // Last checkpoint with cps_[i].offset <= offset.
  auto it = std::upper_bound(
      cps_.begin(), cps_.end(), offset,
      [](int64_t off, const Checkpoint& cp) { return off < cp.offset; });
  if (it == cps_.begin()) return -1;
  return static_cast<int64_t>(it - cps_.begin()) - 1;
}

size_t CheckpointStream::FirstAtOrAfter(int64_t offset) const {
  auto it = std::lower_bound(
      cps_.begin(), cps_.end(), offset,
      [](const Checkpoint& cp, int64_t off) { return cp.offset < off; });
  return static_cast<size_t>(it - cps_.begin());
}

int64_t CheckpointStream::PrefixPeak(size_t upto) const {
  SST_CHECK(upto < cps_.size());
  int64_t peak = 0;
  for (size_t i = 0; i <= upto; ++i) {
    peak = std::max(peak, cps_[i].segment_peak_depth);
  }
  return peak;
}

int64_t CheckpointStream::SuffixPeak(size_t from, int64_t tail_peak) const {
  int64_t peak = tail_peak;
  for (size_t i = from; i < cps_.size(); ++i) {
    peak = std::max(peak, cps_[i].segment_peak_depth);
  }
  return peak;
}

void CheckpointStream::ReleaseRange(StreamingSelector* selector, size_t from,
                                    size_t to) {
  SST_CHECK(to <= cps_.size());
  for (size_t i = from; i < to; ++i) {
    selector->ReleaseCheckpoint(cps_[i].state);
  }
}

void CheckpointStream::Clear(StreamingSelector* selector) {
  ReleaseRange(selector, 0, cps_.size());
  cps_.clear();
}

void CheckpointStream::ReplaceAll(std::vector<Checkpoint> cps) {
  cps_ = std::move(cps);
}

}  // namespace sst
