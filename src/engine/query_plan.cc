#include "engine/query_plan.h"

#include <algorithm>
#include <utility>

#include "base/check.h"
#include "eval/registerless_query.h"
#include "eval/stack_evaluator.h"

namespace sst {

namespace {

// Compact-markup label eligibility shared by both fused rungs: every
// document label must be a single lowercase letter so tables can be keyed
// by the raw byte.
bool CompactLabels(const Alphabet& alphabet) {
  for (Symbol s = 0; s < alphabet.size(); ++s) {
    const std::string& label = alphabet.LabelOf(s);
    if (label.size() != 1 || label[0] < 'a' || label[0] > 'z') return false;
  }
  return true;
}

// True when the fused byte→state rung of the degradation ladder exists:
// compact labels, all covered by the TagDfa.
bool FusedEligible(const TagDfa& dfa, const Alphabet& alphabet) {
  return alphabet.size() <= dfa.num_symbols && CompactLabels(alphabet);
}

// Budgets for materializing a stackless query into an explicit DRA at
// plan-compile time. The state budget caps the BFS frontier; the table
// budget caps the transient explicit table (2 × symbols × 3^chain entries
// per state), which dominates memory when the register chain is long.
constexpr int kDraStateBudget = 4096;
constexpr int64_t kDraTableBudget = int64_t{1} << 22;

// Owning adapter over the plan's minimal DFA for the pushdown baseline
// tier (StackQueryEvaluator borrows a Dfa*; the plan outlives it via the
// session's shared_ptr).
class BorrowingStackMachine final : public StreamMachine {
 public:
  explicit BorrowingStackMachine(const Dfa* dfa) : inner_(dfa) {}

  void Reset() override { inner_.Reset(); }
  void OnOpen(Symbol symbol) override { inner_.OnOpen(symbol); }
  void OnClose(Symbol symbol) override { inner_.OnClose(symbol); }
  bool InAcceptingState() const override { return inner_.InAcceptingState(); }

  // The checkpoint protocol and stack diagnostics pass straight through —
  // without these forwards the stack tier would report checkpointing as
  // unsupported and every edit would fall back to a full rescan.
  bool SaveConfig(std::vector<int64_t>* out) override {
    return inner_.SaveConfig(out);
  }
  bool RestoreConfig(const std::vector<int64_t>& config) override {
    return inner_.RestoreConfig(config);
  }
  bool ConfigEqualsCurrent(const std::vector<int64_t>& config) const override {
    return inner_.ConfigEqualsCurrent(config);
  }
  void ReleaseConfig(const std::vector<int64_t>& config) override {
    inner_.ReleaseConfig(config);
  }
  int64_t StackDepthPeak() const override { return inner_.StackDepthPeak(); }
  int64_t StackUnderflowCloses() const override {
    return inner_.StackUnderflowCloses();
  }

 private:
  StackQueryEvaluator inner_;
};

}  // namespace

const char* EvaluatorKindName(EvaluatorKind kind) {
  switch (kind) {
    case EvaluatorKind::kRegisterless:
      return "registerless (finite automaton)";
    case EvaluatorKind::kStackless:
      return "stackless (depth-register automaton)";
    case EvaluatorKind::kStackBaseline:
      return "stack baseline (pushdown)";
  }
  return "unknown";
}

std::shared_ptr<const QueryPlan> QueryPlan::Compile(
    const Rpq& rpq, const PlanOptions& options) {
  auto plan = std::shared_ptr<QueryPlan>(new QueryPlan());
  plan->options_ = options;
  plan->source_ = rpq.source;
  plan->alphabet_ = rpq.alphabet;
  plan->minimal_dfa_ = rpq.minimal_dfa;
  plan->classification_ = Classify(rpq.minimal_dfa);
  plan->scanner_tables_ =
      ScannerTables::Build(options.format, plan->alphabet_);

  const Classification& c = plan->classification_;
  const bool term = options.encoding == StreamEncoding::kTerm;
  const bool registerless =
      term ? c.blind_almost_reversible : c.almost_reversible;
  const bool stackless = term ? c.blind_har : c.har;
  if (registerless) {
    plan->kind_ = EvaluatorKind::kRegisterless;
    plan->tag_dfa_ =
        BuildRegisterlessQueryAutomaton(plan->minimal_dfa_, term);
    if (options.format == StreamFormat::kCompactMarkup &&
        FusedEligible(*plan->tag_dfa_, plan->alphabet_)) {
      plan->fused_ = std::make_unique<ByteTagDfaRunner>(*plan->tag_dfa_,
                                                        plan->alphabet_);
#ifndef NDEBUG
      // The fused byte→state table and the scanner's byte-class/byte→
      // symbol tables are derived independently from the same Alphabet;
      // the plan is the one place both exist, so cross-check them here
      // (previously each layer rebuilt its own copy with no such check).
      for (int b = 'a'; b <= 'z'; ++b) {
        SST_CHECK(plan->scanner_tables_.byte_class[b] == ScannerTables::kOpen);
        SST_CHECK(plan->scanner_tables_.byte_class[b - 'a' + 'A'] ==
                  ScannerTables::kClose);
        SST_CHECK(plan->fused_->byte_symbol(static_cast<unsigned char>(b)) ==
                  plan->scanner_tables_.byte_symbol[b]);
        SST_CHECK(
            plan->fused_->byte_symbol(
                static_cast<unsigned char>(b - 'a' + 'A')) ==
            plan->scanner_tables_.byte_symbol[b - 'a' + 'A']);
      }
      // Text-run closure cross-check: the structural-index fast paths skip
      // whitespace wholesale, which is sound iff every state self-loops on
      // every whitespace byte without counting. The runner derives that as
      // its closure flags; re-derive it here through the public stepping
      // API and require agreement (a table-fill change that gave
      // whitespace a real transition would trip this, not silently skip).
      {
        static constexpr unsigned char kWsProbe[] = {' ',  '\t', '\n',
                                                     '\v', '\f', '\r'};
        bool trivial = true;
        for (int q = 0; q < plan->fused_->num_states(); ++q) {
          for (unsigned char w : kWsProbe) {
            if (plan->fused_->Next(q, w) != q) trivial = false;
          }
        }
        SST_CHECK(trivial == plan->fused_->text_run_trivial());
        SST_CHECK(plan->fused_->text_run_exact() ||
                  !plan->fused_->text_run_trivial());
      }
#endif
    }
  } else if (stackless) {
    plan->kind_ = EvaluatorKind::kStackless;
    plan->stackless_ = StacklessBlueprint::Build(plan->minimal_dfa_, term);
    // Stackless fused rung: materialize the Lemma 3.8 machine into an
    // explicit restricted DRA and flatten it to a byte table, when the
    // format and labels allow and the table fits the budget. The budget is
    // resolved *before* materializing — the blueprint's register bound
    // (max_chain) fixes the per-state table cost, so the state cap is
    // shrunk until the transient table is bounded too. Markup encoding
    // only: term-encoded callers drive OnClose(-1) (universal closing
    // tag), which an explicit DRA table cannot index — those plans keep
    // the StacklessQueryEvaluator interpreter.
    if (options.encoding == StreamEncoding::kMarkup &&
        options.format == StreamFormat::kCompactMarkup &&
        plan->minimal_dfa_.num_symbols == plan->alphabet_.size() &&
        CompactLabels(plan->alphabet_) &&
        plan->stackless_->max_chain <= Dra::kMaxRegisters) {
      int64_t codes = 1;
      for (int i = 0; i < plan->stackless_->max_chain; ++i) codes *= 3;
      const int64_t per_state =
          2 * static_cast<int64_t>(plan->minimal_dfa_.num_symbols) * codes;
      const int64_t max_states =
          std::min<int64_t>(kDraStateBudget, kDraTableBudget / per_state);
      if (max_states >= 2) {
        plan->stackless_dra_ = MaterializeStacklessQueryDra(
            plan->minimal_dfa_, term, static_cast<int>(max_states));
      }
      if (plan->stackless_dra_) {
        plan->fused_dra_ = std::make_unique<ByteDraRunner>(
            &*plan->stackless_dra_, plan->alphabet_);
#ifndef NDEBUG
        // Same cross-check as the registerless rung: the fused DRA table
        // and the scanner tables are derived independently from the same
        // Alphabet and must agree on every letter byte.
        for (int b = 'a'; b <= 'z'; ++b) {
          SST_CHECK(plan->fused_dra_->byte_symbol(
                        static_cast<unsigned char>(b)) ==
                    plan->scanner_tables_.byte_symbol[b]);
          SST_CHECK(plan->fused_dra_->byte_symbol(
                        static_cast<unsigned char>(b - 'a' + 'A')) ==
                    plan->scanner_tables_.byte_symbol[b - 'a' + 'A']);
        }
        // Text-run closure cross-check for the stackless rung: whitespace
        // must leave the full (state, depth, registers) configuration
        // untouched for the structural-index walk to skip it.
        {
          static constexpr unsigned char kWsProbe[] = {' ',  '\t', '\n',
                                                       '\v', '\f', '\r'};
          DraConfig probe = plan->fused_dra_->InitialConfig();
          const DraConfig before = probe;
          for (unsigned char w : kWsProbe) {
            plan->fused_dra_->Next(&probe, w);
            SST_CHECK(probe.state == before.state &&
                      probe.depth == before.depth);
          }
          SST_CHECK(plan->fused_dra_->text_run_trivial());
        }
#endif
      }
    }
  } else if (options.allow_stack_fallback) {
    plan->kind_ = EvaluatorKind::kStackBaseline;
  } else {
    return plan;  // exact_ = false; classification still available
  }
  plan->exact_ = true;
  return plan;
}

std::unique_ptr<StreamMachine> QueryPlan::NewMachine() const {
  if (!exact_) return nullptr;
  switch (kind_) {
    case EvaluatorKind::kRegisterless:
      return std::make_unique<TagDfaMachine>(&*tag_dfa_);
    case EvaluatorKind::kStackless:
      // With the fused rung present, instantiate the machine as a DRA
      // runner over the materialized automaton: it exports the (state,
      // depth, registers) configuration the fused scanner syncs around
      // each chunk, and steps the *same* automaton on the generic tier
      // after a demotion — the two tiers cannot diverge.
      if (fused_dra_) return std::make_unique<DraRunner>(&*stackless_dra_);
      return std::make_unique<StacklessQueryEvaluator>(&*stackless_);
    case EvaluatorKind::kStackBaseline:
      return std::make_unique<BorrowingStackMachine>(&minimal_dfa_);
  }
  return nullptr;
}

}  // namespace sst
