#include "engine/query_plan.h"

#include <utility>

#include "base/check.h"
#include "eval/registerless_query.h"
#include "eval/stack_evaluator.h"

namespace sst {

namespace {

// True when the fused byte→state rung of the degradation ladder exists:
// every document label is a single lowercase letter covered by the TagDfa,
// so the table can be keyed by the raw byte.
bool FusedEligible(const TagDfa& dfa, const Alphabet& alphabet) {
  if (alphabet.size() > dfa.num_symbols) return false;
  for (Symbol s = 0; s < alphabet.size(); ++s) {
    const std::string& label = alphabet.LabelOf(s);
    if (label.size() != 1 || label[0] < 'a' || label[0] > 'z') return false;
  }
  return true;
}

// Owning adapter over the plan's minimal DFA for the pushdown baseline
// tier (StackQueryEvaluator borrows a Dfa*; the plan outlives it via the
// session's shared_ptr).
class BorrowingStackMachine final : public StreamMachine {
 public:
  explicit BorrowingStackMachine(const Dfa* dfa) : inner_(dfa) {}

  void Reset() override { inner_.Reset(); }
  void OnOpen(Symbol symbol) override { inner_.OnOpen(symbol); }
  void OnClose(Symbol symbol) override { inner_.OnClose(symbol); }
  bool InAcceptingState() const override { return inner_.InAcceptingState(); }

 private:
  StackQueryEvaluator inner_;
};

}  // namespace

const char* EvaluatorKindName(EvaluatorKind kind) {
  switch (kind) {
    case EvaluatorKind::kRegisterless:
      return "registerless (finite automaton)";
    case EvaluatorKind::kStackless:
      return "stackless (depth-register automaton)";
    case EvaluatorKind::kStackBaseline:
      return "stack baseline (pushdown)";
  }
  return "unknown";
}

std::shared_ptr<const QueryPlan> QueryPlan::Compile(
    const Rpq& rpq, const PlanOptions& options) {
  auto plan = std::shared_ptr<QueryPlan>(new QueryPlan());
  plan->options_ = options;
  plan->source_ = rpq.source;
  plan->alphabet_ = rpq.alphabet;
  plan->minimal_dfa_ = rpq.minimal_dfa;
  plan->classification_ = Classify(rpq.minimal_dfa);
  plan->scanner_tables_ =
      ScannerTables::Build(options.format, plan->alphabet_);

  const Classification& c = plan->classification_;
  const bool term = options.encoding == StreamEncoding::kTerm;
  const bool registerless =
      term ? c.blind_almost_reversible : c.almost_reversible;
  const bool stackless = term ? c.blind_har : c.har;
  if (registerless) {
    plan->kind_ = EvaluatorKind::kRegisterless;
    plan->tag_dfa_ =
        BuildRegisterlessQueryAutomaton(plan->minimal_dfa_, term);
    if (options.format == StreamFormat::kCompactMarkup &&
        FusedEligible(*plan->tag_dfa_, plan->alphabet_)) {
      plan->fused_ = std::make_unique<ByteTagDfaRunner>(*plan->tag_dfa_,
                                                        plan->alphabet_);
#ifndef NDEBUG
      // The fused byte→state table and the scanner's byte-class/byte→
      // symbol tables are derived independently from the same Alphabet;
      // the plan is the one place both exist, so cross-check them here
      // (previously each layer rebuilt its own copy with no such check).
      for (int b = 'a'; b <= 'z'; ++b) {
        SST_CHECK(plan->scanner_tables_.byte_class[b] == ScannerTables::kOpen);
        SST_CHECK(plan->scanner_tables_.byte_class[b - 'a' + 'A'] ==
                  ScannerTables::kClose);
        SST_CHECK(plan->fused_->byte_symbol(static_cast<unsigned char>(b)) ==
                  plan->scanner_tables_.byte_symbol[b]);
        SST_CHECK(
            plan->fused_->byte_symbol(
                static_cast<unsigned char>(b - 'a' + 'A')) ==
            plan->scanner_tables_.byte_symbol[b - 'a' + 'A']);
      }
#endif
    }
  } else if (stackless) {
    plan->kind_ = EvaluatorKind::kStackless;
    plan->stackless_ = StacklessBlueprint::Build(plan->minimal_dfa_, term);
  } else if (options.allow_stack_fallback) {
    plan->kind_ = EvaluatorKind::kStackBaseline;
  } else {
    return plan;  // exact_ = false; classification still available
  }
  plan->exact_ = true;
  return plan;
}

std::unique_ptr<StreamMachine> QueryPlan::NewMachine() const {
  if (!exact_) return nullptr;
  switch (kind_) {
    case EvaluatorKind::kRegisterless:
      return std::make_unique<TagDfaMachine>(&*tag_dfa_);
    case EvaluatorKind::kStackless:
      return std::make_unique<StacklessQueryEvaluator>(&*stackless_);
    case EvaluatorKind::kStackBaseline:
      return std::make_unique<BorrowingStackMachine>(&minimal_dfa_);
  }
  return nullptr;
}

}  // namespace sst
