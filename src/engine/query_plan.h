#ifndef SST_ENGINE_QUERY_PLAN_H_
#define SST_ENGINE_QUERY_PLAN_H_

#include <memory>
#include <optional>
#include <string>

#include "automata/dfa.h"
#include "classes/syntactic_classes.h"
#include "dra/byte_dra_runner.h"
#include "dra/byte_runner.h"
#include "dra/dra.h"
#include "dra/machine.h"
#include "dra/streaming.h"
#include "dra/tag_dfa.h"
#include "eval/stackless_query.h"
#include "query/rpq.h"

namespace sst {

// Which serialization of trees the query is answered over; fixes which of
// the paper's characterization theorems applies (markup: Thms 3.1/3.2;
// term: Thms B.1/B.2).
enum class StreamEncoding { kMarkup, kTerm };

enum class EvaluatorKind {
  kRegisterless,   // plain DFA over the tag stream (Lemma 3.5 / 3.11)
  kStackless,      // depth-register automaton (Lemma 3.8)
  kStackBaseline,  // classical pushdown evaluation (always applicable)
};

const char* EvaluatorKindName(EvaluatorKind kind);

// Everything that fixes the compiled artifact besides the query text.
// Part of the PlanCache key.
struct PlanOptions {
  StreamEncoding encoding = StreamEncoding::kMarkup;
  StreamFormat format = StreamFormat::kCompactMarkup;
  bool allow_stack_fallback = true;

  friend bool operator==(const PlanOptions&, const PlanOptions&) = default;
};

// The compile-once half of query evaluation: every artifact the paper's
// constructions derive at *query analysis* time — classification verdicts
// (Section 3 / Appendix B), the registerless TagDfa (Lemma 3.5), the
// stackless blueprint (Lemma 3.8: SCC chains + backtrack table), the fused
// byte→state table (Section 4.3), and the scanner's per-byte tables —
// built exactly once per (RPQ, options) and shared read-only by any number
// of concurrent per-stream Sessions. Nothing in a QueryPlan mutates after
// Compile returns, which is what makes `shared_ptr<const QueryPlan>`
// safely shareable across threads with no per-stream table copies.
//
// The degradation ladder (DESIGN.md "Robustness & recovery") is encoded in
// which artifacts are present:
//   fused byte table  ->  fused DRA table  ->  generic machine  ->  stack
// fused() non-null means the registerless byte-table rung exists;
// fused_dra() non-null the stackless one (Lemma 3.8 materialized into a
// restricted DRA and flattened to byte-table form — at most one of the two
// is present); kind() names the strongest machine tier NewMachine()
// instantiates; minimal_dfa() always supports the pushdown baseline.
class QueryPlan {
 public:
  // Classifies the query and builds every immutable table of the
  // strongest evaluation tier the characterization admits. Never fails:
  // when no streaming evaluator exists and options.allow_stack_fallback
  // is false, the plan is inexact (exact() == false, NewMachine() ==
  // nullptr) but still carries the classification verdicts.
  static std::shared_ptr<const QueryPlan> Compile(const Rpq& rpq,
                                                  const PlanOptions& options);

  // --- Compile-time verdicts -------------------------------------------
  const PlanOptions& options() const { return options_; }
  const Classification& classification() const { return classification_; }
  EvaluatorKind kind() const { return kind_; }
  bool exact() const { return exact_; }
  const std::string& source() const { return source_; }

  // --- Shared immutable artifacts --------------------------------------
  // The plan owns a copy of the query's alphabet and minimal DFA, so it
  // is self-contained (the Rpq it was compiled from may be destroyed).
  const Alphabet& alphabet() const { return alphabet_; }
  const Dfa& minimal_dfa() const { return minimal_dfa_; }

  // Registerless tier (kind() == kRegisterless): the Lemma 3.5 TagDfa;
  // null otherwise.
  const TagDfa* tag_dfa() const { return tag_dfa_ ? &*tag_dfa_ : nullptr; }

  // Stackless tier (kind() == kStackless): the Lemma 3.8 blueprint; null
  // otherwise.
  const StacklessBlueprint* stackless() const {
    return stackless_ ? &*stackless_ : nullptr;
  }

  // Fused byte→state table (registerless tier, compact markup,
  // single-lowercase-letter labels); null when the fast rung of the
  // degradation ladder does not exist for this plan.
  const ByteTagDfaRunner* fused() const { return fused_.get(); }

  // Stackless fused tier (kind() == kStackless, compact markup,
  // single-lowercase-letter labels, materialization within budget): the
  // Lemma 3.8 machine materialized into an explicit restricted DRA plus
  // its fused byte table. Both null when the stackless query runs on the
  // generic machine tier only. stackless_dra() is non-null iff fused_dra()
  // is.
  const Dra* stackless_dra() const {
    return stackless_dra_ ? &*stackless_dra_ : nullptr;
  }
  const ByteDraRunner* fused_dra() const { return fused_dra_.get(); }

  // Per-byte scanner classification for options().format.
  const ScannerTables& scanner_tables() const { return scanner_tables_; }

  // --- Per-session instantiation ---------------------------------------
  // A fresh mutable machine borrowing this plan's tables: TagDfaMachine
  // over tag_dfa(), DraRunner over stackless_dra() (when the fused DRA
  // rung exists — it exports the configuration the fused scanner syncs)
  // or StacklessQueryEvaluator over stackless() otherwise, or
  // StackQueryEvaluator over minimal_dfa(). O(registers) construction
  // cost, no table building; the machine must not outlive the plan (hold
  // the shared_ptr — engine/session.h does). Null iff !exact().
  std::unique_ptr<StreamMachine> NewMachine() const;

 private:
  QueryPlan() = default;

  PlanOptions options_;
  std::string source_;
  Classification classification_;
  EvaluatorKind kind_ = EvaluatorKind::kStackBaseline;
  bool exact_ = false;

  Alphabet alphabet_;
  Dfa minimal_dfa_;
  std::optional<TagDfa> tag_dfa_;
  std::optional<StacklessBlueprint> stackless_;
  std::unique_ptr<ByteTagDfaRunner> fused_;
  std::optional<Dra> stackless_dra_;
  std::unique_ptr<ByteDraRunner> fused_dra_;
  ScannerTables scanner_tables_;
};

}  // namespace sst

#endif  // SST_ENGINE_QUERY_PLAN_H_
