#ifndef SST_ENGINE_INCREMENTAL_H_
#define SST_ENGINE_INCREMENTAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/match_sink.h"
#include "dra/stream_error.h"
#include "dra/streaming.h"
#include "engine/checkpoint.h"
#include "engine/query_plan.h"

namespace sst {

// Configuration of an IncrementalSession.
struct IncrementalOptions {
  // Checkpoint grid: one checkpoint every `checkpoint_interval` document
  // bytes. Smaller intervals mean less rescanning per edit and more
  // retained state; the stackless tiers pay O(1)-O(registers) words per
  // checkpoint, the stack tier one retained pooled node (shared suffixes
  // are structural, so even deep documents stay cheap).
  int64_t checkpoint_interval = int64_t{1} << 16;

  // Forwarded to the selector before the first scan. Splicing suffix
  // aggregates is only sound under unlimited() limits (whether a finite
  // guard fires in the suffix depends on prefix counters an edit shifts);
  // finite limits keep checkpoint resume but downgrade every ApplyEdit to
  // scan-to-end.
  RecoveryPolicy policy = RecoveryPolicy::kFailFast;
  StreamLimits limits;
};

// Incremental re-evaluation over an edited document (ROADMAP item 4): a
// full Scan records periodic checkpoints — the active tier's complete
// configuration plus exact prefix aggregates — and ApplyEdit re-evaluates
// a byte splice by
//   1. resuming from the nearest checkpoint at or before the edit,
//   2. rescanning through the edited region, and
//   3. detecting *convergence*: the post-edit configuration matching the
//      recorded configuration stream at the same depth (checkpoint
//      offsets, shifted by the edit's net byte delta). On convergence the
//      suffix is spliced — counts as checkpoint-delta arithmetic, match
//      events with rebased byte offsets, suffix checkpoints rebased in
//      place — instead of rescanned.
// When configurations never reconverge (the edit changed the context of
// everything after it) the rescan simply runs to EOF, which is the full-
// rescan fallback with the prefix before the edit still reused.
//
// This cashes in the paper's central asset: a stackless configuration is
// O(1) — state, depth counter, register bank — so checkpoints cost words,
// not stacks. The pushdown fallback joins via the pooled persistent stack
// (eval/stack_evaluator.h): its checkpoint is a retained node pointer,
// O(1) to take, with suffixes shared structurally between checkpoints.
//
// The session never stores document bytes: the caller owns the document
// and passes the post-edit bytes to ApplyEdit (the tree-sitter contract —
// the editor already has the buffer; duplicating 100 MB per session would
// dwarf the state being checkpointed).
//
// Results (matches, match events, first error, stats) are byte-identical
// to a full rescan of the edited document — the property suite asserts
// this across formats, tiers, edit kinds, and checkpoint intervals.
// Match events are verdict-only (end_offset stays -1): span ends live in
// the suffix, which a spliced edit deliberately never visits.
class IncrementalSession {
 public:
  // How ApplyEdit answered.
  enum class EditPath {
    kSplicedSuffix,  // converged: suffix aggregates spliced, O(K + edit)
    kScannedToEnd,   // no convergence: rescanned from the resume point
    kFullRescan,     // no usable checkpoint (unsupported machine tier)
  };

  struct EditOutcome {
    EditPath path = EditPath::kFullRescan;
    int64_t resumed_from = 0;   // offset of the checkpoint restored
    int64_t converged_at = -1;  // post-edit offset of convergence (-1 none)
    int64_t bytes_rescanned = 0;
    int64_t checkpoints_reused = 0;   // suffix checkpoints rebased in place
    int64_t checkpoints_dropped = 0;  // released (covered by the rescan)
  };

  // `plan` must be exact(). The sink the session installs is its own
  // verdict-only event log; callers read results through the accessors.
  explicit IncrementalSession(std::shared_ptr<const QueryPlan> plan,
                              IncrementalOptions options = {});

  IncrementalSession(const IncrementalSession&) = delete;
  IncrementalSession& operator=(const IncrementalSession&) = delete;

  // Full scan of `document`, recording the checkpoint stream. Returns
  // true when the document streamed cleanly (no fatal error); results are
  // queryable either way.
  bool Scan(std::string_view document);

  // Re-evaluates after `new_bytes` replaced the byte range
  // [offset, offset + old_len) of the previously scanned document.
  // `document` is the complete post-edit document (its size must be the
  // old size + new_bytes.size() - old_len); the session reads only the
  // bytes it actually rescans. Returns how the edit was answered.
  EditOutcome ApplyEdit(int64_t offset, int64_t old_len,
                        std::string_view new_bytes,
                        std::string_view document);

  // --- Results of the last Scan/ApplyEdit (full-rescan parity) ---------
  int64_t matches() const { return results_.stats.matches; }
  const std::vector<MatchEvent>& match_events() const {
    return results_.events;
  }
  const StreamStats& stats() const { return results_.stats; }
  bool failed() const { return results_.failed; }
  bool document_complete() const { return results_.complete; }
  bool machine_accepting() const { return results_.accepting; }
  const StreamError& stream_error() const { return results_.error; }
  const std::vector<StreamingSelector::RecoveredError>& recovered_errors()
      const {
    return results_.recovered;
  }

  // --- Observability ---------------------------------------------------
  // False when the machine tier cannot checkpoint (every engine tier can;
  // this guards exotic custom machines) — ApplyEdit then always rescans.
  bool checkpointing_supported() const { return supported_; }
  size_t checkpoint_count() const { return cps_.size(); }
  int64_t document_size() const { return doc_size_; }
  const QueryPlan& plan() const { return *plan_; }

  // Checkpoint grid interval in effect.
  int64_t checkpoint_interval() const { return options_.checkpoint_interval; }

 private:
  // Verdict-only sink appending into the session's scratch event buffer.
  class EventLogSink final : public MatchSink {
   public:
    void OnMatch(const MatchEvent& event) override {
      log_->push_back(event);
    }
    void OnSpanClose(const MatchEvent&) override {}
    bool wants_spans() const override { return false; }
    void set_log(std::vector<MatchEvent>* log) { log_ = log; }

   private:
    std::vector<MatchEvent>* log_ = nullptr;
  };

  struct Results {
    std::vector<MatchEvent> events;
    StreamStats stats;
    bool failed = false;
    bool complete = false;   // document_complete() at EOF
    bool accepting = false;  // machine_accepting() at EOF
    StreamError error;
    std::vector<StreamingSelector::RecoveredError> recovered;
    int64_t tail_peak = 0;  // peak depth after the last checkpoint
  };

  // Clears all state and scans `document` from scratch, rebuilding the
  // checkpoint stream. Shared by Scan and the full-rescan edit path.
  void DoFullScan(std::string_view document);

  // Captures a checkpoint of the live selector at `offset` into `out`;
  // `base_match_index` is the number of events emitted before the current
  // scratch log started. False when the save is unsupported.
  bool MakeCheckpointAt(int64_t offset, int64_t base_match_index,
                        Checkpoint* out);

  // Composes the Results of a run that ended on the live selector (full
  // scan or scan-to-end): `events` is the already-assembled event log;
  // the peak depth is composed from cps_ segment peaks plus the live
  // tail, so cps_ must already hold the final checkpoint stream.
  Results CaptureLiveResults(std::vector<MatchEvent> events);

  int64_t NextGrid(int64_t pos) const {
    return (pos / options_.checkpoint_interval + 1) *
           options_.checkpoint_interval;
  }

  std::shared_ptr<const QueryPlan> plan_;
  std::unique_ptr<StreamMachine> machine_;
  StreamingSelector selector_;
  IncrementalOptions options_;
  bool stack_tier_ = false;

  EventLogSink sink_;
  std::vector<MatchEvent> scratch_events_;  // rescan-region event log

  CheckpointStream cps_;
  Results results_;
  bool scanned_ = false;
  bool supported_ = false;
  int64_t doc_size_ = 0;
};

}  // namespace sst

#endif  // SST_ENGINE_INCREMENTAL_H_
